// Shared scenario-conformance harness for the examples (DESIGN.md §11).
//
// Every example runs its whole scenario under a named expectation suite:
// the structured events it emits stream through an online checker, and the
// program exits nonzero if any invariant broke. `--events-out=F` exports
// the stream as JSONL — the input format of tools/trace_check, so a failing
// run can be re-checked (and debugged) offline:
//
//   build/examples/quickstart --events-out=/tmp/quickstart.jsonl
//   build/tools/trace_check /tmp/quickstart.jsonl --suite=hash-chain
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "mcauth.hpp"

namespace mcauth::examples {

class ScenarioExpectations {
public:
    /// Enables tracing (events ride the trace ring) and starts checking
    /// against the named built-in suite; a typo'd name is a programming
    /// error and aborts.
    ScenarioExpectations(const char* suite_name, const CliArgs& args)
        : events_out_(args.get("events-out", "")) {
        obs::set_trace_enabled(true);
        const obs::ExpectationSuite* suite = obs::find_suite(suite_name);
        if (suite == nullptr) {
            std::fprintf(stderr, "unknown expectation suite \"%s\"\n", suite_name);
            std::exit(2);
        }
        checker_ = std::make_unique<obs::OnlineConformance>(*suite);
    }

    /// Write --events-out (if given), print the suite verdict, and return
    /// the process exit code: 0 on PASS, 1 on violations.
    int finish() {
        if (!checker_) return last_ok_ ? 0 : 1;
        if (!events_out_.empty()) {
            if (obs::write_events_jsonl(events_out_))
                std::fprintf(stderr, "events: %s\n", events_out_.c_str());
            else
                std::fprintf(stderr, "events: FAILED to write %s\n",
                             events_out_.c_str());
        }
        const obs::ConformanceReport report = checker_->finish();
        checker_.reset();
        last_ok_ = report.ok();
        std::printf("\n%s\n", report.render_text().c_str());
        return last_ok_ ? 0 : 1;
    }

private:
    std::string events_out_;
    std::unique_ptr<obs::OnlineConformance> checker_;
    bool last_ok_ = true;
};

}  // namespace mcauth::examples

// Interactive use of the §5 design tools: hand the library a block size, a
// loss rate and a q_min target, and get back constructed schemes with their
// costs, plus DOT output for the winner.
//
//   build/examples/scheme_designer [--n=128] [--p=0.2] [--target=0.9]
//                                  [--dot] [--out=scheme.mcauth]
//
// With --out the winning design is written in the text format of
// core/serialize.hpp — both endpoints can load it as their topology.
#include <cstdio>
#include <fstream>

#include "example_expect.hpp"
#include "mcauth.hpp"

using namespace mcauth;

int main(int argc, char** argv) {
    const CliArgs args(argc, argv);
    DesignGoal goal;
    goal.n = static_cast<std::size_t>(args.get_int("n", 128));
    goal.p = args.get_double("p", 0.2);
    goal.target_q_min = args.get_double("target", 0.9);
    const bool dump_dot = args.get_bool("dot", false);
    // Pure analysis (no streaming), so the suite is vacuous unless a future
    // change starts emitting events here — at which point it starts checking.
    examples::ScenarioExpectations conformance("stream-core", args);

    std::printf("design goal: n = %zu, loss rate p = %.2f, q_min >= %.2f\n\n", goal.n,
                goal.p, goal.target_q_min);

    Rng rng(31337);
    const SchemeParams params;
    const auto reports = compare_designs(goal, params, rng, 4000);

    std::printf("%-16s %7s %12s %11s %11s %9s %7s %6s\n", "design", "edges", "hashes/pkt",
                "q_min(rec)", "q_min(mc)", "delay(s)", "msgbuf", "meets");
    for (const auto& r : reports) {
        std::printf("%-16s %7zu %12.3f %11.4f %11.4f %9.3f %7zu %6s\n", r.name.c_str(),
                    r.edges, r.hashes_per_packet, r.q_min_recurrence, r.q_min_monte_carlo,
                    r.max_receiver_delay, r.message_buffer_span,
                    r.meets_target ? "yes" : "no");
    }

    // Detail view of the offset-set optimum (the most deployable artifact:
    // a periodic scheme is two integers in a config file).
    if (const auto offsets = design_offset_set(goal); offsets.feasible) {
        std::printf("\noptimal offset set A = {");
        for (std::size_t i = 0; i < offsets.offsets.size(); ++i)
            std::printf("%s%zu", i ? ", " : "", offsets.offsets[i]);
        std::printf("}  (each packet's hash rides in the packets A steps closer to "
                    "P_sign)\n");
    } else {
        std::printf("\nno feasible offset set in the default menu — target too aggressive "
                    "for this loss rate.\n");
    }

    if (dump_dot) {
        const auto dg = design_greedy(goal);
        DotOptions opts;
        opts.graph_name = "designed";
        opts.emphasize = [](VertexId v) { return v == DependenceGraph::root(); };
        std::printf("\n%s", to_dot(dg.graph(), opts).c_str());
    }

    if (args.has("out")) {
        const std::string path = args.get("out", "scheme.mcauth");
        // Ship the most deployable feasible design: the offset set if one
        // exists, else the greedy graph.
        const auto offsets = design_offset_set(goal);
        const DependenceGraph chosen =
            offsets.feasible ? make_offset_scheme(goal.n, offsets.offsets, "offset-design")
                             : design_greedy(goal);
        std::ofstream file(path);
        if (!file) {
            std::printf("cannot write %s\n", path.c_str());
            return 1;
        }
        file << to_text(chosen);
        std::printf("\nwrote %s (%zu packets, %zu edges) — load with "
                    "dependence_graph_from_text()\n",
                    path.c_str(), chosen.packet_count(), chosen.graph().edge_count());
    }
    return conformance.finish();
}

// Stock-quote multicast with TESLA — the paper's §1 motivating scenario:
// a long-lived, single-source stream (price ticks) to many receivers, where
// a forged quote is the attack that matters.
//
//   build/examples/stock_ticker [--minutes=2] [--rate=50] [--loss=0.2]
//                               [--mu=0.08] [--sigma=0.03] [--skew=0.01]
//                               [--lag=3] [--tamper]
//
// Demonstrates the full TESLA lifecycle: signed bootstrap, per-interval
// MAC keys from a one-way chain, delayed disclosure, the receiver safety
// check, loss-repair by later keys, and (with --tamper) forgery rejection.
#include <cstdio>

#include "example_expect.hpp"
#include "mcauth.hpp"

using namespace mcauth;

namespace {

// A mock quote feed: symbol + random-walk price, serialized as ASCII.
class QuoteFeed {
public:
    explicit QuoteFeed(std::uint64_t seed) : rng_(seed) {}

    std::vector<std::uint8_t> next_quote() {
        static const char* kSymbols[] = {"ACME", "GLOBEX", "INITECH", "HOOLI"};
        const char* symbol = kSymbols[rng_.uniform_below(4)];
        price_ += rng_.normal(0.0, 0.25);
        char buf[64];
        const int len = std::snprintf(buf, sizeof buf, "%s %.2f", symbol, price_);
        return {buf, buf + len};
    }

private:
    Rng rng_;
    double price_ = 100.0;
};

}  // namespace

int main(int argc, char** argv) {
    const CliArgs args(argc, argv);
    const double minutes = args.get_double("minutes", 2.0);
    const double rate = args.get_double("rate", 50.0);     // quotes per second
    const double loss = args.get_double("loss", 0.2);
    const double mu = args.get_double("mu", 0.08);         // mean network delay
    const double sigma = args.get_double("sigma", 0.03);   // jitter
    const double skew = args.get_double("skew", 0.01);     // clock sync bound
    const auto lag = static_cast<std::size_t>(args.get_int("lag", 3));
    const bool tamper = args.get_bool("tamper", false);
    // TESLA does not stream through the instrumented sim paths yet, so the
    // event stream here only carries whatever core invariants fire —
    // stream-core keeps the harness honest without overclaiming.
    examples::ScenarioExpectations conformance("stream-core", args);

    TeslaConfig config;
    config.interval_duration = 0.1;
    config.disclosure_lag = lag;
    config.chain_length = static_cast<std::size_t>(minutes * 60.0 / 0.1) + 16;
    config.mac_bytes = 16;

    std::printf("TESLA stock ticker: %.0f quotes/s for %.1f min, loss %.0f%%, "
                "delay N(%.0fms, %.0fms), T_disclose = %.0f ms, skew <= %.0f ms\n\n",
                rate, minutes, loss * 100, mu * 1000, sigma * 1000,
                config.t_disclose() * 1000, skew * 1000);

    // Analytical prediction from §3.2 / Eq. 7.
    TeslaParams analysis;
    analysis.n = static_cast<std::size_t>(minutes * 60.0 * rate);
    analysis.t_disclose = config.t_disclose();
    analysis.mu = mu;
    analysis.sigma = sigma;
    analysis.p = loss;
    std::printf("paper's prediction (Eq. 7): q_min = (1-p) * Phi((T-mu)/sigma) = %.4f\n",
                analyze_tesla(analysis).q_min);
    const double t_needed =
        required_disclosure_delay(mu, sigma, loss, 0.95 * (1.0 - loss));
    std::printf("(to reach 95%% of the loss-limited ceiling, Eq. 7 inverted says "
                "T_disclose >= %.0f ms)\n\n",
                t_needed * 1000);

    Rng rng(4242);
    MerkleWotsSigner signer(rng, 2);
    TeslaSender sender(config, signer, rng, /*start_time=*/0.0);
    TeslaReceiver receiver(config, signer.make_verifier(), skew);
    if (!receiver.on_bootstrap(sender.bootstrap())) {
        std::printf("bootstrap rejected?!\n");
        return 1;
    }

    Channel channel(std::make_unique<BernoulliLoss>(loss),
                    std::make_unique<GaussianDelay>(mu, sigma));
    QuoteFeed feed(7);

    const auto total = static_cast<std::size_t>(minutes * 60.0 * rate);
    const double spacing = 1.0 / rate;

    struct Arrival {
        double time;
        AuthPacket packet;
    };
    std::vector<Arrival> arrivals;
    std::size_t sent = 0;
    std::size_t forged_injected = 0;
    for (std::size_t i = 0; i < total; ++i) {
        const double t = 0.01 + spacing * static_cast<double>(i);
        AuthPacket pkt = sender.make_packet(feed.next_quote(), t);
        ++sent;
        if (tamper && i % 97 == 13) {
            pkt.payload[0] ^= 0x20;  // attacker flips a byte mid-flight
            ++forged_injected;
        }
        if (const auto at = channel.transmit(t, rng)) arrivals.push_back({*at, std::move(pkt)});
    }
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const Arrival& a, const Arrival& b) { return a.time < b.time; });

    std::size_t authenticated = 0, rejected = 0, dropped_late = 0;
    RunningStats delay_stats;
    std::vector<double> arrival_of(total, 0.0);
    std::size_t max_buffer = 0;
    for (const auto& [time, packet] : arrivals) {
        arrival_of[packet.index] = time;
        for (const auto& ev : receiver.on_packet(packet, time)) {
            switch (ev.status) {
                case VerifyStatus::kAuthenticated:
                    ++authenticated;
                    delay_stats.add(time - arrival_of[ev.index]);
                    break;
                case VerifyStatus::kRejected:
                    ++rejected;
                    break;
                case VerifyStatus::kUnverifiable:
                    ++dropped_late;
                    break;
            }
        }
        max_buffer = std::max(max_buffer, receiver.buffered_packets());
    }
    const std::size_t never_keyed = receiver.finish().size();

    const std::size_t received = arrivals.size();
    std::printf("sent %zu quotes, received %zu (%.1f%% lost by the network)\n", sent,
                received, 100.0 * static_cast<double>(sent - received) / sent);
    std::printf("authenticated:       %zu (%.2f%% of received)\n", authenticated,
                100.0 * static_cast<double>(authenticated) / received);
    std::printf("rejected (forged):   %zu%s\n", rejected,
                tamper ? "  <- the --tamper injections" : "");
    std::printf("dropped (late/safety): %zu; stream-tail without keys: %zu\n", dropped_late,
                never_keyed);
    if (tamper)
        std::printf("forged quotes injected: %zu, none authenticated\n", forged_injected);
    std::printf("verification latency: mean %.0f ms, max %.0f ms (T_disclose %.0f ms)\n",
                delay_stats.mean() * 1000, delay_stats.max() * 1000,
                config.t_disclose() * 1000);
    std::printf("receiver buffer high-water mark: %zu quotes\n", max_buffer);
    return conformance.finish();
}

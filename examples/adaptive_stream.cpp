// Adaptive streaming: the closed loop from DESIGN.md §10 in ~60 lines.
//
//   build/examples/adaptive_stream [--receivers=4] [--blocks=30] [--storm=0.3]
//
// Receivers estimate their channel online (EWMA rate + Gilbert-Elliott
// burst fit) and report it back over a lossy NACK path; the sender
// re-invokes the §5 graph designer at block boundaries when the estimate
// drifts past the hysteresis band. We stream through a calm channel, then
// flip to a storm and watch the loop re-converge while a frozen design
// would be losing authenticability.
#include <cstdio>

#include "example_expect.hpp"
#include "mcauth.hpp"

using namespace mcauth;

int main(int argc, char** argv) {
    const CliArgs args(argc, argv);
    const auto receivers = static_cast<std::size_t>(args.get_int("receivers", 4));
    const auto blocks = static_cast<std::size_t>(args.get_int("blocks", 30));
    const double storm = args.get_double("storm", 0.3);
    // The full closed loop runs under the strictest suite: every regime
    // shift we announce below must be answered by a redesign within the
    // suite's lag bound (DESIGN.md §11).
    examples::ScenarioExpectations conformance("adaptive-loop", args);

    adapt::SessionOptions opts;
    opts.receivers = receivers;
    opts.block_size = 32;
    opts.payload_bytes = 64;
    opts.seed = 7;
    opts.controller.target_q_min = 0.85;
    opts.controller.conservative_prior = 0.05;  // start from a sunny design

    Rng signer_rng(42);
    MerkleWotsSigner signer(signer_rng, 4 * blocks + 8);
    adapt::AdaptiveSession session(opts, signer);

    std::printf("adaptive multicast authentication: %zu receivers, target q_min %.2f\n\n",
                receivers, opts.controller.target_q_min);

    struct Phase {
        const char* name;
        double p;
    };
    const Phase phases[] = {{"calm  p=0.05", 0.05}, {"storm", storm}, {"calm  p=0.05", 0.05}};
    std::uint32_t phase_index = 0;
    for (const Phase& phase : phases) {
        // Ground-truth regime boundary for the bounded-lag rule (the
        // initial phase is what the design already targets, not a shift).
        if (phase_index > 0)
            MCAUTH_OBS_EVENT(kRegimeShift, session.blocks_streamed(), phase_index, 0,
                             phase.p);
        ++phase_index;
        const BernoulliLoss loss(phase.p);
        const adapt::WindowStats w = session.run_window(loss, blocks);
        std::printf("%-14s est_loss %.3f  q_min %.3f  edges/pkt %.2f  "
                    "sign_copies %zu  redesigns %llu (suppressed %llu)\n",
                    phase.name, w.estimated_loss, w.q_min, w.edges_per_packet,
                    w.sign_copies, static_cast<unsigned long long>(w.redesigns),
                    static_cast<unsigned long long>(w.suppressed));
    }

    std::printf("\nthe sender redesigned its dependence graph when the estimate crossed\n"
                "the hysteresis band; receivers kept verifying through every redesign\n"
                "because authentication follows the hashes in the packets, not an\n"
                "out-of-band topology agreement.\n");
    return conformance.finish();
}

// Video broadcast under BURSTY loss: augmented chain vs EMSS.
//
//   build/examples/video_broadcast [--gops=40] [--gop=16] [--loss=0.15]
//                                  [--burst=5]
//
// The paper's §2 motivation for the augmented chain: Internet loss is
// bursty, and a scheme whose hash links all have short span dies to one
// burst. We stream "video" (one block per GOP, I-frame-sized first payload)
// through a Gilbert-Elliott channel and compare AC C_{3,3} against
// EMSS E_{2,1} and EMSS E_{2,8} on identical loss patterns.
#include <cstdio>

#include "example_expect.hpp"
#include "mcauth.hpp"

using namespace mcauth;

namespace {

struct Outcome {
    SimStats stats;
    std::string name;
};

Outcome run(const HashChainConfig& scheme, Signer& signer, double loss_rate, double burst,
            std::size_t gops, std::uint64_t seed) {
    Channel channel(
        burst <= 1.0
            ? std::unique_ptr<LossModel>(std::make_unique<BernoulliLoss>(loss_rate))
            : std::unique_ptr<LossModel>(std::make_unique<GilbertElliottLoss>(
                  GilbertElliottLoss::from_rate_and_burst(loss_rate, burst))),
        std::make_unique<GaussianDelay>(0.04, 0.01));
    SimConfig sim;
    sim.blocks = gops;
    sim.payload_bytes = 1200;  // near-MTU video slices
    sim.t_transmit = 0.005;
    sim.sign_copies = 3;
    sim.seed = seed;
    return {run_hash_chain_sim(scheme, signer, channel, sim), scheme.name};
}

}  // namespace

int main(int argc, char** argv) {
    const CliArgs args(argc, argv);
    const auto gops = static_cast<std::size_t>(args.get_int("gops", 40));
    const auto gop = static_cast<std::size_t>(args.get_int("gop", 16));
    const double loss = args.get_double("loss", 0.15);
    const double burst = args.get_double("burst", 5.0);
    examples::ScenarioExpectations conformance("hash-chain", args);

    std::printf("video broadcast: %zu GOPs x %zu slices, Gilbert-Elliott loss %.0f%% with "
                "mean burst %.1f packets\n\n",
                gops, gop, loss * 100, burst);

    Rng rng(777);
    MerkleWotsSigner signer(rng, 3 * gops + 4);

    const Outcome results[] = {
        run(emss_config(gop, 2, 1), signer, loss, burst, gops, 11),
        run(emss_config(gop, 2, 8), signer, loss, burst, gops, 11),
        run(augmented_chain_config(gop, 3, 3), signer, loss, burst, gops, 11),
    };

    std::printf("%-12s %12s %14s %14s %12s\n", "scheme", "received", "authenticated",
                "q(worst idx)", "B/packet");
    for (const auto& r : results) {
        std::printf("%-12s %12zu %14zu %14.4f %12.1f\n", r.name.c_str(),
                    r.stats.packets_received, r.stats.authenticated,
                    r.stats.empirical_q_min, r.stats.overhead_bytes_per_packet);
    }

    std::printf("\nanalysis cross-check (Monte-Carlo on the dependence-graphs, same "
                "channel):\n");
    auto ge = burst <= 1.0
                  ? std::unique_ptr<LossModel>(std::make_unique<BernoulliLoss>(loss))
                  : std::unique_ptr<LossModel>(std::make_unique<GilbertElliottLoss>(
                        GilbertElliottLoss::from_rate_and_burst(loss, burst)));
    Rng mc_rng(555);
    for (const auto& [name, dg] :
         {std::pair<std::string, DependenceGraph>{"emss(2,1)", make_emss(gop, 2, 1)},
          {"emss(2,8)", make_emss(gop, 2, 8)},
          {"ac(3,3)", make_augmented_chain(gop, 3, 3)}}) {
        auto loss_copy = ge->clone();
        const auto mc = monte_carlo_auth_prob(dg, *loss_copy, mc_rng.next_u64(), 20000);
        std::printf("  %-12s predicted q_min = %.4f\n", name.c_str(), mc.q_min);
    }

    std::printf("\nreading: with bursts ~%.0f packets, emss(2,1)'s short links break while"
                "\nthe wider-span links of emss(2,8) and ac(3,3) bridge the gaps; at"
                "\nburst=1 (--burst=1) the three schemes converge.\n", burst);
    return conformance.finish();
}

// Quickstart: authenticate a multicast stream with a hash-chained scheme
// and watch it survive packet loss.
//
//   build/examples/quickstart [--n=32] [--p=0.2] [--blocks=4]
//
// Walkthrough of the core API:
//   1. pick a scheme  = a dependence-graph topology (EMSS E_{2,1} here),
//   2. predict        = dependence-graph analysis of q_min / overhead,
//   3. run            = real sender -> lossy channel -> real receiver,
//   4. compare        = measured verification rate vs the prediction.
#include <cstdio>

#include "example_expect.hpp"
#include "mcauth.hpp"

using namespace mcauth;

int main(int argc, char** argv) {
    const CliArgs args(argc, argv);
    const auto n = static_cast<std::size_t>(args.get_int("n", 32));
    const double p = args.get_double("p", 0.2);
    const auto blocks = static_cast<std::size_t>(args.get_int("blocks", 16));
    // The simulated run below emits structured events; the hash-chain suite
    // checks signature-anchoring end to end (DESIGN.md §11).
    examples::ScenarioExpectations conformance("hash-chain", args);

    std::printf("mcauth quickstart: EMSS E_{2,1}, block size %zu, loss rate %.2f\n\n", n, p);

    // --- 1. the scheme is its dependence-graph topology --------------------
    const HashChainConfig scheme = emss_config(n, 2, 1);
    const DependenceGraph graph = scheme.topology(n);
    std::printf("dependence-graph: %zu packets, %zu edges, P_sign sent last\n",
                graph.packet_count(), graph.graph().edge_count());

    // --- 2. analysis: what should we expect on this channel? ---------------
    const AuthProb recurrence = recurrence_auth_prob(graph, p);
    const AuthProb exact = exact_offset_auth_prob(n, {1, 2}, MarkovChannel::bernoulli(p));
    const GraphMetrics metrics = compute_metrics(graph, SchemeParams{});
    std::printf("predicted q_min — paper's recurrence (Eq. 8): %.4f\n", recurrence.q_min);
    std::printf("predicted q_min — exact transfer-matrix DP:   %.4f\n", exact.q_min);
    std::printf("overhead: %.2f hashes/packet, worst receiver delay %.2fs\n\n",
                metrics.hashes_per_packet, metrics.max_receiver_delay);

    // --- 3. run it for real -------------------------------------------------
    Rng rng(2024);
    MerkleWotsSigner signer(rng, blocks + 1);  // hash-based signatures, one per block
    Channel channel(std::make_unique<BernoulliLoss>(p),
                    std::make_unique<GaussianDelay>(0.05, 0.01));
    SimConfig sim;
    sim.blocks = blocks;
    sim.payload_bytes = 256;
    sim.t_transmit = 0.01;
    sim.sign_copies = 3;  // replicate P_sign (the paper assumes it arrives)
    sim.seed = 99;
    const SimStats stats = run_hash_chain_sim(scheme, signer, channel, sim);

    // --- 4. measured vs predicted ------------------------------------------
    std::printf("sent %zu packets, received %zu, authenticated %zu, unverifiable %zu\n",
                stats.packets_sent, stats.packets_received, stats.authenticated,
                stats.unverifiable);
    std::printf("measured verification rate of received packets: %.4f\n",
                stats.auth_fraction());
    std::printf("measured worst-index q: %.4f (exact prediction %.4f; the paper's\n"
                "recurrence said %.4f — see EXPERIMENTS.md on its optimism)\n",
                stats.empirical_q_min, exact.q_min, recurrence.q_min);
    std::printf("measured overhead: %.1f bytes/packet; max receiver buffer: %zu packets\n",
                stats.overhead_bytes_per_packet, stats.max_buffered_packets);
    std::printf("\n(every 'authenticated' packet above passed a real signature-anchored\n"
                "hash-chain check; flip any byte in transit and it would be rejected.)\n");
    return conformance.finish();
}

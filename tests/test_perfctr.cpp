// obs::PerfCounterSet / PerfRegion: the forced-unavailable fallback (runs
// everywhere — containers routinely deny perf_event_open), the live-counter
// path (skipped, not failed, where the syscall is denied), and the
// "unavailable, never fake zero" reporting contract.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "obs/perfctr.hpp"

namespace mcauth::obs {
namespace {

class PerfCtrTest : public ::testing::Test {
protected:
    void TearDown() override { PerfCounterSet::set_forced_unavailable(false); }
};

// The degradation contract: a set constructed while the syscall is (or
// pretends to be) denied must be safely usable end to end, and everything
// it reports must say "unavailable" — never a plausible-looking zero.
TEST_F(PerfCtrTest, ForcedUnavailableSetIsInertButSafe) {
    PerfCounterSet::set_forced_unavailable(true);
    PerfCounterSet set;
    EXPECT_FALSE(set.available());

    set.start();  // no-ops, no crash
    const PerfReading r = set.stop();
    EXPECT_FALSE(r.available);
    EXPECT_EQ(r.cycles, PerfReading::kUnavailable);
    EXPECT_EQ(r.instructions, PerfReading::kUnavailable);
    EXPECT_EQ(r.cache_references, PerfReading::kUnavailable);
    EXPECT_EQ(r.cache_misses, PerfReading::kUnavailable);
    EXPECT_EQ(r.branches, PerfReading::kUnavailable);
    EXPECT_EQ(r.branch_misses, PerfReading::kUnavailable);
    EXPECT_TRUE(std::isnan(r.ipc()));
    EXPECT_TRUE(std::isnan(r.cache_miss_rate()));
    EXPECT_TRUE(std::isnan(r.branch_miss_rate()));
    EXPECT_EQ(r.to_json(), "\"unavailable\"");
}

TEST_F(PerfCtrTest, ForcedUnavailableOnlyAffectsNewSets) {
    PerfCounterSet live;  // constructed before the flag flips
    const bool was_available = live.available();
    PerfCounterSet::set_forced_unavailable(true);
    EXPECT_EQ(live.available(), was_available);  // live set untouched
    PerfCounterSet denied;
    EXPECT_FALSE(denied.available());
}

TEST_F(PerfCtrTest, PerfRegionWritesReadingOnScopeExit) {
    PerfCounterSet::set_forced_unavailable(true);
    PerfCounterSet set;
    PerfReading out;
    out.available = true;  // must be overwritten by the region's reading
    out.cycles = 123;
    {
        PerfRegion region(set, &out);
    }
    EXPECT_FALSE(out.available);
    EXPECT_EQ(out.cycles, PerfReading::kUnavailable);
}

TEST_F(PerfCtrTest, PerfRegionNullOutIsSafe) {
    PerfCounterSet::set_forced_unavailable(true);
    PerfCounterSet set;
    {
        PerfRegion region(set, nullptr);
    }  // must not dereference
}

// Live path: only meaningful where the kernel grants perf_event_open; in a
// sandbox that denies it the right outcome is SKIP, not FAIL.
TEST_F(PerfCtrTest, LiveCountersCountRealWorkWhenAvailable) {
    PerfCounterSet set;
    if (!set.available())
        GTEST_SKIP() << "perf_event_open denied here (container/CI sandbox)";

    PerfReading r;
    {
        PerfRegion region(set, &r);
        // Enough work that any opened counter must tick.
        volatile std::uint64_t sink = 0;
        for (std::uint64_t i = 0; i < 1'000'000; ++i) sink += i * i;
    }
    EXPECT_TRUE(r.available);
    // Whichever events opened must report positive counts for this loop.
    if (r.cycles != PerfReading::kUnavailable) EXPECT_GT(r.cycles, 0);
    if (r.instructions != PerfReading::kUnavailable) EXPECT_GT(r.instructions, 0);
    if (r.cycles > 0 && r.instructions > 0) {
        EXPECT_FALSE(std::isnan(r.ipc()));
        EXPECT_GT(r.ipc(), 0.0);
    }
    EXPECT_NE(r.to_json(), "\"unavailable\"");
}

// to_json with hand-set fields: delivered counters appear, kUnavailable
// ones are omitted (not rendered as -1 or 0), ratios only when defined.
TEST_F(PerfCtrTest, ReadingJsonOmitsUnavailableFields) {
    PerfReading r;
    r.available = true;
    r.cycles = 1000;
    r.instructions = 1840;
    // cache/branch events left kUnavailable.
    const std::string json = r.to_json();
    EXPECT_EQ(json,
              "{\"cycles\": 1000, \"instructions\": 1840, \"ipc\": 1.8400}");
    EXPECT_EQ(json.find("cache"), std::string::npos);
    EXPECT_EQ(json.find("-1"), std::string::npos);
}

TEST_F(PerfCtrTest, RatiosNeedBothInputs) {
    PerfReading r;
    r.cycles = 100;  // instructions still kUnavailable
    EXPECT_TRUE(std::isnan(r.ipc()));
    r.instructions = 0;  // zero instructions is a valid (if odd) reading
    EXPECT_DOUBLE_EQ(r.ipc(), 0.0);
    r.cycles = 0;  // zero cycles cannot divide
    EXPECT_TRUE(std::isnan(r.ipc()));
    r.cache_misses = 5;
    EXPECT_TRUE(std::isnan(r.cache_miss_rate()));  // no references
    r.cache_references = 10;
    EXPECT_DOUBLE_EQ(r.cache_miss_rate(), 0.5);
}

}  // namespace
}  // namespace mcauth::obs

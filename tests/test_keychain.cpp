#include <gtest/gtest.h>

#include "crypto/keychain.hpp"
#include "util/hex.hpp"

namespace mcauth {
namespace {

std::vector<std::uint8_t> seed() { return from_hex("00112233445566778899aabbccddeeff"); }

TEST(TeslaKeyChain, ChainLinksBackward) {
    const TeslaKeyChain chain(seed(), 16);
    EXPECT_EQ(chain.length(), 16u);
    for (std::size_t i = 1; i <= 16; ++i) {
        EXPECT_EQ(tesla_chain_step(chain.key(i)), chain.key(i - 1)) << "i=" << i;
    }
}

TEST(TeslaKeyChain, CommitmentIsKeyZero) {
    const TeslaKeyChain chain(seed(), 8);
    EXPECT_EQ(chain.commitment(), chain.key(0));
}

TEST(TeslaKeyChain, MacKeysDifferFromChainKeys) {
    const TeslaKeyChain chain(seed(), 8);
    for (std::size_t i = 1; i <= 8; ++i) {
        EXPECT_NE(to_hex(chain.mac_key(i)), to_hex(chain.key(i)));
    }
}

TEST(TeslaKeyChain, DeterministicFromSeed) {
    const TeslaKeyChain a(seed(), 8);
    const TeslaKeyChain b(seed(), 8);
    EXPECT_EQ(a.key(5), b.key(5));
}

TEST(TeslaKeyChain, DifferentSeedsDiffer) {
    const TeslaKeyChain a(seed(), 8);
    const TeslaKeyChain b(from_hex("ff"), 8);
    EXPECT_NE(to_hex(a.key(5)), to_hex(b.key(5)));
}

TEST(TeslaKeyChain, BoundsChecked) {
    const TeslaKeyChain chain(seed(), 4);
    EXPECT_THROW(chain.key(5), std::invalid_argument);
    EXPECT_THROW(chain.mac_key(0), std::invalid_argument);  // interval 0 has no MAC key
}

TEST(TeslaKeyVerifier, AcceptsForwardDisclosures) {
    const TeslaKeyChain chain(seed(), 16);
    TeslaKeyVerifier verifier(chain.commitment());
    EXPECT_TRUE(verifier.accept(3, chain.key(3)));
    EXPECT_EQ(verifier.last_index(), 3u);
    EXPECT_TRUE(verifier.accept(4, chain.key(4)));
    EXPECT_TRUE(verifier.accept(10, chain.key(10)));  // gap of 6: walk-back repair
    EXPECT_EQ(verifier.last_index(), 10u);
}

TEST(TeslaKeyVerifier, RejectsStaleAndReplayed) {
    const TeslaKeyChain chain(seed(), 16);
    TeslaKeyVerifier verifier(chain.commitment());
    EXPECT_TRUE(verifier.accept(5, chain.key(5)));
    EXPECT_FALSE(verifier.accept(5, chain.key(5)));  // replay
    EXPECT_FALSE(verifier.accept(3, chain.key(3)));  // stale
    EXPECT_EQ(verifier.last_index(), 5u);
}

TEST(TeslaKeyVerifier, RejectsForgedKey) {
    const TeslaKeyChain chain(seed(), 16);
    TeslaKeyVerifier verifier(chain.commitment());
    TeslaKey forged = chain.key(3);
    forged[0] ^= 1;
    EXPECT_FALSE(verifier.accept(3, forged));
    EXPECT_EQ(verifier.last_index(), 0u);  // trust anchor unmoved
}

TEST(TeslaKeyVerifier, RejectsKeyUnderWrongIndex) {
    const TeslaKeyChain chain(seed(), 16);
    TeslaKeyVerifier verifier(chain.commitment());
    // Real key 4 presented as key 5 must fail (index binding).
    EXPECT_FALSE(verifier.accept(5, chain.key(4)));
}

TEST(TeslaKeyVerifier, WalkCapGuardsCpu) {
    const TeslaKeyChain chain(seed(), 16);
    TeslaKeyVerifier verifier(chain.commitment());
    EXPECT_FALSE(verifier.accept(1u << 30, chain.key(8), /*max_walk=*/100));
}

TEST(TeslaKeyVerifier, KeyForWalksBack) {
    const TeslaKeyChain chain(seed(), 16);
    TeslaKeyVerifier verifier(chain.commitment());
    ASSERT_TRUE(verifier.accept(10, chain.key(10)));
    for (std::size_t i = 0; i <= 10; ++i) {
        const auto key = verifier.key_for(i);
        ASSERT_TRUE(key.has_value()) << i;
        EXPECT_EQ(*key, chain.key(i)) << i;
    }
    EXPECT_FALSE(verifier.key_for(11).has_value());  // not yet disclosed
}

}  // namespace
}  // namespace mcauth

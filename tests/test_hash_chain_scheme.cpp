#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>

#include "auth/hash_chain_scheme.hpp"
#include "core/topologies.hpp"
#include "net/loss.hpp"
#include "util/rng.hpp"

namespace mcauth {
namespace {

std::vector<std::vector<std::uint8_t>> payloads_for(Rng& rng, std::size_t n,
                                                    std::size_t bytes = 64) {
    std::vector<std::vector<std::uint8_t>> out;
    for (std::size_t i = 0; i < n; ++i) out.push_back(rng.bytes(bytes));
    return out;
}

struct Pipe {
    explicit Pipe(HashChainConfig config, std::uint64_t seed = 100)
        : rng(seed),
          signer(rng, 8),
          sender(config, signer),
          receiver(config, signer.make_verifier()) {}

    Rng rng;
    MerkleWotsSigner signer;
    HashChainSender sender;
    HashChainReceiver receiver;
};

std::map<std::uint32_t, VerifyStatus> feed_all(HashChainReceiver& receiver,
                                               const std::vector<AuthPacket>& packets) {
    std::map<std::uint32_t, VerifyStatus> verdicts;
    for (const auto& pkt : packets)
        for (const auto& ev : receiver.on_packet(pkt)) verdicts[ev.index] = ev.status;
    return verdicts;
}

// --------------------------------------------------------------- no loss

class NoLossAllSchemes : public ::testing::TestWithParam<HashChainConfig> {};

TEST_P(NoLossAllSchemes, EverythingAuthenticates) {
    Pipe pipe(GetParam());
    const std::size_t n = GetParam().block_size;
    const auto packets = pipe.sender.make_block(0, payloads_for(pipe.rng, n));
    ASSERT_EQ(packets.size(), n);
    const auto verdicts = feed_all(pipe.receiver, packets);
    ASSERT_EQ(verdicts.size(), n);
    for (const auto& [index, status] : verdicts)
        EXPECT_EQ(status, VerifyStatus::kAuthenticated) << index;
}

INSTANTIATE_TEST_SUITE_P(Schemes, NoLossAllSchemes,
                         ::testing::Values(rohatgi_config(16), emss_config(16, 2, 1),
                                           emss_config(24, 3, 2),
                                           augmented_chain_config(16, 2, 2),
                                           augmented_chain_config(25, 3, 3)),
                         [](const auto& info) {
                             std::string name = info.param.name;
                             for (char& c : name)
                                 if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                             return name + std::to_string(info.param.block_size);
                         });

// ------------------------------------------------ loss matches the theory

TEST(HashChain, AuthenticatedSetEqualsDependenceGraphPrediction) {
    // The central integration property: for any loss pattern, the codec
    // authenticates exactly the packets Definition 1 says are verifiable.
    const auto config = emss_config(20, 2, 1);
    Pipe pipe(config);
    const DependenceGraph dg = config.topology(config.block_size);
    Rng loss_rng(55);
    BernoulliLoss loss(0.3);

    for (std::uint32_t block = 0; block < 8; ++block) {
        const auto packets = pipe.sender.make_block(block, payloads_for(pipe.rng, 20));
        const auto pattern = sample_loss_pattern(loss, loss_rng, 20);

        // Deliver surviving packets; force P_sign through (paper assumption).
        std::vector<bool> received_by_vertex(20, false);
        std::map<std::uint32_t, VerifyStatus> verdicts;
        for (std::size_t pos = 0; pos < 20; ++pos) {
            const VertexId v = dg.vertex_at_send_pos(static_cast<std::uint32_t>(pos));
            const bool deliver = v == DependenceGraph::root() || !pattern[pos];
            if (!deliver) continue;
            received_by_vertex[v] = true;
            for (const auto& ev : pipe.receiver.on_packet(packets[pos]))
                verdicts[ev.index] = ev.status;
        }
        const auto predicted = dg.verifiable_given(received_by_vertex);
        for (VertexId v = 0; v < 20; ++v) {
            const std::uint32_t pos = dg.send_pos(v);
            const bool authenticated =
                verdicts.count(pos) != 0 && verdicts[pos] == VerifyStatus::kAuthenticated;
            EXPECT_EQ(authenticated, static_cast<bool>(predicted[v]))
                << "block " << block << " vertex " << v;
        }
        pipe.receiver.finish_block(block);
    }
}

TEST(HashChain, RohatgiStopsAtFirstGap) {
    const auto config = rohatgi_config(10);
    Pipe pipe(config);
    const auto packets = pipe.sender.make_block(0, payloads_for(pipe.rng, 10));
    std::map<std::uint32_t, VerifyStatus> verdicts;
    for (std::size_t i = 0; i < 10; ++i) {
        if (i == 4) continue;  // drop one packet
        for (const auto& ev : pipe.receiver.on_packet(packets[i]))
            verdicts[ev.index] = ev.status;
    }
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(verdicts.at(static_cast<std::uint32_t>(i)), VerifyStatus::kAuthenticated);
    for (std::size_t i = 5; i < 10; ++i)
        EXPECT_EQ(verdicts.count(static_cast<std::uint32_t>(i)), 0u) << i;  // pending forever
    const auto flushed = pipe.receiver.finish_block(0);
    EXPECT_EQ(flushed.size(), 5u);
    for (const auto& ev : flushed) EXPECT_EQ(ev.status, VerifyStatus::kUnverifiable);
}

// ----------------------------------------------------------- out of order

TEST(HashChain, ReversedDeliveryStillAuthenticatesEverything) {
    const auto config = emss_config(16, 2, 1);
    Pipe pipe(config);
    auto packets = pipe.sender.make_block(0, payloads_for(pipe.rng, 16));
    std::reverse(packets.begin(), packets.end());
    const auto verdicts = feed_all(pipe.receiver, packets);
    EXPECT_EQ(verdicts.size(), 16u);
    for (const auto& [index, status] : verdicts)
        EXPECT_EQ(status, VerifyStatus::kAuthenticated);
}

TEST(HashChain, SignatureLastUnlocksCascade) {
    const auto config = emss_config(12, 2, 1);
    Pipe pipe(config);
    const auto packets = pipe.sender.make_block(0, payloads_for(pipe.rng, 12));
    // Deliver all data packets first: nothing can authenticate yet.
    std::size_t early_verdicts = 0;
    for (std::size_t i = 0; i + 1 < packets.size(); ++i)
        early_verdicts += pipe.receiver.on_packet(packets[i]).size();
    EXPECT_EQ(early_verdicts, 0u);
    EXPECT_EQ(pipe.receiver.buffered_packets(), 11u);
    // The signature packet (sent last in EMSS) resolves the whole block.
    const auto events = pipe.receiver.on_packet(packets.back());
    EXPECT_EQ(events.size(), 12u);
    EXPECT_EQ(pipe.receiver.buffered_packets(), 0u);
}

TEST(HashChain, DuplicatesAreIdempotent) {
    const auto config = emss_config(8, 2, 1);
    Pipe pipe(config);
    const auto packets = pipe.sender.make_block(0, payloads_for(pipe.rng, 8));
    auto verdicts = feed_all(pipe.receiver, packets);
    EXPECT_EQ(verdicts.size(), 8u);
    for (const auto& pkt : packets) EXPECT_TRUE(pipe.receiver.on_packet(pkt).empty());
}

// --------------------------------------------------------------- tampering

TEST(HashChain, TamperedPayloadRejectedAndRecoverable) {
    const auto config = emss_config(10, 2, 1);
    Pipe pipe(config);
    const auto packets = pipe.sender.make_block(0, payloads_for(pipe.rng, 10));

    AuthPacket forged = packets[3];
    forged.payload[0] ^= 0xff;

    std::map<std::uint32_t, VerifyStatus> verdicts;
    bool saw_rejection = false;
    for (std::size_t i = 0; i < packets.size(); ++i) {
        const AuthPacket& to_send = (i == 3) ? forged : packets[i];
        for (const auto& ev : pipe.receiver.on_packet(to_send)) {
            if (ev.index == 3 && ev.status == VerifyStatus::kRejected) saw_rejection = true;
            verdicts[ev.index] = ev.status;
        }
    }
    EXPECT_TRUE(saw_rejection);
    // The genuine copy can still authenticate afterwards (no slot poisoning).
    for (const auto& ev : pipe.receiver.on_packet(packets[3])) verdicts[ev.index] = ev.status;
    EXPECT_EQ(verdicts.at(3), VerifyStatus::kAuthenticated);
}

TEST(HashChain, ForgedSignaturePacketRejected) {
    const auto config = emss_config(8, 2, 1);
    Pipe pipe(config);
    auto packets = pipe.sender.make_block(0, payloads_for(pipe.rng, 8));
    AuthPacket& sig_packet = packets.back();  // EMSS signs the last packet
    ASSERT_EQ(sig_packet.kind, PacketKind::kSignature);
    sig_packet.payload[0] ^= 1;  // signature no longer matches
    const auto events = pipe.receiver.on_packet(sig_packet);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].status, VerifyStatus::kRejected);
}

TEST(HashChain, TamperedEmbeddedHashBreaksDownstreamOnly) {
    const auto config = rohatgi_config(6);
    Pipe pipe(config);
    auto packets = pipe.sender.make_block(0, payloads_for(pipe.rng, 6));
    // Corrupt the hash P2 carries for P3 (positions: 0 signed, chain forward).
    ASSERT_FALSE(packets[2].hashes.empty());
    packets[2].hashes[0].digest[0] ^= 1;
    std::map<std::uint32_t, VerifyStatus> verdicts = feed_all(pipe.receiver, packets);
    // P0..P2 fine; P3 rejected against the corrupted trusted hash.
    EXPECT_EQ(verdicts.at(0), VerifyStatus::kAuthenticated);
    EXPECT_EQ(verdicts.at(1), VerifyStatus::kAuthenticated);
    // Note: P2's own digest covers its (corrupted) hash list, so P2 itself
    // fails against the hash carried by P1.
    EXPECT_EQ(verdicts.at(2), VerifyStatus::kRejected);
}

// ----------------------------------------------------------- multi-block

TEST(HashChain, BlocksAreIndependent) {
    const auto config = emss_config(8, 2, 1);
    Pipe pipe(config);
    const auto block0 = pipe.sender.make_block(0, payloads_for(pipe.rng, 8));
    const auto block1 = pipe.sender.make_block(1, payloads_for(pipe.rng, 8));
    // Interleave the two blocks.
    std::map<std::uint32_t, int> auth_count;
    for (std::size_t i = 0; i < 8; ++i) {
        for (const auto& ev : pipe.receiver.on_packet(block0[i])) {
            if (ev.status == VerifyStatus::kAuthenticated) ++auth_count[ev.block_id];
        }
        for (const auto& ev : pipe.receiver.on_packet(block1[i])) {
            if (ev.status == VerifyStatus::kAuthenticated) ++auth_count[ev.block_id];
        }
    }
    EXPECT_EQ(auth_count[0], 8);
    EXPECT_EQ(auth_count[1], 8);
}

TEST(HashChain, FinishAllFlushesEverything) {
    const auto config = emss_config(8, 2, 1);
    Pipe pipe(config);
    const auto block0 = pipe.sender.make_block(0, payloads_for(pipe.rng, 8));
    const auto block1 = pipe.sender.make_block(1, payloads_for(pipe.rng, 8));
    pipe.receiver.on_packet(block0[0]);
    pipe.receiver.on_packet(block1[0]);
    const auto events = pipe.receiver.finish_all();
    EXPECT_EQ(events.size(), 2u);
    EXPECT_EQ(pipe.receiver.buffered_packets(), 0u);
    EXPECT_EQ(pipe.receiver.buffered_digests(), 0u);
}

// -------------------------------------------------------------- topology

TEST(HashChain, WirePacketsCarryOutDegreeHashes) {
    const auto config = emss_config(16, 2, 1);
    Pipe pipe(config);
    const DependenceGraph dg = config.topology(16);
    const auto packets = pipe.sender.make_block(0, payloads_for(pipe.rng, 16));
    for (std::size_t pos = 0; pos < 16; ++pos) {
        const VertexId v = dg.vertex_at_send_pos(static_cast<std::uint32_t>(pos));
        EXPECT_EQ(packets[pos].hashes.size(), dg.graph().out_degree(v)) << pos;
    }
}

TEST(HashChain, HashLengthFollowsConfig) {
    auto config = emss_config(8, 2, 1, /*hash_bytes=*/20);
    Pipe pipe(config);
    const auto packets = pipe.sender.make_block(0, payloads_for(pipe.rng, 8));
    for (const auto& pkt : packets)
        for (const auto& href : pkt.hashes) EXPECT_EQ(href.digest.size(), 20u);
}

TEST(HashChain, MalformedIndexIgnored) {
    const auto config = emss_config(8, 2, 1);
    Pipe pipe(config);
    AuthPacket bogus;
    bogus.block_id = 0;
    bogus.index = 999;  // out of range for the block
    EXPECT_TRUE(pipe.receiver.on_packet(bogus).empty());
}

TEST(HashChain, SenderRejectsWrongPayloadCount) {
    const auto config = emss_config(8, 2, 1);
    Pipe pipe(config);
    EXPECT_THROW(pipe.sender.make_block(0, payloads_for(pipe.rng, 7)),
                 std::invalid_argument);
}

}  // namespace
}  // namespace mcauth

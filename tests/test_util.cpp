#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/hex.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace mcauth {
namespace {

// ----------------------------------------------------------------- rng

TEST(Rng, DeterministicFromSeed) {
    Rng a(12345);
    Rng b(12345);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next_u64() == b.next_u64()) ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformBelowCoversSupportWithoutBias) {
    Rng rng(11);
    std::vector<int> counts(10, 0);
    const int draws = 100000;
    for (int i = 0; i < draws; ++i) ++counts[rng.uniform_below(10)];
    for (int c : counts) {
        EXPECT_GT(c, draws / 10 - 600);
        EXPECT_LT(c, draws / 10 + 600);
    }
}

TEST(Rng, UniformBelowOneIsZero) {
    Rng rng(3);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Rng, BernoulliMatchesProbability) {
    Rng rng(5);
    int hits = 0;
    const int draws = 100000;
    for (int i = 0; i < draws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerateEndpoints) {
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, NormalMomentsMatch) {
    Rng rng(9);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i) stats.add(rng.normal(2.0, 3.0));
    EXPECT_NEAR(stats.mean(), 2.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(Rng, ExponentialMeanMatches) {
    Rng rng(13);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i) stats.add(rng.exponential(4.0));
    EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(Rng, BytesLengthAndDeterminism) {
    Rng a(21), b(21);
    const auto x = a.bytes(37);
    const auto y = b.bytes(37);
    EXPECT_EQ(x.size(), 37u);
    EXPECT_EQ(x, y);
}

TEST(Rng, ForkProducesIndependentStream) {
    Rng a(31);
    Rng child = a.fork();
    // Child stream should not replay the parent stream.
    Rng fresh(31);
    fresh.next_u64();  // consume the value used for forking
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (child.next_u64() == fresh.next_u64()) ++same;
    EXPECT_LT(same, 2);
}

TEST(Xoshiro, JumpChangesState) {
    Xoshiro256ss a(1);
    Xoshiro256ss b(1);
    b.jump();
    EXPECT_NE(a.next(), b.next());
}

// ----------------------------------------------------------------- stats

TEST(RunningStats, EmptyIsZero) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSample) {
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSingleStream) {
    RunningStats all, a, b;
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal();
        all.add(x);
        (i % 2 == 0 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
}

TEST(RunningStats, MergeMatchesNaiveTwoPassOnUnevenSplits) {
    // Welford parallel-combine vs a naive two-pass mean/variance over the
    // concatenation, for deliberately lopsided partition sizes.
    Rng rng(23);
    const std::vector<std::pair<std::size_t, std::size_t>> splits{
        {1, 999}, {10, 990}, {500, 500}, {997, 3}};
    for (const auto& [na, nb] : splits) {
        std::vector<double> values;
        RunningStats a, b;
        for (std::size_t i = 0; i < na; ++i) {
            const double x = rng.normal() * 3.0 + 10.0;
            values.push_back(x);
            a.add(x);
        }
        for (std::size_t i = 0; i < nb; ++i) {
            const double x = rng.normal() * 0.5 - 4.0;  // different regime
            values.push_back(x);
            b.add(x);
        }
        a.merge(b);

        double sum = 0.0;
        for (double x : values) sum += x;
        const double mean = sum / static_cast<double>(values.size());
        double ss = 0.0;
        for (double x : values) ss += (x - mean) * (x - mean);
        const double variance = ss / static_cast<double>(values.size() - 1);

        EXPECT_EQ(a.count(), values.size()) << na << "+" << nb;
        EXPECT_NEAR(a.mean(), mean, 1e-10) << na << "+" << nb;
        EXPECT_NEAR(a.variance(), variance, 1e-9) << na << "+" << nb;
    }
}

TEST(RunningStats, MergeWithEmptyIsIdentityBothWays) {
    RunningStats a;
    for (double x : {1.0, 2.0, 6.0}) a.add(x);
    const double mean = a.mean();
    const double variance = a.variance();

    RunningStats empty;
    a.merge(empty);  // merging in nothing changes nothing
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), mean);
    EXPECT_DOUBLE_EQ(a.variance(), variance);

    RunningStats fresh;
    fresh.merge(a);  // merging into nothing copies everything
    EXPECT_EQ(fresh.count(), 3u);
    EXPECT_DOUBLE_EQ(fresh.mean(), mean);
    EXPECT_DOUBLE_EQ(fresh.variance(), variance);
    EXPECT_EQ(fresh.min(), 1.0);
    EXPECT_EQ(fresh.max(), 6.0);
}

TEST(Quantile, MedianAndExtremes) {
    std::vector<double> v{5, 1, 4, 2, 3};
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Quantile, InterpolatesBetweenRanks) {
    std::vector<double> v{0.0, 10.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
}

TEST(NormalCdf, KnownValues) {
    EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
    EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

TEST(NormalQuantile, RoundTripsThroughCdf) {
    for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
        EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-8) << "p=" << p;
    }
}

TEST(WilsonHalfwidth, ShrinksWithSamples) {
    const double w100 = wilson_halfwidth(0.5, 100);
    const double w10000 = wilson_halfwidth(0.5, 10000);
    EXPECT_GT(w100, w10000);
    EXPECT_NEAR(w10000, 0.0098, 0.001);
}

// ------------------------------------------------------------- histogram

TEST(Histogram, BinningAndOverflow) {
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.99);
    h.add(-1.0);
    h.add(10.0);
    EXPECT_EQ(h.bin_count(0), 1u);
    EXPECT_EQ(h.bin_count(9), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, QuantileMatchesMass) {
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i) h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
}

TEST(Histogram, RenderMentionsCounts) {
    Histogram h(0.0, 1.0, 2);
    h.add(0.25);
    const std::string out = h.render();
    EXPECT_NE(out.find('#'), std::string::npos);
}

// ----------------------------------------------------------------- table

TEST(TablePrinter, AlignsAndCounts) {
    TablePrinter t({"a", "long_header"});
    t.add_row({"1", "2"});
    t.add_row({"333", "4"});
    EXPECT_EQ(t.rows(), 2u);
    const std::string out = t.render();
    EXPECT_NE(out.find("long_header"), std::string::npos);
    EXPECT_NE(out.find("333"), std::string::npos);
}

TEST(TablePrinter, RejectsArityMismatch) {
    TablePrinter t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TablePrinter, NumFormatting) {
    EXPECT_EQ(TablePrinter::num(1.23456, 2), "1.23");
    EXPECT_EQ(TablePrinter::num(std::size_t{42}), "42");
}

// ------------------------------------------------------------------- hex

TEST(Hex, RoundTrip) {
    const std::vector<std::uint8_t> bytes{0x00, 0xff, 0x10, 0xab};
    EXPECT_EQ(to_hex(bytes), "00ff10ab");
    EXPECT_EQ(from_hex("00ff10ab"), bytes);
    EXPECT_EQ(from_hex("00FF10AB"), bytes);
}

TEST(Hex, RejectsMalformed) {
    EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
    EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // bad digit
}

// ------------------------------------------------------------------- cli

TEST(Cli, ParsesKeyValueAndFlags) {
    // A bare flag followed by another --option stays a flag; space-separated
    // values belong to the option before them.
    const char* argv[] = {"prog", "--n=100", "--p=0.25", "--verbose", "--k=1"};
    CliArgs args(5, argv);
    EXPECT_EQ(args.get_int("n", 0), 100);
    EXPECT_DOUBLE_EQ(args.get_double("p", 0.0), 0.25);
    EXPECT_TRUE(args.get_bool("verbose", false));
    EXPECT_FALSE(args.has("missing"));
    EXPECT_EQ(args.get_int("missing", 7), 7);
}

TEST(Cli, ParsesSpaceSeparatedValues) {
    const char* argv[] = {"prog", "--seed", "42", "--metrics-out", "m.json", "--obs"};
    CliArgs args(6, argv);
    EXPECT_EQ(args.get_int("seed", 0), 42);
    EXPECT_EQ(args.get("metrics-out", ""), "m.json");
    EXPECT_TRUE(args.get_bool("obs", false));  // trailing bare flag
}

TEST(Cli, MixedFormsCoexist) {
    const char* argv[] = {"prog", "--a=1", "--b", "2", "--c"};
    CliArgs args(5, argv);
    EXPECT_EQ(args.get_int("a", 0), 1);
    EXPECT_EQ(args.get_int("b", 0), 2);
    EXPECT_TRUE(args.get_bool("c", false));
}

TEST(Cli, EqualsFormKeepsEmbeddedEqualsAndEmptyValues) {
    // Only the FIRST '=' splits; paths and expressions keep theirs. An empty
    // value (`--manifest-out=`) is a present key with value "", not a flag.
    const char* argv[] = {"prog", "--expr=a=b=c", "--manifest-out="};
    CliArgs args(3, argv);
    EXPECT_EQ(args.get("expr", ""), "a=b=c");
    EXPECT_TRUE(args.has("manifest-out"));
    EXPECT_EQ(args.get("manifest-out", "unset"), "");
    EXPECT_FALSE(args.get_bool("manifest-out", true));
}

TEST(Cli, RepeatedKeysAreLastWins) {
    // The regression: emplace kept the FIRST value, so a caller's override
    // after a script's defaults was silently ignored. All three syntactic
    // forms must override each other.
    const char* argv[] = {"prog", "--seed=1", "--seed", "2", "--mode=a",
                          "--mode=b", "--flag", "--flag=off"};
    CliArgs args(8, argv);
    EXPECT_EQ(args.get_int("seed", 0), 2);
    EXPECT_EQ(args.get("mode", ""), "b");
    EXPECT_EQ(args.get("flag", ""), "off");
    EXPECT_EQ(args.keys().size(), 3u);  // duplicates collapse, no ghosts
}

TEST(Cli, RepeatedKeysStillRejectUnknownTypos) {
    // Last-wins must not weaken unknown-flag rejection.
    const char* argv[] = {"prog", "--seed=1", "--seed=2", "--sede=3"};
    CliArgs args(4, argv);
    const std::string_view known[] = {"seed"};
    const auto unknown = args.unknown_keys(known);
    ASSERT_EQ(unknown.size(), 1u);
    EXPECT_EQ(unknown[0], "sede");
}

TEST(Cli, RejectsNonNumeric) {
    const char* argv[] = {"prog", "--n=abc"};
    CliArgs args(2, argv);
    EXPECT_THROW(args.get_int("n", 0), std::invalid_argument);
}

TEST(Cli, KeysAreSorted) {
    const char* argv[] = {"prog", "--zeta=1", "--alpha", "--mid", "3"};
    CliArgs args(5, argv);
    const auto keys = args.keys();
    ASSERT_EQ(keys.size(), 3u);
    EXPECT_EQ(keys[0], "alpha");
    EXPECT_EQ(keys[1], "mid");
    EXPECT_EQ(keys[2], "zeta");
}

TEST(Cli, UnknownKeysFlagsTypos) {
    // The motivating bug: `--thread=8` (missing the s) used to silently run
    // serial; unknown_keys is how harnesses catch it.
    const char* argv[] = {"prog", "--thread=8", "--seed=1", "--warmup"};
    CliArgs args(4, argv);
    const std::string_view known[] = {"seed", "threads", "warmup"};
    const auto unknown = args.unknown_keys(known);
    ASSERT_EQ(unknown.size(), 1u);
    EXPECT_EQ(unknown[0], "thread");
}

TEST(Cli, UnknownKeysHonorsPrefixes) {
    // Pass-through namespaces (e.g. google-benchmark's benchmark_* flags)
    // are declared by prefix.
    const char* argv[] = {"prog", "--benchmark_filter=sha", "--benchmark_min_time=2",
                          "--bench=oops"};
    CliArgs args(4, argv);
    const std::string_view known[] = {"seed"};
    const std::string_view prefixes[] = {"benchmark_"};
    const auto unknown = args.unknown_keys(known, prefixes);
    ASSERT_EQ(unknown.size(), 1u);
    EXPECT_EQ(unknown[0], "bench");  // prefix must match fully, not loosely
}

TEST(Cli, UnknownKeysEmptyWhenAllKnown) {
    const char* argv[] = {"prog", "--seed=1", "--threads", "4"};
    CliArgs args(4, argv);
    const std::string_view known[] = {"seed", "threads"};
    EXPECT_TRUE(args.unknown_keys(known).empty());
}

// ----------------------------------------------------------------- check

TEST(Check, MacrosThrowTypedExceptions) {
    EXPECT_THROW(MCAUTH_EXPECTS(false), std::invalid_argument);
    EXPECT_THROW(MCAUTH_ENSURES(false), std::logic_error);
    EXPECT_THROW(MCAUTH_REQUIRE(false), std::runtime_error);
    EXPECT_NO_THROW(MCAUTH_EXPECTS(true));
}

}  // namespace
}  // namespace mcauth

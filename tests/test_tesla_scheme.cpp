#include <gtest/gtest.h>

#include "auth/tesla_scheme.hpp"
#include "util/rng.hpp"

namespace mcauth {
namespace {

TeslaConfig small_config() {
    TeslaConfig cfg;
    cfg.interval_duration = 0.1;
    cfg.disclosure_lag = 2;   // T_disclose = 0.2 s
    cfg.chain_length = 64;
    cfg.mac_bytes = 16;
    return cfg;
}

struct TeslaPipe {
    explicit TeslaPipe(TeslaConfig config = small_config(), double skew = 0.01,
                       std::uint64_t seed = 300)
        : rng(seed),
          signer(rng, 2),
          sender(config, signer, rng, /*start_time=*/0.0),
          receiver(config, signer.make_verifier(), skew) {}

    Rng rng;
    MerkleWotsSigner signer;
    TeslaSender sender;
    TeslaReceiver receiver;
};

TEST(Tesla, BootstrapVerifies) {
    TeslaPipe pipe;
    EXPECT_FALSE(pipe.receiver.bootstrapped());
    EXPECT_TRUE(pipe.receiver.on_bootstrap(pipe.sender.bootstrap()));
    EXPECT_TRUE(pipe.receiver.bootstrapped());
}

TEST(Tesla, TamperedBootstrapRejected) {
    TeslaPipe pipe;
    auto boot = pipe.sender.bootstrap();
    boot.payload[0] ^= 1;
    EXPECT_FALSE(pipe.receiver.on_bootstrap(boot));
    EXPECT_FALSE(pipe.receiver.bootstrapped());
}

TEST(Tesla, PacketsBeforeBootstrapAreDropped) {
    TeslaPipe pipe;
    const auto pkt = pipe.sender.make_packet(pipe.rng.bytes(50), 0.05);
    EXPECT_TRUE(pipe.receiver.on_packet(pkt, 0.1).empty());
}

TEST(Tesla, IntervalAssignment) {
    TeslaPipe pipe;
    EXPECT_EQ(pipe.sender.interval_of(0.0), 1u);
    EXPECT_EQ(pipe.sender.interval_of(0.05), 1u);
    EXPECT_EQ(pipe.sender.interval_of(0.1), 2u);
    EXPECT_EQ(pipe.sender.interval_of(0.95), 10u);
}

TEST(Tesla, TimelyStreamFullyAuthenticates) {
    TeslaPipe pipe;
    ASSERT_TRUE(pipe.receiver.on_bootstrap(pipe.sender.bootstrap()));

    // 40 packets, 25 ms apart, arriving with 10 ms delay (well under
    // T_disclose = 200 ms). Keys disclosed 2 intervals later unlock them.
    std::size_t authenticated = 0;
    for (int i = 0; i < 40; ++i) {
        const double send_time = 0.025 * i;
        const auto pkt = pipe.sender.make_packet(pipe.rng.bytes(50), send_time);
        for (const auto& ev : pipe.receiver.on_packet(pkt, send_time + 0.010))
            if (ev.status == VerifyStatus::kAuthenticated) ++authenticated;
    }
    for (const auto& ev : pipe.receiver.finish())
        EXPECT_EQ(ev.status, VerifyStatus::kUnverifiable);
    // Packets of the last 2 intervals never see their keys (stream ended),
    // everything else must have authenticated.
    EXPECT_GE(authenticated, 30u);
}

TEST(Tesla, LatePacketDroppedUnverified) {
    // SECURITY: a packet arriving after its key's disclosure time could be
    // forged by anyone who saw the key — it must NOT authenticate.
    TeslaPipe pipe;
    ASSERT_TRUE(pipe.receiver.on_bootstrap(pipe.sender.bootstrap()));
    const auto pkt = pipe.sender.make_packet(pipe.rng.bytes(50), 0.05);  // interval 1
    // Key for interval 1 disclosed in interval 3 (t >= 0.2). Arrival at 0.5
    // is far past it.
    const auto events = pipe.receiver.on_packet(pkt, 0.5);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].status, VerifyStatus::kUnverifiable);
}

TEST(Tesla, ClockSkewTightensTheDeadline) {
    // With skew almost equal to T_disclose, even a fast packet is unsafe.
    TeslaConfig cfg = small_config();
    TeslaPipe pipe(cfg, /*skew=*/0.25);
    ASSERT_TRUE(pipe.receiver.on_bootstrap(pipe.sender.bootstrap()));
    const auto pkt = pipe.sender.make_packet(pipe.rng.bytes(50), 0.05);
    const auto events = pipe.receiver.on_packet(pkt, 0.06);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].status, VerifyStatus::kUnverifiable);
}

TEST(Tesla, ForgedMacRejectedOnceKeyArrives) {
    TeslaPipe pipe;
    ASSERT_TRUE(pipe.receiver.on_bootstrap(pipe.sender.bootstrap()));
    auto pkt = pipe.sender.make_packet(pipe.rng.bytes(50), 0.05);
    pkt.payload[0] ^= 1;  // MAC no longer matches
    EXPECT_TRUE(pipe.receiver.on_packet(pkt, 0.06).empty());  // buffered

    // Stream on until the key for interval 1 is disclosed (interval 3).
    bool saw_rejection = false;
    for (int i = 0; i < 8; ++i) {
        const double t = 0.2 + 0.05 * i;
        const auto later = pipe.sender.make_packet(pipe.rng.bytes(50), t);
        for (const auto& ev : pipe.receiver.on_packet(later, t + 0.01))
            if (ev.status == VerifyStatus::kRejected) saw_rejection = true;
    }
    EXPECT_TRUE(saw_rejection);
}

TEST(Tesla, LostDisclosureRecoveredByLaterKey) {
    // The λ robustness property: key for interval i can be recovered from
    // ANY later packet's disclosure by walking the one-way chain.
    TeslaPipe pipe;
    ASSERT_TRUE(pipe.receiver.on_bootstrap(pipe.sender.bootstrap()));

    const auto pkt1 = pipe.sender.make_packet(pipe.rng.bytes(50), 0.05);  // interval 1
    EXPECT_TRUE(pipe.receiver.on_packet(pkt1, 0.06).empty());             // buffered

    // All packets of intervals 3 and 4 (which disclose keys 1 and 2) are
    // LOST. A packet from interval 7 (disclosing key 5) arrives and must
    // retroactively authenticate interval 1.
    const auto pkt7 = pipe.sender.make_packet(pipe.rng.bytes(50), 0.65);
    std::size_t authenticated = 0;
    for (const auto& ev : pipe.receiver.on_packet(pkt7, 0.66))
        if (ev.status == VerifyStatus::kAuthenticated) ++authenticated;
    EXPECT_EQ(authenticated, 1u);
    EXPECT_EQ(pipe.receiver.buffered_packets(), 1u);  // pkt7 itself waits
}

TEST(Tesla, ForgedDisclosedKeyDoesNotAdvanceTrust) {
    TeslaPipe pipe;
    ASSERT_TRUE(pipe.receiver.on_bootstrap(pipe.sender.bootstrap()));
    const auto good = pipe.sender.make_packet(pipe.rng.bytes(50), 0.05);
    EXPECT_TRUE(pipe.receiver.on_packet(good, 0.06).empty());

    auto attack = pipe.sender.make_packet(pipe.rng.bytes(50), 0.65);
    ASSERT_FALSE(attack.disclosed_key.empty());
    attack.disclosed_key[0] ^= 1;  // forged chain key
    // The forged key fails chain verification, so the buffered packet from
    // interval 1 must NOT be released by it.
    for (const auto& ev : pipe.receiver.on_packet(attack, 0.66))
        EXPECT_NE(ev.status, VerifyStatus::kAuthenticated);
    EXPECT_GE(pipe.receiver.buffered_packets(), 2u);
}

TEST(Tesla, FinishFlushesBufferAsUnverifiable) {
    TeslaPipe pipe;
    ASSERT_TRUE(pipe.receiver.on_bootstrap(pipe.sender.bootstrap()));
    pipe.receiver.on_packet(pipe.sender.make_packet(pipe.rng.bytes(50), 0.05), 0.06);
    const auto events = pipe.receiver.finish();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].status, VerifyStatus::kUnverifiable);
    EXPECT_EQ(pipe.receiver.buffered_packets(), 0u);
}

TEST(Tesla, ChainExhaustionThrows) {
    TeslaConfig cfg = small_config();
    cfg.chain_length = 2;
    TeslaPipe pipe(cfg);
    EXPECT_NO_THROW(pipe.sender.make_packet(pipe.rng.bytes(10), 0.15));  // interval 2
    EXPECT_THROW(pipe.sender.make_packet(pipe.rng.bytes(10), 0.25),      // interval 3
                 std::runtime_error);
}

TEST(Tesla, BatchMakePacketsMatchesSequential) {
    // Two identically-seeded senders: one wraps packets one at a time, the
    // other in a single batched call. The wire images must be identical —
    // the batch path only changes how MACs are computed, not what they are.
    TeslaPipe sequential(small_config(), 0.01, 77);
    TeslaPipe batched(small_config(), 0.01, 77);

    Rng data_rng(78);
    std::vector<std::vector<std::uint8_t>> payloads;
    std::vector<double> send_times;
    for (int i = 0; i < 21; ++i) {
        payloads.push_back(data_rng.bytes(20 + 7 * i));
        send_times.push_back(0.03 * i);  // spans several intervals, ragged groups
    }

    std::vector<AuthPacket> expected;
    for (std::size_t i = 0; i < payloads.size(); ++i)
        expected.push_back(sequential.sender.make_packet(payloads[i], send_times[i]));
    const auto got = batched.sender.make_packets(payloads, send_times);

    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].encode(), expected[i].encode()) << i;

    // Index numbering continues seamlessly after a batch.
    const auto next = batched.sender.make_packet(data_rng.bytes(10), 0.7);
    EXPECT_EQ(next.index, got.back().index + 1);
}

TEST(Tesla, BatchChainExhaustionThrowsBeforeConsumingIndices) {
    TeslaConfig cfg = small_config();
    cfg.chain_length = 2;
    TeslaPipe pipe(cfg);
    std::vector<std::vector<std::uint8_t>> payloads{{1}, {2}};
    const std::vector<double> times{0.05, 0.25};  // second packet: interval 3 > chain
    EXPECT_THROW(pipe.sender.make_packets(payloads, times), std::runtime_error);
    // All-or-nothing: the failed batch consumed no indices.
    EXPECT_EQ(pipe.sender.make_packet({3}, 0.05).index, 0u);
}

TEST(Tesla, BatchPacketsVerifyEndToEnd) {
    TeslaPipe pipe;
    ASSERT_TRUE(pipe.receiver.on_bootstrap(pipe.sender.bootstrap()));
    std::vector<std::vector<std::uint8_t>> payloads;
    std::vector<double> send_times;
    for (int i = 0; i < 8; ++i) {
        payloads.push_back(pipe.rng.bytes(40));
        send_times.push_back(0.05 * i);
    }
    const auto packets = pipe.sender.make_packets(payloads, send_times);
    std::vector<VerifyEvent> events;
    for (std::size_t i = 0; i < packets.size(); ++i) {
        // Arrive promptly (safe), keys disclosed by later packets.
        auto evs = pipe.receiver.on_packet(packets[i], send_times[i] + 0.01);
        events.insert(events.end(), evs.begin(), evs.end());
    }
    auto tail = pipe.receiver.finish();
    std::size_t authenticated = 0;
    for (const auto& ev : events)
        if (ev.status == VerifyStatus::kAuthenticated) ++authenticated;
    EXPECT_GT(authenticated, 0u);
    for (const auto& ev : events) EXPECT_NE(ev.status, VerifyStatus::kRejected);
    for (const auto& ev : tail) EXPECT_EQ(ev.status, VerifyStatus::kUnverifiable);
}

TEST(Tesla, OverheadFields) {
    TeslaPipe pipe;
    ASSERT_TRUE(pipe.receiver.on_bootstrap(pipe.sender.bootstrap()));
    // Interval 1-2 packets cannot disclose yet (nothing old enough).
    const auto early = pipe.sender.make_packet(pipe.rng.bytes(50), 0.05);
    EXPECT_EQ(early.disclosed_interval, 0u);
    EXPECT_TRUE(early.disclosed_key.empty());
    EXPECT_EQ(early.mac.size(), 16u);
    // Interval 3 packets disclose key 1.
    const auto later = pipe.sender.make_packet(pipe.rng.bytes(50), 0.25);
    EXPECT_EQ(later.disclosed_interval, 1u);
    EXPECT_EQ(later.disclosed_key.size(), 32u);
}

}  // namespace
}  // namespace mcauth

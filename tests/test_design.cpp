#include <gtest/gtest.h>

#include "core/authprob.hpp"
#include "core/topologies.hpp"
#include "design/constructors.hpp"
#include "design/optimizer.hpp"

namespace mcauth {
namespace {

DesignGoal goal(std::size_t n, double p, double target) {
    DesignGoal g;
    g.n = n;
    g.p = p;
    g.target_q_min = target;
    return g;
}

// ------------------------------------------------------------------ greedy

TEST(GreedyDesign, MeetsTargetWhenFeasible) {
    const DesignGoal g = goal(64, 0.2, 0.9);
    const auto dg = design_greedy(g);
    EXPECT_TRUE(dg.is_valid());
    EXPECT_GE(recurrence_auth_prob(dg, g.p).q_min, g.target_q_min);
}

TEST(GreedyDesign, BeatsEmssEdgeBudgetForModestTargets) {
    // The plain chain starts at q_min ~ 0.95^62 ~ 0.04, E_{2,1} would spend
    // ~2n edges to reach ~0.997; a target of 0.5 should cost the greedy
    // designer strictly less than the uniform-2-links budget.
    const DesignGoal easy = goal(64, 0.05, 0.5);
    const auto dg = design_greedy(easy);
    EXPECT_GE(recurrence_auth_prob(dg, easy.p).q_min, easy.target_q_min);
    EXPECT_LT(dg.graph().edge_count(), 125u);  // EMSS E_{2,1} budget at n=64
    EXPECT_GT(dg.graph().edge_count(), 63u);   // more than the bare chain
}

TEST(GreedyDesign, EdgeBudgetGrowsWithDifficulty) {
    const auto lax = design_greedy(goal(64, 0.2, 0.7));
    const auto strict = design_greedy(goal(64, 0.2, 0.97));
    EXPECT_LT(lax.graph().edge_count(), strict.graph().edge_count());
}

TEST(GreedyDesign, RespectsEdgeCap) {
    GreedyDesignOptions options;
    options.max_edges = 70;
    const auto dg = design_greedy(goal(64, 0.4, 0.999), options);
    EXPECT_LE(dg.graph().edge_count(), 70u);
}

TEST(GreedyDesign, TrivialTargetReturnsChain) {
    const auto dg = design_greedy(goal(32, 0.0, 0.9));
    EXPECT_EQ(dg.graph().edge_count(), 31u);  // p = 0: the chain suffices
}

// ------------------------------------------------------------- offset sets

TEST(OffsetDesign, FindsFeasibleSet) {
    const DesignGoal g = goal(128, 0.2, 0.9);
    const auto result = design_offset_set(g);
    ASSERT_TRUE(result.feasible);
    EXPECT_GE(result.q_min, g.target_q_min);
    // Re-evaluate independently.
    const auto dg = make_offset_scheme(g.n, result.offsets);
    EXPECT_NEAR(recurrence_auth_prob(dg, g.p).q_min, result.q_min, 1e-12);
}

TEST(OffsetDesign, MinimalityAgainstBruteForceExpectation) {
    // At p = 0.2 / target 0.9, a single offset cannot work (chain decays),
    // so the optimum should use exactly 2 offsets.
    const auto result = design_offset_set(goal(128, 0.2, 0.9));
    ASSERT_TRUE(result.feasible);
    EXPECT_EQ(result.offsets.size(), 2u);
}

TEST(OffsetDesign, InfeasibleTargetReported) {
    // Loss rate 0.6 with target 0.999 cannot be met by the default menu.
    const auto result = design_offset_set(goal(256, 0.6, 0.999));
    EXPECT_FALSE(result.feasible);
    EXPECT_TRUE(result.offsets.empty());
}

TEST(OffsetDesign, OversizedMenuRejected) {
    std::vector<std::size_t> menu(17);
    for (std::size_t i = 0; i < menu.size(); ++i) menu[i] = i + 1;
    EXPECT_THROW(design_offset_set(goal(64, 0.2, 0.9), menu), std::invalid_argument);
}

// ----------------------------------------------------------------- random

TEST(RandomDesign, FindsFeasibleEdgeProbability) {
    Rng rng(500);
    const DesignGoal g = goal(64, 0.2, 0.85);
    const auto result = design_random(g, rng);
    ASSERT_TRUE(result.feasible);
    EXPECT_GT(result.edge_prob, 0.0);
    EXPECT_LE(result.edge_prob, 1.0);
}

TEST(RandomDesign, HarderTargetNeedsDenserGraphs) {
    Rng rng(501);
    const auto lax = design_random(goal(64, 0.2, 0.7), rng);
    Rng rng2(501);
    const auto strict = design_random(goal(64, 0.2, 0.97), rng2);
    ASSERT_TRUE(lax.feasible);
    ASSERT_TRUE(strict.feasible);
    EXPECT_LT(lax.edge_prob, strict.edge_prob);
}

// -------------------------------------------------------------- optimizer

TEST(Optimizer, EvaluateDesignConsistency) {
    Rng rng(502);
    const DesignGoal g = goal(48, 0.2, 0.8);
    const auto report = evaluate_design(make_emss(48, 2, 1), g, SchemeParams{}, rng, 3000);
    EXPECT_EQ(report.edges, make_emss(48, 2, 1).graph().edge_count());
    EXPECT_GT(report.q_min_recurrence, 0.0);
    EXPECT_GT(report.q_min_monte_carlo, 0.0);
    // Monte-Carlo (true value) never exceeds the optimistic recurrence by
    // more than sampling noise.
    EXPECT_LT(report.q_min_monte_carlo, report.q_min_recurrence + 0.05);
}

TEST(Optimizer, CompareProducesAllFamilies) {
    Rng rng(503);
    const auto reports = compare_designs(goal(48, 0.15, 0.85), SchemeParams{}, rng, 1500);
    EXPECT_GE(reports.size(), 4u);
    bool greedy_found = false;
    for (const auto& r : reports) {
        if (r.name == "greedy-design") {
            greedy_found = true;
            EXPECT_TRUE(r.meets_target);
        }
    }
    EXPECT_TRUE(greedy_found);
}

}  // namespace
}  // namespace mcauth

// Cross-module integration: the full §5 deployment story, end to end.
//
//   design an offset scheme for a goal  ->  serialize it to text  ->
//   load it at "both endpoints"  ->  run real packets through a lossy
//   channel  ->  measured behaviour matches the analysis of the designed
//   graph.
#include <gtest/gtest.h>

#include "core/authprob.hpp"
#include "core/exact_dp.hpp"
#include "core/serialize.hpp"
#include "core/topologies.hpp"
#include "design/constructors.hpp"
#include "sim/stream_sim.hpp"
#include "util/check.hpp"

namespace mcauth {
namespace {

TEST(Integration, DesignedSchemeDeploysThroughTheCodec) {
    // 1. Design.
    DesignGoal goal;
    goal.n = 48;
    goal.p = 0.2;
    goal.target_q_min = 0.85;
    // Menu capped at 16 so the exact-DP window (2^max_offset states) stays
    // tractable in step 3.
    const auto offsets = design_offset_set(goal, {1, 2, 3, 4, 6, 8, 12, 16});
    ASSERT_TRUE(offsets.feasible);

    // 2. Serialize / reload (what would cross a config channel).
    const std::string artifact =
        to_text(make_offset_scheme(goal.n, offsets.offsets, "deployed-design"));
    const DependenceGraph loaded = dependence_graph_from_text(artifact);
    ASSERT_TRUE(loaded.is_valid());

    // 3. Analysis of the deployed artifact — exact, not the optimistic
    // recurrence the designer used.
    const double exact_q_min =
        exact_offset_auth_prob(goal.n, offsets.offsets, MarkovChannel::bernoulli(goal.p))
            .q_min;

    // 4. Real packets over a lossy channel, topology = the loaded artifact.
    HashChainConfig config;
    config.block_size = goal.n;
    config.topology = [&artifact](std::size_t n) {
        DependenceGraph dg = dependence_graph_from_text(artifact);
        MCAUTH_REQUIRE(dg.packet_count() == n);
        return dg;
    };
    config.name = "deployed-design";
    Rng rng(2026);
    MerkleWotsSigner signer(rng, 160);
    Channel channel(std::make_unique<BernoulliLoss>(goal.p),
                    std::make_unique<GaussianDelay>(0.02, 0.005));
    SimConfig sim;
    sim.blocks = 150;
    sim.payload_bytes = 40;
    sim.t_transmit = 0.002;
    sim.sign_copies = 4;
    sim.seed = 77;
    const SimStats stats = run_hash_chain_sim(config, signer, channel, sim);

    // 5. The measured worst-index q matches the exact analysis (150 blocks
    // of sampling noise allowed), and the aggregate rate clears the goal's
    // spirit even though the recurrence-based designer was optimistic.
    EXPECT_NEAR(stats.empirical_q_min, exact_q_min, 0.12);
    EXPECT_GT(stats.auth_fraction(), 0.85);
}

TEST(Integration, TraceLossPairedComparisonIsDeterministic) {
    // TraceLoss lets two schemes face the IDENTICAL loss pattern — a paired
    // experiment with zero channel variance. Verify determinism and that
    // the dependence-graph prediction matches the codec packet-for-packet.
    Rng pattern_rng(5);
    std::vector<bool> pattern(20 * 10);
    for (auto&& bit : pattern) bit = pattern_rng.bernoulli(0.25);

    auto run_once = [&](std::uint64_t seed) {
        TraceLoss loss(pattern);
        Channel channel(loss.clone(), std::make_unique<ConstantDelay>(0.01));
        Rng rng(seed);
        MerkleWotsSigner signer(rng, 16);
        SimConfig sim;
        sim.blocks = 8;
        sim.payload_bytes = 32;
        sim.sign_copies = 1;  // keep the trace aligned with packet slots
        sim.seed = 3;
        return run_hash_chain_sim(emss_config(20, 2, 1), signer, channel, sim);
    };
    const auto a = run_once(1);
    const auto b = run_once(1);
    EXPECT_EQ(a.authenticated, b.authenticated);
    EXPECT_EQ(a.packets_received, b.packets_received);
    EXPECT_EQ(a.unverifiable, b.unverifiable);
}

TEST(Integration, GreedyDesignSurvivesSerializationAndAnalysis) {
    DesignGoal goal;
    goal.n = 32;
    goal.p = 0.15;
    goal.target_q_min = 0.9;
    const DependenceGraph designed = design_greedy(goal);
    const DependenceGraph reloaded = dependence_graph_from_text(to_text(designed));
    EXPECT_EQ(recurrence_auth_prob(designed, goal.p).q_min,
              recurrence_auth_prob(reloaded, goal.p).q_min);
    Rng rng(9);
    BernoulliLoss loss(goal.p);
    const auto mc = monte_carlo_auth_prob(reloaded, loss, rng.next_u64(), 20000);
    EXPECT_GT(mc.q_min, 0.5);  // greedy designs avoid catastrophic optimism
}

}  // namespace
}  // namespace mcauth

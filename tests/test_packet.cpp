#include <gtest/gtest.h>

#include "auth/packet.hpp"
#include "util/rng.hpp"

namespace mcauth {
namespace {

AuthPacket sample_packet(Rng& rng) {
    AuthPacket pkt;
    pkt.block_id = 7;
    pkt.index = 42;
    pkt.kind = PacketKind::kData;
    pkt.payload = rng.bytes(100);
    pkt.hashes.push_back({3, rng.bytes(16)});
    pkt.hashes.push_back({9, rng.bytes(16)});
    pkt.signature = rng.bytes(64);
    pkt.mac_interval = 5;
    pkt.mac = rng.bytes(16);
    pkt.disclosed_interval = 3;
    pkt.disclosed_key = rng.bytes(32);
    return pkt;
}

bool packets_equal(const AuthPacket& a, const AuthPacket& b) {
    if (a.block_id != b.block_id || a.index != b.index || a.kind != b.kind) return false;
    if (a.block_size != b.block_size) return false;
    if (a.payload != b.payload || a.signature != b.signature) return false;
    if (a.mac_interval != b.mac_interval || a.mac != b.mac) return false;
    if (a.disclosed_interval != b.disclosed_interval || a.disclosed_key != b.disclosed_key)
        return false;
    if (a.hashes.size() != b.hashes.size()) return false;
    for (std::size_t i = 0; i < a.hashes.size(); ++i)
        if (a.hashes[i].target != b.hashes[i].target ||
            a.hashes[i].digest != b.hashes[i].digest)
            return false;
    return true;
}

TEST(Packet, EncodeDecodeRoundTrip) {
    Rng rng(1);
    const AuthPacket pkt = sample_packet(rng);
    const auto wire = pkt.encode();
    const auto decoded = AuthPacket::decode(wire);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(packets_equal(pkt, *decoded));
}

TEST(Packet, RoundTripRandomized) {
    Rng rng(2);
    for (int trial = 0; trial < 100; ++trial) {
        AuthPacket pkt;
        pkt.block_id = static_cast<std::uint32_t>(rng.next_u64());
        pkt.index = static_cast<std::uint32_t>(rng.next_u64());
        pkt.block_size = static_cast<std::uint32_t>(rng.next_u64());
        pkt.kind = static_cast<PacketKind>(rng.uniform_below(3));
        pkt.payload = rng.bytes(rng.uniform_below(300));
        const std::size_t hash_count = rng.uniform_below(5);
        for (std::size_t i = 0; i < hash_count; ++i)
            pkt.hashes.push_back({static_cast<std::uint32_t>(rng.next_u64()),
                                  rng.bytes(8 + rng.uniform_below(25))});
        if (rng.bernoulli(0.5)) pkt.signature = rng.bytes(rng.uniform_below(200));
        if (rng.bernoulli(0.3)) {
            pkt.mac = rng.bytes(16);
            pkt.mac_interval = static_cast<std::uint32_t>(rng.next_u64());
            pkt.disclosed_interval = static_cast<std::uint32_t>(rng.next_u64());
            pkt.disclosed_key = rng.bytes(32);
        }
        const auto decoded = AuthPacket::decode(pkt.encode());
        ASSERT_TRUE(decoded.has_value()) << trial;
        EXPECT_TRUE(packets_equal(pkt, *decoded)) << trial;
    }
}

TEST(Packet, EmptyPacketRoundTrips) {
    const AuthPacket pkt;
    const auto decoded = AuthPacket::decode(pkt.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(packets_equal(pkt, *decoded));
}

TEST(Packet, DecodeRejectsTruncation) {
    Rng rng(3);
    const auto wire = sample_packet(rng).encode();
    // Every strict prefix must fail to decode (no partial reads).
    for (std::size_t len : {0u, 1u, 5u, 20u}) {
        EXPECT_FALSE(AuthPacket::decode(std::span<const std::uint8_t>(wire.data(), len))
                         .has_value())
            << len;
    }
    EXPECT_FALSE(AuthPacket::decode(
                     std::span<const std::uint8_t>(wire.data(), wire.size() - 1))
                     .has_value());
}

TEST(Packet, DecodeRejectsTrailingGarbage) {
    Rng rng(4);
    auto wire = sample_packet(rng).encode();
    wire.push_back(0x00);
    EXPECT_FALSE(AuthPacket::decode(wire).has_value());
}

TEST(Packet, DecodeRejectsBadVersionAndKind) {
    Rng rng(5);
    auto wire = sample_packet(rng).encode();
    auto bad_version = wire;
    bad_version[0] = 99;
    EXPECT_FALSE(AuthPacket::decode(bad_version).has_value());
    auto bad_kind = wire;
    bad_kind[1] = 9;
    EXPECT_FALSE(AuthPacket::decode(bad_kind).has_value());
}

TEST(Packet, AuthenticatedBytesExcludeVerificationMaterial) {
    Rng rng(6);
    AuthPacket pkt = sample_packet(rng);
    const auto before = pkt.authenticated_bytes();
    pkt.signature = rng.bytes(99);
    pkt.mac = rng.bytes(20);
    pkt.disclosed_key = rng.bytes(32);
    pkt.disclosed_interval = 1234;
    EXPECT_EQ(pkt.authenticated_bytes(), before);
}

TEST(Packet, AuthenticatedBytesCoverIdentityPayloadAndHashes) {
    Rng rng(7);
    const AuthPacket base = sample_packet(rng);
    const auto reference = base.authenticated_bytes();

    AuthPacket changed = base;
    changed.payload[0] ^= 1;
    EXPECT_NE(changed.authenticated_bytes(), reference);

    changed = base;
    changed.index += 1;
    EXPECT_NE(changed.authenticated_bytes(), reference);

    changed = base;
    changed.block_id += 1;
    EXPECT_NE(changed.authenticated_bytes(), reference);

    changed = base;
    changed.block_size += 1;  // geometry is integrity-relevant
    EXPECT_NE(changed.authenticated_bytes(), reference);

    changed = base;
    changed.hashes[0].digest[0] ^= 1;
    EXPECT_NE(changed.authenticated_bytes(), reference);

    changed = base;
    changed.mac_interval += 1;  // TESLA binds the claimed interval
    EXPECT_NE(changed.authenticated_bytes(), reference);
}

TEST(Packet, DigestTruncatesToRequestedLength) {
    Rng rng(8);
    const AuthPacket pkt = sample_packet(rng);
    EXPECT_EQ(pkt.digest(16).size(), 16u);
    EXPECT_EQ(pkt.digest(32).size(), 32u);
    // Truncation is a prefix of the full digest.
    const auto d16 = pkt.digest(16);
    const auto d32 = pkt.digest(32);
    EXPECT_TRUE(std::equal(d16.begin(), d16.end(), d32.begin()));
}

TEST(Packet, WireSizeMatchesEncoding) {
    Rng rng(9);
    const AuthPacket pkt = sample_packet(rng);
    EXPECT_EQ(pkt.wire_size(), pkt.encode().size());
}

TEST(Packet, DecodeFuzzNeverCrashes) {
    // Random byte strings must decode to nullopt or to a packet that
    // re-encodes consistently — never crash, never over-read.
    Rng rng(10);
    std::size_t decoded_ok = 0;
    for (int trial = 0; trial < 5000; ++trial) {
        const auto junk = rng.bytes(rng.uniform_below(120));
        const auto decoded = AuthPacket::decode(junk);
        if (decoded.has_value()) {
            ++decoded_ok;
            EXPECT_EQ(decoded->encode(), junk);  // canonical form round-trips
        }
    }
    // Almost all random strings are malformed; a handful may parse.
    EXPECT_LT(decoded_ok, 50u);
}

TEST(Packet, DecodeBitflipFuzzRoundTripsOrRejects) {
    Rng rng(11);
    const auto wire = sample_packet(rng).encode();
    for (int trial = 0; trial < 2000; ++trial) {
        auto mutated = wire;
        mutated[rng.uniform_below(mutated.size())] ^=
            static_cast<std::uint8_t>(1u << rng.uniform_below(8));
        const auto decoded = AuthPacket::decode(mutated);
        if (decoded.has_value()) {
            EXPECT_EQ(decoded->encode(), mutated);
        }
    }
}

TEST(Packet, OversizedSectionRejectedAtEncode) {
    AuthPacket pkt;
    pkt.payload.assign(70000, 0);  // > u16 length prefix
    EXPECT_THROW(pkt.encode(), std::invalid_argument);
}

// ------------------------------------------------- arena / zero-copy codec

std::vector<std::uint8_t> to_vec(std::span<const std::uint8_t> s) {
    return {s.begin(), s.end()};
}

TEST(PacketArena, EncodeIntoMatchesEncode) {
    Rng rng(31);
    PacketArena arena;
    for (int trial = 0; trial < 50; ++trial) {
        AuthPacket pkt;
        pkt.block_id = static_cast<std::uint32_t>(rng.next_u64());
        pkt.index = static_cast<std::uint32_t>(rng.next_u64());
        pkt.block_size = static_cast<std::uint32_t>(rng.next_u64());
        pkt.kind = static_cast<PacketKind>(rng.uniform_below(3));
        pkt.payload = rng.bytes(rng.uniform_below(300));
        for (std::size_t i = 0, n = rng.uniform_below(5); i < n; ++i)
            pkt.hashes.push_back({static_cast<std::uint32_t>(rng.next_u64()),
                                  rng.bytes(1 + rng.uniform_below(32))});
        pkt.signature = rng.bytes(rng.uniform_below(80));
        pkt.mac = rng.bytes(rng.uniform_below(32));
        pkt.disclosed_interval = static_cast<std::uint32_t>(rng.next_u64());
        pkt.disclosed_key = rng.bytes(rng.uniform_below(32));
        EXPECT_EQ(to_vec(pkt.encode_into(arena)), pkt.encode()) << trial;
        EXPECT_EQ(to_vec(pkt.authenticated_bytes_into(arena)), pkt.authenticated_bytes())
            << trial;
    }
}

TEST(PacketArena, ResetRecyclesChunksAndKeepsEncodingCorrect) {
    Rng rng(32);
    PacketArena arena(256);  // small chunks force multi-chunk growth
    const AuthPacket pkt = sample_packet(rng);
    const auto expected = pkt.encode();
    for (int pass = 0; pass < 3; ++pass) {
        for (int i = 0; i < 20; ++i) EXPECT_EQ(to_vec(pkt.encode_into(arena)), expected);
        const std::size_t chunks_after_first_pass = arena.chunk_count();
        arena.reset();
        EXPECT_EQ(arena.bytes_in_use(), 0u);
        // Chunks are recycled, not freed.
        EXPECT_EQ(arena.chunk_count(), chunks_after_first_pass);
    }
}

TEST(PacketView, DecodeMatchesOwningDecode) {
    Rng rng(33);
    PacketArena arena;
    const AuthPacket pkt = sample_packet(rng);
    const auto wire = pkt.encode();
    const auto view = PacketView::decode(wire, arena);
    ASSERT_TRUE(view.has_value());
    EXPECT_TRUE(packets_equal(pkt, view->to_packet()));
    // The authenticated span is the exact prefix the owning encoder produces.
    EXPECT_EQ(to_vec(view->authenticated), pkt.authenticated_bytes());
    // Field spans alias the wire buffer — no copies were made.
    EXPECT_GE(view->payload.data(), wire.data());
    EXPECT_LE(view->payload.data() + view->payload.size(), wire.data() + wire.size());
    ASSERT_EQ(view->hashes.size(), pkt.hashes.size());
    for (std::size_t i = 0; i < view->hashes.size(); ++i) {
        EXPECT_EQ(view->hashes[i].target, pkt.hashes[i].target);
        EXPECT_EQ(to_vec(view->hashes[i].digest), pkt.hashes[i].digest);
    }
}

TEST(PacketView, RejectsExactlyWhatOwningDecodeRejects) {
    Rng rng(34);
    PacketArena arena;
    const auto wire = sample_packet(rng).encode();
    for (int trial = 0; trial < 1000; ++trial) {
        auto mutated = wire;
        mutated.resize(rng.uniform_below(mutated.size() + 1));
        const bool owning = AuthPacket::decode(mutated).has_value();
        arena.reset();
        const bool zero_copy = PacketView::decode(mutated, arena).has_value();
        EXPECT_EQ(owning, zero_copy) << "truncated to " << mutated.size();
    }
}

}  // namespace
}  // namespace mcauth

// obs::RunManifest: a golden-file test pinning the exact JSON rendering
// (field order, indentation, embedding contract) with hand-set fields, and
// sanity checks on collect()'s machine/build probes. The golden string IS
// the schema: any change to the renderer shows up as a full-string diff
// here and must come with a schema_version bump.
#include <gtest/gtest.h>

#include <string>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace mcauth::obs {
namespace {

/// Fully hand-set manifest — collect() is intentionally NOT used, so the
/// rendering is deterministic on every machine.
RunManifest golden_manifest() {
    RunManifest m;
    m.bench = "perf_fake";
    m.git_revision = "v1.2.3-4-gabcdef0";
    m.compiler = "GNU 12.2.0";
    m.compiler_flags = "-O2 -g -DNDEBUG";
    m.build_type = "RelWithDebInfo";
    m.sanitizer = "";
    m.obs_compiled_in = true;
    m.cpu_model = "Fake CPU \"quoted\" @ 3.0GHz";
    m.cpu_avx2 = true;
    m.bitslice_avx2_dispatch = false;
    m.hardware_threads = 8;
    m.threads = 4;
    m.seed = 42;
    m.warmup = 1;
    m.repeat = 3;
    m.timestamp_utc = "2026-08-06T12:00:00Z";
    m.perf_counters = "unavailable";
    m.metrics_counters = {{"core.bitslice.batches", 10},
                          {"exec.pool.tasks", 7}};
    return m;
}

TEST(ManifestTest, GoldenJsonRendering) {
    const std::string expected =
        "{\n"
        "  \"schema_version\": 3,\n"
        "  \"bench\": \"perf_fake\",\n"
        "  \"git_revision\": \"v1.2.3-4-gabcdef0\",\n"
        "  \"compiler\": \"GNU 12.2.0\",\n"
        "  \"compiler_flags\": \"-O2 -g -DNDEBUG\",\n"
        "  \"build_type\": \"RelWithDebInfo\",\n"
        "  \"sanitizer\": \"\",\n"
        "  \"obs_compiled_in\": true,\n"
        "  \"cpu_model\": \"Fake CPU \\\"quoted\\\" @ 3.0GHz\",\n"
        "  \"cpu_avx2\": true,\n"
        "  \"bitslice_avx2_dispatch\": false,\n"
        "  \"hardware_threads\": 8,\n"
        "  \"threads\": 4,\n"
        "  \"seed\": 42,\n"
        "  \"warmup\": 1,\n"
        "  \"repeat\": 3,\n"
        "  \"timestamp_utc\": \"2026-08-06T12:00:00Z\",\n"
        "  \"perf_counters\": \"unavailable\",\n"
        "  \"metrics_counters\": {\n"
        "    \"core.bitslice.batches\": 10,\n"
        "    \"exec.pool.tasks\": 7\n"
        "  }\n"
        "}";
    EXPECT_EQ(golden_manifest().to_json(), expected);
}

// indent=N prefixes every line AFTER the first with N spaces (closing brace
// included), so `"manifest": %s` embeds at depth N of a hand-rolled writer.
TEST(ManifestTest, IndentedRenderingEmbedsCleanly) {
    const std::string flat = golden_manifest().to_json(0);
    const std::string indented = golden_manifest().to_json(2);
    // Same content line by line, two extra leading spaces from line 2 on.
    std::size_t fpos = flat.find('\n'), ipos = indented.find('\n');
    EXPECT_EQ(flat.substr(0, fpos), indented.substr(0, ipos));
    while (fpos != std::string::npos) {
        const std::size_t fend = flat.find('\n', fpos + 1);
        const std::size_t iend = indented.find('\n', ipos + 1);
        EXPECT_EQ("  " + flat.substr(fpos + 1, fend - fpos - 1),
                  indented.substr(ipos + 1, iend - ipos - 1));
        fpos = fend;
        ipos = iend;
    }
    // And the whole thing embeds as a value in a larger document.
    std::string error;
    const auto doc =
        JsonValue::parse("{\n  \"manifest\": " + indented + "\n}", &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->find("manifest")->get_string("bench"), "perf_fake");
}

// v3's only addition: the timeseries_out pointer, OMITTED when empty so v2
// consumers (and the golden above) see an unchanged document.
TEST(ManifestTest, TimeseriesOutFieldIsOptional) {
    RunManifest m = golden_manifest();
    EXPECT_EQ(m.to_json().find("timeseries_out"), std::string::npos);
    m.timeseries_out = "bench_out/x.timeseries.jsonl";
    const std::string json = m.to_json();
    EXPECT_NE(json.find("\"timeseries_out\": \"bench_out/x.timeseries.jsonl\""),
              std::string::npos)
        << json;
    std::string error;
    const auto doc = JsonValue::parse(json, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->get_string("timeseries_out"), "bench_out/x.timeseries.jsonl");
}

TEST(ManifestTest, EmptyCountersRenderAsEmptyObject) {
    RunManifest m = golden_manifest();
    m.metrics_counters.clear();
    const std::string json = m.to_json();
    EXPECT_NE(json.find("\"metrics_counters\": {}"), std::string::npos) << json;
    std::string error;
    EXPECT_TRUE(JsonValue::parse(json, &error).has_value()) << error;
}

TEST(ManifestTest, CollectFillsEveryField) {
    registry().counter("test_manifest.probe").add(3);
    const RunManifest m = RunManifest::collect("perf_x", 7, 2, 1, 5);
    EXPECT_EQ(m.schema_version, RunManifest::kSchemaVersion);
    EXPECT_EQ(m.bench, "perf_x");
    EXPECT_EQ(m.seed, 7u);
    EXPECT_EQ(m.threads, 2u);
    EXPECT_EQ(m.warmup, 1u);
    EXPECT_EQ(m.repeat, 5u);
    EXPECT_FALSE(m.git_revision.empty());
    EXPECT_FALSE(m.compiler.empty());
    EXPECT_NE(m.compiler, "unknown");  // this test IS compiled by something
    EXPECT_FALSE(m.cpu_model.empty());
    EXPECT_GE(m.hardware_threads, 1u);
    // ISO-8601 second resolution: 2026-08-06T12:34:56Z.
    ASSERT_EQ(m.timestamp_utc.size(), 20u) << m.timestamp_utc;
    EXPECT_EQ(m.timestamp_utc[4], '-');
    EXPECT_EQ(m.timestamp_utc[10], 'T');
    EXPECT_EQ(m.timestamp_utc[19], 'Z');
    EXPECT_TRUE(m.perf_counters == "available" || m.perf_counters == "unavailable")
        << m.perf_counters;
    // The obs counter snapshot rides along.
    bool saw_probe = false;
    for (const auto& [name, value] : m.metrics_counters)
        if (name == "test_manifest.probe") saw_probe = value >= 3;
    EXPECT_TRUE(saw_probe);
    // And the whole collected manifest renders as valid JSON.
    std::string error;
    EXPECT_TRUE(JsonValue::parse(m.to_json(), &error).has_value()) << error;
}

}  // namespace
}  // namespace mcauth::obs

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.hpp"
#include "graph/digraph.hpp"
#include "graph/dot.hpp"
#include "util/rng.hpp"

namespace mcauth {
namespace {

Digraph diamond() {
    // 0 -> 1 -> 3, 0 -> 2 -> 3
    Digraph g(4);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 3);
    g.add_edge(2, 3);
    return g;
}

// ----------------------------------------------------------------- basics

TEST(Digraph, AddAndQueryEdges) {
    Digraph g(3);
    EXPECT_TRUE(g.add_edge(0, 1));
    EXPECT_FALSE(g.add_edge(0, 1));  // parallel edge rejected
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_FALSE(g.has_edge(1, 0));
    EXPECT_EQ(g.edge_count(), 1u);
    EXPECT_EQ(g.out_degree(0), 1u);
    EXPECT_EQ(g.in_degree(1), 1u);
}

TEST(Digraph, SelfLoopRejected) {
    Digraph g(2);
    EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(Digraph, OutOfRangeRejected) {
    Digraph g(2);
    EXPECT_THROW(g.add_edge(0, 5), std::invalid_argument);
}

TEST(Digraph, AddVerticesExtends) {
    Digraph g(2);
    const VertexId first = g.add_vertices(3);
    EXPECT_EQ(first, 2u);
    EXPECT_EQ(g.vertex_count(), 5u);
    EXPECT_TRUE(g.add_edge(0, 4));
}

TEST(Digraph, EdgesListsAll) {
    const Digraph g = diamond();
    const auto edges = g.edges();
    EXPECT_EQ(edges.size(), 4u);
}

// ------------------------------------------------------------------- topo

TEST(Topological, OrdersDag) {
    const Digraph g = diamond();
    const auto order = topological_order(g);
    ASSERT_TRUE(order.has_value());
    std::vector<std::size_t> pos(4);
    for (std::size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
    for (const Edge& e : g.edges()) EXPECT_LT(pos[e.from], pos[e.to]);
}

TEST(Topological, DetectsCycle) {
    Digraph g(3);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 0);
    EXPECT_FALSE(topological_order(g).has_value());
    EXPECT_FALSE(is_acyclic(g));
}

TEST(Topological, EmptyEdgeGraphIsAcyclic) {
    EXPECT_TRUE(is_acyclic(Digraph(5)));
}

// ----------------------------------------------------------- reachability

TEST(Reachability, FullAndMasked) {
    const Digraph g = diamond();
    const auto all = reachable_from(g, 0);
    EXPECT_TRUE(all[0] && all[1] && all[2] && all[3]);

    std::vector<bool> alive{true, false, true, true};  // vertex 1 lost
    const auto masked = reachable_within(g, 0, alive);
    EXPECT_TRUE(masked[0]);
    EXPECT_FALSE(masked[1]);
    EXPECT_TRUE(masked[2]);
    EXPECT_TRUE(masked[3]);  // still reachable via 2

    alive = {true, false, false, true};  // both middles lost
    const auto cut = reachable_within(g, 0, alive);
    EXPECT_FALSE(cut[3]);
}

TEST(Reachability, RootTraversedEvenIfMaskedDead) {
    Digraph g(2);
    g.add_edge(0, 1);
    const std::vector<bool> alive{false, true};
    const auto r = reachable_within(g, 0, alive);
    EXPECT_TRUE(r[1]);  // paper: P_sign always delivered
}

TEST(BfsDistances, HopCounts) {
    const Digraph g = diamond();
    const auto dist = bfs_distances(g, 0);
    EXPECT_EQ(dist[0], 0);
    EXPECT_EQ(dist[1], 1);
    EXPECT_EQ(dist[2], 1);
    EXPECT_EQ(dist[3], 2);
}

TEST(BfsDistances, UnreachableIsMinusOne) {
    Digraph g(3);
    g.add_edge(0, 1);
    EXPECT_EQ(bfs_distances(g, 0)[2], -1);
}

// ------------------------------------------------------------ path counts

TEST(CountPaths, DiamondHasTwo) {
    const auto counts = count_paths(diamond(), 0);
    EXPECT_DOUBLE_EQ(counts[3], 2.0);
    EXPECT_DOUBLE_EQ(counts[1], 1.0);
    EXPECT_DOUBLE_EQ(counts[0], 1.0);
}

TEST(CountPaths, LadderGrowsFibonacci) {
    // Chain with skips: i -> i+1, i -> i+2 gives Fibonacci path counts.
    Digraph g(10);
    for (VertexId i = 0; i < 9; ++i) g.add_edge(i, i + 1);
    for (VertexId i = 0; i < 8; ++i) g.add_edge(i, i + 2);
    const auto counts = count_paths(g, 0);
    double a = 1.0, b = 1.0;
    for (std::size_t i = 1; i < 10; ++i) {
        EXPECT_DOUBLE_EQ(counts[i], b) << i;
        const double next = a + b;
        a = b;
        b = next;
    }
}

TEST(CountPaths, SaturatesAtCap) {
    Digraph g(40);
    for (VertexId i = 0; i < 39; ++i) g.add_edge(i, i + 1);
    for (VertexId i = 0; i < 38; ++i) g.add_edge(i, i + 2);
    const auto counts = count_paths(g, 0, 100.0);
    EXPECT_DOUBLE_EQ(counts[39], 100.0);
}

TEST(EnumeratePaths, MatchesCountOnSmallGraphs) {
    Rng rng(5);
    for (int trial = 0; trial < 30; ++trial) {
        Digraph g(8);
        for (VertexId u = 0; u < 8; ++u)
            for (VertexId v = u + 1; v < 8; ++v)
                if (rng.bernoulli(0.35)) g.add_edge(u, v);
        const auto counts = count_paths(g, 0);
        for (VertexId t = 1; t < 8; ++t) {
            const auto paths = enumerate_paths(g, 0, t);
            EXPECT_DOUBLE_EQ(counts[t], static_cast<double>(paths.size()))
                << "trial " << trial << " target " << t;
            for (const auto& path : paths) {
                ASSERT_GE(path.size(), 2u);
                EXPECT_EQ(path.front(), 0u);
                EXPECT_EQ(path.back(), t);
                for (std::size_t i = 0; i + 1 < path.size(); ++i)
                    EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
            }
        }
    }
}

TEST(EnumeratePaths, RespectsLimit) {
    Digraph g(12);
    for (VertexId i = 0; i < 11; ++i) g.add_edge(i, i + 1);
    for (VertexId i = 0; i < 10; ++i) g.add_edge(i, i + 2);
    const auto paths = enumerate_paths(g, 0, 11, 5);
    EXPECT_EQ(paths.size(), 5u);
}

// -------------------------------------------------------------- dominators

TEST(Dominators, ChainEveryAncestorDominates) {
    Digraph g(5);
    for (VertexId i = 0; i < 4; ++i) g.add_edge(i, i + 1);
    const auto idom = immediate_dominators(g, 0);
    for (VertexId v = 1; v < 5; ++v) EXPECT_EQ(idom[v], v - 1);
    const auto doms = interior_dominators(idom, 0, 4);
    EXPECT_EQ(doms.size(), 3u);  // vertices 3, 2, 1
}

TEST(Dominators, DiamondMergePointDominatedOnlyByRoot) {
    const auto idom = immediate_dominators(diamond(), 0);
    EXPECT_EQ(idom[3], 0u);
    EXPECT_TRUE(interior_dominators(idom, 0, 3).empty());
}

TEST(Dominators, UnreachableGetsNoVertex) {
    Digraph g(3);
    g.add_edge(0, 1);
    const auto idom = immediate_dominators(g, 0);
    EXPECT_EQ(idom[2], kNoVertex);
    EXPECT_TRUE(interior_dominators(idom, 0, 2).empty());
}

TEST(Dominators, BridgeVertexDetected) {
    // 0 -> {1,2} -> 3 -> {4,5} -> 6 : vertex 3 dominates 4, 5, 6.
    Digraph g(7);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 3);
    g.add_edge(2, 3);
    g.add_edge(3, 4);
    g.add_edge(3, 5);
    g.add_edge(4, 6);
    g.add_edge(5, 6);
    const auto idom = immediate_dominators(g, 0);
    const auto doms6 = interior_dominators(idom, 0, 6);
    ASSERT_EQ(doms6.size(), 1u);
    EXPECT_EQ(doms6[0], 3u);
}

// ---------------------------------------------------------- disjoint paths

TEST(DisjointPaths, DiamondHasTwo) {
    EXPECT_EQ(vertex_disjoint_paths(diamond(), 0, 3), 2u);
}

TEST(DisjointPaths, ChainHasOne) {
    Digraph g(5);
    for (VertexId i = 0; i < 4; ++i) g.add_edge(i, i + 1);
    EXPECT_EQ(vertex_disjoint_paths(g, 0, 4), 1u);
}

TEST(DisjointPaths, DirectEdgeCountsAsOne) {
    Digraph g(2);
    g.add_edge(0, 1);
    EXPECT_EQ(vertex_disjoint_paths(g, 0, 1), 1u);
}

TEST(DisjointPaths, BottleneckLimits) {
    // Two paths that both squeeze through vertex 3.
    Digraph g(6);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 3);
    g.add_edge(2, 3);
    g.add_edge(3, 4);
    g.add_edge(3, 5);
    g.add_edge(4, 5);  // extra edge, still only 1 disjoint path 0->5
    EXPECT_EQ(vertex_disjoint_paths(g, 0, 5), 1u);
}

TEST(DisjointPaths, ParallelLanes) {
    // k fully disjoint lanes of length 2.
    const std::size_t k = 4;
    Digraph g(2 + 2 * k);
    const VertexId s = 0, t = 1;
    for (std::size_t lane = 0; lane < k; ++lane) {
        const VertexId a = static_cast<VertexId>(2 + 2 * lane);
        const VertexId b = a + 1;
        g.add_edge(s, a);
        g.add_edge(a, b);
        g.add_edge(b, t);
    }
    EXPECT_EQ(vertex_disjoint_paths(g, s, t), k);
}

TEST(DisjointPaths, MengerAgreesWithDominators) {
    // Property: if a vertex has an interior dominator, its disjoint-path
    // count must be exactly 1, and vice versa (Menger's theorem).
    Rng rng(9);
    for (int trial = 0; trial < 25; ++trial) {
        Digraph g(12);
        for (VertexId i = 1; i < 12; ++i)
            g.add_edge(i - 1, i);  // spine keeps everything reachable
        for (VertexId u = 0; u < 12; ++u)
            for (VertexId v = u + 2; v < 12; ++v)
                if (rng.bernoulli(0.2)) g.add_edge(u, v);
        const auto idom = immediate_dominators(g, 0);
        for (VertexId v = 2; v < 12; ++v) {
            const bool has_dominator = !interior_dominators(idom, 0, v).empty();
            const std::size_t disjoint = vertex_disjoint_paths(g, 0, v);
            EXPECT_EQ(has_dominator, disjoint == 1)
                << "trial " << trial << " vertex " << v << " disjoint " << disjoint;
        }
    }
}

// -------------------------------------------------------------------- dot

TEST(Dot, ContainsVerticesAndEdges) {
    const std::string dot = to_dot(diamond());
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("v0 -> v1"), std::string::npos);
    EXPECT_NE(dot.find("v2 -> v3"), std::string::npos);
}

TEST(Dot, CustomLabelsAndEmphasis) {
    DotOptions opts;
    opts.vertex_label = [](VertexId v) { return "N" + std::to_string(v); };
    opts.emphasize = [](VertexId v) { return v == 0; };
    opts.edge_label = [](VertexId u, VertexId v) {
        return std::to_string(static_cast<int>(u) - static_cast<int>(v));
    };
    const std::string dot = to_dot(diamond(), opts);
    EXPECT_NE(dot.find("N3"), std::string::npos);
    EXPECT_NE(dot.find("doublecircle"), std::string::npos);
    EXPECT_NE(dot.find("label=\"-1\""), std::string::npos);
}

TEST(Dot, AsciiAdjacencyListsSuccessors) {
    const std::string ascii = to_ascii_adjacency(diamond());
    EXPECT_NE(ascii.find("P0 -> P1 P2"), std::string::npos);
}

}  // namespace
}  // namespace mcauth

// The unified Scheme API (auth/scheme.hpp): factory registry behavior,
// interface conformance of all four built-in codecs through
// SchemeSender/SchemeReceiver, and golden byte-identity of the generic
// run_scheme_sim driver against the historical per-scheme sim loops.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "auth/scheme.hpp"
#include "auth/sign_each_scheme.hpp"
#include "core/authprob.hpp"
#include "core/topologies.hpp"
#include "net/delay.hpp"
#include "net/loss.hpp"
#include "sim/stream_sim.hpp"

namespace mcauth {
namespace {

SchemeSpec spec_of(const std::string& kind, std::size_t block_size = 16) {
    SchemeSpec spec;
    spec.kind = kind;
    spec.block_size = block_size;
    return spec;
}

// ----------------------------------------------------------------- factory

TEST(SchemeFactory, RegistersBuiltinsInOrder) {
    const auto kinds = SchemeFactory::instance().kinds();
    const std::vector<std::string> expected{"rohatgi", "emss", "ac",
                                            "tree",    "sign-each", "tesla"};
    ASSERT_GE(kinds.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) EXPECT_EQ(kinds[i], expected[i]);
    for (const auto& k : expected) EXPECT_TRUE(SchemeFactory::instance().has(k));
    EXPECT_FALSE(SchemeFactory::instance().has("no-such-scheme"));
}

TEST(SchemeFactory, UnknownKindThrows) {
    Rng srng(1);
    MerkleWotsSigner signer(srng, 4);
    Rng rng(2);
    EXPECT_THROW(SchemeFactory::instance().create(spec_of("no-such-scheme"), signer, rng),
                 std::invalid_argument);
    EXPECT_THROW(SchemeFactory::instance().predicted_q_min(spec_of("no-such-scheme"),
                                                           100, 0.1),
                 std::invalid_argument);
}

TEST(SchemeFactory, PredictorsMatchAnalyticEngines) {
    auto& factory = SchemeFactory::instance();
    SchemeSpec emss = spec_of("emss");
    emss.params = {{"m", 2}, {"d", 1}};
    EXPECT_DOUBLE_EQ(factory.predicted_q_min(emss, 200, 0.1),
                     recurrence_auth_prob(make_emss(200, 2, 1), 0.1).q_min);
    SchemeSpec ac = spec_of("ac");
    ac.params = {{"a", 3}, {"b", 3}};
    EXPECT_DOUBLE_EQ(factory.predicted_q_min(ac, 200, 0.2),
                     recurrence_auth_prob(make_augmented_chain(200, 3, 3), 0.2).q_min);
    EXPECT_DOUBLE_EQ(factory.predicted_q_min(spec_of("rohatgi"), 100, 0.1),
                     recurrence_auth_prob(make_rohatgi(100), 0.1).q_min);
    EXPECT_DOUBLE_EQ(factory.predicted_q_min(spec_of("tree"), 64, 0.4), 1.0);
    EXPECT_DOUBLE_EQ(factory.predicted_q_min(spec_of("sign-each"), 64, 0.4), 1.0);
    // TESLA: q_min = (1-p) * Phi((T-mu)/sigma); with T far above mu, ~ 1-p.
    SchemeSpec tesla = spec_of("tesla");
    tesla.params = {{"t_disclose", 10.0}, {"mu", 0.2}, {"sigma", 0.1}};
    EXPECT_NEAR(factory.predicted_q_min(tesla, 100, 0.3), 0.7, 1e-9);
}

TEST(SchemeFactory, RegistrationAndReplacementOnLocalInstance) {
    SchemeFactory factory;
    EXPECT_FALSE(factory.has("custom"));
    int built = 0;
    factory.register_scheme("custom", [&](const SchemeSpec&, Signer& signer, Rng&) {
        ++built;
        SchemePair pair;
        pair.sender = std::make_unique<SignEachSchemeSender>(signer);
        pair.receiver = std::make_unique<SignEachSchemeReceiver>(signer.make_verifier());
        return pair;
    });
    EXPECT_TRUE(factory.has("custom"));
    EXPECT_TRUE(std::isnan(factory.predicted_q_min(spec_of("custom"), 10, 0.1)));

    Rng srng(1);
    MerkleWotsSigner signer(srng, 4);
    Rng rng(2);
    const SchemePair pair = factory.create(spec_of("custom"), signer, rng);
    EXPECT_EQ(built, 1);
    EXPECT_EQ(pair.sender->name(), "sign-each");

    // Re-registration replaces in place (same position, new builder).
    factory.register_scheme(
        "custom",
        [&](const SchemeSpec&, Signer& signer2, Rng&) {
            built += 10;
            SchemePair p;
            p.sender = std::make_unique<SignEachSchemeSender>(signer2);
            p.receiver = std::make_unique<SignEachSchemeReceiver>(signer2.make_verifier());
            return p;
        },
        [](const SchemeSpec&, std::size_t, double) { return 0.5; });
    EXPECT_EQ(factory.kinds().size(), 1u);
    (void)factory.create(spec_of("custom"), signer, rng);
    EXPECT_EQ(built, 11);
    EXPECT_DOUBLE_EQ(factory.predicted_q_min(spec_of("custom"), 10, 0.1), 0.5);
}

// ------------------------------------------------------------- conformance

class SchemeConformance : public ::testing::TestWithParam<const char*> {};

SchemeSpec conformance_spec(const std::string& kind) {
    SchemeSpec spec = spec_of(kind, 16);
    if (kind == "tesla") {
        // Short intervals so keys disclose within the test stream.
        spec.params = {{"interval", 0.05}, {"lag", 2}, {"chain", 256}, {"skew", 0.001}};
    }
    return spec;
}

TEST_P(SchemeConformance, StreamsThroughGenericDriver) {
    Rng srng(11);
    MerkleWotsSigner signer(srng, 64);
    Rng rng(12);
    const SchemePair pair =
        SchemeFactory::instance().create(conformance_spec(GetParam()), signer, rng);
    Channel channel(std::make_unique<BernoulliLoss>(0.1),
                    std::make_unique<ConstantDelay>(0.0));
    SimConfig sim;
    sim.blocks = 3;
    sim.payload_bytes = 32;
    sim.t_transmit = 0.01;
    sim.seed = 13;
    const SimStats stats =
        run_scheme_sim(*pair.sender, *pair.receiver, channel, 16, sim, rng);

    EXPECT_GT(stats.packets_sent, 0u);
    EXPECT_LE(stats.packets_received, stats.packets_sent);
    EXPECT_GT(stats.authenticated, 0u);
    EXPECT_EQ(stats.rejected, 0u);  // honest channel: nothing tampered
    EXPECT_TRUE(std::isfinite(stats.auth_fraction()));
    EXPECT_GE(stats.empirical_q_min, 0.0);
    EXPECT_LE(stats.empirical_q_min, 1.0);
    EXPECT_GT(stats.overhead_bytes_per_packet, 0.0);
}

TEST_P(SchemeConformance, DetectsTamperedPacket) {
    Rng srng(21);
    MerkleWotsSigner signer(srng, 64);
    Rng rng(22);
    const SchemePair pair =
        SchemeFactory::instance().create(conformance_spec(GetParam()), signer, rng);
    SchemeSender& sender = *pair.sender;
    SchemeReceiver& receiver = *pair.receiver;
    const SchemeTraits& traits = sender.traits();

    for (const AuthPacket& pkt : sender.preamble())
        ASSERT_TRUE(receiver.on_preamble(pkt));

    // One block of packets, all delivered in order with zero network delay.
    const std::size_t n = 16;
    const double t = 0.01;
    std::vector<AuthPacket> packets;
    if (traits.payloads_upfront) {
        std::vector<std::vector<std::uint8_t>> payloads;
        for (std::size_t i = 0; i < n; ++i) payloads.push_back(rng.bytes(32));
        packets = sender.make_block(0, payloads);
    } else {
        double clock = traits.clock_start_slots * t;
        for (std::size_t i = 0; i < n; ++i) {
            packets.push_back(sender.make_packet(0, static_cast<std::uint32_t>(i),
                                                 rng.bytes(32), clock));
            clock += t;
        }
    }

    // Flip one payload byte of a data-carrying packet (skip the P_sign
    // packet for hash chains: the cascade roots there).
    std::size_t victim = 2;
    if (packets[victim].kind == PacketKind::kSignature &&
        std::string(GetParam()) != "sign-each")
        victim = 3;
    ASSERT_FALSE(packets[victim].payload.empty());
    packets[victim].payload[0] ^= 0xff;
    const std::uint32_t victim_index = packets[victim].index;

    std::size_t rejected_victim = 0;
    std::size_t authenticated_victim = 0;
    const auto consume = [&](const std::vector<VerifyEvent>& events) {
        for (const VerifyEvent& ev : events) {
            if (ev.index != victim_index) continue;
            if (ev.status == VerifyStatus::kRejected) ++rejected_victim;
            if (ev.status == VerifyStatus::kAuthenticated) ++authenticated_victim;
        }
    };
    double at = traits.clock_start_slots * t;
    for (const AuthPacket& pkt : packets) {
        consume(receiver.on_packet(pkt, at));
        at += t;
    }
    consume(receiver.finish_block(0));
    consume(receiver.finish_all());

    EXPECT_EQ(authenticated_victim, 0u)
        << GetParam() << ": tampered packet was authenticated";
    EXPECT_GE(rejected_victim, 1u) << GetParam() << ": tamper went undetected";
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeConformance,
                         ::testing::Values("emss", "ac", "tree", "sign-each", "tesla"),
                         [](const auto& info) {
                             std::string name = info.param;
                             for (char& c : name)
                                 if (c == '-') c = '_';
                             return name;
                         });

// ------------------------------------------------- golden byte-identity
//
// Exact SimStats captured from the per-scheme sim loops at the commit that
// introduced run_scheme_sim (seed values, RelWithDebInfo and -O2 agree).
// Every comparison below is EXACT double equality: the generic driver must
// reproduce the historical loops' floating-point arithmetic operation for
// operation, not just approximately.

SimConfig golden_sim() {
    SimConfig sim;
    sim.blocks = 4;
    sim.payload_bytes = 64;
    sim.t_transmit = 0.01;
    sim.sign_copies = 3;
    sim.seed = 7;
    return sim;
}

TEST(SchemeSimGolden, HashChainEmss16Bernoulli) {
    Rng srng(1234);
    MerkleWotsSigner signer(srng, 8);
    Channel ch(std::make_unique<BernoulliLoss>(0.2),
               std::make_unique<GaussianDelay>(0.05, 0.01));
    const SimStats s = run_hash_chain_sim(emss_config(16, 2, 1), signer, ch, golden_sim());
    EXPECT_EQ(s.packets_sent, 72u);
    EXPECT_EQ(s.packets_received, 52u);
    EXPECT_EQ(s.authenticated, 50u);
    EXPECT_EQ(s.rejected, 0u);
    EXPECT_EQ(s.unverifiable, 2u);
    EXPECT_EQ(s.max_buffered_packets, 14u);
    EXPECT_EQ(s.empirical_q_min, 2.0 / 3.0);
    EXPECT_EQ(s.overhead_bytes_per_packet, 212.5625);
    EXPECT_EQ(s.receiver_delay.count(), 50u);
    EXPECT_EQ(s.receiver_delay.mean(), 0.064136855151172817);
    EXPECT_EQ(s.receiver_delay.variance(), 0.001884397707197656);
    EXPECT_EQ(s.receiver_delay.min(), 0.0);
    EXPECT_EQ(s.receiver_delay.max(), 0.16123016458183892);
    ASSERT_EQ(s.q_by_index.size(), 16u);
    EXPECT_EQ(s.q_by_index[0], 0.75);
    EXPECT_EQ(s.q_by_index[1], 2.0 / 3.0);
    for (std::size_t i = 2; i < 16; ++i) EXPECT_EQ(s.q_by_index[i], 1.0);
}

TEST(SchemeSimGolden, HashChainAc12GilbertElliott) {
    Rng srng(1234);
    MerkleWotsSigner signer(srng, 8);
    Channel ch(std::make_unique<GilbertElliottLoss>(
                   GilbertElliottLoss::from_rate_and_burst(0.2, 3.0)),
               std::make_unique<GaussianDelay>(0.05, 0.01));
    const SimStats s =
        run_hash_chain_sim(augmented_chain_config(12, 3, 3), signer, ch, golden_sim());
    EXPECT_EQ(s.packets_sent, 56u);
    EXPECT_EQ(s.packets_received, 32u);
    EXPECT_EQ(s.authenticated, 27u);
    EXPECT_EQ(s.rejected, 0u);
    EXPECT_EQ(s.unverifiable, 5u);
    EXPECT_EQ(s.max_buffered_packets, 11u);
    EXPECT_EQ(s.empirical_q_min, 2.0 / 3.0);
    EXPECT_EQ(s.overhead_bytes_per_packet, 258.08333333333331);
    EXPECT_EQ(s.receiver_delay.count(), 27u);
    EXPECT_EQ(s.receiver_delay.mean(), 0.045417879470673307);
    EXPECT_EQ(s.receiver_delay.variance(), 0.0013098636549916639);
    EXPECT_EQ(s.receiver_delay.min(), 0.0);
    EXPECT_EQ(s.receiver_delay.max(), 0.12169918658285966);
    ASSERT_EQ(s.q_by_index.size(), 12u);
    const double expected[12] = {1.0, 1.0,  1.0,  1.0, 1.0,       1.0,
                                 2.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0, 0.75, 0.75, 1.0};
    for (std::size_t i = 0; i < 12; ++i) EXPECT_EQ(s.q_by_index[i], expected[i]);
}

TEST(SchemeSimGolden, Tesla128Bernoulli) {
    Rng srng(1234);
    MerkleWotsSigner signer(srng, 4);
    Channel ch(std::make_unique<BernoulliLoss>(0.25),
               std::make_unique<GaussianDelay>(0.03, 0.02));
    TeslaConfig cfg;
    cfg.interval_duration = 0.1;
    cfg.disclosure_lag = 2;
    cfg.chain_length = 256;
    SimConfig sim = golden_sim();
    sim.blocks = 2;  // 128 packets
    const SimStats s = run_tesla_sim(cfg, signer, ch, sim, 0.01);
    EXPECT_EQ(s.packets_sent, 128u);
    EXPECT_EQ(s.packets_received, 98u);
    EXPECT_EQ(s.authenticated, 84u);
    EXPECT_EQ(s.rejected, 0u);
    EXPECT_EQ(s.unverifiable, 14u);
    EXPECT_EQ(s.max_buffered_packets, 17u);
    EXPECT_EQ(s.empirical_q_min, 0.0);
    EXPECT_EQ(s.overhead_bytes_per_packet, 75.25);
    EXPECT_EQ(s.receiver_delay.count(), 84u);
    EXPECT_EQ(s.receiver_delay.mean(), 0.15511180466902943);
    EXPECT_EQ(s.receiver_delay.variance(), 0.00147923858405528);
    EXPECT_EQ(s.receiver_delay.min(), 0.067109401272922309);
    EXPECT_EQ(s.receiver_delay.max(), 0.25137214554491061);
    ASSERT_EQ(s.q_by_index.size(), 128u);  // stream-wide tally
    for (std::size_t i = 0; i < 111; ++i) EXPECT_EQ(s.q_by_index[i], 1.0) << i;
    // End-of-stream tail: keys for the last intervals never disclosed.
    const double tail[17] = {0, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0};
    for (std::size_t i = 0; i < 17; ++i) EXPECT_EQ(s.q_by_index[111 + i], tail[i]) << i;
}

TEST(SchemeSimGolden, Tree16Bernoulli) {
    Rng srng(1234);
    MerkleWotsSigner signer(srng, 8);
    Channel ch(std::make_unique<BernoulliLoss>(0.2),
               std::make_unique<GaussianDelay>(0.05, 0.01));
    TreeSchemeConfig cfg;
    cfg.block_size = 16;
    cfg.arity = 2;
    const SimStats s = run_tree_sim(cfg, signer, ch, golden_sim());
    EXPECT_EQ(s.packets_sent, 64u);
    EXPECT_EQ(s.packets_received, 52u);
    EXPECT_EQ(s.authenticated, 52u);
    EXPECT_EQ(s.rejected, 0u);
    EXPECT_EQ(s.unverifiable, 0u);
    EXPECT_EQ(s.max_buffered_packets, 0u);
    EXPECT_EQ(s.empirical_q_min, 1.0);
    EXPECT_EQ(s.overhead_bytes_per_packet, 2435.0);
    EXPECT_EQ(s.receiver_delay.count(), 52u);
    EXPECT_EQ(s.receiver_delay.mean(), 0.0);
    EXPECT_EQ(s.receiver_delay.max(), 0.0);
}

TEST(SchemeSimGolden, SignEach8Bernoulli) {
    Rng srng(1234);
    MerkleWotsSigner signer(srng, 64);
    Channel ch(std::make_unique<BernoulliLoss>(0.2),
               std::make_unique<GaussianDelay>(0.05, 0.01));
    SimConfig sim = golden_sim();
    sim.blocks = 3;
    const SimStats s = run_sign_each_sim(8, signer, ch, sim);
    EXPECT_EQ(s.packets_sent, 24u);
    EXPECT_EQ(s.packets_received, 21u);
    EXPECT_EQ(s.authenticated, 21u);
    EXPECT_EQ(s.rejected, 0u);
    EXPECT_EQ(s.unverifiable, 0u);
    EXPECT_EQ(s.empirical_q_min, 1.0);
    EXPECT_EQ(s.overhead_bytes_per_packet, 2382.0);
    EXPECT_EQ(s.receiver_delay.count(), 21u);
    EXPECT_EQ(s.receiver_delay.mean(), 0.0);
}

// The legacy entry point and a hand-assembled adapter pair around the
// generic driver must agree exactly (the entry point IS that adapter).
TEST(SchemeSimGolden, AdapterEqualsGenericDriver) {
    const HashChainConfig cfg = emss_config(16, 2, 1);
    const SimConfig sim = golden_sim();

    Rng srng_a(1234);
    MerkleWotsSigner signer_a(srng_a, 8);
    Channel ch_a(std::make_unique<BernoulliLoss>(0.2),
                 std::make_unique<GaussianDelay>(0.05, 0.01));
    const SimStats a = run_hash_chain_sim(cfg, signer_a, ch_a, sim);

    Rng srng_b(1234);
    MerkleWotsSigner signer_b(srng_b, 8);
    Channel ch_b(std::make_unique<BernoulliLoss>(0.2),
                 std::make_unique<GaussianDelay>(0.05, 0.01));
    Rng rng(sim.seed);
    HashChainSchemeSender sender(cfg, signer_b);
    HashChainSchemeReceiver receiver(cfg, signer_b.make_verifier());
    const SimStats b =
        run_scheme_sim(sender, receiver, ch_b, cfg.block_size, sim, rng);

    EXPECT_EQ(a.packets_sent, b.packets_sent);
    EXPECT_EQ(a.packets_received, b.packets_received);
    EXPECT_EQ(a.authenticated, b.authenticated);
    EXPECT_EQ(a.unverifiable, b.unverifiable);
    EXPECT_EQ(a.empirical_q_min, b.empirical_q_min);
    EXPECT_EQ(a.overhead_bytes_per_packet, b.overhead_bytes_per_packet);
    EXPECT_EQ(a.receiver_delay.mean(), b.receiver_delay.mean());
    EXPECT_EQ(a.receiver_delay.variance(), b.receiver_delay.variance());
    EXPECT_EQ(a.q_by_index, b.q_by_index);
}

// ----------------------------------------------------- batch verification

TEST(SignEachBatch, OnBlockVerdictsMatchOnPacketRsa) {
    // The block-granular path routes through RsaVerifier::verify_batch
    // (screening + per-item fallback); verdicts must match the per-packet
    // path even with tampered packets poisoning the screen.
    Rng rng(4040);
    RsaSigner signer(rng, 512);
    SignEachSender sender(signer);
    SignEachReceiver receiver(signer.make_verifier());

    std::vector<AuthPacket> packets;
    for (std::uint32_t i = 0; i < 6; ++i)
        packets.push_back(sender.make_packet(0, i, rng.bytes(30 + 5 * i)));
    packets[1].payload[0] ^= 1;    // message tamper
    packets[4].signature[8] ^= 1;  // signature tamper

    const auto events = receiver.on_block(packets);
    ASSERT_EQ(events.size(), packets.size());
    for (std::size_t i = 0; i < packets.size(); ++i) {
        const VerifyEvent single = receiver.on_packet(packets[i]);
        EXPECT_EQ(events[i].status, single.status) << i;
        EXPECT_EQ(events[i].index, single.index) << i;
    }
}

TEST(SignEachBatch, OnBlockVerdictsMatchOnPacketHmac) {
    // Same contract through HmacVerifier's multi-buffer batch override.
    Rng rng(4041);
    HmacSigner signer(rng, 64);
    SignEachSender sender(signer);
    SignEachReceiver receiver(signer.make_verifier());

    std::vector<AuthPacket> packets;
    for (std::uint32_t i = 0; i < 11; ++i)
        packets.push_back(sender.make_packet(2, i, rng.bytes(25)));
    packets[3].payload[2] ^= 1;
    packets[9].signature[0] ^= 1;

    const auto events = receiver.on_block(packets);
    ASSERT_EQ(events.size(), packets.size());
    for (std::size_t i = 0; i < packets.size(); ++i)
        EXPECT_EQ(events[i].status, receiver.on_packet(packets[i]).status) << i;
}

}  // namespace
}  // namespace mcauth

#include <gtest/gtest.h>

#include "crypto/merkle.hpp"
#include "crypto/signature.hpp"
#include "crypto/wots.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"

namespace mcauth {
namespace {

// ------------------------------------------------------------------ WOTS

TEST(WotsParams, ChunkCountsForW4) {
    WotsParams p{.w = 4};
    EXPECT_EQ(p.message_chunks(), 64u);
    EXPECT_EQ(p.checksum_chunks(), 3u);  // max checksum 64*15=960 -> 3 hex digits
    EXPECT_EQ(p.total_chunks(), 67u);
}

TEST(WotsParams, ChunkCountsForW8) {
    WotsParams p{.w = 8};
    EXPECT_EQ(p.message_chunks(), 32u);
    EXPECT_EQ(p.checksum_chunks(), 2u);  // max 32*255=8160 -> 2 base-256 digits
}

TEST(WotsChunks, ChecksumInvariant) {
    // Sum of message chunks plus checksum value must be constant: raising
    // any message chunk must lower the checksum (the WOTS security core).
    Rng rng(1);
    WotsParams p{.w = 4};
    for (int trial = 0; trial < 50; ++trial) {
        Digest256 d;
        const auto bytes = rng.bytes(d.size());
        std::copy(bytes.begin(), bytes.end(), d.begin());
        const auto chunks = wots_chunks(d, p);
        ASSERT_EQ(chunks.size(), p.total_chunks());
        std::uint64_t msg_sum = 0;
        for (std::size_t i = 0; i < p.message_chunks(); ++i) msg_sum += chunks[i];
        std::uint64_t checksum = 0;
        for (std::size_t i = 0; i < p.checksum_chunks(); ++i)
            checksum += std::uint64_t(chunks[p.message_chunks() + i]) << (4 * i);
        EXPECT_EQ(msg_sum + checksum, p.message_chunks() * 15);
    }
}

TEST(WotsChunks, AllValuesWithinRange) {
    Rng rng(2);
    for (unsigned w : {1u, 2u, 4u, 8u}) {
        WotsParams p{.w = w};
        Digest256 d;
        const auto bytes = rng.bytes(d.size());
        std::copy(bytes.begin(), bytes.end(), d.begin());
        for (std::uint32_t c : wots_chunks(d, p)) EXPECT_LT(c, p.chunk_values());
    }
}

TEST(Wots, SignVerifyRoundTrip) {
    const auto seed = from_hex("aabbccdd");
    WotsKey key(seed, 0);
    const Digest256 digest = Sha256::hash("message");
    const auto sig = key.sign(digest);
    EXPECT_TRUE(WotsKey::verify(sig, digest, key.public_key()));
}

TEST(Wots, DifferentMessageFails) {
    const auto seed = from_hex("aabbccdd");
    WotsKey key(seed, 0);
    const auto sig = key.sign(Sha256::hash("message"));
    EXPECT_FALSE(WotsKey::verify(sig, Sha256::hash("другое"), key.public_key()));
}

TEST(Wots, TamperedChainValueFails) {
    const auto seed = from_hex("aabbccdd");
    WotsKey key(seed, 0);
    const Digest256 digest = Sha256::hash("message");
    auto sig = key.sign(digest);
    sig.chain_values[5][0] ^= 1;
    EXPECT_FALSE(WotsKey::verify(sig, digest, key.public_key()));
}

TEST(Wots, DistinctIndicesGiveDistinctKeys) {
    const auto seed = from_hex("0102030405060708");
    WotsKey k0(seed, 0), k1(seed, 1);
    EXPECT_NE(to_hex(k0.public_key()), to_hex(k1.public_key()));
}

TEST(Wots, WrongChunkCountRejected) {
    const auto seed = from_hex("aa");
    WotsKey key(seed, 0);
    auto sig = key.sign(Sha256::hash("m"));
    sig.chain_values.pop_back();
    EXPECT_FALSE(WotsKey::verify(sig, Sha256::hash("m"), key.public_key()));
}

// ---------------------------------------------------------------- Merkle

class MerkleSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleSizes, AllProofsVerify) {
    const std::size_t count = GetParam();
    std::vector<Digest256> leaves;
    std::vector<Digest256> leaf_values;
    for (std::size_t i = 0; i < count; ++i) {
        const auto data = ascii_bytes("leaf-" + std::to_string(i));
        leaf_values.push_back(MerkleTree::hash_leaf(data));
        leaves.push_back(leaf_values.back());
    }
    const MerkleTree tree(leaves);
    EXPECT_EQ(tree.leaf_count(), count);
    for (std::size_t i = 0; i < count; ++i) {
        const auto proof = tree.prove(i);
        EXPECT_TRUE(MerkleTree::verify(leaf_values[i], proof, tree.root())) << "leaf " << i;
    }
}

// Odd sizes exercise the promoted-node path; powers of two the clean path.
INSTANTIATE_TEST_SUITE_P(VariousSizes, MerkleSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 33, 64));

TEST(Merkle, WrongLeafFails) {
    std::vector<Digest256> leaves;
    for (int i = 0; i < 8; ++i)
        leaves.push_back(MerkleTree::hash_leaf(ascii_bytes("leaf" + std::to_string(i))));
    const MerkleTree tree(leaves);
    const auto proof = tree.prove(3);
    EXPECT_FALSE(MerkleTree::verify(leaves[4], proof, tree.root()));
}

TEST(Merkle, TamperedSiblingFails) {
    std::vector<Digest256> leaves;
    for (int i = 0; i < 8; ++i)
        leaves.push_back(MerkleTree::hash_leaf(ascii_bytes("leaf" + std::to_string(i))));
    const MerkleTree tree(leaves);
    auto proof = tree.prove(3);
    proof.steps[1].sibling[0] ^= 1;
    EXPECT_FALSE(MerkleTree::verify(leaves[3], proof, tree.root()));
}

TEST(Merkle, FlippedSideBitFails) {
    std::vector<Digest256> leaves;
    for (int i = 0; i < 8; ++i)
        leaves.push_back(MerkleTree::hash_leaf(ascii_bytes("leaf" + std::to_string(i))));
    const MerkleTree tree(leaves);
    auto proof = tree.prove(2);
    proof.steps[0].sibling_is_left = !proof.steps[0].sibling_is_left;
    EXPECT_FALSE(MerkleTree::verify(leaves[2], proof, tree.root()));
}

TEST(Merkle, LeafAndNodeDomainsSeparated) {
    // A leaf hash of some bytes must differ from a node hash of the same
    // bytes split in two — the domain prefixes prevent type confusion.
    const Digest256 a = Sha256::hash("a");
    const Digest256 b = Sha256::hash("b");
    std::vector<std::uint8_t> concat;
    concat.insert(concat.end(), a.begin(), a.end());
    concat.insert(concat.end(), b.begin(), b.end());
    EXPECT_NE(to_hex(MerkleTree::hash_node(a, b)), to_hex(MerkleTree::hash_leaf(concat)));
}

TEST(Merkle, SingleLeafTreeRootIsLeaf) {
    const Digest256 leaf = MerkleTree::hash_leaf(ascii_bytes("only"));
    const MerkleTree tree({leaf});
    EXPECT_EQ(tree.root(), leaf);
    EXPECT_EQ(tree.height(), 0u);
    EXPECT_TRUE(tree.prove(0).steps.empty());
}

TEST(Merkle, ProofWireSizeGrowsLogarithmically) {
    std::vector<Digest256> leaves(64, Sha256::hash("x"));
    const MerkleTree tree(leaves);
    EXPECT_EQ(tree.prove(0).steps.size(), 6u);  // log2(64)
}

// ------------------------------------------------------------ k-ary trees

class KaryMerkleSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(KaryMerkleSweep, AllProofsVerify) {
    const auto [count, arity] = GetParam();
    std::vector<Digest256> leaves;
    for (std::size_t i = 0; i < count; ++i)
        leaves.push_back(MerkleTree::hash_leaf(ascii_bytes("leaf-" + std::to_string(i))));
    const KaryMerkleTree tree(leaves, arity);
    EXPECT_EQ(tree.leaf_count(), count);
    for (std::size_t i = 0; i < count; ++i) {
        const auto proof = tree.prove(i);
        EXPECT_TRUE(KaryMerkleTree::verify(leaves[i], proof, tree.root()))
            << "leaf " << i << " arity " << arity;
        // Every step's group fits the arity.
        for (const auto& step : proof.steps) {
            EXPECT_LT(step.siblings.size(), arity);
            EXPECT_LE(step.position, step.siblings.size());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(SizesAndArities, KaryMerkleSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 7, 8, 9, 16, 27, 30,
                                                              64, 81),
                                            ::testing::Values(2, 3, 4, 8)));

TEST(KaryMerkle, HeightIsLogArity) {
    std::vector<Digest256> leaves(81, Sha256::hash("x"));
    EXPECT_EQ(KaryMerkleTree(leaves, 3).height(), 4u);   // 3^4 = 81
    EXPECT_EQ(KaryMerkleTree(leaves, 9).height(), 2u);   // 9^2 = 81
    EXPECT_EQ(KaryMerkleTree(leaves, 81).height(), 1u);  // flat
}

TEST(KaryMerkle, WrongLeafAndTamperFail) {
    std::vector<Digest256> leaves;
    for (int i = 0; i < 27; ++i)
        leaves.push_back(MerkleTree::hash_leaf(ascii_bytes("l" + std::to_string(i))));
    const KaryMerkleTree tree(leaves, 3);
    auto proof = tree.prove(10);
    EXPECT_FALSE(KaryMerkleTree::verify(leaves[11], proof, tree.root()));
    proof.steps[1].siblings[0][0] ^= 1;
    EXPECT_FALSE(KaryMerkleTree::verify(leaves[10], proof, tree.root()));
}

TEST(KaryMerkle, WrongPositionFails) {
    std::vector<Digest256> leaves;
    for (int i = 0; i < 9; ++i)
        leaves.push_back(MerkleTree::hash_leaf(ascii_bytes("l" + std::to_string(i))));
    const KaryMerkleTree tree(leaves, 3);
    auto proof = tree.prove(4);
    proof.steps[0].position = (proof.steps[0].position + 1) % 3;
    EXPECT_FALSE(KaryMerkleTree::verify(leaves[4], proof, tree.root()));
    proof.steps[0].position = 99;  // absurd
    EXPECT_FALSE(KaryMerkleTree::verify(leaves[4], proof, tree.root()));
}

TEST(KaryMerkle, TruncatedGroupsAreDomainSeparated) {
    // A 2-child group must not collide with a 3-child group sharing a
    // prefix — the child count is hashed.
    const Digest256 a = Sha256::hash("a"), b = Sha256::hash("b"), c = Sha256::hash("c");
    const Digest256 g2 = KaryMerkleTree::hash_group(std::array<Digest256, 2>{a, b});
    const Digest256 g3 = KaryMerkleTree::hash_group(std::array<Digest256, 3>{a, b, c});
    EXPECT_NE(to_hex(g2), to_hex(g3));
}

TEST(KaryMerkle, RejectsBadArity) {
    std::vector<Digest256> leaves(4, Sha256::hash("x"));
    EXPECT_THROW(KaryMerkleTree(leaves, 1), std::invalid_argument);
    EXPECT_THROW(KaryMerkleTree(leaves, 256), std::invalid_argument);
}

// ----------------------------------------------------- MerkleWotsSigner

TEST(MerkleWotsSigner, SignsUpToCapacityThenThrows) {
    Rng rng(3);
    MerkleWotsSigner signer(rng, 4);
    const auto verifier = signer.make_verifier();
    for (int i = 0; i < 4; ++i) {
        const auto msg = ascii_bytes("msg" + std::to_string(i));
        const auto sig = signer.sign(msg);
        EXPECT_TRUE(verifier->verify(msg, sig)) << i;
    }
    EXPECT_EQ(signer.remaining(), 0u);
    EXPECT_THROW(signer.sign(ascii_bytes("over")), std::runtime_error);
}

TEST(MerkleWotsSigner, CrossMessageVerificationFails) {
    Rng rng(4);
    MerkleWotsSigner signer(rng, 2);
    const auto verifier = signer.make_verifier();
    const auto sig = signer.sign(ascii_bytes("first"));
    EXPECT_FALSE(verifier->verify(ascii_bytes("second"), sig));
}

TEST(MerkleWotsSigner, TruncatedSignatureFails) {
    Rng rng(5);
    MerkleWotsSigner signer(rng, 2);
    const auto verifier = signer.make_verifier();
    auto sig = signer.sign(ascii_bytes("msg"));
    sig.resize(sig.size() - 1);
    EXPECT_FALSE(verifier->verify(ascii_bytes("msg"), sig));
}

TEST(MerkleWotsSigner, SignatureBytesMatchesActual) {
    Rng rng(6);
    MerkleWotsSigner signer(rng, 8);
    const auto sig = signer.sign(ascii_bytes("size-check"));
    EXPECT_EQ(sig.size(), signer.signature_bytes());
}

TEST(MerkleWotsSigner, GarbageBytesFailGracefully) {
    Rng rng(7);
    MerkleWotsSigner signer(rng, 2);
    const auto verifier = signer.make_verifier();
    EXPECT_FALSE(verifier->verify(ascii_bytes("m"), rng.bytes(100)));
    EXPECT_FALSE(verifier->verify(ascii_bytes("m"), {}));
}

}  // namespace
}  // namespace mcauth

// Design service (design/service.hpp, DESIGN.md §15).
//
// The load-bearing properties, each pinned down here:
//
//   * bit-identity — the incremental evaluator's estimates equal a full
//     Monte-Carlo re-simulation after ANY add/remove sequence, and the
//     incremental greedy designer reproduces the design_greedy_channel
//     oracle's output graph byte for byte;
//   * cache-key quantization — channel states in one cell share a key
//     (and therefore one byte-identical design), states across a
//     quantization edge never alias;
//   * LRU/staleness — eviction order, capacity bounds and stale rebuilds
//     behave under churn;
//   * service events — every serve emits kDesignServed, and the extended
//     adaptive-loop suite's bounded-lag rule accepts a controller-through-
//     service redesign trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "adapt/controller.hpp"
#include "core/authprob.hpp"
#include "core/serialize.hpp"
#include "core/topologies.hpp"
#include "design/constructors.hpp"
#include "design/service.hpp"
#include "net/loss.hpp"
#include "obs/expect.hpp"
#include "obs/obs.hpp"

using namespace mcauth;
using namespace mcauth::design;

namespace {

// Exact-double comparison of the full estimate, treating NaN == NaN
// (never-received vertices carry NaN by contract; bit-identity must cover
// them too).
void expect_same_prob(const MonteCarloAuthProb& a, const MonteCarloAuthProb& b) {
    const auto same = [](double x, double y) {
        return std::isnan(x) ? std::isnan(y) : x == y;
    };
    ASSERT_EQ(a.q.size(), b.q.size());
    for (std::size_t v = 0; v < a.q.size(); ++v) {
        EXPECT_TRUE(same(a.q[v], b.q[v])) << "q at vertex " << v;
        EXPECT_TRUE(same(a.halfwidth[v], b.halfwidth[v])) << "halfwidth at " << v;
    }
    EXPECT_TRUE(same(a.q_min, b.q_min));
    EXPECT_EQ(a.q_min_halfwidth, b.q_min_halfwidth);
    EXPECT_EQ(a.trials, b.trials);
}

DependenceGraph spine(std::size_t n) { return make_offset_scheme(n, {1}); }

}  // namespace

// ------------------------------------------- incremental evaluator

TEST(IncrementalEvaluator, MatchesFullResimAfterAddSequence) {
    const std::size_t n = 40;
    const auto loss = GilbertElliottLoss::from_rate_and_burst(0.25, 3.0);
    const std::uint64_t seed = 4242;
    const std::size_t trials = 300;  // ragged last batch on purpose

    DependenceGraph dg = spine(n);
    IncrementalChannelEvaluator eval(dg, loss, seed, trials);

    const std::vector<std::pair<VertexId, VertexId>> adds = {
        {0, 7}, {0, 20}, {5, 9}, {12, 30}, {0, 39}, {18, 22}, {2, 35}};
    for (const auto& [u, v] : adds) {
        dg.add_dependence(u, v);
        eval.add_edge(u, v);
        expect_same_prob(eval.auth_prob(),
                         monte_carlo_auth_prob(dg, loss, seed, trials));
    }
}

TEST(IncrementalEvaluator, MatchesFullResimAfterRemoveSequence) {
    const std::size_t n = 32;
    const BernoulliLoss loss(0.35);
    const std::uint64_t seed = 99;
    const std::size_t trials = 256;

    // Start dense, then strip edges back out — removal must deltify too.
    std::vector<std::pair<VertexId, VertexId>> extra;
    for (VertexId v = 4; v < n; v += 3) extra.push_back({0, v});
    for (VertexId v = 6; v < n; v += 5) extra.push_back({static_cast<VertexId>(v - 4), v});
    DependenceGraph dg = spine(n);
    for (const auto& [u, v] : extra) dg.add_dependence(u, v);

    IncrementalChannelEvaluator eval(dg, loss, seed, trials);
    // Baseline: the freshly constructed evaluator already matches.
    expect_same_prob(eval.auth_prob(), monte_carlo_auth_prob(dg, loss, seed, trials));

    // DependenceGraph has no edge removal, so the reference graph is
    // rebuilt from scratch per step.
    std::vector<std::pair<VertexId, VertexId>> present = extra;
    while (!present.empty()) {
        const auto [u, v] = present.back();
        present.pop_back();
        eval.remove_edge(u, v);

        DependenceGraph ref = spine(n);
        for (const auto& [a, b] : present) ref.add_dependence(a, b);
        expect_same_prob(eval.auth_prob(),
                         monte_carlo_auth_prob(ref, loss, seed, trials));
    }
}

TEST(IncrementalEvaluator, DeltaSweepTouchesFractionOfGraph) {
    const std::size_t n = 128;
    const BernoulliLoss loss(0.2);
    DependenceGraph dg = spine(n);
    IncrementalChannelEvaluator eval(dg, loss, 7, 512);
    // One edge deep in the graph: the cone is bounded by the vertices at or
    // after the edge head, and the unchanged-word cutoff typically stops
    // the sweep far earlier than even that.
    eval.add_edge(100, 120);
    const std::size_t batches = (512 + 63) / 64;
    EXPECT_LE(eval.swept_vertices(), (n - 120) * batches);
    EXPECT_GE(eval.swept_vertices(), batches);  // the head itself, per batch
}

TEST(IncrementalGreedy, ReproducesOracleByteForByte) {
    GreedyDesignOptions opts;
    for (const double burst : {1.0, 4.0}) {
        DesignGoal goal;
        goal.n = 48;
        goal.p = 0.3;
        goal.target_q_min = 0.92;
        std::unique_ptr<LossModel> loss;
        if (burst > 1.0)
            loss = std::make_unique<GilbertElliottLoss>(
                GilbertElliottLoss::from_rate_and_burst(goal.p, burst));
        else
            loss = std::make_unique<BernoulliLoss>(goal.p);

        MonteCarloAuthProb final_prob;
        const DependenceGraph fast = design_greedy_channel_incremental(
            goal, *loss, 1234, 256, opts, &final_prob);
        const DependenceGraph oracle =
            design_greedy_channel(goal, *loss, 1234, 256, opts);
        EXPECT_EQ(to_text(fast), to_text(oracle)) << "burst=" << burst;
        // The reported final evaluation is the full-re-sim metric of the
        // RETURNED graph, not of an intermediate.
        expect_same_prob(final_prob, monte_carlo_auth_prob(fast, *loss, 1234, 256));
    }
}

// ------------------------------------------------------ cache keys

TEST(DesignerKeys, SameCellSharesKeyAcrossCellNever) {
    Designer designer;  // p_step = 0.02, burst_step = 0.5, target_step = 0.01
    DesignRequest a;
    a.goal.n = 64;
    a.goal.p = 0.185;
    a.goal.target_q_min = 0.9;
    a.method = DesignMethod::kGreedyChannel;
    a.mean_burst = 3.2;

    DesignRequest b = a;
    b.goal.p = 0.195;  // same 0.02 cell as 0.185 (both ceil to 10)
    EXPECT_EQ(designer.quantize(a), designer.quantize(b));

    DesignRequest c = a;
    c.goal.p = 0.205;  // across the 0.20 quantization edge
    EXPECT_NE(designer.quantize(a), designer.quantize(c));

    DesignRequest d = a;
    d.mean_burst = 3.6;  // across the 3.5 burst edge (3.2 -> 7, 3.6 -> 8)
    EXPECT_NE(designer.quantize(a), designer.quantize(d));

    DesignRequest e = a;
    e.goal.target_q_min = 0.905;  // across the 0.90 target edge
    EXPECT_NE(designer.quantize(a), designer.quantize(e));

    // An exact multiple of the step stays in its own cell: 0.20 must not
    // round up to the 0.22 cell from fp noise in the division.
    DesignRequest f = a;
    f.goal.p = 0.20;
    EXPECT_EQ(designer.quantize(a), designer.quantize(f));
}

TEST(DesignerKeys, QuantizationIsConservative) {
    Designer designer;
    DesignRequest req;
    req.goal.n = 32;
    req.goal.p = 0.173;
    req.goal.target_q_min = 0.883;
    req.method = DesignMethod::kGreedyChannel;
    req.mean_burst = 2.1;
    const DesignRequest mat = designer.materialize(req);
    // The materialized point is the cell's worst corner: never below the
    // requested state on any protection-relevant axis.
    EXPECT_GE(mat.goal.p, req.goal.p);
    EXPECT_GE(mat.goal.target_q_min, req.goal.target_q_min);
    EXPECT_GE(mat.mean_burst, req.mean_burst);
    EXPECT_NE(mat.seed, 0u);  // derived deterministically from the key
    EXPECT_EQ(mat.seed, designer.quantize(req).derived_seed());
}

TEST(DesignerKeys, MethodAndPinnedSeedSeparateKeys) {
    Designer designer;
    DesignRequest a;
    a.goal.n = 32;
    a.method = DesignMethod::kGreedy;
    DesignRequest b = a;
    b.method = DesignMethod::kOffsetSet;
    EXPECT_NE(designer.quantize(a), designer.quantize(b));
    DesignRequest c = a;
    c.seed = 77;  // pinned-seed requests never alias derived-seed ones
    EXPECT_NE(designer.quantize(a), designer.quantize(c));
}

// ------------------------------------------------- cache behaviour

TEST(DesignerCache, HitServesByteIdenticalDesign) {
    Designer designer;
    DesignRequest req;
    req.goal.n = 48;
    req.goal.p = 0.24;
    req.goal.target_q_min = 0.93;
    req.method = DesignMethod::kGreedyChannel;
    req.mean_burst = 2.8;
    req.mc_trials = 256;

    const DesignResult fresh = designer.design(req);
    EXPECT_EQ(fresh.source, DesignSource::kFresh);

    DesignRequest inside = req;
    inside.goal.p = 0.232;  // different channel state, same cell
    const DesignResult cached = designer.design(inside);
    EXPECT_EQ(cached.source, DesignSource::kCache);
    EXPECT_TRUE(identical(fresh, cached));

    EXPECT_EQ(designer.stats().hits, 1u);
    EXPECT_EQ(designer.stats().misses, 1u);
}

TEST(DesignerCache, CachedEqualsUncachedOracle) {
    // The acceptance contract: a service-served design is byte-identical
    // to calling the uncached design_greedy_channel oracle at the
    // materialized operating point.
    Designer designer;
    DesignRequest req;
    req.goal.n = 40;
    req.goal.p = 0.27;
    req.goal.target_q_min = 0.91;
    req.method = DesignMethod::kGreedyChannel;
    req.mean_burst = 3.0;
    req.mc_trials = 256;

    const DesignResult served = designer.design(req);
    const DesignRequest mat = designer.materialize(req);
    const DependenceGraph oracle = design_greedy_channel(
        mat.goal,
        GilbertElliottLoss::from_rate_and_burst(std::clamp(mat.goal.p, 1e-3, 0.999),
                                                mat.mean_burst),
        mat.seed, mat.mc_trials, mat.greedy);
    EXPECT_EQ(to_text(served.graph), to_text(oracle));
}

TEST(DesignerCache, ShimFamiliesMatchFreeFunctions) {
    // Byte-identity of the Designer against each free-function entry point
    // it fronts, at the materialized operating point.
    Designer designer;
    DesignRequest req;
    req.goal.n = 36;
    req.goal.p = 0.2;
    req.goal.target_q_min = 0.9;

    req.method = DesignMethod::kGreedy;
    {
        const DesignRequest mat = designer.materialize(req);
        EXPECT_EQ(to_text(designer.design(req).graph),
                  to_text(design_greedy(mat.goal, mat.greedy)));
    }

    req.method = DesignMethod::kOffsetSet;
    {
        const DesignRequest mat = designer.materialize(req);
        const OffsetDesignResult ref = design_offset_set(mat.goal);
        const DesignResult served = designer.design(req);
        ASSERT_TRUE(ref.feasible);
        EXPECT_TRUE(served.feasible);
        EXPECT_EQ(served.offsets, ref.offsets);
        EXPECT_EQ(to_text(served.graph),
                  to_text(make_offset_scheme(mat.goal.n, ref.offsets, "offset-design")));
    }

    req.method = DesignMethod::kRandom;
    req.seed = 321;
    {
        const DesignRequest mat = designer.materialize(req);
        Rng rng(mat.seed);
        const RandomDesignResult ref = design_random(mat.goal, rng, mat.random_tolerance);
        const DesignResult served = designer.design(req);
        ASSERT_TRUE(ref.feasible);
        EXPECT_TRUE(served.feasible);
        EXPECT_EQ(served.edge_prob, ref.edge_prob);
        Rng draw_rng(rng.next_u64());
        EXPECT_EQ(to_text(served.graph),
                  to_text(make_random_scheme(mat.goal.n, ref.edge_prob, draw_rng)));
    }
}

TEST(DesignerCache, LruEvictsLeastRecentlyTouchedUnderChurn) {
    DesignerOptions opts;
    opts.cache_capacity = 3;
    Designer designer(opts);

    const auto request_at = [](double p) {
        DesignRequest req;
        req.goal.n = 24;
        req.goal.p = p;
        req.goal.target_q_min = 0.9;
        req.method = DesignMethod::kGreedy;
        return req;
    };

    // Five distinct cells through a capacity-3 cache: the two oldest fall out.
    for (const double p : {0.10, 0.14, 0.18, 0.22, 0.26})
        EXPECT_EQ(designer.design(request_at(p)).source, DesignSource::kFresh);
    EXPECT_EQ(designer.cache_size(), 3u);
    EXPECT_EQ(designer.stats().evictions, 2u);

    // The survivors hit, in an order that makes 0.26 the LRU entry...
    EXPECT_EQ(designer.design(request_at(0.26)).source, DesignSource::kCache);
    EXPECT_EQ(designer.design(request_at(0.22)).source, DesignSource::kCache);
    EXPECT_EQ(designer.design(request_at(0.18)).source, DesignSource::kCache);
    // ...so re-inserting the evicted 0.10 evicts exactly 0.26 (touch order,
    // not insertion order), leaving 0.18 and 0.22 resident.
    EXPECT_EQ(designer.design(request_at(0.10)).source, DesignSource::kFresh);
    EXPECT_EQ(designer.stats().evictions, 3u);
    EXPECT_EQ(designer.design(request_at(0.18)).source, DesignSource::kCache);
    EXPECT_EQ(designer.design(request_at(0.22)).source, DesignSource::kCache);
    EXPECT_EQ(designer.design(request_at(0.26)).source, DesignSource::kFresh);
    EXPECT_EQ(designer.cache_size(), 3u);
}

TEST(DesignerCache, StaleEntriesRebuild) {
    DesignerOptions opts;
    opts.stale_after_serves = 2;
    Designer designer(opts);

    DesignRequest a;
    a.goal.n = 24;
    a.goal.p = 0.2;
    a.method = DesignMethod::kGreedy;
    DesignRequest b = a;
    b.goal.p = 0.3;

    EXPECT_EQ(designer.design(a).source, DesignSource::kFresh);  // serve 1
    EXPECT_EQ(designer.design(b).source, DesignSource::kFresh);  // serve 2
    EXPECT_EQ(designer.design(b).source, DesignSource::kCache);  // serve 3
    // Serve 4: a's entry is now 3 serves old (> 2) — stale, rebuilt fresh.
    EXPECT_EQ(designer.design(a).source, DesignSource::kFresh);
    EXPECT_EQ(designer.stats().stale, 1u);
}

// --------------------------------------------------------- frontier

TEST(DesignerFrontier, PrecomputedCellServesAndSerializes) {
    Designer designer;
    FrontierSpec spec;
    spec.method = DesignMethod::kGreedy;
    spec.n = 32;
    spec.p_grid = {0.1, 0.2, 0.3};
    spec.target_grid = {0.9};
    EXPECT_EQ(designer.precompute_frontier(spec), 3u);
    EXPECT_EQ(designer.frontier_size(), 3u);

    DesignRequest req;
    req.goal.n = 32;
    req.goal.p = 0.193;  // inside the precomputed 0.2 cell
    req.goal.target_q_min = 0.9;
    req.method = DesignMethod::kGreedy;
    req.greedy.max_edges = 4 * 32;  // the frontier's resolved edge cap
    const DesignResult served = designer.design(req);
    EXPECT_EQ(served.source, DesignSource::kFrontier);
    EXPECT_EQ(designer.stats().frontier_hits, 1u);
    EXPECT_EQ(designer.stats().misses, 0u);

    // The frontier-served design equals the fresh build at the same cell.
    Designer plain;
    EXPECT_TRUE(identical(served, plain.design(req)));

    const std::string json = designer.frontier_json();
    EXPECT_NE(json.find("mcauth-design-frontier-v1"), std::string::npos);
    EXPECT_NE(json.find("\"hashes_per_packet\""), std::string::npos);
    // At a single target, at least the cheapest feasible design survives
    // the dominance pass.
    EXPECT_NE(json.find("\"pareto\": true"), std::string::npos);
}

// ------------------------------------------- controller + events

TEST(DesignServiceEvents, ControllerRedesignEmitsServedWithinLagBound) {
    mcauth::obs::set_enabled(true);
    mcauth::obs::set_trace_enabled(true);
    mcauth::obs::TraceRecorder::global().clear();

    const mcauth::obs::ExpectationSuite* suite = mcauth::obs::find_suite("adaptive-loop");
    ASSERT_NE(suite, nullptr);
    {
        mcauth::obs::OnlineConformance conformance(*suite);

        adapt::AdaptiveOptions options;
        options.mc_trials = 128;
        auto designer = std::make_shared<Designer>();
        options.designer = designer;
        adapt::AdaptiveController ctrl(options, 7);
        ASSERT_TRUE(ctrl.on_block_boundary(0));  // kRedesignTriggered @ 0
        (void)ctrl.topology()(24);               // kDesignServed @ 0 (fresh)
        (void)ctrl.topology()(24);               // kDesignServed @ 0 (cache)

        EXPECT_EQ(designer->stats().misses, 1u);
        EXPECT_EQ(designer->stats().hits, 1u);

        const mcauth::obs::ConformanceReport report = conformance.finish();
        EXPECT_TRUE(report.ok()) << report.render_text();
    }

    // The trace carries the served events with a known source code and a
    // non-negative latency.
    const auto events =
        mcauth::obs::extract_events(mcauth::obs::TraceRecorder::global().snapshot());
    std::size_t served = 0;
    for (const auto& ev : events)
        if (ev.id == mcauth::obs::EventId::kDesignServed) {
            ++served;
            EXPECT_LE(ev.index, 2u);
            EXPECT_GE(ev.value, 0.0);
        }
    EXPECT_EQ(served, 2u);
    mcauth::obs::set_trace_enabled(false);
}

TEST(DesignServiceEvents, SharedDesignerAmortizesAcrossControllers) {
    // Two controllers at the same operating point share one cached design —
    // the fleet-amortization property the key-derived seed exists for: the
    // design seed is a function of the quantized cell, not of either
    // controller's own seed.
    auto designer = std::make_shared<Designer>();
    adapt::AdaptiveOptions options;
    options.mc_trials = 128;
    options.designer = designer;

    adapt::AdaptiveController a(options, 1);
    adapt::AdaptiveController b(options, 2);  // different controller seed
    ASSERT_TRUE(a.on_block_boundary(0));
    ASSERT_TRUE(b.on_block_boundary(0));
    const DependenceGraph ga = a.topology()(32);
    const DependenceGraph gb = b.topology()(32);
    EXPECT_EQ(to_text(ga), to_text(gb));
    EXPECT_EQ(designer->stats().misses, 1u);
    EXPECT_EQ(designer->stats().hits, 1u);
}

// Bit-sliced Monte-Carlo engine (exec/bitslice.hpp, graph/csr.hpp) and the
// cross-engine determinism contract of DESIGN.md §8: for the same (seed,
// trials), the bit-sliced and scalar engines — at any thread count — must
// produce bit-identical counts, because lane l of batch b runs trial
// b*64 + l on exactly the RNG stream the scalar engine gives that trial.
//
// The suite carries the `perf-smoke` ctest label: it is the cheap
// every-build proof that the fast path computes the same thing as the
// reference path (256 trials per engine per model), and tsan-smoke runs it
// under TSan so the bit-sliced shard fan-out is race-checked too.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/authprob.hpp"
#include "core/tesla.hpp"
#include "core/topologies.hpp"
#include "exec/bitslice.hpp"
#include "exec/sharded.hpp"
#include "exec/thread_pool.hpp"
#include "graph/algorithms.hpp"
#include "graph/csr.hpp"
#include "net/delay.hpp"
#include "net/loss.hpp"

namespace mcauth {
namespace {

using exec::BitslicedTrials;
using exec::ThreadPool;

class GlobalPoolGuard {
public:
    GlobalPoolGuard() : saved_(ThreadPool::global_thread_count()) {}
    ~GlobalPoolGuard() { ThreadPool::set_global_thread_count(saved_); }

private:
    std::size_t saved_;
};

// --------------------------------------------------------- trial geometry

TEST(BitslicedTrials, SingleTrialStillOccupiesOneBatch) {
    const BitslicedTrials bt(1, 99);
    EXPECT_EQ(bt.trials(), 1u);
    EXPECT_EQ(bt.batch_count(), 1u);
    EXPECT_EQ(bt.shard_count(), 1u);
    EXPECT_EQ(bt.active_mask(0), 1ULL);
    EXPECT_EQ(bt.batch_trials(0), 1u);
}

TEST(BitslicedTrials, ExactMultipleHasNoGhostLanes) {
    const BitslicedTrials bt(256, 7);
    EXPECT_EQ(bt.batch_count(), 4u);
    for (std::size_t b = 0; b < 4; ++b) {
        EXPECT_EQ(bt.active_mask(b), ~0ULL) << b;
        EXPECT_EQ(bt.batch_trials(b), 64u) << b;
        EXPECT_EQ(bt.batch_first_trial(b), 64 * b) << b;
    }
}

TEST(BitslicedTrials, RaggedFinalBatchMasksGhostLanes) {
    const BitslicedTrials bt(130, 7);
    EXPECT_EQ(bt.batch_count(), 3u);
    EXPECT_EQ(bt.batch_trials(2), 2u);
    EXPECT_EQ(bt.active_mask(2), 0x3ULL);
}

TEST(BitslicedTrials, ShardsPartitionBatches) {
    // 1000 batches at 64 trials each, 3 batches per shard.
    const BitslicedTrials bt(64000, 7, 3);
    EXPECT_EQ(bt.batch_count(), 1000u);
    EXPECT_EQ(bt.shard_count(), 334u);  // 333 full + 1 remainder
    std::size_t covered = 0;
    for (std::size_t s = 0; s < bt.shard_count(); ++s) {
        EXPECT_EQ(bt.shard_batch_begin(s), covered) << s;
        covered += bt.shard_batches(s);
    }
    EXPECT_EQ(covered, bt.batch_count());
}

TEST(BitslicedTrials, TrialSeedMatchesScalarEngineStreams) {
    // The whole §8 contract hangs on this equality: lane streams ARE the
    // scalar per-trial streams.
    const std::uint64_t seed = 0xfeedf00dULL;
    const BitslicedTrials bt(200, seed);
    for (std::size_t t : {std::size_t{0}, std::size_t{63}, std::size_t{64},
                          std::size_t{199}}) {
        EXPECT_EQ(bt.trial_seed(t), exec::derive_stream_seed(seed, t)) << t;
    }
}

TEST(BitslicedTrials, SeedLanesCoversGhostLanesHarmlessly) {
    // Ghost lanes of the ragged final batch get their own (unused) streams,
    // so seed_lanes always yields exactly 64 generators.
    const BitslicedTrials bt(70, 5);
    std::vector<Rng> lanes;
    bt.seed_lanes(1, lanes);
    ASSERT_EQ(lanes.size(), 64u);
    Rng expect(bt.trial_seed(70));  // first ghost lane of batch 1
    EXPECT_EQ(lanes[6].next_u64(), expect.next_u64());
}

// ------------------------------------------------------------------- CSR

TEST(CsrView, MirrorsDigraphAdjacency) {
    const auto dg = make_emss(40, 3, 2);
    const CsrView csr(dg.graph());
    EXPECT_EQ(csr.vertex_count(), dg.graph().vertex_count());
    EXPECT_EQ(csr.edge_count(), dg.graph().edge_count());
    for (VertexId v = 0; v < csr.vertex_count(); ++v) {
        const auto succ = csr.successors(v);
        const auto expect = dg.graph().successors(v);
        ASSERT_EQ(succ.size(), expect.size()) << v;
        for (std::size_t i = 0; i < succ.size(); ++i) EXPECT_EQ(succ[i], expect[i]);
        const auto pred = csr.predecessors(v);
        const auto expect_pred = dg.graph().predecessors(v);
        ASSERT_EQ(pred.size(), expect_pred.size()) << v;
        for (std::size_t i = 0; i < pred.size(); ++i) EXPECT_EQ(pred[i], expect_pred[i]);
    }
}

TEST(CsrView, TopoOrderIsCached) {
    const auto dg = make_augmented_chain(30, 2, 2);
    const CsrView csr(dg.graph());
    const auto order = topological_order(dg.graph());
    ASSERT_TRUE(order.has_value());
    ASSERT_EQ(csr.topo_order().size(), order->size());
    for (std::size_t i = 0; i < order->size(); ++i)
        EXPECT_EQ(csr.topo_order()[i], (*order)[i]);
}

TEST(CsrView, BitslicedReachabilityMatchesScalarPerLane) {
    const auto dg = make_emss(48, 3, 4);
    const CsrView csr(dg.graph());
    const std::size_t n = dg.packet_count();
    Rng rng(11);

    // 64 random alive patterns, one per lane; the word sweep must agree
    // with 64 scalar verifiable_given evaluations.
    std::vector<std::vector<bool>> received(64, std::vector<bool>(n));
    std::vector<std::uint64_t> alive(n, 0);
    for (std::size_t l = 0; l < 64; ++l) {
        for (std::size_t v = 0; v < n; ++v) {
            received[l][v] = rng.bernoulli(0.6);
            if (received[l][v]) alive[v] |= 1ULL << l;
        }
        received[l][DependenceGraph::root()] = true;  // verifiable_given forces root
    }
    alive[DependenceGraph::root()] = ~0ULL;

    std::vector<std::uint64_t> reach(n, 0);
    reachable_within_bitsliced(csr, DependenceGraph::root(), alive.data(), reach.data());
    for (std::size_t l = 0; l < 64; ++l) {
        const auto verifiable = dg.verifiable_given(received[l]);
        for (std::size_t v = 1; v < n; ++v) {
            const bool bit = (reach[v] >> l) & 1ULL;
            EXPECT_EQ(bit, verifiable[v] && received[l][v]) << "lane " << l << " v " << v;
        }
    }
}

// ----------------------------------------------- cross-engine bit-identity
//
// 256 trials: 4 full batches — enough to cross shard-internal batch
// boundaries while staying cheap enough for every-build + TSan runs.

constexpr std::size_t kSmokeTrials = 256;

void expect_same_profile(const std::vector<double>& a, const std::vector<double>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t v = 0; v < a.size(); ++v) {
        if (std::isnan(a[v])) {
            EXPECT_TRUE(std::isnan(b[v])) << v;
        } else {
            EXPECT_EQ(a[v], b[v]) << v;  // bit-identical, not just close
        }
    }
}

void expect_engines_agree(const DependenceGraph& dg, const LossModel& loss,
                          std::uint64_t seed) {
    GlobalPoolGuard guard;
    const auto scalar = monte_carlo_auth_prob(dg, loss, seed, kSmokeTrials,
                                              McEngine::kScalar);
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        ThreadPool::set_global_thread_count(threads);
        const auto bitsliced = monte_carlo_auth_prob(dg, loss, seed, kSmokeTrials,
                                                     McEngine::kBitsliced);
        expect_same_profile(scalar.q, bitsliced.q);
        expect_same_profile(scalar.halfwidth, bitsliced.halfwidth);
    }
}

TEST(EngineIdentity, AuthProbBernoulli) {
    expect_engines_agree(make_emss(64, 2, 1), BernoulliLoss(0.2), 101);
}

TEST(EngineIdentity, AuthProbBernoulliDegenerateRates) {
    const auto dg = make_emss(32, 2, 1);
    expect_engines_agree(dg, BernoulliLoss(0.0), 102);
    expect_engines_agree(dg, BernoulliLoss(1.0), 103);
}

TEST(EngineIdentity, AuthProbGilbertElliott) {
    expect_engines_agree(make_augmented_chain(64, 2, 2),
                         GilbertElliottLoss::from_rate_and_burst(0.25, 4.0), 104);
}

TEST(EngineIdentity, AuthProbMarkov) {
    const MarkovLoss markov({{0.9, 0.08, 0.02}, {0.2, 0.7, 0.1}, {0.3, 0.1, 0.6}},
                            {0.0, 0.3, 1.0}, /*stationary_start=*/true);
    expect_engines_agree(make_emss(64, 3, 1), markov, 105);
}

TEST(EngineIdentity, AuthProbTrace) {
    // Deterministic model: also pins the exact expected counts.
    const TraceLoss trace({false, false, true, false, true, false, false});
    expect_engines_agree(make_rohatgi(48), trace, 106);
}

TEST(EngineIdentity, AuthProbRaggedTrialCounts) {
    const auto dg = make_emss(48, 2, 1);
    const BernoulliLoss loss(0.3);
    for (std::size_t trials : {std::size_t{1}, std::size_t{63}, std::size_t{65},
                               std::size_t{129}}) {
        const auto scalar = monte_carlo_auth_prob(dg, loss, 107, trials,
                                                  McEngine::kScalar);
        const auto bitsliced = monte_carlo_auth_prob(dg, loss, 107, trials,
                                                     McEngine::kBitsliced);
        expect_same_profile(scalar.q, bitsliced.q);
        EXPECT_EQ(scalar.trials, bitsliced.trials);
    }
}

TEST(EngineIdentity, Tesla) {
    GlobalPoolGuard guard;
    TeslaParams params;
    params.n = 100;
    params.t_disclose = 1.0;
    params.mu = 0.7;
    params.sigma = 0.3;
    params.p = 0.25;
    const BernoulliLoss loss(params.p);
    const GaussianDelay delay(params.mu, params.sigma);
    const auto scalar = monte_carlo_tesla(params, loss, delay, 108, kSmokeTrials,
                                          McEngine::kScalar);
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        ThreadPool::set_global_thread_count(threads);
        const auto bitsliced = monte_carlo_tesla(params, loss, delay, 108, kSmokeTrials,
                                                 McEngine::kBitsliced);
        expect_same_profile(scalar.q, bitsliced.q);
    }
}

TEST(EngineIdentity, TeslaBurstyCarriers) {
    const auto ge = GilbertElliottLoss::from_rate_and_burst(0.2, 6.0);
    TeslaParams params;
    params.n = 80;
    params.t_disclose = 0.8;
    params.mu = 0.5;
    params.sigma = 0.2;
    params.p = 0.2;
    const GaussianDelay delay(params.mu, params.sigma);
    const auto scalar = monte_carlo_tesla(params, ge, delay, 109, kSmokeTrials,
                                          McEngine::kScalar);
    const auto bitsliced = monte_carlo_tesla(params, ge, delay, 109, kSmokeTrials,
                                             McEngine::kBitsliced);
    expect_same_profile(scalar.q, bitsliced.q);
}

// ------------------------------------------------------------- halfwidths

TEST(Halfwidth, PerVertexWilsonIntervalsCoverTruth) {
    // Engines already agree bit-for-bit above; here check the NEW halfwidth
    // field is sane: present per vertex, NaN exactly where q is NaN, and
    // q_min_halfwidth echoes the argmin vertex.
    const auto dg = make_emss(64, 2, 1);
    const BernoulliLoss loss(0.2);
    const auto mc = monte_carlo_auth_prob(dg, loss, 110, 4000);
    ASSERT_EQ(mc.halfwidth.size(), mc.q.size());
    EXPECT_EQ(mc.halfwidth[DependenceGraph::root()], 0.0);
    for (std::size_t v = 1; v < mc.q.size(); ++v) {
        if (std::isnan(mc.q[v])) {
            EXPECT_TRUE(std::isnan(mc.halfwidth[v])) << v;
            continue;
        }
        EXPECT_GT(mc.halfwidth[v], 0.0) << v;
        EXPECT_LT(mc.halfwidth[v], 0.5) << v;
    }
    // q_min_halfwidth is the halfwidth at the argmin vertex.
    std::size_t argmin = 0;
    for (std::size_t v = 1; v < mc.q.size(); ++v) {
        if (std::isnan(mc.q[v])) continue;
        if (argmin == 0 || mc.q[v] < mc.q[argmin]) argmin = v;
    }
    ASSERT_NE(argmin, 0u);
    EXPECT_EQ(mc.q_min_halfwidth, mc.halfwidth[argmin]);
}

}  // namespace
}  // namespace mcauth

// obs::BlameAttributor: the causal loss-attribution kernel (DESIGN.md §14).
//
//   * scalar classification on a hand-checkable diamond — priority order,
//     dominator blame, the residual-cut fallback, and the every-failure-
//     lands-in-exactly-one-class invariant;
//   * attribute_lanes vs 64 scalar attribute() calls — bit-identical
//     counts, the contract the population engine's blame determinism
//     rests on;
//   * population engine vs naive oracle with attribution on — identical
//     aggregates (blame included) across thread counts;
//   * AdaptiveSession event stream — every kBlameAttributed follows its
//     kPacketUnverifiable and carries a loss class (the "attribution"
//     expectation suite).
//
// perf-smoke label: the lane kernel and the sharded blame merge run under
// TSan via the tsan-smoke CI job.
#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <random>
#include <vector>

#include "adapt/session.hpp"
#include "core/topologies.hpp"
#include "crypto/signature.hpp"
#include "exec/thread_pool.hpp"
#include "graph/digraph.hpp"
#include "net/loss.hpp"
#include "obs/attrib.hpp"
#include "obs/events.hpp"
#include "obs/expect.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "pop/population.hpp"
#include "pop/tree.hpp"
#include "util/rng.hpp"

namespace mcauth {
namespace {

using obs::BlameAttributor;
using obs::BlameCounts;
using obs::FailureClass;

std::uint64_t at_or(const std::vector<std::uint64_t>& v, std::size_t i) {
    return i < v.size() ? v[i] : 0;
}

std::uint64_t edge_blame(const BlameAttributor& attrib, const BlameCounts& counts,
                         VertexId u, VertexId v) {
    for (std::size_t i = 0; i < attrib.edge_count(); ++i)
        if (attrib.edge(i) == std::make_pair(u, v)) return at_or(counts.edge, i);
    ADD_FAILURE() << "no edge " << u << "->" << v;
    return 0;
}

// 0 -> 1 -> {2, 3} -> 4: vertex 1 is the sole interior dominator of 4;
// 2 and 3 are path-redundant.
Digraph diamond() {
    Digraph g(5);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(1, 3);
    g.add_edge(2, 4);
    g.add_edge(3, 4);
    return g;
}

TEST(BlameAttributorTest, ClassifiesEveryFailureExactlyOnce) {
    const Digraph g = diamond();
    const BlameAttributor attrib(g, 0);
    BlameAttributor::Scratch s = attrib.make_scratch();

    // Everything delivered: a verifiable packet is NOT a loss failure and
    // charges nothing (the kNone-no-mutation contract the engine-vs-oracle
    // identity depends on).
    BlameCounts counts;
    std::fill(s.received.begin(), s.received.end(), 1);
    attrib.begin_pattern(s);
    EXPECT_EQ(attrib.attribute(4, true, s, counts), FailureClass::kNone);
    EXPECT_EQ(counts.attributed, 0u);
    EXPECT_TRUE(counts.identical(BlameCounts{}));

    // The packet itself lost: class 1, blamed on the vertex.
    std::fill(s.received.begin(), s.received.end(), 1);
    s.received[4] = 0;
    attrib.begin_pattern(s);
    EXPECT_EQ(attrib.attribute(4, true, s, counts), FailureClass::kPacketLost);
    EXPECT_EQ(at_or(counts.vertex, 4), 1u);

    // Signature lost outranks path analysis: class 2, blamed on the root.
    std::fill(s.received.begin(), s.received.end(), 1);
    attrib.begin_pattern(s);
    EXPECT_EQ(attrib.attribute(4, false, s, counts), FailureClass::kSignatureLost);
    EXPECT_EQ(at_or(counts.vertex, 0), 1u);

    EXPECT_EQ(counts.attributed, 2u);
    EXPECT_EQ(counts.by_class[1] + counts.by_class[2] + counts.by_class[3],
              counts.attributed);
}

TEST(BlameAttributorTest, DominatorLossBlamesTheDominator) {
    const Digraph g = diamond();
    const BlameAttributor attrib(g, 0);
    BlameAttributor::Scratch s = attrib.make_scratch();
    BlameCounts counts;

    // Lose vertex 1: packet 4 arrived but every root path is provably cut
    // by the single dominator. Blame 1 and its outgoing hash edges into
    // 4's ancestor cone — not 2/3/4, which did nothing wrong.
    std::fill(s.received.begin(), s.received.end(), 1);
    s.received[1] = 0;
    attrib.begin_pattern(s);
    EXPECT_EQ(attrib.attribute(4, true, s, counts), FailureClass::kPathsCut);
    EXPECT_EQ(at_or(counts.vertex, 1), 1u);
    EXPECT_EQ(at_or(counts.vertex, 2), 0u);
    EXPECT_EQ(at_or(counts.vertex, 3), 0u);
    EXPECT_EQ(edge_blame(attrib, counts, 1, 2), 1u);
    EXPECT_EQ(edge_blame(attrib, counts, 1, 3), 1u);
    EXPECT_EQ(edge_blame(attrib, counts, 2, 4), 0u);
}

TEST(BlameAttributorTest, ResidualCutSweepBlamesTheLossFrontier) {
    const Digraph g = diamond();
    const BlameAttributor attrib(g, 0);
    BlameAttributor::Scratch s = attrib.make_scratch();
    BlameCounts counts;

    // Lose 2 AND 3: every dominator of 4 was delivered, yet the paths are
    // cut — the combination is to blame. The frontier sweep names both.
    std::fill(s.received.begin(), s.received.end(), 1);
    s.received[2] = 0;
    s.received[3] = 0;
    attrib.begin_pattern(s);
    EXPECT_EQ(attrib.attribute(4, true, s, counts), FailureClass::kPathsCut);
    EXPECT_EQ(at_or(counts.vertex, 1), 0u);
    EXPECT_EQ(at_or(counts.vertex, 2), 1u);
    EXPECT_EQ(at_or(counts.vertex, 3), 1u);
    EXPECT_EQ(edge_blame(attrib, counts, 2, 4), 1u);
    EXPECT_EQ(edge_blame(attrib, counts, 3, 4), 1u);
    EXPECT_EQ(counts.by_class[3], 1u);
}

TEST(BlameAttributorTest, LanesMatchScalarBitForBit) {
    const DependenceGraph dg = make_augmented_chain(24, 2, 4);
    const BlameAttributor attrib(dg.graph(), DependenceGraph::root());
    const std::size_t n = attrib.vertex_count();

    // 64 random loss patterns, scalar path: per-lane received bytes ->
    // begin_pattern -> attribute() on every non-root vertex.
    std::mt19937_64 rng(0xa77cf8u);
    std::vector<std::vector<std::uint8_t>> lane_received(64);
    BlameCounts scalar;
    BlameAttributor::Scratch s = attrib.make_scratch();
    for (std::size_t lane = 0; lane < 64; ++lane) {
        lane_received[lane].resize(n);
        for (std::size_t v = 0; v < n; ++v)
            lane_received[lane][v] = (rng() & 3u) != 0;  // ~25% loss
        s.received = lane_received[lane];
        attrib.begin_pattern(s);
        for (std::size_t v = 1; v < n; ++v)
            attrib.attribute(static_cast<VertexId>(v), true, s, scalar);
    }

    // Same patterns, word-parallel: pack received/reach into lane words
    // (begin_pattern per lane supplies the reference reach).
    std::vector<std::uint64_t> alive(n, 0), reach(n, 0);
    for (std::size_t lane = 0; lane < 64; ++lane) {
        s.received = lane_received[lane];
        attrib.begin_pattern(s);
        for (std::size_t v = 0; v < n; ++v) {
            if (s.received[v]) alive[v] |= std::uint64_t{1} << lane;
            if (s.reach[v]) reach[v] |= std::uint64_t{1} << lane;
        }
    }
    BlameCounts lanes;
    std::vector<std::uint64_t> frontier;
    attrib.attribute_lanes(alive.data(), reach.data(), frontier, lanes);

    EXPECT_TRUE(lanes.identical(scalar));
    EXPECT_GT(lanes.attributed, 0u);
    EXPECT_EQ(lanes.by_class[1] + lanes.by_class[2] + lanes.by_class[3],
              lanes.attributed);
}

TEST(BlameAttributorTest, PopulationEngineBlameMatchesOracleAcrossThreads) {
    pop::TreeSpec spec;
    spec.backbone_depth = 2;
    spec.backbone_link = pop::LinkSpec::gilbert_elliott(0.05, 4.0);
    spec.fanouts = {4, 4};
    spec.fanout_links = {pop::LinkSpec::bernoulli(0.10),
                         pop::LinkSpec::bernoulli(0.06)};
    const pop::DistributionTree tree(spec);
    const DependenceGraph dg = make_augmented_chain(24, 2, 4);

    const pop::PopulationAggregate oracle = pop::population_oracle(
        tree, dg, /*seed=*/9, /*block=*/5, pop::QuantileSketch::kDefaultBins,
        /*attribution=*/true, /*attrib_sample_every=*/1);
    ASSERT_GT(oracle.blame.attributed, 0u);
    ASSERT_FALSE(oracle.link_blame.empty());

    pop::PopulationOptions options;
    options.max_shard_leaves = 4;  // force merges across shard boundaries
    options.attribution = true;
    options.attrib_sample_every = 1;
    const pop::PopulationEngine engine(tree, options);
    const std::size_t before = exec::ThreadPool::global_thread_count();
    for (std::size_t t : {std::size_t{1}, std::size_t{4}}) {
        exec::ThreadPool::set_global_thread_count(t);
        const pop::PopulationAggregate agg = engine.simulate_block(dg, 9, 5);
        EXPECT_TRUE(agg.identical(oracle)) << "threads=" << t;
    }
    exec::ThreadPool::set_global_thread_count(before);
}

TEST(BlameAttributorTest, SessionEmitsBlameForEveryLossUnverifiable) {
    struct Collector : obs::EventSink {
        std::mutex mu;
        std::vector<obs::Event> events;
        void on_event(const obs::Event& ev) override {
            const std::lock_guard<std::mutex> lock(mu);
            events.push_back(ev);
        }
    };

    Collector collector;
    obs::set_enabled(true);
    obs::set_trace_enabled(true);
    obs::TraceRecorder::global().clear();
    obs::EventSink* prev = obs::set_event_sink(&collector);

    {
        Rng srng(7);
        MerkleWotsSigner signer(srng, 64);
        adapt::SessionOptions opts;
        opts.receivers = 3;
        opts.block_size = 32;
        opts.payload_bytes = 32;
        opts.seed = 4242;
        // A deliberately sparse design (low q target) under heavy loss:
        // plenty of received-but-unverifiable packets to attribute.
        opts.controller.target_q_min = 0.5;
        adapt::AdaptiveSession session(opts, signer);
        const BernoulliLoss storm(0.35);
        session.run_window(storm, 20);
    }

    obs::set_event_sink(prev);
    obs::set_trace_enabled(false);

    std::uint64_t unverifiable = 0, blamed = 0;
    for (const obs::Event& ev : collector.events) {
        if (ev.id == obs::EventId::kPacketUnverifiable) ++unverifiable;
        if (ev.id == obs::EventId::kBlameAttributed) {
            ++blamed;
            EXPECT_TRUE(ev.value == 2.0 || ev.value == 3.0) << ev.value;
        }
    }
    ASSERT_GT(unverifiable, 0u);  // a 30% channel must break something
    EXPECT_EQ(blamed, unverifiable);

    // The full causal contract, checked by the suite the CI harness runs.
    const obs::ExpectationSuite* suite = obs::find_suite("attribution");
    ASSERT_NE(suite, nullptr);
    const obs::ConformanceReport report =
        obs::check_events(*suite, collector.events, 0);
    EXPECT_TRUE(report.ok()) << report.render_text();
}

}  // namespace
}  // namespace mcauth

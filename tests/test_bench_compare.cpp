// obs::bench_compare: the loader's refusal contract (pre-manifest files,
// unknown schema versions), the hard/soft compatibility split, and the
// noise-aware verdict bands (rel_tol floor widened by repeat spread).
#include <gtest/gtest.h>

#include <string>

#include "obs/bench_compare.hpp"

namespace mcauth::obs {
namespace {

// ------------------------------------------------------------------ loader

std::string v2_file_json(const std::string& bench = "perf_x",
                         std::uint64_t seed = 1) {
    return "{\n"
           "  \"schema_version\": 2,\n"
           "  \"bench\": \"" + bench + "\",\n"
           "  \"manifest\": {\n"
           "    \"schema_version\": 2,\n"
           "    \"bench\": \"" + bench + "\",\n"
           "    \"seed\": " + std::to_string(seed) + ",\n"
           "    \"git_revision\": \"abc123\",\n"
           "    \"compiler\": \"GNU 12.2.0\",\n"
           "    \"compiler_flags\": \"-O2\",\n"
           "    \"build_type\": \"RelWithDebInfo\",\n"
           "    \"sanitizer\": \"\",\n"
           "    \"cpu_model\": \"Fake CPU\",\n"
           "    \"cpu_avx2\": true,\n"
           "    \"bitslice_avx2_dispatch\": true,\n"
           "    \"hardware_threads\": 8,\n"
           "    \"threads\": 4\n"
           "  },\n"
           "  \"results\": [\n"
           "    {\"workload\": \"w1\", \"engine\": \"scalar\", \"threads\": 1,\n"
           "     \"trials\": 1000, \"seconds\": 2.0,\n"
           "     \"seconds_repeats\": [2.0, 2.1], \"trials_per_sec\": 500.0}\n"
           "  ]\n"
           "}\n";
}

TEST(BenchCompareLoader, ParsesV2File) {
    BenchFile f;
    std::string error;
    ASSERT_TRUE(load_bench_file(v2_file_json(), f, error)) << error;
    EXPECT_EQ(f.schema_version, 2);
    EXPECT_EQ(f.bench, "perf_x");
    EXPECT_EQ(f.seed, 1u);
    EXPECT_EQ(f.cpu_model, "Fake CPU");
    EXPECT_TRUE(f.cpu_avx2);
    EXPECT_EQ(f.hardware_threads, 8u);
    ASSERT_EQ(f.entries.size(), 1u);
    EXPECT_EQ(f.entries[0].key(), "w1/scalar@1t");
    EXPECT_EQ(f.entries[0].trials, 1000u);
    EXPECT_DOUBLE_EQ(f.entries[0].trials_per_sec, 500.0);
    ASSERT_EQ(f.entries[0].seconds_repeats.size(), 2u);
    EXPECT_NEAR(f.entries[0].repeat_spread(), 0.05, 1e-12);
}

// The refusal the ISSUE demands verbatim: a pre-manifest (PR-2/3 era) file
// gets an explicit "regenerate" message, not a confusing parse error.
TEST(BenchCompareLoader, RefusesPreManifestFile) {
    const std::string old_schema =
        "{\"bench\": \"perf_x\", \"seed\": 1, \"results\": []}";
    BenchFile f;
    std::string error;
    EXPECT_FALSE(load_bench_file(old_schema, f, error));
    EXPECT_NE(error.find("pre-manifest"), std::string::npos) << error;
    EXPECT_NE(error.find("regenerate"), std::string::npos) << error;
}

// v3 (the timeseries_out manifest addition) changed nothing bench_compare
// reads, so v2 baselines stay comparable against v3 current files.
TEST(BenchCompareLoader, AcceptsV3File) {
    std::string json = v2_file_json();
    // The loader reads the version from the embedded manifest.
    const auto pos = json.find("\"schema_version\": 2,\n    \"bench\"");
    ASSERT_NE(pos, std::string::npos);
    json.replace(pos, std::string("\"schema_version\": 2").size(),
                 "\"schema_version\": 3");
    BenchFile f;
    std::string error;
    ASSERT_TRUE(load_bench_file(json, f, error)) << error;
    EXPECT_EQ(f.schema_version, 3);
    EXPECT_EQ(f.bench, "perf_x");
}

TEST(BenchCompareLoader, RefusesUnknownSchemaVersion) {
    std::string json = v2_file_json();
    const auto pos = json.find("\"schema_version\": 2,\n    \"bench\"");
    ASSERT_NE(pos, std::string::npos);
    json.replace(pos, 20, "\"schema_version\": 9,");
    BenchFile f;
    std::string error;
    EXPECT_FALSE(load_bench_file(json, f, error));
    EXPECT_NE(error.find("schema_version 9"), std::string::npos) << error;
}

TEST(BenchCompareLoader, MetricFieldSelectsGatedValue) {
    // Quality benches (BENCH_adaptive.json) name their gated per-row value
    // in a top-level "metric" field; the loader reads that field instead
    // of trials_per_sec.
    std::string json = v2_file_json();
    json.replace(json.find("\"schema_version\": 2,\n"),
                 std::string("\"schema_version\": 2,\n").size(),
                 "\"schema_version\": 2,\n  \"metric\": \"q_min\",\n");
    json.replace(json.find("\"trials_per_sec\": 500.0"),
                 std::string("\"trials_per_sec\": 500.0").size(),
                 "\"q_min\": 0.953");
    BenchFile f;
    std::string error;
    ASSERT_TRUE(load_bench_file(json, f, error)) << error;
    EXPECT_EQ(f.metric, "q_min");
    ASSERT_EQ(f.entries.size(), 1u);
    EXPECT_DOUBLE_EQ(f.entries[0].trials_per_sec, 0.953);

    BenchFile plain;
    ASSERT_TRUE(load_bench_file(v2_file_json(), plain, error)) << error;
    EXPECT_EQ(plain.metric, "trials_per_sec");
}

TEST(BenchCompareLoader, RefusesGarbage) {
    BenchFile f;
    std::string error;
    EXPECT_FALSE(load_bench_file("not json at all", f, error));
    EXPECT_NE(error.find("not valid JSON"), std::string::npos) << error;
    EXPECT_FALSE(load_bench_file("[1, 2]", f, error));
    EXPECT_FALSE(load_bench_file_path("/nonexistent/path.json", f, error));
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

// -------------------------------------------------------------- comparison

BenchEntry entry(const std::string& workload, double seconds,
                 std::vector<double> repeats = {}, std::uint64_t trials = 1000) {
    BenchEntry e;
    e.workload = workload;
    e.engine = "scalar";
    e.threads = 1;
    e.trials = trials;
    e.seconds = seconds;
    e.seconds_repeats = std::move(repeats);
    e.trials_per_sec = seconds > 0 ? static_cast<double>(trials) / seconds : 0;
    return e;
}

BenchFile file_with(std::vector<BenchEntry> entries) {
    BenchFile f;
    f.schema_version = 2;
    f.bench = "perf_x";
    f.seed = 1;
    f.cpu_model = "Fake CPU";
    f.compiler = "GNU 12.2.0";
    f.compiler_flags = "-O2";
    f.build_type = "RelWithDebInfo";
    f.hardware_threads = 8;
    f.entries = std::move(entries);
    return f;
}

TEST(BenchCompare, SelfCompareIsCleanWithinNoise) {
    const BenchFile f = file_with({entry("w1", 2.0), entry("w2", 1.0)});
    const CompareReport report = compare_bench_files(f, f);
    EXPECT_FALSE(report.incompatible);
    EXPECT_TRUE(report.warnings.empty());
    EXPECT_FALSE(report.has_regression());
    ASSERT_EQ(report.rows.size(), 2u);
    for (const Comparison& c : report.rows) {
        EXPECT_EQ(c.verdict, Verdict::kWithinNoise);
        EXPECT_DOUBLE_EQ(c.ratio, 1.0);
        EXPECT_DOUBLE_EQ(c.threshold, 0.05);  // rel_tol floor, no spread
    }
}

TEST(BenchCompare, ImprovementAndRegressionVerdicts) {
    const BenchFile base = file_with({entry("fast", 2.0), entry("slow", 2.0)});
    // "fast" got 2x faster, "slow" got 25% slower (rate 500 -> 400).
    const BenchFile cur = file_with({entry("fast", 1.0), entry("slow", 2.5)});
    const CompareReport report = compare_bench_files(base, cur);
    ASSERT_EQ(report.rows.size(), 2u);
    EXPECT_EQ(report.rows[0].verdict, Verdict::kImproved);
    EXPECT_DOUBLE_EQ(report.rows[0].ratio, 2.0);
    EXPECT_EQ(report.rows[1].verdict, Verdict::kRegressed);
    EXPECT_DOUBLE_EQ(report.rows[1].ratio, 0.8);
    EXPECT_TRUE(report.has_regression());
}

// The noise model: a file whose repeats spread 20% widens the band to
// rel_tol + 0.20, so the same 15% drop that would regress on a quiet
// machine is within noise on the noisy one.
TEST(BenchCompare, RepeatSpreadWidensTheTolerance) {
    const BenchFile quiet_base = file_with({entry("w", 2.0, {2.0, 2.0})});
    const BenchFile noisy_base = file_with({entry("w", 2.0, {2.0, 2.4})});
    const BenchFile cur = file_with({entry("w", 2.35)});  // ~14.9% rate drop

    const CompareReport on_quiet = compare_bench_files(quiet_base, cur);
    ASSERT_EQ(on_quiet.rows.size(), 1u);
    EXPECT_DOUBLE_EQ(on_quiet.rows[0].threshold, 0.05);
    EXPECT_EQ(on_quiet.rows[0].verdict, Verdict::kRegressed);

    const CompareReport on_noisy = compare_bench_files(noisy_base, cur);
    ASSERT_EQ(on_noisy.rows.size(), 1u);
    EXPECT_DOUBLE_EQ(on_noisy.rows[0].noise, 0.4 / 2.0);
    EXPECT_DOUBLE_EQ(on_noisy.rows[0].threshold, 0.25);
    EXPECT_EQ(on_noisy.rows[0].verdict, Verdict::kWithinNoise);
}

TEST(BenchCompare, CurrentSideSpreadAlsoWidens) {
    const BenchFile base = file_with({entry("w", 2.0)});
    const BenchFile cur = file_with({entry("w", 2.3, {2.3, 2.76})});
    const CompareReport report = compare_bench_files(base, cur);
    ASSERT_EQ(report.rows.size(), 1u);
    EXPECT_DOUBLE_EQ(report.rows[0].noise, 0.2);
    EXPECT_EQ(report.rows[0].verdict, Verdict::kWithinNoise);
}

// A workload that vanished from the current run is a REGRESSION, not a
// silent pass; a brand-new workload is informational only.
TEST(BenchCompare, MissingAndExtraEntries) {
    const BenchFile base = file_with({entry("kept", 2.0), entry("dropped", 2.0)});
    const BenchFile cur = file_with({entry("kept", 2.0), entry("added", 2.0)});
    const CompareReport report = compare_bench_files(base, cur);
    ASSERT_EQ(report.rows.size(), 3u);
    EXPECT_EQ(report.rows[0].verdict, Verdict::kWithinNoise);
    EXPECT_EQ(report.rows[1].verdict, Verdict::kMissingInCurrent);
    EXPECT_EQ(report.rows[2].verdict, Verdict::kOnlyInCurrent);
    EXPECT_TRUE(report.has_regression());  // the missing one gates
}

TEST(BenchCompare, DifferentBenchOrSeedIsIncompatible) {
    BenchFile base = file_with({entry("w", 2.0)});
    BenchFile cur = base;
    cur.bench = "perf_y";
    EXPECT_TRUE(compare_bench_files(base, cur).incompatible);
    cur = base;
    cur.seed = 99;
    const CompareReport report = compare_bench_files(base, cur);
    EXPECT_TRUE(report.incompatible);
    EXPECT_NE(report.incompatible_reason.find("seed"), std::string::npos);
}

TEST(BenchCompare, DifferentMetricIsIncompatible) {
    BenchFile base = file_with({entry("w", 2.0)});
    BenchFile cur = base;
    base.metric = "trials_per_sec";
    cur.metric = "q_min";
    const CompareReport report = compare_bench_files(base, cur);
    EXPECT_TRUE(report.incompatible);
    EXPECT_NE(report.incompatible_reason.find("metric"), std::string::npos);
}

TEST(BenchCompare, ChangedTrialCountIsIncompatible) {
    const BenchFile base = file_with({entry("w", 2.0, {}, 1000)});
    const BenchFile cur = file_with({entry("w", 2.0, {}, 2000)});
    const CompareReport report = compare_bench_files(base, cur);
    EXPECT_TRUE(report.incompatible);
    EXPECT_NE(report.incompatible_reason.find("trials"), std::string::npos);
}

TEST(BenchCompare, HostMismatchWarnsButCompares) {
    const BenchFile base = file_with({entry("w", 2.0)});
    BenchFile cur = base;
    cur.cpu_model = "Other CPU";
    cur.compiler = "Clang 18.1.3";
    const CompareReport report = compare_bench_files(base, cur);
    EXPECT_FALSE(report.incompatible);
    ASSERT_EQ(report.warnings.size(), 2u);
    EXPECT_NE(report.warnings[0].find("cpu_model"), std::string::npos);
    EXPECT_NE(report.warnings[1].find("compiler"), std::string::npos);
    ASSERT_EQ(report.rows.size(), 1u);  // still compared

    CompareOptions strict;
    strict.strict_host = true;
    const CompareReport gated = compare_bench_files(base, cur, strict);
    EXPECT_TRUE(gated.incompatible);
    EXPECT_NE(gated.incompatible_reason.find("strict-host"), std::string::npos);
}

TEST(BenchCompare, CustomRelTol) {
    const BenchFile base = file_with({entry("w", 2.0)});
    const BenchFile cur = file_with({entry("w", 2.2)});  // ~9.1% rate drop
    CompareOptions loose;
    loose.rel_tol = 0.10;
    EXPECT_FALSE(compare_bench_files(base, cur, loose).has_regression());
    CompareOptions tight;
    tight.rel_tol = 0.02;
    EXPECT_TRUE(compare_bench_files(base, cur, tight).has_regression());
}

TEST(BenchCompare, MarkdownRenderHasTableAndVerdicts) {
    BenchFile base = file_with({entry("w1", 2.0), entry("gone", 2.0)});
    base.git_revision = "base-rev";
    BenchFile cur = file_with({entry("w1", 4.0)});
    cur.git_revision = "cur-rev";
    const CompareReport report = compare_bench_files(base, cur);
    const std::string md = report.render_markdown(base, cur);
    EXPECT_NE(md.find("## bench_compare: perf_x"), std::string::npos) << md;
    EXPECT_NE(md.find("`base-rev`"), std::string::npos);
    EXPECT_NE(md.find("`cur-rev`"), std::string::npos);
    EXPECT_NE(md.find("| entry | baseline trials/s |"), std::string::npos);
    EXPECT_NE(md.find("| w1/scalar@1t |"), std::string::npos);
    EXPECT_NE(md.find("REGRESSED"), std::string::npos);     // slowdown row
    EXPECT_NE(md.find("MISSING in current"), std::string::npos);
}

TEST(BenchCompare, MarkdownRenderShowsIncompatibility) {
    BenchFile base = file_with({entry("w", 2.0)});
    BenchFile cur = base;
    cur.seed = 2;
    const CompareReport report = compare_bench_files(base, cur);
    const std::string md = report.render_markdown(base, cur);
    EXPECT_NE(md.find("**INCOMPATIBLE**"), std::string::npos) << md;
    EXPECT_EQ(md.find("| entry |"), std::string::npos);  // no table
}

}  // namespace
}  // namespace mcauth::obs

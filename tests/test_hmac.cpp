#include <gtest/gtest.h>

#include "crypto/hmac.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"

namespace mcauth {
namespace {

// RFC 4231 test vectors for HMAC-SHA256.
struct HmacVector {
    const char* key_hex;
    const char* data_hex;
    const char* mac_hex;
};

class HmacSha256KnownAnswer : public ::testing::TestWithParam<HmacVector> {};

TEST_P(HmacSha256KnownAnswer, MatchesRfc4231) {
    const auto& v = GetParam();
    const auto key = from_hex(v.key_hex);
    const auto data = from_hex(v.data_hex);
    EXPECT_EQ(to_hex(hmac_sha256(key, data)), v.mac_hex);
}

INSTANTIATE_TEST_SUITE_P(
    Rfc4231, HmacSha256KnownAnswer,
    ::testing::Values(
        // Case 1
        HmacVector{"0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b", "4869205468657265",
                   "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"},
        // Case 2 ("Jefe", "what do ya want for nothing?")
        HmacVector{"4a656665", "7768617420646f2079612077616e7420666f72206e6f7468696e673f",
                   "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"},
        // Case 3 (20x 0xaa key, 50x 0xdd data)
        HmacVector{"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
                   "dddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddd"
                   "dddddddddddddddddddddddddddddddddddd",
                   "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"},
        // Case 6 (131-byte key, hashed down)
        HmacVector{"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
                   "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
                   "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
                   "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
                   "aaaaaa",
                   "54657374205573696e67204c6172676572205468616e20426c6f636b2d53697a"
                   "65204b6579202d2048617368204b6579204669727374",
                   "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"}));

TEST(HmacSha256, StreamingMatchesOneShot) {
    Rng rng(1);
    const auto key = rng.bytes(32);
    const auto data = rng.bytes(200);
    HmacSha256 mac(key);
    mac.update(std::span<const std::uint8_t>(data.data(), 100));
    mac.update(std::span<const std::uint8_t>(data.data() + 100, 100));
    EXPECT_EQ(mac.finish(), hmac_sha256(key, data));
}

TEST(HmacSha256, KeySensitivity) {
    Rng rng(2);
    auto key = rng.bytes(32);
    const auto data = rng.bytes(64);
    const auto mac1 = hmac_sha256(key, data);
    key[0] ^= 1;
    const auto mac2 = hmac_sha256(key, data);
    EXPECT_NE(mac1, mac2);
}

TEST(HmacSha256, MessageSensitivity) {
    Rng rng(3);
    const auto key = rng.bytes(32);
    auto data = rng.bytes(64);
    const auto mac1 = hmac_sha256(key, data);
    data[63] ^= 0x80;
    const auto mac2 = hmac_sha256(key, data);
    EXPECT_NE(mac1, mac2);
}

TEST(HmacSha256, EmptyMessageIsDefined) {
    const auto key = from_hex("0b0b0b0b");
    const auto mac = hmac_sha256(key, {});
    EXPECT_EQ(mac.size(), 32u);
}

// RFC 2202 test vectors for HMAC-SHA1.
TEST(HmacSha1, Rfc2202Case1) {
    const auto key = from_hex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
    const auto data = from_hex("4869205468657265");  // "Hi There"
    EXPECT_EQ(to_hex(hmac_sha1(key, data)), "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1, Rfc2202Case2) {
    const auto key = from_hex("4a656665");  // "Jefe"
    const auto data = from_hex("7768617420646f2079612077616e7420666f72206e6f7468696e673f");
    EXPECT_EQ(to_hex(hmac_sha1(key, data)), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

}  // namespace
}  // namespace mcauth

#include <gtest/gtest.h>

#include "core/authprob.hpp"
#include "core/serialize.hpp"
#include "core/topologies.hpp"
#include "util/rng.hpp"

namespace mcauth {
namespace {

bool graphs_equal(const DependenceGraph& a, const DependenceGraph& b) {
    if (a.packet_count() != b.packet_count()) return false;
    if (a.scheme_name() != b.scheme_name()) return false;
    for (VertexId v = 0; v < a.packet_count(); ++v)
        if (a.send_pos(v) != b.send_pos(v)) return false;
    if (a.graph().edge_count() != b.graph().edge_count()) return false;
    for (const Edge& e : a.graph().edges())
        if (!b.graph().has_edge(e.from, e.to)) return false;
    return true;
}

TEST(Serialize, RoundTripsEveryBuiltinTopology) {
    Rng rng(1);
    const DependenceGraph graphs[] = {
        make_rohatgi(12),          make_auth_tree(9),
        make_emss(20, 2, 1),       make_emss(17, 3, 4),
        make_augmented_chain(21, 3, 3), make_random_scheme(15, 0.2, rng)};
    for (const auto& dg : graphs) {
        const auto text = to_text(dg);
        const auto parsed = dependence_graph_from_text(text);
        EXPECT_TRUE(graphs_equal(dg, parsed)) << dg.scheme_name();
    }
}

TEST(Serialize, CommentsAndBlankLinesAccepted) {
    const char* text = R"(# designed scheme, 2026-07-04
mcauth-dependence-graph v1
name offsets {1,2}
packets 3

# reversed indexing
sendpos 2 1 0
edge 0 1
edge 0 2
edge 1 2
end
)";
    const auto dg = dependence_graph_from_text(text);
    EXPECT_EQ(dg.packet_count(), 3u);
    EXPECT_EQ(dg.scheme_name(), "offsets {1,2}");
    EXPECT_TRUE(dg.graph().has_edge(1, 2));
    EXPECT_TRUE(dg.is_valid());
}

TEST(Serialize, RejectsMissingHeader) {
    EXPECT_THROW(dependence_graph_from_text("name x\npackets 2\n"), std::runtime_error);
}

TEST(Serialize, RejectsBadSendposArity) {
    const char* too_few =
        "mcauth-dependence-graph v1\nname x\npackets 3\nsendpos 0 1\nedge 0 1\nend\n";
    EXPECT_THROW(dependence_graph_from_text(too_few), std::runtime_error);
    const char* too_many =
        "mcauth-dependence-graph v1\nname x\npackets 2\nsendpos 0 1 2\nend\n";
    EXPECT_THROW(dependence_graph_from_text(too_many), std::runtime_error);
}

TEST(Serialize, RejectsNonPermutationSendpos) {
    const char* dup =
        "mcauth-dependence-graph v1\nname x\npackets 2\nsendpos 0 0\nedge 0 1\nend\n";
    EXPECT_THROW(dependence_graph_from_text(dup), std::runtime_error);
}

TEST(Serialize, RejectsEdgeOutOfRangeAndSelfLoop) {
    const char* out_of_range =
        "mcauth-dependence-graph v1\nname x\npackets 2\nsendpos 0 1\nedge 0 5\nend\n";
    EXPECT_THROW(dependence_graph_from_text(out_of_range), std::runtime_error);
    const char* self_loop =
        "mcauth-dependence-graph v1\nname x\npackets 2\nsendpos 0 1\nedge 1 1\nend\n";
    EXPECT_THROW(dependence_graph_from_text(self_loop), std::runtime_error);
}

TEST(Serialize, RejectsCyclicGraph) {
    const char* cyclic =
        "mcauth-dependence-graph v1\nname x\npackets 3\nsendpos 0 1 2\n"
        "edge 0 1\nedge 1 2\nedge 2 1\nend\n";
    EXPECT_THROW(dependence_graph_from_text(cyclic), std::runtime_error);
}

TEST(Serialize, RejectsUnreachableVertices) {
    const char* stranded =
        "mcauth-dependence-graph v1\nname x\npackets 3\nsendpos 0 1 2\nedge 0 1\nend\n";
    EXPECT_THROW(dependence_graph_from_text(stranded), std::runtime_error);
}

TEST(Serialize, RejectsMissingEnd) {
    const char* unterminated =
        "mcauth-dependence-graph v1\nname x\npackets 2\nsendpos 0 1\nedge 0 1\n";
    EXPECT_THROW(dependence_graph_from_text(unterminated), std::runtime_error);
}

TEST(Serialize, ParsedGraphAnalyzesIdentically) {
    // End-to-end: serialize a designed scheme, parse it back, and get the
    // same q_min — the deployment path for §5 designs.
    const auto original = make_emss(30, 2, 3);
    const auto parsed = dependence_graph_from_text(to_text(original));
    const double q1 = recurrence_auth_prob(original, 0.2).q_min;
    const double q2 = recurrence_auth_prob(parsed, 0.2).q_min;
    EXPECT_DOUBLE_EQ(q1, q2);
}

}  // namespace
}  // namespace mcauth

#include <gtest/gtest.h>

#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"

namespace mcauth {
namespace {

// ---------------------------------------------------------- SHA-256 (FIPS)

struct ShaVector {
    const char* message;
    const char* digest;
};

class Sha256KnownAnswer : public ::testing::TestWithParam<ShaVector> {};

TEST_P(Sha256KnownAnswer, MatchesFips) {
    const auto& [message, digest] = GetParam();
    EXPECT_EQ(to_hex(Sha256::hash(message)), digest);
}

INSTANTIATE_TEST_SUITE_P(
    Fips180, Sha256KnownAnswer,
    ::testing::Values(
        ShaVector{"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
        ShaVector{"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
        ShaVector{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                  "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
        ShaVector{"The quick brown fox jumps over the lazy dog",
                  "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"}));

TEST(Sha256, MillionAs) {
    Sha256 h;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) h.update(chunk);
    EXPECT_EQ(to_hex(h.finish()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShotAtAllSplitPoints) {
    Rng rng(1);
    const auto data = rng.bytes(300);
    const auto expected = Sha256::hash(data);
    for (std::size_t split : {0u, 1u, 63u, 64u, 65u, 128u, 299u, 300u}) {
        Sha256 h;
        h.update(std::span<const std::uint8_t>(data.data(), split));
        h.update(std::span<const std::uint8_t>(data.data() + split, data.size() - split));
        EXPECT_EQ(h.finish(), expected) << "split=" << split;
    }
}

TEST(Sha256, Hash2EqualsConcatenation) {
    Rng rng(2);
    const auto a = rng.bytes(100);
    const auto b = rng.bytes(50);
    auto concat = a;
    concat.insert(concat.end(), b.begin(), b.end());
    EXPECT_EQ(Sha256::hash2(a, b), Sha256::hash(concat));
}

TEST(Sha256, ResetAllowsReuse) {
    Sha256 h;
    h.update("garbage");
    (void)h.finish();
    h.reset();
    h.update("abc");
    EXPECT_EQ(to_hex(h.finish()),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, AvalancheOnSingleBitFlip) {
    Rng rng(3);
    auto data = rng.bytes(64);
    const auto d1 = Sha256::hash(data);
    data[10] ^= 0x01;
    const auto d2 = Sha256::hash(data);
    int differing_bits = 0;
    for (std::size_t i = 0; i < d1.size(); ++i)
        differing_bits += __builtin_popcount(static_cast<unsigned>(d1[i] ^ d2[i]));
    EXPECT_GT(differing_bits, 80);  // ~128 expected
    EXPECT_LT(differing_bits, 176);
}

// ------------------------------------------------------------------ SHA-1

class Sha1KnownAnswer : public ::testing::TestWithParam<ShaVector> {};

TEST_P(Sha1KnownAnswer, MatchesFips) {
    const auto& [message, digest] = GetParam();
    EXPECT_EQ(to_hex(Sha1::hash(message)), digest);
}

INSTANTIATE_TEST_SUITE_P(
    Fips180, Sha1KnownAnswer,
    ::testing::Values(
        ShaVector{"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
        ShaVector{"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
        ShaVector{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                  "84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
        ShaVector{"The quick brown fox jumps over the lazy dog",
                  "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"}));

TEST(Sha1, StreamingMatchesOneShot) {
    Rng rng(4);
    const auto data = rng.bytes(200);
    Sha1 h;
    h.update(std::span<const std::uint8_t>(data.data(), 77));
    h.update(std::span<const std::uint8_t>(data.data() + 77, data.size() - 77));
    EXPECT_EQ(h.finish(), Sha1::hash(data));
}

// ------------------------------------------------------------ helpers

TEST(TruncateDigest, PrefixAndBounds) {
    const Digest256 d = Sha256::hash("abc");
    const auto t = truncate_digest(d, 16);
    EXPECT_EQ(t.size(), 16u);
    EXPECT_TRUE(std::equal(t.begin(), t.end(), d.begin()));
    EXPECT_THROW(truncate_digest(d, 0), std::invalid_argument);
    EXPECT_THROW(truncate_digest(d, 33), std::invalid_argument);
}

TEST(CtEqual, Semantics) {
    const std::vector<std::uint8_t> a{1, 2, 3};
    const std::vector<std::uint8_t> b{1, 2, 3};
    const std::vector<std::uint8_t> c{1, 2, 4};
    const std::vector<std::uint8_t> d{1, 2};
    EXPECT_TRUE(ct_equal(a, b));
    EXPECT_FALSE(ct_equal(a, c));
    EXPECT_FALSE(ct_equal(a, d));
    EXPECT_TRUE(ct_equal(std::span<const std::uint8_t>{}, std::span<const std::uint8_t>{}));
}

}  // namespace
}  // namespace mcauth

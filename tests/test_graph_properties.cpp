// Randomized property tests pitting the production graph algorithms against
// brute-force oracles on small random DAGs. These guard the two algorithms
// whose hand-rolled implementations are easiest to get subtly wrong —
// iterative dominators and max-flow disjoint paths — plus the bottleneck
// relaxation used for Eq. 4.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/delay_analysis.hpp"
#include "core/dependence_graph.hpp"
#include "graph/algorithms.hpp"
#include "util/rng.hpp"

namespace mcauth {
namespace {

/// Random DAG on n vertices with a guaranteed 0 -> everything spine.
Digraph random_rooted_dag(Rng& rng, std::size_t n, double density) {
    Digraph g(n);
    for (VertexId v = 1; v < n; ++v) {
        // Spine edge from a random earlier vertex keeps all reachable.
        const VertexId anchor = static_cast<VertexId>(rng.uniform_below(v));
        g.add_edge(anchor, v);
        for (VertexId u = 0; u < v; ++u)
            if (rng.bernoulli(density)) g.add_edge(u, v);
    }
    return g;
}

/// Oracle: u dominates v iff deleting u severs every 0 -> v path.
bool dominates_brute(const Digraph& g, VertexId u, VertexId v) {
    if (u == v) return false;
    std::vector<bool> alive(g.vertex_count(), true);
    alive[u] = false;
    const auto reach = reachable_within(g, 0, alive);
    return !reach[v];
}

TEST(GraphProperties, DominatorsMatchBruteForce) {
    Rng rng(101);
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t n = 6 + rng.uniform_below(6);
        const Digraph g = random_rooted_dag(rng, n, 0.25);
        const auto idom = immediate_dominators(g, 0);
        for (VertexId v = 1; v < n; ++v) {
            const auto doms = interior_dominators(idom, 0, v);
            for (VertexId u = 1; u < n; ++u) {
                if (u == v) continue;
                const bool in_chain = std::find(doms.begin(), doms.end(), u) != doms.end();
                EXPECT_EQ(in_chain, dominates_brute(g, u, v))
                    << "trial " << trial << " u=" << u << " v=" << v;
            }
        }
    }
}

/// Oracle for Menger: the max number of interior-disjoint 0 -> v paths
/// equals the minimum interior vertex cut (checked by subset enumeration).
std::size_t min_vertex_cut_brute(const Digraph& g, VertexId v) {
    if (g.has_edge(0, v)) {
        // A direct edge cannot be cut by interior removals; flow >= 1 and
        // each extra disjoint path needs interior vertices. Handle by
        // counting with the direct edge excluded plus one.
        // (For the oracle we just fall back to checking cuts of the graph
        // without that edge, since vertex cuts cannot break it.)
        Digraph without(g.vertex_count());
        for (const Edge& e : g.edges())
            if (!(e.from == 0 && e.to == v)) without.add_edge(e.from, e.to);
        return 1 + min_vertex_cut_brute(without, v);
    }
    std::vector<VertexId> interior;
    for (VertexId u = 1; u < g.vertex_count(); ++u)
        if (u != v) interior.push_back(u);
    // Is v reachable at all?
    if (!reachable_from(g, 0)[v]) return 0;
    for (std::size_t k = 1; k <= interior.size(); ++k) {
        // Try all subsets of size k.
        std::vector<bool> pick(interior.size(), false);
        std::fill(pick.end() - static_cast<std::ptrdiff_t>(k), pick.end(), true);
        do {
            std::vector<bool> alive(g.vertex_count(), true);
            for (std::size_t i = 0; i < interior.size(); ++i)
                if (pick[i]) alive[interior[i]] = false;
            if (!reachable_within(g, 0, alive)[v]) return k;
        } while (std::next_permutation(pick.begin(), pick.end()));
    }
    return interior.size() + 1;  // uncuttable by interior removals
}

TEST(GraphProperties, DisjointPathsMatchMinCut) {
    Rng rng(102);
    for (int trial = 0; trial < 25; ++trial) {
        const std::size_t n = 5 + rng.uniform_below(4);  // keep the oracle cheap
        const Digraph g = random_rooted_dag(rng, n, 0.3);
        for (VertexId v = 1; v < n; ++v) {
            EXPECT_EQ(vertex_disjoint_paths(g, 0, v), min_vertex_cut_brute(g, v))
                << "trial " << trial << " v=" << v;
        }
    }
}

/// Oracle for the Eq. 4 bottleneck: enumerate all paths, take the min of
/// per-path maxima.
TEST(GraphProperties, CompletionTimesMatchPathEnumeration) {
    Rng rng(103);
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t n = 6 + rng.uniform_below(4);
        std::vector<std::uint32_t> pos(n);
        for (std::size_t i = 0; i < n; ++i) pos[i] = static_cast<std::uint32_t>(i);
        // Random transmission order spices up the arrival vector.
        for (std::size_t i = n; i-- > 1;)
            std::swap(pos[i], pos[rng.uniform_below(i + 1)]);
        DependenceGraph dg(n, pos, "random");
        {
            Rng edge_rng(rng.next_u64());
            const Digraph g = random_rooted_dag(edge_rng, n, 0.3);
            for (const Edge& e : g.edges()) dg.add_dependence(e.from, e.to);
        }
        std::vector<double> arrival(n);
        for (auto& a : arrival) a = rng.uniform(0.0, 1.0);

        const auto fast = completion_times(dg, arrival);
        for (VertexId v = 1; v < n; ++v) {
            const auto paths = enumerate_paths(dg.graph(), 0, v, 100000);
            double oracle = std::numeric_limits<double>::infinity();
            for (const auto& path : paths) {
                double worst = 0.0;
                for (VertexId u : path) worst = std::max(worst, arrival[u]);
                oracle = std::min(oracle, worst);
            }
            if (paths.empty()) {
                EXPECT_FALSE(std::isfinite(fast[v]));
            } else {
                EXPECT_NEAR(fast[v], oracle, 1e-12) << "trial " << trial << " v=" << v;
            }
        }
    }
}

}  // namespace
}  // namespace mcauth

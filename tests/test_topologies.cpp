#include <gtest/gtest.h>

#include "core/topologies.hpp"

namespace mcauth {
namespace {

// ----------------------------------------------------------------- Rohatgi

TEST(Rohatgi, StructureIsSimpleChain) {
    const auto dg = make_rohatgi(6);
    EXPECT_TRUE(dg.is_valid());
    EXPECT_EQ(dg.graph().edge_count(), 5u);
    for (VertexId i = 1; i < 6; ++i) {
        EXPECT_TRUE(dg.graph().has_edge(i - 1, i));
        EXPECT_EQ(dg.graph().in_degree(i), 1u);
    }
    // Signature travels FIRST: vertex 0 at send position 0.
    EXPECT_EQ(dg.send_pos(DependenceGraph::root()), 0u);
}

TEST(Rohatgi, AllLabelsMinusOne) {
    const auto dg = make_rohatgi(5);
    for (const Edge& e : dg.graph().edges()) EXPECT_EQ(dg.label(e.from, e.to), -1);
}

TEST(Rohatgi, RejectsTinyBlocks) {
    EXPECT_THROW(make_rohatgi(1), std::invalid_argument);
}

// --------------------------------------------------------------- auth tree

TEST(AuthTree, StarFromRoot) {
    const auto dg = make_auth_tree(8);
    EXPECT_TRUE(dg.is_valid());
    EXPECT_EQ(dg.graph().edge_count(), 7u);
    EXPECT_EQ(dg.graph().out_degree(DependenceGraph::root()), 7u);
    for (VertexId i = 1; i < 8; ++i) EXPECT_EQ(dg.graph().in_degree(i), 1u);
}

TEST(AuthTree, EveryVertexSurvivesAnyOtherLoss) {
    const auto dg = make_auth_tree(6);
    std::vector<bool> received(6, false);
    received[4] = true;  // only packet 4 arrives
    const auto v = dg.verifiable_given(received);
    EXPECT_TRUE(v[4]);
}

// -------------------------------------------------------------------- EMSS

TEST(Emss, E21MatchesPaperStructure) {
    const auto dg = make_emss(8, 2, 1);
    EXPECT_TRUE(dg.is_valid());
    // Signature travels LAST: vertex 0 at send position n-1.
    EXPECT_EQ(dg.send_pos(DependenceGraph::root()), 7u);
    // Vertex i linked from i-1 and i-2 (clamped to root).
    for (VertexId i = 3; i < 8; ++i) {
        EXPECT_TRUE(dg.graph().has_edge(i - 1, i));
        EXPECT_TRUE(dg.graph().has_edge(i - 2, i));
        EXPECT_EQ(dg.graph().in_degree(i), 2u);
    }
    // Root carries the first two vertices directly (i.c. of Eq. 8).
    EXPECT_TRUE(dg.graph().has_edge(0, 1));
    EXPECT_TRUE(dg.graph().has_edge(0, 2));
}

TEST(Emss, OffsetsWithSeparation) {
    const auto dg = make_emss(20, 2, 5);  // offsets {1, 6}
    for (VertexId i = 7; i < 20; ++i) {
        EXPECT_TRUE(dg.graph().has_edge(i - 1, i));
        EXPECT_TRUE(dg.graph().has_edge(i - 6, i));
    }
}

TEST(Emss, EdgeCountFormula) {
    // Each vertex has m incoming edges except root-clamped duplicates merge.
    const std::size_t n = 100, m = 3, d = 2;
    const auto dg = make_emss(n, m, d);
    // Vertices far from root contribute m edges each; near-root vertices
    // de-duplicate clamped edges. Just check the asymptotic band.
    EXPECT_GE(dg.graph().edge_count(), (n - 1) * m - 3 * m * d);
    EXPECT_LE(dg.graph().edge_count(), (n - 1) * m);
}

TEST(Emss, NameEncodesParameters) {
    EXPECT_EQ(make_emss(8, 2, 1).scheme_name(), "emss(m=2,d=1)");
}

class EmssParams : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(EmssParams, AlwaysValidAndAcyclic) {
    const auto [m, d] = GetParam();
    const auto dg = make_emss(64, m, d);
    EXPECT_TRUE(dg.is_valid());
    EXPECT_TRUE(is_acyclic(dg.graph()));
}

INSTANTIATE_TEST_SUITE_P(Sweep, EmssParams,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 6),
                                            ::testing::Values(1, 2, 4, 8, 16)));

// ----------------------------------------------------------- offset scheme

TEST(OffsetScheme, RohatgiIsOffsetOne) {
    const auto chain = make_offset_scheme(10, {1});
    EXPECT_EQ(chain.graph().edge_count(), 9u);
    for (VertexId i = 1; i < 10; ++i) EXPECT_TRUE(chain.graph().has_edge(i - 1, i));
}

TEST(OffsetScheme, RejectsZeroOffset) {
    EXPECT_THROW(make_offset_scheme(10, {0}), std::invalid_argument);
    EXPECT_THROW(make_offset_scheme(10, {}), std::invalid_argument);
}

// ---------------------------------------------------------- augmented chain

TEST(AugmentedChain, MatchesEq10Structure) {
    // C_{a=2, b=2}: groups of 3 — chain vertex at i % 3 == 0.
    const std::size_t n = 15, a = 2, b = 2, g = b + 1;
    const auto dg = make_augmented_chain(n, a, b);
    EXPECT_TRUE(dg.is_valid());
    for (std::size_t i = 1; i < n; ++i) {
        const std::size_t x = i / g, y = i % g;
        if (y == 0) {
            // Chain vertex: carried by previous chain vertex and a-th previous.
            EXPECT_TRUE(dg.graph().has_edge(static_cast<VertexId>((x - 1) * g),
                                            static_cast<VertexId>(i)))
                << i;
            const std::size_t far = x >= a ? (x - a) * g : 0;
            EXPECT_TRUE(dg.graph().has_edge(static_cast<VertexId>(far),
                                            static_cast<VertexId>(i)))
                << i;
        } else {
            // Inserted vertex: carried by its group's chain vertex...
            EXPECT_TRUE(dg.graph().has_edge(static_cast<VertexId>(x * g),
                                            static_cast<VertexId>(i)))
                << i;
            // ...and its zig-zag neighbour (root clamp when the block ends
            // mid-group).
            const std::size_t neighbour = (y < b) ? i + 1 : (x + 1) * g;
            EXPECT_TRUE(dg.graph().has_edge(
                static_cast<VertexId>(neighbour < n ? neighbour : 0),
                static_cast<VertexId>(i)))
                << i;
        }
    }
}

TEST(AugmentedChain, InsertedVerticesHaveTwoIncomingEdges) {
    // Including the truncated tail group: the root clamp keeps the
    // "linked to two other packets" invariant everywhere.
    const auto dg = make_augmented_chain(25, 3, 3);
    const std::size_t g = 4;
    for (VertexId i = 1; i < 25; ++i) {
        if (i % g != 0) {
            EXPECT_EQ(dg.graph().in_degree(i), 2u) << i;
        }
    }
}

TEST(AugmentedChain, ParameterValidation) {
    EXPECT_THROW(make_augmented_chain(10, 1, 2), std::invalid_argument);  // a >= 2
    EXPECT_THROW(make_augmented_chain(10, 2, 0), std::invalid_argument);  // b >= 1
}

class AcParams
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(AcParams, AlwaysValidAndAcyclic) {
    const auto [n, a, b] = GetParam();
    const auto dg = make_augmented_chain(n, a, b);
    EXPECT_TRUE(dg.is_valid());
    EXPECT_TRUE(is_acyclic(dg.graph()));
}

INSTANTIATE_TEST_SUITE_P(Sweep, AcParams,
                         ::testing::Combine(::testing::Values(10, 17, 32, 100),
                                            ::testing::Values(2, 3, 5),
                                            ::testing::Values(1, 2, 3, 7)));

// ------------------------------------------------------------ random scheme

TEST(RandomScheme, AlwaysValidThanksToSpine) {
    Rng rng(77);
    for (double p_edge : {0.0, 0.05, 0.3}) {
        const auto dg = make_random_scheme(40, p_edge, rng);
        EXPECT_TRUE(dg.is_valid()) << p_edge;
        EXPECT_GE(dg.graph().edge_count(), 39u);  // at least the spine
    }
}

TEST(RandomScheme, ExtraEdgeCapRespected) {
    Rng rng(78);
    const auto dg = make_random_scheme(50, 1.0, rng, 3);
    for (VertexId v = 1; v < 50; ++v)
        EXPECT_LE(dg.graph().in_degree(v), 4u);  // spine + 3 extras
}

TEST(RandomScheme, ZeroProbabilityIsPlainChain) {
    Rng rng(79);
    const auto dg = make_random_scheme(20, 0.0, rng);
    EXPECT_EQ(dg.graph().edge_count(), 19u);
}

}  // namespace
}  // namespace mcauth

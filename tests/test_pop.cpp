// DESIGN.md §13: the receiver-population engine — sketch algebra, tree
// invariants, and the bit-identity of the sharded bit-sliced engine against
// the naive per-receiver oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "adapt/feedback.hpp"
#include "core/topologies.hpp"
#include "exec/thread_pool.hpp"
#include "obs/expect.hpp"
#include "pop/population.hpp"
#include "pop/sketch.hpp"
#include "pop/tree.hpp"

namespace mcauth::pop {
namespace {

// ---------------------------------------------------------------- sketch

std::vector<double> adversarial_values(std::size_t count, double step) {
    // Values engineered to stress the grid: exact grid points, both sides of
    // rounding boundaries, dense duplicates, and the extremes.
    std::vector<double> vals;
    Rng rng(99);
    for (std::size_t i = 0; i < count; ++i) {
        switch (i % 5) {
            case 0: vals.push_back(std::floor(rng.uniform() / step) * step); break;
            case 1: vals.push_back(rng.uniform());  break;
            case 2: vals.push_back(0.5 + step * 0.499); break;  // duplicate cluster
            case 3: vals.push_back(0.5 - step * 0.501); break;
            default: vals.push_back(i % 10 == 9 ? 1.0 : 0.0); break;
        }
    }
    return vals;
}

TEST(QuantileSketch, MergeIsAssociativeAndCommutativeUnderShardReordering) {
    const auto vals = adversarial_values(997, QuantileSketch().step());
    // Partition into 7 uneven "shards".
    std::vector<QuantileSketch> shards(7);
    for (std::size_t i = 0; i < vals.size(); ++i)
        shards[(i * i) % shards.size()].insert(vals[i]);

    QuantileSketch forward;
    for (const auto& s : shards) forward.merge(s);

    QuantileSketch backward;
    for (auto it = shards.rbegin(); it != shards.rend(); ++it) backward.merge(*it);

    // ((0+1)+(2+3)) + ((4+5)+6): a different association tree.
    QuantileSketch left, right;
    left.merge(shards[0]); left.merge(shards[1]);
    QuantileSketch mid;
    mid.merge(shards[2]); mid.merge(shards[3]);
    left.merge(mid);
    right.merge(shards[4]); right.merge(shards[5]);
    right.merge(shards[6]);
    left.merge(right);

    // And the unsharded reference.
    QuantileSketch direct;
    for (double v : vals) direct.insert(v);

    EXPECT_TRUE(forward.identical(backward));
    EXPECT_TRUE(forward.identical(left));
    EXPECT_TRUE(forward.identical(direct));
    EXPECT_EQ(forward.count(), vals.size());
}

TEST(QuantileSketch, QuantileValueErrorBoundedByHalfStepOnAdversarialInput) {
    QuantileSketch sketch;
    auto vals = adversarial_values(4096, sketch.step());
    for (double v : vals) sketch.insert(v);
    std::sort(vals.begin(), vals.end());
    for (double q : {0.0, 0.001, 0.01, 0.25, 0.5, 0.75, 0.99, 0.999, 1.0}) {
        // rank ceil(q * n) clamped to [1, n], matching the sketch's contract.
        std::size_t rank = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(vals.size())));
        rank = std::clamp<std::size_t>(rank, 1, vals.size());
        const double exact = vals[rank - 1];
        EXPECT_LE(std::abs(sketch.quantile(q) - exact), sketch.step() / 2 + 1e-12)
            << "q=" << q;
    }
    EXPECT_DOUBLE_EQ(sketch.min(), vals.front());
    EXPECT_DOUBLE_EQ(sketch.max(), vals.back());
}

TEST(QuantileSketch, EmptyAndSingletonShardEdgeCases) {
    QuantileSketch empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_DOUBLE_EQ(empty.quantile(0.5), empty.lo());
    EXPECT_DOUBLE_EQ(empty.min(), empty.lo());
    EXPECT_DOUBLE_EQ(empty.max(), empty.hi());

    QuantileSketch single;
    single.insert(0.37);
    QuantileSketch merged;
    merged.merge(empty);      // empty into empty: still empty
    EXPECT_TRUE(merged.empty());
    merged.merge(single);     // singleton into empty
    merged.merge(empty);      // empty into nonempty: no-op
    EXPECT_TRUE(merged.identical(single));
    EXPECT_EQ(merged.count(), 1u);
    EXPECT_NEAR(merged.quantile(0.0), 0.37, merged.step() / 2);
    EXPECT_NEAR(merged.quantile(1.0), 0.37, merged.step() / 2);
    EXPECT_DOUBLE_EQ(merged.min(), 0.37);
}

TEST(QuantileSketch, OutOfRangeAndNaNClampDeterministically) {
    QuantileSketch a, b;
    a.insert(-3.0);
    a.insert(7.0);
    a.insert(std::nan(""));
    b.insert(0.0);   // -3 and NaN clamp low
    b.insert(1.0);   // 7 clamps high
    b.insert(0.0);
    // Counters land on the same bins; exact min/max differ only via the
    // clamped value, which is what was inserted.
    for (std::size_t i : {std::size_t{0}, a.bins() - 1})
        EXPECT_EQ(a.bin_count(i), b.bin_count(i));
    EXPECT_EQ(a.count(), 3u);
}

TEST(QuantileSketch, MergeRejectsMismatchedGeometry) {
    QuantileSketch a(8193, 0.0, 1.0);
    QuantileSketch b(4097, 0.0, 1.0);
    EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// ------------------------------------------------------------------ tree

TEST(DistributionTree, PreorderInvariantsAndLevelStructure) {
    TreeSpec spec;
    spec.backbone_depth = 3;
    spec.backbone_link = LinkSpec::gilbert_elliott(0.05, 4.0);
    spec.fanouts = {3, 2};
    spec.fanout_links = {LinkSpec::bernoulli(0.1), LinkSpec::bernoulli(0.02)};
    const DistributionTree tree(spec);

    EXPECT_EQ(tree.node_count(), 1u + 3u + 3u + 6u);
    EXPECT_EQ(tree.leaf_count(), 6u);
    EXPECT_EQ(tree.subtree_size(0), tree.node_count());
    EXPECT_EQ(tree.subtree_leaves(0), tree.leaf_count());

    std::size_t leaves = 0;
    for (std::uint32_t v = 1; v < tree.node_count(); ++v) {
        EXPECT_LT(tree.parent(v), v);  // preorder
        EXPECT_EQ(tree.depth(v), tree.depth(tree.parent(v)) + 1);
        // Subtree ranges nest: v's range sits inside its parent's.
        const std::uint32_t p = tree.parent(v);
        EXPECT_GE(v, p);
        EXPECT_LE(v + tree.subtree_size(v), p + tree.subtree_size(p));
        if (tree.is_leaf(v)) {
            ++leaves;
            EXPECT_EQ(tree.depth(v), spec.depth());
        }
    }
    EXPECT_EQ(leaves, 6u);

    // Link spec selection by depth class: backbone depths 1..3 -> specs[0],
    // fan-out level j -> specs[j].
    for (std::uint32_t v = 1; v < tree.node_count(); ++v) {
        const std::uint8_t d = tree.depth(v);
        EXPECT_EQ(tree.link_index(v), d <= 3 ? 0 : d - 3);
    }
    const double expect_rate = 1.0 - std::pow(0.95, 3) * 0.9 * 0.98;
    EXPECT_NEAR(tree.leaf_loss_rate(), expect_rate, 1e-12);
}

TEST(DistributionTree, BackboneOnlyChainHasOneLeaf) {
    TreeSpec spec;
    spec.backbone_depth = 4;
    spec.backbone_link = LinkSpec::bernoulli(0.1);
    const DistributionTree tree(spec);
    EXPECT_EQ(tree.node_count(), 5u);
    EXPECT_EQ(tree.leaf_count(), 1u);
    EXPECT_TRUE(tree.is_leaf(4));
    EXPECT_NEAR(tree.leaf_loss_rate(), 1.0 - std::pow(0.9, 4), 1e-12);
}

TEST(DistributionTree, RejectsInvalidSpecs) {
    TreeSpec bare;  // no links at all
    EXPECT_THROW(DistributionTree{bare}, std::invalid_argument);
    TreeSpec mismatched;
    mismatched.fanouts = {2, 2};
    mismatched.fanout_links = {LinkSpec::bernoulli(0.1)};
    EXPECT_THROW(DistributionTree{mismatched}, std::invalid_argument);
}

// ---------------------------------------------------- engine vs oracle

TreeSpec small_tree(bool bursty) {
    TreeSpec spec;
    spec.backbone_depth = 2;
    spec.backbone_link = bursty ? LinkSpec::gilbert_elliott(0.08, 5.0)
                                : LinkSpec::bernoulli(0.08);
    spec.fanouts = {4, 4};
    spec.fanout_links = {
        bursty ? LinkSpec::gilbert_elliott(0.1, 3.0) : LinkSpec::bernoulli(0.1),
        LinkSpec::bernoulli(0.05)};
    return spec;
}

void expect_engine_matches_oracle(const TreeSpec& spec, std::size_t shard_leaves) {
    const DistributionTree tree(spec);
    const DependenceGraph dg = make_augmented_chain(24, 2, 4);
    PopulationOptions options;
    options.max_shard_leaves = shard_leaves;
    const PopulationEngine engine(tree, options);

    const PopulationAggregate oracle = population_oracle(tree, dg, 42, /*block=*/3);
    for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        exec::ThreadPool::set_global_thread_count(threads);
        const PopulationAggregate got = engine.simulate_block(dg, 42, 3);
        EXPECT_TRUE(got.identical(oracle))
            << "threads=" << threads << " shard_leaves=" << shard_leaves;
    }
    exec::ThreadPool::set_global_thread_count(1);
}

TEST(PopulationEngine, MatchesOracleBitForBitBernoulli) {
    expect_engine_matches_oracle(small_tree(/*bursty=*/false), 4);
}

TEST(PopulationEngine, MatchesOracleBitForBitGilbertElliott) {
    expect_engine_matches_oracle(small_tree(/*bursty=*/true), 4);
}

TEST(PopulationEngine, ShardingGrainDoesNotChangeResults) {
    // One shard per leaf, per subtree, and one covering everything must all
    // agree — the aggregate algebra really is grouping-free.
    const DistributionTree tree(small_tree(/*bursty=*/true));
    const DependenceGraph dg = make_emss(20, 3, 2);
    PopulationOptions one, four, all;
    one.max_shard_leaves = 1;
    four.max_shard_leaves = 4;
    all.max_shard_leaves = 1u << 20;
    const auto a = PopulationEngine(tree, one).simulate_block(dg, 7, 0);
    const auto b = PopulationEngine(tree, four).simulate_block(dg, 7, 0);
    const auto c = PopulationEngine(tree, all).simulate_block(dg, 7, 0);
    EXPECT_TRUE(a.identical(b));
    EXPECT_TRUE(a.identical(c));
    EXPECT_EQ(PopulationEngine(tree, all).shard_roots().size(), 1u);
    EXPECT_EQ(PopulationEngine(tree, one).shard_roots().size(), tree.leaf_count());
}

TEST(PopulationEngine, BlocksAndSeedsDecorrelate) {
    const DistributionTree tree(small_tree(/*bursty=*/false));
    const DependenceGraph dg = make_augmented_chain(24, 2, 4);
    const PopulationEngine engine(tree);
    const auto base = engine.simulate_block(dg, 42, 3);
    EXPECT_TRUE(base.identical(engine.simulate_block(dg, 42, 3)));  // pure fn
    EXPECT_FALSE(base.identical(engine.simulate_block(dg, 42, 4)));
    EXPECT_FALSE(base.identical(engine.simulate_block(dg, 43, 3)));
}

TEST(PopulationEngine, AggregateTotalsAreConsistent) {
    const DistributionTree tree(small_tree(/*bursty=*/true));
    const DependenceGraph dg = make_augmented_chain(24, 2, 4);
    const auto agg = PopulationEngine(tree).simulate_block(dg, 11, 0);
    EXPECT_EQ(agg.leaves, tree.leaf_count());
    EXPECT_EQ(agg.instances, agg.leaves * 64);
    EXPECT_EQ(agg.transmissions, agg.leaves * 24 * 64);
    EXPECT_LE(agg.lost, agg.transmissions);
    EXPECT_LE(agg.loss_runs, agg.lost);
    EXPECT_LE(agg.verified, agg.received);
    EXPECT_EQ(agg.qhat.count() + agg.unresolved_leaves, agg.leaves);
    EXPECT_EQ(agg.qtrial.count() + agg.unresolved_instances, agg.instances);
    // qauth covers EVERY instance (unconditional), and since verified/sent
    // <= verified/received pointwise, its order statistics are dominated.
    EXPECT_EQ(agg.qauth.count(), agg.instances);
    for (double q : {0.01, 0.5, 0.99})
        EXPECT_LE(agg.qauth.quantile(q), agg.qtrial.quantile(q) + 1e-12);
    // Mean loss over many receivers should track the analytic rate.
    EXPECT_NEAR(agg.mean_loss_rate(), tree.leaf_loss_rate(), 0.05);
}

// ------------------------------------------------------------- feedback

TEST(SynthesizeFeedback, ReportsTailLossAndRescalesWindow) {
    PopulationAggregate agg;
    // 90 leaves at 10% loss, 10 leaves at 60%: the tail estimate must see
    // the unlucky subtree, not the average.
    for (int i = 0; i < 90; ++i) agg.leaf_loss.insert(0.1);
    for (int i = 0; i < 10; ++i) agg.leaf_loss.insert(0.6);
    agg.leaves = 100;
    agg.transmissions = 100ULL << 32;  // overflows u32 on purpose
    agg.lost = 25ULL << 32;
    agg.loss_runs = 5ULL << 32;
    const adapt::FeedbackReport report = synthesize_feedback(agg, /*block=*/9,
                                                             /*seq=*/2);
    EXPECT_EQ(report.last_block, 9u);
    EXPECT_EQ(report.seq, 2u);
    EXPECT_NEAR(report.est_loss_rate, 0.6, 0.01);
    EXPECT_DOUBLE_EQ(report.est_mean_burst, 5.0);
    EXPECT_GT(report.window_packets, 0u);
    EXPECT_NEAR(static_cast<double>(report.window_losses) /
                    static_cast<double>(report.window_packets),
                0.25, 1e-6);
}

TEST(FeedbackReport, SetWindowPreservesSmallCountsExactly) {
    adapt::FeedbackReport r;
    r.set_window(1000, 250);
    EXPECT_EQ(r.window_packets, 1000u);
    EXPECT_EQ(r.window_losses, 250u);
}

TEST(PopulationSuites, AreRegistered) {
    EXPECT_NE(obs::find_suite("population"), nullptr);
    EXPECT_NE(obs::find_suite("population-loop"), nullptr);
}

}  // namespace
}  // namespace mcauth::pop

// Expectation engine (obs/expect.hpp): every rule class must catch an
// injected violation, the online and offline evaluation paths must agree
// verdict-for-verdict, and the JSONL interchange format must round-trip.
//
// The negative paths are the point of this file: a conformance harness that
// has never been seen to FAIL proves nothing. Each scenario below injects
// one specific bug — a corrupted hash edge (verify without a signature), a
// verify after signature loss, a skipped redesign — and pins down that
// exactly the right rule fires.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/expect.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

using namespace mcauth::obs;

namespace {

Event make_event(EventId id, std::uint32_t block, std::uint32_t index,
                 std::uint32_t actor, double value) {
    Event ev;
    ev.id = id;
    ev.block = block;
    ev.index = index;
    ev.actor = actor;
    ev.value = value;
    return ev;
}

// Restore process-global obs state after online-checking tests.
class ExpectTest : public ::testing::Test {
protected:
    void TearDown() override {
        set_event_sink(nullptr);
        set_enabled(true);
        set_trace_enabled(false);
        TraceRecorder::global().clear();
    }
};

}  // namespace

// ----------------------------------------------------------- suite registry

TEST_F(ExpectTest, BuiltinSuitesAreTiered) {
    const ExpectationSuite* core = find_suite("stream-core");
    const ExpectationSuite* chain = find_suite("hash-chain");
    const ExpectationSuite* loop = find_suite("adaptive-loop");
    const ExpectationSuite* pop = find_suite("population");
    const ExpectationSuite* pop_loop = find_suite("population-loop");
    const ExpectationSuite* attribution = find_suite("attribution");
    ASSERT_NE(core, nullptr);
    ASSERT_NE(chain, nullptr);
    ASSERT_NE(loop, nullptr);
    ASSERT_NE(pop, nullptr);
    ASSERT_NE(pop_loop, nullptr);
    ASSERT_NE(attribution, nullptr);
    // Each tier strictly extends the previous one.
    EXPECT_GT(chain->rules().size(), core->rules().size());
    EXPECT_GT(loop->rules().size(), chain->rules().size());
    EXPECT_GT(pop_loop->rules().size(), pop->rules().size());
    EXPECT_EQ(find_suite("no-such-suite"), nullptr);
    EXPECT_EQ(suite_names().size(), 6u);
}

// ------------------------------------------------- suite: attribution

TEST_F(ExpectTest, AttributionSuiteChecksClassAndCausality) {
    const ExpectationSuite* suite = find_suite("attribution");
    ASSERT_NE(suite, nullptr);
    // Well-formed: the unverifiable verdict precedes its blame event, and
    // the class is a loss class (2 = signature-lost, 3 = paths-cut).
    std::vector<Event> good = {
        make_event(EventId::kPacketUnverifiable, 1, 3, 1, 0.0),
        make_event(EventId::kBlameAttributed, 1, 3, 1, 3.0),
    };
    EXPECT_TRUE(check_events(*suite, good, 0).ok());
    // A blame event with no preceding unverifiable verdict for that
    // (actor, block, index) is a causality violation.
    std::vector<Event> orphan = {
        make_event(EventId::kBlameAttributed, 1, 3, 1, 2.0)};
    const ConformanceReport orphan_report = check_events(*suite, orphan, 0);
    EXPECT_FALSE(orphan_report.ok());
    ASSERT_EQ(orphan_report.violations.size(), 1u);
    EXPECT_EQ(orphan_report.violations[0].rule, "blame-follows-unverifiable");
    // kPacketLost (1.0) never reaches the event stream — a lost packet has
    // no VerifyEvent — so any value outside {2, 3} is malformed.
    std::vector<Event> bad_class = {
        make_event(EventId::kPacketUnverifiable, 1, 3, 1, 0.0),
        make_event(EventId::kBlameAttributed, 1, 3, 1, 1.0),
    };
    const ConformanceReport class_report = check_events(*suite, bad_class, 0);
    EXPECT_FALSE(class_report.ok());
    ASSERT_EQ(class_report.violations.size(), 1u);
    EXPECT_EQ(class_report.violations[0].rule, "blame-class-is-loss");
}

// ------------------------------------------------- rule class: predicate

TEST_F(ExpectTest, PredicateFlagsOutOfRangeEstimate) {
    const ExpectationSuite* suite = find_suite("stream-core");
    std::vector<Event> events;
    events.push_back(make_event(EventId::kQHatUpdated, 1, 0, 1, 0.4));
    events.push_back(make_event(EventId::kQHatUpdated, 2, 0, 1, 1.5));  // bug
    const ConformanceReport report = check_events(*suite, events, 0);
    EXPECT_FALSE(report.ok());
    EXPECT_EQ(report.total_violations, 1u);
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_EQ(report.violations[0].rule, "qhat-in-unit-interval");
    EXPECT_EQ(report.violations[0].event.block, 2u);
}

TEST_F(ExpectTest, PredicateFlagsNonFiniteEstimate) {
    const ExpectationSuite* suite = find_suite("stream-core");
    const std::vector<Event> events = {make_event(
        EventId::kQHatUpdated, 1, 0, 1, std::numeric_limits<double>::quiet_NaN())};
    EXPECT_FALSE(check_events(*suite, events, 0).ok());
}

// -------------------------------- rule class: precedence (corrupted edge)

TEST_F(ExpectTest, CausalityCatchesVerifyWithoutSignature) {
    // A corrupted hash edge lets a packet "verify" although no signature
    // packet for its (receiver, block) ever arrived — the trace-level
    // shadow of a forged signature-rooted path.
    const ExpectationSuite* suite = find_suite("hash-chain");
    std::vector<Event> events;
    events.push_back(make_event(EventId::kPacketEmitted, 1, 0, 0, 1.0));  // sig
    events.push_back(make_event(EventId::kPacketEmitted, 1, 1, 0, 0.0));
    // Only the DATA packet arrives; the signature never does…
    events.push_back(make_event(EventId::kPacketReceived, 1, 1, 2, 0.0));
    // …yet the receiver claims verification.
    events.push_back(make_event(EventId::kPacketVerified, 1, 1, 2, 0.0));
    const ConformanceReport report = check_events(*suite, events, 0);
    EXPECT_EQ(report.total_violations, 1u);
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_EQ(report.violations[0].rule, "verified-needs-signature");
}

TEST_F(ExpectTest, CausalityAcceptsSignatureAnchoredVerify) {
    const ExpectationSuite* suite = find_suite("hash-chain");
    std::vector<Event> events;
    events.push_back(make_event(EventId::kPacketEmitted, 1, 0, 0, 1.0));
    events.push_back(make_event(EventId::kPacketEmitted, 1, 1, 0, 0.0));
    events.push_back(make_event(EventId::kPacketReceived, 1, 0, 2, 1.0));  // sig
    events.push_back(make_event(EventId::kPacketReceived, 1, 1, 2, 0.0));
    events.push_back(make_event(EventId::kPacketVerified, 1, 1, 2, 0.0));
    EXPECT_TRUE(check_events(*suite, events, 0).ok());
}

TEST_F(ExpectTest, PrecedenceScopesPerActor) {
    // Receiver 3 got the signature; receiver 4 did not. Only receiver 4's
    // verify is a violation — anchors must not leak across actors.
    const ExpectationSuite* suite = find_suite("hash-chain");
    std::vector<Event> events;
    events.push_back(make_event(EventId::kPacketEmitted, 1, 0, 0, 1.0));
    events.push_back(make_event(EventId::kPacketEmitted, 1, 1, 0, 0.0));
    events.push_back(make_event(EventId::kPacketReceived, 1, 0, 3, 1.0));
    events.push_back(make_event(EventId::kPacketReceived, 1, 1, 3, 0.0));
    events.push_back(make_event(EventId::kPacketVerified, 1, 1, 3, 0.0));
    events.push_back(make_event(EventId::kPacketReceived, 1, 1, 4, 0.0));
    events.push_back(make_event(EventId::kPacketVerified, 1, 1, 4, 0.0));
    const ConformanceReport report = check_events(*suite, events, 0);
    EXPECT_EQ(report.total_violations, 1u);
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_EQ(report.violations[0].event.actor, 4u);
}

// ------------------------------------------ rule class: forbid-after

TEST_F(ExpectTest, ForbidAfterCatchesVerifyAfterSignatureLoss) {
    const ExpectationSuite* suite = find_suite("hash-chain");
    std::vector<Event> events;
    events.push_back(make_event(EventId::kPacketEmitted, 2, 0, 0, 1.0));
    events.push_back(make_event(EventId::kPacketEmitted, 2, 1, 0, 0.0));
    events.push_back(make_event(EventId::kPacketReceived, 2, 0, 1, 1.0));
    events.push_back(make_event(EventId::kPacketReceived, 2, 1, 1, 0.0));
    // The receiver declares the signature lost, then still verifies: the
    // signature-anchor precedence holds (the sig WAS received), so only the
    // forbid-after rule can catch this inconsistency.
    events.push_back(make_event(EventId::kSignatureLost, 2, 0, 1, 0.0));
    events.push_back(make_event(EventId::kPacketVerified, 2, 1, 1, 0.0));
    const ConformanceReport report = check_events(*suite, events, 0);
    EXPECT_EQ(report.total_violations, 1u);
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_EQ(report.violations[0].rule, "no-verify-after-sig-loss");
}

// ------------------------------------------- rule class: bounded lag

TEST_F(ExpectTest, BoundedLagCatchesSkippedRedesign) {
    // The channel shifts regime at block 10 and the controller never
    // reacts; once the stream advances past the 16-block reaction bound,
    // the trigger expires as a violation.
    const ExpectationSuite* suite = find_suite("adaptive-loop");
    std::vector<Event> events;
    events.push_back(make_event(EventId::kRegimeShift, 10, 0, 0, 0.3));
    events.push_back(make_event(EventId::kQHatUpdated, 30, 0, 1, 0.25));
    const ConformanceReport report = check_events(*suite, events, 0);
    EXPECT_EQ(report.total_violations, 1u);
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_EQ(report.violations[0].rule, "redesign-follows-regime");
    EXPECT_EQ(report.violations[0].event.block, 10u);  // the expired trigger
}

TEST_F(ExpectTest, BoundedLagAcceptsRedesignWithinWindow) {
    const ExpectationSuite* suite = find_suite("adaptive-loop");
    std::vector<Event> events;
    events.push_back(make_event(EventId::kRegimeShift, 10, 0, 0, 0.3));
    events.push_back(make_event(
        EventId::kRedesignTriggered, 20,
        static_cast<std::uint32_t>(RedesignReason::kLossDrift), 0, 0.3));
    // The design service answers the redesign (design-served-after-redesign
    // is itself a bounded-lag rule of the adaptive suite).
    events.push_back(make_event(EventId::kDesignServed, 20, /*source=*/0, 0, 1e-4));
    events.push_back(make_event(EventId::kQHatUpdated, 40, 0, 1, 0.25));
    EXPECT_TRUE(check_events(*suite, events, 0).ok());
}

TEST_F(ExpectTest, BoundedLagWindowStillOpenAtFinishIsNotViolation) {
    // The trace simply ended before the deadline — no verdict either way.
    const ExpectationSuite* suite = find_suite("adaptive-loop");
    const std::vector<Event> events = {
        make_event(EventId::kRegimeShift, 10, 0, 0, 0.3)};
    EXPECT_TRUE(check_events(*suite, events, 0).ok());
}

TEST_F(ExpectTest, RedesignReasonCodeIsChecked) {
    const ExpectationSuite* suite = find_suite("adaptive-loop");
    const std::vector<Event> events = {
        make_event(EventId::kRedesignTriggered, 5, /*reason=*/9, 0, 0.3)};
    const ConformanceReport report = check_events(*suite, events, 0);
    EXPECT_EQ(report.total_violations, 1u);
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_EQ(report.violations[0].rule, "redesign-has-reason");
}

// ----------------------------------------------------------- partial traces

TEST_F(ExpectTest, PartialTraceSuppressesAnchorRulesForFirstObservedBlock) {
    const ExpectationSuite* suite = find_suite("hash-chain");
    std::vector<Event> events;
    // Ring wrapped: this actor's history starts mid-stream at block 5,
    // whose anchors were overwritten — not a violation.
    events.push_back(make_event(EventId::kPacketVerified, 5, 3, 1, 0.0));
    // Block 6 is complete history; a missing signature there IS one.
    events.push_back(make_event(EventId::kPacketEmitted, 6, 0, 0, 1.0));
    events.push_back(make_event(EventId::kPacketEmitted, 6, 1, 0, 0.0));
    events.push_back(make_event(EventId::kPacketReceived, 6, 1, 1, 0.0));
    events.push_back(make_event(EventId::kPacketVerified, 6, 1, 1, 0.0));
    const ConformanceReport report = check_events(*suite, events, /*dropped=*/42);
    EXPECT_TRUE(report.partial);
    EXPECT_EQ(report.total_violations, 1u);
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_EQ(report.violations[0].rule, "verified-needs-signature");
    EXPECT_EQ(report.violations[0].event.block, 6u);
}

TEST_F(ExpectTest, CompleteTraceDoesNotSuppressFirstBlock) {
    // Same orphan verify, but dropped == 0: block 5 is real history and the
    // missing anchors are real violations.
    const ExpectationSuite* suite = find_suite("hash-chain");
    const std::vector<Event> events = {
        make_event(EventId::kPacketVerified, 5, 3, 1, 0.0)};
    const ConformanceReport report = check_events(*suite, events, 0);
    EXPECT_FALSE(report.partial);
    EXPECT_GE(report.total_violations, 1u);
}

// ------------------------------------------------------------ JSONL format

TEST_F(ExpectTest, JsonlRoundTripPreservesEventsAndDroppedCount) {
    std::vector<Event> events;
    events.push_back(make_event(EventId::kPacketEmitted, 1, 0, 0, 1.0));
    events.push_back(make_event(EventId::kQHatUpdated, 2, 0, 3, 0.0625));
    events.back().ts_ns = 123456789;
    const std::string jsonl = events_to_jsonl(events, /*dropped=*/7);

    std::istringstream in(jsonl);
    std::vector<Event> back;
    std::uint64_t dropped = 0;
    std::string error;
    ASSERT_TRUE(parse_events_jsonl(in, back, dropped, error)) << error;
    EXPECT_EQ(dropped, 7u);
    ASSERT_EQ(back.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(back[i].id, events[i].id) << i;
        EXPECT_EQ(back[i].block, events[i].block) << i;
        EXPECT_EQ(back[i].index, events[i].index) << i;
        EXPECT_EQ(back[i].actor, events[i].actor) << i;
        EXPECT_DOUBLE_EQ(back[i].value, events[i].value) << i;
        EXPECT_EQ(back[i].ts_ns, events[i].ts_ns) << i;
    }
}

TEST_F(ExpectTest, JsonlParseRejectsMissingMetaSkipsGarbageLines) {
    std::vector<Event> out;
    std::string error;
    {
        // No meta header: still a hard failure — the file is not ours.
        std::istringstream in("{\"id\": 1, \"block\": 0}\n");
        JsonlStats stats;
        EXPECT_FALSE(parse_events_jsonl(in, out, stats, error));
        EXPECT_FALSE(error.empty());
    }
    {
        // Garbage and truncated trailing lines (a crashed writer, a
        // partial flush) are SKIPPED with a count, not a parse failure:
        // the events before them are real evidence a postmortem needs.
        std::istringstream in(
            "{\"meta\": {\"schema\": \"mcauth-events-v1\", \"dropped_events\": 7}}\n"
            "{\"id\": 1, \"block\": 3, \"index\": 0, \"actor\": 0, \"value\": 1}\n"
            "not json at all\n"
            "{\"block\": 4, \"index\": 0}\n"
            "{\"id\": 2, \"block\": 3, \"index\": 0, \"act");
        JsonlStats stats;
        error.clear();
        out.clear();
        ASSERT_TRUE(parse_events_jsonl(in, out, stats, error)) << error;
        EXPECT_EQ(out.size(), 1u);
        EXPECT_EQ(stats.dropped_events, 7u);
        EXPECT_EQ(stats.skipped_lines, 3u);
    }
    {
        // The 4-arg back-compat overload keeps its signature and still
        // tolerates the garbage trailer.
        std::istringstream in(
            "{\"meta\": {\"schema\": \"mcauth-events-v1\", \"dropped_events\": 2}}\n"
            "garbage\n");
        std::uint64_t dropped = 0;
        error.clear();
        out.clear();
        EXPECT_TRUE(parse_events_jsonl(in, out, dropped, error));
        EXPECT_EQ(dropped, 2u);
    }
}

// --------------------------------------- online == offline verdict identity

TEST_F(ExpectTest, OnlineAndOfflineVerdictsAgree) {
    // One stream with one injected corrupted-edge violation, evaluated both
    // ways: online through emit_event -> EventSink, offline through the
    // JSONL export -> parse -> check_events path.
    const ExpectationSuite* suite = find_suite("hash-chain");
    const std::vector<Event> script = {
        make_event(EventId::kPacketEmitted, 1, 0, 0, 1.0),
        make_event(EventId::kPacketEmitted, 1, 1, 0, 0.0),
        make_event(EventId::kPacketReceived, 1, 0, 1, 1.0),
        make_event(EventId::kPacketReceived, 1, 1, 1, 0.0),
        make_event(EventId::kPacketVerified, 1, 1, 1, 0.0),
        make_event(EventId::kPacketEmitted, 2, 0, 0, 0.0),
        make_event(EventId::kPacketReceived, 2, 0, 1, 0.0),
        make_event(EventId::kPacketVerified, 2, 0, 1, 0.0),  // bug: no sig
        make_event(EventId::kQHatUpdated, 2, 0, 1, 0.25),
    };

    set_enabled(true);
    set_trace_enabled(true);
    TraceRecorder::global().clear();
    ConformanceReport online_report;
    {
        OnlineConformance online(*suite);
        for (const Event& ev : script)
            emit_event(ev.id, ev.block, ev.index, ev.actor, ev.value);
        online_report = online.finish();
    }

    // Export what the ring captured, parse it back, check offline.
    const std::vector<Event> exported =
        extract_events(TraceRecorder::global().snapshot());
    ASSERT_EQ(exported.size(), script.size());
    const std::string jsonl =
        events_to_jsonl(exported, TraceRecorder::global().dropped());
    std::istringstream in(jsonl);
    std::vector<Event> parsed;
    std::uint64_t dropped = 0;
    std::string error;
    ASSERT_TRUE(parse_events_jsonl(in, parsed, dropped, error)) << error;
    const ConformanceReport offline_report = check_events(*suite, parsed, dropped);

    EXPECT_EQ(online_report.ok(), offline_report.ok());
    EXPECT_EQ(online_report.total_violations, offline_report.total_violations);
    EXPECT_EQ(online_report.events_seen, offline_report.events_seen);
    EXPECT_EQ(online_report.partial, offline_report.partial);
    ASSERT_EQ(online_report.violations.size(), offline_report.violations.size());
    for (std::size_t i = 0; i < online_report.violations.size(); ++i) {
        EXPECT_EQ(online_report.violations[i].rule,
                  offline_report.violations[i].rule);
        EXPECT_EQ(online_report.violations[i].event.block,
                  offline_report.violations[i].event.block);
    }
    // And the injected bug was in fact caught, both ways.
    EXPECT_EQ(online_report.total_violations, 1u);
    ASSERT_FALSE(online_report.violations.empty());
    EXPECT_EQ(online_report.violations[0].rule, "verified-needs-signature");
}

// ------------------------------------------------------------- report text

TEST_F(ExpectTest, RenderTextNamesSuiteVerdictAndRules) {
    const ExpectationSuite* suite = find_suite("stream-core");
    const std::vector<Event> bad = {
        make_event(EventId::kQHatUpdated, 1, 0, 1, -0.5)};
    const ConformanceReport fail = check_events(*suite, bad, 0);
    const std::string text = fail.render_text();
    EXPECT_NE(text.find("stream-core"), std::string::npos);
    EXPECT_NE(text.find("FAIL"), std::string::npos);
    EXPECT_NE(text.find("qhat-in-unit-interval"), std::string::npos);

    const ConformanceReport pass = check_events(*suite, {}, 0);
    EXPECT_NE(pass.render_text().find("PASS"), std::string::npos);
}

#include <gtest/gtest.h>

#include <algorithm>

#include "auth/stream_auth.hpp"
#include "core/topologies.hpp"
#include "util/rng.hpp"

namespace mcauth {
namespace {

HashChainConfig streaming_config() {
    HashChainConfig cfg = emss_config(/*block_size=*/0 + 64, 2, 1);
    return cfg;
}

struct StreamPipe {
    explicit StreamPipe(StreamingOptions options = {}, std::uint64_t seed = 1000)
        : rng(seed),
          signer(rng, 64),
          sender(streaming_config(), signer, options),
          verifier(streaming_config(), signer.make_verifier()) {}

    Rng rng;
    MerkleWotsSigner signer;
    StreamingAuthenticator sender;
    StreamingVerifier verifier;
};

TEST(StreamingAuthenticator, CutsAtSizeCap) {
    StreamingOptions options;
    options.max_block = 8;
    StreamPipe pipe(options);
    std::size_t emitted_blocks = 0;
    for (int i = 0; i < 24; ++i) {
        const auto packets = pipe.sender.push(pipe.rng.bytes(40), 0.001 * i);
        if (!packets.empty()) {
            ++emitted_blocks;
            EXPECT_EQ(packets.size(), 8u);
            for (const auto& pkt : packets) EXPECT_EQ(pkt.block_size, 8u);
        }
    }
    EXPECT_EQ(emitted_blocks, 3u);
    EXPECT_EQ(pipe.sender.pending(), 0u);
}

TEST(StreamingAuthenticator, CutsAtLatencyDeadline) {
    StreamingOptions options;
    options.max_block = 100;
    options.max_latency = 0.05;
    StreamPipe pipe(options);
    EXPECT_TRUE(pipe.sender.push(pipe.rng.bytes(40), 0.00).empty());
    EXPECT_TRUE(pipe.sender.push(pipe.rng.bytes(40), 0.01).empty());
    // Third payload arrives past the deadline of the first: cut now.
    const auto packets = pipe.sender.push(pipe.rng.bytes(40), 0.06);
    EXPECT_EQ(packets.size(), 3u);
}

TEST(StreamingAuthenticator, FlushEmitsTail) {
    StreamPipe pipe;
    pipe.sender.push(pipe.rng.bytes(40), 0.0);
    pipe.sender.push(pipe.rng.bytes(40), 0.001);
    pipe.sender.push(pipe.rng.bytes(40), 0.002);
    const auto packets = pipe.sender.flush(0.01);
    EXPECT_EQ(packets.size(), 3u);
    EXPECT_EQ(pipe.sender.pending(), 0u);
    EXPECT_TRUE(pipe.sender.flush(0.02).empty());  // nothing left
}

TEST(StreamingAuthenticator, FlushPadsSingletonTail) {
    StreamPipe pipe;
    pipe.sender.push(pipe.rng.bytes(40), 0.0);
    const auto packets = pipe.sender.flush(0.01);
    ASSERT_EQ(packets.size(), 2u);  // padded to min_block
    EXPECT_EQ(packets[0].payload, packets[1].payload);
}

TEST(StreamingAuthenticator, GentleFlushBelowMinBlockKeepsPending) {
    StreamPipe pipe;
    pipe.sender.push(pipe.rng.bytes(40), 0.0);
    // force=false: a sub-min_block tail is not worth a signature yet — the
    // payload must stay queued, not get dropped or padded.
    EXPECT_TRUE(pipe.sender.flush(0.01, /*force=*/false).empty());
    EXPECT_EQ(pipe.sender.pending(), 1u);
    // The retained payload still makes it out on the next real cut.
    pipe.sender.push(pipe.rng.bytes(40), 0.02);
    const auto packets = pipe.sender.flush(0.03, /*force=*/false);
    EXPECT_EQ(packets.size(), 2u);
    EXPECT_EQ(pipe.sender.pending(), 0u);
}

TEST(StreamingAuthenticator, CutsExactlyAtLatencyDeadline) {
    StreamingOptions options;
    options.max_block = 100;
    options.max_latency = 0.05;
    StreamPipe pipe(options);
    EXPECT_TRUE(pipe.sender.push(pipe.rng.bytes(40), 0.000).empty());
    // Just inside the deadline: no cut yet.
    EXPECT_TRUE(pipe.sender.push(pipe.rng.bytes(40), 0.0499).empty());
    // now - oldest == max_latency exactly: the deadline comparison is >=,
    // so the block cuts on the boundary, not one payload later.
    const auto packets = pipe.sender.push(pipe.rng.bytes(40), 0.050);
    EXPECT_EQ(packets.size(), 3u);
    EXPECT_EQ(pipe.sender.pending(), 0u);
}

TEST(StreamingVerifier, InterleavedGeometriesShareOneVerifier) {
    // Two senders with different cut sizes (so same block ids arrive under
    // different geometries) against ONE verifier: routing is by declared
    // block_size, so the streams must not collide.
    Rng rng(77);
    MerkleWotsSigner signer(rng, 64);
    StreamingOptions small_opts;
    small_opts.max_block = 5;
    StreamingOptions large_opts;
    large_opts.max_block = 8;
    StreamingAuthenticator small_tx(streaming_config(), signer, small_opts);
    StreamingAuthenticator large_tx(streaming_config(), signer, large_opts);
    StreamingVerifier verifier(streaming_config(), signer.make_verifier());

    std::vector<AuthPacket> small_wire, large_wire;
    for (int i = 0; i < 10; ++i) {
        auto a = small_tx.push(rng.bytes(32), 0.001 * i);
        small_wire.insert(small_wire.end(), a.begin(), a.end());
        auto b = large_tx.push(rng.bytes(32), 0.001 * i);
        large_wire.insert(large_wire.end(), b.begin(), b.end());
    }
    ASSERT_EQ(small_wire.size(), 10u);  // two size-5 blocks (ids 0 and 1)
    ASSERT_EQ(large_wire.size(), 8u);   // one size-8 block (id 0 as well)

    // Strict interleave, alternating streams packet by packet.
    std::size_t authenticated = 0, si = 0, li = 0;
    auto deliver = [&](const AuthPacket& pkt) {
        for (const auto& ev : verifier.on_packet(pkt))
            if (ev.status == VerifyStatus::kAuthenticated) ++authenticated;
    };
    while (si < small_wire.size() || li < large_wire.size()) {
        if (si < small_wire.size()) deliver(small_wire[si++]);
        if (li < large_wire.size()) deliver(large_wire[li++]);
    }
    EXPECT_EQ(authenticated, small_wire.size() + large_wire.size());
    EXPECT_TRUE(verifier.finish_all().empty());
}

TEST(StreamingRoundTrip, VariableBlocksAllAuthenticate) {
    StreamingOptions options;
    options.max_block = 16;
    options.max_latency = 0.03;
    StreamPipe pipe(options);

    // Irregular arrival pattern: bursts and pauses -> blocks of many sizes.
    std::vector<AuthPacket> wire;
    double now = 0.0;
    Rng pacing(9);
    std::size_t payloads = 0;
    for (int i = 0; i < 150; ++i) {
        now += pacing.bernoulli(0.1) ? 0.05 : 0.002;  // occasional pauses
        auto packets = pipe.sender.push(pipe.rng.bytes(60), now);
        wire.insert(wire.end(), packets.begin(), packets.end());
        ++payloads;
    }
    auto tail = pipe.sender.flush(now + 1.0);
    wire.insert(wire.end(), tail.begin(), tail.end());
    ASSERT_GE(wire.size(), payloads);  // padding can add at most one

    // Verify a block-size spread actually happened.
    std::set<std::uint32_t> sizes;
    for (const auto& pkt : wire) sizes.insert(pkt.block_size);
    EXPECT_GE(sizes.size(), 2u);

    std::size_t authenticated = 0;
    for (const auto& pkt : wire)
        for (const auto& ev : pipe.verifier.on_packet(pkt))
            if (ev.status == VerifyStatus::kAuthenticated) ++authenticated;
    for (const auto& ev : pipe.verifier.finish_all())
        EXPECT_NE(ev.status, VerifyStatus::kAuthenticated);
    EXPECT_EQ(authenticated, wire.size());
}

TEST(StreamingRoundTrip, SurvivesLossWithinBlocks) {
    StreamingOptions options;
    options.max_block = 12;
    StreamPipe pipe(options);
    std::vector<AuthPacket> wire;
    for (int i = 0; i < 60; ++i) {
        auto packets = pipe.sender.push(pipe.rng.bytes(60), 0.001 * i);
        wire.insert(wire.end(), packets.begin(), packets.end());
    }
    // Drop every 7th packet except signature packets (paper assumption).
    std::size_t authenticated = 0, resolved = 0;
    for (std::size_t i = 0; i < wire.size(); ++i) {
        if (i % 7 == 3 && wire[i].kind != PacketKind::kSignature) continue;
        for (const auto& ev : pipe.verifier.on_packet(wire[i])) {
            ++resolved;
            if (ev.status == VerifyStatus::kAuthenticated) ++authenticated;
        }
    }
    EXPECT_GT(authenticated, 0u);
    EXPECT_GE(resolved, authenticated);
}

TEST(StreamingVerifier, ForgedGeometryCannotAuthenticate) {
    StreamPipe pipe;
    auto packets = pipe.sender.push(pipe.rng.bytes(60), 0.0);
    for (int i = 1; i < 8; ++i) {
        auto more = pipe.sender.push(pipe.rng.bytes(60), 0.001 * i);
        packets.insert(packets.end(), more.begin(), more.end());
    }
    auto tail = pipe.sender.flush(1.0);
    packets.insert(packets.end(), tail.begin(), tail.end());
    ASSERT_FALSE(packets.empty());

    AuthPacket forged = packets.front();
    forged.block_size = 4;  // lie about geometry
    std::size_t authenticated = 0;
    for (const auto& ev : pipe.verifier.on_packet(forged))
        if (ev.status == VerifyStatus::kAuthenticated) ++authenticated;
    EXPECT_EQ(authenticated, 0u);
}

TEST(StreamingVerifier, AbsurdGeometryIgnored) {
    StreamPipe pipe;
    AuthPacket bogus;
    bogus.block_size = 0xffffffffu;  // must not allocate a 4G-vertex graph
    bogus.index = 5;
    EXPECT_TRUE(pipe.verifier.on_packet(bogus).empty());
    bogus.block_size = 1;
    EXPECT_TRUE(pipe.verifier.on_packet(bogus).empty());
}

TEST(HashChainReceiver, DosGuardEvictsOldestBlock) {
    HashChainConfig cfg = emss_config(8, 2, 1);
    cfg.max_open_blocks = 3;
    Rng rng(5);
    MerkleWotsSigner signer(rng, 8);
    HashChainSender sender(cfg, signer);
    HashChainReceiver receiver(cfg, signer.make_verifier());

    std::vector<std::vector<std::uint8_t>> payloads(8);
    for (auto& p : payloads) p = rng.bytes(20);

    // Open 3 blocks with one data packet each (never the signature).
    for (std::uint32_t b = 0; b < 3; ++b) {
        const auto packets = sender.make_block(b, payloads);
        EXPECT_TRUE(receiver.on_packet(packets[0]).empty());
    }
    EXPECT_EQ(receiver.buffered_packets(), 3u);

    // A 4th block evicts block 0: its pending packet resolves unverifiable.
    const auto packets = sender.make_block(3, payloads);
    const auto events = receiver.on_packet(packets[0]);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].block_id, 0u);
    EXPECT_EQ(events[0].status, VerifyStatus::kUnverifiable);
    EXPECT_EQ(receiver.buffered_packets(), 3u);  // still capped
}

}  // namespace
}  // namespace mcauth

// mcauth_obs: registry semantics, deterministic timing via FakeClock, trace
// ring wraparound, and golden checks that the exporters emit well-formed
// JSON (the trace file must parse as the Chrome trace-event schema).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace mcauth::obs {
namespace {

// ------------------------------------------------------- mini JSON parser
//
// Just enough JSON to validate the exporters: objects, arrays, strings,
// numbers, booleans, null. No escapes beyond \" \\ \/ \n \t (the exporters
// only emit metric names, which are dotted identifiers).

struct JsonValue {
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool has(const std::string& key) const { return object.count(key) != 0; }
    const JsonValue& at(const std::string& key) const { return object.at(key); }
};

class JsonParser {
public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    bool parse(JsonValue& out) {
        skip_ws();
        if (!parse_value(out)) return false;
        skip_ws();
        return pos_ == text_.size();
    }

private:
    void skip_ws() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
            ++pos_;
    }

    bool consume(char c) {
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != c) return false;
        ++pos_;
        return true;
    }

    bool parse_value(JsonValue& out) {
        skip_ws();
        if (pos_ >= text_.size()) return false;
        switch (text_[pos_]) {
            case '{': return parse_object(out);
            case '[': return parse_array(out);
            case '"': return parse_string(out);
            case 't':
            case 'f': return parse_bool(out);
            case 'n': return parse_null(out);
            default: return parse_number(out);
        }
    }

    bool parse_object(JsonValue& out) {
        out.kind = JsonValue::Kind::kObject;
        if (!consume('{')) return false;
        skip_ws();
        if (consume('}')) return true;
        while (true) {
            JsonValue key;
            if (!parse_string(key)) return false;
            if (!consume(':')) return false;
            JsonValue value;
            if (!parse_value(value)) return false;
            out.object.emplace(key.string, std::move(value));
            if (consume(',')) continue;
            return consume('}');
        }
    }

    bool parse_array(JsonValue& out) {
        out.kind = JsonValue::Kind::kArray;
        if (!consume('[')) return false;
        skip_ws();
        if (consume(']')) return true;
        while (true) {
            JsonValue value;
            if (!parse_value(value)) return false;
            out.array.push_back(std::move(value));
            if (consume(',')) continue;
            return consume(']');
        }
    }

    bool parse_string(JsonValue& out) {
        out.kind = JsonValue::Kind::kString;
        if (!consume('"')) return false;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size()) return false;
                const char esc = text_[pos_++];
                switch (esc) {
                    case '"': c = '"'; break;
                    case '\\': c = '\\'; break;
                    case '/': c = '/'; break;
                    case 'n': c = '\n'; break;
                    case 't': c = '\t'; break;
                    default: return false;
                }
            }
            out.string.push_back(c);
        }
        return pos_ < text_.size() && text_[pos_++] == '"';
    }

    bool parse_bool(JsonValue& out) {
        out.kind = JsonValue::Kind::kBool;
        if (text_.compare(pos_, 4, "true") == 0) {
            out.boolean = true;
            pos_ += 4;
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            out.boolean = false;
            pos_ += 5;
            return true;
        }
        return false;
    }

    bool parse_null(JsonValue& out) {
        out.kind = JsonValue::Kind::kNull;
        if (text_.compare(pos_, 4, "null") != 0) return false;
        pos_ += 4;
        return true;
    }

    bool parse_number(JsonValue& out) {
        out.kind = JsonValue::Kind::kNumber;
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
                text_[pos_] == 'e' || text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start) return false;
        try {
            out.number = std::stod(text_.substr(start, pos_ - start));
        } catch (...) {
            return false;
        }
        return true;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

JsonValue parse_json_or_die(const std::string& text) {
    JsonValue v;
    JsonParser parser(text);
    EXPECT_TRUE(parser.parse(v)) << "unparseable JSON:\n" << text;
    return v;
}

// Every test restores the process-global obs state it touches.
class ObsTest : public ::testing::Test {
protected:
    void TearDown() override {
        set_clock(nullptr);
        set_enabled(true);
        set_trace_enabled(false);
        set_progress_enabled(false);
    }
};

// ------------------------------------------------------------------ metrics

TEST_F(ObsTest, CounterAddsAndResets) {
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, GaugeSetAddReset) {
    Gauge g;
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.add(-1.0);
    EXPECT_DOUBLE_EQ(g.value(), 1.5);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST_F(ObsTest, HistogramEmptyIsZeroed) {
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum_ns(), 0u);
    EXPECT_EQ(h.min_ns(), 0u);
    EXPECT_EQ(h.max_ns(), 0u);
    EXPECT_DOUBLE_EQ(h.mean_ns(), 0.0);
    EXPECT_EQ(h.quantile_ns(0.5), 0u);
}

TEST_F(ObsTest, HistogramBucketsByBitWidth) {
    LatencyHistogram h;
    h.record_ns(0);     // bucket 0
    h.record_ns(1);     // bucket 1: [1, 1]
    h.record_ns(5);     // bucket 3: [4, 7]
    h.record_ns(7);     // bucket 3
    h.record_ns(1000);  // bucket 10: [512, 1023]
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum_ns(), 1013u);
    EXPECT_EQ(h.min_ns(), 0u);
    EXPECT_EQ(h.max_ns(), 1000u);
    EXPECT_EQ(h.bucket_count(0), 1u);
    EXPECT_EQ(h.bucket_count(1), 1u);
    EXPECT_EQ(h.bucket_count(3), 2u);
    EXPECT_EQ(h.bucket_count(10), 1u);
    EXPECT_EQ(LatencyHistogram::bucket_upper_ns(0), 0u);
    EXPECT_EQ(LatencyHistogram::bucket_upper_ns(3), 7u);
    EXPECT_EQ(LatencyHistogram::bucket_upper_ns(10), 1023u);
    // 3/5 of samples are <= 7ns, so p50's covering bucket edge is 7.
    EXPECT_EQ(h.quantile_ns(0.5), 7u);
    EXPECT_EQ(h.quantile_ns(1.0), 1023u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucket_count(3), 0u);
}

TEST_F(ObsTest, RegistryReturnsStableIdentity) {
    MetricsRegistry reg;
    Counter& a = reg.counter("x.ops");
    Counter& b = reg.counter("x.ops");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(reg.counter("x.ops").value(), 3u);
    // Distinct kinds under the same name coexist (separate namespaces).
    reg.gauge("x.ops").set(1.0);
    EXPECT_EQ(reg.counter("x.ops").value(), 3u);
}

TEST_F(ObsTest, RegistryResetKeepsRegistrations) {
    MetricsRegistry reg;
    Counter& c = reg.counter("a");
    reg.histogram("h").record_ns(9);
    reg.gauge("g").set(4.0);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);  // cached reference still valid, value zeroed
    EXPECT_EQ(reg.histogram("h").count(), 0u);
    EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
    EXPECT_EQ(reg.counter_values().size(), 1u);
}

TEST_F(ObsTest, MetricsJsonParsesAndRoundTripsValues) {
    MetricsRegistry reg;
    reg.counter("crypto.sha256.ops").add(7);
    reg.gauge("sim.buffered_packets").set(3.0);
    reg.histogram("sim.verify").record_ns(100);
    reg.histogram("sim.verify").record_ns(200);

    const JsonValue root = parse_json_or_die(reg.to_json());
    ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
    ASSERT_TRUE(root.has("counters"));
    ASSERT_TRUE(root.has("gauges"));
    ASSERT_TRUE(root.has("histograms"));
    EXPECT_DOUBLE_EQ(root.at("counters").at("crypto.sha256.ops").number, 7.0);
    EXPECT_DOUBLE_EQ(root.at("gauges").at("sim.buffered_packets").number, 3.0);

    const JsonValue& h = root.at("histograms").at("sim.verify");
    EXPECT_DOUBLE_EQ(h.at("count").number, 2.0);
    EXPECT_DOUBLE_EQ(h.at("sum_ns").number, 300.0);
    EXPECT_DOUBLE_EQ(h.at("min_ns").number, 100.0);
    EXPECT_DOUBLE_EQ(h.at("max_ns").number, 200.0);
    ASSERT_TRUE(h.has("buckets"));
    ASSERT_EQ(h.at("buckets").kind, JsonValue::Kind::kArray);
    ASSERT_FALSE(h.at("buckets").array.empty());
    for (const JsonValue& bucket : h.at("buckets").array) {
        EXPECT_TRUE(bucket.has("le_ns"));
        EXPECT_TRUE(bucket.has("count"));
    }
}

TEST_F(ObsTest, RenderTableMentionsEveryMetric) {
    MetricsRegistry reg;
    reg.counter("a.ops").add(1);
    reg.gauge("b.level").set(2.0);
    reg.histogram("c.span").record_ns(5);
    const std::string table = reg.render_table();
    EXPECT_NE(table.find("a.ops"), std::string::npos);
    EXPECT_NE(table.find("b.level"), std::string::npos);
    EXPECT_NE(table.find("c.span"), std::string::npos);
}

// Pins the bucket boundary rule exactly at the power-of-two edges: bucket i
// is [2^(i-1), 2^i - 1] (bit_width), so 2^k lands in bucket k+1, NOT k —
// the off-by-one a "log2 bucket" reading of the scheme would get wrong.
TEST_F(ObsTest, HistogramPowerOfTwoBoundaries) {
    LatencyHistogram h;
    h.record_ns(0);     // bucket 0: exactly zero
    h.record_ns(1023);  // bit_width 10 -> bucket 10 (its top edge)
    h.record_ns(1024);  // bit_width 11 -> bucket 11 (its bottom edge)
    EXPECT_EQ(h.bucket_count(0), 1u);
    EXPECT_EQ(h.bucket_count(10), 1u);
    EXPECT_EQ(h.bucket_count(11), 1u);
    EXPECT_EQ(LatencyHistogram::bucket_upper_ns(10), 1023u);
    EXPECT_EQ(LatencyHistogram::bucket_upper_ns(11), 2047u);
    // Every bucket's upper edge + 1 lands in the NEXT bucket.
    for (std::size_t i = 1; i + 1 < LatencyHistogram::kBuckets; ++i) {
        LatencyHistogram edge;
        edge.record_ns(LatencyHistogram::bucket_upper_ns(i));
        edge.record_ns(LatencyHistogram::bucket_upper_ns(i) + 1);
        EXPECT_EQ(edge.bucket_count(i), 1u) << "upper edge of bucket " << i;
        EXPECT_EQ(edge.bucket_count(i + 1), 1u) << "first of bucket " << i + 1;
    }
}

// A sample wider than the last bucket's edge must still be COUNTED (clamped
// into bucket 63), with the exact value preserved in sum/max — overflow must
// never silently drop samples.
TEST_F(ObsTest, HistogramOverflowSampleClampsToLastBucket) {
    LatencyHistogram h;
    const std::uint64_t huge = (std::uint64_t{1} << 63) + 5;  // bit_width 64
    h.record_ns(huge);
    h.record_ns(~std::uint64_t{0});  // max representable
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.bucket_count(LatencyHistogram::kBuckets - 1), 2u);
    EXPECT_EQ(h.max_ns(), ~std::uint64_t{0});
    EXPECT_EQ(h.min_ns(), huge);
    // The reported upper edge saturates at 2^63 - 1; the true sample may
    // exceed it, which max_ns() exposes exactly.
    EXPECT_EQ(LatencyHistogram::bucket_upper_ns(LatencyHistogram::kBuckets - 1),
              (std::uint64_t{1} << 63) - 1);
    EXPECT_GT(h.max_ns(),
              LatencyHistogram::bucket_upper_ns(LatencyHistogram::kBuckets - 1));
}

// ---------------------------------------------------------------- snapshots

TEST_F(ObsTest, SnapshotCapturesEveryKind) {
    MetricsRegistry reg;
    reg.counter("c.ops").add(7);
    reg.gauge("g.level").set(2.5);
    reg.histogram("h.span").record_ns(100);
    reg.histogram("h.span").record_ns(300);

    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter_or("c.ops"), 7u);
    EXPECT_EQ(snap.counter_or("absent", 42u), 42u);
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].first, "g.level");
    EXPECT_DOUBLE_EQ(snap.gauges[0].second, 2.5);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].second.count, 2u);
    EXPECT_EQ(snap.histograms[0].second.sum_ns, 400u);
}

TEST_F(ObsTest, DeltaSubtractsCountersAndHistograms) {
    MetricsRegistry reg;
    reg.counter("c.ops").add(10);
    reg.histogram("h.span").record_ns(50);
    reg.gauge("g.level").set(1.0);
    const MetricsSnapshot before = reg.snapshot();

    reg.counter("c.ops").add(5);
    reg.counter("c.fresh").add(3);  // born between the snapshots
    reg.histogram("h.span").record_ns(70);
    reg.gauge("g.level").set(9.0);
    const MetricsSnapshot after = reg.snapshot();

    const MetricsSnapshot d = delta(after, before);
    EXPECT_EQ(d.counter_or("c.ops"), 5u);
    EXPECT_EQ(d.counter_or("c.fresh"), 3u);  // missing-in-older counts from 0
    ASSERT_EQ(d.histograms.size(), 1u);
    EXPECT_EQ(d.histograms[0].second.count, 1u);
    EXPECT_EQ(d.histograms[0].second.sum_ns, 70u);
    // Gauges are levels, not accumulators: the newer level passes through.
    ASSERT_EQ(d.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(d.gauges[0].second, 9.0);
}

// The snapshot/delta path the per-block TimeSeries rides (obs/timeseries
// .hpp): concurrent shard threads hammer counters and histograms WHILE the
// main thread snapshots — relaxed atomics + the registration mutex must
// keep this race-free (the obs label puts this under TSan in tsan-smoke),
// and the final delta must account for every increment exactly once.
TEST_F(ObsTest, SnapshotDeltaUnderConcurrentShardUpdates) {
    MetricsRegistry reg;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 20000;
    // Register up front so worker threads only touch the atomics.
    Counter& ops = reg.counter("c.shard_ops");
    LatencyHistogram& lat = reg.histogram("h.shard_ns");
    const MetricsSnapshot before = reg.snapshot();

    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                ops.add(1);
                // Spread samples across bucket boundaries.
                lat.record_ns(static_cast<std::uint64_t>((t + 1)) << (i % 20));
                if (i % 1000 == 0) (void)reg.snapshot();  // mid-flight readers
            }
        });
    for (std::thread& w : workers) w.join();

    const MetricsSnapshot d = delta(reg.snapshot(), before);
    EXPECT_EQ(d.counter_or("c.shard_ops"),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    ASSERT_EQ(d.histograms.size(), 1u);
    EXPECT_EQ(d.histograms[0].second.count,
              static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// Histogram deltas across power-of-two bucket boundaries: the totals
// subtract exactly even when the second block's samples land in different
// buckets than the first's.
TEST_F(ObsTest, HistogramDeltaAcrossBucketBoundaries) {
    MetricsRegistry reg;
    reg.histogram("h.lat").record_ns(255);  // bucket of width-8 values
    reg.histogram("h.lat").record_ns(256);  // first width-9 value
    const MetricsSnapshot before = reg.snapshot();
    reg.histogram("h.lat").record_ns(511);
    reg.histogram("h.lat").record_ns(512);
    reg.histogram("h.lat").record_ns(0);  // bucket 0 exactly
    const MetricsSnapshot d = delta(reg.snapshot(), before);
    ASSERT_EQ(d.histograms.size(), 1u);
    EXPECT_EQ(d.histograms[0].second.count, 3u);
    EXPECT_EQ(d.histograms[0].second.sum_ns, 1023u);
}

TEST_F(ObsTest, DeltaClampsBackwardsCounterToZero) {
    MetricsRegistry reg;
    reg.counter("c.ops").add(10);
    const MetricsSnapshot before = reg.snapshot();
    reg.reset();  // counter goes backwards between the snapshots
    reg.counter("c.ops").add(2);
    const MetricsSnapshot d = delta(reg.snapshot(), before);
    EXPECT_EQ(d.counter_or("c.ops"), 0u);  // clamped, not wrapped to ~2^64
}

// ----------------------------------------------------------------- progress

TEST_F(ObsTest, ProgressReporterDisabledIsInert) {
    set_progress_enabled(false);
    ProgressReporter p("test.run", 1000);
    EXPECT_FALSE(p.active());
    p.tick(500);
    EXPECT_EQ(p.done(), 0u);  // disabled reporter never counts
    EXPECT_EQ(p.emitted_lines(), 0u);
}

TEST_F(ObsTest, ProgressReporterRateLimitsByClock) {
    FakeClock fake;
    fake.set_ns(1'000'000);
    set_clock(&fake);
    set_progress_enabled(true);
    ProgressReporter p("test.run", 1000, "trials", /*min_interval_ns=*/100);

    p.tick(10);  // clock unmoved since construction: inside the interval
    EXPECT_EQ(p.done(), 10u);
    EXPECT_EQ(p.emitted_lines(), 0u);

    fake.advance_ns(100);  // exactly one interval elapsed
    p.tick(10);
    EXPECT_EQ(p.emitted_lines(), 1u);
    p.tick(10);  // same instant: the interval gate closes again
    EXPECT_EQ(p.emitted_lines(), 1u);

    fake.advance_ns(100);
    p.tick(10);
    EXPECT_EQ(p.emitted_lines(), 2u);
    EXPECT_EQ(p.done(), 40u);
    set_progress_enabled(false);
}

TEST_F(ObsTest, ProgressReporterFormatsAndSetsGauges) {
    FakeClock fake;
    fake.set_ns(0);
    set_clock(&fake);
    set_progress_enabled(true);
    ProgressReporter p("mc.test", 200, "trials", /*min_interval_ns=*/1);

    fake.advance_ns(1'000'000'000);  // 1 s
    p.tick(100);                     // 100 trials in 1 s
    const std::string line = p.format_line();
    EXPECT_NE(line.find("[mc.test]"), std::string::npos) << line;
    EXPECT_NE(line.find("100/200 trials"), std::string::npos) << line;
    EXPECT_NE(line.find("(50.0%)"), std::string::npos) << line;
    EXPECT_NE(line.find("100/s"), std::string::npos) << line;
    EXPECT_NE(line.find("eta 1.0s"), std::string::npos) << line;

#if MCAUTH_OBS_ENABLED
    EXPECT_DOUBLE_EQ(registry().gauge("exec.progress.done").value(), 100.0);
    EXPECT_DOUBLE_EQ(registry().gauge("exec.progress.total").value(), 200.0);
    EXPECT_DOUBLE_EQ(registry().gauge("exec.progress.rate").value(), 100.0);
    EXPECT_DOUBLE_EQ(registry().gauge("exec.progress.eta_s").value(), 1.0);
#endif
    set_progress_enabled(false);
}

// -------------------------------------------------------------------- timer

TEST_F(ObsTest, ScopedTimerRecordsFakeClockDelta) {
    FakeClock fake;
    set_clock(&fake);
    LatencyHistogram h;
    {
        ScopedTimer t(&h, "span");
        fake.advance_ns(5'000'000);  // 5 ms
    }
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.sum_ns(), 5'000'000u);
    EXPECT_EQ(h.min_ns(), 5'000'000u);
}

TEST_F(ObsTest, ScopedTimerStopIsIdempotent) {
    FakeClock fake;
    set_clock(&fake);
    LatencyHistogram h;
    ScopedTimer t(&h, "span");
    fake.advance_ns(10);
    t.stop();
    fake.advance_ns(10);
    t.stop();  // no second sample
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.sum_ns(), 10u);
}

TEST_F(ObsTest, ScopedTimerDisabledRecordsNothing) {
    set_enabled(false);
    FakeClock fake;
    set_clock(&fake);
    LatencyHistogram h;
    {
        ScopedTimer t(&h, "span");
        fake.advance_ns(100);
    }
    EXPECT_EQ(h.count(), 0u);
}

TEST_F(ObsTest, ScopedTimerFeedsTraceWhenEnabled) {
    FakeClock fake;
    fake.set_ns(1'000);
    set_clock(&fake);
    set_trace_enabled(true);
    TraceRecorder::global().clear();
    LatencyHistogram h;
    {
        ScopedTimer t(&h, "traced_span");
        fake.advance_ns(2'000);
    }
    set_trace_enabled(false);
    const auto events = TraceRecorder::global().snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].phase, 'B');
    EXPECT_EQ(events[0].ts_ns, 1'000u);
    EXPECT_EQ(events[1].phase, 'E');
    EXPECT_EQ(events[1].ts_ns, 3'000u);
    EXPECT_STREQ(events[0].name, "traced_span");
    TraceRecorder::global().clear();
}

// -------------------------------------------------------------------- trace

TEST_F(ObsTest, TraceRingWrapsKeepingNewest) {
    FakeClock fake;
    set_clock(&fake);
    TraceRecorder rec(8);
    for (std::uint64_t i = 0; i < 12; ++i) {
        fake.set_ns(i);
        rec.record("e", 'i');
    }
    EXPECT_EQ(rec.capacity(), 8u);
    EXPECT_EQ(rec.size(), 8u);
    EXPECT_EQ(rec.recorded(), 12u);
    EXPECT_EQ(rec.dropped(), 4u);
    const auto events = rec.snapshot();
    ASSERT_EQ(events.size(), 8u);
    // Oldest retained first: timestamps 4..11.
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].ts_ns, i + 4) << "slot " << i;
    rec.clear();
    EXPECT_EQ(rec.size(), 0u);
    EXPECT_EQ(rec.dropped(), 0u);
}

TEST_F(ObsTest, TraceJsonIsChromeTraceEventSchema) {
    FakeClock fake;
    set_clock(&fake);
    TraceRecorder rec(16);
    fake.set_ns(1'500);  // 1.5 us
    rec.record("phase_a", 'B');
    fake.set_ns(4'000);
    rec.record("phase_a", 'E');
    fake.set_ns(5'000);
    rec.record("marker", 'i');

    const JsonValue root = parse_json_or_die(rec.to_json());
    ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
    ASSERT_TRUE(root.has("traceEvents"));
    const JsonValue& events = root.at("traceEvents");
    ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
    ASSERT_EQ(events.array.size(), 3u);
    for (const JsonValue& ev : events.array) {
        ASSERT_EQ(ev.kind, JsonValue::Kind::kObject);
        EXPECT_TRUE(ev.has("name"));
        EXPECT_TRUE(ev.has("cat"));
        EXPECT_TRUE(ev.has("pid"));
        EXPECT_TRUE(ev.has("tid"));
        EXPECT_TRUE(ev.has("ts"));
        ASSERT_TRUE(ev.has("ph"));
        const std::string& ph = ev.at("ph").string;
        EXPECT_TRUE(ph == "B" || ph == "E" || ph == "i") << ph;
    }
    EXPECT_EQ(events.array[0].at("name").string, "phase_a");
    EXPECT_DOUBLE_EQ(events.array[0].at("ts").number, 1.5);  // us
    EXPECT_DOUBLE_EQ(events.array[1].at("ts").number, 4.0);
    // Instant events carry thread scope.
    EXPECT_EQ(events.array[2].at("ph").string, "i");
    EXPECT_TRUE(events.array[2].has("s"));
    // An unwrapped ring reports zero drops.
    ASSERT_TRUE(root.has("dropped_events"));
    EXPECT_DOUBLE_EQ(root.at("dropped_events").number, 0.0);
}

TEST_F(ObsTest, TraceJsonCountsDroppedEventsOnWrap) {
    FakeClock fake;
    set_clock(&fake);
    TraceRecorder rec(8);
    for (std::uint64_t i = 0; i < 13; ++i) {
        fake.set_ns(i);
        rec.record("e", 'i');
    }
    const JsonValue root = parse_json_or_die(rec.to_json());
    ASSERT_TRUE(root.has("dropped_events"));
    EXPECT_DOUBLE_EQ(root.at("dropped_events").number, 5.0);
    EXPECT_EQ(root.at("traceEvents").array.size(), 8u);
}

TEST_F(ObsTest, StructuredEventRoundTripsThroughSnapshotAndJson) {
    FakeClock fake;
    set_clock(&fake);
    fake.set_ns(2'000);
    TraceRecorder rec(8);
    rec.record_structured("PacketVerified", 3, /*block=*/7, /*index=*/2,
                          /*actor=*/4, /*value=*/0.625, /*ts_ns=*/2'000);
    rec.record("plain", 'i');  // unstructured events carry no args

    const auto events = rec.snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].id, 3u);
    EXPECT_EQ(events[0].block, 7u);
    EXPECT_EQ(events[0].index, 2u);
    EXPECT_EQ(events[0].actor, 4u);
    EXPECT_DOUBLE_EQ(events[0].value, 0.625);
    EXPECT_EQ(events[1].id, 0u);

    const JsonValue root = parse_json_or_die(rec.to_json());
    const JsonValue& traced = root.at("traceEvents");
    ASSERT_EQ(traced.array.size(), 2u);
    ASSERT_TRUE(traced.array[0].has("args"));
    const JsonValue& args = traced.array[0].at("args");
    EXPECT_DOUBLE_EQ(args.at("id").number, 3.0);
    EXPECT_DOUBLE_EQ(args.at("block").number, 7.0);
    EXPECT_DOUBLE_EQ(args.at("index").number, 2.0);
    EXPECT_DOUBLE_EQ(args.at("actor").number, 4.0);
    EXPECT_DOUBLE_EQ(args.at("value").number, 0.625);
    EXPECT_FALSE(traced.array[1].has("args"));
}

// ------------------------------------------------------------------- macros

#if MCAUTH_OBS_ENABLED

TEST_F(ObsTest, MacrosFeedTheGlobalRegistry) {
    registry().counter("test_obs.macro.ops").reset();
    registry().histogram("test_obs.macro.span").reset();
    FakeClock fake;
    set_clock(&fake);

    MCAUTH_OBS_COUNT("test_obs.macro.ops");
    MCAUTH_OBS_COUNT_N("test_obs.macro.ops", 4);
    MCAUTH_OBS_GAUGE_SET("test_obs.macro.level", 9);
    {
        MCAUTH_OBS_SPAN("test_obs.macro.span");
        fake.advance_ns(77);
    }
    EXPECT_EQ(registry().counter("test_obs.macro.ops").value(), 5u);
    EXPECT_DOUBLE_EQ(registry().gauge("test_obs.macro.level").value(), 9.0);
    EXPECT_EQ(registry().histogram("test_obs.macro.span").count(), 1u);
    EXPECT_EQ(registry().histogram("test_obs.macro.span").sum_ns(), 77u);
}

TEST_F(ObsTest, MacrosRespectRuntimeDisable) {
    registry().counter("test_obs.disabled.ops").reset();
    set_enabled(false);
    MCAUTH_OBS_COUNT("test_obs.disabled.ops");
    set_enabled(true);
    EXPECT_EQ(registry().counter("test_obs.disabled.ops").value(), 0u);
}

#endif  // MCAUTH_OBS_ENABLED

}  // namespace
}  // namespace mcauth::obs

// The adaptive-authentication control loop (DESIGN.md §10).
//
// Unit level: EWMA + Gilbert-Elliott estimators, feedback wire format,
// last-writer-wins aggregation, starvation decay, controller hysteresis /
// redesign budget / sign-copies escalation, channel-scored greedy design.
// System level: cross-topology verification at one StreamingVerifier and
// the closed loop re-converging after a loss-regime switch.
#include <gtest/gtest.h>

#include <cmath>

#include "adapt/controller.hpp"
#include "adapt/estimator.hpp"
#include "adapt/feedback.hpp"
#include "adapt/monitor.hpp"
#include "adapt/session.hpp"
#include "core/authprob.hpp"
#include "core/topologies.hpp"
#include "crypto/signature.hpp"
#include "design/constructors.hpp"
#include "net/loss.hpp"
#include "util/rng.hpp"

namespace mcauth::adapt {
namespace {

// ------------------------------------------------------------- estimators

TEST(EwmaLossEstimator, TracksStepChange) {
    EwmaLossEstimator est(0.3, 0.1);
    for (int i = 0; i < 30; ++i) est.observe(100, 5);
    EXPECT_NEAR(est.loss_rate(), 0.05, 0.01);
    for (int i = 0; i < 30; ++i) est.observe(100, 30);
    EXPECT_NEAR(est.loss_rate(), 0.30, 0.01);
    EXPECT_EQ(est.samples(), 6000u);
}

TEST(EwmaLossEstimator, DecayTowardPrior) {
    EwmaLossEstimator est(0.3, 0.0);
    for (int i = 0; i < 30; ++i) est.observe(100, 5);
    for (int i = 0; i < 50; ++i) est.decay_toward(0.3, 0.25);
    EXPECT_NEAR(est.loss_rate(), 0.3, 0.01);
}

TEST(EwmaLossEstimator, IgnoresEmptyWindows) {
    EwmaLossEstimator est(0.5, 0.2);
    est.observe(0, 0);
    EXPECT_DOUBLE_EQ(est.loss_rate(), 0.2);
    EXPECT_EQ(est.samples(), 0u);
}

TEST(GilbertElliottEstimator, RecoversChannelParameters) {
    // Ground truth: 25% stationary loss in bursts of mean length 6.
    const auto truth = GilbertElliottLoss::from_rate_and_burst(0.25, 6.0);
    auto channel = truth.clone();
    Rng rng(42);
    GilbertElliottEstimator est;
    for (int i = 0; i < 200000; ++i) est.observe_packet(channel->lose_next(rng));

    const ChannelEstimate fit = est.estimate();
    EXPECT_NEAR(fit.loss_rate, 0.25, 0.02);
    EXPECT_NEAR(fit.mean_burst, 6.0, 0.5);
    EXPECT_NEAR(fit.p_bg, 1.0 / 6.0, 0.02);          // exit rate = 1/burst
    EXPECT_NEAR(fit.p_gb, 0.25 / 0.75 / 6.0, 0.01);  // entry rate
    EXPECT_EQ(fit.samples, 200000u);
}

TEST(GilbertElliottEstimator, IndependentLossReadsAsBurstOne) {
    BernoulliLoss bernoulli(0.2);
    auto channel = bernoulli.clone();
    Rng rng(7);
    GilbertElliottEstimator est;
    for (int i = 0; i < 100000; ++i) est.observe_packet(channel->lose_next(rng));
    const ChannelEstimate fit = est.estimate();
    EXPECT_NEAR(fit.loss_rate, 0.2, 0.02);
    // Independent losses still chain occasionally: mean run = 1/(1-p).
    EXPECT_NEAR(fit.mean_burst, 1.0 / 0.8, 0.05);
}

TEST(GilbertElliottEstimator, NoLossesMeansCleanChannel) {
    GilbertElliottEstimator est;
    for (int i = 0; i < 100; ++i) est.observe_packet(false);
    const ChannelEstimate fit = est.estimate();
    EXPECT_EQ(fit.loss_rate, 0.0);
    EXPECT_EQ(fit.mean_burst, 1.0);
    EXPECT_EQ(fit.samples, 100u);
    // Zero-loss leaves p_gb unconstrained: the fit is not identifiable.
    EXPECT_FALSE(fit.identifiable);
}

// ---------------------------------------------- degenerate moment windows
//
// The moment fit divides by good_ and runs_; these regressions pin down
// that the all-loss / zero-loss / decayed-away corners produce finite,
// clamped estimates with identifiable=false instead of NaN/Inf/denormals
// leaking into feedback reports and redesign decisions.

TEST(GilbertElliottEstimator, AllLossWindowStaysFiniteAndUnidentifiable) {
    GilbertElliottEstimator est;
    for (int i = 0; i < 64; ++i) est.observe_packet(true);
    const ChannelEstimate fit = est.estimate();
    EXPECT_TRUE(std::isfinite(fit.loss_rate));
    EXPECT_TRUE(std::isfinite(fit.mean_burst));
    EXPECT_TRUE(std::isfinite(fit.p_gb));
    EXPECT_TRUE(std::isfinite(fit.p_bg));
    EXPECT_GE(fit.loss_rate, 0.0);
    EXPECT_LE(fit.loss_rate, 1.0);
    EXPECT_GE(fit.mean_burst, 1.0);
    // good_ == 0: p_gb was never constrained by an observed good packet.
    EXPECT_FALSE(fit.identifiable);
}

TEST(GilbertElliottEstimator, SingleLossRunIsIdentifiableAndFinite) {
    GilbertElliottEstimator est;
    est.observe_packet(false);
    est.observe_packet(true);
    est.observe_packet(true);
    est.observe_packet(false);
    const ChannelEstimate fit = est.estimate();
    EXPECT_TRUE(fit.identifiable);
    EXPECT_TRUE(std::isfinite(fit.p_gb));
    EXPECT_TRUE(std::isfinite(fit.p_bg));
    EXPECT_NEAR(fit.loss_rate, 0.5, 1e-12);
    EXPECT_NEAR(fit.mean_burst, 2.0, 1e-12);
}

TEST(GilbertElliottEstimator, DecayFlushesStatisticsToExactZero) {
    GilbertElliottEstimator est;
    est.observe_packet(true);
    est.observe_packet(false);
    // Hundreds of decay rounds with no fresh data used to drive the run
    // statistics into denormal territory — ratios of two denormals are
    // garbage. They must flush to exact zero and read as the clean channel.
    for (int i = 0; i < 5000; ++i) est.decay(0.9);
    EXPECT_EQ(est.lost_packets(), 0.0);
    EXPECT_EQ(est.loss_runs(), 0.0);
    const ChannelEstimate fit = est.estimate();
    EXPECT_EQ(fit.loss_rate, 0.0);
    EXPECT_EQ(fit.mean_burst, 1.0);
    EXPECT_FALSE(fit.identifiable);
    EXPECT_TRUE(std::isfinite(fit.p_gb));
    EXPECT_TRUE(std::isfinite(fit.p_bg));
}

TEST(GilbertElliottEstimator, MeanBurstNeverBelowOne) {
    // decay() between a run's packets can leave lost_ < runs_; the fit must
    // clamp mean_burst at 1 rather than report sub-packet bursts.
    GilbertElliottEstimator est;
    est.observe_packet(true);
    est.decay(0.25);
    est.observe_packet(false);
    const ChannelEstimate fit = est.estimate();
    EXPECT_GE(fit.mean_burst, 1.0);
    EXPECT_TRUE(std::isfinite(fit.mean_burst));
}

TEST(ReceiverMonitor, ChannelFallsBackToEwmaOnAllLossWindows) {
    ReceiverMonitor monitor(0);
    // Every packet of every block lost: the GE fit has no good packets to
    // constrain p_gb, so channel() must report the EWMA rate with
    // independent-loss burst structure instead of the pinned moment fit.
    const std::vector<bool> received(32, false);
    for (std::uint32_t b = 0; b < 8; ++b) monitor.on_block(b, received, false);
    const ChannelEstimate est = monitor.channel();
    EXPECT_FALSE(est.identifiable);
    EXPECT_NEAR(est.loss_rate, monitor.rate().loss_rate(), 1e-12);
    EXPECT_EQ(est.mean_burst, 1.0);
    EXPECT_TRUE(std::isfinite(est.p_gb));
    EXPECT_TRUE(std::isfinite(est.p_bg));
    EXPECT_GT(est.loss_rate, 0.5);  // EWMA did move toward the carnage
}

TEST(ReceiverMonitor, ChannelUsesMomentFitWhenIdentifiable) {
    ReceiverMonitor monitor(0);
    std::vector<bool> received(32, true);
    received[10] = received[11] = received[12] = false;  // one 3-burst
    for (std::uint32_t b = 0; b < 8; ++b) monitor.on_block(b, received, true);
    const ChannelEstimate est = monitor.channel();
    EXPECT_TRUE(est.identifiable);
    EXPECT_NEAR(est.mean_burst, 3.0, 0.2);
}

// --------------------------------------------------------------- feedback

TEST(FeedbackReport, EncodeDecodeRoundTrip) {
    FeedbackReport r;
    r.receiver_id = 3;
    r.seq = 17;
    r.last_block = 1200;
    r.window_packets = 512;
    r.window_losses = 41;
    r.est_loss_rate = 0.083;
    r.est_mean_burst = 2.75;
    r.sig_loss_streak = 2;

    const auto wire = r.encode();
    EXPECT_EQ(wire.size(), FeedbackReport::kWireSize);
    const auto back = FeedbackReport::decode(wire.data(), wire.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->receiver_id, 3u);
    EXPECT_EQ(back->seq, 17u);
    EXPECT_EQ(back->last_block, 1200u);
    EXPECT_EQ(back->window_packets, 512u);
    EXPECT_EQ(back->window_losses, 41u);
    EXPECT_DOUBLE_EQ(back->est_loss_rate, 0.083);
    EXPECT_DOUBLE_EQ(back->est_mean_burst, 2.75);
    EXPECT_EQ(back->sig_loss_streak, 2u);
}

TEST(FeedbackReport, DecodeRejectsGarbage) {
    FeedbackReport r;
    r.est_loss_rate = 0.5;
    auto wire = r.encode();
    EXPECT_FALSE(FeedbackReport::decode(wire.data(), wire.size() - 1).has_value());
    EXPECT_FALSE(FeedbackReport::decode(nullptr, FeedbackReport::kWireSize).has_value());

    // Corrupt the loss-rate field into something out of range.
    FeedbackReport bad = r;
    bad.est_loss_rate = 7.5;
    auto bad_wire = bad.encode();
    EXPECT_FALSE(FeedbackReport::decode(bad_wire.data(), bad_wire.size()).has_value());
}

FeedbackReport make_report(std::uint32_t id, std::uint32_t seq, std::uint32_t block,
                           double loss, double burst = 1.0, std::uint32_t streak = 0) {
    FeedbackReport r;
    r.receiver_id = id;
    r.seq = seq;
    r.last_block = block;
    r.window_packets = 100;
    r.window_losses = static_cast<std::uint32_t>(100 * loss);
    r.est_loss_rate = loss;
    r.est_mean_burst = burst;
    r.sig_loss_streak = streak;
    return r;
}

TEST(FeedbackAggregator, LastWriterWinsPerReceiver) {
    FeedbackAggregator agg;
    EXPECT_TRUE(agg.on_report(make_report(0, 5, 10, 0.1)));
    EXPECT_FALSE(agg.on_report(make_report(0, 5, 10, 0.4)));  // duplicate seq
    EXPECT_FALSE(agg.on_report(make_report(0, 3, 12, 0.4)));  // reordered: older
    EXPECT_TRUE(agg.on_report(make_report(0, 6, 11, 0.2)));
    EXPECT_EQ(agg.stale_rejections(), 2u);

    const auto fused = agg.aggregate(11);
    EXPECT_FALSE(fused.starved);
    EXPECT_DOUBLE_EQ(fused.loss_rate, 0.2);
}

TEST(FeedbackAggregator, WorstFreshReceiverWins) {
    FeedbackAggregator agg;
    agg.on_report(make_report(0, 1, 20, 0.1, 1.2));
    agg.on_report(make_report(1, 1, 20, 0.35, 4.0, 3));
    agg.on_report(make_report(2, 1, 20, 0.2, 2.0));
    const auto fused = agg.aggregate(21);
    EXPECT_EQ(fused.fresh_receivers, 3u);
    EXPECT_DOUBLE_EQ(fused.loss_rate, 0.35);
    EXPECT_DOUBLE_EQ(fused.mean_burst, 4.0);   // burst travels with the worst receiver
    EXPECT_EQ(fused.max_sig_streak, 3u);
}

TEST(FeedbackAggregator, StarvationDecaysTowardConservativePrior) {
    FeedbackAggregator::Options opts;
    opts.conservative_prior = 0.3;
    opts.freshness_blocks = 4;
    FeedbackAggregator agg(opts);
    agg.on_report(make_report(0, 1, 10, 0.05));

    auto fresh = agg.aggregate(12);
    EXPECT_FALSE(fresh.starved);
    EXPECT_DOUBLE_EQ(fresh.loss_rate, 0.05);

    // Receiver goes silent; its report ages out and the fused estimate
    // must creep toward the conservative prior, not stay sunny.
    auto stale = agg.aggregate(50, 0.25);
    EXPECT_TRUE(stale.starved);
    EXPECT_GT(stale.loss_rate, 0.05);
    for (int i = 0; i < 40; ++i) stale = agg.aggregate(50 + i, 0.25);
    EXPECT_NEAR(stale.loss_rate, 0.3, 0.01);
}

// ---------------------------------------------------------------- monitor

TEST(ReceiverMonitor, ReportsOnCadenceWithSigStreak) {
    ReceiverMonitor::Options opts;
    opts.report_every_blocks = 2;
    ReceiverMonitor mon(7, opts);

    const std::vector<bool> half_lost = {true, false, true, false};
    mon.on_block(0, half_lost, /*signature_seen=*/false);
    EXPECT_FALSE(mon.maybe_report().has_value());
    mon.on_block(1, half_lost, /*signature_seen=*/false);
    const auto report = mon.maybe_report();
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->receiver_id, 7u);
    EXPECT_EQ(report->seq, 1u);
    EXPECT_EQ(report->last_block, 1u);
    EXPECT_EQ(report->window_packets, 8u);
    EXPECT_EQ(report->window_losses, 4u);
    EXPECT_EQ(report->sig_loss_streak, 2u);

    mon.on_block(2, {true, true, true, true}, /*signature_seen=*/true);
    mon.on_block(3, {true, true, true, true}, /*signature_seen=*/true);
    const auto second = mon.maybe_report();
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->seq, 2u);
    EXPECT_EQ(second->sig_loss_streak, 0u);
    EXPECT_EQ(second->window_packets, 8u);
    EXPECT_EQ(second->window_losses, 0u);
}

// ------------------------------------------------------------- controller

AdaptiveOptions controller_opts() {
    AdaptiveOptions o;
    o.target_q_min = 0.9;
    o.design_margin = 0.05;
    o.hysteresis = 0.03;
    o.min_blocks_between_redesigns = 4;
    o.feedback_timeout_blocks = 8;
    o.mc_trials = 256;
    return o;
}

TEST(AdaptiveController, FirstBoundaryEstablishesBaselineDesign) {
    AdaptiveController ctrl(controller_opts(), 99);
    EXPECT_TRUE(ctrl.on_block_boundary(0));
    EXPECT_EQ(ctrl.redesigns(), 1u);
    const DependenceGraph dg = ctrl.topology()(32);
    EXPECT_TRUE(dg.is_valid());
    EXPECT_EQ(dg.packet_count(), 32u);
}

TEST(AdaptiveController, HysteresisAbsorbsSmallDrift) {
    AdaptiveController ctrl(controller_opts(), 99);
    ctrl.on_feedback(make_report(0, 1, 0, 0.20));
    EXPECT_TRUE(ctrl.on_block_boundary(1));
    EXPECT_DOUBLE_EQ(ctrl.designed_for_loss(), 0.20);

    // +-hysteresis drift: no new design, no suppression counter (the dead
    // band absorbed it, the budget never came into play).
    ctrl.on_feedback(make_report(0, 2, 8, 0.22));
    EXPECT_FALSE(ctrl.on_block_boundary(9));
    ctrl.on_feedback(make_report(0, 3, 16, 0.18));
    EXPECT_FALSE(ctrl.on_block_boundary(17));
    EXPECT_EQ(ctrl.redesigns(), 1u);
    EXPECT_EQ(ctrl.suppressed(), 0u);

    // Past the dead band: redesign fires.
    ctrl.on_feedback(make_report(0, 4, 24, 0.35));
    EXPECT_TRUE(ctrl.on_block_boundary(25));
    EXPECT_EQ(ctrl.redesigns(), 2u);
    EXPECT_DOUBLE_EQ(ctrl.designed_for_loss(), 0.35);
}

TEST(AdaptiveController, RedesignBudgetThrottlesThrash) {
    AdaptiveController ctrl(controller_opts(), 99);
    EXPECT_TRUE(ctrl.on_block_boundary(0));
    // Loss estimate swings wildly every block; only one redesign per
    // min_blocks_between_redesigns may land.
    std::uint32_t seq = 1;
    for (std::uint32_t b = 1; b <= 8; ++b) {
        ctrl.on_feedback(make_report(0, seq++, b, b % 2 ? 0.45 : 0.05));
        ctrl.on_block_boundary(b);
    }
    // Baseline at block 0 (conservative prior 0.3), then only block 4's
    // swing lands (blocks 1-3, 5, 7 want a redesign but are inside the
    // budget window; 6 and 8 sit at the designed-for rate).
    EXPECT_EQ(ctrl.redesigns(), 2u);
    EXPECT_EQ(ctrl.suppressed(), 5u);
}

TEST(AdaptiveController, SignatureStreakEscalatesAndRelaxes) {
    AdaptiveOptions o = controller_opts();
    o.base_sign_copies = 3;
    o.max_sign_copies = 8;
    o.sig_streak_escalate = 2;
    AdaptiveController ctrl(o, 5);
    EXPECT_EQ(ctrl.sign_copies(), 3u);

    ctrl.on_feedback(make_report(0, 1, 0, 0.1, 1.0, /*streak=*/2));
    ctrl.on_block_boundary(1);
    EXPECT_EQ(ctrl.sign_copies(), 6u);
    ctrl.on_feedback(make_report(0, 2, 2, 0.1, 1.0, /*streak=*/3));
    ctrl.on_block_boundary(3);
    EXPECT_EQ(ctrl.sign_copies(), 8u);  // clamped at max

    ctrl.on_feedback(make_report(0, 3, 4, 0.1, 1.0, /*streak=*/0));
    ctrl.on_block_boundary(5);
    EXPECT_EQ(ctrl.sign_copies(), 4u);  // halving steps back toward base
    ctrl.on_feedback(make_report(0, 4, 6, 0.1, 1.0, /*streak=*/0));
    ctrl.on_block_boundary(7);
    EXPECT_EQ(ctrl.sign_copies(), 3u);
}

TEST(AdaptiveController, StarvationDrivesDesignTowardPrior) {
    AdaptiveOptions o = controller_opts();
    o.conservative_prior = 0.3;
    AdaptiveController ctrl(o, 11);
    ctrl.on_feedback(make_report(0, 1, 0, 0.05));
    ctrl.on_block_boundary(1);
    EXPECT_DOUBLE_EQ(ctrl.designed_for_loss(), 0.05);

    // Feedback blackout: boundaries advance with no reports. The aggregate
    // decays to the conservative prior and the design follows it up.
    for (std::uint32_t b = 12; b < 60; b += 4) ctrl.on_block_boundary(b);
    EXPECT_NEAR(ctrl.estimated_loss(), 0.3, 0.02);
    EXPECT_NEAR(ctrl.designed_for_loss(), 0.3, 0.05);
    EXPECT_GE(ctrl.redesigns(), 2u);
}

TEST(AdaptiveController, BurstyFeedbackSwitchesToChannelScoredDesign) {
    AdaptiveOptions o = controller_opts();
    o.burst_threshold = 1.75;
    o.mc_trials = 256;
    AdaptiveController ctrl(o, 21);
    ctrl.on_feedback(make_report(0, 1, 0, 0.2, /*burst=*/1.1));
    ctrl.on_block_boundary(1);
    EXPECT_FALSE(ctrl.last_design_bursty());

    ctrl.on_feedback(make_report(0, 2, 5, 0.2, /*burst=*/4.0));
    EXPECT_TRUE(ctrl.on_block_boundary(6));  // regime change forces redesign
    EXPECT_TRUE(ctrl.last_design_bursty());
    const DependenceGraph dg = ctrl.topology()(48);
    EXPECT_TRUE(dg.is_valid());
    EXPECT_GT(dg.graph().edge_count(), 47u);  // spine + augmentation
}

TEST(AdaptiveController, FactorySurvivesLaterRedesigns) {
    // A lower target keeps the calm design well short of saturation, so
    // the two designs differ measurably in edge count.
    AdaptiveOptions o = controller_opts();
    o.target_q_min = 0.85;
    AdaptiveController ctrl(o, 31);
    ctrl.on_feedback(make_report(0, 1, 0, 0.05));
    ctrl.on_block_boundary(0);
    auto factory = ctrl.topology();
    const std::size_t edges_before = factory(32).graph().edge_count();

    ctrl.on_feedback(make_report(0, 2, 4, 0.45));
    ctrl.on_block_boundary(5);
    // The old factory still serves its cached (old) design; the new one
    // reflects the redesign.
    EXPECT_EQ(factory(32).graph().edge_count(), edges_before);
    EXPECT_GT(ctrl.topology()(32).graph().edge_count(), edges_before);
}

// --------------------------------------------------- channel-scored design

TEST(DesignGreedyChannel, MeetsTargetUnderBurstLoss) {
    DesignGoal goal;
    goal.n = 64;
    goal.p = 0.2;
    goal.target_q_min = 0.9;
    const auto channel = GilbertElliottLoss::from_rate_and_burst(0.2, 4.0);
    const DependenceGraph dg = design_greedy_channel(goal, channel, 777, 512);
    ASSERT_TRUE(dg.is_valid());

    // Evaluate with an independent seed and a larger trial budget.
    const auto check = monte_carlo_auth_prob(dg, channel, 12345, 4096);
    EXPECT_GE(check.q_min, goal.target_q_min - 0.03);
}

TEST(DesignGreedyChannel, BurstAwareHoldsUpAtEqualEdgeBudget) {
    // Same stationary rate, bursty channel, and a binding edge budget
    // (neither design can reach the target — both spend the full budget):
    // the MC-scored design's edge placement must be no worse under the
    // real channel than the recurrence-scored one's.
    DesignGoal goal;
    goal.n = 64;
    goal.p = 0.25;
    goal.target_q_min = 0.999;  // unreachable: forces both to the cap
    GreedyDesignOptions opts;
    opts.max_edges = 80;  // spine 63 + 17 discretionary edges
    const auto channel = GilbertElliottLoss::from_rate_and_burst(0.25, 6.0);

    const DependenceGraph burst_aware = design_greedy_channel(goal, channel, 777, 512, opts);
    const DependenceGraph bernoulli = design_greedy(goal, opts);
    EXPECT_LE(burst_aware.graph().edge_count(), 80u);
    EXPECT_LE(bernoulli.graph().edge_count(), 80u);

    const auto qa = monte_carlo_auth_prob(burst_aware, channel, 999, 8192);
    const auto qb = monte_carlo_auth_prob(bernoulli, channel, 999, 8192);
    EXPECT_GE(qa.q_min, qb.q_min - 0.02);
}

TEST(DesignGreedyChannel, RespectsEdgeCap) {
    DesignGoal goal;
    goal.n = 32;
    goal.p = 0.4;
    goal.target_q_min = 0.99;
    GreedyDesignOptions opts;
    opts.max_edges = 40;
    const auto channel = GilbertElliottLoss::from_rate_and_burst(0.4, 3.0);
    const DependenceGraph dg = design_greedy_channel(goal, channel, 1, 128, opts);
    EXPECT_LE(dg.graph().edge_count(), 40u);
    EXPECT_TRUE(dg.is_valid());
}

// ----------------------------------------------------------- closed loop

TEST(AdaptiveSessionTest, CrossTopologyBlocksVerifyAtOneVerifier) {
    // The sender redesigns mid-stream; one StreamingVerifier (canonical
    // spine config) must authenticate blocks from BOTH topologies on a
    // lossless channel — the no-out-of-band-agreement property the whole
    // adaptive scheme rests on.
    Rng srng(5);
    MerkleWotsSigner signer(srng, 8);

    AdaptiveOptions copts = controller_opts();
    AdaptiveController ctrl(copts, 123);
    ctrl.on_block_boundary(0);

    HashChainConfig tx;
    tx.topology = ctrl.topology();
    tx.block_size = 16;
    StreamingAuthenticator sender(tx, signer, {16, 2, 1e9});

    HashChainConfig rx;
    rx.topology = [](std::size_t n) { return make_offset_scheme(n, {1}); };
    rx.block_size = 16;
    StreamingVerifier verifier(rx, signer.make_verifier());

    Rng rng(9);
    std::size_t authenticated = 0;
    for (int block = 0; block < 4; ++block) {
        if (block == 2) {
            // Mid-stream redesign to a much denser graph.
            ctrl.on_feedback(make_report(0, 1, 4, 0.45, 5.0));
            ASSERT_TRUE(ctrl.on_block_boundary(8));
            sender.set_topology(ctrl.topology());
        }
        std::vector<AuthPacket> packets;
        for (int i = 0; i < 16; ++i) {
            auto cut = sender.push(rng.bytes(32), 0.01 * i);
            if (!cut.empty()) packets = std::move(cut);
        }
        ASSERT_EQ(packets.size(), 16u);
        for (const AuthPacket& pkt : packets)
            for (const VerifyEvent& ev : verifier.on_packet(pkt))
                if (ev.status == VerifyStatus::kAuthenticated) ++authenticated;
    }
    EXPECT_EQ(authenticated, 64u);  // every packet of every block, both designs
    EXPECT_EQ(verifier.finish_all().size(), 0u);
}

TEST(AdaptiveSessionTest, ClosedLoopReconvergesAfterRegimeSwitch) {
    Rng srng(3);
    MerkleWotsSigner signer(srng, 128);

    SessionOptions opts;
    opts.receivers = 3;
    opts.block_size = 32;
    opts.payload_bytes = 32;
    opts.seed = 2024;
    opts.feedback_loss = 0.1;
    opts.controller = controller_opts();
    opts.monitor.report_every_blocks = 2;
    AdaptiveSession session(opts, signer);

    // Calm regime: converge, then measure.
    const BernoulliLoss calm(0.05);
    session.run_window(calm, 8);
    const WindowStats calm_stats = session.run_window(calm, 16);
    EXPECT_NEAR(calm_stats.estimated_loss, 0.05, 0.04);
    EXPECT_GE(calm_stats.q_min, opts.controller.target_q_min - 0.02);

    // Regime switch to heavy loss: the loop must re-estimate, redesign,
    // and still hold the target after convergence.
    const BernoulliLoss storm(0.30);
    const WindowStats transition = session.run_window(storm, 10);
    EXPECT_GE(transition.redesigns, 1u);
    const WindowStats storm_stats = session.run_window(storm, 16);
    // The aggregate is worst-of-receivers by design, so it sits above the
    // true rate; what matters is that it left the calm regime and did not
    // run away.
    EXPECT_GE(storm_stats.estimated_loss, 0.24);
    EXPECT_LE(storm_stats.estimated_loss, 0.45);
    EXPECT_GE(storm_stats.q_min, opts.controller.target_q_min - 0.02);
    EXPECT_NEAR(storm_stats.true_loss, 0.30, 0.04);
}

TEST(AdaptiveSessionTest, FeedbackBlackoutFallsBackToConservativeDesign) {
    Rng srng(4);
    MerkleWotsSigner signer(srng, 64);

    SessionOptions opts;
    opts.receivers = 2;
    opts.block_size = 32;
    opts.payload_bytes = 32;
    opts.seed = 55;
    opts.feedback_loss = 0.0;
    opts.controller = controller_opts();
    opts.controller.conservative_prior = 0.3;
    AdaptiveSession session(opts, signer);

    const BernoulliLoss calm(0.05);
    session.run_window(calm, 8);
    EXPECT_NEAR(session.controller().estimated_loss(), 0.05, 0.04);

    // Total NACK blackout: no report gets through. The design must drift
    // to the conservative prior, not stay at the sunny estimate.
    session.set_feedback_loss(1.0);
    const WindowStats blackout = session.run_window(calm, 24);
    EXPECT_EQ(blackout.feedback_delivered, 0u);
    EXPECT_GT(blackout.feedback_sent, 0u);
    EXPECT_NEAR(session.controller().estimated_loss(), 0.3, 0.03);
    EXPECT_NEAR(session.controller().designed_for_loss(), 0.3, 0.05);
}

TEST(AdaptiveSessionTest, StaticBaselineNeverRedesigns) {
    Rng srng(6);
    MerkleWotsSigner signer(srng, 64);

    SessionOptions opts;
    opts.receivers = 2;
    opts.block_size = 32;
    opts.payload_bytes = 32;
    opts.seed = 77;
    opts.adaptive = false;
    opts.controller = controller_opts();
    AdaptiveSession session(opts, signer);

    const BernoulliLoss calm(0.05);
    const WindowStats a = session.run_window(calm, 8);
    const BernoulliLoss storm(0.4);
    const WindowStats b = session.run_window(storm, 8);
    EXPECT_EQ(a.redesigns + b.redesigns, 0u);
    EXPECT_EQ(a.feedback_sent + b.feedback_sent, 0u);
    EXPECT_DOUBLE_EQ(a.edges_per_packet, b.edges_per_packet);
}

TEST(AdaptiveSessionTest, AdaptiveHoldsTargetWhereCalmStaticFails) {
    // The tentpole claim in miniature: a static design sized for the calm
    // channel collapses when the loss regime drifts; the adaptive loop
    // tracks the drift and keeps q_min at target. A lower target keeps
    // the calm design sparse enough to have something to lose.
    SessionOptions opts;
    opts.receivers = 3;
    opts.block_size = 32;
    opts.payload_bytes = 32;
    opts.feedback_loss = 0.1;
    opts.controller = controller_opts();
    opts.controller.target_q_min = 0.85;
    opts.controller.conservative_prior = 0.05;  // "designed for calm"

    Rng srng_static(8);
    MerkleWotsSigner signer_static(srng_static, 64);
    SessionOptions static_opts = opts;
    static_opts.adaptive = false;
    static_opts.seed = 501;
    AdaptiveSession static_session(static_opts, signer_static);

    Rng srng_adaptive(8);
    MerkleWotsSigner signer_adaptive(srng_adaptive, 64);
    SessionOptions adaptive_opts = opts;
    adaptive_opts.seed = 502;
    AdaptiveSession adaptive_session(adaptive_opts, signer_adaptive);

    const BernoulliLoss calm(0.05);
    const BernoulliLoss storm(0.35);
    static_session.run_window(calm, 6);
    adaptive_session.run_window(calm, 6);
    static_session.run_window(storm, 8);   // convergence window for parity
    adaptive_session.run_window(storm, 8);
    const WindowStats st = static_session.run_window(storm, 16);
    const WindowStats ad = adaptive_session.run_window(storm, 16);

    EXPECT_GE(ad.q_min, opts.controller.target_q_min - 0.02);
    EXPECT_LT(st.q_min, opts.controller.target_q_min - 0.10);
    EXPECT_GT(ad.q_min, st.q_min + 0.10);
}

}  // namespace
}  // namespace mcauth::adapt

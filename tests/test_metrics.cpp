#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/topologies.hpp"

namespace mcauth {
namespace {

SchemeParams params_with(double t_transmit) {
    SchemeParams p;
    p.hash_bytes = 16.0;
    p.signature_bytes = 128.0;
    p.t_transmit = t_transmit;
    p.sign_copies = 1.0;
    return p;
}

// --------------------------------------------------------------- overhead

TEST(Metrics, Eq2HashesPerPacket) {
    const auto dg = make_rohatgi(10);  // 9 edges
    const auto m = compute_metrics(dg, params_with(0.01));
    EXPECT_DOUBLE_EQ(m.hashes_per_packet, 0.9);
    EXPECT_EQ(m.edge_count, 9u);
}

TEST(Metrics, Eq3OverheadBytes) {
    const auto dg = make_rohatgi(10);
    const auto m = compute_metrics(dg, params_with(0.01));
    // (128 * 1 + 16 * 9) / 10
    EXPECT_DOUBLE_EQ(m.overhead_bytes_per_packet, (128.0 + 16.0 * 9.0) / 10.0);
}

TEST(Metrics, SignCopiesScaleSignatureTerm) {
    const auto dg = make_rohatgi(10);
    SchemeParams p = params_with(0.01);
    p.sign_copies = 3.0;
    const auto m = compute_metrics(dg, p);
    EXPECT_DOUBLE_EQ(m.overhead_bytes_per_packet, (128.0 * 3.0 + 16.0 * 9.0) / 10.0);
}

TEST(Metrics, MaxOutDegreeEmss) {
    const auto m = compute_metrics(make_emss(50, 3, 1), params_with(0.01));
    EXPECT_EQ(m.max_out_degree, 3u);
}

// ------------------------------------------------------------------ delay

TEST(Metrics, RohatgiHasZeroReceiverDelay) {
    // The paper's example: sign-first chains verify on arrival.
    const auto m = compute_metrics(make_rohatgi(20), params_with(0.01));
    EXPECT_DOUBLE_EQ(m.max_receiver_delay, 0.0);
}

TEST(Metrics, AuthTreeHasZeroReceiverDelay) {
    const auto m = compute_metrics(make_auth_tree(16), params_with(0.01));
    EXPECT_DOUBLE_EQ(m.max_receiver_delay, 0.0);
}

TEST(Metrics, EmssDelayIsEq4) {
    // Eq. 4: sign-last schemes wait (n - i) * T_transmit for the signature;
    // the first-sent packet (vertex n-1, position 0) waits (n-1) slots.
    const std::size_t n = 25;
    const double t = 0.02;
    const auto dg = make_emss(n, 2, 1);
    const auto m = compute_metrics(dg, params_with(t));
    EXPECT_NEAR(m.max_receiver_delay, static_cast<double>(n - 1) * t, 1e-12);
    for (VertexId v = 1; v < n; ++v) {
        const double expected =
            (static_cast<double>(n - 1) - static_cast<double>(dg.send_pos(v))) * t;
        EXPECT_NEAR(m.receiver_delay[v], expected, 1e-12) << v;
    }
}

TEST(Metrics, LatestNeededPositionBottleneck) {
    // Hand graph: root sent LAST (pos 2); v1 sent first (pos 0), v2 in the
    // middle (pos 1); edges root->v1, root->v2, v2->v1. The root sits on
    // every verification path, so both vertices wait for position 2.
    DependenceGraph dg(3, {2, 0, 1}, "hand");
    dg.add_dependence(0, 1);
    dg.add_dependence(0, 2);
    dg.add_dependence(2, 1);
    const auto latest = latest_needed_position(dg);
    EXPECT_EQ(latest[1], 2u);
    EXPECT_EQ(latest[2], 2u);
}

// ---------------------------------------------------------------- buffers

TEST(Metrics, RohatgiBuffersMatchPaperExample) {
    // §3 example: "1 hash buffer and no message buffer is needed".
    const auto m = compute_metrics(make_rohatgi(15), params_with(0.01));
    EXPECT_EQ(m.hash_buffer_span, 1u);
    EXPECT_EQ(m.message_buffer_span, 0u);
}

TEST(Metrics, EmssMessageBufferSpansLongestBackLink) {
    // E_{2,d}: hashes carried 1 and 1+d transmissions later.
    const auto m = compute_metrics(make_emss(40, 2, 5), params_with(0.01));
    EXPECT_EQ(m.hash_buffer_span, 0u);
    EXPECT_EQ(m.message_buffer_span, 6u);
}

TEST(Metrics, AugmentedChainHasBothDirections) {
    // AC embeds hashes forward (zig-zag from earlier-sent packets) and
    // backward (chain packets after), so both buffer spans are nonzero.
    const auto m = compute_metrics(make_augmented_chain(40, 3, 3), params_with(0.01));
    EXPECT_GT(m.message_buffer_span, 0u);
}

// -------------------------------------------------------------- diversity

TEST(Diversity, RohatgiChainIsAllDominators) {
    const auto d = compute_diversity(make_rohatgi(10));
    EXPECT_EQ(d.min_disjoint_paths, 1u);
    EXPECT_EQ(d.max_interior_dominators, 8u);   // farthest vertex
    EXPECT_EQ(d.critical_vertices.size(), 8u);  // every interior vertex
}

TEST(Diversity, AuthTreeHasNoCriticalVertices) {
    const auto d = compute_diversity(make_auth_tree(12));
    EXPECT_EQ(d.max_interior_dominators, 0u);
    EXPECT_TRUE(d.critical_vertices.empty());
    EXPECT_EQ(d.min_disjoint_paths, 1u);  // one direct edge each
}

TEST(Diversity, EmssDeepVerticesHaveTwoDisjointPaths) {
    const auto dg = make_emss(20, 2, 1);
    const auto d = compute_diversity(dg);
    // Root-adjacent vertices have a single (direct) path; deeper vertices
    // enjoy two vertex-disjoint routes.
    EXPECT_EQ(d.disjoint_paths[1], 1u);
    for (VertexId v = 3; v < 20; ++v) EXPECT_EQ(d.disjoint_paths[v], 2u) << v;
    EXPECT_EQ(d.max_interior_dominators, 0u);
}

TEST(Diversity, DisjointPathsNeverExceedInDegree) {
    const auto dg = make_augmented_chain(30, 3, 2);
    const auto d = compute_diversity(dg);
    for (VertexId v = 1; v < 30; ++v)
        EXPECT_LE(d.disjoint_paths[v], std::max<std::size_t>(dg.graph().in_degree(v), 1u));
}

}  // namespace
}  // namespace mcauth

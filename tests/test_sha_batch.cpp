// Batch-vs-scalar identity for the multi-buffer SHA-256 data plane.
//
// The contract (DESIGN.md §12) is byte-identity: `Sha256x8::hash_many` and
// the batch HMAC must produce exactly what the scalar `Sha256`/`hmac_sha256`
// produce, for every lane count 1..8, ragged batch tails, multi-part inputs
// and both dispatch paths (AVX2 kernel and forced-scalar fallback).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha256_batch.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"

namespace mcauth {
namespace {

std::span<const std::uint8_t> as_span(const std::vector<std::uint8_t>& v) {
    return {v.data(), v.size()};
}

/// Runs `fn` once with the hardware dispatch decision and once forced
/// scalar, so every expectation covers both code paths.
template <typename Fn>
void on_both_paths(Fn&& fn) {
    const bool prev = Sha256x8::set_forced_scalar(false);
    fn("dispatch");
    Sha256x8::set_forced_scalar(true);
    fn("forced-scalar");
    Sha256x8::set_forced_scalar(prev);
}

// ------------------------------------------------------- NIST known answers

struct ShaVector {
    const char* message;
    const char* digest;
};

constexpr ShaVector kFipsVectors[] = {
    {"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
    {"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
    {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
    {"The quick brown fox jumps over the lazy dog",
     "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"},
};

TEST(Sha256Batch, FipsVectorsAtEveryLaneCount) {
    on_both_paths([](const char* path) {
        for (std::size_t lanes = 1; lanes <= Sha256x8::kLanes; ++lanes) {
            // Fill `lanes` slots by cycling through the FIPS vectors so each
            // lane position sees each vector across the sweep.
            std::vector<HashInput> inputs(lanes);
            std::vector<const char*> want(lanes);
            for (std::size_t l = 0; l < lanes; ++l) {
                const auto& vec = kFipsVectors[l % std::size(kFipsVectors)];
                inputs[l] = HashInput(std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(vec.message),
                    std::string_view(vec.message).size()));
                want[l] = vec.digest;
            }
            std::vector<Digest256> out(lanes);
            Sha256x8::hash_many(inputs.data(), lanes, out.data());
            for (std::size_t l = 0; l < lanes; ++l)
                EXPECT_EQ(to_hex(out[l]), want[l]) << path << " lanes=" << lanes << " l=" << l;
        }
    });
}

// --------------------------------------------- randomized scalar identity

TEST(Sha256Batch, RandomRaggedBatchesMatchScalar) {
    Rng rng(42);
    on_both_paths([&](const char* path) {
        for (int round = 0; round < 20; ++round) {
            // Batch sizes straddle the 8-lane group boundary so full groups,
            // ragged tails and singleton tails all occur.
            const std::size_t count = 1 + rng.uniform_below(21);
            std::vector<std::vector<std::uint8_t>> messages(count);
            std::vector<HashInput> inputs(count);
            for (std::size_t i = 0; i < count; ++i) {
                // Lengths hit the padding edge cases around 55/56/64 as well
                // as multi-block messages.
                const std::size_t len = rng.uniform_below(300);
                messages[i] = rng.bytes(len);
                inputs[i] = HashInput(as_span(messages[i]));
            }
            std::vector<Digest256> out(count);
            Sha256x8::hash_many(inputs.data(), count, out.data());
            for (std::size_t i = 0; i < count; ++i) {
                EXPECT_EQ(out[i], Sha256::hash(as_span(messages[i])))
                    << path << " round=" << round << " i=" << i
                    << " len=" << messages[i].size();
            }
        }
    });
}

TEST(Sha256Batch, PaddingBoundaryLengths) {
    Rng rng(7);
    // Every length 0..130 in one batch: covers one-block, exactly-55,
    // exactly-56 (length spills to a second block), exactly-64 and
    // multi-block messages side by side in the same SIMD group.
    std::vector<std::vector<std::uint8_t>> messages;
    for (std::size_t len = 0; len <= 130; ++len) messages.push_back(rng.bytes(len));
    std::vector<HashInput> inputs;
    for (const auto& m : messages) inputs.emplace_back(as_span(m));
    on_both_paths([&](const char* path) {
        std::vector<Digest256> out(inputs.size());
        Sha256x8::hash_many(inputs.data(), inputs.size(), out.data());
        for (std::size_t i = 0; i < messages.size(); ++i)
            EXPECT_EQ(out[i], Sha256::hash(as_span(messages[i]))) << path << " len=" << i;
    });
}

TEST(Sha256Batch, MultiPartInputsMatchConcatenation) {
    Rng rng(11);
    on_both_paths([&](const char* path) {
        for (int round = 0; round < 10; ++round) {
            const std::size_t count = 1 + rng.uniform_below(12);
            std::vector<std::vector<std::vector<std::uint8_t>>> parts(count);
            std::vector<std::vector<std::uint8_t>> concat(count);
            std::vector<HashInput> inputs(count);
            for (std::size_t i = 0; i < count; ++i) {
                const std::size_t n_parts = 1 + rng.uniform_below(HashInput::kMaxParts);
                for (std::size_t p = 0; p < n_parts; ++p) {
                    // Include empty and >64B parts so part boundaries land on
                    // both sides of block boundaries.
                    parts[i].push_back(rng.bytes(rng.uniform_below(100)));
                    concat[i].insert(concat[i].end(), parts[i].back().begin(),
                                     parts[i].back().end());
                    inputs[i].add(as_span(parts[i].back()));
                }
            }
            std::vector<Digest256> out(count);
            Sha256x8::hash_many(inputs.data(), count, out.data());
            for (std::size_t i = 0; i < count; ++i) {
                EXPECT_EQ(out[i], Sha256::hash(as_span(concat[i])))
                    << path << " round=" << round << " i=" << i;
            }
        }
    });
}

TEST(Sha256Batch, SpanOverloadMatchesHashInputPath) {
    Rng rng(13);
    std::vector<std::vector<std::uint8_t>> messages;
    for (int i = 0; i < 11; ++i) messages.push_back(rng.bytes(10 + 17 * i));
    std::vector<std::span<const std::uint8_t>> spans;
    for (const auto& m : messages) spans.push_back(as_span(m));
    std::vector<Digest256> out(spans.size());
    Sha256x8::hash_many(spans, out.data());
    for (std::size_t i = 0; i < messages.size(); ++i)
        EXPECT_EQ(out[i], Sha256::hash(spans[i])) << i;
}

TEST(Sha256Batch, ForcedScalarTogglesAndRestores) {
    const bool prev = Sha256x8::set_forced_scalar(true);
    EXPECT_TRUE(Sha256x8::forced_scalar());
    Sha256x8::set_forced_scalar(false);
    EXPECT_FALSE(Sha256x8::forced_scalar());
    Sha256x8::set_forced_scalar(prev);
}

// -------------------------------------------------------------- batch HMAC

TEST(HmacBatch, MatchesScalarHmacAcrossKeySizes) {
    Rng rng(17);
    // Short key (padded), block-size key (used as-is) and long key (hashed
    // first) — the three normalization branches of HMAC-SHA256.
    for (std::size_t key_len : {16u, 64u, 200u}) {
        const auto key = rng.bytes(key_len);
        const HmacSha256Key prepared(as_span(key));
        on_both_paths([&](const char* path) {
            const std::size_t count = 13;
            std::vector<std::vector<std::uint8_t>> messages(count);
            std::vector<HashInput> inputs(count);
            for (std::size_t i = 0; i < count; ++i) {
                messages[i] = rng.bytes(rng.uniform_below(200));
                inputs[i] = HashInput(as_span(messages[i]));
            }
            std::vector<Digest256> out(count);
            hmac_sha256_many(prepared, inputs.data(), count, out.data());
            for (std::size_t i = 0; i < count; ++i) {
                EXPECT_EQ(out[i], hmac_sha256(as_span(key), as_span(messages[i])))
                    << path << " key_len=" << key_len << " i=" << i;
            }
        });
    }
}

TEST(HmacBatch, Rfc4231KnownAnswer) {
    // RFC 4231 test case 2 ("Jefe" / "what do ya want for nothing?").
    const std::string key_text = "Jefe";
    const std::string msg_text = "what do ya want for nothing?";
    const std::span<const std::uint8_t> key(
        reinterpret_cast<const std::uint8_t*>(key_text.data()), key_text.size());
    const std::span<const std::uint8_t> msg(
        reinterpret_cast<const std::uint8_t*>(msg_text.data()), msg_text.size());
    const HmacSha256Key prepared(key);
    HashInput input(msg);
    Digest256 out;
    hmac_sha256_many(prepared, &input, 1, &out);
    EXPECT_EQ(to_hex(out), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

}  // namespace
}  // namespace mcauth

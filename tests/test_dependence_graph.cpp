#include <gtest/gtest.h>

#include "core/dependence_graph.hpp"

namespace mcauth {
namespace {

std::vector<std::uint32_t> identity_pos(std::size_t n) {
    std::vector<std::uint32_t> pos(n);
    for (std::size_t i = 0; i < n; ++i) pos[i] = static_cast<std::uint32_t>(i);
    return pos;
}

std::vector<std::uint32_t> reversed_pos(std::size_t n) {
    std::vector<std::uint32_t> pos(n);
    for (std::size_t i = 0; i < n; ++i) pos[i] = static_cast<std::uint32_t>(n - 1 - i);
    return pos;
}

TEST(DependenceGraph, ConstructionValidatesPermutation) {
    EXPECT_THROW(DependenceGraph(3, {0, 0, 1}, "dup"), std::invalid_argument);
    EXPECT_THROW(DependenceGraph(3, {0, 1, 5}, "range"), std::invalid_argument);
    EXPECT_THROW(DependenceGraph(3, {0, 1}, "short"), std::invalid_argument);
    EXPECT_NO_THROW(DependenceGraph(3, {2, 0, 1}, "ok"));
}

TEST(DependenceGraph, SendPosLookupIsInverse) {
    const DependenceGraph dg(5, reversed_pos(5), "t");
    for (VertexId v = 0; v < 5; ++v)
        EXPECT_EQ(dg.vertex_at_send_pos(dg.send_pos(v)), v);
}

TEST(DependenceGraph, LabelIsSendPosDifference) {
    DependenceGraph dg(4, reversed_pos(4), "t");
    dg.add_dependence(0, 1);
    // vertex 0 at pos 3, vertex 1 at pos 2: label = 3 - 2 = 1 (carrier later)
    EXPECT_EQ(dg.label(0, 1), 1);
    DependenceGraph fw(4, identity_pos(4), "t");
    fw.add_dependence(0, 1);
    EXPECT_EQ(fw.label(0, 1), -1);  // carrier earlier
}

TEST(DependenceGraph, ValidityRequiresReachability) {
    DependenceGraph dg(3, identity_pos(3), "t");
    dg.add_dependence(0, 1);
    EXPECT_FALSE(dg.is_valid());
    const auto unreachable = dg.unreachable_vertices();
    ASSERT_EQ(unreachable.size(), 1u);
    EXPECT_EQ(unreachable[0], 2u);
    dg.add_dependence(1, 2);
    EXPECT_TRUE(dg.is_valid());
    EXPECT_TRUE(dg.unreachable_vertices().empty());
}

TEST(DependenceGraph, DuplicateDependenceRejected) {
    DependenceGraph dg(3, identity_pos(3), "t");
    EXPECT_TRUE(dg.add_dependence(0, 1));
    EXPECT_FALSE(dg.add_dependence(0, 1));
}

TEST(DependenceGraph, VerifiableGivenChain) {
    DependenceGraph dg(4, identity_pos(4), "chain");
    dg.add_dependence(0, 1);
    dg.add_dependence(1, 2);
    dg.add_dependence(2, 3);

    // All received: everything verifiable.
    auto v = dg.verifiable_given({true, true, true, true});
    EXPECT_TRUE(v[1] && v[2] && v[3]);

    // Middle lost: chain broken downstream of the break.
    v = dg.verifiable_given({true, true, false, true});
    EXPECT_TRUE(v[1]);
    EXPECT_FALSE(v[2]);  // lost packets are never verifiable
    EXPECT_FALSE(v[3]);  // path broken
}

TEST(DependenceGraph, VerifiableGivenDiamondSurvivesOneLoss) {
    DependenceGraph dg(4, identity_pos(4), "diamond");
    dg.add_dependence(0, 1);
    dg.add_dependence(0, 2);
    dg.add_dependence(1, 3);
    dg.add_dependence(2, 3);
    const auto v = dg.verifiable_given({true, false, true, true});
    EXPECT_TRUE(v[3]);  // survives via vertex 2
}

TEST(DependenceGraph, RootAssumedDeliveredEvenIfMarkedLost) {
    DependenceGraph dg(2, identity_pos(2), "t");
    dg.add_dependence(0, 1);
    const auto v = dg.verifiable_given({false, true});
    EXPECT_TRUE(v[1]);  // P_sign assumption (§3)
}

TEST(DependenceGraph, VerifiableGivenRejectsWrongSize) {
    DependenceGraph dg(2, identity_pos(2), "t");
    dg.add_dependence(0, 1);
    EXPECT_THROW(dg.verifiable_given({true}), std::invalid_argument);
}

TEST(DependenceGraph, SingleVertexGraphIsValid) {
    const DependenceGraph dg(1, {0}, "solo");
    EXPECT_TRUE(dg.is_valid());
    EXPECT_TRUE(dg.verifiable_given({true})[0]);
}

}  // namespace
}  // namespace mcauth

#include <gtest/gtest.h>

#include "crypto/rsa.hpp"
#include "crypto/signature.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"

namespace mcauth {
namespace {

// Key generation is the slow part; share one 512-bit pair across tests.
class RsaTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        Rng rng(1001);
        key_ = new RsaKeyPair(RsaKeyPair::generate(rng, 512));
    }
    static void TearDownTestSuite() {
        delete key_;
        key_ = nullptr;
    }
    static RsaKeyPair* key_;
};

RsaKeyPair* RsaTest::key_ = nullptr;

TEST_F(RsaTest, KeyHasRequestedModulusSize) {
    EXPECT_EQ(key_->pub.n.bit_length(), 512u);
    EXPECT_EQ(key_->pub.modulus_bytes(), 64u);
    EXPECT_EQ(key_->pub.e.to_u64(), 65537u);
}

TEST_F(RsaTest, SignVerifyRoundTrip) {
    const auto msg = ascii_bytes("stream block 42");
    const auto sig = rsa_sign(*key_, msg);
    EXPECT_EQ(sig.size(), 64u);
    EXPECT_TRUE(rsa_verify(key_->pub, msg, sig));
}

TEST_F(RsaTest, TamperedMessageFails) {
    const auto msg = ascii_bytes("stream block 42");
    const auto sig = rsa_sign(*key_, msg);
    EXPECT_FALSE(rsa_verify(key_->pub, ascii_bytes("stream block 43"), sig));
}

TEST_F(RsaTest, TamperedSignatureFails) {
    const auto msg = ascii_bytes("stream block 42");
    auto sig = rsa_sign(*key_, msg);
    sig[10] ^= 0x01;
    EXPECT_FALSE(rsa_verify(key_->pub, msg, sig));
}

TEST_F(RsaTest, WrongLengthSignatureFails) {
    const auto msg = ascii_bytes("x");
    auto sig = rsa_sign(*key_, msg);
    sig.pop_back();
    EXPECT_FALSE(rsa_verify(key_->pub, msg, sig));
}

TEST_F(RsaTest, SignatureIsDeterministic) {
    const auto msg = ascii_bytes("deterministic");
    EXPECT_EQ(rsa_sign(*key_, msg), rsa_sign(*key_, msg));
}

TEST_F(RsaTest, EmptyMessageSignable) {
    const std::vector<std::uint8_t> empty;
    const auto sig = rsa_sign(*key_, empty);
    EXPECT_TRUE(rsa_verify(key_->pub, empty, sig));
}

TEST_F(RsaTest, WrongKeyFails) {
    Rng rng(1002);
    const RsaKeyPair other = RsaKeyPair::generate(rng, 512);
    const auto msg = ascii_bytes("cross-key");
    const auto sig = rsa_sign(*key_, msg);
    EXPECT_FALSE(rsa_verify(other.pub, msg, sig));
}

TEST_F(RsaTest, SignatureValueIsInRange) {
    const auto msg = ascii_bytes("range");
    const auto sig = rsa_sign(*key_, msg);
    EXPECT_LT(Bignum::from_bytes(sig), key_->pub.n);
}

TEST_F(RsaTest, CrtComponentsAreConsistent) {
    ASSERT_TRUE(key_->has_crt());
    EXPECT_EQ(key_->p.mul(key_->q), key_->pub.n);
    EXPECT_EQ(key_->d.mod(key_->p.sub(Bignum(1))), key_->d_p);
    EXPECT_EQ(key_->d.mod(key_->q.sub(Bignum(1))), key_->d_q);
    EXPECT_EQ(Bignum::mod_mul(key_->q_inv, key_->q, key_->p), Bignum(1));
}

TEST_F(RsaTest, CrtSignatureEqualsPlainExponentiation) {
    // CRT is an optimization, not a different signature: stripping the CRT
    // fields must produce byte-identical output.
    RsaKeyPair plain = *key_;
    plain.p = plain.q = plain.d_p = plain.d_q = plain.q_inv = Bignum();
    ASSERT_FALSE(plain.has_crt());
    for (const char* msg : {"a", "block 7", "the quick brown fox"}) {
        EXPECT_EQ(rsa_sign(*key_, ascii_bytes(msg)), rsa_sign(plain, ascii_bytes(msg)))
            << msg;
    }
}

// ----------------------------------------------------- Signer interface

// ------------------------------------------------------- batch verification

using SpanVec = std::vector<std::span<const std::uint8_t>>;

TEST_F(RsaTest, BatchAllValidMatchesPerItem) {
    Rng rng(1010);
    std::vector<std::vector<std::uint8_t>> msgs;
    std::vector<std::vector<std::uint8_t>> sigs;
    for (int i = 0; i < 9; ++i) {
        msgs.push_back(rng.bytes(30 + 10 * i));
        sigs.push_back(rsa_sign(*key_, msgs.back()));
    }
    SpanVec msg_spans(msgs.begin(), msgs.end());
    SpanVec sig_spans(sigs.begin(), sigs.end());
    const auto ok = rsa_verify_batch(key_->pub, msg_spans, sig_spans);
    ASSERT_EQ(ok.size(), msgs.size());
    for (std::size_t i = 0; i < ok.size(); ++i) EXPECT_TRUE(ok[i]) << i;
}

TEST_F(RsaTest, BatchFallsBackOnOneTamperedItem) {
    Rng rng(1011);
    std::vector<std::vector<std::uint8_t>> msgs;
    std::vector<std::vector<std::uint8_t>> sigs;
    for (int i = 0; i < 6; ++i) {
        msgs.push_back(rng.bytes(50));
        sigs.push_back(rsa_sign(*key_, msgs.back()));
    }
    sigs[3][10] ^= 1;  // break exactly one signature; screen must fail
    SpanVec msg_spans(msgs.begin(), msgs.end());
    SpanVec sig_spans(sigs.begin(), sigs.end());
    const auto ok = rsa_verify_batch(key_->pub, msg_spans, sig_spans);
    for (std::size_t i = 0; i < ok.size(); ++i)
        EXPECT_EQ(ok[i], i != 3) << i;
}

TEST_F(RsaTest, BatchRejectsMalformedWithoutPoisoningOthers) {
    Rng rng(1012);
    std::vector<std::vector<std::uint8_t>> msgs;
    std::vector<std::vector<std::uint8_t>> sigs;
    for (int i = 0; i < 4; ++i) {
        msgs.push_back(rng.bytes(40));
        sigs.push_back(rsa_sign(*key_, msgs.back()));
    }
    sigs[1].resize(10);                          // wrong length
    sigs[2] = key_->pub.n.to_bytes(64);          // s == n, out of range
    SpanVec msg_spans(msgs.begin(), msgs.end());
    SpanVec sig_spans(sigs.begin(), sigs.end());
    const auto ok = rsa_verify_batch(key_->pub, msg_spans, sig_spans);
    EXPECT_TRUE(ok[0]);
    EXPECT_FALSE(ok[1]);
    EXPECT_FALSE(ok[2]);
    EXPECT_TRUE(ok[3]);
}

TEST_F(RsaTest, BatchEmptyAndSingleton) {
    const auto empty = rsa_verify_batch(key_->pub, {}, {});
    EXPECT_TRUE(empty.empty());
    Rng rng(1013);
    const auto msg = rng.bytes(20);
    const auto sig = rsa_sign(*key_, msg);
    SpanVec m{std::span<const std::uint8_t>(msg)};
    SpanVec s{std::span<const std::uint8_t>(sig)};
    const auto one = rsa_verify_batch(key_->pub, m, s);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_TRUE(one[0]);
}

TEST_F(RsaTest, VerifierBatchOverrideAgreesWithLoop) {
    Rng rng(1014);
    RsaSigner signer_like_key(rng, 512);
    auto verifier = signer_like_key.make_verifier();
    std::vector<std::vector<std::uint8_t>> msgs;
    std::vector<std::vector<std::uint8_t>> sigs;
    for (int i = 0; i < 5; ++i) {
        msgs.push_back(rng.bytes(25));
        sigs.push_back(signer_like_key.sign(msgs.back()));
    }
    sigs[0][0] ^= 1;
    SpanVec msg_spans(msgs.begin(), msgs.end());
    SpanVec sig_spans(sigs.begin(), sigs.end());
    const auto batch = verifier->verify_batch(msg_spans, sig_spans);
    for (std::size_t i = 0; i < msgs.size(); ++i)
        EXPECT_EQ(batch[i], verifier->verify(msg_spans[i], sig_spans[i])) << i;
}

TEST(RsaSigner, InterfaceRoundTrip) {
    Rng rng(1003);
    RsaSigner signer(rng, 512);
    EXPECT_EQ(signer.signature_bytes(), 64u);
    EXPECT_EQ(signer.name(), "rsa-512");
    const auto msg = ascii_bytes("interface");
    const auto sig = signer.sign(msg);
    const auto verifier = signer.make_verifier();
    EXPECT_TRUE(verifier->verify(msg, sig));
    EXPECT_FALSE(verifier->verify(ascii_bytes("other"), sig));
}

TEST(HmacSigner, SimulationSignerRoundTrip) {
    Rng rng(1004);
    HmacSigner signer(rng, 128);
    EXPECT_EQ(signer.signature_bytes(), 128u);
    const auto msg = ascii_bytes("simulated");
    const auto sig = signer.sign(msg);
    EXPECT_EQ(sig.size(), 128u);
    const auto verifier = signer.make_verifier();
    EXPECT_TRUE(verifier->verify(msg, sig));
    EXPECT_FALSE(verifier->verify(ascii_bytes("no"), sig));
    auto bad = sig;
    bad[0] ^= 1;
    EXPECT_FALSE(verifier->verify(msg, bad));
}

}  // namespace
}  // namespace mcauth

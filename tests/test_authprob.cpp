#include <gtest/gtest.h>

#include <cmath>

#include "core/authprob.hpp"
#include "core/tesla.hpp"
#include "core/topologies.hpp"
#include "util/rng.hpp"

namespace mcauth {
namespace {

// ------------------------------------------------------------- recurrence

TEST(Recurrence, RohatgiClosedForm) {
    // Interior of the only path root->i has i-2 vertices (root adjacent to
    // vertex 1): q_i = (1-p)^(i-1) in hop terms -> q_min = (1-p)^(n-2).
    const double p = 0.2;
    const std::size_t n = 12;
    const auto dg = make_rohatgi(n);
    const auto prob = recurrence_auth_prob(dg, p);
    for (std::size_t i = 1; i < n; ++i)
        EXPECT_NEAR(prob.q[i], std::pow(1.0 - p, static_cast<double>(i - 1)), 1e-12) << i;
    EXPECT_NEAR(prob.q_min, std::pow(1.0 - p, static_cast<double>(n - 2)), 1e-12);
}

TEST(Recurrence, AuthTreeIsLossProof) {
    const auto prob = recurrence_auth_prob(make_auth_tree(32), 0.5);
    EXPECT_DOUBLE_EQ(prob.q_min, 1.0);
}

TEST(Recurrence, MatchesPaperEq8ForEmss21) {
    // Eq. 8: q_i = 1 - [1-(1-p)q_{i-1}][1-(1-p)q_{i-2}], q_1 = q_2 = 1.
    const double p = 0.25;
    const std::size_t n = 40;
    const auto prob = recurrence_auth_prob(make_emss(n, 2, 1), p);
    std::vector<double> expected(n, 1.0);
    for (std::size_t i = 3; i < n; ++i)
        expected[i] = 1.0 - (1.0 - (1.0 - p) * expected[i - 1]) *
                                (1.0 - (1.0 - p) * expected[i - 2]);
    for (std::size_t i = 1; i < n; ++i) EXPECT_NEAR(prob.q[i], expected[i], 1e-12) << i;
}

TEST(Recurrence, Eq8FixedPointForLargeBlocks) {
    // For E_{2,1} the recurrence converges to q* solving
    // q = 1 - (1 - (1-p)q)^2, i.e. q* = (2(1-p) - 1) / (1-p)^2 for p < 1/2.
    const double p = 0.3;
    const auto prob = recurrence_auth_prob(make_emss(2000, 2, 1), p);
    const double s = 1.0 - p;
    const double fixed_point = (2.0 * s - 1.0) / (s * s);
    EXPECT_NEAR(prob.q_min, fixed_point, 1e-6);
}

TEST(Recurrence, MatchesPaperEq10ForAugmentedChain) {
    // Literal two-level recurrence of Eq. 10 vs the generic engine on the
    // constructed topology. n = K(b+1)+1 keeps every group complete (no
    // tail clamp), matching the equation's assumptions exactly.
    const double p = 0.3;
    const std::size_t a = 3, b = 2, groups = 10;
    const std::size_t g = b + 1;
    const std::size_t n = groups * g + 1;
    const double s = 1.0 - p;

    std::vector<double> q(n, 0.0);
    q[0] = 1.0;
    auto factor = [&](std::size_t u) { return u == 0 ? q[u] : s * q[u]; };
    // First level (chain vertices, ascending x).
    for (std::size_t x = 1; x * g < n; ++x) {
        const std::size_t near = (x - 1) * g;
        const std::size_t far = x >= a ? (x - a) * g : 0;
        if (near == far) {
            q[x * g] = factor(near);
        } else {
            q[x * g] = 1.0 - (1.0 - factor(near)) * (1.0 - factor(far));
        }
    }
    // Second level (inserted, descending y so (x, y+1) is ready).
    for (std::size_t x = 0; x < groups; ++x) {
        for (std::size_t y = b; y >= 1; --y) {
            const std::size_t i = x * g + y;
            const std::size_t neighbour = (y < b) ? i + 1 : (x + 1) * g;
            q[i] = 1.0 - (1.0 - factor(neighbour)) * (1.0 - factor(x * g));
        }
    }

    const auto engine = recurrence_auth_prob(make_augmented_chain(n, a, b), p);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(engine.q[i], q[i], 1e-12) << i;
}

TEST(Recurrence, ZeroLossGivesCertainty) {
    for (std::size_t n : {8u, 33u}) {
        EXPECT_DOUBLE_EQ(recurrence_auth_prob(make_emss(n, 2, 1), 0.0).q_min, 1.0);
        EXPECT_DOUBLE_EQ(recurrence_auth_prob(make_rohatgi(n), 0.0).q_min, 1.0);
    }
}

TEST(Recurrence, TotalLossKillsEverythingBeyondRootEdges) {
    const auto prob = recurrence_auth_prob(make_rohatgi(5), 1.0);
    EXPECT_DOUBLE_EQ(prob.q[1], 1.0);  // directly carried by P_sign
    EXPECT_DOUBLE_EQ(prob.q[2], 0.0);
}

TEST(Recurrence, MonotoneInLossRate) {
    const auto dg = make_augmented_chain(100, 3, 3);
    double last = 1.1;
    for (double p : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
        const double q = recurrence_auth_prob(dg, p).q_min;
        EXPECT_LT(q, last + 1e-12) << p;
        last = q;
    }
}

// ------------------------------------------------------------------ exact

TEST(Exact, AgreesWithRecurrenceOnTreeLikeGraphs) {
    // Where paths never share interior vertices the independence
    // approximation is exact: Rohatgi (single path) and the star.
    for (double p : {0.1, 0.4}) {
        const auto chain = make_rohatgi(12);
        const auto exact = exact_auth_prob(chain, p);
        const auto rec = recurrence_auth_prob(chain, p);
        for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(exact.q[i], rec.q[i], 1e-9);
    }
}

TEST(Exact, RecurrenceIsUpperBoundWhenPathsShare) {
    // Shared interior vertices correlate path failures positively, so the
    // paper's independence recurrence OVERESTIMATES q (documented finding).
    for (double p : {0.1, 0.3, 0.5}) {
        const auto dg = make_emss(14, 2, 1);
        const auto exact = exact_auth_prob(dg, p);
        const auto rec = recurrence_auth_prob(dg, p);
        for (std::size_t i = 1; i < 14; ++i)
            EXPECT_GE(rec.q[i] + 1e-9, exact.q[i]) << "p=" << p << " i=" << i;
        EXPECT_GE(rec.q_min + 1e-9, exact.q_min);
    }
}

TEST(Exact, RejectsOversizedBlocks) {
    EXPECT_THROW(exact_auth_prob(make_emss(30, 2, 1), 0.1), std::invalid_argument);
}

TEST(Exact, DegenerateLossRates) {
    const auto dg = make_emss(10, 2, 1);
    EXPECT_DOUBLE_EQ(exact_auth_prob(dg, 0.0).q_min, 1.0);
    const auto all_lost = exact_auth_prob(dg, 1.0);
    EXPECT_DOUBLE_EQ(all_lost.q[1], 1.0);  // root-adjacent survives
    EXPECT_DOUBLE_EQ(all_lost.q[5], 0.0);
}

// ------------------------------------------------------------ monte carlo

class McVsExact : public ::testing::TestWithParam<double> {};

TEST_P(McVsExact, AgreesWithinConfidence) {
    const double p = GetParam();
    const auto dg = make_augmented_chain(18, 2, 2);
    const auto exact = exact_auth_prob(dg, p);
    Rng rng(123);
    BernoulliLoss loss(p);
    const auto mc = monte_carlo_auth_prob(dg, loss, rng.next_u64(), 60000);
    for (std::size_t i = 1; i < 18; ++i)
        EXPECT_NEAR(mc.q[i], exact.q[i], 0.015) << "i=" << i;
    EXPECT_NEAR(mc.q_min, exact.q_min, 0.015);
}

INSTANTIATE_TEST_SUITE_P(LossRates, McVsExact, ::testing::Values(0.05, 0.1, 0.3, 0.5));

TEST(MonteCarlo, HalfwidthShrinksWithTrials) {
    const auto dg = make_emss(30, 2, 1);
    Rng rng(5);
    BernoulliLoss loss(0.3);
    const auto small = monte_carlo_auth_prob(dg, loss, rng.next_u64(), 500);
    const auto large = monte_carlo_auth_prob(dg, loss, rng.next_u64(), 50000);
    EXPECT_GT(small.q_min_halfwidth, large.q_min_halfwidth);
}

TEST(MonteCarlo, WorksWithBurstyLoss) {
    const auto dg = make_emss(60, 2, 1);
    Rng rng(6);
    auto bursty = GilbertElliottLoss::from_rate_and_burst(0.2, 4.0);
    const auto mc = monte_carlo_auth_prob(dg, bursty, rng.next_u64(), 20000);
    EXPECT_GT(mc.q_min, 0.0);
    EXPECT_LT(mc.q_min, 1.0);
    // Bursts of ~4 kill E_{2,1}'s short links far harder than i.i.d. loss
    // at the same rate — the effect the augmented chain was designed for.
    BernoulliLoss iid(0.2);
    const auto mc_iid = monte_carlo_auth_prob(dg, iid, rng.next_u64(), 20000);
    EXPECT_LT(mc.q_min, mc_iid.q_min);
}

namespace {

/// Always loses one fixed transmission position; others i.i.d. with rate p.
/// Lets a test force received_count == 0 for exactly one vertex.
class DropPositionLoss final : public LossModel {
public:
    DropPositionLoss(std::uint32_t position, double p) : position_(position), p_(p) {}

    bool lose_next(Rng& rng) override {
        const bool lost = next_ == position_ ? true : rng.bernoulli(p_);
        ++next_;
        return lost;
    }
    void reset() override { next_ = 0; }
    double stationary_loss_rate() const override { return p_; }
    std::string name() const override { return "drop-position"; }
    std::unique_ptr<LossModel> clone() const override {
        return std::make_unique<DropPositionLoss>(position_, p_);
    }

private:
    std::uint32_t position_;
    double p_;
    std::uint32_t next_ = 0;
};

}  // namespace

TEST(MonteCarlo, NeverReceivedVertexIsNaNAndSkippedByQMin) {
    // Regression: a vertex with received_count == 0 used to report
    // q[v] = 1.0 — an unresolved 0/0 conditional dressed up as certainty,
    // inconsistent with SimStats::auth_fraction(). It must be NaN, and
    // q_min must skip it instead of going NaN itself.
    const auto dg = make_emss(20, 2, 1);
    const std::uint32_t dropped_pos = 7;
    const VertexId dropped = dg.vertex_at_send_pos(dropped_pos);
    ASSERT_NE(dropped, DependenceGraph::root());
    DropPositionLoss loss(dropped_pos, 0.1);
    const auto mc = monte_carlo_auth_prob(dg, loss, 42, 4000);
    EXPECT_TRUE(std::isnan(mc.q[dropped])) << mc.q[dropped];
    EXPECT_FALSE(std::isnan(mc.q_min));
    EXPECT_GT(mc.q_min, 0.0);
    for (std::size_t v = 1; v < dg.packet_count(); ++v) {
        if (v == dropped) continue;
        EXPECT_FALSE(std::isnan(mc.q[v])) << v;
        EXPECT_LE(mc.q_min, mc.q[v]) << v;  // minimum over the resolved entries
    }
}

TEST(MonteCarlo, AllVerticesUnreceivedYieldsNaNQMin) {
    // Every non-root packet lost in every trial: every conditional is 0/0,
    // so the minimum itself is unresolved.
    const auto dg = make_emss(10, 2, 1);
    BernoulliLoss loss(1.0);
    const auto mc = monte_carlo_auth_prob(dg, loss, 42, 200);
    for (std::size_t v = 1; v < dg.packet_count(); ++v)
        EXPECT_TRUE(std::isnan(mc.q[v])) << v;
    EXPECT_TRUE(std::isnan(mc.q_min));
}

// ----------------------------------------------------------------- bounds

class BoundsContainExact : public ::testing::TestWithParam<double> {};

TEST_P(BoundsContainExact, Eq1Sandwich) {
    const double p = GetParam();
    for (auto make : {+[](std::size_t n) { return make_emss(n, 2, 1); },
                      +[](std::size_t n) { return make_augmented_chain(n, 2, 2); },
                      +[](std::size_t n) { return make_rohatgi(n); }}) {
        const auto dg = make(16);
        const auto exact = exact_auth_prob(dg, p);
        const auto bounds = bounds_auth_prob(dg, p);
        for (std::size_t i = 1; i < 16; ++i) {
            EXPECT_LE(bounds.lower[i], exact.q[i] + 1e-9) << "i=" << i << " p=" << p;
            EXPECT_GE(bounds.upper[i] + 1e-9, exact.q[i]) << "i=" << i << " p=" << p;
        }
        EXPECT_LE(bounds.q_min_lower, exact.q_min + 1e-9);
        EXPECT_GE(bounds.q_min_upper + 1e-9, exact.q_min);
    }
}

INSTANTIATE_TEST_SUITE_P(LossRates, BoundsContainExact, ::testing::Values(0.1, 0.3, 0.6));

TEST(Bounds, UnreachableVertexBoundsAreZero) {
    DependenceGraph dg(3, {0, 1, 2}, "broken");
    dg.add_dependence(0, 1);  // vertex 2 unreachable
    const auto bounds = bounds_auth_prob(dg, 0.1);
    EXPECT_DOUBLE_EQ(bounds.lower[2], 0.0);
    EXPECT_DOUBLE_EQ(bounds.upper[2], 0.0);
}

// ------------------------------------------------------------------ tesla

TEST(TeslaAnalysis, Eq7ClosedForm) {
    TeslaParams params;
    params.n = 500;
    params.p = 0.2;
    params.t_disclose = 1.0;
    params.mu = 0.4;
    params.sigma = 0.15;
    const auto analysis = analyze_tesla(params);
    const double xi = 0.5 * std::erfc(-(1.0 - 0.4) / (0.15 * std::sqrt(2.0)));
    EXPECT_NEAR(analysis.xi, xi, 1e-12);
    EXPECT_NEAR(analysis.q_min, (1.0 - 0.2) * xi, 1e-12);
    // Eq. 6 per packet: λ_i = 1 - p^(n+1-i).
    EXPECT_NEAR(analysis.q[params.n - 1], (1.0 - 0.2) * xi, 1e-12);
    EXPECT_NEAR(analysis.q[0], (1.0 - std::pow(0.2, 500.0)) * xi, 1e-12);
}

TEST(TeslaAnalysis, DelayModelOverload) {
    TeslaParams params;
    params.t_disclose = 2.0;
    params.p = 0.1;
    const ShiftedExponentialDelay delay(0.5, 0.5);
    const auto analysis = analyze_tesla(params, delay);
    EXPECT_NEAR(analysis.xi, delay.cdf(2.0), 1e-12);
}

TEST(TeslaAnalysis, ZeroJitterStepFunction) {
    TeslaParams params;
    params.sigma = 0.0;
    params.mu = 0.5;
    params.t_disclose = 1.0;
    EXPECT_NEAR(analyze_tesla(params).xi, 1.0, 1e-12);
    params.mu = 1.5;
    EXPECT_NEAR(analyze_tesla(params).xi, 0.0, 1e-12);
}

TEST(TeslaMonteCarlo, MatchesClosedForm) {
    TeslaParams params;
    params.n = 300;
    params.p = 0.3;
    params.t_disclose = 1.0;
    params.mu = 0.5;
    params.sigma = 0.2;
    const auto analysis = analyze_tesla(params);
    Rng rng(9);
    BernoulliLoss loss(params.p);
    GaussianDelay delay(params.mu, params.sigma);
    const auto mc = monte_carlo_tesla(params, loss, delay, rng.next_u64(), 30000);
    EXPECT_NEAR(mc.q_min, analysis.q_min, 0.02);
}

TEST(TeslaDesign, RequiredDisclosureDelayRoundTrips) {
    // Solve for T, then verify Eq. 7 hits the target exactly.
    const double mu = 0.3, sigma = 0.12, p = 0.2;
    for (double target : {0.5, 0.7, 0.75, 0.79}) {
        const double t = required_disclosure_delay(mu, sigma, p, target);
        ASSERT_TRUE(std::isfinite(t)) << target;
        TeslaParams params;
        params.t_disclose = t;
        params.mu = mu;
        params.sigma = sigma;
        params.p = p;
        EXPECT_NEAR(analyze_tesla(params).q_min, target, 1e-6) << target;
    }
}

TEST(TeslaDesign, UnreachableTargetIsInfinite) {
    // q_min can never exceed 1 - p.
    EXPECT_FALSE(std::isfinite(required_disclosure_delay(0.3, 0.1, 0.2, 0.85)));
    EXPECT_FALSE(std::isfinite(required_disclosure_delay(0.3, 0.1, 0.2, 0.80)));
}

TEST(TeslaDesign, ZeroJitterNeedsOnlyMeanDelay) {
    EXPECT_DOUBLE_EQ(required_disclosure_delay(0.4, 0.0, 0.1, 0.5), 0.4);
}

TEST(TeslaDesign, MonotoneInTarget) {
    double last = 0.0;
    for (double target : {0.3, 0.5, 0.6, 0.7}) {
        const double t = required_disclosure_delay(0.2, 0.1, 0.2, target);
        EXPECT_GT(t, last);
        last = t;
    }
}

TEST(TeslaGraph, StructureMatchesSection32) {
    const auto tg = make_tesla_graph(4, 2);
    EXPECT_EQ(tg.graph.vertex_count(), 9u);
    // Bootstrap reaches every key node.
    for (std::size_t i = 1; i <= 4; ++i)
        EXPECT_TRUE(tg.graph.has_edge(tg.root, tg.key_node(i)));
    // K_j covers P_i exactly when j >= i.
    for (std::size_t i = 1; i <= 4; ++i)
        for (std::size_t j = 1; j <= 4; ++j)
            EXPECT_EQ(tg.graph.has_edge(tg.key_node(j), tg.message_node(i)), j >= i)
                << i << "," << j;
    EXPECT_EQ(tg.labels[tg.message_node(2)], "P2");
    EXPECT_EQ(tg.labels[tg.key_node(3)], "K(3,2)");
}

}  // namespace
}  // namespace mcauth

// mcauth_exec: thread pool, deterministic sharding, and the determinism
// contract (DESIGN.md §7) — parallel results must be bit-identical to the
// serial path for any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "core/authprob.hpp"
#include "core/delay_analysis.hpp"
#include "core/metrics.hpp"
#include "core/tesla.hpp"
#include "core/topologies.hpp"
#include "exec/sharded.hpp"
#include "exec/sweep.hpp"
#include "exec/thread_pool.hpp"
#include "graph/algorithms.hpp"
#include "net/delay.hpp"
#include "net/loss.hpp"
#include "util/rng.hpp"

namespace mcauth {
namespace {

using exec::ShardedTrials;
using exec::SweepRunner;
using exec::ThreadPool;

// Restore the global pool so a test changing --threads-equivalent state
// can't leak into the rest of the suite.
class GlobalPoolGuard {
public:
    GlobalPoolGuard() : saved_(ThreadPool::global_thread_count()) {}
    ~GlobalPoolGuard() { ThreadPool::set_global_thread_count(saved_); }

private:
    std::size_t saved_;
};

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        ThreadPool pool(threads);
        for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{64}, std::size_t{1000}}) {
            for (std::size_t grain : {std::size_t{1}, std::size_t{3}, std::size_t{64}}) {
                std::vector<std::atomic<int>> hits(n);
                pool.parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
                    ASSERT_LE(begin, end);
                    ASSERT_LE(end, n);
                    for (std::size_t i = begin; i < end; ++i)
                        hits[i].fetch_add(1, std::memory_order_relaxed);
                });
                for (std::size_t i = 0; i < n; ++i)
                    EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " n=" << n
                                                 << " grain=" << grain << " i=" << i;
            }
        }
    }
}

TEST(ThreadPool, SingleLanePoolRunsInline) {
    ThreadPool pool(1);
    EXPECT_EQ(pool.thread_count(), 1u);
    const auto caller = std::this_thread::get_id();
    pool.parallel_for(16, 4, [&](std::size_t, std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
    ThreadPool pool(4);
    std::atomic<std::size_t> total{0};
    pool.parallel_for(8, 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
            pool.parallel_for(8, 1, [&](std::size_t b, std::size_t e) {
                total.fetch_add(e - b, std::memory_order_relaxed);
            });
    });
    EXPECT_EQ(total.load(), 64u);
}

TEST(ThreadPool, ChunkCount) {
    EXPECT_EQ(ThreadPool::chunk_count(0, 4), 0u);
    EXPECT_EQ(ThreadPool::chunk_count(1, 4), 1u);
    EXPECT_EQ(ThreadPool::chunk_count(8, 4), 2u);
    EXPECT_EQ(ThreadPool::chunk_count(9, 4), 3u);
    EXPECT_EQ(ThreadPool::chunk_count(9, 0), 0u);  // degenerate grain
}

TEST(ThreadPool, ParallelReduceIsOrderedAndThreadCountInvariant) {
    // A sum of doubles with wildly mixed magnitudes: any reordering of the
    // fold would change the rounding. The ordered chunk fold must make the
    // result EXACTLY equal across thread counts.
    const std::size_t n = 10000;
    auto value = [](std::size_t i) {
        return std::pow(-1.0, static_cast<double>(i % 2)) *
               std::pow(1.5, static_cast<double>(i % 40)) / (static_cast<double>(i) + 1.0);
    };
    auto run = [&](std::size_t threads) {
        ThreadPool pool(threads);
        return pool.parallel_reduce<double>(
            n, 64, 0.0,
            [&](std::size_t begin, std::size_t end) {
                double s = 0.0;
                for (std::size_t i = begin; i < end; ++i) s += value(i);
                return s;
            },
            [](double acc, double partial) { return acc + partial; });
    };
    const double serial = run(1);
    EXPECT_EQ(serial, run(2));
    EXPECT_EQ(serial, run(8));
}

// --------------------------------------------------------- sharded trials

TEST(ShardedTrials, FewerTrialsThanShardSizeMakesOneShard) {
    const ShardedTrials sharded(100, 42, 4096);
    EXPECT_EQ(sharded.shard_count(), 1u);
    EXPECT_EQ(sharded.shard_trials(0), 100u);
    EXPECT_EQ(sharded.shard_trials(1), 0u);  // past the end
}

TEST(ShardedTrials, ExactMultipleFillsEveryShard) {
    const ShardedTrials sharded(8192, 42, 4096);
    EXPECT_EQ(sharded.shard_count(), 2u);
    EXPECT_EQ(sharded.shard_trials(0), 4096u);
    EXPECT_EQ(sharded.shard_trials(1), 4096u);
    EXPECT_EQ(sharded.shard_begin(1), 4096u);
}

TEST(ShardedTrials, RemainderLandsInLastShard) {
    const ShardedTrials sharded(10000, 42, 4096);
    EXPECT_EQ(sharded.shard_count(), 3u);
    EXPECT_EQ(sharded.shard_trials(0), 4096u);
    EXPECT_EQ(sharded.shard_trials(1), 4096u);
    EXPECT_EQ(sharded.shard_trials(2), 10000u - 2u * 4096u);
    std::size_t total = 0;
    for (std::size_t i = 0; i < sharded.shard_count(); ++i)
        total += sharded.shard_trials(i);
    EXPECT_EQ(total, 10000u);
}

TEST(ShardedTrials, ZeroTrialsMakesZeroShards) {
    const ShardedTrials sharded(0, 42, 4096);
    EXPECT_EQ(sharded.shard_count(), 0u);
}

TEST(ShardedTrials, ShardSeedsAreDeterministicAndDistinct) {
    const ShardedTrials a(100000, 7);
    const ShardedTrials b(100000, 7);
    const ShardedTrials c(100000, 8);
    std::set<std::uint64_t> seen;
    for (std::size_t i = 0; i < a.shard_count(); ++i) {
        EXPECT_EQ(a.shard_seed(i), b.shard_seed(i)) << i;  // pure in (seed, i)
        EXPECT_NE(a.shard_seed(i), c.shard_seed(i)) << i;  // seed-sensitive
        seen.insert(a.shard_seed(i));
    }
    EXPECT_EQ(seen.size(), a.shard_count());  // no colliding streams
}

TEST(ShardedTrials, ShardSeedMatchesDeriveStreamSeed) {
    // The benches derive per-cell seeds through the same map the shards
    // use; keep the two spellings locked together.
    const ShardedTrials sharded(100000, 1234);
    for (std::size_t i = 0; i < sharded.shard_count(); ++i)
        EXPECT_EQ(sharded.shard_seed(i), exec::derive_stream_seed(1234, i)) << i;
}

// --------------------------------------------- stream independence (stats)

// Fraction of agreeing bits between two 64-bit streams; for independent
// streams this is binomial around 0.5 with sd ~ sqrt(0.25 / bits).
double bit_agreement(Rng& a, Rng& b, std::size_t words) {
    std::uint64_t agree = 0;
    for (std::size_t i = 0; i < words; ++i)
        agree += static_cast<std::uint64_t>(
            std::popcount(~(a.next_u64() ^ b.next_u64())));
    return static_cast<double>(agree) / (64.0 * static_cast<double>(words));
}

TEST(RngStreams, ForkProducesAnIndependentStream) {
    Rng parent(2024);
    Rng child = parent.fork();
    // 2^18 bits -> sd ~ 0.001; +-0.01 is a ~10-sigma band (no flakes).
    const double agreement = bit_agreement(parent, child, 4096);
    EXPECT_NEAR(agreement, 0.5, 0.01);
}

TEST(RngStreams, JumpCarvesANonOverlappingStream) {
    Xoshiro256ss a(99);
    Xoshiro256ss b(99);
    b.jump();
    std::uint64_t agree = 0;
    const std::size_t words = 4096;
    for (std::size_t i = 0; i < words; ++i)
        agree += static_cast<std::uint64_t>(std::popcount(~(a.next() ^ b.next())));
    const double agreement = static_cast<double>(agree) / (64.0 * words);
    EXPECT_NEAR(agreement, 0.5, 0.01);
}

TEST(RngStreams, ShardStreamsAreMutuallyIndependent) {
    const ShardedTrials sharded(100000, 5);
    Rng s0 = sharded.shard_rng(0);
    Rng s1 = sharded.shard_rng(1);
    EXPECT_NEAR(bit_agreement(s0, s1, 4096), 0.5, 0.01);
    // Consecutive integer base seeds must also decorrelate (SplitMix64
    // expansion): the classic failure mode of naive (seed + i) schemes.
    Rng t0(exec::derive_stream_seed(1, 0));
    Rng t1(exec::derive_stream_seed(2, 0));
    EXPECT_NEAR(bit_agreement(t0, t1, 4096), 0.5, 0.01);
}

// ------------------------------------- parallel vs serial bit-identity

// EXPECT_EQ with NaN == NaN treated as equal (NaN marks never-received).
void expect_bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::isnan(a[i]) && std::isnan(b[i])) continue;
        EXPECT_EQ(a[i], b[i]) << i;
    }
}

TEST(BitIdentity, MonteCarloAuthProbMatchesSerial) {
    GlobalPoolGuard guard;
    const auto dg = make_emss(64, 2, 1);
    const BernoulliLoss loss(0.3);
    ThreadPool::set_global_thread_count(1);
    const auto serial = monte_carlo_auth_prob(dg, loss, 77, 5000);
    ThreadPool::set_global_thread_count(8);
    const auto parallel = monte_carlo_auth_prob(dg, loss, 77, 5000);
    expect_bitwise_equal(serial.q, parallel.q);
    EXPECT_EQ(serial.q_min, parallel.q_min);
    EXPECT_EQ(serial.q_min_halfwidth, parallel.q_min_halfwidth);
}

TEST(BitIdentity, MonteCarloAuthProbBurstyLoss) {
    // The stateful (bursty) model exercises the per-shard clone path.
    GlobalPoolGuard guard;
    const auto dg = make_augmented_chain(48, 3, 3);
    const auto loss = GilbertElliottLoss::from_rate_and_burst(0.2, 4.0);
    ThreadPool::set_global_thread_count(1);
    const auto serial = monte_carlo_auth_prob(dg, loss, 909, 6000);
    ThreadPool::set_global_thread_count(8);
    const auto parallel = monte_carlo_auth_prob(dg, loss, 909, 6000);
    expect_bitwise_equal(serial.q, parallel.q);
    EXPECT_EQ(serial.q_min, parallel.q_min);
}

TEST(BitIdentity, MonteCarloTeslaMatchesSerial) {
    GlobalPoolGuard guard;
    TeslaParams params;
    params.n = 200;
    params.t_disclose = 1.0;
    params.mu = 0.4;
    params.sigma = 0.2;
    params.p = 0.2;
    const BernoulliLoss loss(params.p);
    const GaussianDelay delay(params.mu, params.sigma);
    ThreadPool::set_global_thread_count(1);
    const auto serial = monte_carlo_tesla(params, loss, delay, 31, 6000);
    ThreadPool::set_global_thread_count(8);
    const auto parallel = monte_carlo_tesla(params, loss, delay, 31, 6000);
    expect_bitwise_equal(serial.q, parallel.q);
    EXPECT_EQ(serial.q_min, parallel.q_min);
}

TEST(BitIdentity, ReceiverDelayDistributionMatchesSerial) {
    GlobalPoolGuard guard;
    const auto dg = make_emss(80, 2, 1);
    const SchemeParams params;
    const GaussianDelay jitter(0.05, 0.02);
    ThreadPool::set_global_thread_count(1);
    const auto serial = receiver_delay_distribution(dg, params, jitter, 55, 2000);
    ThreadPool::set_global_thread_count(8);
    const auto parallel = receiver_delay_distribution(dg, params, jitter, 55, 2000);
    expect_bitwise_equal(serial.mean, parallel.mean);
    expect_bitwise_equal(serial.p95, parallel.p95);
    EXPECT_EQ(serial.worst_mean, parallel.worst_mean);
    EXPECT_EQ(serial.worst_p95, parallel.worst_p95);
}

TEST(BitIdentity, SweepRunnerReturnsIndexOrderForAnyThreadCount) {
    auto run = [](std::size_t threads) {
        ThreadPool pool(threads);
        const SweepRunner sweep(pool);
        return sweep.map<double>(97, [](std::size_t i) {
            // Seed-derived per-point randomness, as the benches do.
            Rng rng(exec::derive_stream_seed(3, i));
            return rng.uniform() + static_cast<double>(i);
        });
    };
    const auto serial = run(1);
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_GE(serial[i], static_cast<double>(i));  // landed at its own index
    EXPECT_EQ(serial, run(2));
    EXPECT_EQ(serial, run(8));
}

// -------------------------------------------------- hot-path equivalences

TEST(HotPath, CompletionTimesTopoMatchesHeapVersion) {
    const auto dg = make_emss(120, 3, 2);
    const auto order = topological_order(dg.graph());
    ASSERT_TRUE(order.has_value());
    Rng rng(17);
    std::vector<double> arrival(dg.packet_count());
    std::vector<double> out;
    for (int round = 0; round < 5; ++round) {
        for (double& a : arrival) a = rng.uniform(0.0, 3.0);
        const auto reference = completion_times(dg, arrival);
        completion_times_topo(dg, *order, arrival, out);
        ASSERT_EQ(reference.size(), out.size());
        for (std::size_t v = 0; v < out.size(); ++v)
            EXPECT_EQ(reference[v], out[v]) << "round " << round << " v " << v;
    }
}

TEST(HotPath, VerifiableIntoMatchesVerifiableGiven) {
    const auto dg = make_augmented_chain(40, 2, 3);
    Rng rng(23);
    VerifyScratch scratch(dg.packet_count());
    for (int round = 0; round < 20; ++round) {
        std::vector<bool> received(dg.packet_count());
        for (std::size_t v = 0; v < dg.packet_count(); ++v) {
            const bool r = rng.bernoulli(0.6);
            received[v] = r;
            scratch.received[v] = r ? 1 : 0;
        }
        received[DependenceGraph::root()] = true;
        const auto reference = dg.verifiable_given(received);
        dg.verifiable_into(scratch);
        for (std::size_t v = 0; v < dg.packet_count(); ++v)
            EXPECT_EQ(reference[v], scratch.verifiable[v] != 0) << "v " << v;
    }
}

}  // namespace
}  // namespace mcauth

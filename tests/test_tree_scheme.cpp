#include <gtest/gtest.h>

#include "auth/tree_scheme.hpp"
#include "util/rng.hpp"

namespace mcauth {
namespace {

std::vector<std::vector<std::uint8_t>> payloads_for(Rng& rng, std::size_t n) {
    std::vector<std::vector<std::uint8_t>> out;
    for (std::size_t i = 0; i < n; ++i) out.push_back(rng.bytes(80));
    return out;
}

struct TreePipe {
    explicit TreePipe(TreeSchemeConfig config, std::uint64_t seed = 200)
        : rng(seed),
          signer(rng, 4),
          sender(config, signer),
          receiver(config, signer.make_verifier()) {}

    Rng rng;
    MerkleWotsSigner signer;
    TreeSender sender;
    TreeReceiver receiver;
};

class TreeBlockSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TreeBlockSizes, EveryPacketIndividuallyVerifiable) {
    const std::size_t n = GetParam();
    TreePipe pipe(TreeSchemeConfig{.block_size = n, .hash_bytes = 16});
    const auto packets = pipe.sender.make_block(0, payloads_for(pipe.rng, n));
    ASSERT_EQ(packets.size(), n);
    // Verify in isolation and in arbitrary subsets: no inter-packet state.
    for (std::size_t i = 0; i < n; ++i) {
        const auto ev = pipe.receiver.on_packet(packets[i]);
        EXPECT_EQ(ev.status, VerifyStatus::kAuthenticated) << i;
        EXPECT_EQ(ev.index, i);
    }
}

// Odd block sizes exercise promoted Merkle nodes end-to-end.
INSTANTIATE_TEST_SUITE_P(Sizes, TreeBlockSizes, ::testing::Values(2, 3, 5, 8, 13, 16, 33));

TEST(TreeScheme, SurvivesTotalLossOfOtherPackets) {
    TreePipe pipe(TreeSchemeConfig{.block_size = 16, .hash_bytes = 16});
    const auto packets = pipe.sender.make_block(7, payloads_for(pipe.rng, 16));
    // Only one packet arrives; it still verifies.
    const auto ev = pipe.receiver.on_packet(packets[11]);
    EXPECT_EQ(ev.status, VerifyStatus::kAuthenticated);
}

TEST(TreeScheme, TamperedPayloadRejected) {
    TreePipe pipe(TreeSchemeConfig{.block_size = 8, .hash_bytes = 16});
    auto packets = pipe.sender.make_block(0, payloads_for(pipe.rng, 8));
    packets[2].payload[5] ^= 1;
    EXPECT_EQ(pipe.receiver.on_packet(packets[2]).status, VerifyStatus::kRejected);
}

TEST(TreeScheme, TamperedProofRejected) {
    TreePipe pipe(TreeSchemeConfig{.block_size = 8, .hash_bytes = 16});
    auto packets = pipe.sender.make_block(0, payloads_for(pipe.rng, 8));
    packets[2].hashes[0].digest[0] ^= 1;
    EXPECT_EQ(pipe.receiver.on_packet(packets[2]).status, VerifyStatus::kRejected);
}

TEST(TreeScheme, ReassignedIndexRejected) {
    // Swapping a packet's claimed index must fail: the leaf binds identity.
    TreePipe pipe(TreeSchemeConfig{.block_size = 8, .hash_bytes = 16});
    auto packets = pipe.sender.make_block(0, payloads_for(pipe.rng, 8));
    packets[2].index = 3;
    EXPECT_EQ(pipe.receiver.on_packet(packets[2]).status, VerifyStatus::kRejected);
}

TEST(TreeScheme, CrossBlockReplayRejected) {
    TreePipe pipe(TreeSchemeConfig{.block_size = 8, .hash_bytes = 16});
    auto packets = pipe.sender.make_block(0, payloads_for(pipe.rng, 8));
    packets[2].block_id = 1;  // replay into another block
    EXPECT_EQ(pipe.receiver.on_packet(packets[2]).status, VerifyStatus::kRejected);
}

TEST(TreeScheme, MalformedProofEntryRejectedGracefully) {
    TreePipe pipe(TreeSchemeConfig{.block_size = 8, .hash_bytes = 16});
    auto packets = pipe.sender.make_block(0, payloads_for(pipe.rng, 8));
    packets[2].hashes[0].digest.resize(5);  // not a full digest
    EXPECT_EQ(pipe.receiver.on_packet(packets[2]).status, VerifyStatus::kRejected);
}

TEST(TreeScheme, OverheadIsLogarithmicPathPlusSignature) {
    TreePipe pipe(TreeSchemeConfig{.block_size = 16, .hash_bytes = 16});
    const auto packets = pipe.sender.make_block(0, payloads_for(pipe.rng, 16));
    for (const auto& pkt : packets) {
        EXPECT_EQ(pkt.hashes.size(), 4u);  // log2(16) path entries
        EXPECT_FALSE(pkt.signature.empty());
    }
}

class TreeArity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TreeArity, RoundTripAndTamperAtAnyDegree) {
    const std::size_t arity = GetParam();
    TreePipe pipe(TreeSchemeConfig{.block_size = 27, .hash_bytes = 16, .arity = arity});
    auto packets = pipe.sender.make_block(0, payloads_for(pipe.rng, 27));
    for (std::size_t i = 0; i < 27; ++i) {
        EXPECT_EQ(pipe.receiver.on_packet(packets[i]).status,
                  VerifyStatus::kAuthenticated)
            << "arity " << arity << " i " << i;
    }
    packets[5].payload[0] ^= 1;
    EXPECT_EQ(pipe.receiver.on_packet(packets[5]).status, VerifyStatus::kRejected);
}

INSTANTIATE_TEST_SUITE_P(Degrees, TreeArity, ::testing::Values(2, 3, 4, 5, 27));

TEST(TreeScheme, ArityTradesLevelsForBytes) {
    // The Wong-Lam degree tradeoff: higher arity -> fewer proof levels but
    // more sibling bytes per level.
    const std::size_t n = 64;
    Rng rng(300);
    MerkleWotsSigner signer(rng, 4);
    auto overhead_at = [&](std::size_t arity) {
        TreeSender sender(TreeSchemeConfig{.block_size = n, .hash_bytes = 16, .arity = arity},
                          signer);
        Rng data_rng(7);
        std::vector<std::vector<std::uint8_t>> payloads;
        for (std::size_t i = 0; i < n; ++i) payloads.push_back(data_rng.bytes(50));
        const auto packets = sender.make_block(0, payloads);
        return std::pair{packets[0].hashes.size(),               // levels
                         packets[0].wire_size() - 50};           // overhead bytes
    };
    const auto [levels2, bytes2] = overhead_at(2);
    const auto [levels8, bytes8] = overhead_at(8);
    EXPECT_EQ(levels2, 6u);  // log2(64)
    EXPECT_EQ(levels8, 2u);  // log8(64)
    EXPECT_LT(levels8, levels2);
    EXPECT_GT(bytes8, bytes2);  // 2 levels x 7 siblings > 6 levels x 1
}

TEST(TreeScheme, MixedArityIsRejectedCrossways) {
    // A packet built at arity 8 must not verify at a receiver expecting
    // arity 2 (group sizes exceed the configured degree).
    Rng rng(301);
    MerkleWotsSigner signer(rng, 4);
    TreeSender sender(TreeSchemeConfig{.block_size = 16, .hash_bytes = 16, .arity = 8},
                      signer);
    TreeReceiver receiver(TreeSchemeConfig{.block_size = 16, .hash_bytes = 16, .arity = 2},
                          signer.make_verifier());
    std::vector<std::vector<std::uint8_t>> payloads;
    for (int i = 0; i < 16; ++i) payloads.push_back(rng.bytes(40));
    const auto packets = sender.make_block(0, payloads);
    EXPECT_EQ(receiver.on_packet(packets[3]).status, VerifyStatus::kRejected);
}

TEST(TreeScheme, AllPacketsShareOneSignature) {
    TreePipe pipe(TreeSchemeConfig{.block_size = 8, .hash_bytes = 16});
    const auto packets = pipe.sender.make_block(0, payloads_for(pipe.rng, 8));
    for (std::size_t i = 1; i < packets.size(); ++i)
        EXPECT_EQ(packets[i].signature, packets[0].signature);
}

TEST(TreeScheme, OnBlockVerdictsMatchOnPacket) {
    // The batched receiver path must agree with the per-packet path on
    // every packet, including tampered and malformed ones mixed into the
    // same block.
    TreePipe pipe(TreeSchemeConfig{.block_size = 16, .hash_bytes = 16});
    auto packets = pipe.sender.make_block(3, payloads_for(pipe.rng, 16));
    packets[2].payload[0] ^= 1;              // digest mismatch
    packets[5].hashes[0].digest[3] ^= 1;     // broken proof
    packets[7].hashes[0].digest.resize(5);   // malformed proof entry
    packets[9].signature[4] ^= 1;            // broken signature (distinct statement)
    packets[11].index = 12;                  // reassigned identity

    const auto events = pipe.receiver.on_block(packets);
    ASSERT_EQ(events.size(), packets.size());
    for (std::size_t i = 0; i < packets.size(); ++i) {
        const VerifyEvent single = pipe.receiver.on_packet(packets[i]);
        EXPECT_EQ(events[i].status, single.status) << i;
        EXPECT_EQ(events[i].block_id, single.block_id) << i;
        EXPECT_EQ(events[i].index, single.index) << i;
    }
}

TEST(TreeScheme, OnBlockHandlesEmptyAndRepeatedCalls) {
    TreePipe pipe(TreeSchemeConfig{.block_size = 8, .hash_bytes = 16});
    EXPECT_TRUE(pipe.receiver.on_block({}).empty());
    const auto packets = pipe.sender.make_block(0, payloads_for(pipe.rng, 8));
    // Arena recycling across calls must not perturb verdicts.
    for (int round = 0; round < 3; ++round) {
        const auto events = pipe.receiver.on_block(packets);
        for (const auto& ev : events)
            EXPECT_EQ(ev.status, VerifyStatus::kAuthenticated) << round;
    }
}

}  // namespace
}  // namespace mcauth

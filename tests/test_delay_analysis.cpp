#include <gtest/gtest.h>

#include <cmath>

#include "core/delay_analysis.hpp"
#include "core/topologies.hpp"

namespace mcauth {
namespace {

SchemeParams params() {
    SchemeParams p;
    p.t_transmit = 0.01;
    return p;
}

// ----------------------------------------------------------- completion

TEST(CompletionTimes, DeterministicChainCompletesOnArrival) {
    const auto dg = make_rohatgi(6);
    std::vector<double> arrival(6);
    for (VertexId v = 0; v < 6; ++v) arrival[v] = 0.01 * dg.send_pos(v);
    const auto completion = completion_times(dg, arrival);
    for (VertexId v = 0; v < 6; ++v) EXPECT_DOUBLE_EQ(completion[v], arrival[v]);
}

TEST(CompletionTimes, SignLastWaitsForSignature) {
    const auto dg = make_emss(6, 2, 1);
    std::vector<double> arrival(6);
    for (VertexId v = 0; v < 6; ++v) arrival[v] = 0.01 * dg.send_pos(v);
    const auto completion = completion_times(dg, arrival);
    const double signature_arrival = arrival[DependenceGraph::root()];
    for (VertexId v = 1; v < 6; ++v) EXPECT_DOUBLE_EQ(completion[v], signature_arrival);
}

TEST(CompletionTimes, PicksTheFasterPath) {
    // Diamond where one branch is late: completion uses the early branch.
    DependenceGraph dg(4, {0, 1, 2, 3}, "diamond");
    dg.add_dependence(0, 1);
    dg.add_dependence(0, 2);
    dg.add_dependence(1, 3);
    dg.add_dependence(2, 3);
    const std::vector<double> arrival{0.0, 0.5, 9.0, 0.6};
    const auto completion = completion_times(dg, arrival);
    EXPECT_DOUBLE_EQ(completion[3], 0.6);  // via vertex 1, not the late vertex 2
}

TEST(CompletionTimes, UnreachableIsInfinite) {
    DependenceGraph dg(3, {0, 1, 2}, "broken");
    dg.add_dependence(0, 1);
    const auto completion = completion_times(dg, {0.0, 0.1, 0.2});
    EXPECT_FALSE(std::isfinite(completion[2]));
}

// ----------------------------------------------------------- distribution

TEST(DelayDistribution, ZeroJitterReproducesEq4) {
    // With a constant network delay the random component vanishes and the
    // distribution collapses onto the deterministic Eq. 4 values.
    const auto dg = make_emss(20, 2, 1);
    ConstantDelay no_jitter(0.05);
    Rng rng(1);
    const auto dist = receiver_delay_distribution(dg, params(), no_jitter, rng, 50);
    const auto metrics = compute_metrics(dg, params());
    for (VertexId v = 0; v < 20; ++v) {
        EXPECT_NEAR(dist.mean[v], metrics.receiver_delay[v], 1e-9) << v;
        EXPECT_NEAR(dist.p95[v], metrics.receiver_delay[v], 1e-9) << v;
    }
    EXPECT_NEAR(dist.worst_mean, metrics.max_receiver_delay, 1e-9);
}

TEST(DelayDistribution, JitterAddsRandomComponentToSignFirstChains) {
    // Rohatgi has t_d = 0, but out-of-order arrival makes the total delay
    // positive — the paper's "random component exists in networks which may
    // provide out-of-order deliveries".
    const auto dg = make_rohatgi(20);
    GaussianDelay jitter(0.05, 0.02);  // jitter comparable to pacing
    Rng rng(2);
    const auto dist = receiver_delay_distribution(dg, params(), jitter, rng, 500);
    EXPECT_GT(dist.worst_mean, 0.0);
    EXPECT_GT(dist.worst_p95, dist.worst_mean);
}

TEST(DelayDistribution, MoreJitterMoreDelay) {
    const auto dg = make_rohatgi(20);
    Rng rng(3);
    GaussianDelay small(0.05, 0.005);
    const auto low = receiver_delay_distribution(dg, params(), small, rng, 400);
    GaussianDelay large(0.05, 0.05);
    const auto high = receiver_delay_distribution(dg, params(), large, rng, 400);
    EXPECT_LT(low.worst_mean, high.worst_mean);
}

TEST(DelayDistribution, SignLastDelayDominatedByDeterministicPart) {
    // For EMSS the block-length wait dwarfs jitter: mean ~ Eq. 4 value.
    const auto dg = make_emss(40, 2, 1);
    GaussianDelay jitter(0.05, 0.01);
    Rng rng(4);
    const auto dist = receiver_delay_distribution(dg, params(), jitter, rng, 300);
    const auto metrics = compute_metrics(dg, params());
    EXPECT_NEAR(dist.worst_mean, metrics.max_receiver_delay, 0.03);
}

}  // namespace
}  // namespace mcauth

#include <gtest/gtest.h>

#include "crypto/bignum.hpp"
#include "util/rng.hpp"

namespace mcauth {
namespace {

Bignum random_bignum(Rng& rng, std::size_t max_bytes) {
    const std::size_t len = 1 + rng.uniform_below(max_bytes);
    return Bignum::from_bytes(rng.bytes(len));
}

// ---------------------------------------------------------- construction

TEST(Bignum, ZeroProperties) {
    const Bignum z;
    EXPECT_TRUE(z.is_zero());
    EXPECT_FALSE(z.is_odd());
    EXPECT_EQ(z.bit_length(), 0u);
    EXPECT_EQ(z.to_u64(), 0u);
    EXPECT_EQ(z.to_hex(), "0");
}

TEST(Bignum, FromU64RoundTrip) {
    for (std::uint64_t v : {0ULL, 1ULL, 255ULL, 0x100000000ULL, 0xdeadbeefcafebabeULL}) {
        EXPECT_EQ(Bignum(v).to_u64(), v);
    }
}

TEST(Bignum, HexRoundTrip) {
    const char* cases[] = {"1", "ff", "123456789abcdef0", "1000000000000000000000001"};
    for (const char* hex : cases) {
        EXPECT_EQ(Bignum::from_hex(hex).to_hex(), hex);
    }
}

TEST(Bignum, BytesRoundTripIgnoresLeadingZeros) {
    const std::vector<std::uint8_t> bytes{0x00, 0x00, 0x12, 0x34};
    const Bignum b = Bignum::from_bytes(bytes);
    EXPECT_EQ(b.to_u64(), 0x1234u);
    EXPECT_EQ(b.to_bytes(4), bytes);
    EXPECT_THROW(b.to_bytes(1), std::invalid_argument);  // does not fit
}

TEST(Bignum, BitAccess) {
    const Bignum b = Bignum::from_hex("8000000001");
    EXPECT_TRUE(b.bit(0));
    EXPECT_FALSE(b.bit(1));
    EXPECT_TRUE(b.bit(39));
    EXPECT_FALSE(b.bit(100));
    EXPECT_EQ(b.bit_length(), 40u);
}

// ------------------------------------------------------------ comparison

TEST(Bignum, CompareTotalOrder) {
    const Bignum a(5), b(7), c = Bignum::from_hex("100000000000000000");
    EXPECT_LT(a, b);
    EXPECT_GT(c, b);
    EXPECT_EQ(a, Bignum(5));
    EXPECT_LE(a, a);
    EXPECT_GE(c, a);
    EXPECT_NE(a, b);
}

// ------------------------------------------------------------ arithmetic

TEST(Bignum, SmallArithmetic) {
    EXPECT_EQ(Bignum(3).add(Bignum(4)).to_u64(), 7u);
    EXPECT_EQ(Bignum(10).sub(Bignum(4)).to_u64(), 6u);
    EXPECT_EQ(Bignum(6).mul(Bignum(7)).to_u64(), 42u);
}

TEST(Bignum, CarryPropagation) {
    const Bignum max32 = Bignum(0xffffffffULL);
    EXPECT_EQ(max32.add(Bignum(1)).to_u64(), 0x100000000ULL);
    const Bignum max64 = Bignum(0xffffffffffffffffULL);
    EXPECT_EQ(max64.add(Bignum(1)).to_hex(), "10000000000000000");
}

TEST(Bignum, SubRequiresOrdering) {
    EXPECT_THROW(Bignum(3).sub(Bignum(4)), std::invalid_argument);
}

TEST(Bignum, AdditionPropertiesRandomized) {
    Rng rng(42);
    for (int i = 0; i < 200; ++i) {
        const Bignum a = random_bignum(rng, 40);
        const Bignum b = random_bignum(rng, 40);
        EXPECT_EQ(a.add(b), b.add(a));              // commutative
        EXPECT_EQ(a.add(b).sub(b), a);              // inverse
        EXPECT_EQ(a.add(Bignum()), a);              // identity
    }
}

TEST(Bignum, MultiplicationPropertiesRandomized) {
    Rng rng(43);
    for (int i = 0; i < 100; ++i) {
        const Bignum a = random_bignum(rng, 24);
        const Bignum b = random_bignum(rng, 24);
        const Bignum c = random_bignum(rng, 24);
        EXPECT_EQ(a.mul(b), b.mul(a));                         // commutative
        EXPECT_EQ(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));    // distributive
        EXPECT_EQ(a.mul(Bignum(1)), a);                        // identity
        EXPECT_TRUE(a.mul(Bignum()).is_zero());                // annihilator
    }
}

TEST(Bignum, ShiftsInverse) {
    Rng rng(44);
    for (int i = 0; i < 100; ++i) {
        const Bignum a = random_bignum(rng, 20);
        const std::size_t s = rng.uniform_below(70);
        EXPECT_EQ(a.shifted_left(s).shifted_right(s), a);
    }
}

TEST(Bignum, ShiftLeftIsMulByPowerOfTwo) {
    const Bignum a = Bignum::from_hex("deadbeef");
    EXPECT_EQ(a.shifted_left(33), a.mul(Bignum(1ULL << 33)));
}

// --------------------------------------------------------------- division

TEST(Bignum, DivModIdentityRandomized) {
    Rng rng(45);
    for (int i = 0; i < 300; ++i) {
        const Bignum a = random_bignum(rng, 48);
        Bignum b = random_bignum(rng, 24);
        if (b.is_zero()) b = Bignum(1);
        const auto qr = a.divmod(b);
        EXPECT_EQ(qr.quotient.mul(b).add(qr.remainder), a);
        EXPECT_LT(qr.remainder, b);
    }
}

TEST(Bignum, DivModSmallDivisor) {
    const Bignum a = Bignum::from_hex("ffffffffffffffffffffffffffffffff");
    const auto qr = a.divmod(Bignum(7));
    EXPECT_EQ(qr.quotient.mul(Bignum(7)).add(qr.remainder), a);
    EXPECT_LT(qr.remainder.to_u64(), 7u);
}

TEST(Bignum, DivByLargerGivesZeroQuotient) {
    const auto qr = Bignum(5).divmod(Bignum(100));
    EXPECT_TRUE(qr.quotient.is_zero());
    EXPECT_EQ(qr.remainder.to_u64(), 5u);
}

TEST(Bignum, DivByZeroThrows) {
    EXPECT_THROW(Bignum(5).divmod(Bignum()), std::invalid_argument);
}

// Known regression trap for Algorithm D's rare add-back branch: dividends
// engineered so the trial quotient overestimates.
TEST(Bignum, KnuthAddBackCase) {
    const Bignum u = Bignum::from_hex("7fffffff800000010000000000000000");
    const Bignum v = Bignum::from_hex("800000008000000200000005");
    const auto qr = u.divmod(v);
    EXPECT_EQ(qr.quotient.mul(v).add(qr.remainder), u);
    EXPECT_LT(qr.remainder, v);
}

// ---------------------------------------------------------------- modular

TEST(Bignum, ModPowKnownValues) {
    // 3^200 mod 1e9+7 (independently computed)
    EXPECT_EQ(Bignum::mod_pow(Bignum(3), Bignum(200), Bignum(1000000007)).to_u64(),
              136318165u);
    EXPECT_EQ(Bignum::mod_pow(Bignum(2), Bignum(10), Bignum(1000)).to_u64(), 24u);
    EXPECT_TRUE(Bignum::mod_pow(Bignum(5), Bignum(3), Bignum(1)).is_zero());
}

TEST(Bignum, ModPowMatchesNaiveRandomized) {
    Rng rng(46);
    for (int i = 0; i < 50; ++i) {
        const std::uint64_t base = rng.uniform_below(1000) + 1;
        const std::uint64_t exp = rng.uniform_below(30);
        const std::uint64_t mod = rng.uniform_below(10000) + 2;
        std::uint64_t expected = 1 % mod;
        for (std::uint64_t k = 0; k < exp; ++k) expected = expected * base % mod;
        EXPECT_EQ(Bignum::mod_pow(Bignum(base), Bignum(exp), Bignum(mod)).to_u64(), expected)
            << base << "^" << exp << " mod " << mod;
    }
}

TEST(Bignum, FermatLittleTheorem) {
    // a^(p-1) = 1 mod p for prime p and gcd(a, p) = 1.
    const Bignum p(1000000007);
    Rng rng(47);
    for (int i = 0; i < 20; ++i) {
        const Bignum a(rng.uniform_below(1000000006) + 1);
        EXPECT_EQ(Bignum::mod_pow(a, Bignum(1000000006), p), Bignum(1));
    }
}

TEST(Bignum, GcdKnownValues) {
    EXPECT_EQ(Bignum::gcd(Bignum(12), Bignum(18)).to_u64(), 6u);
    EXPECT_EQ(Bignum::gcd(Bignum(17), Bignum(5)).to_u64(), 1u);
    EXPECT_EQ(Bignum::gcd(Bignum(0), Bignum(5)).to_u64(), 5u);
}

TEST(Bignum, ModInverseRandomized) {
    Rng rng(48);
    const Bignum m(1000000007);  // prime modulus: every nonzero a invertible
    for (int i = 0; i < 100; ++i) {
        const Bignum a(rng.uniform_below(1000000006) + 1);
        const Bignum inv = Bignum::mod_inverse(a, m);
        EXPECT_EQ(Bignum::mod_mul(a, inv, m), Bignum(1));
    }
}

TEST(Bignum, ModInverseCompositeModulus) {
    // 3 and 10 coprime: inverse exists; 4 and 10 not coprime: throws.
    EXPECT_EQ(Bignum::mod_inverse(Bignum(3), Bignum(10)).to_u64(), 7u);
    EXPECT_THROW(Bignum::mod_inverse(Bignum(4), Bignum(10)), std::domain_error);
}

// ---------------------------------------------------------------- random

TEST(Bignum, RandomBelowStaysBelow) {
    Rng rng(49);
    const Bignum bound = Bignum::from_hex("10000000000000001");
    for (int i = 0; i < 200; ++i) EXPECT_LT(Bignum::random_below(rng, bound), bound);
}

TEST(Bignum, RandomBitsHasExactWidth) {
    Rng rng(50);
    for (std::size_t bits : {8u, 17u, 64u, 127u, 256u}) {
        EXPECT_EQ(Bignum::random_bits(rng, bits).bit_length(), bits);
    }
}

// ------------------------------------------------------------- primality

TEST(Bignum, KnownPrimesPass) {
    Rng rng(51);
    for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 97ULL, 7919ULL, 1000000007ULL, 2147483647ULL}) {
        EXPECT_TRUE(Bignum::is_probable_prime(Bignum(p), rng)) << p;
    }
}

TEST(Bignum, KnownCompositesFail) {
    Rng rng(52);
    // Includes Carmichael numbers (561, 41041) that fool Fermat tests.
    for (std::uint64_t c : {1ULL, 4ULL, 561ULL, 41041ULL, 1000000008ULL,
                            2147483647ULL * 3ULL}) {
        EXPECT_FALSE(Bignum::is_probable_prime(Bignum(c), rng)) << c;
    }
}

TEST(Bignum, GeneratePrimeHasWidthAndPasses) {
    Rng rng(53);
    const Bignum p = Bignum::generate_prime(rng, 128, 16);
    EXPECT_EQ(p.bit_length(), 128u);
    EXPECT_TRUE(p.is_odd());
    EXPECT_TRUE(Bignum::is_probable_prime(p, rng));
}

}  // namespace
}  // namespace mcauth

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/authprob.hpp"
#include "core/topologies.hpp"
#include "sim/stream_sim.hpp"
#include "util/rng.hpp"

namespace mcauth {
namespace {

Channel lossless_channel() {
    return Channel(std::make_unique<BernoulliLoss>(0.0),
                   std::make_unique<ConstantDelay>(0.05));
}

Channel lossy_channel(double p) {
    return Channel(std::make_unique<BernoulliLoss>(p),
                   std::make_unique<GaussianDelay>(0.05, 0.01));
}

SimConfig quick_sim(std::size_t blocks = 4) {
    SimConfig cfg;
    cfg.blocks = blocks;
    cfg.payload_bytes = 64;
    cfg.t_transmit = 0.01;
    cfg.sign_copies = 3;
    cfg.seed = 99;
    return cfg;
}

// -------------------------------------------------------------- hash chain

TEST(StreamSim, AuthFractionIsNaNWithoutEvidence) {
    // Zero resolved packets must not read as a perfect score.
    SimStats empty;
    EXPECT_TRUE(std::isnan(empty.auth_fraction()));
    SimStats some;
    some.authenticated = 3;
    some.rejected = 1;
    EXPECT_DOUBLE_EQ(some.auth_fraction(), 0.75);
}

TEST(StreamSim, TotalLossYieldsNaNAuthFraction) {
    Rng rng(2);
    MerkleWotsSigner signer(rng, 16);
    Channel channel(std::make_unique<BernoulliLoss>(1.0),
                    std::make_unique<ConstantDelay>(0.0));
    const auto stats =
        run_hash_chain_sim(emss_config(16, 2, 1), signer, channel, quick_sim());
    EXPECT_EQ(stats.packets_received, 0u);
    EXPECT_FALSE(std::isfinite(stats.auth_fraction()));
}

TEST(MulticastSim, MergedDelayMatchesPerReceiverDelays) {
    Rng rng(24);
    MerkleWotsSigner signer(rng, 8);
    const Channel prototype(std::make_unique<BernoulliLoss>(0.1),
                            std::make_unique<ConstantDelay>(0.05));
    const auto stats = run_multicast_hash_chain_sim(emss_config(12, 2, 1), signer,
                                                    prototype, 4, quick_sim(2));
    RunningStats expected;
    for (const SimStats& one : stats.per_receiver) expected.merge(one.receiver_delay);
    EXPECT_EQ(stats.receiver_delay_all.count(), expected.count());
    EXPECT_DOUBLE_EQ(stats.receiver_delay_all.mean(), expected.mean());
    EXPECT_DOUBLE_EQ(stats.receiver_delay_all.variance(), expected.variance());
}

TEST(StreamSim, LosslessHashChainAuthenticatesAll) {
    Rng rng(1);
    MerkleWotsSigner signer(rng, 16);
    Channel channel = lossless_channel();
    const auto stats =
        run_hash_chain_sim(emss_config(16, 2, 1), signer, channel, quick_sim());
    EXPECT_EQ(stats.authenticated, 4u * 16u);
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.unverifiable, 0u);
    EXPECT_DOUBLE_EQ(stats.empirical_q_min, 1.0);
    EXPECT_GT(stats.overhead_bytes_per_packet, 0.0);
}

TEST(StreamSim, LossyEmpiricalQMinNearExactPrediction) {
    // The headline cross-validation: measured q_min from real crypto over a
    // lossy channel matches the exact dependence-graph computation.
    const double p = 0.2;
    const std::size_t n = 18;
    Rng rng(2);
    MerkleWotsSigner signer(rng, 64);
    Channel channel = lossy_channel(p);
    SimConfig cfg = quick_sim(/*blocks=*/50);
    const auto stats = run_hash_chain_sim(emss_config(n, 2, 1), signer, channel, cfg);

    const auto exact = exact_auth_prob(make_emss(n, 2, 1), p);
    // 50 blocks is small; allow a generous but meaningful tolerance.
    EXPECT_NEAR(stats.empirical_q_min, exact.q_min, 0.15);
    EXPECT_LT(stats.empirical_q_min, 1.0);
}

TEST(StreamSim, RohatgiSuffersUnderLossMoreThanEmss) {
    Rng rng(3);
    MerkleWotsSigner signer(rng, 64);
    SimConfig cfg = quick_sim(/*blocks=*/25);
    Channel c1 = lossy_channel(0.25);
    const auto rohatgi = run_hash_chain_sim(rohatgi_config(24), signer, c1, cfg);
    Channel c2 = lossy_channel(0.25);
    const auto emss = run_hash_chain_sim(emss_config(24, 2, 1), signer, c2, cfg);
    EXPECT_LT(rohatgi.auth_fraction(), emss.auth_fraction());
}

TEST(StreamSim, RohatgiHasZeroReceiverDelayInArrivalOrder) {
    // Sign-first chains authenticate each packet on arrival when delivery
    // is in order (constant delay keeps it in order).
    Rng rng(4);
    MerkleWotsSigner signer(rng, 16);
    Channel channel = lossless_channel();
    const auto stats = run_hash_chain_sim(rohatgi_config(16), signer, channel, quick_sim());
    EXPECT_DOUBLE_EQ(stats.receiver_delay.max(), 0.0);
}

TEST(StreamSim, EmssReceiverDelayWaitsForSignature) {
    Rng rng(5);
    MerkleWotsSigner signer(rng, 16);
    Channel channel = lossless_channel();
    SimConfig cfg = quick_sim();
    const auto stats = run_hash_chain_sim(emss_config(16, 2, 1), signer, channel, cfg);
    // First packet waits ~ (n-1) * t_transmit for the signature packet.
    EXPECT_NEAR(stats.receiver_delay.max(), 15.0 * cfg.t_transmit, 0.5 * cfg.t_transmit);
    EXPECT_GE(stats.max_buffered_packets, 15u);
}

// ------------------------------------------------------------------- tesla

TEST(StreamSim, TeslaTimelyStreamAuthenticates) {
    Rng rng(6);
    MerkleWotsSigner signer(rng, 4);
    TeslaConfig tesla;
    tesla.interval_duration = 0.05;
    tesla.disclosure_lag = 2;
    tesla.chain_length = 4096;
    Channel channel = lossless_channel();
    SimConfig cfg = quick_sim();
    cfg.t_transmit = 0.01;
    const auto stats = run_tesla_sim(tesla, signer, channel, cfg, /*skew=*/0.005);
    // Constant 50 ms delay < T_disclose = 100 ms: all but the tail verify.
    EXPECT_GT(stats.auth_fraction(), 0.9);
    EXPECT_EQ(stats.rejected, 0u);
    // Receiver delay is about T_disclose (keys arrive ~2 intervals later).
    EXPECT_GT(stats.receiver_delay.mean(), 0.03);
    EXPECT_LT(stats.receiver_delay.mean(), 0.2);
}

TEST(StreamSim, TeslaLateDeliveryDropsEverything) {
    Rng rng(7);
    MerkleWotsSigner signer(rng, 4);
    TeslaConfig tesla;
    tesla.interval_duration = 0.05;
    tesla.disclosure_lag = 2;
    tesla.chain_length = 4096;
    // Delay of 1 s >> T_disclose = 0.1 s: the ξ condition kills everything.
    Channel channel(std::make_unique<BernoulliLoss>(0.0),
                    std::make_unique<ConstantDelay>(1.0));
    const auto stats = run_tesla_sim(tesla, signer, channel, quick_sim(), 0.005);
    EXPECT_EQ(stats.authenticated, 0u);
    EXPECT_DOUBLE_EQ(stats.empirical_q_min, 0.0);
}

TEST(StreamSim, TeslaRobustToHeavyLoss) {
    Rng rng(8);
    MerkleWotsSigner signer(rng, 4);
    TeslaConfig tesla;
    tesla.interval_duration = 0.05;
    tesla.disclosure_lag = 3;
    tesla.chain_length = 4096;
    Channel channel(std::make_unique<BernoulliLoss>(0.4),
                    std::make_unique<ConstantDelay>(0.05));
    const auto stats = run_tesla_sim(tesla, signer, channel, quick_sim(8), 0.005);
    // λ robustness: received packets verify almost surely despite 40% loss
    // (only the stream tail misses its keys).
    EXPECT_GT(stats.auth_fraction(), 0.8);
}

// ----------------------------------------------------------- tree and sign

TEST(StreamSim, TreeIsLossProof) {
    Rng rng(9);
    MerkleWotsSigner signer(rng, 8);
    Channel channel = lossy_channel(0.5);
    const auto stats = run_tree_sim(TreeSchemeConfig{.block_size = 16, .hash_bytes = 16},
                                    signer, channel, quick_sim());
    EXPECT_DOUBLE_EQ(stats.empirical_q_min, 1.0);
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_DOUBLE_EQ(stats.receiver_delay.max(), 0.0);
}

TEST(StreamSim, SignEachIsLossProofAndExpensive) {
    Rng rng(10);
    MerkleWotsSigner signer(rng, 256);
    Channel channel = lossy_channel(0.5);
    SimConfig cfg = quick_sim(2);
    const auto stats = run_sign_each_sim(16, signer, channel, cfg);
    EXPECT_DOUBLE_EQ(stats.empirical_q_min, 1.0);
    // Overhead is a full signature per packet.
    EXPECT_GT(stats.overhead_bytes_per_packet,
              static_cast<double>(signer.signature_bytes()));
}

// --------------------------------------------------------------- multicast

TEST(MulticastSim, LosslessEveryReceiverVerifiesEverything) {
    Rng rng(20);
    MerkleWotsSigner signer(rng, 8);
    const Channel prototype(std::make_unique<BernoulliLoss>(0.0),
                            std::make_unique<ConstantDelay>(0.05));
    const auto stats = run_multicast_hash_chain_sim(emss_config(12, 2, 1), signer,
                                                    prototype, 5, quick_sim(2));
    EXPECT_EQ(stats.receivers, 5u);
    EXPECT_EQ(stats.per_receiver.size(), 5u);
    EXPECT_DOUBLE_EQ(stats.all_receivers_fraction, 1.0);
    EXPECT_DOUBLE_EQ(stats.any_receiver_fraction, 1.0);
    EXPECT_DOUBLE_EQ(stats.verified_fraction.mean(), 1.0);
}

TEST(MulticastSim, GroupDeliveryDecaysWithReceiverCount) {
    // Independent per-receiver loss: Pr{ALL receivers verify a packet}
    // shrinks with the group size even though each receiver's own rate is
    // constant — the group-scale effect the multicast setting creates.
    Rng rng(21);
    MerkleWotsSigner signer(rng, 64);
    const Channel prototype(std::make_unique<BernoulliLoss>(0.2),
                            std::make_unique<ConstantDelay>(0.05));
    SimConfig cfg = quick_sim(10);
    const auto small = run_multicast_hash_chain_sim(emss_config(16, 2, 1), signer,
                                                    prototype, 2, cfg);
    const auto large = run_multicast_hash_chain_sim(emss_config(16, 2, 1), signer,
                                                    prototype, 12, cfg);
    EXPECT_GT(small.all_receivers_fraction, large.all_receivers_fraction);
    EXPECT_GE(large.any_receiver_fraction, large.all_receivers_fraction);
    // Per-receiver experience is group-size independent (same channel law).
    EXPECT_NEAR(small.verified_fraction.mean(), large.verified_fraction.mean(), 0.1);
}

TEST(MulticastSim, ReceiversSeeIndependentLossPatterns) {
    Rng rng(22);
    MerkleWotsSigner signer(rng, 16);
    const Channel prototype(std::make_unique<BernoulliLoss>(0.3),
                            std::make_unique<ConstantDelay>(0.05));
    const auto stats = run_multicast_hash_chain_sim(emss_config(16, 2, 1), signer,
                                                    prototype, 4, quick_sim(4));
    // With independent 30% loss it is (astronomically) unlikely that all
    // receivers received identical packet counts.
    std::set<std::size_t> received_counts;
    for (const auto& r : stats.per_receiver) received_counts.insert(r.packets_received);
    EXPECT_GT(received_counts.size(), 1u);
}

TEST(StreamSim, OverheadOrdering) {
    // tree > emss overhead per packet; both > 0 (paper Fig. 10 shape).
    Rng rng(11);
    MerkleWotsSigner signer(rng, 64);
    SimConfig cfg = quick_sim(2);
    Channel c1 = lossless_channel();
    const auto emss = run_hash_chain_sim(emss_config(16, 2, 1), signer, c1, cfg);
    Channel c2 = lossless_channel();
    const auto tree =
        run_tree_sim(TreeSchemeConfig{.block_size = 16, .hash_bytes = 16}, signer, c2, cfg);
    EXPECT_GT(tree.overhead_bytes_per_packet, emss.overhead_bytes_per_packet);
}

}  // namespace
}  // namespace mcauth

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "net/channel.hpp"
#include "net/delay.hpp"
#include "net/loss.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace mcauth {
namespace {

// -------------------------------------------------------------- bernoulli

TEST(BernoulliLoss, RateMatches) {
    BernoulliLoss loss(0.3);
    Rng rng(1);
    int lost = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) lost += loss.lose_next(rng) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(lost) / n, 0.3, 0.01);
    EXPECT_DOUBLE_EQ(loss.stationary_loss_rate(), 0.3);
}

TEST(BernoulliLoss, Degenerate) {
    Rng rng(2);
    BernoulliLoss never(0.0);
    BernoulliLoss always(1.0);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(never.lose_next(rng));
        EXPECT_TRUE(always.lose_next(rng));
    }
}

TEST(BernoulliLoss, RejectsBadRate) {
    EXPECT_THROW(BernoulliLoss(-0.1), std::invalid_argument);
    EXPECT_THROW(BernoulliLoss(1.1), std::invalid_argument);
}

// --------------------------------------------------------- gilbert-elliott

TEST(GilbertElliott, StationaryRateMatchesConstruction) {
    const auto ge = GilbertElliottLoss::from_rate_and_burst(0.2, 5.0);
    EXPECT_NEAR(ge.stationary_loss_rate(), 0.2, 1e-12);
    EXPECT_NEAR(ge.mean_burst_length(), 5.0, 1e-12);
}

TEST(GilbertElliott, EmpiricalRateMatches) {
    auto ge = GilbertElliottLoss::from_rate_and_burst(0.25, 4.0);
    Rng rng(3);
    int lost = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) lost += ge.lose_next(rng) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(lost) / n, 0.25, 0.01);
}

TEST(GilbertElliott, BurstsAreLongerThanIid) {
    // Mean run length of consecutive losses should approach the configured
    // burst length, far above the i.i.d. value 1/(1-p).
    auto ge = GilbertElliottLoss::from_rate_and_burst(0.2, 8.0);
    Rng rng(4);
    const auto pattern = sample_loss_pattern(ge, rng, 400000);
    std::size_t runs = 0, lost = 0;
    bool in_run = false;
    for (bool l : pattern) {
        lost += l ? 1 : 0;
        if (l && !in_run) ++runs;
        in_run = l;
    }
    const double mean_run = static_cast<double>(lost) / static_cast<double>(runs);
    EXPECT_GT(mean_run, 5.0);
    EXPECT_LT(mean_run, 11.0);
}

TEST(GilbertElliott, ResetReturnsToGoodState) {
    GilbertElliottLoss ge(1.0, 1e-9, 0.0, 1.0);  // enters Bad immediately, stays
    Rng rng(5);
    EXPECT_TRUE(ge.lose_next(rng));
    ge.reset();
    // After reset the first transition happens from Good; with p_gb = 1 it
    // re-enters Bad — use a tame instance instead to observe the reset.
    GilbertElliottLoss tame(1e-9, 0.5, 0.0, 1.0);
    for (int i = 0; i < 20; ++i) EXPECT_FALSE(tame.lose_next(rng));
}

TEST(GilbertElliott, InfeasibleBurstRejected) {
    // rate 0.9 with burst 1 needs p_gb > 1.
    EXPECT_THROW(GilbertElliottLoss::from_rate_and_burst(0.95, 1.0), std::runtime_error);
}

// ------------------------------------------------------------------ markov

TEST(MarkovLoss, TwoStateReducesToGilbertElliott) {
    // Same chain expressed as MarkovLoss must give the same stationary rate.
    const double p_gb = 0.05, p_bg = 0.25;
    MarkovLoss markov({{1 - p_gb, p_gb}, {p_bg, 1 - p_bg}}, {0.0, 1.0});
    GilbertElliottLoss ge(p_gb, p_bg, 0.0, 1.0);
    EXPECT_NEAR(markov.stationary_loss_rate(), ge.stationary_loss_rate(), 1e-9);
}

TEST(MarkovLoss, StationaryDistributionSumsToOne) {
    MarkovLoss markov({{0.9, 0.08, 0.02}, {0.2, 0.7, 0.1}, {0.3, 0.1, 0.6}},
                      {0.0, 0.3, 1.0});
    const auto pi = markov.stationary_distribution();
    double sum = 0.0;
    for (double x : pi) sum += x;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    for (double x : pi) EXPECT_GT(x, 0.0);
}

TEST(MarkovLoss, EmpiricalMatchesStationary) {
    MarkovLoss markov({{0.9, 0.08, 0.02}, {0.2, 0.7, 0.1}, {0.3, 0.1, 0.6}},
                      {0.0, 0.3, 1.0});
    Rng rng(6);
    int lost = 0;
    const int n = 300000;
    for (int i = 0; i < n; ++i) lost += markov.lose_next(rng) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(lost) / n, markov.stationary_loss_rate(), 0.01);
}

TEST(MarkovLoss, ValidatesMatrix) {
    EXPECT_THROW(MarkovLoss({{0.5, 0.4}}, {0.0}), std::invalid_argument);  // shape
    EXPECT_THROW(MarkovLoss({{0.5, 0.4}, {0.5, 0.5}}, {0.0, 1.0}),
                 std::invalid_argument);  // row sum != 1
    EXPECT_THROW(MarkovLoss({{1.0}}, {1.5}), std::invalid_argument);  // bad loss prob
}

TEST(LossModels, ClonesAreIndependent) {
    auto ge = GilbertElliottLoss::from_rate_and_burst(0.2, 4.0);
    Rng rng(7);
    // Drive the original into some state, then clone and check the clone
    // replays identically from its own state with the same randomness.
    for (int i = 0; i < 100; ++i) ge.lose_next(rng);
    auto clone = ge.clone();
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(ge.lose_next(a), clone->lose_next(b));
}

// ------------------------------------------------- clone/reset round-trips

TEST(LossModels, GilbertElliottCloneMidBurstContinuesTheBurst) {
    // Force the chain into Bad (p_gb = 1, p_bg ~ 0): a clone taken
    // mid-burst must keep losing, and resetting the clone must return IT to
    // Good without touching the original.
    GilbertElliottLoss ge(1.0, 1e-12, 0.0, 1.0);
    Rng rng(30);
    ASSERT_TRUE(ge.lose_next(rng));  // now mid-burst
    auto clone = ge.clone();
    Rng a(31);
    for (int i = 0; i < 20; ++i) EXPECT_TRUE(clone->lose_next(a)) << i;
    clone->reset();
    // After reset the clone re-enters Bad only via a fresh Good->Bad
    // transition; with a tame chain it stays Good.
    GilbertElliottLoss tame(1e-12, 0.5, 0.0, 1.0);
    auto tame_clone = tame.clone();
    tame_clone->reset();
    Rng b(32);
    for (int i = 0; i < 20; ++i) EXPECT_FALSE(tame_clone->lose_next(b)) << i;
    // The original is still mid-burst: cloning and resetting never mutated it.
    Rng c(33);
    EXPECT_TRUE(ge.lose_next(c));
}

TEST(LossModels, MarkovCloneAfterResetReplaysStationaryRate) {
    // stationary_start: reset() re-arms the stationary pre-draw, and a
    // clone must round-trip that flag — its empirical rate matches the
    // stationary rate from the first decision on.
    MarkovLoss markov({{0.95, 0.05}, {0.4, 0.6}}, {0.0, 1.0}, /*stationary_start=*/true);
    Rng rng(34);
    for (int i = 0; i < 17; ++i) markov.lose_next(rng);  // wander off the start state
    auto clone = markov.clone();
    clone->reset();
    Rng a(35);
    int lost = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        lost += clone->lose_next(a) ? 1 : 0;
        clone->reset();  // fresh stationary draw every decision
    }
    EXPECT_NEAR(static_cast<double>(lost) / n, markov.stationary_loss_rate(), 0.01);
    // Original is unmutated by the clone's traffic: it continues its own
    // walk exactly like an untouched twin driven identically.
    MarkovLoss twin({{0.95, 0.05}, {0.4, 0.6}}, {0.0, 1.0}, true);
    Rng b2(34);
    for (int i = 0; i < 17; ++i) twin.lose_next(b2);
    Rng c1(36), c2(36);
    for (int i = 0; i < 50; ++i) EXPECT_EQ(markov.lose_next(c1), twin.lose_next(c2)) << i;
}

TEST(LossModels, TraceCloneThenResetRewindsOnlyTheClone) {
    TraceLoss trace({true, false, false, true});
    Rng rng(37);
    trace.lose_next(rng);
    trace.lose_next(rng);  // position 2
    auto clone = trace.clone();
    clone->reset();
    EXPECT_TRUE(clone->lose_next(rng));   // rewound to position 0
    EXPECT_FALSE(trace.lose_next(rng));   // original still at position 2
    EXPECT_TRUE(trace.lose_next(rng));    // ... and 3
}

// ----------------------------------------------------- batched (64-lane)

/// Out-of-tree model exercising the generic clone-fanout batched adapter:
/// stateful (position-dependent drops) and NOT overriding make_batched.
class EveryThirdLoss final : public LossModel {
public:
    bool lose_next(Rng& rng) override {
        const bool lost = next_ % 3 == 2 || rng.bernoulli(0.1);
        ++next_;
        return lost;
    }
    void reset() override { next_ = 0; }
    double stationary_loss_rate() const override { return 1.0 / 3.0 + 0.1 * 2.0 / 3.0; }
    std::string name() const override { return "every-third"; }
    std::unique_ptr<LossModel> clone() const override {
        auto copy = std::make_unique<EveryThirdLoss>();
        copy->next_ = next_;
        return copy;
    }

private:
    std::uint32_t next_ = 0;
};

/// 64 scalar replicas stepped one packet at a time — the reference the
/// batched word must match lane-for-lane, variate-for-variate.
void expect_batched_matches_scalar(const LossModel& proto, std::uint64_t seed,
                                   std::size_t packets) {
    auto batched = proto.make_batched();
    std::vector<std::unique_ptr<LossModel>> scalar;
    std::vector<Rng> batched_rngs;
    std::vector<Rng> scalar_rngs;
    for (std::size_t l = 0; l < 64; ++l) {
        scalar.push_back(proto.clone());
        scalar.back()->reset();
        batched_rngs.emplace_back(seed + l);
        scalar_rngs.emplace_back(seed + l);
    }
    batched->reset();
    for (std::size_t i = 0; i < packets; ++i) {
        const std::uint64_t word = batched->lose_next64(batched_rngs.data());
        for (std::size_t l = 0; l < 64; ++l) {
            const bool expect = scalar[l]->lose_next(scalar_rngs[l]);
            EXPECT_EQ((word >> l) & 1ULL, expect ? 1ULL : 0ULL) << "packet " << i
                                                                << " lane " << l;
        }
    }
    // Lane generators consumed exactly the scalar variate counts.
    for (std::size_t l = 0; l < 64; ++l)
        EXPECT_EQ(batched_rngs[l].next_u64(), scalar_rngs[l].next_u64()) << l;
}

TEST(BatchedLoss, BernoulliLaneVsScalar) {
    expect_batched_matches_scalar(BernoulliLoss(0.3), 500, 100);
}

TEST(BatchedLoss, BernoulliDegenerateRatesConsumeNoVariates) {
    expect_batched_matches_scalar(BernoulliLoss(0.0), 501, 50);
    expect_batched_matches_scalar(BernoulliLoss(1.0), 502, 50);
}

TEST(BatchedLoss, GilbertElliottLaneVsScalar) {
    expect_batched_matches_scalar(GilbertElliottLoss::from_rate_and_burst(0.2, 4.0), 503,
                                  200);
}

TEST(BatchedLoss, GilbertElliottDegenerateLossProbsLaneVsScalar) {
    // loss_good/loss_bad strictly between 0 and 1 exercise the per-packet
    // bernoulli draw in BOTH states.
    expect_batched_matches_scalar(GilbertElliottLoss(0.1, 0.3, 0.05, 0.9), 504, 200);
}

TEST(BatchedLoss, MarkovLaneVsScalar) {
    expect_batched_matches_scalar(
        MarkovLoss({{0.9, 0.08, 0.02}, {0.2, 0.7, 0.1}, {0.3, 0.1, 0.6}}, {0.0, 0.3, 1.0}),
        505, 200);
}

TEST(BatchedLoss, MarkovStationaryStartLaneVsScalar) {
    expect_batched_matches_scalar(MarkovLoss({{0.95, 0.05}, {0.4, 0.6}}, {0.0, 1.0},
                                             /*stationary_start=*/true),
                                  506, 100);
}

TEST(BatchedLoss, TraceLaneVsScalar) {
    expect_batched_matches_scalar(TraceLoss({true, false, false, true, false}), 507, 23);
}

TEST(BatchedLoss, GenericAdapterCoversOutOfTreeModels) {
    expect_batched_matches_scalar(EveryThirdLoss(), 508, 100);
}

/// sample_block must be exactly a loop of lose_next64 — same words, same
/// per-lane generator states afterwards — for any count, including ragged
/// (< 64) and multi-chunk (> 64) ones.
void expect_block_matches_stepwise(const LossModel& proto, std::uint64_t seed,
                                   std::size_t count) {
    auto stepwise = proto.make_batched();
    auto block = proto.make_batched();
    std::vector<Rng> step_rngs;
    std::vector<Rng> block_rngs;
    for (std::size_t l = 0; l < 64; ++l) {
        step_rngs.emplace_back(seed + l);
        block_rngs.emplace_back(seed + l);
    }
    stepwise->reset();
    block->reset();
    std::vector<std::uint64_t> expect(count);
    for (std::size_t k = 0; k < count; ++k)
        expect[k] = stepwise->lose_next64(step_rngs.data());
    std::vector<std::uint64_t> got(count, 0xdeadbeefULL);
    block->sample_block(block_rngs.data(), got.data(), count);
    for (std::size_t k = 0; k < count; ++k) EXPECT_EQ(got[k], expect[k]) << k;
    for (std::size_t l = 0; l < 64; ++l)
        EXPECT_EQ(block_rngs[l].next_u64(), step_rngs[l].next_u64()) << l;
}

TEST(BatchedLoss, BernoulliBlockMatchesStepwise) {
    for (std::size_t count : {std::size_t{1}, std::size_t{37}, std::size_t{64},
                              std::size_t{65}, std::size_t{200}}) {
        expect_block_matches_stepwise(BernoulliLoss(0.3), 600 + count, count);
    }
}

TEST(BatchedLoss, BernoulliBlockDegenerateRates) {
    expect_block_matches_stepwise(BernoulliLoss(0.0), 700, 70);
    expect_block_matches_stepwise(BernoulliLoss(1.0), 701, 70);
}

TEST(BatchedLoss, DefaultBlockMatchesStepwiseForStatefulModels) {
    expect_block_matches_stepwise(TraceLoss({true, false, true}), 703, 10);
}

TEST(BatchedLoss, GilbertElliottBlockMatchesStepwise) {
    // The hot specialization: loss_good = 0, loss_bad = 1, transitions in
    // (0,1) — one variate per packet per lane. Ragged, exact and multi-chunk
    // counts.
    for (std::size_t count : {std::size_t{1}, std::size_t{37}, std::size_t{64},
                              std::size_t{65}, std::size_t{200}}) {
        expect_block_matches_stepwise(GilbertElliottLoss::from_rate_and_burst(0.3, 8.0),
                                      710 + count, count);
    }
}

TEST(BatchedLoss, GilbertElliottBlockGenericParameters) {
    // Fractional loss probabilities in both states: two variates per packet.
    expect_block_matches_stepwise(GilbertElliottLoss(0.2, 0.4, 0.1, 0.9), 720, 200);
    // loss_good = 1 and loss_bad = 0 (inverted channel): loss draws are
    // no-variate constants but NOT the hot shape.
    expect_block_matches_stepwise(GilbertElliottLoss(0.3, 0.5, 1.0, 0.0), 721, 100);
    // burst = 1 gives p_bad_to_good = 1: an always-transition with no draw.
    expect_block_matches_stepwise(GilbertElliottLoss(0.25, 1.0, 0.0, 1.0), 722, 130);
}

TEST(BatchedLoss, GilbertElliottBlockCarriesStateAcrossCalls) {
    // Burst state must survive between sample_block calls exactly as it
    // does between lose_next64 calls.
    const auto proto = GilbertElliottLoss::from_rate_and_burst(0.2, 6.0);
    auto stepwise = proto.make_batched();
    auto block = proto.make_batched();
    std::vector<Rng> step_rngs;
    std::vector<Rng> block_rngs;
    for (std::size_t l = 0; l < 64; ++l) {
        step_rngs.emplace_back(730 + l);
        block_rngs.emplace_back(730 + l);
    }
    stepwise->reset();
    block->reset();
    std::vector<std::uint64_t> expect(90);
    for (auto& w : expect) w = stepwise->lose_next64(step_rngs.data());
    std::vector<std::uint64_t> got(90, 0);
    block->sample_block(block_rngs.data(), got.data(), 40);
    block->sample_block(block_rngs.data(), got.data() + 40, 50);
    for (std::size_t k = 0; k < 90; ++k) EXPECT_EQ(got[k], expect[k]) << k;
}

// ------------------------------------------------------------------- trace

TEST(TraceLoss, ReplaysPatternAndLoops) {
    TraceLoss trace({true, false, false});
    Rng rng(20);
    for (int lap = 0; lap < 3; ++lap) {
        EXPECT_TRUE(trace.lose_next(rng)) << lap;
        EXPECT_FALSE(trace.lose_next(rng)) << lap;
        EXPECT_FALSE(trace.lose_next(rng)) << lap;
    }
}

TEST(TraceLoss, ResetRewinds) {
    TraceLoss trace({true, false});
    Rng rng(21);
    trace.lose_next(rng);
    trace.reset();
    EXPECT_TRUE(trace.lose_next(rng));
}

TEST(TraceLoss, RateIsPatternFraction) {
    TraceLoss trace({true, true, false, false, false});
    EXPECT_DOUBLE_EQ(trace.stationary_loss_rate(), 0.4);
    EXPECT_EQ(trace.length(), 5u);
}

TEST(TraceLoss, EmptyPatternRejected) {
    EXPECT_THROW(TraceLoss({}), std::invalid_argument);
}

TEST(TraceLoss, CloneStartsFromSamePosition) {
    TraceLoss trace({true, false, true});
    Rng rng(22);
    trace.lose_next(rng);
    auto clone = trace.clone();
    EXPECT_FALSE(clone->lose_next(rng));  // continues at position 1
    EXPECT_TRUE(clone->lose_next(rng));
}

// ------------------------------------------------------------------ delays

TEST(ConstantDelay, Exact) {
    ConstantDelay d(0.25);
    Rng rng(8);
    EXPECT_DOUBLE_EQ(d.sample(rng), 0.25);
    EXPECT_DOUBLE_EQ(d.cdf(0.2), 0.0);
    EXPECT_DOUBLE_EQ(d.cdf(0.25), 1.0);
    EXPECT_DOUBLE_EQ(d.mean(), 0.25);
}

TEST(GaussianDelay, MomentsAndCdf) {
    GaussianDelay d(0.5, 0.1);
    Rng rng(9);
    RunningStats stats;
    for (int i = 0; i < 100000; ++i) stats.add(d.sample(rng));
    EXPECT_NEAR(stats.mean(), 0.5, 0.005);
    EXPECT_NEAR(stats.stddev(), 0.1, 0.005);
    EXPECT_NEAR(d.cdf(0.5), 0.5, 1e-12);
    EXPECT_NEAR(d.cdf(0.5 + 1.96 * 0.1), 0.975, 1e-3);
}

TEST(GaussianDelay, SamplesAreNonNegative) {
    GaussianDelay d(0.01, 0.5);  // heavy truncation regime
    Rng rng(10);
    for (int i = 0; i < 10000; ++i) EXPECT_GE(d.sample(rng), 0.0);
}

TEST(GaussianDelay, ZeroSigmaIsStep) {
    GaussianDelay d(0.3, 0.0);
    EXPECT_DOUBLE_EQ(d.cdf(0.29), 0.0);
    EXPECT_DOUBLE_EQ(d.cdf(0.31), 1.0);
}

TEST(ShiftedExponentialDelay, MomentsAndCdf) {
    ShiftedExponentialDelay d(0.1, 0.2);
    Rng rng(11);
    RunningStats stats;
    for (int i = 0; i < 100000; ++i) {
        const double x = d.sample(rng);
        EXPECT_GE(x, 0.1);
        stats.add(x);
    }
    EXPECT_NEAR(stats.mean(), 0.3, 0.005);
    EXPECT_DOUBLE_EQ(d.cdf(0.1), 0.0);
    EXPECT_NEAR(d.cdf(0.1 + 0.2), 1.0 - std::exp(-1.0), 1e-9);
}

// ----------------------------------------------------------------- channel

TEST(Channel, LosslessDeliversEverythingInOrder) {
    Channel ch(std::make_unique<BernoulliLoss>(0.0), std::make_unique<ConstantDelay>(0.1));
    Rng rng(12);
    const auto deliveries = send_paced_stream(ch, rng, 100, 0.01);
    ASSERT_EQ(deliveries.size(), 100u);
    for (std::size_t i = 0; i < 100; ++i) {
        EXPECT_FALSE(deliveries[i].lost);
        EXPECT_NEAR(deliveries[i].arrival_time, 0.01 * static_cast<double>(i) + 0.1, 1e-12);
    }
    const auto order = arrival_order(deliveries);
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(Channel, LossRateObserved) {
    Channel ch(std::make_unique<BernoulliLoss>(0.3), std::make_unique<ConstantDelay>(0.0));
    Rng rng(13);
    const auto deliveries = send_paced_stream(ch, rng, 50000, 0.001);
    std::size_t lost = 0;
    for (const auto& d : deliveries) lost += d.lost ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(lost) / 50000.0, 0.3, 0.01);
}

TEST(Channel, JitterCausesReordering) {
    // With pacing far below jitter, some adjacent pairs must cross.
    Channel ch(std::make_unique<BernoulliLoss>(0.0),
               std::make_unique<GaussianDelay>(0.1, 0.05));
    Rng rng(14);
    const auto deliveries = send_paced_stream(ch, rng, 2000, 0.001);
    const auto order = arrival_order(deliveries);
    EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
}

TEST(Channel, CloneSharesNothing) {
    Channel ch(std::make_unique<BernoulliLoss>(0.5), std::make_unique<ConstantDelay>(0.0));
    Channel copy = ch.clone();
    Rng a(15), b(15);
    // Same seeds, fresh state on both sides: identical behaviour.
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(ch.transmit(0.0, a).has_value(), copy.transmit(0.0, b).has_value());
}

}  // namespace
}  // namespace mcauth

// obs::TimeSeries: snapshot-delta capture, the merge algebra (accumulator
// kinds add, level kinds take the merged-in side), canonical sample order,
// and the JSONL/CSV export formats tools/mcauth_report joins on.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace mcauth::obs {
namespace {

using Kind = TimeSeries::Kind;

const TimeSeries::Sample* find(const TimeSeries& ts, std::uint32_t block,
                               const std::string& series, Kind kind) {
    for (const TimeSeries::Sample& s : ts.samples())
        if (s.block == block && s.series == series && s.kind == kind) return &s;
    return nullptr;
}

TEST(TimeSeriesTest, CaptureRecordsDeltasNotTotals) {
    MetricsRegistry reg;
    reg.counter("pkts").add(10);
    reg.gauge("occupancy").set(0.5);

    TimeSeries ts;
    ts.capture(1, reg.snapshot());  // first capture: absolute values
    reg.counter("pkts").add(3);
    reg.gauge("occupancy").set(0.25);
    ts.capture(2, reg.snapshot());
    // No activity between captures: zero counter deltas are skipped,
    // gauge levels always land.
    ts.capture(3, reg.snapshot());

    ASSERT_NE(find(ts, 1, "pkts", Kind::kCounter), nullptr);
    EXPECT_DOUBLE_EQ(find(ts, 1, "pkts", Kind::kCounter)->value, 10.0);
    ASSERT_NE(find(ts, 2, "pkts", Kind::kCounter), nullptr);
    EXPECT_DOUBLE_EQ(find(ts, 2, "pkts", Kind::kCounter)->value, 3.0);
    EXPECT_EQ(find(ts, 3, "pkts", Kind::kCounter), nullptr);
    EXPECT_DOUBLE_EQ(find(ts, 2, "occupancy", Kind::kGauge)->value, 0.25);
    ASSERT_NE(find(ts, 3, "occupancy", Kind::kGauge), nullptr);
}

TEST(TimeSeriesTest, CaptureRecordsHistogramDeltas) {
    MetricsRegistry reg;
    reg.histogram("lat").record_ns(100);
    reg.histogram("lat").record_ns(200);

    TimeSeries ts;
    ts.capture(1, reg.snapshot());
    // Cross bucket boundaries on the second block: 2^k edges land samples
    // in different buckets, but the delta tracks count/sum totals, so the
    // per-block numbers must be exactly the increments.
    reg.histogram("lat").record_ns(1 << 20);
    reg.histogram("lat").record_ns((1 << 20) + 1);
    reg.histogram("lat").record_ns(7);
    ts.capture(2, reg.snapshot());

    EXPECT_DOUBLE_EQ(find(ts, 1, "lat", Kind::kHistogramCount)->value, 2.0);
    EXPECT_DOUBLE_EQ(find(ts, 1, "lat", Kind::kHistogramSumNs)->value, 300.0);
    EXPECT_DOUBLE_EQ(find(ts, 2, "lat", Kind::kHistogramCount)->value, 3.0);
    EXPECT_DOUBLE_EQ(find(ts, 2, "lat", Kind::kHistogramSumNs)->value,
                     double((1 << 20) + (1 << 20) + 1 + 7));
}

TEST(TimeSeriesTest, RecordOverwritesAndSamplesStaySorted) {
    TimeSeries ts;
    ts.record("q_min", 7, 0.5);
    ts.record("a_first", 7, 1.0);  // earlier key, inserted later
    ts.record("q_min", 3, 0.9);
    ts.record("q_min", 7, 0.75);  // overwrite

    ASSERT_EQ(ts.samples().size(), 3u);
    EXPECT_EQ(ts.samples()[0].block, 3u);
    EXPECT_EQ(ts.samples()[1].series, "a_first");
    EXPECT_EQ(ts.samples()[2].series, "q_min");
    EXPECT_DOUBLE_EQ(ts.samples()[2].value, 0.75);
}

TEST(TimeSeriesTest, MergeAddsAccumulatorsAndTakesLevels) {
    MetricsRegistry reg_a;
    reg_a.counter("pkts").add(5);
    reg_a.gauge("level").set(1.0);
    TimeSeries a;
    a.capture(1, reg_a.snapshot());
    a.record("manual", 1, 0.25);

    MetricsRegistry reg_b;
    reg_b.counter("pkts").add(7);
    reg_b.gauge("level").set(2.0);
    TimeSeries b;
    b.capture(1, reg_b.snapshot());
    b.record("manual", 1, 0.75);
    b.record("only_b", 2, 4.0);

    a.merge(b);
    EXPECT_DOUBLE_EQ(find(a, 1, "pkts", Kind::kCounter)->value, 12.0);
    EXPECT_DOUBLE_EQ(find(a, 1, "level", Kind::kGauge)->value, 2.0);
    EXPECT_DOUBLE_EQ(find(a, 1, "manual", Kind::kValue)->value, 0.75);
    ASSERT_NE(find(a, 2, "only_b", Kind::kValue), nullptr);
}

TEST(TimeSeriesTest, IdenticalIsBitExact) {
    TimeSeries a, b;
    a.record("x", 1, 0.1);
    b.record("x", 1, 0.1);
    EXPECT_TRUE(a.identical(b));
    b.record("x", 1, 0.1 + 1e-18);  // overwrite with a near-equal value
    EXPECT_TRUE(a.identical(b));    // below half an ulp: rounds back to 0.1
    b.record("x", 1, 0.1000001);
    EXPECT_FALSE(a.identical(b));
    b.record("x", 1, 0.1);
    b.record("y", 2, 0.0);
    EXPECT_FALSE(a.identical(b));  // extra sample
}

TEST(TimeSeriesTest, JsonlAndCsvFormats) {
    MetricsRegistry reg;
    reg.counter("pkts").add(2);
    TimeSeries ts;
    ts.capture(4, reg.snapshot());
    ts.record("q_min", 4, 0.875);

    const std::string jsonl = ts.to_jsonl();
    std::istringstream lines(jsonl);
    std::string meta, first;
    ASSERT_TRUE(std::getline(lines, meta));
    EXPECT_NE(meta.find("\"schema\": \"mcauth-timeseries-v1\""),
              std::string::npos)
        << meta;
    EXPECT_NE(meta.find("\"samples\": 2"), std::string::npos) << meta;
    ASSERT_TRUE(std::getline(lines, first));
    EXPECT_EQ(first,
              "{\"block\": 4, \"series\": \"pkts\", \"kind\": \"counter\", "
              "\"value\": 2}");

    const std::string csv = ts.to_csv();
    EXPECT_EQ(csv.substr(0, csv.find('\n')), "block,series,kind,value");
    EXPECT_NE(csv.find("4,pkts,counter,2"), std::string::npos) << csv;
    EXPECT_NE(csv.find("4,q_min,value,0.875"), std::string::npos) << csv;
}

}  // namespace
}  // namespace mcauth::obs

#include <gtest/gtest.h>

#include <cmath>

#include "core/authprob.hpp"
#include "core/exact_dp.hpp"
#include "core/topologies.hpp"
#include "util/rng.hpp"

namespace mcauth {
namespace {

// ----------------------------------------------------------- MarkovChannel

TEST(MarkovChannel, BernoulliBasics) {
    const auto ch = MarkovChannel::bernoulli(0.3);
    EXPECT_EQ(ch.states(), 1u);
    EXPECT_NEAR(ch.stationary_loss_rate(), 0.3, 1e-12);
    EXPECT_NEAR(ch.reversed()[0][0], 1.0, 1e-12);
}

TEST(MarkovChannel, GilbertElliottRateAndBurst) {
    const auto ch = MarkovChannel::gilbert_elliott(0.2, 5.0);
    EXPECT_EQ(ch.states(), 2u);
    EXPECT_NEAR(ch.stationary_loss_rate(), 0.2, 1e-9);
    // Mean burst = 1 / P(bad -> good).
    EXPECT_NEAR(1.0 / ch.transition[1][0], 5.0, 1e-9);
}

TEST(MarkovChannel, ReversedIsStochasticAndPreservesPi) {
    const auto ch = MarkovChannel::gilbert_elliott(0.25, 4.0);
    const auto rev = ch.reversed();
    for (const auto& row : rev) {
        double sum = 0.0;
        for (double x : row) sum += x;
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
    // Two-state chains are reversible: the reversal equals the original.
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 2; ++j)
            EXPECT_NEAR(rev[i][j], ch.transition[i][j], 1e-9);
}

TEST(MarkovChannel, ToLossModelMatchesRate) {
    const auto ch = MarkovChannel::gilbert_elliott(0.15, 3.0);
    const auto model = ch.to_loss_model();
    EXPECT_NEAR(model->stationary_loss_rate(), 0.15, 1e-9);
    // Stationary start: the empirical rate matches from packet one, without
    // a good-state transient.
    Rng rng(1);
    std::size_t lost = 0;
    const std::size_t trials = 200000;
    for (std::size_t t = 0; t < trials; ++t) {
        model->reset();
        lost += model->lose_next(rng) ? 1 : 0;  // FIRST decision of each trial
    }
    EXPECT_NEAR(static_cast<double>(lost) / trials, 0.15, 0.005);
}

// ------------------------------------------------------ DP vs ground truth

struct DpCase {
    std::vector<std::size_t> offsets;
    double p;
};

class DpMatchesExhaustive : public ::testing::TestWithParam<DpCase> {};

TEST_P(DpMatchesExhaustive, AllVerticesAgree) {
    const auto& [offsets, p] = GetParam();
    const std::size_t n = 16;
    const auto dg = make_offset_scheme(n, offsets);
    const auto brute = exact_auth_prob(dg, p);
    const auto dp = exact_offset_auth_prob(n, offsets, MarkovChannel::bernoulli(p));
    for (std::size_t v = 1; v < n; ++v)
        EXPECT_NEAR(dp.q[v], brute.q[v], 1e-10) << "v=" << v;
    EXPECT_NEAR(dp.q_min, brute.q_min, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Schemes, DpMatchesExhaustive,
                         ::testing::Values(DpCase{{1}, 0.2}, DpCase{{1, 2}, 0.1},
                                           DpCase{{1, 2}, 0.3}, DpCase{{1, 2}, 0.5},
                                           DpCase{{1, 3}, 0.3}, DpCase{{2, 5}, 0.3},
                                           DpCase{{1, 2, 4}, 0.4}, DpCase{{1, 6}, 0.25}));

TEST(ExactDp, RohatgiClosedFormUnderBernoulli) {
    const double p = 0.25;
    const auto dp = exact_offset_auth_prob(20, {1}, MarkovChannel::bernoulli(p));
    for (std::size_t v = 1; v < 20; ++v)
        EXPECT_NEAR(dp.q[v], std::pow(1.0 - p, static_cast<double>(v - 1)), 1e-12);
}

TEST(ExactDp, NeverExceedsPaperRecurrence) {
    // Shared-path correlation only hurts: the exact value is bounded above
    // by the paper's independence recurrence, at every vertex.
    for (double p : {0.1, 0.3, 0.5}) {
        const std::size_t n = 300;
        const auto rec = recurrence_auth_prob(make_emss(n, 2, 1), p);
        const auto dp = exact_offset_auth_prob(n, {1, 2}, MarkovChannel::bernoulli(p));
        for (std::size_t v = 1; v < n; ++v)
            EXPECT_LE(dp.q[v], rec.q[v] + 1e-9) << "p=" << p << " v=" << v;
    }
}

TEST(ExactDp, MatchesMonteCarloUnderBurstyLoss) {
    const std::size_t n = 60;
    const std::vector<std::size_t> offsets{1, 4};
    const auto channel = MarkovChannel::gilbert_elliott(0.2, 3.0);
    const auto dp = exact_offset_auth_prob(n, offsets, channel);

    const auto dg = make_offset_scheme(n, offsets);
    const auto loss = channel.to_loss_model();
    Rng rng(7);
    const auto mc = monte_carlo_auth_prob(dg, *loss, rng.next_u64(), 120000);
    for (std::size_t v = 1; v < n; v += 7)
        EXPECT_NEAR(dp.q[v], mc.q[v], 0.01) << "v=" << v;
    EXPECT_NEAR(dp.q_min, mc.q_min, 0.01);
}

TEST(ExactDp, BurstsHurtShortOffsetsMore) {
    const std::size_t n = 200;
    const double rate = 0.2;
    const auto iid = MarkovChannel::bernoulli(rate);
    const auto bursty = MarkovChannel::gilbert_elliott(rate, 6.0);
    // Short-span scheme: bursts are catastrophic.
    const double short_iid = exact_offset_auth_prob(n, {1, 2}, iid).q_min;
    const double short_bursty = exact_offset_auth_prob(n, {1, 2}, bursty).q_min;
    EXPECT_LT(short_bursty, short_iid);
    // Wide-span scheme: bursts hurt far less.
    const double wide_bursty = exact_offset_auth_prob(n, {1, 12}, bursty).q_min;
    EXPECT_GT(wide_bursty, short_bursty);
}

TEST(ExactDp, QDecreasesWithDistanceFromRoot) {
    const auto dp = exact_offset_auth_prob(100, {1, 2}, MarkovChannel::bernoulli(0.2));
    for (std::size_t v = 3; v < 100; ++v) EXPECT_LE(dp.q[v], dp.q[v - 1] + 1e-12);
}

TEST(ExactDp, ZeroAndTotalLoss) {
    const auto none = exact_offset_auth_prob(50, {1, 2}, MarkovChannel::bernoulli(0.0));
    EXPECT_DOUBLE_EQ(none.q_min, 1.0);
    const auto all = exact_offset_auth_prob(50, {1, 2}, MarkovChannel::bernoulli(1.0));
    EXPECT_DOUBLE_EQ(all.q[1], 1.0);  // root-adjacent
    EXPECT_DOUBLE_EQ(all.q[5], 0.0);
}

TEST(ExactDp, WindowCapEnforced) {
    EXPECT_THROW(
        exact_offset_auth_prob(100, {1, 30}, MarkovChannel::bernoulli(0.1), 1 << 16),
        std::invalid_argument);
}

TEST(ExactDp, InputValidation) {
    EXPECT_THROW(exact_offset_auth_prob(100, {}, MarkovChannel::bernoulli(0.1)),
                 std::invalid_argument);
    EXPECT_THROW(exact_offset_auth_prob(100, {0}, MarkovChannel::bernoulli(0.1)),
                 std::invalid_argument);
    EXPECT_THROW(exact_offset_auth_prob(1, {1}, MarkovChannel::bernoulli(0.1)),
                 std::invalid_argument);
}

}  // namespace
}  // namespace mcauth

// Ablation A8 — the multicast group view. The paper evaluates q_min from
// one receiver's perspective; the setting it motivates (§1: one source,
// many recipients) adds a group-level metric: the fraction of packets that
// EVERY receiver can authenticate, which decays ~ q^R under independent
// per-receiver loss. This is where scheme robustness gets amplified: a
// per-receiver difference of a few percent becomes a large group-delivery
// gap at realistic group sizes.
#include "bench_common.hpp"
#include "crypto/signature.hpp"
#include "sim/stream_sim.hpp"

using namespace mcauth;

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "abl_multicast");
    bench::note("[abl8] Multicast fan-out: group delivery vs receiver count; "
                "p = 0.15, n = 24, 12 blocks");
    Rng rng(81);
    MerkleWotsSigner signer(rng, 160);  // 12 blocks x 12 scheme/group runs

    SimConfig sim;
    sim.blocks = 12;
    sim.payload_bytes = 96;
    sim.t_transmit = 0.005;
    sim.sign_copies = 3;
    sim.seed = 9;

    TablePrinter table({"scheme", "receivers", "per-rcvr verified", "all-rcvrs", "any-rcvr"});
    for (const char* which : {"emss21", "emss28", "rohatgi"}) {
        const HashChainConfig scheme = std::string(which) == "emss21"
                                           ? emss_config(24, 2, 1)
                                       : std::string(which) == "emss28"
                                           ? emss_config(24, 2, 8)
                                           : rohatgi_config(24);
        for (std::size_t receivers : {1u, 4u, 16u, 64u}) {
            const Channel prototype(std::make_unique<BernoulliLoss>(0.15),
                                    std::make_unique<GaussianDelay>(0.03, 0.005));
            const auto stats =
                run_multicast_hash_chain_sim(scheme, signer, prototype, receivers, sim);
            table.add_row({scheme.name, std::to_string(receivers),
                           TablePrinter::num(stats.verified_fraction.mean(), 4),
                           TablePrinter::num(stats.all_receivers_fraction, 4),
                           TablePrinter::num(stats.any_receiver_fraction, 4)});
        }
    }
    bench::emit(table, "abl8");
    bench::note("\nreading: the per-receiver column is flat in group size; the all-"
                "\nreceivers column decays ~ q^R, collapsing fastest for the weakest"
                "\nscheme — group-scale amplifies per-receiver robustness differences.");
    return 0;
}

// Ablation — design-as-a-service at fleet scale (DESIGN.md §15): can 1k+
// concurrent multicast groups, each with its own adaptive controller, hold
// the q_min target through channel-regime changes WITHOUT blowing the
// fleet's redesign CPU budget?
//
// All controllers share ONE design::Designer (AdaptiveOptions::designer).
// Groups cluster into a handful of channel states per regime, so the fleet
// only pays for a design once per quantized cell; every other group's
// redesign is a cache hit. The counterfactual arm is measured, not
// simulated: the uncached free-function designers are timed on a sample of
// the operating points the fleet actually requested, and that fresh-build
// cost is extrapolated to every topology fetch the fleet made.
//
// Acceptance (RESULT: FAIL / exit 1 on miss):
//   * the shared-service fleet's total design time stays within the
//     redesign budget (20 ms per 1k groups per redesign-wave block);
//   * the extrapolated uncached cost blows that same budget (the ablation
//     is vacuous otherwise);
//   * >= 98% of groups end every regime holding q_min >= target - slack
//     under their true channel (Monte-Carlo, evaluated once per distinct
//     (design, regime) pair — groups sharing a cell share the verdict);
//   * the whole run passes the adaptive-loop expectation suite (every
//     redesign answered by a DesignServed within the lag bound).
//
// Flags beyond the shared bench surface (bench_common.hpp):
//   --smoke=0|1   shrink the fleet for CI (64 groups; default 0)
//   --groups=N    fleet size (default 1024)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "adapt/controller.hpp"
#include "bench_common.hpp"
#include "core/authprob.hpp"
#include "core/serialize.hpp"
#include "core/topologies.hpp"
#include "design/constructors.hpp"
#include "design/service.hpp"
#include "net/loss.hpp"
#include "util/rng.hpp"

using namespace mcauth;

namespace {

double now_seconds() {
    using clock = std::chrono::steady_clock;
    static const clock::time_point start = clock::now();
    return std::chrono::duration<double>(clock::now() - start).count();
}

// Channel regimes the whole fleet moves through; each group sees the
// regime rate plus a stable per-group offset (so groups spread over a few
// quantization cells instead of collapsing into one).
struct Regime {
    const char* name;
    std::uint32_t first_block;
    double p;
    double mean_burst;  // 1.0 = i.i.d.
};

std::unique_ptr<LossModel> true_channel(double p, double burst) {
    const double rate = std::clamp(p, 1e-3, 0.999);
    if (burst > 1.75)
        return std::make_unique<GilbertElliottLoss>(
            GilbertElliottLoss::from_rate_and_burst(rate, burst));
    return std::make_unique<BernoulliLoss>(rate);
}

}  // namespace

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "abl_design_service", 1, {"smoke", "groups"});
    const bool smoke = bm.args().get_bool("smoke", false);
    const std::size_t groups = static_cast<std::size_t>(
        bm.args().get_int("groups", smoke ? 64 : 1024));
    const std::uint32_t blocks = smoke ? 18 : 36;
    const std::size_t n_packets = 64;
    // 20 ms of design CPU per 1k groups per redesign-wave block: generous
    // for cache hits, hopeless for per-group fresh builds.
    const double budget_per_wave_block =
        0.020 * static_cast<double>(groups) / 1000.0;

    bench::note("[abl] design-as-a-service: " + std::to_string(groups) +
                " groups, one shared designer, regime changes (DESIGN.md §15)");

    const Regime regimes[] = {
        {"calm", 0, 0.06, 1.0},
        {"storm", blocks / 3, 0.28, 5.0},
        {"recovery", 2 * blocks / 3, 0.12, 1.0},
    };
    const auto regime_at = [&](std::uint32_t block) -> const Regime& {
        const Regime* current = &regimes[0];
        for (const Regime& r : regimes)
            if (block >= r.first_block) current = &r;
        return *current;
    };

    auto designer = std::make_shared<design::Designer>();
    adapt::AdaptiveOptions options;
    options.designer = designer;
    options.mc_trials = 192;
    options.min_blocks_between_redesigns = 2;

    std::vector<std::unique_ptr<adapt::AdaptiveController>> fleet;
    fleet.reserve(groups);
    for (std::size_t g = 0; g < groups; ++g)
        fleet.push_back(std::make_unique<adapt::AdaptiveController>(
            options, bm.seed() + g));

    // Latest design per group, refreshed on every redesign.
    std::vector<DependenceGraph> current(groups, make_offset_scheme(n_packets, {1}));
    std::vector<bool> designed(groups, false);

    const obs::ExpectationSuite* suite = obs::find_suite("adaptive-loop");
    obs::set_trace_enabled(true);
    auto conformance = std::make_unique<obs::OnlineConformance>(*suite);

    double service_seconds = 0.0;
    std::size_t fetches = 0;
    std::size_t wave_blocks = 0;
    for (std::uint32_t block = 1; block <= blocks; ++block) {
        const Regime& regime = regime_at(block);
        bool wave = false;
        for (std::size_t g = 0; g < groups; ++g) {
            // Stable per-group spread: a few distinct offsets -> a few
            // quantization cells per regime, the shape a real fleet has.
            const double offset = 0.004 * static_cast<double>(g % 8);
            adapt::FeedbackReport report;
            report.receiver_id = 0;
            report.seq = block;
            report.last_block = block;
            report.est_loss_rate = regime.p + offset;
            report.est_mean_burst = regime.mean_burst;
            report.set_window(1000, static_cast<std::uint64_t>(
                                        1000.0 * report.est_loss_rate));
            fleet[g]->on_feedback(report);
            if (fleet[g]->on_block_boundary(block)) {
                const double t0 = now_seconds();
                current[g] = fleet[g]->topology()(n_packets);
                service_seconds += now_seconds() - t0;
                designed[g] = true;
                ++fetches;
                wave = true;
            }
        }
        if (wave) ++wave_blocks;
    }

    const design::Designer::Stats stats = designer->stats();
    const double budget = budget_per_wave_block * static_cast<double>(wave_blocks);

    // --------------------------------------------- counterfactual: uncached
    // Time the free-function oracles at the operating points the fleet
    // actually requested (one per distinct cell the service built), then
    // charge that fresh cost to every topology fetch the fleet made.
    std::vector<double> fresh_samples;
    for (const Regime& regime : regimes) {
        for (const std::size_t spread : {std::size_t{0}, std::size_t{7}}) {
            design::DesignRequest req;
            req.goal.n = n_packets;
            req.goal.p = regime.p + 0.004 * static_cast<double>(spread);
            req.goal.target_q_min =
                std::min(1.0, options.target_q_min + options.design_margin);
            req.method = regime.mean_burst >= options.burst_threshold
                             ? design::DesignMethod::kGreedyChannel
                             : design::DesignMethod::kGreedy;
            req.mean_burst = regime.mean_burst;
            req.mc_trials = options.mc_trials;
            const design::DesignRequest mat = designer->materialize(req);
            const double t0 = now_seconds();
            if (req.method == design::DesignMethod::kGreedyChannel) {
                const auto loss = true_channel(mat.goal.p, mat.mean_burst);
                (void)design_greedy_channel(mat.goal, *loss, mat.seed,
                                            mat.mc_trials, mat.greedy);
            } else {
                (void)design_greedy(mat.goal, mat.greedy);
            }
            fresh_samples.push_back(now_seconds() - t0);
        }
    }
    std::sort(fresh_samples.begin(), fresh_samples.end());
    const double fresh_median = fresh_samples[fresh_samples.size() / 2];
    const double uncached_seconds = fresh_median * static_cast<double>(fetches);

    // ------------------------------------------------------- q_min held?
    // Every group ended the run in the final regime; judge its serving
    // design under the TRUE final channel (not the design model) with the
    // seeded Monte-Carlo engine. Groups sharing a design share the verdict,
    // so the evaluation memoizes on the design's serialized bytes.
    const Regime& final_regime = regimes[2];
    const double slack = 0.02;
    std::map<std::string, double> q_by_design;
    std::size_t held = 0;
    for (std::size_t g = 0; g < groups; ++g) {
        if (!designed[g]) continue;
        const double p_true = final_regime.p + 0.004 * static_cast<double>(g % 8);
        const std::string key =
            to_text(current[g]) + "@p=" + TablePrinter::num(p_true, 3);
        auto it = q_by_design.find(key);
        if (it == q_by_design.end()) {
            const auto loss = true_channel(p_true, final_regime.mean_burst);
            const double q_min =
                monte_carlo_auth_prob(current[g], *loss, bm.seed(), 512).q_min;
            it = q_by_design.emplace(key, q_min).first;
        }
        if (it->second >= options.target_q_min - slack) ++held;
    }
    const double held_fraction =
        groups > 0 ? static_cast<double>(held) / static_cast<double>(groups) : 0.0;

    const obs::ConformanceReport report = conformance->finish();
    conformance.reset();
    bm.add_conformance(report, "fleet");

    // ---------------------------------------------------------------- report
    bench::section("fleet redesign cost vs budget");
    TablePrinter table({"arm", "designs", "fetches", "seconds", "budget(s)",
                        "within"});
    table.add_row({"shared-service", std::to_string(stats.misses),
                   std::to_string(fetches),
                   TablePrinter::num(service_seconds, 4),
                   TablePrinter::num(budget, 4),
                   service_seconds <= budget ? "yes" : "NO"});
    table.add_row({"uncached (extrapolated)", std::to_string(fetches),
                   std::to_string(fetches),
                   TablePrinter::num(uncached_seconds, 4),
                   TablePrinter::num(budget, 4),
                   uncached_seconds <= budget ? "yes (vacuous!)" : "no"});
    bench::emit(table, "abl_design_service");
    bench::note("cache: " + std::to_string(stats.hits) + " hits / " +
                std::to_string(stats.misses) + " misses across " +
                std::to_string(fetches) + " fetches (" +
                std::to_string(wave_blocks) + " redesign-wave blocks); " +
                std::to_string(q_by_design.size()) +
                " distinct (design, channel) cells evaluated for q_min");
    bench::note("q_min held (final regime, true channel, slack " +
                TablePrinter::num(slack, 2) + "): " +
                TablePrinter::num(100.0 * held_fraction, 1) + "% of groups");

    bool ok = true;
    // The budget bars are a fleet-scale property: the budget shrinks with
    // the group count but the distinct-cell build cost does not, so a
    // 64-group smoke fleet cannot amortize it. Gate them on full runs only;
    // smoke still gates q_min coverage and conformance.
    if (!smoke && service_seconds > budget) {
        bench::note("FAIL: shared service blew the redesign budget");
        ok = false;
    }
    if (!smoke && uncached_seconds <= budget) {
        bench::note("FAIL: uncached cost fits the budget — the ablation is "
                    "vacuous at this scale");
        ok = false;
    }
    if (held_fraction < 0.98) {
        bench::note("FAIL: fleet q_min coverage below 98%");
        ok = false;
    }
    if (!report.ok()) {
        bench::note("FAIL: adaptive-loop conformance violations");
        ok = false;
    }
    if (bm.finish_expectation()) ok = false;

    if (!ok) {
        bench::note("RESULT: FAIL");
        return 1;
    }
    bench::note("RESULT: OK — " + std::to_string(groups) +
                " groups held q_min on " + std::to_string(stats.misses) +
                " fresh designs; uncached would cost " +
                TablePrinter::num(uncached_seconds / budget, 1) +
                "x the redesign budget");
    return 0;
}

// Design-cache bench: byte-identity gates + cached design latency under
// churn (DESIGN.md §15).
//
// Two phases:
//
//   identity — across a grid of operating points (block size x loss rate x
//   burstiness), (a) design_greedy_channel_incremental must reproduce the
//   full-re-sim design_greedy_channel oracle byte for byte (same to_text
//   serialization, same final Monte-Carlo q_min), (b) a Designer-served
//   design — fresh, cache hit, or via the oracle-path configuration
//   (use_incremental = false) — must be byte-identical to calling the
//   uncached free-function oracle at the materialized (quantized) operating
//   point. Any divergence is RESULT: FAIL / exit 1.
//
//   churn (skipped under --smoke=1) — a fleet of groups whose channel
//   states drift across quantization cells over several epochs, all served
//   by ONE shared Designer (plus a precomputed frontier for the i.i.d.
//   family). Gates: cache hit rate >= 0.8 and median cached-serve latency
//   at least 10x below median fresh-build latency. The Pareto frontier is
//   serialized into the manifest embedded in the JSON output.
//
// Writes bench_out/BENCH_design_cache.json (metric latency_reduction) for
// the bench_compare report-only regression gate.
//
// Flags beyond the shared bench surface (bench_common.hpp):
//   --smoke=0|1   identity phase only (CI smoke; default 0)
//   --groups=N    churn fleet size (default 1200)
//   --epochs=N    churn epochs (default 6)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/serialize.hpp"
#include "design/constructors.hpp"
#include "design/service.hpp"
#include "net/loss.hpp"
#include "util/rng.hpp"

using namespace mcauth;
using namespace mcauth::design;

namespace {

double median(std::vector<double> v) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

struct IdentityRow {
    std::string cell;
    const char* gate;
    bool identical;
};

std::unique_ptr<LossModel> channel_for(double p, double burst) {
    const double rate = std::clamp(p, 1e-3, 0.999);
    if (burst > 1.0)
        return std::make_unique<GilbertElliottLoss>(
            GilbertElliottLoss::from_rate_and_burst(rate, burst));
    return std::make_unique<BernoulliLoss>(rate);
}

}  // namespace

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "perf_design_cache", 1,
                        {"smoke", "groups", "epochs"});
    const bool smoke = bm.args().get_bool("smoke", false);
    const std::size_t groups =
        static_cast<std::size_t>(bm.args().get_int("groups", 1200));
    const std::size_t epochs =
        static_cast<std::size_t>(bm.args().get_int("epochs", 6));

    bench::note("[perf] Design service: incremental/cache byte-identity + "
                "serve latency under churn (DESIGN.md §15)");

    bool identity_ok = true;
    std::vector<IdentityRow> identity_rows;

    // ------------------------------------------------------------- identity
    {
        bench::section("identity: incremental and cached designs vs the "
                       "uncached oracle");
        struct Cell {
            std::size_t n;
            double p;
            double burst;
        };
        const Cell cells[] = {
            {48, 0.15, 1.0}, {48, 0.30, 4.0}, {96, 0.20, 1.0},
            {96, 0.35, 3.0}, {64, 0.25, 6.0},
        };
        TablePrinter table({"cell", "gate", "identical"});
        for (const Cell& cell : cells) {
            const std::string name = "n=" + std::to_string(cell.n) +
                                     "/p=" + TablePrinter::num(cell.p, 2) +
                                     "/burst=" + TablePrinter::num(cell.burst, 1);
            DesignGoal goal;
            goal.n = cell.n;
            goal.p = cell.p;
            goal.target_q_min = 0.92;
            const auto loss = channel_for(cell.p, cell.burst);

            // (a) incremental greedy == full-re-sim oracle, byte for byte,
            // and the reported final metric is the oracle metric.
            MonteCarloAuthProb final_prob;
            const DependenceGraph fast = design_greedy_channel_incremental(
                goal, *loss, bm.seed(), 256, {}, &final_prob);
            const DependenceGraph oracle =
                design_greedy_channel(goal, *loss, bm.seed(), 256, {});
            const bool incremental_same =
                to_text(fast) == to_text(oracle) &&
                final_prob.q_min ==
                    monte_carlo_auth_prob(oracle, *loss, bm.seed(), 256).q_min;
            identity_rows.push_back({name, "incremental-vs-oracle", incremental_same});

            // (b) service-served designs (fresh, then cache hit, then the
            // use_incremental=false oracle path) == free-function oracle at
            // the materialized operating point.
            DesignRequest req;
            req.goal = goal;
            req.method = DesignMethod::kGreedyChannel;
            req.mean_burst = cell.burst;
            req.mc_trials = 256;

            Designer incremental_designer;
            DesignerOptions oracle_opts;
            oracle_opts.use_incremental = false;
            Designer oracle_designer(oracle_opts);

            const DesignResult fresh = incremental_designer.design(req);
            const DesignResult hit = incremental_designer.design(req);
            const DesignResult via_oracle = oracle_designer.design(req);
            const DesignRequest mat = incremental_designer.materialize(req);
            const auto mat_loss = channel_for(mat.goal.p, mat.mean_burst);
            const DependenceGraph reference = design_greedy_channel(
                mat.goal, *mat_loss, mat.seed, mat.mc_trials, mat.greedy);
            const bool served_same =
                fresh.source == DesignSource::kFresh &&
                hit.source == DesignSource::kCache && identical(fresh, hit) &&
                identical(fresh, via_oracle) &&
                to_text(fresh.graph) == to_text(reference);
            identity_rows.push_back({name, "served-vs-oracle", served_same});

            if (!incremental_same || !served_same) identity_ok = false;
            table.add_row({name, "incremental-vs-oracle",
                           incremental_same ? "yes" : "NO"});
            table.add_row({name, "served-vs-oracle", served_same ? "yes" : "NO"});
        }
        bench::emit(table, "perf_design_cache_identity");
    }

    // ---------------------------------------------------------------- churn
    // One shared Designer serves a fleet whose channel states drift across
    // quantization cells epoch by epoch: early epochs populate cells
    // (misses), steady state is hits, drift keeps opening new cells.
    Designer designer;
    Designer::Stats churn_stats;
    double hit_rate = 0.0;
    double median_fresh_ms = 0.0;
    double median_cached_ms = 0.0;
    double latency_reduction = 0.0;
    std::size_t serves = 0;
    if (!smoke) {
        bench::section("churn: " + std::to_string(groups) + " groups x " +
                       std::to_string(epochs) + " epochs, one shared designer");

        // Precomputed frontier for the i.i.d. family at the fleet's common
        // block size: steady-state serves for that family are O(1) lookups
        // that never populate the LRU.
        FrontierSpec spec;
        spec.method = DesignMethod::kGreedy;
        spec.n = 64;
        for (double p = 0.06; p <= 0.44; p += 0.02) spec.p_grid.push_back(p);
        spec.target_grid = {0.9};
        const std::size_t frontier_points = designer.precompute_frontier(spec);
        bench::note("frontier: " + std::to_string(frontier_points) +
                    " precomputed points (greedy, n=64)");

        Rng rng(bm.seed());
        std::vector<double> fresh_seconds;
        std::vector<double> cached_seconds;
        for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
            for (std::size_t g = 0; g < groups; ++g) {
                // Per-group base state plus a slow epoch drift: most serves
                // stay inside a warm cell, the drift front opens new ones.
                const double base = 0.08 + 0.02 * static_cast<double>(g % 12);
                const double drift = 0.015 * static_cast<double>(epoch) *
                                     (g % 3 == 0 ? 1.0 : 0.5);
                const double jitter = 0.008 * rng.uniform();
                const bool bursty = g % 4 == 3;

                DesignRequest req;
                req.goal.n = bursty ? 96 : 64;
                req.goal.p = base + drift + jitter;
                req.goal.target_q_min = 0.9;
                req.method = bursty ? DesignMethod::kGreedyChannel
                                    : DesignMethod::kGreedy;
                req.mean_burst = bursty ? 3.0 : 1.0;
                req.mc_trials = 192;
                req.block = static_cast<std::uint32_t>(epoch);

                const DesignResult result = designer.design(req);
                ++serves;
                (result.source == DesignSource::kFresh ? fresh_seconds
                                                       : cached_seconds)
                    .push_back(result.latency_seconds);
            }
        }

        churn_stats = designer.stats();
        const std::uint64_t cached_serves =
            churn_stats.hits + churn_stats.frontier_hits;
        hit_rate = serves > 0
                       ? static_cast<double>(cached_serves) /
                             static_cast<double>(serves)
                       : 0.0;
        median_fresh_ms = median(fresh_seconds) * 1e3;
        median_cached_ms = median(cached_seconds) * 1e3;
        latency_reduction =
            median_cached_ms > 0.0 ? median_fresh_ms / median_cached_ms : 0.0;

        TablePrinter table({"serves", "hits", "frontier", "misses", "stale",
                            "evictions", "hit_rate", "fresh_ms(p50)",
                            "cached_ms(p50)", "reduction"});
        table.add_row({std::to_string(serves), std::to_string(churn_stats.hits),
                       std::to_string(churn_stats.frontier_hits),
                       std::to_string(churn_stats.misses),
                       std::to_string(churn_stats.stale),
                       std::to_string(churn_stats.evictions),
                       TablePrinter::num(hit_rate, 3),
                       TablePrinter::num(median_fresh_ms, 4),
                       TablePrinter::num(median_cached_ms, 4),
                       TablePrinter::num(latency_reduction, 1)});
        bench::emit(table, "perf_design_cache_churn");
        bench::note("gates: hit_rate >= 0.8, median latency reduction >= 10x");
    }

    // ------------------------------------------------------------- JSON out
    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    const char* path = "bench_out/BENCH_design_cache.json";
    if (std::FILE* f = std::fopen(path, "w")) {
        obs::RunManifest manifest = bm.manifest();
        // The frontier the churn fleet was served from, straight into the
        // run manifest (empty in smoke runs, which precompute none).
        manifest.design_frontier = designer.frontier_json();
        std::fprintf(f, "{\n  \"schema_version\": %d,\n",
                     obs::RunManifest::kSchemaVersion);
        std::fprintf(f, "  \"bench\": \"perf_design_cache\",\n");
        std::fprintf(f, "  \"seed\": %llu,\n",
                     static_cast<unsigned long long>(bm.seed()));
        std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
        std::fprintf(f, "  \"identity_ok\": %s,\n", identity_ok ? "true" : "false");
        std::fprintf(f, "  \"metric\": \"latency_reduction\",\n");
        std::fprintf(f, "  \"manifest\": %s,\n", manifest.to_json(2).c_str());
        std::fprintf(f, "  \"identity\": [\n");
        for (std::size_t i = 0; i < identity_rows.size(); ++i) {
            const IdentityRow& row = identity_rows[i];
            std::fprintf(f,
                         "    {\"cell\": \"%s\", \"gate\": \"%s\", "
                         "\"identical\": %s}%s\n",
                         row.cell.c_str(), row.gate,
                         row.identical ? "true" : "false",
                         i + 1 < identity_rows.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n  \"results\": [\n");
        if (!smoke) {
            std::fprintf(
                f,
                "    {\"workload\": \"churn/groups=%zu/epochs=%zu\", "
                "\"serves\": %zu,\n"
                "     \"hits\": %llu, \"frontier_hits\": %llu, \"misses\": %llu, "
                "\"stale\": %llu, \"evictions\": %llu,\n"
                "     \"hit_rate\": %.4f, \"median_fresh_ms\": %.5f, "
                "\"median_cached_ms\": %.5f, \"latency_reduction\": %.1f}\n",
                groups, epochs, serves,
                static_cast<unsigned long long>(churn_stats.hits),
                static_cast<unsigned long long>(churn_stats.frontier_hits),
                static_cast<unsigned long long>(churn_stats.misses),
                static_cast<unsigned long long>(churn_stats.stale),
                static_cast<unsigned long long>(churn_stats.evictions),
                hit_rate, median_fresh_ms, median_cached_ms, latency_reduction);
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        bench::note(std::string("\njson: ") + path);
    } else {
        bench::note(std::string("\njson: FAILED to write ") + path);
    }

    // --------------------------------------------------------------- verdict
    if (!identity_ok) {
        bench::note("RESULT: FAIL — a served or incremental design diverged "
                    "from the uncached oracle");
        return 1;
    }
    if (!smoke && (hit_rate < 0.8 || latency_reduction < 10.0)) {
        bench::note("RESULT: FAIL — churn acceptance missed (hit_rate " +
                    TablePrinter::num(hit_rate, 3) + " < 0.8 or reduction " +
                    TablePrinter::num(latency_reduction, 1) + "x < 10x)");
        return 1;
    }
    bench::note(smoke
                    ? "RESULT: OK — designs byte-identical to the uncached oracle"
                    : "RESULT: OK — byte-identity held; hit rate " +
                          TablePrinter::num(hit_rate, 3) + ", cached serves " +
                          TablePrinter::num(latency_reduction, 1) +
                          "x faster than fresh builds");
    return 0;
}

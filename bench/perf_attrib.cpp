// Causal-attribution bench: blame determinism gates + measured overhead
// (DESIGN.md §14).
//
// Two phases:
//
//   identity — on the perf_population small cells (16 / 512 / 4096 leaves,
//   Bernoulli and Gilbert-Elliott trees) with attribution ON and every leaf
//   sampled, the engine's PopulationAggregate — INCLUDING the per-edge /
//   per-vertex BlameCounts and the per-link first-drop map — must be
//   bit-identical to the scalar oracle, and identical to itself at
//   --threads 1 vs 8. Any divergence is RESULT: FAIL / exit 1. A lossy
//   cell with zero attributed failures would make the gate vacuous, so
//   that also fails.
//
//   overhead (skipped under --smoke=1) — the 100k-receiver tree from
//   perf_population, engine-only, attribution OFF vs ON (default 1-in-64
//   leaf sampling; per-link blame is always exact). Reports the throughput
//   cost of attribution as a percentage — the number the CI obs-overhead
//   job tracks against the <= 3% budget (report-only). The attrib-on rep 0
//   flushes blame into the metrics registry ("attrib.edge.*", plus the
//   top-32 "attrib.link.*" — a counter per link on a 125k-link tree would
//   bloat the embedded manifest by megabytes) and captures the bench
//   TimeSeries per block, so --timeseries-out exports feed
//   tools/mcauth_report.
//
// Writes bench_out/BENCH_attribution.json (same envelope as
// BENCH_population.json, metric receivers_per_sec) for the bench_compare
// report-only regression gate.
//
// Flags beyond the shared bench surface (bench_common.hpp):
//   --smoke=0|1   identity phase only (CI smoke; default 0)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/topologies.hpp"
#include "exec/thread_pool.hpp"
#include "obs/attrib.hpp"
#include "pop/population.hpp"
#include "pop/tree.hpp"

using namespace mcauth;

namespace {

double now_seconds() {
    using clock = std::chrono::steady_clock;
    static const clock::time_point start = clock::now();
    return std::chrono::duration<double>(clock::now() - start).count();
}

pop::TreeSpec make_spec(bool ge, std::size_t backbone_depth, double backbone_rate,
                        std::vector<std::size_t> fanouts, std::vector<double> rates) {
    pop::TreeSpec spec;
    spec.backbone_depth = backbone_depth;
    spec.backbone_link = ge ? pop::LinkSpec::gilbert_elliott(backbone_rate, 4.0)
                            : pop::LinkSpec::bernoulli(backbone_rate);
    spec.fanouts = std::move(fanouts);
    for (std::size_t level = 0; level < spec.fanouts.size(); ++level) {
        const double rate = rates[level];
        spec.fanout_links.push_back(
            ge && rate > 0.0
                ? pop::LinkSpec::gilbert_elliott(rate, 2.0 + static_cast<double>(level))
                : pop::LinkSpec::bernoulli(rate));
    }
    return spec;
}

// The perf_population 100k workload: 2^5 * 5^5 leaves behind a 26-hop
// bursty backbone — the shape where the sampled attribution walk is
// amortized over a deep shared path.
pop::TreeSpec naive_100k_spec() {
    pop::TreeSpec spec;
    spec.backbone_depth = 26;
    spec.backbone_link = pop::LinkSpec::gilbert_elliott(0.006, 8.0);
    spec.fanouts = {2, 2, 2, 2, 2, 5, 5, 5, 5, 5};
    for (std::size_t level = 0; level < spec.fanouts.size(); ++level)
        spec.fanout_links.push_back(pop::LinkSpec::bernoulli(0.002));
    return spec;
}

std::uint64_t class_total(const obs::BlameCounts& b) {
    std::uint64_t total = 0;
    for (const std::uint64_t c : b.by_class) total += c;
    return total;
}

struct IdentityRow {
    std::string cell;
    const char* kind;
    std::size_t leaves;
    std::size_t threads;
    bool identical;
    std::uint64_t attributed;
};

struct PerfRow {
    std::string workload;
    std::size_t receivers = 0;
    std::size_t threads = 0;
    double seconds = 0;  // best of repeats
    std::vector<double> seconds_repeats;
    std::uint64_t attributed = 0;
    std::uint64_t sampled_out = 0;
};

}  // namespace

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "perf_attrib", 1, {"smoke"});
    const bool smoke = bm.args().get_bool("smoke", false);
    const std::size_t repeats = std::max<std::size_t>(2, bm.repeat());

    bench::note("[perf] Causal loss attribution: blame determinism + overhead "
                "(DESIGN.md §14)");

    bool identity_ok = true;

    // ------------------------------------------------------------- identity
    // Attribution at sample_every = 1: every leaf takes the per-edge walk,
    // so the blame vectors cover the whole population and the oracle's
    // scalar attribute() calls must reproduce the engine's 64-lane kernel
    // bit-for-bit. max_shard_leaves = 48 forces shard merges mid-fan-out.
    std::vector<IdentityRow> identity_rows;
    {
        bench::section("identity: engine vs oracle blame, populations <= 4096");
        struct Cell {
            const char* name;
            std::size_t backbone;
            double backbone_rate;
            std::vector<std::size_t> fanouts;
            std::vector<double> rates;
        };
        const Cell cells[] = {
            {"16-leaf", 2, 0.05, {4, 4}, {0.10, 0.06}},
            {"512-leaf", 1, 0.08, {8, 8, 8}, {0.08, 0.00, 0.10}},
            {"4096-leaf", 2, 0.05, {16, 16, 16}, {0.05, 0.07, 0.09}},
        };
        const DependenceGraph dg = make_augmented_chain(24, 2, 4);
        TablePrinter table(
            {"cell", "kind", "leaves", "threads", "identical", "attributed"});
        for (const Cell& cell : cells) {
            for (bool ge : {false, true}) {
                const char* kind = ge ? "gilbert-elliott" : "bernoulli";
                const pop::DistributionTree tree(make_spec(
                    ge, cell.backbone, cell.backbone_rate, cell.fanouts, cell.rates));
                const pop::PopulationAggregate oracle = pop::population_oracle(
                    tree, dg, bm.seed(), /*block=*/5,
                    pop::QuantileSketch::kDefaultBins,
                    /*attribution=*/true, /*attrib_sample_every=*/1);
                pop::PopulationOptions options;
                options.max_shard_leaves = 48;
                options.attribution = true;
                options.attrib_sample_every = 1;
                const pop::PopulationEngine engine(tree, options);
                for (std::size_t t : {std::size_t{1}, std::size_t{8}}) {
                    exec::ThreadPool::set_global_thread_count(t);
                    const pop::PopulationAggregate agg =
                        engine.simulate_block(dg, bm.seed(), /*block=*/5);
                    // identical() covers the sketches AND blame: per-edge,
                    // per-vertex, per-class, per-link. One bit off anywhere
                    // in the attribution path shows up here.
                    bool same = agg.identical(oracle);
                    // Exactly one class per failure, and a lossy tree must
                    // actually attribute something.
                    if (agg.blame.attributed != class_total(agg.blame)) same = false;
                    if (agg.blame.attributed == 0) same = false;
                    if (!same) identity_ok = false;
                    identity_rows.push_back({cell.name, kind, tree.leaf_count(), t,
                                             same, agg.blame.attributed});
                    table.add_row({cell.name, kind, std::to_string(tree.leaf_count()),
                                   std::to_string(t), same ? "yes" : "NO",
                                   std::to_string(agg.blame.attributed)});
                }
            }
        }
        exec::ThreadPool::set_global_thread_count(bm.threads());
        bench::emit(table, "perf_attrib_identity");
    }

    // ------------------------------------------------------------- overhead
    std::vector<PerfRow> perf_rows;
    double overhead_pct = 0.0;
    if (!smoke) {
        const DependenceGraph dg = make_augmented_chain(64, 2, 4);
        const std::size_t threads = bm.threads();
        exec::ThreadPool::set_global_thread_count(threads);

        bench::section("overhead: 100k receivers, attribution off vs on");
        const pop::DistributionTree tree(naive_100k_spec());
        bench::note("tree: " + std::to_string(tree.leaf_count()) + " leaves, " +
                    std::to_string(tree.node_count() - 1) + " links, depth " +
                    std::to_string(tree.spec().depth()));
        const obs::BlameAttributor reporter(dg.graph(), DependenceGraph::root());

        auto run_cell = [&](const char* workload, bool attribution) -> PerfRow {
            pop::PopulationOptions options;
            options.attribution = attribution;
            const pop::PopulationEngine engine(tree, options);
            PerfRow row;
            row.workload = workload;
            row.receivers = tree.leaf_count();
            row.threads = threads;
            for (std::size_t rep = 0; rep < repeats; ++rep) {
                const auto block = static_cast<std::uint32_t>(100 + rep);
                const double t0 = now_seconds();
                const pop::PopulationAggregate agg =
                    engine.simulate_block(dg, bm.seed(), block);
                const double dt = now_seconds() - t0;
                row.seconds_repeats.push_back(dt);
                if (attribution) {
                    row.attributed = agg.blame.attributed;
                    row.sampled_out = agg.blame.sampled_out;
                    // Timeseries join input for tools/mcauth_report: flush
                    // the block's blame into the registry, then capture the
                    // delta under this block id (outside the timed region —
                    // reporting cost is not engine cost).
                    obs::flush_blame_counters(reporter, agg.blame, "attrib");
                    // Top blamed links only: the 100k tree has 125k links
                    // and a counter per link would bloat the registry (and
                    // the manifest embedded in the JSON) by megabytes. The
                    // postmortem reports top offenders anyway.
                    std::vector<std::pair<std::uint32_t, std::uint64_t>> links(
                        agg.link_blame.begin(), agg.link_blame.end());
                    std::sort(links.begin(), links.end(),
                              [](const auto& a, const auto& b) {
                                  return a.second != b.second
                                             ? a.second > b.second
                                             : a.first < b.first;
                              });
                    if (links.size() > 32) links.resize(32);
                    for (const auto& [node, count] : links)
                        obs::registry()
                            .counter("attrib.link." + std::to_string(node))
                            .add(count);
                    bm.timeseries().capture(block);
                    bm.timeseries().record("pop.mean_loss", block,
                                           agg.mean_loss_rate());
                }
            }
            row.seconds = *std::min_element(row.seconds_repeats.begin(),
                                            row.seconds_repeats.end());
            return row;
        };

        PerfRow off_row = run_cell("pop100k/attrib-off", false);
        PerfRow on_row = run_cell("pop100k/attrib-on", true);
        overhead_pct = off_row.seconds > 0
                           ? (on_row.seconds / off_row.seconds - 1.0) * 100.0
                           : 0.0;
        TablePrinter table({"attribution", "receivers", "seconds", "recv/s",
                            "attributed", "sampled_out"});
        for (const PerfRow* row : {&off_row, &on_row}) {
            const double rps = static_cast<double>(row->receivers) / row->seconds;
            table.add_row({row->workload == "pop100k/attrib-on" ? "on" : "off",
                           std::to_string(row->receivers),
                           TablePrinter::num(row->seconds, 3),
                           TablePrinter::num(rps, 0),
                           std::to_string(row->attributed),
                           std::to_string(row->sampled_out)});
        }
        bench::emit(table, "perf_attrib_overhead");
        bench::note("attribution overhead at 100k receivers: " +
                    TablePrinter::num(overhead_pct, 2) +
                    "% (budget <= 3%, report-only here; the CI obs-overhead "
                    "job tracks it)");
        perf_rows.push_back(std::move(off_row));
        perf_rows.push_back(std::move(on_row));
    }

    // ------------------------------------------------------------- JSON out
    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    const char* path = "bench_out/BENCH_attribution.json";
    if (std::FILE* f = std::fopen(path, "w")) {
        std::fprintf(f, "{\n  \"schema_version\": %d,\n",
                     obs::RunManifest::kSchemaVersion);
        std::fprintf(f, "  \"bench\": \"perf_attrib\",\n");
        std::fprintf(f, "  \"seed\": %llu,\n",
                     static_cast<unsigned long long>(bm.seed()));
        std::fprintf(f, "  \"hardware_threads\": %zu,\n", exec::hardware_threads());
        std::fprintf(f, "  \"repeats\": %zu,\n", repeats);
        std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
        std::fprintf(f, "  \"identity_ok\": %s,\n", identity_ok ? "true" : "false");
        std::fprintf(f, "  \"attribution_overhead_pct\": %.2f,\n", overhead_pct);
        std::fprintf(f, "  \"metric\": \"receivers_per_sec\",\n");
        std::fprintf(f, "  \"manifest\": %s,\n", bm.manifest().to_json(2).c_str());
        std::fprintf(f, "  \"identity\": [\n");
        for (std::size_t i = 0; i < identity_rows.size(); ++i) {
            const IdentityRow& row = identity_rows[i];
            std::fprintf(
                f,
                "    {\"cell\": \"%s\", \"kind\": \"%s\", \"leaves\": %zu, "
                "\"threads\": %zu, \"identical\": %s, \"attributed\": %llu}%s\n",
                row.cell.c_str(), row.kind, row.leaves, row.threads,
                row.identical ? "true" : "false",
                static_cast<unsigned long long>(row.attributed),
                i + 1 < identity_rows.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n  \"results\": [\n");
        for (std::size_t i = 0; i < perf_rows.size(); ++i) {
            const PerfRow& row = perf_rows[i];
            const double rps = static_cast<double>(row.receivers) / row.seconds;
            std::fprintf(f,
                         "    {\"workload\": \"%s\", \"receivers\": %zu, "
                         "\"threads\": %zu, \"seconds\": %.6f,\n"
                         "     \"seconds_repeats\": [",
                         row.workload.c_str(), row.receivers, row.threads,
                         row.seconds);
            for (std::size_t s = 0; s < row.seconds_repeats.size(); ++s)
                std::fprintf(f, "%s%.6f", s ? ", " : "", row.seconds_repeats[s]);
            std::fprintf(f,
                         "],\n     \"receivers_per_sec\": %.1f, "
                         "\"attributed\": %llu, \"sampled_out\": %llu}%s\n",
                         rps, static_cast<unsigned long long>(row.attributed),
                         static_cast<unsigned long long>(row.sampled_out),
                         i + 1 < perf_rows.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        bench::note(std::string("\njson: ") + path);
    } else {
        bench::note(std::string("\njson: FAILED to write ") + path);
    }

    // Exit gates blame determinism ONLY: overhead is recorded in the JSON
    // and tracked report-only (bench_compare + the CI obs-overhead job).
    if (!identity_ok) {
        bench::note("RESULT: FAIL — blame diverged from the scalar oracle or "
                    "across thread counts");
        return 1;
    }
    bench::note(smoke ? "RESULT: OK — blame bit-identical to oracle on all small cells"
                      : "RESULT: OK — blame bit-identical to oracle; overhead measured");
    return 0;
}

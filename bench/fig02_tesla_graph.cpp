// Figure 2: TESLA's modified dependence-graph (§3.2) — two vertices per
// packet (message node P_i and key node K_{i,a}), rooted at the signed
// bootstrap packet.
//
// Expected shape (paper): the bootstrap fans out to every key node; key
// node K_j covers message nodes P_1..P_j (a later key re-derives all
// earlier keys), giving the characteristic lower-triangular key->message
// edge pattern.
#include <cstdio>

#include "bench_common.hpp"
#include "core/tesla.hpp"
#include "graph/dot.hpp"

using namespace mcauth;

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "fig02_tesla_graph");
    bench::note("[fig02] TESLA dependence-graph, n=6 packets, disclosure lag a=2");
    const TeslaGraph tg = make_tesla_graph(6, 2);

    bench::section("adjacency");
    std::printf("%s", to_ascii_adjacency(tg.graph, [&](VertexId v) {
                    return tg.labels[v];
                }).c_str());

    bench::section("dot");
    DotOptions opts;
    opts.graph_name = "fig2_tesla";
    opts.vertex_label = [&](VertexId v) { return tg.labels[v]; };
    opts.emphasize = [&](VertexId v) { return v == tg.root; };
    std::printf("%s", to_dot(tg.graph, opts).c_str());

    bench::section("coverage check");
    std::size_t key_to_message_edges = 0;
    for (const Edge& e : tg.graph.edges())
        if (e.from != tg.root && e.to % 2 == 1) ++key_to_message_edges;
    std::printf("key->message edges: %zu (expected n(n+1)/2 = %d)\n", key_to_message_edges,
                6 * 7 / 2);
    return 0;
}

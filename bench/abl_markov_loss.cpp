// Ablation A2 — the paper's stated future work: replace the i.i.d. loss
// model with bursty (Gilbert-Elliott / m-state Markov) channels and
// re-evaluate the schemes by Monte-Carlo on their dependence-graphs.
//
// Setup: stationary loss rate pinned at 0.2; mean burst length sweeps
// 1 (i.i.d.) -> 16. Expected: EMSS E_{2,1} (links of span 1-2) collapses as
// bursts exceed its link span; spreading the same two links (E_{2,d} with
// larger d) or AC's long first-level links (span a*(b+1)) resist; TESLA is
// nearly indifferent (any one key disclosure after the burst repairs it);
// Rohatgi is hopeless everywhere.
//
// Every (scheme, burst) Monte-Carlo cell is fanned across the thread pool
// by SweepRunner; each cell derives its seed from (base seed, cell index),
// so the tables are byte-identical for any --threads value.
#include "bench_common.hpp"
#include "core/authprob.hpp"
#include "core/tesla.hpp"
#include "core/topologies.hpp"
#include "exec/sharded.hpp"
#include "exec/sweep.hpp"

using namespace mcauth;

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "abl_markov_loss");
    bench::note("[abl2] Bursty loss (rate fixed at 0.2), q_min by Monte-Carlo, n = 500");
    const double kRate = 0.2;
    const std::size_t kN = 500;
    const std::uint64_t base_seed = bm.seed();
    const exec::SweepRunner sweep;

    bench::section("Gilbert-Elliott, mean burst length sweep");
    {
        const auto rohatgi = make_rohatgi(kN);
        const auto emss21 = make_emss(kN, 2, 1);
        const auto emss28 = make_emss(kN, 2, 8);
        const auto emss216 = make_emss(kN, 2, 16);
        const auto ac33 = make_augmented_chain(kN, 3, 3);
        const DependenceGraph* graphs[] = {&rohatgi, &emss21, &emss28, &emss216, &ac33};
        const double bursts[] = {1.0, 2.0, 4.0, 8.0, 16.0};

        // Column 6 of each row is TESLA; columns 0-4 are the chained schemes.
        struct Cell {
            double burst;
            int column;  // 0..4 = graphs[], 5 = tesla
        };
        std::vector<Cell> grid;
        for (double burst : bursts)
            for (int col = 0; col < 6; ++col) grid.push_back({burst, col});

        const auto q_min = sweep.map_grid<double>(grid, [&](const Cell& c, std::size_t i) {
            std::unique_ptr<LossModel> loss;
            if (c.burst <= 1.0) {
                loss = std::make_unique<BernoulliLoss>(kRate);
            } else {
                loss = std::make_unique<GilbertElliottLoss>(
                    GilbertElliottLoss::from_rate_and_burst(kRate, c.burst));
            }
            const std::uint64_t cell_seed = exec::derive_stream_seed(base_seed, i);
            if (c.column == 5) {
                TeslaParams tesla;
                tesla.n = kN;
                tesla.t_disclose = 1.0;
                tesla.mu = 0.2;
                tesla.sigma = 0.1;
                tesla.p = kRate;
                const GaussianDelay delay(tesla.mu, tesla.sigma);
                return monte_carlo_tesla(tesla, *loss, delay, cell_seed, 2000).q_min;
            }
            return monte_carlo_auth_prob(*graphs[c.column], *loss, cell_seed, 3000).q_min;
        });

        TablePrinter table({"burst", "rohatgi", "emss(2,1)", "emss(2,8)", "emss(2,16)",
                            "ac(3,3)", "tesla"});
        std::size_t i = 0;
        for (double burst : bursts) {
            std::vector<std::string> row{TablePrinter::num(burst, 0)};
            for (int col = 0; col < 6; ++col) row.push_back(TablePrinter::num(q_min[i++], 4));
            table.add_row(row);
        }
        bench::emit(table, "abl2_gilbert");
    }

    bench::section("3-state Markov (good / degraded / outage), same stationary rate");
    {
        // Good: lossless. Degraded: 30% loss. Outage: total loss. Dwell
        // times tuned so the stationary loss rate is ~0.2.
        const MarkovLoss markov({{0.90, 0.08, 0.02},
                                 {0.20, 0.70, 0.10},
                                 {0.30, 0.10, 0.60}},
                                {0.0, 0.3, 1.0});
        bench::note("model: " + markov.name());
        struct Case {
            const char* name;
            DependenceGraph dg;
        } cases[] = {{"rohatgi", make_rohatgi(kN)},
                     {"emss(2,1)", make_emss(kN, 2, 1)},
                     {"emss(2,16)", make_emss(kN, 2, 16)},
                     {"ac(3,3)", make_augmented_chain(kN, 3, 3)}};
        const auto q_min = sweep.map<double>(std::size(cases), [&](std::size_t i) {
            // Offset past the Gilbert-Elliott grid so no cell reuses a stream.
            const std::uint64_t cell_seed = exec::derive_stream_seed(base_seed, 1000 + i);
            return monte_carlo_auth_prob(cases[i].dg, markov, cell_seed, 3000).q_min;
        });

        TablePrinter table({"scheme", "q_min(mc)"});
        for (std::size_t i = 0; i < std::size(cases); ++i)
            table.add_row({cases[i].name, TablePrinter::num(q_min[i], 4)});
        bench::emit(table, "abl2_markov3");
    }
    bench::note("\nreading: across each row, schemes whose link spans exceed the burst"
                "\nlength hold up; emss(2,1) decays fastest as bursts lengthen, exactly"
                "\nthe failure mode the augmented chain was designed against.");
    return 0;
}

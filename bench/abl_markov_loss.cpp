// Ablation A2 — the paper's stated future work: replace the i.i.d. loss
// model with bursty (Gilbert-Elliott / m-state Markov) channels and
// re-evaluate the schemes by Monte-Carlo on their dependence-graphs.
//
// Setup: stationary loss rate pinned at 0.2; mean burst length sweeps
// 1 (i.i.d.) -> 16. Expected: EMSS E_{2,1} (links of span 1-2) collapses as
// bursts exceed its link span; spreading the same two links (E_{2,d} with
// larger d) or AC's long first-level links (span a*(b+1)) resist; TESLA is
// nearly indifferent (any one key disclosure after the burst repairs it);
// Rohatgi is hopeless everywhere.
#include "bench_common.hpp"
#include "core/authprob.hpp"
#include "core/tesla.hpp"
#include "core/topologies.hpp"

using namespace mcauth;

namespace {

double mc_q_min(const DependenceGraph& dg, LossModel& loss, Rng& rng) {
    return monte_carlo_auth_prob(dg, loss, rng, 3000).q_min;
}

}  // namespace

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "abl_markov_loss");
    bench::note("[abl2] Bursty loss (rate fixed at 0.2), q_min by Monte-Carlo, n = 500");
    const double kRate = 0.2;
    const std::size_t kN = 500;

    bench::section("Gilbert-Elliott, mean burst length sweep");
    {
        TablePrinter table({"burst", "rohatgi", "emss(2,1)", "emss(2,8)", "emss(2,16)",
                            "ac(3,3)", "tesla"});
        Rng rng(11);
        const auto rohatgi = make_rohatgi(kN);
        const auto emss21 = make_emss(kN, 2, 1);
        const auto emss28 = make_emss(kN, 2, 8);
        const auto emss216 = make_emss(kN, 2, 16);
        const auto ac33 = make_augmented_chain(kN, 3, 3);
        for (double burst : {1.0, 2.0, 4.0, 8.0, 16.0}) {
            std::unique_ptr<LossModel> loss;
            if (burst <= 1.0) {
                loss = std::make_unique<BernoulliLoss>(kRate);
            } else {
                loss = std::make_unique<GilbertElliottLoss>(
                    GilbertElliottLoss::from_rate_and_burst(kRate, burst));
            }
            TeslaParams tesla;
            tesla.n = kN;
            tesla.t_disclose = 1.0;
            tesla.mu = 0.2;
            tesla.sigma = 0.1;
            tesla.p = kRate;
            GaussianDelay delay(tesla.mu, tesla.sigma);
            auto tesla_loss = loss->clone();
            Rng tesla_rng(rng.next_u64());
            const double tesla_q =
                monte_carlo_tesla(tesla, *tesla_loss, delay, tesla_rng, 2000).q_min;

            table.add_row({TablePrinter::num(burst, 0),
                           TablePrinter::num(mc_q_min(rohatgi, *loss, rng), 4),
                           TablePrinter::num(mc_q_min(emss21, *loss, rng), 4),
                           TablePrinter::num(mc_q_min(emss28, *loss, rng), 4),
                           TablePrinter::num(mc_q_min(emss216, *loss, rng), 4),
                           TablePrinter::num(mc_q_min(ac33, *loss, rng), 4),
                           TablePrinter::num(tesla_q, 4)});
        }
        bench::emit(table, "abl2_gilbert");
    }

    bench::section("3-state Markov (good / degraded / outage), same stationary rate");
    {
        // Good: lossless. Degraded: 30% loss. Outage: total loss. Dwell
        // times tuned so the stationary loss rate is ~0.2.
        MarkovLoss markov({{0.90, 0.08, 0.02},
                           {0.20, 0.70, 0.10},
                           {0.30, 0.10, 0.60}},
                          {0.0, 0.3, 1.0});
        bench::note("model: " + markov.name());
        TablePrinter table({"scheme", "q_min(mc)"});
        Rng rng(13);
        struct Case {
            const char* name;
            DependenceGraph dg;
        } cases[] = {{"rohatgi", make_rohatgi(kN)},
                     {"emss(2,1)", make_emss(kN, 2, 1)},
                     {"emss(2,16)", make_emss(kN, 2, 16)},
                     {"ac(3,3)", make_augmented_chain(kN, 3, 3)}};
        for (auto& c : cases) {
            auto loss = markov.clone();
            table.add_row({c.name, TablePrinter::num(mc_q_min(c.dg, *loss, rng), 4)});
        }
        bench::emit(table, "abl2_markov3");
    }
    bench::note("\nreading: across each row, schemes whose link spans exceed the burst"
                "\nlength hold up; emss(2,1) decays fastest as bursts lengthen, exactly"
                "\nthe failure mode the augmented chain was designed against.");
    return 0;
}

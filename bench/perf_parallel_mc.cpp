// Parallel Monte-Carlo throughput: trials/sec at 1/2/4/8 pool threads for
// the two heaviest randomized workloads in the bench suite —
//
//   * the abl_recurrence_accuracy large-block grid (monte_carlo_auth_prob
//     over EMSS/AC graphs at n = 1000), and
//   * a fig03-style TESLA surface evaluated by monte_carlo_tesla instead of
//     the closed form (per-cell trials over the (p, sigma, alpha) grid).
//
// Besides throughput, each thread count's q_min checksum is compared: the
// determinism contract (DESIGN.md §7) says they must be bit-identical, and
// this bench fails loudly if they are not.
//
// Results land in bench_out/BENCH_parallel_mc.json in the schema-v2
// envelope (DESIGN.md §9): a top-level "manifest" object records where the
// numbers came from and every cell keeps its per-repeat times in
// "seconds_repeats" (seconds = min over repeats; pass --repeat N for
// best-of-N, default 1 — these grids are heavy).
//
// Note: on machines with fewer hardware threads than the sweep's lane
// counts the extra lanes time-slice, so the speedup column saturates at the
// core count — the checksum comparison is meaningful regardless.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/authprob.hpp"
#include "core/tesla.hpp"
#include "core/topologies.hpp"
#include "exec/sharded.hpp"
#include "exec/sweep.hpp"
#include "exec/thread_pool.hpp"

using namespace mcauth;

namespace {

struct WorkloadResult {
    std::size_t trials = 0;  // total Monte-Carlo trials executed
    double seconds = 0;
    double checksum = 0;  // sum of per-cell q_min (bit-identity probe)
};

double now_seconds() {
    using Clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
}

WorkloadResult run_authprob_grid(std::uint64_t base_seed) {
    constexpr std::size_t kN = 1000;
    constexpr std::size_t kTrials = 3000;
    const auto emss21 = make_emss(kN, 2, 1);
    const auto emss41 = make_emss(kN, 4, 1);
    const auto ac33 = make_augmented_chain(kN, 3, 3);
    const DependenceGraph* graphs[] = {&emss21, &emss41, &ac33};
    const double losses[] = {0.1, 0.3, 0.5};

    struct Cell {
        const DependenceGraph* dg;
        double p;
    };
    std::vector<Cell> grid;
    for (double p : losses)
        for (const DependenceGraph* dg : graphs) grid.push_back({dg, p});

    const exec::SweepRunner sweep;
    WorkloadResult out;
    out.trials = grid.size() * kTrials;
    const double t0 = now_seconds();
    const auto q_min = sweep.map_grid<double>(grid, [&](const Cell& c, std::size_t i) {
        const BernoulliLoss loss(c.p);
        return monte_carlo_auth_prob(*c.dg, loss, exec::derive_stream_seed(base_seed, i),
                                     kTrials)
            .q_min;
    });
    out.seconds = now_seconds() - t0;
    for (double q : q_min) out.checksum += q;
    return out;
}

WorkloadResult run_tesla_surface(std::uint64_t base_seed) {
    constexpr std::size_t kTrials = 1000;
    const double alphas[] = {0.2, 0.5, 0.8};
    const double sigmas[] = {0.05, 0.2};
    const double losses[] = {0.1, 0.3};

    struct Cell {
        double p, sigma, alpha;
    };
    std::vector<Cell> grid;
    for (double p : losses)
        for (double sigma : sigmas)
            for (double alpha : alphas) grid.push_back({p, sigma, alpha});

    const exec::SweepRunner sweep;
    WorkloadResult out;
    out.trials = grid.size() * kTrials;
    const double t0 = now_seconds();
    const auto q_min = sweep.map_grid<double>(grid, [&](const Cell& c, std::size_t i) {
        TeslaParams params;
        params.n = 1000;
        params.t_disclose = 1.0;
        params.mu = c.alpha * params.t_disclose;
        params.sigma = c.sigma;
        params.p = c.p;
        const BernoulliLoss loss(c.p);
        const GaussianDelay delay(params.mu, params.sigma);
        return monte_carlo_tesla(params, loss, delay,
                                 exec::derive_stream_seed(base_seed, i), kTrials)
            .q_min;
    });
    out.seconds = now_seconds() - t0;
    for (double q : q_min) out.checksum += q;
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "perf_parallel_mc");
    bench::note("[perf] Parallel Monte-Carlo throughput and thread-count bit-identity");
    bench::note("hardware threads: " + std::to_string(exec::hardware_threads()));

    struct Workload {
        const char* name;
        WorkloadResult (*run)(std::uint64_t);
    };
    const Workload workloads[] = {
        {"abl_recurrence_accuracy_mc", &run_authprob_grid},
        {"fig03_tesla_surface_mc", &run_tesla_surface},
    };
    const std::size_t thread_counts[] = {1, 2, 4, 8};
    const std::size_t repeats = std::max<std::size_t>(1, bm.repeat());

    struct Record {
        const char* workload;
        std::size_t threads;
        WorkloadResult r;  // best (min-seconds) repeat
        std::vector<double> seconds_repeats;
    };
    std::vector<Record> records;
    bool deterministic = true;

    for (const Workload& w : workloads) {
        bench::section(w.name);
        TablePrinter table({"threads", "trials", "seconds", "trials/sec", "vs 1 thread"});
        double serial_rate = 0;
        double reference_checksum = 0;
        for (std::size_t t : thread_counts) {
            exec::ThreadPool::set_global_thread_count(t);
            Record rec{w.name, t, {}, {}};
            for (std::size_t rep = 0; rep < repeats; ++rep) {
                const WorkloadResult attempt = w.run(bm.seed());
                rec.seconds_repeats.push_back(attempt.seconds);
                if (rep == 0) {
                    rec.r = attempt;
                    continue;
                }
                if (attempt.checksum != rec.r.checksum) deterministic = false;
                if (attempt.seconds < rec.r.seconds) rec.r = attempt;
            }
            const WorkloadResult& r = rec.r;
            const double rate = r.seconds > 0 ? static_cast<double>(r.trials) / r.seconds
                                              : 0.0;
            if (t == 1) {
                serial_rate = rate;
                reference_checksum = r.checksum;
            } else if (r.checksum != reference_checksum) {
                deterministic = false;
                bench::note("DETERMINISM VIOLATION at threads=" + std::to_string(t));
            }
            table.add_row({std::to_string(t), std::to_string(r.trials),
                           TablePrinter::num(r.seconds, 3), TablePrinter::num(rate, 0),
                           TablePrinter::num(serial_rate > 0 ? rate / serial_rate : 0.0,
                                             2)});
            records.push_back(std::move(rec));
        }
        bench::emit(table, std::string("perf_parallel_mc_") + w.name);
    }

    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    const char* path = "bench_out/BENCH_parallel_mc.json";
    if (std::FILE* f = std::fopen(path, "w")) {
        std::fprintf(f, "{\n  \"schema_version\": %d,\n",
                     obs::RunManifest::kSchemaVersion);
        std::fprintf(f, "  \"bench\": \"perf_parallel_mc\",\n");
        std::fprintf(f, "  \"seed\": %llu,\n",
                     static_cast<unsigned long long>(bm.seed()));
        std::fprintf(f, "  \"hardware_threads\": %zu,\n", exec::hardware_threads());
        std::fprintf(f, "  \"repeats\": %zu,\n", repeats);
        std::fprintf(f, "  \"deterministic_across_thread_counts\": %s,\n",
                     deterministic ? "true" : "false");
        std::fprintf(f, "  \"manifest\": %s,\n", bm.manifest().to_json(2).c_str());
        std::fprintf(f, "  \"results\": [\n");
        for (std::size_t i = 0; i < records.size(); ++i) {
            const Record& rec = records[i];
            const double rate =
                rec.r.seconds > 0 ? static_cast<double>(rec.r.trials) / rec.r.seconds
                                  : 0.0;
            std::fprintf(f,
                         "    {\"workload\": \"%s\", \"threads\": %zu, \"trials\": %zu, "
                         "\"seconds\": %.6f,\n     \"seconds_repeats\": [",
                         rec.workload, rec.threads, rec.r.trials, rec.r.seconds);
            for (std::size_t s = 0; s < rec.seconds_repeats.size(); ++s)
                std::fprintf(f, "%s%.6f", s ? ", " : "", rec.seconds_repeats[s]);
            std::fprintf(f,
                         "],\n     \"trials_per_sec\": %.1f, \"qmin_checksum\": %.17g}%s\n",
                         rate, rec.r.checksum, i + 1 < records.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        bench::note(std::string("\njson: ") + path);
    } else {
        bench::note(std::string("\njson: FAILED to write ") + path);
    }

    if (!deterministic) {
        bench::note("RESULT: FAIL — outputs varied with thread count");
        return 1;
    }
    bench::note("RESULT: OK — q_min checksums bit-identical at 1/2/4/8 threads");
    return 0;
}

// Ablation A4 — closing the loop: the dependence-graph engines PREDICT
// q_min; the stream simulator MEASURES it with real hashing, real
// signatures and a real lossy channel. Prediction and measurement must
// agree within Monte-Carlo error, for every scheme family.
//
// (The "exact" column uses exhaustive enumeration where the block is small
// enough, else dependence-graph Monte-Carlo with 64k trials.)
#include <cmath>

#include "bench_common.hpp"
#include "core/authprob.hpp"
#include "core/topologies.hpp"
#include "sim/stream_sim.hpp"
#include "util/check.hpp"

using namespace mcauth;

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "abl4", /*default_seed=*/31);
    bench::note("[abl4] Predicted vs measured q_min (real codecs over a lossy channel)");

    TablePrinter table({"scheme", "n", "p", "predicted", "measured", "delta"});
    Rng rng(bm.seed());
    MerkleWotsSigner signer(rng, 1024);

    struct Case {
        HashChainConfig config;
        std::function<DependenceGraph(std::size_t)> topology;
    };
    const Case cases[] = {
        {rohatgi_config(16), [](std::size_t n) { return make_rohatgi(n); }},
        {emss_config(20, 2, 1), [](std::size_t n) { return make_emss(n, 2, 1); }},
        {augmented_chain_config(21, 2, 2),
         [](std::size_t n) { return make_augmented_chain(n, 2, 2); }},
        {emss_config(48, 3, 2), [](std::size_t n) { return make_emss(n, 3, 2); }},
    };

    for (const auto& c : cases) {
        for (double p : {0.1, 0.3}) {
            const std::size_t n = c.config.block_size;
            const auto dg = c.topology(n);
            double predicted = 0.0;
            if (n <= 22) {
                predicted = exact_auth_prob(dg, p).q_min;
            } else {
                BernoulliLoss loss(p);
                predicted = monte_carlo_auth_prob(dg, loss, rng.next_u64(), 64000).q_min;
            }

            SimConfig sim;
            sim.blocks = 120;
            sim.payload_bytes = 48;
            sim.t_transmit = 0.002;
            sim.sign_copies = 4;
            sim.seed = rng.next_u64();
            Channel channel(std::make_unique<BernoulliLoss>(p),
                            std::make_unique<GaussianDelay>(0.01, 0.002));
            const auto stats = run_hash_chain_sim(c.config, signer, channel, sim);
            // A sim that resolved nothing reports NaN, never a fake 1.0.
            MCAUTH_REQUIRE(std::isfinite(stats.auth_fraction()));

            table.add_row({c.config.name, std::to_string(n), TablePrinter::num(p, 1),
                           TablePrinter::num(predicted, 4),
                           TablePrinter::num(stats.empirical_q_min, 4),
                           TablePrinter::num(std::abs(predicted - stats.empirical_q_min), 4)});
        }
    }
    bench::emit(table, "abl4");
    bench::note("\nreading: delta is sampling noise (120 blocks per cell); the executable"
                "\nsystem and the Definition-1 analysis describe the same object.");
    return 0;
}

// Ablation: closed-loop adaptive authentication under channel drift
// (DESIGN.md §10).
//
// Two arms stream the same schedule of loss regimes:
//
//   adaptive     — the full loop: receivers estimate the channel online,
//                  report over a lossy NACK path, the sender re-invokes
//                  the §5 designer per regime (hysteresis + budget damped);
//   static-calm  — the same design machinery run ONCE for the initial calm
//                  channel and then frozen: what an offline §5 design
//                  gives you. During the calm regime the two arms carry
//                  the same design, so their overhead is matched where
//                  the comparison starts.
//
// The regime schedule drifts a Bernoulli channel up (calm -> ramp ->
// storm), switches to a bursty Gilbert-Elliott regime at the same-order
// stationary rate, recovers, and finally blacks out the feedback path
// entirely (adaptive must fall back to its conservative prior, not coast
// on stale sunny estimates). Each regime gets a convergence window
// (excluded from acceptance) and a measured window.
//
// Internal acceptance (exit 1 on violation):
//   * adaptive holds measured q_min >= target - 0.02 in EVERY measured
//     window (post-convergence);
//   * static-calm falls below target in at least two drifted regimes;
//   * each arm's structured-event stream passes its expectation suite
//     (DESIGN.md §11): adaptive-loop for the adaptive arm (every regime
//     shift must be answered by a redesign within the lag bound),
//     hash-chain for the frozen arm. The bench emits kRegimeShift at each
//     schedule boundary as ground truth and exports per-arm JSONL
//     (bench_out/abl_adaptive_<arm>.events.jsonl) for tools/trace_check.
//
// Results land in bench_out/BENCH_adaptive.json (schema-v2 envelope,
// DESIGN.md §9) for the bench_compare regression gate (report-only, except
// the conformance block which always gates).
#include <cstdio>
#include <memory>
#include <vector>

#include "adapt/session.hpp"
#include "bench_common.hpp"
#include "crypto/signature.hpp"
#include "net/loss.hpp"
#include "obs/events.hpp"
#include "obs/expect.hpp"

using namespace mcauth;

namespace {

constexpr double kTarget = 0.9;
constexpr double kQminSlack = 0.02;  // acceptance: q_min >= target - slack

struct Regime {
    const char* name;
    std::unique_ptr<LossModel> loss;
    std::size_t converge_blocks;
    std::size_t measure_blocks;
    bool feedback_blackout;  // NACK path dead during this regime
    bool expect_static_fail; // drifted far enough that the calm design breaks
};

std::vector<Regime> make_schedule() {
    std::vector<Regime> schedule;
    auto add = [&](const char* name, std::unique_ptr<LossModel> loss, bool blackout,
                   bool static_fail) {
        schedule.push_back({name, std::move(loss), 10, 40, blackout, static_fail});
    };
    add("calm-p0.05", std::make_unique<BernoulliLoss>(0.05), false, false);
    add("ramp-p0.15", std::make_unique<BernoulliLoss>(0.15), false, true);
    add("storm-p0.30", std::make_unique<BernoulliLoss>(0.30), false, true);
    add("burst-ge(0.25,6)",
        std::make_unique<GilbertElliottLoss>(GilbertElliottLoss::from_rate_and_burst(0.25, 6.0)),
        false, true);
    add("recover-p0.08", std::make_unique<BernoulliLoss>(0.08), false, false);
    add("blackout-p0.20", std::make_unique<BernoulliLoss>(0.20), true, false);
    return schedule;
}

adapt::SessionOptions arm_options(bool adaptive, std::uint64_t seed) {
    adapt::SessionOptions opts;
    opts.receivers = 4;
    opts.block_size = 64;
    opts.payload_bytes = 64;
    opts.seed = seed;
    opts.feedback_loss = 0.1;
    opts.adaptive = adaptive;
    opts.controller.target_q_min = kTarget;
    // Margin 0.02, not the default 0.05: a design target of 0.95 makes the
    // greedy designer saturate to a near-root-star for ANY loss rate (only
    // depth <= 2 survives 0.95 unprotected), which would hand the static
    // arm a maximally-hardened graph and erase the comparison. At 0.92 the
    // calm design is genuinely calm-shaped and breaks under drift.
    opts.controller.design_margin = 0.02;
    opts.controller.hysteresis = 0.03;
    opts.controller.min_blocks_between_redesigns = 4;
    // static-calm: freeze the design the controller would build for the
    // initial calm channel.
    if (!adaptive) opts.controller.conservative_prior = 0.05;
    return opts;
}

struct Row {
    const char* arm;
    const char* regime;
    bool measured;  // false = convergence window (excluded from acceptance)
    adapt::WindowStats w;
};

}  // namespace

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "abl_adaptive_loss");
    bench::note("[abl_adaptive] Closed-loop adaptation vs static design under channel drift");
    bench::note("target q_min = " + TablePrinter::num(kTarget, 2) +
                ", acceptance slack = " + TablePrinter::num(kQminSlack, 2));
    // Every arm runs under an expectation suite; structured events ride the
    // trace ring, so tracing is always on for this ablation.
    obs::set_trace_enabled(true);

    std::vector<Row> rows;
    struct ArmSpec {
        const char* name;
        bool adaptive;
    };
    const ArmSpec arms[] = {{"adaptive", true}, {"static-calm", false}};

    for (const ArmSpec& arm : arms) {
        Rng signer_rng(bm.seed() ^ 0x51);
        MerkleWotsSigner signer(signer_rng, 512);
        adapt::AdaptiveSession session(arm_options(arm.adaptive, bm.seed()), signer);

        // Fresh event stream per arm: clear the ring, then check this arm's
        // events online against its suite. The adaptive arm must close the
        // loop (adaptive-loop); the frozen arm only keeps hash-chain
        // invariants — its whole point is NOT reacting to regime shifts.
        obs::TraceRecorder::global().clear();
        const obs::ExpectationSuite* suite =
            obs::find_suite(arm.adaptive ? "adaptive-loop" : "hash-chain");
        auto conformance = std::make_unique<obs::OnlineConformance>(*suite);

        // Per-arm block-granular telemetry: one capture per window boundary
        // (registry deltas — attribution blame, redesign counters, ...) plus
        // the window's headline stats as manual series. Joined with the
        // events JSONL by tools/mcauth_report.
        obs::TimeSeries ts;

        const auto schedule = make_schedule();
        bench::section(std::string(arm.name) + " arm");
        TablePrinter table({"regime", "true_loss", "est_loss", "q_min", "auth_frac",
                            "edges/pkt", "ovh_bytes", "sign_copies", "redesigns"});
        std::uint32_t regime_index = 0;
        for (const Regime& regime : schedule) {
            // Ground-truth regime boundary (index 0 = the initial regime,
            // which is not a "shift" — the design already targets it).
            if (regime_index > 0)
                MCAUTH_OBS_EVENT(kRegimeShift, session.blocks_streamed(),
                                 regime_index, 0, 0.0);
            ++regime_index;
            session.set_feedback_loss(regime.feedback_blackout ? 1.0 : 0.1);
            const adapt::WindowStats converge =
                session.run_window(*regime.loss, regime.converge_blocks);
            rows.push_back({arm.name, regime.name, false, converge});
            auto sample_window = [&](const adapt::WindowStats& w) {
                const auto block =
                    static_cast<std::uint32_t>(session.blocks_streamed());
                ts.capture(block);
                ts.record("q_min", block, w.q_min);
                ts.record("true_loss", block, w.true_loss);
                ts.record("est_loss", block, w.estimated_loss);
            };
            sample_window(converge);
            const adapt::WindowStats measured =
                session.run_window(*regime.loss, regime.measure_blocks);
            rows.push_back({arm.name, regime.name, true, measured});
            sample_window(measured);
            table.add_row({regime.name, TablePrinter::num(measured.true_loss, 3),
                           TablePrinter::num(measured.estimated_loss, 3),
                           TablePrinter::num(measured.q_min, 3),
                           TablePrinter::num(measured.auth_fraction, 3),
                           TablePrinter::num(measured.edges_per_packet, 2),
                           TablePrinter::num(measured.overhead_bytes, 1),
                           std::to_string(measured.sign_copies),
                           std::to_string(measured.redesigns)});
        }
        bench::emit(table, std::string("abl_adaptive_") + arm.name);

        // Per-arm JSONL export (trace_check input) and the suite verdict,
        // registered into the manifest's conformance array.
        const std::string events_path =
            std::string("bench_out/abl_adaptive_") + arm.name + ".events.jsonl";
        if (obs::write_events_jsonl(events_path))
            std::fprintf(stderr, "events: %s\n", events_path.c_str());
        const std::string ts_path =
            std::string("bench_out/abl_adaptive_") + arm.name + ".timeseries.jsonl";
        if (ts.write_jsonl(ts_path))
            std::fprintf(stderr, "timeseries: %s\n", ts_path.c_str());
        bm.add_conformance(conformance->finish(), arm.name);
    }

    // ----------------------------------------------------------- acceptance
    bool pass = true;
    std::size_t static_failures = 0;
    std::vector<std::string> verdicts;
    for (const Row& row : rows) {
        if (!row.measured) continue;
        if (std::string(row.arm) == "adaptive") {
            const bool held = row.w.q_min >= kTarget - kQminSlack;
            if (!held) pass = false;
            verdicts.push_back(std::string("adaptive/") + row.regime + ": q_min " +
                               TablePrinter::num(row.w.q_min, 3) +
                               (held ? " HELD" : " FAILED"));
        }
    }
    const auto schedule_names = make_schedule();
    for (const Row& row : rows) {
        if (!row.measured || std::string(row.arm) != "static-calm") continue;
        for (const Regime& regime : schedule_names)
            if (std::string(regime.name) == row.regime && regime.expect_static_fail &&
                row.w.q_min < kTarget)
                ++static_failures;
    }
    if (static_failures < 2) pass = false;

    bench::section("acceptance");
    for (const std::string& v : verdicts) bench::note(v);
    bench::note("static-calm fell below target in " + std::to_string(static_failures) +
                " drifted regimes (need >= 2)");
    if (bm.conformance_failed()) {
        pass = false;
        bench::note("expectation suites reported violations (see manifest)");
    } else {
        bench::note("expectation suites: all PASS");
    }

    // ------------------------------------------------------------- JSON out
    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    const char* path = "bench_out/BENCH_adaptive.json";
    if (std::FILE* f = std::fopen(path, "w")) {
        std::fprintf(f, "{\n  \"schema_version\": %d,\n",
                     obs::RunManifest::kSchemaVersion);
        std::fprintf(f, "  \"bench\": \"abl_adaptive_loss\",\n");
        std::fprintf(f, "  \"seed\": %llu,\n",
                     static_cast<unsigned long long>(bm.seed()));
        std::fprintf(f, "  \"target_q_min\": %.3f,\n", kTarget);
        // Gated metric for tools/bench_compare: q_min per (arm, regime,
        // phase) row, higher is better — same noise-aware gate as the
        // throughput benches.
        std::fprintf(f, "  \"metric\": \"q_min\",\n");
        std::fprintf(f, "  \"acceptance_slack\": %.3f,\n", kQminSlack);
        std::fprintf(f, "  \"acceptance_pass\": %s,\n", pass ? "true" : "false");
        std::fprintf(f, "  \"manifest\": %s,\n", bm.manifest().to_json(2).c_str());
        std::fprintf(f, "  \"results\": [\n");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row& row = rows[i];
            const adapt::WindowStats& w = row.w;
            const char* phase = row.measured ? "measure" : "converge";
            std::fprintf(
                f,
                "    {\"workload\": \"%s/%s/%s\",\n"
                "     \"arm\": \"%s\", \"regime\": \"%s\", \"phase\": \"%s\", "
                "\"blocks\": %zu,\n",
                row.arm, row.regime, phase, row.arm, row.regime, phase, w.blocks);
            std::fprintf(
                f,
                "     \"q_min\": %.6f, \"auth_fraction\": %.6f, \"true_loss\": %.6f, "
                "\"estimated_loss\": %.6f,\n"
                "     \"edges_per_packet\": %.4f, \"overhead_bytes\": %.3f, "
                "\"sign_copies\": %zu,\n"
                "     \"redesigns\": %llu, \"suppressed\": %llu, "
                "\"feedback_sent\": %llu, \"feedback_delivered\": %llu, "
                "\"feedback_stale\": %llu}%s\n",
                w.q_min, w.auth_fraction, w.true_loss, w.estimated_loss,
                w.edges_per_packet, w.overhead_bytes, w.sign_copies,
                static_cast<unsigned long long>(w.redesigns),
                static_cast<unsigned long long>(w.suppressed),
                static_cast<unsigned long long>(w.feedback_sent),
                static_cast<unsigned long long>(w.feedback_delivered),
                static_cast<unsigned long long>(w.feedback_stale),
                i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        bench::note(std::string("\njson: ") + path);
    } else {
        bench::note(std::string("\njson: FAILED to write ") + path);
    }

    if (!pass) {
        bench::note("RESULT: FAIL — adaptive loop did not meet its acceptance bars");
        return 1;
    }
    bench::note("RESULT: OK — adaptive held q_min through every regime; static design broke");
    return 0;
}

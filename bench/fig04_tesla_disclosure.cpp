// Figure 4: TESLA q_min against the normalized key-disclosure delay
// T_disclose / sigma and the packet loss rate p, for several network mean
// delays mu = alpha * T_disclose (Eq. 7).
//
// Expected shape (paper): TESLA is robust to packet loss once T_disclose is
// large relative to mu and sigma — the p-dependence is exactly (1 - p), and
// the T/sigma axis saturates quickly (jitter absorbed by the margin).
//
// Grid cells are fanned across the thread pool by SweepRunner (index-order
// results: output is byte-identical for any --threads value).
#include "bench_common.hpp"
#include "core/tesla.hpp"
#include "exec/sweep.hpp"

using namespace mcauth;

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "fig04_tesla_disclosure");
    bench::note("[fig04] TESLA q_min vs normalized T_disclose/sigma and p; n = 1000");
    const double ratios[] = {0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
    const double losses[] = {0.1, 0.3, 0.5, 0.7, 0.9};
    const double alphas[] = {0.25, 0.5, 0.75};

    struct Cell {
        double alpha, p, ratio;
    };
    std::vector<Cell> grid;
    for (double alpha : alphas)
        for (double p : losses)
            for (double ratio : ratios) grid.push_back({alpha, p, ratio});

    const exec::SweepRunner sweep;
    const auto q_min = sweep.map_grid<double>(grid, [&](const Cell& c, std::size_t) {
        TeslaParams params;
        params.n = 1000;
        params.t_disclose = 1.0;
        params.sigma = 1.0 / c.ratio;  // T/sigma = ratio with T = 1
        params.mu = c.alpha;
        params.p = c.p;
        return analyze_tesla(params).q_min;
    });

    std::size_t i = 0;
    for (double alpha : alphas) {
        bench::section("mu = " + TablePrinter::num(alpha, 2) + " * T_disclose");
        std::vector<std::string> header{"p\\(T/sigma)"};
        for (double r : ratios) header.push_back(TablePrinter::num(r, 1));
        TablePrinter table(header);
        for (double p : losses) {
            std::vector<std::string> row{TablePrinter::num(p, 1)};
            for (std::size_t r = 0; r < std::size(ratios); ++r)
                row.push_back(TablePrinter::num(q_min[i++], 4));
            table.add_row(row);
        }
        bench::emit(table, "fig04_alpha" + TablePrinter::num(alpha, 2));
    }
    bench::note("\nshape check: each row saturates at (1-p) as T/sigma grows; larger alpha"
                "\n(mean delay closer to the disclosure deadline) delays that saturation.");
    return 0;
}

// Ablation: topology-correlated loss vs i.i.d. loss at EQUAL average rate
// (DESIGN.md §13) — the experiment the population engine exists to make
// affordable.
//
// The paper's channel drops packets independently per receiver. A real
// multicast tree does not: one bursty backbone link drops the SAME packets
// for every receiver behind it. This ablation holds the per-leaf average
// loss rate fixed and toggles only WHERE the loss lives:
//
//   corr — a D-hop backbone of Gilbert-Elliott links (storm bursts shared
//          by the whole population), light i.i.d. last-hop noise;
//   iid  — the identical topology with every link lossless except the leaf
//          links, whose Bernoulli rate is set to the corr tree's
//          leaf_loss_rate() exactly.
//
// Two design arms stream the same calm -> storm schedule through the
// population engine (512 leaves x 64 trial lanes per block):
//
//   adaptive — the §10 AdaptiveController closed over synthesize_feedback:
//              population aggregates come back as one synthetic report, the
//              controller fits (rate, burst) and re-designs, bursty
//              estimates routing to the Monte-Carlo-scored designer;
//   frozen   — design_greedy run ONCE for the calm channel and never
//              revisited: what an offline §5 design gives you.
//
// Separation metric: the 1st percentile over (receiver, trial) instances of
// the UNCONDITIONAL authenticated throughput (PopulationAggregate::qauth,
// verified / sent) across the measured storm window. The §3 conditional
// q (qtrial, verified / received) cannot carry this comparison: with P_sign
// assumed delivered, the greedy designers hand out root edges freely (the
// r = 1 donor), so any competently-designed graph verifies essentially
// every packet that ARRIVES and the conditional tail saturates near 1 for
// correlated and i.i.d. channels alike — both are reported for exactly that
// contrast. The unconditional tail is where a shared backbone burst shows
// up: it deletes a contiguous quarter of the block for every receiver of a
// subtree at once, which no equal-average i.i.d. channel reproduces.
//
// Internal acceptance (exit 1 on violation):
//   * equal-average arms really are equal (leaf_loss_rate matches);
//   * channel separation: in EVERY cell the frozen design's unconditional
//     tail is worse under corr than under iid by >= kCorrGap;
//   * control-loop separation: the adaptive arm DIAGNOSES the channel the
//     frozen arm is blind to — under corr it answers the regime shift with
//     >= 1 redesign and lands in bursty (Monte-Carlo-scored) design mode;
//     under iid, at the SAME average loss, it stays in analytic i.i.d.
//     mode; and it holds target - slack on the conditional tail under
//     both. The frozen arm, by construction, has zero redesigns and the
//     identical graph in every cell;
//   * each run's event stream passes its expectation suite (§11):
//     population-loop for adaptive (feedback must follow every population
//     block, a redesign must answer the regime shift), population for
//     frozen. The heavy cell exports per-arm JSONL for tools/trace_check.
//
// Results land in bench_out/BENCH_tree_correlated.json (schema-v2) for the
// report-only bench_compare gate. --smoke=1 runs the heavy cell only with
// shortened windows.
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "adapt/controller.hpp"
#include "bench_common.hpp"
#include "design/constructors.hpp"
#include "obs/events.hpp"
#include "obs/expect.hpp"
#include "pop/population.hpp"
#include "pop/tree.hpp"

using namespace mcauth;

namespace {

constexpr std::size_t kBlockSize = 256;
constexpr double kTarget = 0.9;
constexpr double kQminSlack = 0.05;  // adaptive holds qtrial_p01 >= target - slack
constexpr double kCorrGap = 0.08;    // frozen: iid qauth tail - corr qauth tail

struct Cell {
    const char* name;
    std::size_t backbone_depth;
    double storm_rate;  // total backbone loss during the storm
    bool heavy;         // participates in the adaptive-recovery gate
};

struct Windows {
    std::size_t calm, converge, measure;
};

// Shared topology: D backbone hops, 8 regional routers x 64 receivers.
// `backbone_rate` is the TOTAL backbone loss; it is split evenly across the
// D hops so depth changes burst geometry, not the average.
pop::TreeSpec corr_spec(std::size_t depth, double backbone_rate) {
    pop::TreeSpec spec;
    spec.backbone_depth = depth;
    const double per_link =
        1.0 - std::pow(1.0 - backbone_rate, 1.0 / static_cast<double>(depth));
    spec.backbone_link = pop::LinkSpec::gilbert_elliott(per_link, 16.0);
    spec.fanouts = {8, 64};
    spec.fanout_links = {pop::LinkSpec::bernoulli(0.02), pop::LinkSpec::bernoulli(0.02)};
    return spec;
}

// Equal-average control: identical topology, all loss moved to the leaf
// links as i.i.d. Bernoulli at exactly the corr tree's end-to-end rate.
pop::TreeSpec iid_spec(std::size_t depth, double leaf_rate) {
    pop::TreeSpec spec;
    spec.backbone_depth = depth;
    spec.backbone_link = pop::LinkSpec::bernoulli(0.0);
    spec.fanouts = {8, 64};
    spec.fanout_links = {pop::LinkSpec::bernoulli(0.0), pop::LinkSpec::bernoulli(leaf_rate)};
    return spec;
}

adapt::AdaptiveOptions controller_options() {
    adapt::AdaptiveOptions opts;
    opts.target_q_min = kTarget;
    opts.design_margin = 0.02;
    opts.hysteresis = 0.03;
    opts.min_blocks_between_redesigns = 2;
    opts.mc_trials = 256;
    // Matched overhead budget with the frozen arm: at 4 edges/packet the
    // greedy designer saturates into a burst-immune near-clique for ANY
    // storm-grade loss rate and the arms stop differing. At 2 the budget is
    // binding and edge PLACEMENT is what separates them.
    opts.max_edges_per_packet = 2;
    return opts;
}

struct RunResult {
    double qauth_p01 = 0, qauth_p05 = 0, qauth_p50 = 0;
    double qtrial_p01 = 0, qhat_p01 = 0;
    double mean_loss = 0, mean_burst = 0;
    std::uint64_t redesigns = 0, redesigns_post_shift = 0;
    bool bursty = false;
    std::size_t blocks_measured = 0;
};

struct Row {
    std::string cell, channel, arm;
    double expected_leaf_loss;
    RunResult r;
};

}  // namespace

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "abl_tree_correlated", 1, {"smoke"});
    const bool smoke = bm.args().get_bool("smoke", false);
    const Windows windows = smoke ? Windows{4, 6, 10} : Windows{8, 8, 16};

    bench::note("[abl_tree] Topology-correlated vs i.i.d. loss at equal average rate");
    bench::note("separation metric: qauth 1st percentile over the measured storm window");
    obs::set_trace_enabled(true);

    std::vector<Cell> cells = {
        {"d2-p0.15", 2, 0.15, false},
        {"d8-p0.15", 8, 0.15, false},
        {"d2-p0.30", 2, 0.30, true},
        {"d8-p0.30", 8, 0.30, true},
    };
    if (smoke) cells = {{"d8-p0.30", 8, 0.30, true}};

    std::vector<Row> rows;
    auto find_row = [&rows](const std::string& cell, const char* channel,
                            const char* arm) -> const Row& {
        for (const Row& row : rows)
            if (row.cell == cell && row.channel == channel && row.arm == arm) return row;
        std::abort();  // acceptance only queries rows the grid loop produced
    };

    bool pass = true;
    for (std::size_t ci = 0; ci < cells.size(); ++ci) {
        const Cell& cell = cells[ci];
        const pop::DistributionTree corr_calm(corr_spec(cell.backbone_depth, 0.03));
        const pop::DistributionTree corr_storm(corr_spec(cell.backbone_depth, cell.storm_rate));
        const pop::DistributionTree iid_calm(
            iid_spec(cell.backbone_depth, corr_calm.leaf_loss_rate()));
        const pop::DistributionTree iid_storm(
            iid_spec(cell.backbone_depth, corr_storm.leaf_loss_rate()));
        if (std::abs(corr_storm.leaf_loss_rate() - iid_storm.leaf_loss_rate()) > 1e-9) {
            bench::note(std::string(cell.name) + ": arms NOT average-matched");
            pass = false;
        }

        bench::section(std::string(cell.name) + "  (storm leaf loss " +
                       TablePrinter::num(corr_storm.leaf_loss_rate(), 3) + ")");
        TablePrinter table({"channel", "arm", "qauth_p01", "qauth_p05", "qauth_p50",
                            "qtrial_p01", "loss", "burst", "mode", "redesigns"});

        for (bool corr : {true, false}) {
            const char* channel = corr ? "corr" : "iid";
            const pop::PopulationEngine calm_engine(corr ? corr_calm : iid_calm);
            const pop::PopulationEngine storm_engine(corr ? corr_storm : iid_storm);
            // Both arms replay the SAME channel realization: the engine's
            // variate streams depend only on (seed, node, block, lane), so
            // with a shared seed the arms differ in the dependence graph
            // alone.
            const std::uint64_t run_seed = bm.seed() + 101 * ci + (corr ? 0 : 7);

            for (bool adaptive : {true, false}) {
                const char* arm = adaptive ? "adaptive" : "frozen";

                // Fresh event stream per run, checked online against this
                // arm's suite: the adaptive arm must close the loop
                // (population-loop), the frozen arm only keeps the
                // population-block invariants — not reacting is its point.
                obs::TraceRecorder::global().clear();
                const obs::ExpectationSuite* suite =
                    obs::find_suite(adaptive ? "population-loop" : "population");
                auto conformance = std::make_unique<obs::OnlineConformance>(*suite);

                adapt::AdaptiveController controller(controller_options(), run_seed);
                // The frozen arm is the §5 design for the CALM channel,
                // never revisited — what an offline design hands you. Both
                // channels' calm rates are equal by construction, so the
                // frozen arms start from the same graph.
                DesignGoal goal;
                goal.n = kBlockSize;
                goal.p = corr_calm.leaf_loss_rate();
                goal.target_q_min = std::min(1.0, kTarget + 0.02);
                GreedyDesignOptions design_opts;
                design_opts.max_edges = 2 * kBlockSize;
                const DependenceGraph frozen_dg = design_greedy(goal, design_opts);

                pop::PopulationAggregate measured(pop::QuantileSketch::kDefaultBins);
                std::size_t blocks_measured = 0;
                std::uint32_t block = 0;
                auto step = [&](const pop::PopulationEngine& engine, bool measure) {
                    const DependenceGraph dg =
                        adaptive ? controller.topology()(kBlockSize) : frozen_dg;
                    const pop::PopulationAggregate agg =
                        engine.simulate_block(dg, run_seed, block);
                    if (adaptive) {
                        controller.on_feedback(
                            pop::synthesize_feedback(agg, block, /*seq=*/block + 1));
                        controller.on_block_boundary(block + 1);
                    }
                    if (measure) {
                        measured.merge(agg);
                        ++blocks_measured;
                    }
                    ++block;
                };
                for (std::size_t b = 0; b < windows.calm; ++b)
                    step(calm_engine, false);
                // Ground-truth regime boundary: the storm starts here.
                MCAUTH_OBS_EVENT(kRegimeShift, block, 1, 0, 0.0);
                const std::uint64_t redesigns_at_shift = controller.redesigns();
                for (std::size_t b = 0; b < windows.converge; ++b)
                    step(storm_engine, false);
                for (std::size_t b = 0; b < windows.measure; ++b)
                    step(storm_engine, true);

                RunResult r;
                r.qauth_p01 = measured.qauth.quantile(0.01);
                r.qauth_p05 = measured.qauth.quantile(0.05);
                r.qauth_p50 = measured.qauth.quantile(0.50);
                r.qtrial_p01 = measured.qtrial.quantile(0.01);
                r.qhat_p01 = measured.qhat.quantile(0.01);
                r.mean_loss = measured.mean_loss_rate();
                r.mean_burst = measured.mean_burst_length();
                r.redesigns = controller.redesigns();
                r.redesigns_post_shift = controller.redesigns() - redesigns_at_shift;
                r.bursty = controller.last_design_bursty();
                r.blocks_measured = blocks_measured;
                rows.push_back(
                    {cell.name, channel, arm, corr_storm.leaf_loss_rate(), r});
                table.add_row({channel, arm, TablePrinter::num(r.qauth_p01, 3),
                               TablePrinter::num(r.qauth_p05, 3),
                               TablePrinter::num(r.qauth_p50, 3),
                               TablePrinter::num(r.qtrial_p01, 3),
                               TablePrinter::num(r.mean_loss, 3),
                               TablePrinter::num(r.mean_burst, 1),
                               adaptive ? (r.bursty ? "ge" : "iid") : "-",
                               std::to_string(adaptive ? r.redesigns : 0)});

                // Heavy cell: export the event stream for offline
                // tools/trace_check, then record the online verdict.
                if (cell.heavy) {
                    const std::string events_path = std::string("bench_out/abl_tree_") +
                                                    channel + "_" + arm +
                                                    ".events.jsonl";
                    if (obs::write_events_jsonl(events_path))
                        std::fprintf(stderr, "events: %s\n", events_path.c_str());
                }
                bm.add_conformance(conformance->finish(),
                                   std::string(cell.name) + "/" + channel + "/" + arm);
            }
        }
        bench::emit(table, std::string("abl_tree_") + cell.name);
    }

    // ----------------------------------------------------------- acceptance
    bench::section("acceptance");
    for (const Cell& cell : cells) {
        const RunResult& frozen_corr = find_row(cell.name, "corr", "frozen").r;
        const RunResult& frozen_iid = find_row(cell.name, "iid", "frozen").r;
        const RunResult& adaptive_corr = find_row(cell.name, "corr", "adaptive").r;
        const RunResult& adaptive_iid = find_row(cell.name, "iid", "adaptive").r;

        const double corr_gap = frozen_iid.qauth_p01 - frozen_corr.qauth_p01;
        const bool corr_hurts = corr_gap >= kCorrGap;
        if (!corr_hurts) pass = false;
        bench::note(std::string(cell.name) + ": frozen qauth tail iid " +
                    TablePrinter::num(frozen_iid.qauth_p01, 3) + " vs corr " +
                    TablePrinter::num(frozen_corr.qauth_p01, 3) + " (gap " +
                    TablePrinter::num(corr_gap, 3) + ", need >= " +
                    TablePrinter::num(kCorrGap, 2) + ") " +
                    (corr_hurts ? "SEPARATED" : "FAILED"));

        const bool diagnosed = adaptive_corr.redesigns_post_shift >= 1 &&
                               adaptive_corr.bursty && !adaptive_iid.bursty;
        if (!diagnosed) pass = false;
        bench::note(std::string(cell.name) + ": adaptive diagnosis corr=" +
                    (adaptive_corr.bursty ? "ge" : "iid") + "/" +
                    std::to_string(adaptive_corr.redesigns_post_shift) +
                    " post-shift redesigns, iid=" +
                    (adaptive_iid.bursty ? "ge" : "iid") + " " +
                    (diagnosed ? "SEPARATED" : "FAILED") +
                    " (frozen: 0 redesigns by construction)");

        const bool held = adaptive_corr.qtrial_p01 >= kTarget - kQminSlack &&
                          adaptive_iid.qtrial_p01 >= kTarget - kQminSlack;
        if (!held) pass = false;
        bench::note(std::string(cell.name) + ": adaptive qtrial tail corr " +
                    TablePrinter::num(adaptive_corr.qtrial_p01, 3) + ", iid " +
                    TablePrinter::num(adaptive_iid.qtrial_p01, 3) + " (need >= " +
                    TablePrinter::num(kTarget - kQminSlack, 2) + ") " +
                    (held ? "HELD" : "FAILED"));
    }
    if (bm.conformance_failed()) {
        pass = false;
        bench::note("expectation suites reported violations (see manifest)");
    } else {
        bench::note("expectation suites: all PASS");
    }

    // ------------------------------------------------------------- JSON out
    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    const char* path = "bench_out/BENCH_tree_correlated.json";
    if (std::FILE* f = std::fopen(path, "w")) {
        std::fprintf(f, "{\n  \"schema_version\": %d,\n",
                     obs::RunManifest::kSchemaVersion);
        std::fprintf(f, "  \"bench\": \"abl_tree_correlated\",\n");
        std::fprintf(f, "  \"seed\": %llu,\n",
                     static_cast<unsigned long long>(bm.seed()));
        std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
        std::fprintf(f, "  \"target_q_min\": %.3f,\n", kTarget);
        std::fprintf(f, "  \"metric\": \"qauth_p01\",\n");
        std::fprintf(f, "  \"corr_gap_min\": %.3f,\n  \"qmin_slack\": %.3f,\n",
                     kCorrGap, kQminSlack);
        std::fprintf(f, "  \"acceptance_pass\": %s,\n", pass ? "true" : "false");
        std::fprintf(f, "  \"manifest\": %s,\n", bm.manifest().to_json(2).c_str());
        std::fprintf(f, "  \"results\": [\n");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row& row = rows[i];
            std::fprintf(
                f,
                "    {\"workload\": \"%s/%s/%s\",\n"
                "     \"cell\": \"%s\", \"channel\": \"%s\", \"arm\": \"%s\", "
                "\"blocks_measured\": %zu, \"expected_leaf_loss\": %.6f,\n"
                "     \"qauth_p01\": %.6f, \"qauth_p05\": %.6f, "
                "\"qauth_p50\": %.6f,\n"
                "     \"qtrial_p01\": %.6f, \"qhat_p01\": %.6f, "
                "\"mean_loss\": %.6f, \"mean_burst\": %.3f,\n"
                "     \"redesigns\": %llu, \"redesigns_post_shift\": %llu, "
                "\"bursty\": %s}%s\n",
                row.cell.c_str(), row.channel.c_str(), row.arm.c_str(),
                row.cell.c_str(), row.channel.c_str(), row.arm.c_str(),
                row.r.blocks_measured, row.expected_leaf_loss, row.r.qauth_p01,
                row.r.qauth_p05, row.r.qauth_p50, row.r.qtrial_p01,
                row.r.qhat_p01, row.r.mean_loss, row.r.mean_burst,
                static_cast<unsigned long long>(row.r.redesigns),
                static_cast<unsigned long long>(row.r.redesigns_post_shift),
                row.r.bursty ? "true" : "false",
                i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        bench::note(std::string("\njson: ") + path);
    } else {
        bench::note(std::string("\njson: FAILED to write ") + path);
    }

    if (!pass) {
        bench::note("RESULT: FAIL — correlated-loss separation bars not met");
        return 1;
    }
    bench::note("RESULT: OK — correlation separated from i.i.d. at equal average; "
                "adaptive diagnosed the regime and held the target");
    return 0;
}

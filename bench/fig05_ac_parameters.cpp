// Figure 5: augmented chain C_{a,b} — q_min against the parameters a and b
// at a fixed block size n = 1000, for packet loss rates 0.1 / 0.3 / 0.5
// (the paper's Eq. 10 recurrence, evaluated by the generic engine).
//
// Expected shape (paper): q_min drops when either a or b DEcreases... more
// precisely, with n fixed, larger a and b shorten the first-level chain's
// depth and raise q_min; small a with large group count is the weak corner.
//
// Each cell builds a 1000-vertex graph and runs the recurrence — the
// expensive part — so the (p, a, b) grid is fanned across the thread pool
// by SweepRunner (index-order results: byte-identical for any --threads).
#include "bench_common.hpp"
#include "core/authprob.hpp"
#include "core/topologies.hpp"
#include "exec/sweep.hpp"

using namespace mcauth;

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "fig05_ac_parameters");
    bench::note("[fig05] Augmented chain C_{a,b}: q_min vs a and b; n = 1000");
    const std::size_t kN = 1000;
    const std::size_t a_values[] = {2, 3, 4, 5, 6, 8};
    const std::size_t b_values[] = {1, 2, 3, 4, 5, 7};
    const double losses[] = {0.1, 0.3, 0.5};

    struct Cell {
        double p;
        std::size_t a, b;
    };
    std::vector<Cell> grid;
    for (double p : losses)
        for (std::size_t a : a_values)
            for (std::size_t b : b_values) grid.push_back({p, a, b});

    const exec::SweepRunner sweep;
    const auto q_min = sweep.map_grid<double>(grid, [&](const Cell& c, std::size_t) {
        const auto dg = make_augmented_chain(kN, c.a, c.b);
        return recurrence_auth_prob(dg, c.p).q_min;
    });

    std::size_t i = 0;
    for (double p : losses) {
        bench::section("q_min at p = " + TablePrinter::num(p, 1));
        std::vector<std::string> header{"a\\b"};
        for (std::size_t b : b_values) header.push_back(std::to_string(b));
        TablePrinter table(header);
        for (std::size_t a : a_values) {
            std::vector<std::string> row{std::to_string(a)};
            for (std::size_t b = 0; b < std::size(b_values); ++b)
                row.push_back(TablePrinter::num(q_min[i++], 4));
            table.add_row(row);
        }
        bench::emit(table, "fig05_p" + TablePrinter::num(p, 1));
    }
    bench::note("\nshape check: q_min grows down each column (larger a = more long-range"
                "\nlinks) and across each row (larger b = shallower first-level chain for"
                "\nfixed n), matching the paper's Figure 5 trend.");
    return 0;
}

// Batched crypto data plane vs the scalar path (DESIGN.md §12).
//
// Every engine pair below runs the SAME workload through the batch path and
// its scalar counterpart and requires byte-identical output before any
// timing is reported — a fast wrong answer exits 1:
//
//   * hash_many_512B        Sha256x8::hash_many over 512-byte messages,
//                           forced-scalar vs 8-way AVX2 (the headline: the
//                           8-way kernel must clear 3x on AVX2 hardware)
//   * tree_sender_n64       Wong-Lam sender block build (batch leaf hashing
//                           + arena staging) with the multi-buffer hasher
//                           on vs forced scalar
//   * tesla_burst           TeslaSender::make_packets, one interval group
//                           at a time through the multi-buffer HMAC
//   * codec_encode_512B     AuthPacket::encode (fresh vector per packet)
//                           vs encode_into a recycled PacketArena
//   * codec_decode_512B     owning AuthPacket::decode vs the zero-copy
//                           PacketView::decode
//   * signeach_verify_rsa64 per-packet RSA-512 verification vs the
//                           block-granular screening batch (one modexp per
//                           block when all signatures are genuine)
//
// Results land in bench_out/BENCH_dataplane.json in the schema-v2 envelope
// (manifest + per-entry seconds_repeats) gated by tools/bench_compare; each
// entry also carries cycles/item from the perf-counter set when the kernel
// grants access. Extra flags beyond the shared surface:
//
//   --batch=0|1   run the batch engines (default 1; 0 = scalar arms only)
//   --arena=0|1   run the arena/zero-copy codec engines (default 1)
//   --smoke=0|1   shrink workload sizes for CI smoke runs (default 0)
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "auth/sign_each_scheme.hpp"
#include "auth/tesla_scheme.hpp"
#include "auth/tree_scheme.hpp"
#include "bench_common.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha256_batch.hpp"
#include "crypto/signature.hpp"
#include "util/rng.hpp"

using namespace mcauth;

namespace {

double now_seconds() {
    using Clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
}

struct Record {
    std::string workload;
    std::string engine;
    std::size_t items = 0;              // per-run item count (the "trials")
    double seconds = 0;                 // min over repeats
    std::vector<double> seconds_repeats;
    double cycles_per_item = -1;        // best repeat; -1 when unavailable
};

// Time `body` (which processes `items` items) `repeats` times, keeping the
// best wall time and its cycles/item.
template <typename Body>
Record measure(bench::BenchMain& bm, std::string workload, std::string engine,
               std::size_t items, std::size_t repeats, Body&& body) {
    Record rec{std::move(workload), std::move(engine), items, 0.0, {}, -1};
    for (std::size_t rep = 0; rep < repeats; ++rep) {
        obs::PerfReading reading;
        const double t0 = now_seconds();
        {
            const obs::PerfRegion region(bm.perf(), &reading);
            body();
        }
        const double dt = now_seconds() - t0;
        rec.seconds_repeats.push_back(dt);
        if (rep == 0 || dt < rec.seconds) {
            rec.seconds = dt;
            rec.cycles_per_item =
                reading.cycles >= 0 && items > 0
                    ? static_cast<double>(reading.cycles) / static_cast<double>(items)
                    : -1;
        }
    }
    return rec;
}

bool report_identity(const char* what, bool ok) {
    if (!ok) bench::note(std::string("IDENTITY VIOLATION: ") + what);
    return ok;
}

std::vector<std::vector<std::uint8_t>> make_payloads(Rng& rng, std::size_t n,
                                                     std::size_t bytes) {
    std::vector<std::vector<std::uint8_t>> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(rng.bytes(bytes));
    return out;
}

// Run `body` with the multi-buffer hasher forced to the scalar path when
// `scalar` is set, restoring the previous mode afterwards.
template <typename Body>
void with_forced_scalar(bool scalar, Body&& body) {
    const bool prev = Sha256x8::set_forced_scalar(scalar);
    body();
    Sha256x8::set_forced_scalar(prev);
}

// A representative wire packet: 512-byte payload plus two 16-byte hash refs
// and a MAC, roughly an EMSS data packet.
AuthPacket sample_packet(Rng& rng, std::uint32_t index) {
    AuthPacket pkt;
    pkt.block_id = 7;
    pkt.index = index;
    pkt.block_size = 64;
    pkt.kind = PacketKind::kData;
    pkt.payload = rng.bytes(512);
    pkt.hashes.push_back({index + 1, rng.bytes(16)});
    pkt.hashes.push_back({index + 3, rng.bytes(16)});
    pkt.mac = rng.bytes(16);
    return pkt;
}

}  // namespace

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "perf_dataplane", 1,
                        {"batch", "arena", "smoke"});
    const bool run_batch = bm.args().get_bool("batch", true);
    const bool run_arena = bm.args().get_bool("arena", true);
    const bool smoke = bm.args().get_bool("smoke", false);
    const std::size_t repeats = std::max<std::size_t>(smoke ? 2 : 3, bm.repeat());

    bench::note("[perf] Batched crypto data plane vs scalar (DESIGN.md §12)");
    bench::note(std::string("multi-buffer SHA-256 dispatch: ") +
                (Sha256x8::uses_avx2() ? "avx2 x8" : "scalar fallback"));

    std::vector<Record> records;
    bool identical = true;
    struct Speedup {
        std::string workload;
        double factor;
    };
    std::vector<Speedup> speedups;

    const auto push_pair = [&](Record scalar_rec, Record batch_rec, bool enabled) {
        const double s_rate = scalar_rec.seconds > 0
                                  ? static_cast<double>(scalar_rec.items) / scalar_rec.seconds
                                  : 0;
        TablePrinter table({"engine", "items", "seconds", "items/sec", "cycles/item",
                            "vs scalar"});
        const auto add = [&](const Record& r) {
            const double rate =
                r.seconds > 0 ? static_cast<double>(r.items) / r.seconds : 0;
            table.add_row({r.engine, std::to_string(r.items),
                           TablePrinter::num(r.seconds, 4), TablePrinter::num(rate, 0),
                           r.cycles_per_item >= 0 ? TablePrinter::num(r.cycles_per_item, 1)
                                                  : "n/a",
                           TablePrinter::num(s_rate > 0 ? rate / (s_rate) : 0, 2)});
        };
        add(scalar_rec);
        double factor = 0;
        if (enabled) {
            const double b_rate = batch_rec.seconds > 0
                                      ? static_cast<double>(batch_rec.items) / batch_rec.seconds
                                      : 0;
            factor = s_rate > 0 ? b_rate / s_rate : 0;
            add(batch_rec);
        }
        bench::emit(table, "perf_dataplane_" + scalar_rec.workload);
        speedups.push_back({scalar_rec.workload, factor});
        bench::note("speedup: " + TablePrinter::num(factor, 2) + "x");
        records.push_back(std::move(scalar_rec));
        if (enabled) records.push_back(std::move(batch_rec));
    };

    // ---------------------------------------------------- hash_many_512B
    {
        bench::section("hash_many_512B");
        const std::size_t n_msgs = smoke ? 512 : 8192;
        Rng rng(bm.seed());
        std::vector<std::vector<std::uint8_t>> msgs = make_payloads(rng, n_msgs, 512);
        std::vector<std::span<const std::uint8_t>> spans(msgs.begin(), msgs.end());
        std::vector<Digest256> out_scalar(n_msgs);
        std::vector<Digest256> out_batch(n_msgs);

        Record scalar_rec = measure(bm, "hash_many_512B", "scalar", n_msgs, repeats, [&] {
            with_forced_scalar(true,
                               [&] { Sha256x8::hash_many(spans, out_scalar.data()); });
        });
        Record batch_rec;
        if (run_batch) {
            batch_rec = measure(bm, "hash_many_512B", "batch8", n_msgs, repeats, [&] {
                with_forced_scalar(false,
                                   [&] { Sha256x8::hash_many(spans, out_batch.data()); });
            });
            identical &= report_identity("hash_many_512B digests", out_scalar == out_batch);
        }
        push_pair(std::move(scalar_rec), std::move(batch_rec), run_batch);
    }

    // ---------------------------------------------------- tree_sender_n64
    {
        bench::section("tree_sender_n64");
        const std::size_t n = 64;
        const std::size_t blocks = smoke ? 4 : 64;
        Rng rng(bm.seed() + 1);
        HmacSigner signer(rng, 64);  // cheap signer: isolate hashing + staging
        TreeSender sender(TreeSchemeConfig{.block_size = n, .hash_bytes = 16}, signer);
        const auto data = make_payloads(rng, n, 512);

        std::vector<AuthPacket> first_scalar, first_batch;
        Record scalar_rec =
            measure(bm, "tree_sender_n64", "scalar", blocks * n, repeats, [&] {
                with_forced_scalar(true, [&] {
                    for (std::size_t b = 0; b < blocks; ++b)
                        first_scalar = sender.make_block(static_cast<std::uint32_t>(b), data);
                });
            });
        Record batch_rec;
        if (run_batch) {
            batch_rec =
                measure(bm, "tree_sender_n64", "batch8", blocks * n, repeats, [&] {
                    with_forced_scalar(false, [&] {
                        for (std::size_t b = 0; b < blocks; ++b)
                            first_batch =
                                sender.make_block(static_cast<std::uint32_t>(b), data);
                    });
                });
            bool same = first_scalar.size() == first_batch.size();
            for (std::size_t i = 0; same && i < first_scalar.size(); ++i)
                same = first_scalar[i].encode() == first_batch[i].encode();
            identical &= report_identity("tree_sender_n64 wire bytes", same);
        }
        push_pair(std::move(scalar_rec), std::move(batch_rec), run_batch);
    }

    // -------------------------------------------------------- tesla_burst
    {
        bench::section("tesla_burst");
        const std::size_t n_pkts = smoke ? 64 : 512;
        TeslaConfig config;
        config.interval_duration = 0.1;
        config.chain_length = 1 << 14;
        Rng rng(bm.seed() + 2);
        HmacSigner signer(rng, 64);
        Rng chain_rng_a(bm.seed() + 3);
        Rng chain_rng_b(bm.seed() + 3);
        TeslaSender scalar_sender(config, signer, chain_rng_a, 0.0);
        TeslaSender batch_sender(config, signer, chain_rng_b, 0.0);
        auto data = make_payloads(rng, n_pkts, 512);
        std::vector<double> times(n_pkts);
        for (std::size_t i = 0; i < n_pkts; ++i)
            times[i] = 0.01 * static_cast<double>(i);  // ~10 packets per interval

        std::vector<AuthPacket> out_scalar, out_batch;
        Record scalar_rec = measure(bm, "tesla_burst", "scalar", n_pkts, repeats, [&] {
            with_forced_scalar(true,
                               [&] { out_scalar = scalar_sender.make_packets(data, times); });
        });
        Record batch_rec;
        if (run_batch) {
            batch_rec = measure(bm, "tesla_burst", "batch8", n_pkts, repeats, [&] {
                with_forced_scalar(
                    false, [&] { out_batch = batch_sender.make_packets(data, times); });
            });
            // Both senders' index counters advance in lockstep (one call per
            // repeat each), so the full wire image must match.
            bool same = out_scalar.size() == out_batch.size();
            for (std::size_t i = 0; same && i < out_scalar.size(); ++i)
                same = out_scalar[i].encode() == out_batch[i].encode();
            identical &= report_identity("tesla_burst wire bytes", same);
        }
        push_pair(std::move(scalar_rec), std::move(batch_rec), run_batch);
    }

    // ---------------------------------------------------- codec_encode_512B
    {
        bench::section("codec_encode_512B");
        const std::size_t n_pkts = smoke ? 256 : 4096;
        Rng rng(bm.seed() + 4);
        std::vector<AuthPacket> pkts;
        for (std::size_t i = 0; i < n_pkts; ++i)
            pkts.push_back(sample_packet(rng, static_cast<std::uint32_t>(i)));

        std::size_t vec_bytes = 0, arena_bytes = 0;
        Record scalar_rec =
            measure(bm, "codec_encode_512B", "vector", n_pkts, repeats, [&] {
                vec_bytes = 0;
                for (const AuthPacket& p : pkts) vec_bytes += p.encode().size();
            });
        PacketArena arena;
        Record batch_rec;
        if (run_arena) {
            batch_rec = measure(bm, "codec_encode_512B", "arena", n_pkts, repeats, [&] {
                arena.reset();
                arena_bytes = 0;
                for (const AuthPacket& p : pkts) arena_bytes += p.encode_into(arena).size();
            });
            bool same = vec_bytes == arena_bytes;
            PacketArena check;
            const auto via_arena = pkts[0].encode_into(check);
            const auto via_vector = pkts[0].encode();
            same = same && std::equal(via_arena.begin(), via_arena.end(),
                                      via_vector.begin(), via_vector.end());
            identical &= report_identity("codec_encode_512B bytes", same);
        }
        push_pair(std::move(scalar_rec), std::move(batch_rec), run_arena);
    }

    // ---------------------------------------------------- codec_decode_512B
    {
        bench::section("codec_decode_512B");
        const std::size_t n_pkts = smoke ? 256 : 4096;
        Rng rng(bm.seed() + 5);
        std::vector<std::vector<std::uint8_t>> wires;
        for (std::size_t i = 0; i < n_pkts; ++i)
            wires.push_back(sample_packet(rng, static_cast<std::uint32_t>(i)).encode());

        std::size_t own_payload = 0, view_payload = 0;
        Record scalar_rec =
            measure(bm, "codec_decode_512B", "owning", n_pkts, repeats, [&] {
                own_payload = 0;
                for (const auto& w : wires) {
                    const auto pkt = AuthPacket::decode(w);
                    own_payload += pkt ? pkt->payload.size() : 0;
                }
            });
        PacketArena arena;
        Record batch_rec;
        if (run_arena) {
            batch_rec = measure(bm, "codec_decode_512B", "view", n_pkts, repeats, [&] {
                view_payload = 0;
                arena.reset();
                for (const auto& w : wires) {
                    const auto view = PacketView::decode(w, arena);
                    view_payload += view ? view->payload.size() : 0;
                }
            });
            bool same = own_payload == view_payload && own_payload > 0;
            PacketArena check;
            const auto view = PacketView::decode(wires[0], check);
            const auto owned = AuthPacket::decode(wires[0]);
            same = same && view.has_value() && owned.has_value() &&
                   view->to_packet().encode() == owned->encode();
            identical &= report_identity("codec_decode_512B round-trip", same);
        }
        push_pair(std::move(scalar_rec), std::move(batch_rec), run_arena);
    }

    // ---------------------------------------------- signeach_verify_rsa64
    {
        bench::section("signeach_verify_rsa64");
        const std::size_t n_pkts = smoke ? 16 : 64;
        Rng rng(bm.seed() + 6);
        RsaSigner signer(rng, 512);
        SignEachSender sender(signer);
        SignEachReceiver receiver(signer.make_verifier());
        std::vector<AuthPacket> pkts;
        for (std::size_t i = 0; i < n_pkts; ++i)
            pkts.push_back(sender.make_packet(0, static_cast<std::uint32_t>(i),
                                              rng.bytes(512)));

        std::vector<VerifyEvent> ev_single, ev_batch;
        Record scalar_rec =
            measure(bm, "signeach_verify_rsa64", "per_packet", n_pkts, repeats, [&] {
                ev_single.clear();
                for (const AuthPacket& p : pkts) ev_single.push_back(receiver.on_packet(p));
            });
        Record batch_rec;
        if (run_batch) {
            batch_rec =
                measure(bm, "signeach_verify_rsa64", "batch", n_pkts, repeats,
                        [&] { ev_batch = receiver.on_block(pkts); });
            bool same = ev_single.size() == ev_batch.size();
            for (std::size_t i = 0; same && i < ev_single.size(); ++i)
                same = ev_single[i].status == ev_batch[i].status &&
                       ev_single[i].status == VerifyStatus::kAuthenticated;
            identical &= report_identity("signeach_verify_rsa64 verdicts", same);
        }
        push_pair(std::move(scalar_rec), std::move(batch_rec), run_batch);
    }

    // ------------------------------------------------------------- output
    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    const char* path = "bench_out/BENCH_dataplane.json";
    if (std::FILE* f = std::fopen(path, "w")) {
        std::fprintf(f, "{\n  \"schema_version\": %d,\n",
                     obs::RunManifest::kSchemaVersion);
        std::fprintf(f, "  \"bench\": \"perf_dataplane\",\n");
        std::fprintf(f, "  \"seed\": %llu,\n",
                     static_cast<unsigned long long>(bm.seed()));
        std::fprintf(f, "  \"repeats\": %zu,\n", repeats);
        std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
        std::fprintf(f, "  \"avx2_dispatch\": %s,\n",
                     Sha256x8::uses_avx2() ? "true" : "false");
        std::fprintf(f, "  \"identity_ok\": %s,\n", identical ? "true" : "false");
        std::fprintf(f, "  \"manifest\": %s,\n", bm.manifest().to_json(2).c_str());
        std::fprintf(f, "  \"speedups\": {\n");
        for (std::size_t i = 0; i < speedups.size(); ++i)
            std::fprintf(f, "    \"%s\": %.2f%s\n", speedups[i].workload.c_str(),
                         speedups[i].factor, i + 1 < speedups.size() ? "," : "");
        std::fprintf(f, "  },\n");
        std::fprintf(f, "  \"results\": [\n");
        for (std::size_t i = 0; i < records.size(); ++i) {
            const Record& r = records[i];
            const double rate =
                r.seconds > 0 ? static_cast<double>(r.items) / r.seconds : 0;
            std::fprintf(f,
                         "    {\"workload\": \"%s\", \"engine\": \"%s\", "
                         "\"threads\": 1, \"trials\": %zu, \"seconds\": %.6f,\n"
                         "     \"seconds_repeats\": [",
                         r.workload.c_str(), r.engine.c_str(), r.items, r.seconds);
            for (std::size_t s = 0; s < r.seconds_repeats.size(); ++s)
                std::fprintf(f, "%s%.6f", s ? ", " : "", r.seconds_repeats[s]);
            std::fprintf(f, "],\n     \"trials_per_sec\": %.1f", rate);
            if (r.cycles_per_item >= 0)
                std::fprintf(f, ", \"cycles_per_item\": %.1f", r.cycles_per_item);
            std::fprintf(f, "}%s\n", i + 1 < records.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        bench::note(std::string("\njson: ") + path);
    } else {
        bench::note(std::string("\njson: FAILED to write ") + path);
    }

    if (!identical) {
        bench::note("RESULT: FAIL — batch and scalar paths disagreed");
        return 1;
    }
    bench::note("RESULT: OK — every batch path byte-identical to its scalar twin");
    return 0;
}

// Figure 10: overhead and delay of the schemes, side by side. Two sources:
//
//   analytical - read off the dependence-graph exactly as Eq. 2-5 prescribe
//                (l_hash = 16 B truncated hash, l_sign = 128 B = RSA-1024);
//   measured   - actual wire bytes and actual receiver behaviour of the
//                real codecs, driven over a lossless channel, signing with
//                our own RSA-1024.
//
// Expected shape (paper): hash-chained schemes (EMSS/AC) carry ~2 hashes of
// overhead per packet and pay block-length receiver delay + buffering;
// Rohatgi is as cheap but with zero delay (and no loss tolerance); the tree
// pays log(n) hashes PLUS a full signature in every packet with zero delay;
// TESLA sits between (MAC + disclosed key per packet, T_disclose delay);
// sign-each pays a full signature everywhere.
#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/topologies.hpp"
#include "sim/stream_sim.hpp"

using namespace mcauth;

namespace {

constexpr std::size_t kBlock = 128;

struct Row {
    std::string name;
    double analytic_hashes = 0.0;
    double analytic_bytes = 0.0;
    double analytic_delay = 0.0;
    std::size_t hash_buffer = 0;
    std::size_t message_buffer = 0;
    double measured_bytes = 0.0;
    double measured_delay = 0.0;
    std::size_t measured_buffer = 0;
};

Row graph_row(const DependenceGraph& dg, const SchemeParams& params) {
    Row row;
    row.name = dg.scheme_name();
    const GraphMetrics m = compute_metrics(dg, params);
    row.analytic_hashes = m.hashes_per_packet;
    row.analytic_bytes = m.overhead_bytes_per_packet;
    row.analytic_delay = m.max_receiver_delay;
    row.hash_buffer = m.hash_buffer_span;
    row.message_buffer = m.message_buffer_span;
    return row;
}

void add(TablePrinter& table, const Row& row) {
    table.add_row({row.name, TablePrinter::num(row.analytic_hashes, 2),
                   TablePrinter::num(row.analytic_bytes, 1),
                   TablePrinter::num(row.analytic_delay, 3),
                   std::to_string(row.hash_buffer), std::to_string(row.message_buffer),
                   TablePrinter::num(row.measured_bytes, 1),
                   TablePrinter::num(row.measured_delay, 3),
                   std::to_string(row.measured_buffer)});
}

}  // namespace

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "fig10_overhead_delay");
    bench::note("[fig10] Overhead and delay; n = 128, l_hash = 16 B, l_sign = RSA-1024");
    SchemeParams params;
    params.hash_bytes = 16;
    params.signature_bytes = 128;
    params.t_transmit = 0.01;

    Rng rng(42);
    bench::note("generating RSA-1024 key pair (own bignum)...");
    RsaSigner signer(rng, 1024);

    SimConfig sim;
    sim.blocks = 2;
    sim.payload_bytes = 256;
    sim.t_transmit = params.t_transmit;
    sim.sign_copies = 1;  // lossless channel: one copy suffices
    sim.seed = 7;

    auto lossless = [] {
        return Channel(std::make_unique<BernoulliLoss>(0.0),
                       std::make_unique<ConstantDelay>(0.02));
    };

    TablePrinter table({"scheme", "eq2 hashes/pkt", "eq3 B/pkt", "eq4 delay(s)",
                        "eq5 hashbuf", "eq5 msgbuf", "meas B/pkt", "meas delay(s)",
                        "meas maxbuf"});

    {
        Row row = graph_row(make_rohatgi(kBlock), params);
        Channel ch = lossless();
        const auto stats = run_hash_chain_sim(rohatgi_config(kBlock), signer, ch, sim);
        row.measured_bytes = stats.overhead_bytes_per_packet;
        row.measured_delay = stats.receiver_delay.max();
        row.measured_buffer = stats.max_buffered_packets;
        add(table, row);
    }
    {
        Row row = graph_row(make_emss(kBlock, 2, 1), params);
        Channel ch = lossless();
        const auto stats = run_hash_chain_sim(emss_config(kBlock, 2, 1), signer, ch, sim);
        row.measured_bytes = stats.overhead_bytes_per_packet;
        row.measured_delay = stats.receiver_delay.max();
        row.measured_buffer = stats.max_buffered_packets;
        add(table, row);
    }
    {
        Row row = graph_row(make_augmented_chain(kBlock, 3, 3), params);
        Channel ch = lossless();
        const auto stats =
            run_hash_chain_sim(augmented_chain_config(kBlock, 3, 3), signer, ch, sim);
        row.measured_bytes = stats.overhead_bytes_per_packet;
        row.measured_delay = stats.receiver_delay.max();
        row.measured_buffer = stats.max_buffered_packets;
        add(table, row);
    }
    {
        // Wong-Lam: the graph star misstates real overhead (log n hashes +
        // signature ride in EVERY packet); analytic B/pkt below uses the
        // closed form instead of Eq. 3.
        Row row = graph_row(make_auth_tree(kBlock), params);
        row.analytic_hashes = 7.0;  // log2(128) full-size path entries
        row.analytic_bytes = 7.0 * 32.0 + params.signature_bytes;
        Channel ch = lossless();
        const auto stats = run_tree_sim(TreeSchemeConfig{.block_size = kBlock, .hash_bytes = 16},
                                        signer, ch, sim);
        row.name = "auth-tree";
        row.measured_bytes = stats.overhead_bytes_per_packet;
        row.measured_delay = stats.receiver_delay.max();
        row.measured_buffer = stats.max_buffered_packets;
        add(table, row);
    }
    {
        Row row;
        row.name = "tesla(lag=2)";
        TeslaConfig tesla;
        tesla.interval_duration = 0.05;
        tesla.disclosure_lag = 2;
        tesla.chain_length = 2048;
        tesla.mac_bytes = 16;
        // Analytic: MAC + disclosed 32 B chain key per packet; delay =
        // T_disclose; buffer = rate * T_disclose packets.
        row.analytic_hashes = 0.0;
        row.analytic_bytes = 16.0 + 32.0;
        row.analytic_delay = tesla.t_disclose();
        row.message_buffer =
            static_cast<std::size_t>(tesla.t_disclose() / params.t_transmit);
        Channel ch = lossless();
        const auto stats = run_tesla_sim(tesla, signer, ch, sim, /*skew=*/0.005);
        row.measured_bytes = stats.overhead_bytes_per_packet;
        row.measured_delay = stats.receiver_delay.max();
        row.measured_buffer = stats.max_buffered_packets;
        add(table, row);
    }
    {
        Row row;
        row.name = "sign-each";
        row.analytic_bytes = params.signature_bytes;
        Channel ch = lossless();
        const auto stats = run_sign_each_sim(kBlock, signer, ch, sim);
        row.measured_bytes = stats.overhead_bytes_per_packet;
        row.measured_delay = stats.receiver_delay.max();
        row.measured_buffer = stats.max_buffered_packets;
        add(table, row);
    }

    bench::emit(table, "fig10");
    bench::note("\nshape check: rohatgi/emss/ac cluster near ~2 hashes/pkt with the sig"
                "\namortized; tree and sign-each pay a full signature per packet; tesla's"
                "\noverhead is key+MAC and its delay tracks T_disclose; only sign-first"
                "\nschemes (rohatgi, tree, sign-each) have zero delay and buffers.");
    return 0;
}

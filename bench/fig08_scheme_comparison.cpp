// Figure 8: q_min of the five schemes — Rohatgi, authentication tree,
// TESLA, EMSS E_{2,1}, AC C_{3,3} — against (a) the packet loss rate p at
// n = 1000, and (b) the block size n at p = 0.1.
//
// Expected shape (paper): Rohatgi collapses immediately; the tree is pinned
// at 1 regardless of loss; EMSS and AC track each other closely; TESLA
// (with T_disclose comfortably above mu and sigma) degrades only as (1-p)
// and overtakes EMSS/AC at high loss, while EMSS/AC can edge it out at
// small p where TESLA pays its xi < 1 delay tax.
#include "bench_common.hpp"
#include "core/authprob.hpp"
#include "core/tesla.hpp"
#include "core/topologies.hpp"

using namespace mcauth;

namespace {

double tesla_q_min(std::size_t n, double p) {
    TeslaParams params;
    params.n = n;
    params.t_disclose = 1.0;
    params.mu = 0.2;
    params.sigma = 0.1;
    params.p = p;
    return analyze_tesla(params).q_min;
}

}  // namespace

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "fig08_scheme_comparison");
    bench::note("[fig08] Scheme comparison (TESLA: T=1s, mu=0.2s, sigma=0.1s)");

    bench::section("(a) q_min vs packet loss rate p, n = 1000");
    {
        TablePrinter table({"p", "rohatgi", "auth-tree", "tesla", "emss(2,1)", "ac(3,3)"});
        const std::size_t n = 1000;
        const auto rohatgi = make_rohatgi(n);
        const auto tree = make_auth_tree(n);
        const auto emss = make_emss(n, 2, 1);
        const auto ac = make_augmented_chain(n, 3, 3);
        for (double p : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
            table.add_row({TablePrinter::num(p, 2),
                           TablePrinter::num(recurrence_auth_prob(rohatgi, p).q_min, 4),
                           TablePrinter::num(recurrence_auth_prob(tree, p).q_min, 4),
                           TablePrinter::num(tesla_q_min(n, p), 4),
                           TablePrinter::num(recurrence_auth_prob(emss, p).q_min, 4),
                           TablePrinter::num(recurrence_auth_prob(ac, p).q_min, 4)});
        }
        bench::emit(table, "fig08a_vs_p");
    }

    bench::section("(b) q_min vs block size n, p = 0.1");
    {
        TablePrinter table({"n", "rohatgi", "auth-tree", "tesla", "emss(2,1)", "ac(3,3)"});
        const double p = 0.1;
        for (std::size_t n : {50u, 100u, 200u, 500u, 1000u, 2000u}) {
            table.add_row(
                {std::to_string(n),
                 TablePrinter::num(recurrence_auth_prob(make_rohatgi(n), p).q_min, 4),
                 TablePrinter::num(recurrence_auth_prob(make_auth_tree(n), p).q_min, 4),
                 TablePrinter::num(tesla_q_min(n, p), 4),
                 TablePrinter::num(recurrence_auth_prob(make_emss(n, 2, 1), p).q_min, 4),
                 TablePrinter::num(
                     recurrence_auth_prob(make_augmented_chain(n, 3, 3), p).q_min, 4)});
        }
        bench::emit(table, "fig08b_vs_n");
    }
    bench::note("\nshape check: rohatgi column collapses to ~0; tree column is all 1.0000;"
                "\nemss and ac columns nearly coincide; tesla crosses above them as p grows"
                "\n(crossover near where (1-p)*xi beats the chained schemes' burst failure).");
    return 0;
}

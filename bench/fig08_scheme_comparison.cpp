// Figure 8: q_min of the five schemes — Rohatgi, authentication tree,
// TESLA, EMSS E_{2,1}, AC C_{3,3} — against (a) the packet loss rate p at
// n = 1000, and (b) the block size n at p = 0.1.
//
// Expected shape (paper): Rohatgi collapses immediately; the tree is pinned
// at 1 regardless of loss; EMSS and AC track each other closely; TESLA
// (with T_disclose comfortably above mu and sigma) degrades only as (1-p)
// and overtakes EMSS/AC at high loss, while EMSS/AC can edge it out at
// small p where TESLA pays its xi < 1 delay tax.
//
// Every (scheme, axis-point) cell — graph construction plus recurrence —
// is fanned across the thread pool by SweepRunner (index-order results:
// byte-identical for any --threads). The schemes come from the
// SchemeFactory predictor registry, so a scheme registered out-of-tree
// shows up here by adding one SchemeSpec to kColumns.
#include "auth/scheme.hpp"
#include "bench_common.hpp"
#include "exec/sweep.hpp"

using namespace mcauth;

namespace {

struct Column {
    const char* header;
    SchemeSpec spec;
};

std::vector<Column> make_columns() {
    std::vector<Column> cols;
    cols.push_back({"rohatgi", {}});
    cols.back().spec.kind = "rohatgi";
    cols.push_back({"auth-tree", {}});
    cols.back().spec.kind = "tree";
    cols.push_back({"tesla", {}});
    cols.back().spec.kind = "tesla";
    cols.back().spec.params = {{"t_disclose", 1.0}, {"mu", 0.2}, {"sigma", 0.1}};
    cols.push_back({"emss(2,1)", {}});
    cols.back().spec.kind = "emss";
    cols.back().spec.params = {{"m", 2}, {"d", 1}};
    cols.push_back({"ac(3,3)", {}});
    cols.back().spec.kind = "ac";
    cols.back().spec.params = {{"a", 3}, {"b", 3}};
    return cols;
}

double scheme_q_min(const SchemeSpec& spec, std::size_t n, double p) {
    return SchemeFactory::instance().predicted_q_min(spec, n, p);
}

}  // namespace

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "fig08_scheme_comparison");
    bench::note("[fig08] Scheme comparison (TESLA: T=1s, mu=0.2s, sigma=0.1s)");
    const exec::SweepRunner sweep;

    struct Cell {
        const SchemeSpec* spec;
        std::size_t n;
        double p;
    };
    const std::vector<Column> columns = make_columns();
    const auto make_headers = [&](const char* axis) {
        std::vector<std::string> headers{axis};
        for (const Column& c : columns) headers.push_back(c.header);
        return headers;
    };

    bench::section("(a) q_min vs packet loss rate p, n = 1000");
    {
        const double losses[] = {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
        std::vector<Cell> grid;
        for (double p : losses)
            for (const Column& c : columns) grid.push_back({&c.spec, 1000, p});
        const auto q_min = sweep.map_grid<double>(grid, [](const Cell& c, std::size_t) {
            return scheme_q_min(*c.spec, c.n, c.p);
        });

        TablePrinter table(make_headers("p"));
        std::size_t i = 0;
        for (double p : losses) {
            std::vector<std::string> row{TablePrinter::num(p, 2)};
            for (std::size_t s = 0; s < columns.size(); ++s)
                row.push_back(TablePrinter::num(q_min[i++], 4));
            table.add_row(row);
        }
        bench::emit(table, "fig08a_vs_p");
    }

    bench::section("(b) q_min vs block size n, p = 0.1");
    {
        const std::size_t sizes[] = {50, 100, 200, 500, 1000, 2000};
        std::vector<Cell> grid;
        for (std::size_t n : sizes)
            for (const Column& c : columns) grid.push_back({&c.spec, n, 0.1});
        const auto q_min = sweep.map_grid<double>(grid, [](const Cell& c, std::size_t) {
            return scheme_q_min(*c.spec, c.n, c.p);
        });

        TablePrinter table(make_headers("n"));
        std::size_t i = 0;
        for (std::size_t n : sizes) {
            std::vector<std::string> row{std::to_string(n)};
            for (std::size_t s = 0; s < columns.size(); ++s)
                row.push_back(TablePrinter::num(q_min[i++], 4));
            table.add_row(row);
        }
        bench::emit(table, "fig08b_vs_n");
    }
    bench::note("\nshape check: rohatgi column collapses to ~0; tree column is all 1.0000;"
                "\nemss and ac columns nearly coincide; tesla crosses above them as p grows"
                "\n(crossover near where (1-p)*xi beats the chained schemes' burst failure).");
    return 0;
}

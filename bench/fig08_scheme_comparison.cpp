// Figure 8: q_min of the five schemes — Rohatgi, authentication tree,
// TESLA, EMSS E_{2,1}, AC C_{3,3} — against (a) the packet loss rate p at
// n = 1000, and (b) the block size n at p = 0.1.
//
// Expected shape (paper): Rohatgi collapses immediately; the tree is pinned
// at 1 regardless of loss; EMSS and AC track each other closely; TESLA
// (with T_disclose comfortably above mu and sigma) degrades only as (1-p)
// and overtakes EMSS/AC at high loss, while EMSS/AC can edge it out at
// small p where TESLA pays its xi < 1 delay tax.
//
// Every (scheme, axis-point) cell — graph construction plus recurrence —
// is fanned across the thread pool by SweepRunner (index-order results:
// byte-identical for any --threads).
#include "bench_common.hpp"
#include "core/authprob.hpp"
#include "core/tesla.hpp"
#include "core/topologies.hpp"
#include "exec/sweep.hpp"

using namespace mcauth;

namespace {

enum class Scheme { kRohatgi, kTree, kTesla, kEmss21, kAc33 };

constexpr Scheme kSchemes[] = {Scheme::kRohatgi, Scheme::kTree, Scheme::kTesla,
                               Scheme::kEmss21, Scheme::kAc33};

double scheme_q_min(Scheme s, std::size_t n, double p) {
    switch (s) {
        case Scheme::kRohatgi: return recurrence_auth_prob(make_rohatgi(n), p).q_min;
        case Scheme::kTree: return recurrence_auth_prob(make_auth_tree(n), p).q_min;
        case Scheme::kTesla: {
            TeslaParams params;
            params.n = n;
            params.t_disclose = 1.0;
            params.mu = 0.2;
            params.sigma = 0.1;
            params.p = p;
            return analyze_tesla(params).q_min;
        }
        case Scheme::kEmss21: return recurrence_auth_prob(make_emss(n, 2, 1), p).q_min;
        case Scheme::kAc33:
            return recurrence_auth_prob(make_augmented_chain(n, 3, 3), p).q_min;
    }
    return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "fig08_scheme_comparison");
    bench::note("[fig08] Scheme comparison (TESLA: T=1s, mu=0.2s, sigma=0.1s)");
    const exec::SweepRunner sweep;

    struct Cell {
        Scheme scheme;
        std::size_t n;
        double p;
    };

    bench::section("(a) q_min vs packet loss rate p, n = 1000");
    {
        const double losses[] = {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
        std::vector<Cell> grid;
        for (double p : losses)
            for (Scheme s : kSchemes) grid.push_back({s, 1000, p});
        const auto q_min = sweep.map_grid<double>(grid, [](const Cell& c, std::size_t) {
            return scheme_q_min(c.scheme, c.n, c.p);
        });

        TablePrinter table({"p", "rohatgi", "auth-tree", "tesla", "emss(2,1)", "ac(3,3)"});
        std::size_t i = 0;
        for (double p : losses) {
            std::vector<std::string> row{TablePrinter::num(p, 2)};
            for (std::size_t s = 0; s < std::size(kSchemes); ++s)
                row.push_back(TablePrinter::num(q_min[i++], 4));
            table.add_row(row);
        }
        bench::emit(table, "fig08a_vs_p");
    }

    bench::section("(b) q_min vs block size n, p = 0.1");
    {
        const std::size_t sizes[] = {50, 100, 200, 500, 1000, 2000};
        std::vector<Cell> grid;
        for (std::size_t n : sizes)
            for (Scheme s : kSchemes) grid.push_back({s, n, 0.1});
        const auto q_min = sweep.map_grid<double>(grid, [](const Cell& c, std::size_t) {
            return scheme_q_min(c.scheme, c.n, c.p);
        });

        TablePrinter table({"n", "rohatgi", "auth-tree", "tesla", "emss(2,1)", "ac(3,3)"});
        std::size_t i = 0;
        for (std::size_t n : sizes) {
            std::vector<std::string> row{std::to_string(n)};
            for (std::size_t s = 0; s < std::size(kSchemes); ++s)
                row.push_back(TablePrinter::num(q_min[i++], 4));
            table.add_row(row);
        }
        bench::emit(table, "fig08b_vs_n");
    }
    bench::note("\nshape check: rohatgi column collapses to ~0; tree column is all 1.0000;"
                "\nemss and ac columns nearly coincide; tesla crosses above them as p grows"
                "\n(crossover near where (1-p)*xi beats the chained schemes' burst failure).");
    return 0;
}

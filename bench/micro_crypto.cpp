// google-benchmark microbenchmarks: the primitive and codec costs behind
// Fig. 10's computational-overhead discussion. Hash-chained schemes cost
// ~2 hash computations per packet at each end; sign-each costs a full
// signature per packet — these numbers show the gap concretely on this
// machine.
#include <benchmark/benchmark.h>

#include "auth/hash_chain_scheme.hpp"
#include "bench_common.hpp"
#include "auth/tesla_scheme.hpp"
#include "crypto/hmac.hpp"
#include "crypto/merkle.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signature.hpp"
#include "crypto/wots.hpp"
#include "util/rng.hpp"

namespace mcauth {
namespace {

void BM_Sha256(benchmark::State& state) {
    Rng rng(1);
    const auto data = rng.bytes(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(Sha256::hash(data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(256)->Arg(1024)->Arg(8192);

void BM_HmacSha256(benchmark::State& state) {
    Rng rng(2);
    const auto key = rng.bytes(32);
    const auto data = rng.bytes(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(hmac_sha256(key, data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(256)->Arg(1024);

void BM_RsaSign(benchmark::State& state) {
    Rng rng(3);
    const RsaKeyPair key = RsaKeyPair::generate(rng, static_cast<std::size_t>(state.range(0)));
    const auto msg = rng.bytes(256);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rsa_sign(key, msg));
    }
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_RsaVerify(benchmark::State& state) {
    Rng rng(4);
    const RsaKeyPair key = RsaKeyPair::generate(rng, static_cast<std::size_t>(state.range(0)));
    const auto msg = rng.bytes(256);
    const auto sig = rsa_sign(key, msg);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rsa_verify(key.pub, msg, sig));
    }
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_WotsSign(benchmark::State& state) {
    Rng rng(5);
    const auto seed = rng.bytes(32);
    const WotsKey key(seed, 0);
    const Digest256 digest = Sha256::hash("packet");
    for (auto _ : state) {
        benchmark::DoNotOptimize(key.sign(digest));
    }
}
BENCHMARK(BM_WotsSign)->Unit(benchmark::kMicrosecond);

void BM_WotsVerify(benchmark::State& state) {
    Rng rng(6);
    const auto seed = rng.bytes(32);
    const WotsKey key(seed, 0);
    const Digest256 digest = Sha256::hash("packet");
    const auto sig = key.sign(digest);
    for (auto _ : state) {
        benchmark::DoNotOptimize(WotsKey::recover_public_key(sig, digest));
    }
}
BENCHMARK(BM_WotsVerify)->Unit(benchmark::kMicrosecond);

void BM_MerkleBuild(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<Digest256> leaves;
    leaves.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        leaves.push_back(Sha256::hash("leaf" + std::to_string(i)));
    for (auto _ : state) {
        MerkleTree tree(leaves);
        benchmark::DoNotOptimize(tree.root());
    }
}
BENCHMARK(BM_MerkleBuild)->Arg(128)->Arg(1024)->Unit(benchmark::kMicrosecond);

// ------------------------------------------------------- codec throughput

std::vector<std::vector<std::uint8_t>> payloads(Rng& rng, std::size_t n, std::size_t bytes) {
    std::vector<std::vector<std::uint8_t>> out;
    for (std::size_t i = 0; i < n; ++i) out.push_back(rng.bytes(bytes));
    return out;
}

void BM_EmssSenderBlock(benchmark::State& state) {
    Rng rng(7);
    HmacSigner signer(rng, 128);  // signature cost excluded: isolate hashing
    const auto n = static_cast<std::size_t>(state.range(0));
    HashChainSender sender(emss_config(n, 2, 1), signer);
    const auto data = payloads(rng, n, 512);
    std::uint32_t block = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sender.make_block(block++, data));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EmssSenderBlock)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_EmssReceiverBlock(benchmark::State& state) {
    Rng rng(8);
    HmacSigner signer(rng, 128);
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto config = emss_config(n, 2, 1);
    HashChainSender sender(config, signer);
    const auto data = payloads(rng, n, 512);
    std::uint32_t block = 0;
    for (auto _ : state) {
        state.PauseTiming();
        const auto packets = sender.make_block(block, data);
        HashChainReceiver receiver(config, signer.make_verifier());
        state.ResumeTiming();
        std::size_t verdicts = 0;
        for (const auto& pkt : packets) verdicts += receiver.on_packet(pkt).size();
        benchmark::DoNotOptimize(verdicts);
        ++block;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EmssReceiverBlock)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_TeslaPacket(benchmark::State& state) {
    Rng rng(9);
    HmacSigner signer(rng, 128);
    TeslaConfig config;
    config.interval_duration = 1e6;  // everything in interval 1: isolate MAC cost
    config.chain_length = 4;
    TeslaSender sender(config, signer, rng, 0.0);
    const auto payload = rng.bytes(512);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sender.make_packet(payload, 0.5));
    }
}
BENCHMARK(BM_TeslaPacket)->Unit(benchmark::kMicrosecond);

void BM_TeslaKeyChainBuild(benchmark::State& state) {
    Rng rng(10);
    const auto seed = rng.bytes(32);
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        TeslaKeyChain chain(seed, n);
        benchmark::DoNotOptimize(chain.commitment());
    }
}
BENCHMARK(BM_TeslaKeyChainBuild)->Arg(1024)->Arg(8192)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mcauth

// Custom main (instead of benchmark_main) so the uniform mcauth flag surface
// (--metrics-out/--trace-out/--obs, see bench_common.hpp) works here too;
// benchmark::Initialize strips its own flags and leaves ours alone.
int main(int argc, char** argv) {
    mcauth::bench::BenchMain bm(argc, argv, "micro_crypto");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

// google-benchmark microbenchmarks: the primitive and codec costs behind
// Fig. 10's computational-overhead discussion. Hash-chained schemes cost
// ~2 hash computations per packet at each end; sign-each costs a full
// signature per packet — these numbers show the gap concretely on this
// machine.
//
// Hash benchmarks report a cycles_per_byte counter from the perf-counter
// set (DESIGN.md §9; absent when perf_event_open is denied), and every run
// is exported to bench_out/BENCH_micro_crypto.json in the schema-v2
// envelope (manifest + results) so bench_compare can diff microbenchmark
// trajectories the same way it gates the macro benches.
#include <benchmark/benchmark.h>

#include "auth/hash_chain_scheme.hpp"
#include "bench_common.hpp"
#include "auth/tesla_scheme.hpp"
#include "crypto/hmac.hpp"
#include "crypto/merkle.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha256_batch.hpp"
#include "crypto/signature.hpp"
#include "crypto/wots.hpp"
#include "util/rng.hpp"

namespace mcauth {
namespace {

// Shared lazily-opened hardware-counter set for the cycles_per_byte
// counters (benchmarks run sequentially, so one set suffices).
obs::PerfCounterSet& perf_counters() {
    static obs::PerfCounterSet set;
    return set;
}

// Attach cycles/byte to a finished timing loop when the kernel delivered a
// cycle count. `bytes` is the total processed inside `reading`'s region.
void set_cycles_per_byte(benchmark::State& state, const obs::PerfReading& reading,
                         std::int64_t bytes) {
    if (reading.cycles >= 0 && bytes > 0)
        state.counters["cycles_per_byte"] =
            static_cast<double>(reading.cycles) / static_cast<double>(bytes);
}

void BM_Sha256(benchmark::State& state) {
    Rng rng(1);
    const auto data = rng.bytes(static_cast<std::size_t>(state.range(0)));
    obs::PerfReading reading;
    {
        const obs::PerfRegion region(perf_counters(), &reading);
        for (auto _ : state) {
            benchmark::DoNotOptimize(Sha256::hash(data));
        }
    }
    const auto bytes = static_cast<std::int64_t>(state.iterations()) * state.range(0);
    state.SetBytesProcessed(bytes);
    set_cycles_per_byte(state, reading, bytes);
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(256)->Arg(1024)->Arg(8192);

void BM_Sha256x8(benchmark::State& state) {
    // The 8-way data plane at full occupancy: 8 equal-length messages per
    // hash_many call. Compare bytes/sec against BM_Sha256 at the same size
    // for the multi-buffer speedup on this machine.
    Rng rng(1);
    const auto len = static_cast<std::size_t>(state.range(0));
    std::vector<std::vector<std::uint8_t>> msgs;
    for (std::size_t i = 0; i < Sha256x8::kLanes; ++i) msgs.push_back(rng.bytes(len));
    const std::vector<std::span<const std::uint8_t>> spans(msgs.begin(), msgs.end());
    std::array<Digest256, Sha256x8::kLanes> out;
    obs::PerfReading reading;
    {
        const obs::PerfRegion region(perf_counters(), &reading);
        for (auto _ : state) {
            Sha256x8::hash_many(spans, out.data());
            benchmark::DoNotOptimize(out);
        }
    }
    const auto bytes = static_cast<std::int64_t>(state.iterations()) * state.range(0) *
                       static_cast<std::int64_t>(Sha256x8::kLanes);
    state.SetBytesProcessed(bytes);
    set_cycles_per_byte(state, reading, bytes);
}
BENCHMARK(BM_Sha256x8)->Arg(64)->Arg(256)->Arg(1024)->Arg(8192);

void BM_HmacSha256(benchmark::State& state) {
    Rng rng(2);
    const auto key = rng.bytes(32);
    const auto data = rng.bytes(static_cast<std::size_t>(state.range(0)));
    obs::PerfReading reading;
    {
        const obs::PerfRegion region(perf_counters(), &reading);
        for (auto _ : state) {
            benchmark::DoNotOptimize(hmac_sha256(key, data));
        }
    }
    const auto bytes = static_cast<std::int64_t>(state.iterations()) * state.range(0);
    state.SetBytesProcessed(bytes);
    set_cycles_per_byte(state, reading, bytes);
}
BENCHMARK(BM_HmacSha256)->Arg(256)->Arg(1024);

void BM_HmacSha256x8(benchmark::State& state) {
    // Batch HMAC with a precomputed ipad/opad key schedule: the TESLA
    // sender's per-interval fast path.
    Rng rng(2);
    const auto key = rng.bytes(32);
    const HmacSha256Key prepared(key);
    const auto len = static_cast<std::size_t>(state.range(0));
    std::vector<std::vector<std::uint8_t>> msgs;
    std::vector<HashInput> inputs;
    for (std::size_t i = 0; i < Sha256x8::kLanes; ++i) {
        msgs.push_back(rng.bytes(len));
        HashInput in;
        in.add(msgs.back());
        inputs.push_back(in);
    }
    std::array<Digest256, Sha256x8::kLanes> out;
    obs::PerfReading reading;
    {
        const obs::PerfRegion region(perf_counters(), &reading);
        for (auto _ : state) {
            hmac_sha256_many(prepared, inputs.data(), inputs.size(), out.data());
            benchmark::DoNotOptimize(out);
        }
    }
    const auto bytes = static_cast<std::int64_t>(state.iterations()) * state.range(0) *
                       static_cast<std::int64_t>(Sha256x8::kLanes);
    state.SetBytesProcessed(bytes);
    set_cycles_per_byte(state, reading, bytes);
}
BENCHMARK(BM_HmacSha256x8)->Arg(256)->Arg(1024);

void BM_RsaSign(benchmark::State& state) {
    Rng rng(3);
    const RsaKeyPair key = RsaKeyPair::generate(rng, static_cast<std::size_t>(state.range(0)));
    const auto msg = rng.bytes(256);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rsa_sign(key, msg));
    }
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_RsaVerify(benchmark::State& state) {
    Rng rng(4);
    const RsaKeyPair key = RsaKeyPair::generate(rng, static_cast<std::size_t>(state.range(0)));
    const auto msg = rng.bytes(256);
    const auto sig = rsa_sign(key, msg);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rsa_verify(key.pub, msg, sig));
    }
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_WotsSign(benchmark::State& state) {
    Rng rng(5);
    const auto seed = rng.bytes(32);
    const WotsKey key(seed, 0);
    const Digest256 digest = Sha256::hash("packet");
    for (auto _ : state) {
        benchmark::DoNotOptimize(key.sign(digest));
    }
}
BENCHMARK(BM_WotsSign)->Unit(benchmark::kMicrosecond);

void BM_WotsVerify(benchmark::State& state) {
    Rng rng(6);
    const auto seed = rng.bytes(32);
    const WotsKey key(seed, 0);
    const Digest256 digest = Sha256::hash("packet");
    const auto sig = key.sign(digest);
    for (auto _ : state) {
        benchmark::DoNotOptimize(WotsKey::recover_public_key(sig, digest));
    }
}
BENCHMARK(BM_WotsVerify)->Unit(benchmark::kMicrosecond);

void BM_MerkleBuild(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<Digest256> leaves;
    leaves.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        leaves.push_back(Sha256::hash("leaf" + std::to_string(i)));
    for (auto _ : state) {
        MerkleTree tree(leaves);
        benchmark::DoNotOptimize(tree.root());
    }
}
BENCHMARK(BM_MerkleBuild)->Arg(128)->Arg(1024)->Unit(benchmark::kMicrosecond);

// ------------------------------------------------------- codec throughput

std::vector<std::vector<std::uint8_t>> payloads(Rng& rng, std::size_t n, std::size_t bytes) {
    std::vector<std::vector<std::uint8_t>> out;
    for (std::size_t i = 0; i < n; ++i) out.push_back(rng.bytes(bytes));
    return out;
}

void BM_EmssSenderBlock(benchmark::State& state) {
    Rng rng(7);
    HmacSigner signer(rng, 128);  // signature cost excluded: isolate hashing
    const auto n = static_cast<std::size_t>(state.range(0));
    HashChainSender sender(emss_config(n, 2, 1), signer);
    const auto data = payloads(rng, n, 512);
    std::uint32_t block = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sender.make_block(block++, data));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EmssSenderBlock)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_EmssReceiverBlock(benchmark::State& state) {
    Rng rng(8);
    HmacSigner signer(rng, 128);
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto config = emss_config(n, 2, 1);
    HashChainSender sender(config, signer);
    const auto data = payloads(rng, n, 512);
    std::uint32_t block = 0;
    for (auto _ : state) {
        state.PauseTiming();
        const auto packets = sender.make_block(block, data);
        HashChainReceiver receiver(config, signer.make_verifier());
        state.ResumeTiming();
        std::size_t verdicts = 0;
        for (const auto& pkt : packets) verdicts += receiver.on_packet(pkt).size();
        benchmark::DoNotOptimize(verdicts);
        ++block;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EmssReceiverBlock)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_TeslaPacket(benchmark::State& state) {
    Rng rng(9);
    HmacSigner signer(rng, 128);
    TeslaConfig config;
    config.interval_duration = 1e6;  // everything in interval 1: isolate MAC cost
    config.chain_length = 4;
    TeslaSender sender(config, signer, rng, 0.0);
    const auto payload = rng.bytes(512);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sender.make_packet(payload, 0.5));
    }
}
BENCHMARK(BM_TeslaPacket)->Unit(benchmark::kMicrosecond);

void BM_TeslaKeyChainBuild(benchmark::State& state) {
    Rng rng(10);
    const auto seed = rng.bytes(32);
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        TeslaKeyChain chain(seed, n);
        benchmark::DoNotOptimize(chain.commitment());
    }
}
BENCHMARK(BM_TeslaKeyChainBuild)->Arg(1024)->Arg(8192)->Unit(benchmark::kMillisecond);

// Console reporter that also collects every finished run so main can write
// the schema-v2 BENCH_micro_crypto.json envelope (workload = benchmark
// name, trials = iterations, gated metric = iterations/sec).
class CollectingReporter : public benchmark::ConsoleReporter {
public:
    struct Row {
        std::string name;
        std::int64_t iterations = 0;
        double seconds = 0;            // total real time of the measured loop
        double cycles_per_byte = -1;   // -1 when the counter was unavailable
        double bytes_per_second = -1;
    };

    void ReportRuns(const std::vector<Run>& runs) override {
        for (const Run& run : runs) {
            if (run.error_occurred) continue;
            Row row;
            row.name = run.benchmark_name();
            row.iterations = run.iterations;
            row.seconds = run.real_accumulated_time;
            if (const auto it = run.counters.find("cycles_per_byte");
                it != run.counters.end())
                row.cycles_per_byte = it->second;
            if (const auto it = run.counters.find("bytes_per_second");
                it != run.counters.end())
                row.bytes_per_second = it->second;
            rows_.push_back(std::move(row));
        }
        ConsoleReporter::ReportRuns(runs);
    }

    const std::vector<Row>& rows() const noexcept { return rows_; }

private:
    std::vector<Row> rows_;
};

}  // namespace
}  // namespace mcauth

// Custom main (instead of benchmark_main) so the uniform mcauth flag surface
// (--metrics-out/--trace-out/--obs, see bench_common.hpp) works here too;
// benchmark::Initialize strips its own flags and leaves ours alone.
int main(int argc, char** argv) {
    using namespace mcauth;
    bench::BenchMain bm(argc, argv, "micro_crypto");
    benchmark::Initialize(&argc, argv);
    CollectingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    const char* path = "bench_out/BENCH_micro_crypto.json";
    if (std::FILE* f = std::fopen(path, "w")) {
        std::fprintf(f, "{\n  \"schema_version\": %d,\n",
                     obs::RunManifest::kSchemaVersion);
        std::fprintf(f, "  \"bench\": \"micro_crypto\",\n");
        std::fprintf(f, "  \"seed\": %llu,\n",
                     static_cast<unsigned long long>(bm.seed()));
        std::fprintf(f, "  \"manifest\": %s,\n", bm.manifest().to_json(2).c_str());
        std::fprintf(f, "  \"results\": [\n");
        const auto& rows = reporter.rows();
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const auto& r = rows[i];
            const double rate =
                r.seconds > 0 ? static_cast<double>(r.iterations) / r.seconds : 0;
            std::fprintf(f,
                         "    {\"workload\": \"%s\", \"threads\": 1, "
                         "\"trials\": %lld, \"seconds\": %.6f, "
                         "\"trials_per_sec\": %.1f",
                         obs::json_escape(r.name).c_str(),
                         static_cast<long long>(r.iterations), r.seconds, rate);
            if (r.cycles_per_byte >= 0)
                std::fprintf(f, ", \"cycles_per_byte\": %.2f", r.cycles_per_byte);
            if (r.bytes_per_second >= 0)
                std::fprintf(f, ", \"bytes_per_sec\": %.0f", r.bytes_per_second);
            std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::fprintf(stderr, "json: %s\n", path);
    } else {
        std::fprintf(stderr, "json: FAILED to write %s\n", path);
    }
    return 0;
}

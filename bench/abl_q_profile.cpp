// Ablation A10 — two robustness checks of the paper's §3-§4 assumptions.
//
// (a) Per-packet q_i profile across the block. §3 argues designers should
//     "minimize the variance of the authentication probabilities" by giving
//     far vertices more paths; the profile shows where each scheme's
//     probability plateaus, decays, or oscillates (exact DP values).
//
// (b) TESLA under a non-Gaussian delay: §4.1 justifies the Gaussian by the
//     central limit theorem; heavy-tailed queueing breaks that. With mean
//     and std matched, the shifted-exponential tail changes xi and hence
//     q_min — quantifying how load-bearing the Gaussian assumption is.
#include "bench_common.hpp"
#include "core/exact_dp.hpp"
#include "core/tesla.hpp"

using namespace mcauth;

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "abl_q_profile");
    bench::note("[abl10] q_i profiles (exact) and TESLA delay-model sensitivity");

    bench::section("(a) exact q_i vs vertex index, n = 200, p = 0.15");
    {
        const std::size_t n = 200;
        const auto channel = MarkovChannel::bernoulli(0.15);
        const auto q12 = exact_offset_auth_prob(n, {1, 2}, channel);
        const auto q13 = exact_offset_auth_prob(n, {1, 2, 3}, channel);
        const auto q1416 = exact_offset_auth_prob(n, {1, 4, 16}, channel);
        TablePrinter table({"vertex", "{1,2}", "{1,2,3}", "{1,4,16}"});
        for (std::size_t v : {1u, 2u, 5u, 10u, 20u, 50u, 100u, 150u, 199u}) {
            table.add_row({std::to_string(v), TablePrinter::num(q12.q[v], 4),
                           TablePrinter::num(q13.q[v], 4),
                           TablePrinter::num(q1416.q[v], 4)});
        }
        bench::emit(table, "abl10_profile");
        bench::note("reading: every profile is 1.0 near the root (P_sign carries those"
                    "\nhashes) then decays geometrically at a scheme-specific rate; wider"
                    "\noffset sets flatten the profile = lower variance, the §3 advice.");
    }

    bench::section("(b) TESLA q_min: Gaussian vs shifted-exponential delay, matched "
                    "mean/std");
    {
        TablePrinter table(
            {"T_disclose(s)", "gaussian", "shifted-exp", "difference"});
        TeslaParams params;
        params.n = 500;
        params.p = 0.2;
        const double mu = 0.5;
        const double sigma = 0.25;
        for (double t : {0.5, 0.75, 1.0, 1.5, 2.0, 3.0}) {
            params.t_disclose = t;
            params.mu = mu;
            params.sigma = sigma;
            const double gauss = analyze_tesla(params).q_min;
            // Shifted exponential with the same mean and std: offset mu -
            // sigma, mean-extra sigma.
            const ShiftedExponentialDelay heavy(mu - sigma, sigma);
            const double exp_tail = analyze_tesla(params, heavy).q_min;
            table.add_row({TablePrinter::num(t, 2), TablePrinter::num(gauss, 4),
                           TablePrinter::num(exp_tail, 4),
                           TablePrinter::num(exp_tail - gauss, 4)});
        }
        bench::emit(table, "abl10_tesla_tail");
        bench::note("reading: near the deadline (T ~ mu) the exponential's mass-before-"
                    "\nmean helps TESLA; far past it the heavy tail hurts — the Gaussian"
                    "\nassumption is optimistic exactly where deployments pick T_disclose.");
    }
    return 0;
}

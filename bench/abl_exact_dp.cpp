// Ablation A6 — the paper's Figure 8/9 numbers, recomputed EXACTLY at full
// scale with the transfer-matrix DP (core/exact_dp.hpp), plus the bursty
// channels the paper left as future work.
//
// This is the quantitative correction of the independence recurrence: at
// n = 1000 the recurrence's q_min for EMSS E_{2,1} converges to a loss-only
// fixed point, while the exact value decays with n (somewhere in 1000
// packets, both carriers of some packet die together). The paper's
// *ranking* of schemes survives; the absolute q_min values do not.
#include "bench_common.hpp"
#include "core/authprob.hpp"
#include "core/exact_dp.hpp"
#include "core/topologies.hpp"

using namespace mcauth;

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "abl_exact_dp");
    bench::note("[abl6] Exact transfer-matrix DP vs the paper's recurrence, n = 1000");

    bench::section("i.i.d. loss: q_min exact vs recurrence");
    {
        TablePrinter table({"offsets", "p", "recurrence(eq9)", "exact(DP)", "optimism"});
        for (double p : {0.05, 0.1, 0.2, 0.3}) {
            struct Case {
                const char* name;
                std::vector<std::size_t> offsets;
            } cases[] = {{"{1,2}   (E_{2,1})", {1, 2}},
                         {"{1,2,3} (E_{3,1})", {1, 2, 3}},
                         {"{1,2,3,4}", {1, 2, 3, 4}},
                         {"{1,8}", {1, 8}},
                         {"{1,4,16}", {1, 4, 16}}};
            for (const auto& c : cases) {
                const auto dg = make_offset_scheme(1000, c.offsets);
                const double rec = recurrence_auth_prob(dg, p).q_min;
                const double exact =
                    exact_offset_auth_prob(1000, c.offsets, MarkovChannel::bernoulli(p))
                        .q_min;
                table.add_row({c.name, TablePrinter::num(p, 2), TablePrinter::num(rec, 4),
                               TablePrinter::num(exact, 4),
                               TablePrinter::num(rec - exact, 4)});
            }
        }
        bench::emit(table, "abl6_iid");
    }

    bench::section("exact q_min vs block size n (the decay Eq. 9 hides), p = 0.1");
    {
        TablePrinter table({"n", "{1,2} rec", "{1,2} exact", "{1,4,16} exact"});
        for (std::size_t n : {50u, 100u, 200u, 500u, 1000u, 2000u, 5000u}) {
            const double rec = recurrence_auth_prob(make_offset_scheme(n, {1, 2}), 0.1).q_min;
            const double e12 =
                exact_offset_auth_prob(n, {1, 2}, MarkovChannel::bernoulli(0.1)).q_min;
            const double e146 =
                exact_offset_auth_prob(n, {1, 4, 16}, MarkovChannel::bernoulli(0.1)).q_min;
            table.add_row({std::to_string(n), TablePrinter::num(rec, 4),
                           TablePrinter::num(e12, 4), TablePrinter::num(e146, 4)});
        }
        bench::emit(table, "abl6_decay");
    }

    bench::section("bursty loss, exact (rate 0.2, burst sweep), n = 1000");
    {
        TablePrinter table({"burst", "{1,2}", "{1,8}", "{1,16}", "{1,4,16}"});
        for (double burst : {1.0, 2.0, 4.0, 8.0, 16.0}) {
            const MarkovChannel channel =
                burst <= 1.0 ? MarkovChannel::bernoulli(0.2)
                             : MarkovChannel::gilbert_elliott(0.2, burst);
            auto q = [&](std::vector<std::size_t> offsets) {
                return TablePrinter::num(
                    exact_offset_auth_prob(1000, offsets, channel).q_min, 4);
            };
            table.add_row({TablePrinter::num(burst, 0), q({1, 2}), q({1, 8}), q({1, 16}),
                           q({1, 4, 16})});
        }
        bench::emit(table, "abl6_bursty");
    }
    bench::note("\nreading: 'optimism' is the recurrence error the paper's figures carry;"
                "\nthe n-sweep shows the true q_min decaying where Eq. 9 plateaus; the"
                "\nburst table gives design guidance the i.i.d. analysis cannot: match"
                "\nyour longest offset to the burst length you expect.");
    return 0;
}

// Ablation A9 — the Wong–Lam tree-degree tradeoff. Arity k gives proofs of
// ceil(log_k n) levels with up to (k-1) digests each: bytes/packet grow
// roughly as (k-1)/log2(k) while hash evaluations per verification fall as
// 1/log2(k). Measured with the real codec (wire bytes) per arity.
#include "bench_common.hpp"
#include "crypto/signature.hpp"
#include "auth/tree_scheme.hpp"
#include "util/rng.hpp"

using namespace mcauth;

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "abl_tree_arity");
    bench::note("[abl9] Wong-Lam authentication-tree arity sweep; n = 256, payload 256 B");
    Rng rng(91);
    HmacSigner signer(rng, 128);  // 128 B stand-in so rows isolate the path cost

    const std::size_t n = 256;
    std::vector<std::vector<std::uint8_t>> payloads;
    for (std::size_t i = 0; i < n; ++i) payloads.push_back(rng.bytes(256));

    TablePrinter table(
        {"arity", "proof levels", "path bytes/pkt", "total overhead B/pkt"});
    for (std::size_t arity : {2u, 3u, 4u, 8u, 16u, 64u}) {
        TreeSender sender(
            TreeSchemeConfig{.block_size = n, .hash_bytes = 16, .arity = arity}, signer);
        const auto packets = sender.make_block(0, payloads);
        double path_bytes = 0.0;
        double total_overhead = 0.0;
        for (const auto& pkt : packets) {
            for (const auto& href : pkt.hashes) path_bytes += href.digest.size();
            total_overhead += static_cast<double>(pkt.wire_size() - pkt.payload.size());
        }
        table.add_row({std::to_string(arity), std::to_string(packets[0].hashes.size()),
                       TablePrinter::num(path_bytes / static_cast<double>(n), 1),
                       TablePrinter::num(total_overhead / static_cast<double>(n), 1)});
    }
    bench::emit(table, "abl9");
    bench::note("\nreading: k = 2 minimizes bytes; raising k shortens the proof (fewer"
                "\nlevels to hash at verification) at a steep byte cost — the paper's"
                "\nFigure 10 'high overhead' verdict on trees holds at every degree.");
    return 0;
}

// Ablation A5 — graph-theoretical diversity metrics as robustness
// predictors. The paper argues informally that path multiplicity and path
// sharing control loss tolerance; Menger disjoint-path counts and dominator
// counts make that precise:
//
//   * min #vertex-disjoint root-paths  = how many simultaneous packet
//     losses verification provably survives (Menger);
//   * interior dominators              = single points of failure.
//
// We tabulate both against Monte-Carlo q_min under i.i.d. and bursty loss.
// Expected: schemes ranked by min-disjoint-paths rank identically under
// loss; schemes with dominators (rohatgi) collapse.
//
// Rows fan across the thread pool via SweepRunner and each Monte-Carlo run
// derives its seed from (base seed, run index), so the table is
// byte-identical for any --threads value (DESIGN.md §7).
#include "bench_common.hpp"
#include "core/authprob.hpp"
#include "core/metrics.hpp"
#include "core/topologies.hpp"
#include "exec/sharded.hpp"
#include "exec/sweep.hpp"

using namespace mcauth;

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "abl_diversity");
    bench::note("[abl5] Diversity metrics vs measured robustness, n = 120");
    const std::size_t kN = 120;

    TablePrinter table({"scheme", "edges", "min disj paths", "max dominators",
                        "#critical", "q_min iid p=.2", "q_min burst4 p=.2"});
    Rng scheme_rng(42);

    struct Case {
        std::string name;
        DependenceGraph dg;
    };
    std::vector<Case> cases;
    cases.push_back({"rohatgi", make_rohatgi(kN)});
    cases.push_back({"emss(2,1)", make_emss(kN, 2, 1)});
    cases.push_back({"emss(3,1)", make_emss(kN, 3, 1)});
    cases.push_back({"emss(3,8)", make_emss(kN, 3, 8)});
    cases.push_back({"ac(3,3)", make_augmented_chain(kN, 3, 3)});
    cases.push_back({"random(.02)", make_random_scheme(kN, 0.02, scheme_rng)});

    struct RowResult {
        double q_iid = 0, q_burst = 0;
    };
    const exec::SweepRunner sweep;
    const std::uint64_t base_seed = bm.seed();
    const auto mc = sweep.map_grid<RowResult>(cases, [&](const Case& c, std::size_t i) {
        RowResult out;
        const BernoulliLoss iid(0.2);
        out.q_iid = monte_carlo_auth_prob(c.dg, iid,
                                          exec::derive_stream_seed(base_seed, 2 * i),
                                          4000)
                        .q_min;
        const auto bursty = GilbertElliottLoss::from_rate_and_burst(0.2, 4.0);
        out.q_burst = monte_carlo_auth_prob(
                          c.dg, bursty, exec::derive_stream_seed(base_seed, 2 * i + 1),
                          4000)
                          .q_min;
        return out;
    });

    for (std::size_t i = 0; i < cases.size(); ++i) {
        const auto& c = cases[i];
        const DiversityMetrics div = compute_diversity(c.dg);
        table.add_row({c.name, std::to_string(c.dg.graph().edge_count()),
                       std::to_string(div.min_disjoint_paths),
                       std::to_string(div.max_interior_dominators),
                       std::to_string(div.critical_vertices.size()),
                       TablePrinter::num(mc[i].q_iid, 4),
                       TablePrinter::num(mc[i].q_burst, 4)});
    }
    bench::emit(table, "abl5");
    bench::note("\nreading: max-dominators > 0 predicts collapse (rohatgi); among the"
                "\ndominator-free schemes, burst robustness tracks link SPAN (emss(3,8)"
                "\nvs emss(3,1)) rather than raw disjoint-path count alone — diversity"
                "\nneeds to be spatial as well as combinatorial, the paper's §3 remark.");
    return 0;
}

// Figure 3: TESLA minimum authentication probability q_min against the mean
// end-to-end delay mu = alpha * T_disclose and the jitter sigma, for a block
// of n = 1000 packets and T_disclose = 1 s (Eq. 7).
//
// Expected shape (paper): q_min falls as either mu or sigma grows; with
// mu, sigma << T_disclose the scheme sits at its loss-limited plateau
// (1 - p), and the cliff arrives as mu approaches T_disclose.
//
// The (p, sigma, alpha) grid is fanned across the thread pool by
// SweepRunner; cells come back in index order, so the tables are
// byte-identical for any --threads value.
#include "bench_common.hpp"
#include "core/tesla.hpp"
#include "exec/sweep.hpp"

using namespace mcauth;

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "fig03_tesla_surface");
    bench::note("[fig03] TESLA q_min vs mu = alpha*T and sigma; T_disclose = 1 s, n = 1000");
    const double kDisclose = 1.0;
    const double alphas[] = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
    const double sigmas[] = {0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8};
    const double losses[] = {0.1, 0.3, 0.5};

    struct Cell {
        double p, sigma, alpha;
    };
    std::vector<Cell> grid;
    for (double p : losses)
        for (double sigma : sigmas)
            for (double alpha : alphas) grid.push_back({p, sigma, alpha});

    const exec::SweepRunner sweep;
    const auto q_min = sweep.map_grid<double>(grid, [&](const Cell& c, std::size_t) {
        TeslaParams params;
        params.n = 1000;
        params.t_disclose = kDisclose;
        params.mu = c.alpha * kDisclose;
        params.sigma = c.sigma;
        params.p = c.p;
        return analyze_tesla(params).q_min;
    });

    std::size_t i = 0;
    for (double p : losses) {
        bench::section("q_min surface at packet loss p = " + TablePrinter::num(p, 1));
        std::vector<std::string> header{"sigma\\alpha"};
        for (double a : alphas) header.push_back(TablePrinter::num(a, 1));
        TablePrinter table(header);
        for (double sigma : sigmas) {
            std::vector<std::string> row{TablePrinter::num(sigma, 2)};
            for (std::size_t a = 0; a < std::size(alphas); ++a)
                row.push_back(TablePrinter::num(q_min[i++], 4));
            table.add_row(row);
        }
        bench::emit(table, "fig03_p" + TablePrinter::num(p, 1));
    }
    bench::note("\nshape check: rows decrease left-to-right (mu), and the high-sigma rows"
                "\nflatten toward (1-p)/2 at alpha=1 where half the mass misses T_disclose.");
    return 0;
}

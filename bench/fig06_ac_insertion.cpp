// Figure 6: augmented chain with the FIRST-LEVEL LENGTH HELD FIXED — the
// block size grows as n = L*(b+1) when b grows. The paper's point: once the
// chain depth is pinned, q_min is insensitive to b, so AC can absorb newly
// inserted packets without degrading (its headline property).
#include "bench_common.hpp"
#include "core/authprob.hpp"
#include "core/topologies.hpp"

using namespace mcauth;

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "fig06_ac_insertion");
    bench::note("[fig06] AC with fixed first-level length L = 150: q_min vs b (n grows)");
    const std::size_t kFirstLevel = 150;
    const std::size_t kA = 3;
    const std::size_t b_values[] = {1, 2, 3, 4, 5, 6, 8, 10};

    std::vector<std::string> header{"p\\b"};
    for (std::size_t b : b_values) header.push_back(std::to_string(b));
    TablePrinter table(header);
    for (double p : {0.1, 0.3, 0.5}) {
        std::vector<std::string> row{TablePrinter::num(p, 1)};
        for (std::size_t b : b_values) {
            const std::size_t n = kFirstLevel * (b + 1);
            const auto dg = make_augmented_chain(n, kA, b);
            row.push_back(TablePrinter::num(recurrence_auth_prob(dg, p).q_min, 4));
        }
        table.add_row(row);
    }
    bench::emit(table, "fig06");
    bench::note("\nshape check: within each row the variation across b is small (the"
                "\nfirst-level chain depth, not the insertion factor, controls q_min).");
    return 0;
}

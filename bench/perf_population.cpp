// Tentpole bench: the sharded receiver-population engine (DESIGN.md §13)
// against the naive per-receiver baseline.
//
// Two phases:
//
//   identity — on small populations (16 / 512 / 4096 leaves), Bernoulli and
//   Gilbert-Elliott trees, the engine's sketched aggregate must be
//   BIT-IDENTICAL (PopulationAggregate::identical) to the naive oracle at
//   --threads 1 and 8. Any mismatch is RESULT: FAIL / exit 1 — this is the
//   gate CI relies on; throughput numbers are report-only.
//
//   throughput (skipped under --smoke=1) — the engine vs the naive
//   per-receiver oracle on a 100,000-receiver tree (deep lossy backbone +
//   small fan-outs, the shape where link sharing pays: every backbone word
//   is sampled once and serves the whole population), then engine-only on a
//   1,048,576-receiver tree x 64 trial lanes per block. The 100k cell also
//   re-checks engine-vs-oracle identity at full scale, since both
//   aggregates are computed anyway.
//
// Flags beyond the shared bench surface (bench_common.hpp):
//   --smoke=0|1   identity phase only (CI smoke; default 0)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/topologies.hpp"
#include "exec/thread_pool.hpp"
#include "pop/population.hpp"
#include "pop/tree.hpp"

using namespace mcauth;

namespace {

double now_seconds() {
    using clock = std::chrono::steady_clock;
    static const clock::time_point start = clock::now();
    return std::chrono::duration<double>(clock::now() - start).count();
}

// Level-structured tree with one loss kind throughout. `rates` parallels
// `fanouts`; a 0.0 Bernoulli rate makes that level lossless and exercises
// the engine's skip-the-link path against the oracle's path exclusion.
pop::TreeSpec make_spec(bool ge, std::size_t backbone_depth, double backbone_rate,
                        std::vector<std::size_t> fanouts, std::vector<double> rates) {
    pop::TreeSpec spec;
    spec.backbone_depth = backbone_depth;
    spec.backbone_link = ge ? pop::LinkSpec::gilbert_elliott(backbone_rate, 4.0)
                            : pop::LinkSpec::bernoulli(backbone_rate);
    spec.fanouts = std::move(fanouts);
    for (std::size_t level = 0; level < spec.fanouts.size(); ++level) {
        const double rate = rates[level];
        spec.fanout_links.push_back(
            ge && rate > 0.0
                ? pop::LinkSpec::gilbert_elliott(rate, 2.0 + static_cast<double>(level))
                : pop::LinkSpec::bernoulli(rate));
    }
    return spec;
}

// 100,000 receivers behind a 26-hop bursty backbone: 2^5 * 5^5 leaves, depth
// 36. The naive baseline walks all 36 links per (receiver, lane); the engine
// samples each of the ~125k links once.
pop::TreeSpec naive_100k_spec() {
    pop::TreeSpec spec;
    spec.backbone_depth = 26;
    spec.backbone_link = pop::LinkSpec::gilbert_elliott(0.006, 8.0);
    spec.fanouts = {2, 2, 2, 2, 2, 5, 5, 5, 5, 5};
    for (std::size_t level = 0; level < spec.fanouts.size(); ++level)
        spec.fanout_links.push_back(pop::LinkSpec::bernoulli(0.002));
    return spec;
}

// 4^10 = 1,048,576 receivers, depth 20. Engine-only: the oracle at this
// scale is exactly the workload the tentpole exists to avoid.
pop::TreeSpec million_spec() {
    pop::TreeSpec spec;
    spec.backbone_depth = 10;
    spec.backbone_link = pop::LinkSpec::gilbert_elliott(0.004, 8.0);
    spec.fanouts = std::vector<std::size_t>(10, 4);
    for (std::size_t level = 0; level < spec.fanouts.size(); ++level)
        spec.fanout_links.push_back(pop::LinkSpec::bernoulli(0.002));
    return spec;
}

struct IdentityRow {
    std::string cell;
    const char* kind;
    std::size_t leaves;
    std::size_t threads;
    bool identical;
};

struct PerfRow {
    std::string workload;
    const char* engine;  // "engine" | "naive"
    std::size_t receivers;
    std::size_t links;
    std::size_t depth;
    std::size_t packets;
    std::size_t threads;
    double seconds = 0;  // best of repeats
    std::vector<double> seconds_repeats;
    double mean_loss = 0;  // sanity echo from the rep-0 aggregate
};

}  // namespace

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "perf_population", 1, {"smoke"});
    const bool smoke = bm.args().get_bool("smoke", false);
    const std::size_t repeats = std::max<std::size_t>(2, bm.repeat());

    bench::note("[perf] Sharded population engine vs naive per-receiver oracle "
                "(DESIGN.md §13)");

    bool identity_ok = true;

    // ------------------------------------------------------------- identity
    // Small populations, both loss kinds, engine at 1 and 8 threads against
    // one oracle aggregate per tree. max_shard_leaves = 48 keeps the shard
    // boundaries away from the subtree sizes, so merges cross fan-out units.
    std::vector<IdentityRow> identity_rows;
    {
        bench::section("identity: engine vs oracle, populations <= 4096");
        struct Cell {
            const char* name;
            std::size_t backbone;
            double backbone_rate;
            std::vector<std::size_t> fanouts;
            std::vector<double> rates;
        };
        const Cell cells[] = {
            {"16-leaf", 2, 0.05, {4, 4}, {0.10, 0.06}},
            {"512-leaf", 1, 0.08, {8, 8, 8}, {0.08, 0.00, 0.10}},
            {"4096-leaf", 2, 0.05, {16, 16, 16}, {0.05, 0.07, 0.09}},
        };
        const DependenceGraph dg = make_augmented_chain(24, 2, 4);
        TablePrinter table({"cell", "kind", "leaves", "threads", "identical"});
        for (const Cell& cell : cells) {
            for (bool ge : {false, true}) {
                const char* kind = ge ? "gilbert-elliott" : "bernoulli";
                const pop::DistributionTree tree(make_spec(
                    ge, cell.backbone, cell.backbone_rate, cell.fanouts, cell.rates));
                const pop::PopulationAggregate oracle =
                    pop::population_oracle(tree, dg, bm.seed(), /*block=*/5);
                pop::PopulationOptions options;
                options.max_shard_leaves = 48;
                const pop::PopulationEngine engine(tree, options);
                for (std::size_t t : {std::size_t{1}, std::size_t{8}}) {
                    exec::ThreadPool::set_global_thread_count(t);
                    const pop::PopulationAggregate agg =
                        engine.simulate_block(dg, bm.seed(), /*block=*/5);
                    const bool same = agg.identical(oracle);
                    if (!same) identity_ok = false;
                    identity_rows.push_back(
                        {cell.name, kind, tree.leaf_count(), t, same});
                    table.add_row({cell.name, kind, std::to_string(tree.leaf_count()),
                                   std::to_string(t), same ? "yes" : "NO"});
                }
            }
        }
        exec::ThreadPool::set_global_thread_count(bm.threads());
        bench::emit(table, "perf_population_identity");
    }

    // ----------------------------------------------------------- throughput
    std::vector<PerfRow> perf_rows;
    double speedup_vs_naive = 0.0;
    if (!smoke) {
        const DependenceGraph dg = make_augmented_chain(64, 2, 4);
        const std::size_t threads = bm.threads();
        exec::ThreadPool::set_global_thread_count(threads);

        auto run_cell = [&](const std::string& workload, const char* engine_name,
                            const pop::DistributionTree& tree,
                            auto&& simulate) -> PerfRow {
            PerfRow row;
            row.workload = workload;
            row.engine = engine_name;
            row.receivers = tree.leaf_count();
            row.links = tree.node_count() - 1;
            row.depth = tree.spec().depth();
            row.packets = dg.packet_count();
            row.threads = threads;
            pop::PopulationAggregate first(pop::QuantileSketch::kDefaultBins);
            for (std::size_t rep = 0; rep < repeats; ++rep) {
                const double t0 = now_seconds();
                pop::PopulationAggregate agg =
                    simulate(static_cast<std::uint32_t>(100 + rep));
                const double dt = now_seconds() - t0;
                row.seconds_repeats.push_back(dt);
                if (rep == 0) {
                    row.mean_loss = agg.mean_loss_rate();
                    first = std::move(agg);
                }
            }
            row.seconds =
                *std::min_element(row.seconds_repeats.begin(), row.seconds_repeats.end());
            return row;
        };

        {
            bench::section("throughput: 100k receivers, engine vs naive");
            const pop::DistributionTree tree(naive_100k_spec());
            const pop::PopulationEngine engine(tree);
            bench::note("tree: " + std::to_string(tree.leaf_count()) + " leaves, " +
                        std::to_string(tree.node_count() - 1) + " links, depth " +
                        std::to_string(tree.spec().depth()) + ", leaf loss " +
                        TablePrinter::num(tree.leaf_loss_rate(), 3));

            // Same (seed, block) streams -> the rep-0 aggregates must match
            // bit-for-bit; keep them to extend the identity gate to 100k.
            pop::PopulationAggregate engine_agg(pop::QuantileSketch::kDefaultBins);
            pop::PopulationAggregate oracle_agg(pop::QuantileSketch::kDefaultBins);
            PerfRow engine_row = run_cell("pop100k", "engine", tree, [&](std::uint32_t b) {
                pop::PopulationAggregate agg = engine.simulate_block(dg, bm.seed(), b);
                if (b == 100) engine_agg = agg;
                return agg;
            });
            PerfRow naive_row = run_cell("pop100k", "naive", tree, [&](std::uint32_t b) {
                pop::PopulationAggregate agg =
                    pop::population_oracle(tree, dg, bm.seed(), b);
                if (b == 100) oracle_agg = agg;
                return agg;
            });
            if (!engine_agg.identical(oracle_agg)) {
                identity_ok = false;
                bench::note("BIT-IDENTITY VIOLATION at 100k receivers");
            }
            speedup_vs_naive =
                engine_row.seconds > 0 ? naive_row.seconds / engine_row.seconds : 0.0;
            TablePrinter table({"engine", "receivers", "seconds", "recv/s",
                                "recv*trials/s", "speedup"});
            for (const PerfRow* row : {&naive_row, &engine_row}) {
                const double rps = static_cast<double>(row->receivers) / row->seconds;
                table.add_row({row->engine, std::to_string(row->receivers),
                               TablePrinter::num(row->seconds, 3),
                               TablePrinter::num(rps, 0), TablePrinter::num(rps * 64, 0),
                               row->engine == std::string("engine")
                                   ? TablePrinter::num(speedup_vs_naive, 1) + "x"
                                   : "1.0x"});
            }
            bench::emit(table, "perf_population_100k");
            perf_rows.push_back(std::move(naive_row));
            perf_rows.push_back(std::move(engine_row));
        }

        {
            bench::section("throughput: 1,048,576 receivers x 64 trials, engine only");
            const pop::DistributionTree tree(million_spec());
            const pop::PopulationEngine engine(tree);
            bench::note("tree: " + std::to_string(tree.leaf_count()) + " leaves, " +
                        std::to_string(tree.node_count() - 1) + " links, depth " +
                        std::to_string(tree.spec().depth()) + ", leaf loss " +
                        TablePrinter::num(tree.leaf_loss_rate(), 3));
            PerfRow row = run_cell("pop1M", "engine", tree, [&](std::uint32_t b) {
                return engine.simulate_block(dg, bm.seed(), b);
            });
            const double rps = static_cast<double>(row.receivers) / row.seconds;
            TablePrinter table(
                {"engine", "receivers", "seconds/block", "recv/s", "recv*trials/s"});
            table.add_row({"engine", std::to_string(row.receivers),
                           TablePrinter::num(row.seconds, 3), TablePrinter::num(rps, 0),
                           TablePrinter::num(rps * 64, 0)});
            bench::emit(table, "perf_population_1m");
            perf_rows.push_back(std::move(row));
        }
        bench::note("speedup vs naive at 100k receivers: " +
                    TablePrinter::num(speedup_vs_naive, 1) + "x");
    }

    // ------------------------------------------------------------- JSON out
    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    const char* path = "bench_out/BENCH_population.json";
    if (std::FILE* f = std::fopen(path, "w")) {
        std::fprintf(f, "{\n  \"schema_version\": %d,\n",
                     obs::RunManifest::kSchemaVersion);
        std::fprintf(f, "  \"bench\": \"perf_population\",\n");
        std::fprintf(f, "  \"seed\": %llu,\n",
                     static_cast<unsigned long long>(bm.seed()));
        std::fprintf(f, "  \"hardware_threads\": %zu,\n", exec::hardware_threads());
        std::fprintf(f, "  \"repeats\": %zu,\n", repeats);
        std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
        std::fprintf(f, "  \"identity_ok\": %s,\n", identity_ok ? "true" : "false");
        std::fprintf(f, "  \"speedup_vs_naive_100k\": %.2f,\n", speedup_vs_naive);
        std::fprintf(f, "  \"metric\": \"receivers_per_sec\",\n");
        std::fprintf(f, "  \"manifest\": %s,\n", bm.manifest().to_json(2).c_str());
        std::fprintf(f, "  \"identity\": [\n");
        for (std::size_t i = 0; i < identity_rows.size(); ++i) {
            const IdentityRow& row = identity_rows[i];
            std::fprintf(f,
                         "    {\"cell\": \"%s\", \"kind\": \"%s\", \"leaves\": %zu, "
                         "\"threads\": %zu, \"identical\": %s}%s\n",
                         row.cell.c_str(), row.kind, row.leaves, row.threads,
                         row.identical ? "true" : "false",
                         i + 1 < identity_rows.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n  \"results\": [\n");
        for (std::size_t i = 0; i < perf_rows.size(); ++i) {
            const PerfRow& row = perf_rows[i];
            const double rps = static_cast<double>(row.receivers) / row.seconds;
            std::fprintf(f,
                         "    {\"workload\": \"%s/%s\", \"engine\": \"%s\", "
                         "\"receivers\": %zu, \"links\": %zu, \"depth\": %zu,\n"
                         "     \"packets\": %zu, \"trials\": 64, \"threads\": %zu, "
                         "\"seconds\": %.6f,\n     \"seconds_repeats\": [",
                         row.workload.c_str(), row.engine, row.engine, row.receivers,
                         row.links, row.depth, row.packets, row.threads, row.seconds);
            for (std::size_t s = 0; s < row.seconds_repeats.size(); ++s)
                std::fprintf(f, "%s%.6f", s ? ", " : "", row.seconds_repeats[s]);
            std::fprintf(f,
                         "],\n     \"receivers_per_sec\": %.1f, "
                         "\"recv_trials_per_sec\": %.1f, \"mean_loss\": %.6f}%s\n",
                         rps, rps * 64, row.mean_loss,
                         i + 1 < perf_rows.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        bench::note(std::string("\njson: ") + path);
    } else {
        bench::note(std::string("\njson: FAILED to write ") + path);
    }

    // Exit gates identity ONLY (the CI contract): throughput is recorded in
    // the JSON and regression-checked report-only by tools/bench_compare.
    if (!identity_ok) {
        bench::note("RESULT: FAIL — sketched aggregate diverged from the naive oracle");
        return 1;
    }
    bench::note(smoke ? "RESULT: OK — engine bit-identical to oracle on all small cells"
                      : "RESULT: OK — engine bit-identical to oracle (small cells + 100k)");
    return 0;
}

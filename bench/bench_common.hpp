// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>

#include "util/table.hpp"

namespace mcauth::bench {

inline void section(const std::string& title) {
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

/// Print the table and mirror it as CSV under bench_out/.
inline void emit(const TablePrinter& table, const std::string& csv_name) {
    std::printf("%s", table.render().c_str());
    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    if (!ec) table.write_csv("bench_out/" + csv_name + ".csv");
}

}  // namespace mcauth::bench

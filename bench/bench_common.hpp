// Shared harness for the figure-reproduction benches.
//
// Every bench main constructs a BenchMain first thing:
//
//   int main(int argc, char** argv) {
//       bench::BenchMain bm(argc, argv, "abl4");
//       ...
//   }
//
// which gives every binary a uniform flag surface (parsed by util/cli):
//
//   --seed=N           base RNG seed (default per-bench)
//   --threads=N        lanes for the global exec::ThreadPool (default:
//                      hardware concurrency; 1 = the serial path). Output
//                      is bit-identical for any value — see DESIGN.md §7.
//   --warmup=N         run the workload N extra times first, then discard
//                      metrics (only meaningful with BenchMain::run)
//   --repeat=N         measured repetitions (only meaningful with run)
//   --obs=0|1          runtime switch for mcauth_obs instrumentation
//   --progress=0|1     live per-shard throughput/ETA on stderr + the
//                      exec.progress.* gauges (default off; stderr only,
//                      so figure outputs stay byte-identical either way)
//   --metrics-out=F    dump the obs metrics registry to F as JSON at exit
//   --trace-out=F      record trace events and dump Chrome trace-event JSON
//                      to F at exit (open in chrome://tracing or Perfetto)
//   --manifest-out=F   write the run-provenance manifest (DESIGN.md §9) to
//                      F at exit; default bench_out/<name>.manifest.json,
//                      empty value disables. The note goes to stderr so
//                      stdout stays identical to pre-manifest builds.
//   --expect=SUITE     run the whole bench under the named expectation
//                      suite (obs/expect.hpp): structured events stream
//                      through an online conformance checker and the
//                      verdict lands in the manifest. A bench that wants
//                      the exit code to reflect it calls
//                      `return bm.finish_expectation() ? 1 : 0;`.
//                      Benches with per-scenario suites (abl_adaptive_loss)
//                      skip this flag and call add_conformance() instead.
//                      Pick a suite that matches the workload's scheme
//                      family: `hash-chain` assumes block-scoped
//                      signatures, so benches mixing cross-block-amortized
//                      schemes (EMSS, augmented chain) run `stream-core`.
//   --events-out=F     export the structured event stream as JSONL to F at
//                      exit (meta line with dropped_events first) — the
//                      input format of tools/trace_check
//   --timeseries-out=F export the bench's block-granular TimeSeries
//                      (obs/timeseries.hpp) to F at exit — JSONL unless F
//                      ends in .csv. Only benches that feed timeseries()
//                      produce samples; the manifest records the path.
//   --help             print the flag surface and exit
//
// Unknown --key flags are REJECTED with a usage message (a mistyped
// `--thread=8` used to silently run serial); `--benchmark_*` passes through
// for the google-benchmark binaries, and a bench with extra flags of its
// own declares them via the `extra_keys` constructor argument.
//
// Hardware counters: `perf()` hands out a lazily-opened obs::PerfCounterSet
// (cycles/instructions/cache/branch events, DESIGN.md §9) that degrades to
// inert when perf_event_open is denied; BenchMain::run brackets each
// measured repeat with an obs::PerfRegion and keeps per-repeat wall times,
// readings, and obs-counter deltas (MetricsRegistry::snapshot/delta) so a
// bench can report per-repeat numbers instead of process-cumulative ones.
//
// Metrics/trace/manifest files are written from the destructor, so a bench
// needs no explicit flush. This is the repo's machine-readable perf
// trajectory: the same binary that prints a paper figure also exports where
// its time went and on what hardware/toolchain it was measured.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/clock.hpp"
#include "obs/expect.hpp"
#include "obs/manifest.hpp"
#include "obs/obs.hpp"
#include "obs/perfctr.hpp"
#include "obs/timeseries.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace mcauth::bench {

inline void section(const std::string& title) {
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

/// Print the table and mirror it as CSV under bench_out/.
inline void emit(const TablePrinter& table, const std::string& csv_name) {
    std::printf("%s", table.render().c_str());
    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    if (!ec) table.write_csv("bench_out/" + csv_name + ".csv");
}

class BenchMain {
public:
    /// `extra_keys`: additional flags this particular bench understands,
    /// beyond the shared surface below; anything else on the command line
    /// aborts with a usage message.
    BenchMain(int argc, const char* const* argv, std::string name,
              std::uint64_t default_seed = 1,
              std::vector<std::string_view> extra_keys = {})
        : args_(argc, argv), name_(std::move(name)) {
        reject_unknown_flags(extra_keys);
        seed_ = static_cast<std::uint64_t>(
            args_.get_int("seed", static_cast<std::int64_t>(default_seed)));
        warmup_ = static_cast<std::size_t>(args_.get_int("warmup", 0));
        repeat_ = static_cast<std::size_t>(args_.get_int("repeat", 1));
        metrics_out_ = args_.get("metrics-out", "");
        trace_out_ = args_.get("trace-out", "");
        manifest_out_ = args_.get("manifest-out", "bench_out/" + name_ + ".manifest.json");
        expect_ = args_.get("expect", "");
        events_out_ = args_.get("events-out", "");
        timeseries_out_ = args_.get("timeseries-out", "");
        obs::set_enabled(args_.get_bool("obs", true));
        obs::set_progress_enabled(args_.get_bool("progress", false));
        // Structured events ride the trace ring, so both conformance
        // checking and JSONL export imply tracing.
        if (!trace_out_.empty() || !expect_.empty() || !events_out_.empty())
            obs::set_trace_enabled(true);
        if (!expect_.empty()) {
            const obs::ExpectationSuite* suite = obs::find_suite(expect_);
            if (suite == nullptr) {
                std::fprintf(stderr, "%s: unknown expectation suite \"%s\"; known:",
                             name_.c_str(), expect_.c_str());
                for (const std::string& s : obs::suite_names())
                    std::fprintf(stderr, " %s", s.c_str());
                std::fprintf(stderr, "\n");
                std::exit(2);
            }
            online_ = std::make_unique<obs::OnlineConformance>(*suite);
        }
        threads_ = static_cast<std::size_t>(args_.get_int(
            "threads", static_cast<std::int64_t>(exec::hardware_threads())));
        exec::ThreadPool::set_global_thread_count(threads_);
    }

    BenchMain(const BenchMain&) = delete;
    BenchMain& operator=(const BenchMain&) = delete;

    ~BenchMain() { flush(); }

    const CliArgs& args() const noexcept { return args_; }
    const std::string& name() const noexcept { return name_; }
    std::uint64_t seed() const noexcept { return seed_; }
    std::size_t repeat() const noexcept { return repeat_; }
    std::size_t threads() const noexcept { return threads_; }

    /// The shared hardware-counter set (opened on first use; inert when
    /// perf_event_open is unavailable — see obs/perfctr.hpp).
    obs::PerfCounterSet& perf() {
        if (!perf_) perf_ = std::make_unique<obs::PerfCounterSet>();
        return *perf_;
    }

    /// Run-provenance manifest for this invocation, with the obs counter
    /// snapshot taken at call time. Embed `.to_json(indent)` into any
    /// machine-readable output the bench writes. Carries every conformance
    /// verdict registered so far (via --expect or add_conformance), so call
    /// it after the suites have finished.
    obs::RunManifest manifest() {
        obs::RunManifest m =
            obs::RunManifest::collect(name_, seed_, threads_, warmup_, repeat_);
        m.conformance = conformance_;
        if (!timeseries_out_.empty() && !timeseries_.empty())
            m.timeseries_out = timeseries_out_;
        return m;
    }

    /// Register an expectation-suite verdict for the manifest's
    /// "conformance" array. For benches that run their own per-scenario
    /// checkers (obs::OnlineConformance / obs::check_events) instead of the
    /// whole-run --expect flag. Prints the verdict and remembers failures
    /// for conformance_failed().
    void add_conformance(const obs::ConformanceReport& report,
                         std::string scenario = "") {
        obs::RunManifest::ConformanceEntry entry;
        entry.suite = report.suite;
        entry.scenario = std::move(scenario);
        entry.rules = report.rules;
        entry.events = report.events_seen;
        entry.violations = report.total_violations;
        entry.partial = report.partial;
        for (const obs::Violation& v : report.violations)
            entry.details.push_back("[" + v.rule + "] " + v.message);
        conformance_.push_back(std::move(entry));
        if (!report.ok()) conformance_failed_ = true;
        std::fprintf(stderr, "%s\n", report.render_text().c_str());
    }

    /// Finish the --expect suite (idempotent; no-op without the flag) and
    /// report whether ANY registered suite — --expect or add_conformance —
    /// saw violations. Benches that want conformance in their exit code
    /// end with `return bm.finish_expectation() ? 1 : 0;`; flush() calls
    /// this too, so the manifest carries the verdict either way.
    bool finish_expectation() {
        if (online_) {
            add_conformance(online_->finish());
            online_.reset();
        }
        return conformance_failed_;
    }

    /// True once any registered suite reported violations.
    bool conformance_failed() const noexcept { return conformance_failed_; }

    /// The bench's block-granular time series: feed it with capture()/
    /// record() during the run and --timeseries-out exports it at exit.
    obs::TimeSeries& timeseries() noexcept { return timeseries_; }
    const std::string& timeseries_out() const noexcept { return timeseries_out_; }

    /// Warmup/repeat driver: `body(seed)` runs `warmup` times with metrics
    /// discarded afterwards, then `repeat` measured times with distinct
    /// seeds, each measured repeat bracketed by a PerfRegion and an obs
    /// snapshot so per-repeat counters/readings are available afterwards.
    /// Benches with a single natural pass can ignore this and just rely on
    /// the destructor's export.
    void run(const std::function<void(std::uint64_t)>& body) {
        for (std::size_t w = 0; w < warmup_; ++w) body(seed_ + w);
        if (warmup_ > 0) {
            obs::registry().reset();
            obs::TraceRecorder::global().clear();
        }
        repeat_seconds_.clear();
        repeat_perf_.clear();
        repeat_metrics_.clear();
        for (std::size_t r = 0; r < repeat_; ++r) {
            const obs::MetricsSnapshot before = obs::registry().snapshot();
            obs::PerfReading reading;
            const std::uint64_t t0 = obs::clock().now_ns();
            {
                const obs::PerfRegion region(perf(), &reading);
                body(seed_ + warmup_ + r);
            }
            const std::uint64_t t1 = obs::clock().now_ns();
            repeat_seconds_.push_back(
                t1 >= t0 ? static_cast<double>(t1 - t0) / 1e9 : 0.0);
            repeat_perf_.push_back(reading);
            repeat_metrics_.push_back(
                obs::delta(obs::registry().snapshot(), before));
        }
    }

    /// Per-measured-repeat records from the last run() (empty before).
    const std::vector<double>& repeat_seconds() const noexcept {
        return repeat_seconds_;
    }
    const std::vector<obs::PerfReading>& repeat_perf() const noexcept {
        return repeat_perf_;
    }
    const std::vector<obs::MetricsSnapshot>& repeat_metrics() const noexcept {
        return repeat_metrics_;
    }

    /// Write --metrics-out/--trace-out/--manifest-out files; idempotent,
    /// called at exit.
    void flush() {
        if (flushed_) return;
        flushed_ = true;
        finish_expectation();  // verdict must precede the manifest write
        if (!events_out_.empty()) {
            if (obs::write_events_jsonl(events_out_))
                std::fprintf(stderr, "events: %s\n", events_out_.c_str());
            else
                std::fprintf(stderr, "events: FAILED to write %s\n",
                             events_out_.c_str());
        }
        if (!timeseries_out_.empty() && !timeseries_.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(
                std::filesystem::path(timeseries_out_).parent_path(), ec);
            const bool csv = timeseries_out_.size() >= 4 &&
                             timeseries_out_.compare(timeseries_out_.size() - 4,
                                                     4, ".csv") == 0;
            const bool ok = csv ? timeseries_.write_csv(timeseries_out_)
                                : timeseries_.write_jsonl(timeseries_out_);
            std::fprintf(stderr, "timeseries: %s%s\n", timeseries_out_.c_str(),
                         ok ? "" : " (FAILED to write)");
        }
        if (!metrics_out_.empty()) {
            if (obs::registry().write_json(metrics_out_))
                note("metrics: " + metrics_out_);
            else
                note("metrics: FAILED to write " + metrics_out_);
        }
        if (!trace_out_.empty()) {
            if (obs::TraceRecorder::global().write_json(trace_out_))
                note("trace: " + trace_out_ + " (open in chrome://tracing or Perfetto)");
            else
                note("trace: FAILED to write " + trace_out_);
        }
        if (!manifest_out_.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(
                std::filesystem::path(manifest_out_).parent_path(), ec);
            std::ofstream out(manifest_out_);
            if (out) {
                out << manifest().to_json() << "\n";
                // stderr, not stdout: figure stdout must stay byte-identical
                // to pre-manifest builds.
                std::fprintf(stderr, "manifest: %s\n", manifest_out_.c_str());
            } else {
                std::fprintf(stderr, "manifest: FAILED to write %s\n",
                             manifest_out_.c_str());
            }
        }
    }

private:
    void reject_unknown_flags(const std::vector<std::string_view>& extra_keys) const {
        static constexpr std::string_view kSharedKeys[] = {
            "seed", "threads", "warmup", "repeat", "obs", "progress",
            "metrics-out", "trace-out", "manifest-out", "expect",
            "events-out", "timeseries-out", "help"};
        // google-benchmark binaries (micro_crypto) construct BenchMain
        // before benchmark::Initialize strips its flags, so --benchmark_*
        // must pass through untouched.
        static constexpr std::string_view kSharedPrefixes[] = {"benchmark_"};

        std::vector<std::string_view> known(std::begin(kSharedKeys),
                                            std::end(kSharedKeys));
        known.insert(known.end(), extra_keys.begin(), extra_keys.end());
        const auto unknown = args_.unknown_keys(known, kSharedPrefixes);
        if (unknown.empty() && !args_.has("help")) return;

        std::FILE* out = unknown.empty() ? stdout : stderr;
        for (const std::string& key : unknown)
            std::fprintf(out, "%s: unknown option --%s\n", name_.c_str(), key.c_str());
        std::fprintf(out, "usage: %s [--key=value ...]\n  known options:", name_.c_str());
        for (std::string_view key : known)
            std::fprintf(out, " --%.*s", static_cast<int>(key.size()), key.data());
        std::fprintf(out, "\n  (see bench/bench_common.hpp for semantics)\n");
        std::exit(unknown.empty() ? 0 : 2);
    }

    CliArgs args_;
    std::string name_;
    std::uint64_t seed_ = 1;
    std::size_t warmup_ = 0;
    std::size_t repeat_ = 1;
    std::size_t threads_ = 1;
    std::string metrics_out_;
    std::string trace_out_;
    std::string manifest_out_;
    std::string expect_;
    std::string events_out_;
    std::string timeseries_out_;
    obs::TimeSeries timeseries_;
    std::unique_ptr<obs::OnlineConformance> online_;
    std::vector<obs::RunManifest::ConformanceEntry> conformance_;
    bool conformance_failed_ = false;
    std::unique_ptr<obs::PerfCounterSet> perf_;
    std::vector<double> repeat_seconds_;
    std::vector<obs::PerfReading> repeat_perf_;
    std::vector<obs::MetricsSnapshot> repeat_metrics_;
    bool flushed_ = false;
};

}  // namespace mcauth::bench

// Ablation A3 — §5 constructors vs hand-designed schemes at equal targets:
// how many edges (i.e. how much per-packet overhead) does each construction
// spend to guarantee the same q_min?
//
// Expected: the offset-set search and the greedy designer undercut uniform
// EMSS E_{2,1} for modest targets (they only add redundancy where the
// recurrence says it is needed); the probabilistic construction is the
// least edge-efficient but trivially online.
#include "bench_common.hpp"
#include "design/optimizer.hpp"

using namespace mcauth;

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "abl_designers");
    bench::note("[abl3] §5 designers vs EMSS/AC at matched q_min targets (recurrence metric)");
    SchemeParams params;
    Rng rng(21);

    struct GoalCase {
        std::size_t n;
        double p;
        double target;
    } goals[] = {{128, 0.1, 0.90}, {128, 0.2, 0.90}, {128, 0.3, 0.80}, {256, 0.2, 0.95}};

    for (const auto& gc : goals) {
        DesignGoal goal;
        goal.n = gc.n;
        goal.p = gc.p;
        goal.target_q_min = gc.target;
        bench::section("n=" + std::to_string(gc.n) + " p=" + TablePrinter::num(gc.p, 2) +
                       " target=" + TablePrinter::num(gc.target, 2));
        TablePrinter table({"design", "edges", "hashes/pkt", "q_min(rec)", "q_min(mc)",
                            "delay(s)", "msgbuf", "meets"});
        for (const auto& r : compare_designs(goal, params, rng, 2000)) {
            table.add_row({r.name, std::to_string(r.edges),
                           TablePrinter::num(r.hashes_per_packet, 3),
                           TablePrinter::num(r.q_min_recurrence, 4),
                           TablePrinter::num(r.q_min_monte_carlo, 4),
                           TablePrinter::num(r.max_receiver_delay, 3),
                           std::to_string(r.message_buffer_span),
                           r.meets_target ? "yes" : "no"});
        }
        bench::emit(table, "abl3_n" + std::to_string(gc.n) + "_p" +
                               TablePrinter::num(gc.p, 2));
    }
    bench::note("\nreading: compare 'edges' across rows that meet the target; the q_min(mc)"
                "\ncolumn shows how much of each design's margin is recurrence optimism.");
    return 0;
}

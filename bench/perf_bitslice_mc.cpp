// Bit-sliced vs scalar Monte-Carlo throughput. The bit-sliced engine
// (exec/bitslice.hpp, DESIGN.md §8) packs 64 trials into each machine word;
// this bench measures what that buys on the engines' own workloads —
//
//   * monte_carlo_auth_prob on EMSS E_{2,1} at n = 128 under i.i.d. loss
//     (the headline: sampling + propagation both collapse to word ops),
//   * the same graph under bursty Gilbert-Elliott loss (per-lane chain
//     state; sampling stays word-at-a-time but not bulk), and
//   * monte_carlo_tesla at n = 200 (word-parallel loss + per-lane delay
//     draws),
//
// each at 1/2/4/8 pool threads for BOTH engines. Every (engine, threads)
// cell must produce a bit-identical q_min checksum — the per-trial stream
// contract (DESIGN.md §8) — and the bench fails loudly if any differs.
//
// Results land in bench_out/BENCH_bitslice_mc.json in the schema-v2
// envelope (DESIGN.md §9): a top-level "manifest" object records where the
// numbers came from, every cell keeps its per-repeat times in
// "seconds_repeats" (seconds = min over repeats, the number the
// bench_compare gate uses, with the spread widening the tolerance), and
// the obs counter deltas of the best repeat ride along per cell. Each cell
// runs max(2, --repeat) times.
//
// Note: on machines with fewer hardware threads than the sweep's lane
// counts the extra lanes time-slice, so scaling columns saturate at the
// core count — the checksum comparisons are meaningful regardless.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/authprob.hpp"
#include "core/tesla.hpp"
#include "core/topologies.hpp"
#include "exec/bitslice.hpp"
#include "exec/sharded.hpp"
#include "exec/thread_pool.hpp"
#include "net/delay.hpp"

using namespace mcauth;

namespace {

struct WorkloadResult {
    std::size_t trials = 0;
    double seconds = 0;
    double checksum = 0;  // sum over per-vertex q (bit-identity probe)
};

double now_seconds() {
    using Clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
}

double profile_checksum(const std::vector<double>& q) {
    double sum = 0;
    for (double v : q)
        if (v == v) sum += v;  // NaN-safe: unresolved vertices excluded
    return sum;
}

WorkloadResult run_authprob_bernoulli(std::uint64_t seed, McEngine engine) {
    constexpr std::size_t kTrials = 200000;
    const auto dg = make_emss(128, 2, 1);
    const BernoulliLoss loss(0.2);
    WorkloadResult out;
    out.trials = kTrials;
    const double t0 = now_seconds();
    const auto mc = monte_carlo_auth_prob(dg, loss, seed, kTrials, engine);
    out.seconds = now_seconds() - t0;
    out.checksum = profile_checksum(mc.q);
    return out;
}

WorkloadResult run_authprob_gilbert(std::uint64_t seed, McEngine engine) {
    constexpr std::size_t kTrials = 100000;
    const auto dg = make_emss(128, 2, 1);
    const auto loss = GilbertElliottLoss::from_rate_and_burst(0.2, 4.0);
    WorkloadResult out;
    out.trials = kTrials;
    const double t0 = now_seconds();
    const auto mc = monte_carlo_auth_prob(dg, loss, seed, kTrials, engine);
    out.seconds = now_seconds() - t0;
    out.checksum = profile_checksum(mc.q);
    return out;
}

WorkloadResult run_tesla(std::uint64_t seed, McEngine engine) {
    constexpr std::size_t kTrials = 50000;
    TeslaParams params;
    params.n = 200;
    params.t_disclose = 1.0;
    params.mu = 0.6;
    params.sigma = 0.25;
    params.p = 0.2;
    const BernoulliLoss loss(params.p);
    const GaussianDelay delay(params.mu, params.sigma);
    WorkloadResult out;
    out.trials = kTrials;
    const double t0 = now_seconds();
    const auto mc = monte_carlo_tesla(params, loss, delay, seed, kTrials, engine);
    out.seconds = now_seconds() - t0;
    out.checksum = profile_checksum(mc.q);
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "perf_bitslice_mc");
    bench::note("[perf] Bit-sliced vs scalar Monte-Carlo engines (DESIGN.md §8)");
    bench::note("hardware threads: " + std::to_string(exec::hardware_threads()));

    struct Workload {
        const char* name;
        WorkloadResult (*run)(std::uint64_t, McEngine);
    };
    const Workload workloads[] = {
        {"authprob_bernoulli_n128", &run_authprob_bernoulli},
        {"authprob_gilbert_elliott_n128", &run_authprob_gilbert},
        {"tesla_gaussian_n200", &run_tesla},
    };
    const std::size_t thread_counts[] = {1, 2, 4, 8};
    // Best-of absorbs scheduler noise; the full repeat vector is kept so
    // bench_compare can widen its tolerance by the observed spread.
    const std::size_t repeats = std::max<std::size_t>(2, bm.repeat());

    struct Record {
        const char* workload;
        const char* engine;
        std::size_t threads;
        WorkloadResult r;                   // best (min-seconds) repeat
        std::vector<double> seconds_repeats;
        obs::MetricsSnapshot counters;      // obs counter delta, best repeat
    };
    std::vector<Record> records;
    struct Speedup {
        const char* workload;
        double factor;
    };
    std::vector<Speedup> speedups;
    bool identical = true;

    for (const Workload& w : workloads) {
        bench::section(w.name);
        TablePrinter table(
            {"engine", "threads", "trials", "seconds", "trials/sec", "vs scalar@1"});
        double scalar_serial_rate = 0;
        double reference_checksum = 0;
        bool have_reference = false;
        double bitsliced_serial_rate = 0;
        for (McEngine engine : {McEngine::kScalar, McEngine::kBitsliced}) {
            const char* engine_name = engine == McEngine::kScalar ? "scalar" : "bitsliced";
            for (std::size_t t : thread_counts) {
                exec::ThreadPool::set_global_thread_count(t);
                Record rec{w.name, engine_name, t, {}, {}, {}};
                for (std::size_t rep = 0; rep < repeats; ++rep) {
                    const obs::MetricsSnapshot before = obs::registry().snapshot();
                    const WorkloadResult attempt = w.run(bm.seed(), engine);
                    obs::MetricsSnapshot used =
                        obs::delta(obs::registry().snapshot(), before);
                    rec.seconds_repeats.push_back(attempt.seconds);
                    if (rep == 0) {
                        rec.r = attempt;
                        rec.counters = std::move(used);
                        continue;
                    }
                    if (attempt.checksum != rec.r.checksum) identical = false;
                    if (attempt.seconds < rec.r.seconds) {
                        rec.r = attempt;
                        rec.counters = std::move(used);
                    }
                }
                const WorkloadResult& r = rec.r;
                const double rate =
                    r.seconds > 0 ? static_cast<double>(r.trials) / r.seconds : 0.0;
                if (!have_reference) {
                    reference_checksum = r.checksum;
                    have_reference = true;
                } else if (r.checksum != reference_checksum) {
                    identical = false;
                    bench::note(std::string("BIT-IDENTITY VIOLATION: ") + engine_name +
                                " threads=" + std::to_string(t));
                }
                if (t == 1 && engine == McEngine::kScalar) scalar_serial_rate = rate;
                if (t == 1 && engine == McEngine::kBitsliced) bitsliced_serial_rate = rate;
                table.add_row(
                    {engine_name, std::to_string(t), std::to_string(r.trials),
                     TablePrinter::num(r.seconds, 3), TablePrinter::num(rate, 0),
                     TablePrinter::num(
                         scalar_serial_rate > 0 ? rate / scalar_serial_rate : 0.0, 2)});
                records.push_back(std::move(rec));
            }
        }
        const double factor =
            scalar_serial_rate > 0 ? bitsliced_serial_rate / scalar_serial_rate : 0.0;
        speedups.push_back({w.name, factor});
        bench::note("single-thread speedup: " + TablePrinter::num(factor, 1) + "x");
        bench::emit(table, std::string("perf_bitslice_mc_") + w.name);
    }

    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    const char* path = "bench_out/BENCH_bitslice_mc.json";
    if (std::FILE* f = std::fopen(path, "w")) {
        std::fprintf(f, "{\n  \"schema_version\": %d,\n",
                     obs::RunManifest::kSchemaVersion);
        std::fprintf(f, "  \"bench\": \"perf_bitslice_mc\",\n");
        std::fprintf(f, "  \"seed\": %llu,\n",
                     static_cast<unsigned long long>(bm.seed()));
        std::fprintf(f, "  \"hardware_threads\": %zu,\n", exec::hardware_threads());
        std::fprintf(f, "  \"repeats\": %zu,\n", repeats);
        std::fprintf(f, "  \"deterministic_across_thread_counts\": %s,\n",
                     identical ? "true" : "false");
        std::fprintf(f, "  \"cross_engine_identical\": %s,\n",
                     identical ? "true" : "false");
        std::fprintf(f, "  \"manifest\": %s,\n", bm.manifest().to_json(2).c_str());
        std::fprintf(f, "  \"single_thread_speedup\": {\n");
        for (std::size_t i = 0; i < speedups.size(); ++i)
            std::fprintf(f, "    \"%s\": %.2f%s\n", speedups[i].workload,
                         speedups[i].factor, i + 1 < speedups.size() ? "," : "");
        std::fprintf(f, "  },\n");
        std::fprintf(f, "  \"results\": [\n");
        for (std::size_t i = 0; i < records.size(); ++i) {
            const Record& rec = records[i];
            const double rate =
                rec.r.seconds > 0 ? static_cast<double>(rec.r.trials) / rec.r.seconds
                                  : 0.0;
            std::fprintf(f,
                         "    {\"workload\": \"%s\", \"engine\": \"%s\", "
                         "\"threads\": %zu, \"trials\": %zu, \"seconds\": %.6f,\n"
                         "     \"seconds_repeats\": [",
                         rec.workload, rec.engine, rec.threads, rec.r.trials,
                         rec.r.seconds);
            for (std::size_t s = 0; s < rec.seconds_repeats.size(); ++s)
                std::fprintf(f, "%s%.6f", s ? ", " : "", rec.seconds_repeats[s]);
            std::fprintf(f,
                         "],\n     \"trials_per_sec\": %.1f, \"qmin_checksum\": %.17g,\n"
                         "     \"counters\": {",
                         rate, rec.r.checksum);
            for (std::size_t c = 0; c < rec.counters.counters.size(); ++c)
                std::fprintf(f, "%s\"%s\": %llu", c ? ", " : "",
                             obs::json_escape(rec.counters.counters[c].first).c_str(),
                             static_cast<unsigned long long>(
                                 rec.counters.counters[c].second));
            std::fprintf(f, "}}%s\n", i + 1 < records.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        bench::note(std::string("\njson: ") + path);
    } else {
        bench::note(std::string("\njson: FAILED to write ") + path);
    }

    if (!identical) {
        bench::note("RESULT: FAIL — engines or thread counts disagreed");
        return 1;
    }
    bench::note("RESULT: OK — scalar and bit-sliced checksums bit-identical at "
                "1/2/4/8 threads");
    return 0;
}

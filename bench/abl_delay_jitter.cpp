// Ablation A7 — the random component of receiver delay (the full Eq. 4).
//
// compute_metrics gives the deterministic pacing wait; on a jittery network
// there is also a reordering component: even Rohatgi's zero-delay chain
// waits when a needed earlier packet arrives late. We evaluate the exact
// per-packet completion-time distribution on the dependence-graph
// (core/delay_analysis) across jitter levels.
//
// Expected: sign-first chains (deterministic delay 0) acquire a delay that
// grows with sigma; sign-last schemes are dominated by the block-length
// wait and barely notice jitter; the p95/mean gap widens with sigma.
#include "bench_common.hpp"
#include "core/delay_analysis.hpp"
#include "core/topologies.hpp"

using namespace mcauth;

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "abl_delay_jitter");
    bench::note("[abl7] Receiver-delay distribution vs network jitter; n = 64, "
                "T_transmit = 10 ms, mean path delay 50 ms");
    SchemeParams params;
    params.t_transmit = 0.01;

    TablePrinter table({"scheme", "sigma(ms)", "det eq4 max(s)", "mean worst(s)",
                        "p95 worst(s)"});
    Rng rng(71);
    struct Case {
        const char* name;
        DependenceGraph dg;
    } cases[] = {{"rohatgi", make_rohatgi(64)},
                 {"emss(2,1)", make_emss(64, 2, 1)},
                 {"emss(2,8)", make_emss(64, 2, 8)},
                 {"ac(3,3)", make_augmented_chain(64, 3, 3)}};

    for (auto& c : cases) {
        const auto metrics = compute_metrics(c.dg, params);
        for (double sigma_ms : {0.0, 5.0, 20.0, 50.0}) {
            GaussianDelay jitter(0.05, sigma_ms / 1000.0);
            const auto dist =
                receiver_delay_distribution(c.dg, params, jitter, rng, 1200);
            table.add_row({c.name, TablePrinter::num(sigma_ms, 0),
                           TablePrinter::num(metrics.max_receiver_delay, 3),
                           TablePrinter::num(dist.worst_mean, 3),
                           TablePrinter::num(dist.worst_p95, 3)});
        }
    }
    bench::emit(table, "abl7");
    bench::note("\nreading: rohatgi's rows rise from 0 with sigma (pure reordering"
                "\ndelay); the sign-last schemes stay pinned near their deterministic"
                "\nblock wait — jitter is second-order once you already wait for P_sign.");
    return 0;
}

// Figure 9: close-up of the three loss-tolerant schemes (TESLA, EMSS
// E_{2,1}, AC C_{3,3}) as the block size n varies, at p = 0.1 and p = 0.5.
//
// Expected shape (paper): all three are nearly flat in n (their q_min is
// governed by local structure / the (1-p) factor, not depth); EMSS and AC
// are nearly indistinguishable; at p = 0.5 TESLA clearly dominates.
#include "bench_common.hpp"
#include "core/authprob.hpp"
#include "core/tesla.hpp"
#include "core/topologies.hpp"

using namespace mcauth;

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "fig09_blocksize_closeup");
    bench::note("[fig09] Close-up: q_min vs n for TESLA / EMSS / AC at p = 0.1 and 0.5");
    for (double p : {0.1, 0.5}) {
        bench::section("p = " + TablePrinter::num(p, 1));
        TablePrinter table({"n", "tesla", "emss(2,1)", "ac(3,3)", "|emss-ac|"});
        for (std::size_t n : {100u, 200u, 400u, 800u, 1600u, 3200u}) {
            TeslaParams params;
            params.n = n;
            params.t_disclose = 1.0;
            params.mu = 0.2;
            params.sigma = 0.1;
            params.p = p;
            const double tesla = analyze_tesla(params).q_min;
            const double emss = recurrence_auth_prob(make_emss(n, 2, 1), p).q_min;
            const double ac =
                recurrence_auth_prob(make_augmented_chain(n, 3, 3), p).q_min;
            table.add_row({std::to_string(n), TablePrinter::num(tesla, 4),
                           TablePrinter::num(emss, 4), TablePrinter::num(ac, 4),
                           TablePrinter::num(std::abs(emss - ac), 4)});
        }
        bench::emit(table, "fig09_p" + TablePrinter::num(p, 1));
    }
    bench::note("\nshape check: columns are flat in n; |emss-ac| stays small (the paper's"
                "\nexplanation: both give each packet two links, and Fig. 7 shows link"
                "\nplacement d barely matters); at p=0.5 the tesla column dominates.");
    return 0;
}

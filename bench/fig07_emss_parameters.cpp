// Figure 7: EMSS E_{m,d} — q_min against m (number of hash links per
// packet) and d (their separation) at n = 1000, p = 0.1 / 0.3 / 0.5.
//
// Expected shape (paper): q_min saturates in m at a small value (2-4): more
// links than that buy little. And q_min is much LESS sensitive to d — only
// d beyond ~20% of n moves it visibly (links overshooting toward the root
// clamp and shorten paths).
//
// Both sub-sweeps build a 1000-vertex graph per cell, so the cells are
// fanned across the thread pool by SweepRunner (index-order results:
// byte-identical for any --threads).
#include "bench_common.hpp"
#include "core/authprob.hpp"
#include "core/topologies.hpp"
#include "exec/sweep.hpp"

using namespace mcauth;

namespace {

struct Cell {
    double p;
    std::size_t m, d;
};

std::vector<double> sweep_emss(const std::vector<Cell>& grid, std::size_t n) {
    const exec::SweepRunner sweep;
    return sweep.map_grid<double>(grid, [&](const Cell& c, std::size_t) {
        return recurrence_auth_prob(make_emss(n, c.m, c.d), c.p).q_min;
    });
}

}  // namespace

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "fig07_emss_parameters");
    bench::note("[fig07] EMSS E_{m,d}: q_min vs m (at d=1) and vs d (at m=2); n = 1000");
    const std::size_t kN = 1000;
    const double losses[] = {0.1, 0.3, 0.5};

    bench::section("q_min vs m (d = 1)");
    {
        const std::size_t m_values[] = {1, 2, 3, 4, 5, 6, 8};
        std::vector<Cell> grid;
        for (double p : losses)
            for (std::size_t m : m_values) grid.push_back({p, m, 1});
        const auto q_min = sweep_emss(grid, kN);

        std::vector<std::string> header{"p\\m"};
        for (std::size_t m : m_values) header.push_back(std::to_string(m));
        TablePrinter table(header);
        std::size_t i = 0;
        for (double p : losses) {
            std::vector<std::string> row{TablePrinter::num(p, 1)};
            for (std::size_t m = 0; m < std::size(m_values); ++m)
                row.push_back(TablePrinter::num(q_min[i++], 4));
            table.add_row(row);
        }
        bench::emit(table, "fig07_vs_m");
    }

    bench::section("q_min vs d (m = 2)");
    {
        const std::size_t d_values[] = {1, 2, 5, 10, 20, 50, 100, 200, 300, 450};
        std::vector<Cell> grid;
        for (double p : losses)
            for (std::size_t d : d_values) grid.push_back({p, 2, d});
        const auto q_min = sweep_emss(grid, kN);

        std::vector<std::string> header{"p\\d"};
        for (std::size_t d : d_values) header.push_back(std::to_string(d));
        TablePrinter table(header);
        std::size_t i = 0;
        for (double p : losses) {
            std::vector<std::string> row{TablePrinter::num(p, 1)};
            for (std::size_t d = 0; d < std::size(d_values); ++d)
                row.push_back(TablePrinter::num(q_min[i++], 4));
            table.add_row(row);
        }
        bench::emit(table, "fig07_vs_d");
    }
    bench::note("\nshape check: the m-table saturates by m = 2-4; the d-table stays nearly"
                "\nflat until d is a large fraction of n (the paper's ~20% remark). Since"
                "\nreceiver buffering grows with d, small d is the free choice.");
    return 0;
}

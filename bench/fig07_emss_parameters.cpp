// Figure 7: EMSS E_{m,d} — q_min against m (number of hash links per
// packet) and d (their separation) at n = 1000, p = 0.1 / 0.3 / 0.5.
//
// Expected shape (paper): q_min saturates in m at a small value (2-4): more
// links than that buy little. And q_min is much LESS sensitive to d — only
// d beyond ~20% of n moves it visibly (links overshooting toward the root
// clamp and shorten paths).
#include "bench_common.hpp"
#include "core/authprob.hpp"
#include "core/topologies.hpp"

using namespace mcauth;

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "fig07_emss_parameters");
    bench::note("[fig07] EMSS E_{m,d}: q_min vs m (at d=1) and vs d (at m=2); n = 1000");
    const std::size_t kN = 1000;

    bench::section("q_min vs m (d = 1)");
    {
        const std::size_t m_values[] = {1, 2, 3, 4, 5, 6, 8};
        std::vector<std::string> header{"p\\m"};
        for (std::size_t m : m_values) header.push_back(std::to_string(m));
        TablePrinter table(header);
        for (double p : {0.1, 0.3, 0.5}) {
            std::vector<std::string> row{TablePrinter::num(p, 1)};
            for (std::size_t m : m_values)
                row.push_back(
                    TablePrinter::num(recurrence_auth_prob(make_emss(kN, m, 1), p).q_min, 4));
            table.add_row(row);
        }
        bench::emit(table, "fig07_vs_m");
    }

    bench::section("q_min vs d (m = 2)");
    {
        const std::size_t d_values[] = {1, 2, 5, 10, 20, 50, 100, 200, 300, 450};
        std::vector<std::string> header{"p\\d"};
        for (std::size_t d : d_values) header.push_back(std::to_string(d));
        TablePrinter table(header);
        for (double p : {0.1, 0.3, 0.5}) {
            std::vector<std::string> row{TablePrinter::num(p, 1)};
            for (std::size_t d : d_values)
                row.push_back(
                    TablePrinter::num(recurrence_auth_prob(make_emss(kN, 2, d), p).q_min, 4));
            table.add_row(row);
        }
        bench::emit(table, "fig07_vs_d");
    }
    bench::note("\nshape check: the m-table saturates by m = 2-4; the d-table stays nearly"
                "\nflat until d is a large fraction of n (the paper's ~20% remark). Since"
                "\nreceiver buffering grows with d, small d is the free choice.");
    return 0;
}

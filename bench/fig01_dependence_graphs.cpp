// Figure 1: the dependence-graphs of the analyzed schemes (Rohatgi's chain,
// the Wong-Lam authentication tree, EMSS E_{2,1}, augmented chain C_{a,b}),
// rendered as adjacency lists + Graphviz DOT, with Definition-1 metadata.
//
// Expected shape (paper): Rohatgi is a single path rooted at the FIRST
// packet; the tree is a root star; EMSS is a 2-regular braid rooted at the
// LAST packet; AC shows its two-level (chain + inserted) structure.
#include <cstdio>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/topologies.hpp"
#include "graph/dot.hpp"

using namespace mcauth;

namespace {

void show(const DependenceGraph& dg) {
    bench::section("dependence-graph: " + dg.scheme_name());
    std::printf("vertices=%zu edges=%zu valid=%s  (P_sign = vertex 0, sent at position %u)\n",
                dg.packet_count(), dg.graph().edge_count(),
                dg.is_valid() ? "yes" : "no", dg.send_pos(DependenceGraph::root()));

    std::printf("%s", to_ascii_adjacency(dg.graph(), [&](VertexId v) {
                    return "P" + std::to_string(v) + "@" + std::to_string(dg.send_pos(v));
                }).c_str());

    DotOptions opts;
    opts.graph_name = "fig1";
    opts.vertex_label = [&](VertexId v) { return "P" + std::to_string(v); };
    opts.emphasize = [](VertexId v) { return v == DependenceGraph::root(); };
    opts.edge_label = [&](VertexId u, VertexId v) { return std::to_string(dg.label(u, v)); };
    std::printf("--- dot ---\n%s", to_dot(dg.graph(), opts).c_str());

    const GraphMetrics m = compute_metrics(dg, SchemeParams{});
    std::printf("hashes/packet=%.3f  max-delay=%.3fs  hash-buffer=%zu  msg-buffer=%zu\n",
                m.hashes_per_packet, m.max_receiver_delay, m.hash_buffer_span,
                m.message_buffer_span);
}

}  // namespace

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "fig01_dependence_graphs");
    bench::note("[fig01] Dependence-graphs of the four §2 schemes (small n for legibility)");
    show(make_rohatgi(8));
    show(make_auth_tree(8));
    show(make_emss(8, 2, 1));
    show(make_augmented_chain(12, 2, 2));
    show(make_augmented_chain(16, 3, 3));
    return 0;
}

// Ablation A1: how good is the paper's independence recurrence (Eq. 8-10)?
//
// The recurrence multiplies per-predecessor failure probabilities as if the
// events were independent; when verification paths share interior vertices
// the events are positively correlated and the recurrence OVERESTIMATES
// q_i. We quantify against exhaustive enumeration (exact, small n) and
// Monte-Carlo (any n), with the Eq. 1 bounds alongside.
//
// Headline finding: Rohatgi (single path) is exact; AC's first level stays
// close; EMSS E_{2,1}'s q_min can be overestimated severely at high loss
// (rec -> fixed point ~0.82 at p=0.3 vs true ~0.4 and decaying with n).
// The paper's *comparative* conclusions survive because all chained
// schemes are evaluated with the same optimism.
//
// Rows are fanned across the thread pool by SweepRunner; each Monte-Carlo
// row derives its seed from (base seed, row index), so the tables are
// byte-identical for any --threads value.
#include <cmath>

#include "bench_common.hpp"
#include "core/authprob.hpp"
#include "core/topologies.hpp"
#include "exec/sharded.hpp"
#include "exec/sweep.hpp"

using namespace mcauth;

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "abl_recurrence_accuracy");
    bench::note("[abl1] Recurrence (paper) vs exact vs Monte-Carlo vs Eq.1 bounds");
    const exec::SweepRunner sweep;

    bench::section("small blocks (exact ground truth), n = 18");
    {
        struct Case {
            const char* name;
            DependenceGraph (*make)(std::size_t);
        };
        const Case cases[] = {
            {"rohatgi", +[](std::size_t n) { return make_rohatgi(n); }},
            {"emss(2,1)", +[](std::size_t n) { return make_emss(n, 2, 1); }},
            {"emss(3,1)", +[](std::size_t n) { return make_emss(n, 3, 1); }},
            {"ac(2,2)", +[](std::size_t n) { return make_augmented_chain(n, 2, 2); }}};
        const double losses[] = {0.1, 0.3, 0.5};

        struct Row {
            double p;
            const Case* c;
        };
        std::vector<Row> grid;
        for (double p : losses)
            for (const Case& c : cases) grid.push_back({p, &c});

        struct RowResult {
            double lower = 0, exact = 0, rec = 0, upper = 0;
        };
        const auto results =
            sweep.map_grid<RowResult>(grid, [](const Row& r, std::size_t) {
                const auto dg = r.c->make(18);
                RowResult out;
                out.exact = exact_auth_prob(dg, r.p).q_min;
                out.rec = recurrence_auth_prob(dg, r.p).q_min;
                const auto bounds = bounds_auth_prob(dg, r.p);
                out.lower = bounds.q_min_lower;
                out.upper = bounds.q_min_upper;
                return out;
            });

        TablePrinter table({"scheme", "p", "lower(eq1)", "exact", "recurrence", "upper(eq1)",
                            "rec-exact"});
        for (std::size_t i = 0; i < grid.size(); ++i) {
            const auto& r = results[i];
            table.add_row({grid[i].c->name, TablePrinter::num(grid[i].p, 1),
                           TablePrinter::num(r.lower, 4), TablePrinter::num(r.exact, 4),
                           TablePrinter::num(r.rec, 4), TablePrinter::num(r.upper, 4),
                           TablePrinter::num(r.rec - r.exact, 4)});
        }
        bench::emit(table, "abl1_small");
    }

    bench::section("paper-scale blocks (Monte-Carlo ground truth), n = 1000");
    {
        struct Case {
            const char* name;
            DependenceGraph (*make)(std::size_t);
        };
        const Case cases[] = {
            {"emss(2,1)", +[](std::size_t n) { return make_emss(n, 2, 1); }},
            {"emss(4,1)", +[](std::size_t n) { return make_emss(n, 4, 1); }},
            {"ac(3,3)", +[](std::size_t n) { return make_augmented_chain(n, 3, 3); }}};
        const double losses[] = {0.1, 0.3, 0.5};

        struct Row {
            double p;
            const Case* c;
        };
        std::vector<Row> grid;
        for (double p : losses)
            for (const Case& c : cases) grid.push_back({p, &c});

        struct RowResult {
            double rec = 0, mc = 0, hw = 0, hw_max = 0;
            bool rec_inside = false;  // recurrence within every vertex's error bar?
        };
        const std::uint64_t base_seed = bm.seed();
        const auto results =
            sweep.map_grid<RowResult>(grid, [&](const Row& r, std::size_t i) {
                const auto dg = r.c->make(1000);
                RowResult out;
                const auto rec = recurrence_auth_prob(dg, r.p);
                out.rec = rec.q_min;
                const BernoulliLoss loss(r.p);
                const auto mc = monte_carlo_auth_prob(
                    dg, loss, exec::derive_stream_seed(base_seed, i), 3000);
                out.mc = mc.q_min;
                out.hw = mc.q_min_halfwidth;
                // Per-vertex error bars: the widest 95% interval across the
                // profile, and whether the recurrence stays inside EVERY
                // vertex's interval (it shouldn't at high p — the
                // independence bias exceeds sampling noise).
                out.rec_inside = true;
                for (std::size_t v = 1; v < mc.q.size(); ++v) {
                    if (std::isnan(mc.q[v])) continue;
                    if (mc.halfwidth[v] > out.hw_max) out.hw_max = mc.halfwidth[v];
                    if (std::abs(rec.q[v] - mc.q[v]) > mc.halfwidth[v])
                        out.rec_inside = false;
                }
                return out;
            });

        TablePrinter table({"scheme", "p", "recurrence", "monte-carlo", "mc 95% hw",
                            "max hw(v)", "rec in bars", "rec-mc"});
        for (std::size_t i = 0; i < grid.size(); ++i) {
            const auto& r = results[i];
            table.add_row({grid[i].c->name, TablePrinter::num(grid[i].p, 1),
                           TablePrinter::num(r.rec, 4), TablePrinter::num(r.mc, 4),
                           TablePrinter::num(r.hw, 4), TablePrinter::num(r.hw_max, 4),
                           r.rec_inside ? "yes" : "no",
                           TablePrinter::num(r.rec - r.mc, 4)});
        }
        bench::emit(table, "abl1_large");
    }
    bench::note("\nreading: rec-exact == 0 for rohatgi (exact where paths are nested);"
                "\npositive and growing with p for EMSS/AC (shared-vertex correlation)."
                "\nEq. 1 bounds always sandwich the exact value.");
    return 0;
}

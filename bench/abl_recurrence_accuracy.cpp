// Ablation A1: how good is the paper's independence recurrence (Eq. 8-10)?
//
// The recurrence multiplies per-predecessor failure probabilities as if the
// events were independent; when verification paths share interior vertices
// the events are positively correlated and the recurrence OVERESTIMATES
// q_i. We quantify against exhaustive enumeration (exact, small n) and
// Monte-Carlo (any n), with the Eq. 1 bounds alongside.
//
// Headline finding: Rohatgi (single path) is exact; AC's first level stays
// close; EMSS E_{2,1}'s q_min can be overestimated severely at high loss
// (rec -> fixed point ~0.82 at p=0.3 vs true ~0.4 and decaying with n).
// The paper's *comparative* conclusions survive because all chained
// schemes are evaluated with the same optimism.
#include "bench_common.hpp"
#include "core/authprob.hpp"
#include "core/topologies.hpp"

using namespace mcauth;

int main(int argc, char** argv) {
    bench::BenchMain bm(argc, argv, "abl_recurrence_accuracy");
    bench::note("[abl1] Recurrence (paper) vs exact vs Monte-Carlo vs Eq.1 bounds");

    bench::section("small blocks (exact ground truth), n = 18");
    {
        TablePrinter table({"scheme", "p", "lower(eq1)", "exact", "recurrence", "upper(eq1)",
                            "rec-exact"});
        Rng rng(1);
        for (double p : {0.1, 0.3, 0.5}) {
            struct Case {
                const char* name;
                DependenceGraph dg;
            } cases[] = {{"rohatgi", make_rohatgi(18)},
                         {"emss(2,1)", make_emss(18, 2, 1)},
                         {"emss(3,1)", make_emss(18, 3, 1)},
                         {"ac(2,2)", make_augmented_chain(18, 2, 2)}};
            for (auto& c : cases) {
                const auto exact = exact_auth_prob(c.dg, p);
                const auto rec = recurrence_auth_prob(c.dg, p);
                const auto bounds = bounds_auth_prob(c.dg, p);
                table.add_row({c.name, TablePrinter::num(p, 1),
                               TablePrinter::num(bounds.q_min_lower, 4),
                               TablePrinter::num(exact.q_min, 4),
                               TablePrinter::num(rec.q_min, 4),
                               TablePrinter::num(bounds.q_min_upper, 4),
                               TablePrinter::num(rec.q_min - exact.q_min, 4)});
            }
        }
        bench::emit(table, "abl1_small");
    }

    bench::section("paper-scale blocks (Monte-Carlo ground truth), n = 1000");
    {
        TablePrinter table(
            {"scheme", "p", "recurrence", "monte-carlo", "mc 95% hw", "rec-mc"});
        Rng rng(2);
        for (double p : {0.1, 0.3, 0.5}) {
            struct Case {
                const char* name;
                DependenceGraph dg;
            } cases[] = {{"emss(2,1)", make_emss(1000, 2, 1)},
                         {"emss(4,1)", make_emss(1000, 4, 1)},
                         {"ac(3,3)", make_augmented_chain(1000, 3, 3)}};
            for (auto& c : cases) {
                const auto rec = recurrence_auth_prob(c.dg, p);
                BernoulliLoss loss(p);
                const auto mc = monte_carlo_auth_prob(c.dg, loss, rng, 3000);
                table.add_row({c.name, TablePrinter::num(p, 1),
                               TablePrinter::num(rec.q_min, 4),
                               TablePrinter::num(mc.q_min, 4),
                               TablePrinter::num(mc.q_min_halfwidth, 4),
                               TablePrinter::num(rec.q_min - mc.q_min, 4)});
            }
        }
        bench::emit(table, "abl1_large");
    }
    bench::note("\nreading: rec-exact == 0 for rohatgi (exact where paths are nested);"
                "\npositive and growing with p for EMSS/AC (shared-vertex correlation)."
                "\nEq. 1 bounds always sandwich the exact value.");
    return 0;
}

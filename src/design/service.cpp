#include "design/service.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <limits>

#include "core/metrics.hpp"
#include "core/serialize.hpp"
#include "core/topologies.hpp"
#include "exec/bitslice.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace mcauth::design {

namespace {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Conservative ceiling quantization with an epsilon guard so exact
/// multiples of the step do not round up a cell from fp noise
/// (0.20 / 0.02 may evaluate to 10.000000000000002).
std::uint32_t quantize_up(double value, double step) noexcept {
    if (!(value > 0.0)) return 0;
    return static_cast<std::uint32_t>(std::ceil(value / step - 1e-9));
}

/// Same NaN-skipping minimum core/authprob.cpp uses (file-static there).
double min_over_non_root(const std::vector<double>& q) {
    double q_min = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t v = 1; v < q.size(); ++v) {
        if (std::isnan(q[v])) continue;
        if (std::isnan(q_min) || q[v] < q_min) q_min = q[v];
    }
    return q.size() <= 1 ? 1.0 : q_min;
}

DependenceGraph copy_with_name(const DependenceGraph& source, std::string name) {
    std::vector<std::uint32_t> pos(source.packet_count());
    for (VertexId v = 0; v < source.packet_count(); ++v) pos[v] = source.send_pos(v);
    DependenceGraph out(source.packet_count(), std::move(pos), std::move(name));
    for (const Edge& e : source.graph().edges()) out.add_dependence(e.from, e.to);
    return out;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
}

std::string format_double(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

}  // namespace

const char* design_method_name(DesignMethod method) noexcept {
    switch (method) {
        case DesignMethod::kGreedy: return "greedy";
        case DesignMethod::kGreedyChannel: return "greedy-channel";
        case DesignMethod::kOffsetSet: return "offset-set";
        case DesignMethod::kRandom: return "random";
    }
    return "unknown";
}

const char* design_source_name(DesignSource source) noexcept {
    switch (source) {
        case DesignSource::kFresh: return "fresh";
        case DesignSource::kCache: return "cache";
        case DesignSource::kFrontier: return "frontier";
    }
    return "unknown";
}

std::uint64_t DesignKey::hash() const noexcept {
    std::uint64_t h = 0x6d63617574686473ULL;  // "mcauthds"
    const auto mix = [&h](std::uint64_t v) { h = splitmix64(h ^ v); };
    mix(n);
    mix(static_cast<std::uint64_t>(method));
    mix(p_q);
    mix(burst_q);
    mix(target_q);
    mix(trials);
    mix(max_edges);
    mix(pinned_seed);
    return h;
}

std::uint64_t DesignKey::derived_seed() const noexcept {
    // One extra round decorrelates the seed stream from the hash-table
    // stream; the value is a pure function of the key, so every process in
    // a fleet derives the same seed for the same cell.
    return splitmix64(hash() ^ 0x64657369676e6564ULL);  // "designed"
}

std::string DesignKey::to_string() const {
    std::string out = design_method_name(method);
    out += "/n=" + std::to_string(n);
    out += "/p_q=" + std::to_string(p_q);
    out += "/burst_q=" + std::to_string(burst_q);
    out += "/target_q=" + std::to_string(target_q);
    out += "/trials=" + std::to_string(trials);
    out += "/max_edges=" + std::to_string(max_edges);
    if (pinned_seed != 0) out += "/seed=" + std::to_string(pinned_seed);
    return out;
}

bool identical(const DesignResult& a, const DesignResult& b) {
    return a.feasible == b.feasible && a.offsets == b.offsets &&
           a.edge_prob == b.edge_prob && to_text(a.graph) == to_text(b.graph);
}

// ------------------------------------------------------------------ Designer

Designer::Designer(DesignerOptions options) : options_(options) {
    MCAUTH_EXPECTS(options_.cache_capacity >= 1);
    MCAUTH_EXPECTS(options_.p_step > 0.0);
    MCAUTH_EXPECTS(options_.burst_step > 0.0);
    MCAUTH_EXPECTS(options_.target_step > 0.0);
}

DesignKey Designer::quantize(const DesignRequest& request) const {
    DesignKey key;
    key.n = static_cast<std::uint32_t>(request.goal.n);
    key.method = request.method;
    key.p_q = quantize_up(request.goal.p, options_.p_step);
    // Burst and trial budget only shape the Monte-Carlo families; zeroing
    // them elsewhere keeps analytically-identical requests on one key.
    key.burst_q = request.method == DesignMethod::kGreedyChannel &&
                          request.mean_burst > 1.0
                      ? quantize_up(request.mean_burst, options_.burst_step)
                      : 0;
    key.target_q = quantize_up(request.goal.target_q_min, options_.target_step);
    key.trials = request.method == DesignMethod::kGreedyChannel
                     ? static_cast<std::uint32_t>(request.mc_trials)
                     : 0;
    key.max_edges = static_cast<std::uint32_t>(
        request.greedy.max_edges == 0 ? 4 * request.goal.n
                                      : request.greedy.max_edges);
    key.pinned_seed = request.seed;
    return key;
}

DesignRequest Designer::materialize(const DesignRequest& request) const {
    const DesignKey key = quantize(request);
    DesignRequest mat = request;
    // Snap to the cell's conservative corner: the served design protects
    // the worst channel state that maps to this key. The loss rate is
    // capped below 1 (the constructors require a design point, not a
    // certainty of loss).
    mat.goal.p = std::min(key.p_q * options_.p_step, 0.995);
    mat.goal.target_q_min = std::min(key.target_q * options_.target_step, 1.0);
    mat.mean_burst = key.burst_q == 0 ? 1.0 : key.burst_q * options_.burst_step;
    mat.greedy.max_edges = key.max_edges;
    if (mat.seed == 0) mat.seed = key.derived_seed();
    return mat;
}

DesignResult Designer::build_fresh(const DesignRequest& materialized) const {
    const DesignRequest& req = materialized;
    DesignResult result;
    switch (req.method) {
        case DesignMethod::kGreedy: {
            result.graph = design_greedy(req.goal, req.greedy);
            result.q_min = recurrence_auth_prob(result.graph, req.goal.p).q_min;
            result.feasible = result.q_min >= req.goal.target_q_min;
            break;
        }
        case DesignMethod::kGreedyChannel: {
            const double rate = std::clamp(req.goal.p, 1e-3, 0.999);
            std::unique_ptr<LossModel> loss;
            if (req.mean_burst > 1.0)
                loss = std::make_unique<GilbertElliottLoss>(
                    GilbertElliottLoss::from_rate_and_burst(rate, req.mean_burst));
            else
                loss = std::make_unique<BernoulliLoss>(rate);
            MonteCarloAuthProb prob;
            if (options_.use_incremental) {
                result.graph = design_greedy_channel_incremental(
                    req.goal, *loss, req.seed, req.mc_trials, req.greedy, &prob);
            } else {
                result.graph = design_greedy_channel(req.goal, *loss, req.seed,
                                                     req.mc_trials, req.greedy);
                prob = monte_carlo_auth_prob(result.graph, *loss, req.seed,
                                             req.mc_trials);
            }
            result.q_min = prob.q_min;
            result.feasible = result.q_min >= req.goal.target_q_min;
            break;
        }
        case DesignMethod::kOffsetSet: {
            const OffsetDesignResult found =
                design_offset_set(req.goal, req.offset_menu);
            result.feasible = found.feasible;
            result.offsets = found.offsets;
            // Infeasible searches still materialize the minimal spine so a
            // caller always gets a valid (best-effort) topology back.
            result.graph = make_offset_scheme(
                req.goal.n, found.feasible ? found.offsets
                                           : std::vector<std::size_t>{1},
                "offset-design");
            result.q_min = found.feasible
                               ? found.q_min
                               : recurrence_auth_prob(result.graph, req.goal.p).q_min;
            break;
        }
        case DesignMethod::kRandom: {
            Rng rng(req.seed == 0 ? 1 : req.seed);
            const RandomDesignResult found =
                design_random(req.goal, rng, req.random_tolerance);
            result.feasible = found.feasible;
            result.edge_prob = found.edge_prob;
            if (found.feasible) {
                Rng draw_rng(rng.next_u64());
                result.graph =
                    make_random_scheme(req.goal.n, found.edge_prob, draw_rng);
            } else {
                result.graph = make_offset_scheme(req.goal.n, {1}, "random-design");
            }
            result.q_min = recurrence_auth_prob(result.graph, req.goal.p).q_min;
            break;
        }
    }
    MCAUTH_OBS_COUNT("design.service.builds");
    return result;
}

DesignResult Designer::serve(const std::shared_ptr<const DesignResult>& stored,
                             DesignSource source, std::uint32_t block,
                             double latency_seconds) {
    DesignResult out = *stored;
    out.source = source;
    out.latency_seconds = latency_seconds;
    MCAUTH_OBS_EVENT(kDesignServed, block, static_cast<std::uint32_t>(source), 0,
                     latency_seconds);
    return out;
}

DesignResult Designer::design(const DesignRequest& request) {
    const auto start = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mu_);
    ++serves_;
    const DesignKey key = quantize(request);

    if (auto it = cache_.find(key); it != cache_.end()) {
        const bool stale =
            options_.stale_after_serves != 0 &&
            serves_ - it->second->inserted_at_serve > options_.stale_after_serves;
        if (!stale) {
            lru_.splice(lru_.begin(), lru_, it->second);  // touch
            ++stats_.hits;
            MCAUTH_OBS_COUNT("design.cache.hits");
            return serve(it->second->result, DesignSource::kCache, request.block,
                         seconds_since(start));
        }
        ++stats_.stale;
        MCAUTH_OBS_COUNT("design.cache.stale");
        lru_.erase(it->second);
        cache_.erase(it);
    }

    if (auto it = frontier_.find(key); it != frontier_.end()) {
        ++stats_.frontier_hits;
        MCAUTH_OBS_COUNT("design.cache.frontier_hits");
        return serve(it->second.result, DesignSource::kFrontier, request.block,
                     seconds_since(start));
    }

    ++stats_.misses;
    MCAUTH_OBS_COUNT("design.cache.misses");
    auto built =
        std::make_shared<const DesignResult>(build_fresh(materialize(request)));
    lru_.push_front(CacheEntry{key, built, serves_});
    cache_[key] = lru_.begin();
    while (cache_.size() > options_.cache_capacity) {
        cache_.erase(lru_.back().key);
        lru_.pop_back();
        ++stats_.evictions;
        MCAUTH_OBS_COUNT("design.cache.evictions");
    }
    MCAUTH_OBS_GAUGE_SET("design.cache.size", cache_.size());
    return serve(built, DesignSource::kFresh, request.block, seconds_since(start));
}

std::size_t Designer::precompute_frontier(const FrontierSpec& spec) {
    MCAUTH_EXPECTS(spec.n >= 2);
    MCAUTH_EXPECTS(!spec.p_grid.empty());
    MCAUTH_EXPECTS(!spec.burst_grid.empty());
    MCAUTH_EXPECTS(!spec.target_grid.empty());
    const SchemeParams params;  // defaults: metric shape, not wire bytes
    std::size_t added = 0;

    for (const double p : spec.p_grid) {
        for (const double burst : spec.burst_grid) {
            for (const double target : spec.target_grid) {
                DesignRequest req;
                req.goal.n = spec.n;
                req.goal.p = p;
                req.goal.target_q_min = target;
                req.method = spec.method;
                req.mean_burst = burst;
                req.mc_trials = spec.mc_trials;
                req.greedy.max_edges = spec.max_edges_per_packet * spec.n;

                const DesignKey key = quantize(req);
                const DesignRequest mat = materialize(req);
                auto built = std::make_shared<const DesignResult>(build_fresh(mat));
                const GraphMetrics metrics = compute_metrics(built->graph, params);

                FrontierEntry entry;
                entry.key = key;
                entry.p = mat.goal.p;
                entry.mean_burst = mat.mean_burst;
                entry.target = mat.goal.target_q_min;
                entry.hashes_per_packet = metrics.hashes_per_packet;
                entry.max_receiver_delay = metrics.max_receiver_delay;
                entry.q_min = built->q_min;
                entry.result = std::move(built);

                std::lock_guard<std::mutex> lock(mu_);
                frontier_[key] = std::move(entry);
                ++added;
            }
        }
    }

    // Recompute Pareto flags for the family: an entry is dominated when
    // another entry of the same family and block size is no worse on every
    // axis (fewer hashes, higher q_min, less delay) and strictly better on
    // at least one.
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<FrontierEntry*> family;
    for (auto& [key, entry] : frontier_)
        if (key.method == spec.method && key.n == spec.n)
            family.push_back(&entry);
    for (FrontierEntry* e : family) {
        bool dominated = false;
        for (const FrontierEntry* other : family) {
            if (other == e) continue;
            const bool no_worse =
                other->hashes_per_packet <= e->hashes_per_packet &&
                other->q_min >= e->q_min &&
                other->max_receiver_delay <= e->max_receiver_delay;
            const bool strictly_better =
                other->hashes_per_packet < e->hashes_per_packet ||
                other->q_min > e->q_min ||
                other->max_receiver_delay < e->max_receiver_delay;
            if (no_worse && strictly_better) {
                dominated = true;
                break;
            }
        }
        e->pareto = !dominated;
    }
    MCAUTH_OBS_GAUGE_SET("design.frontier.size", frontier_.size());
    return added;
}

std::size_t Designer::frontier_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return frontier_.size();
}

std::string Designer::frontier_json() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (frontier_.empty()) return "";
    std::vector<const FrontierEntry*> entries;
    entries.reserve(frontier_.size());
    for (const auto& [key, entry] : frontier_) entries.push_back(&entry);
    std::sort(entries.begin(), entries.end(),
              [](const FrontierEntry* a, const FrontierEntry* b) {
                  return a->key.to_string() < b->key.to_string();
              });
    std::string out = "{\"schema\": \"mcauth-design-frontier-v1\", \"entries\": [";
    bool first = true;
    for (const FrontierEntry* e : entries) {
        out += first ? "" : ", ";
        first = false;
        out += "{\"method\": \"";
        out += design_method_name(e->key.method);
        out += "\", \"n\": " + std::to_string(e->key.n);
        out += ", \"p\": " + format_double(e->p);
        out += ", \"burst\": " + format_double(e->mean_burst);
        out += ", \"target\": " + format_double(e->target);
        out += ", \"edges\": " + std::to_string(e->result->graph.graph().edge_count());
        out += ", \"hashes_per_packet\": " + format_double(e->hashes_per_packet);
        out += ", \"q_min\": " + format_double(e->q_min);
        out += ", \"max_delay\": " + format_double(e->max_receiver_delay);
        out += ", \"pareto\": ";
        out += e->pareto ? "true" : "false";
        out += "}";
    }
    out += "]}";
    return out;
}

Designer::Stats Designer::stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::size_t Designer::cache_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
}

void Designer::clear_cache() {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.clear();
    lru_.clear();
}

// ------------------------------------- IncrementalChannelEvaluator

IncrementalChannelEvaluator::IncrementalChannelEvaluator(const DependenceGraph& dg,
                                                         const LossModel& loss,
                                                         std::uint64_t seed,
                                                         std::size_t trials)
    : n_(dg.packet_count()), trials_(trials) {
    MCAUTH_EXPECTS(trials >= 1);
    MCAUTH_EXPECTS(n_ >= 2);

    preds_.resize(n_);
    succs_.resize(n_);
    for (const Edge& e : dg.graph().edges()) {
        // Ascending-id sweep order is the whole delta-correctness story:
        // designer-built graphs only ever link earlier packets to later
        // ones, and the evaluator refuses anything else.
        MCAUTH_EXPECTS(e.from < e.to);
        preds_[e.to].push_back(e.from);
        succs_[e.from].push_back(e.to);
    }

    const exec::BitslicedTrials bt(trials, seed);
    batch_count_ = bt.batch_count();
    alive_.assign(batch_count_ * n_, 0);
    reach_.assign(batch_count_ * n_, 0);
    active_.assign(batch_count_, 0);
    received_.assign(n_, 0);
    verified_.assign(n_, 0);
    dirty_.assign(n_, 0);

    // Sample every batch exactly as core/authprob.cpp's bit-sliced shard
    // does: per-batch lane seeding, model reset, one bulk sample in
    // transmission order, scatter to vertex ids. The alive words never
    // change again — edges do not affect the channel.
    const auto batched = loss.make_batched();
    std::vector<Rng> lanes;
    std::vector<std::uint64_t> lost(n_, 0);
    for (std::size_t b = 0; b < batch_count_; ++b) {
        bt.seed_lanes(b, lanes);
        batched->reset();
        batched->sample_block(lanes.data(), lost.data(), n_);
        std::uint64_t* alive = alive_.data() + b * n_;
        std::uint64_t* reach = reach_.data() + b * n_;
        for (std::uint32_t pos = 0; pos < n_; ++pos)
            alive[dg.vertex_at_send_pos(pos)] = ~lost[pos];
        reach[DependenceGraph::root()] = ~0ULL;
        for (std::size_t v = 1; v < n_; ++v) {
            std::uint64_t from_preds = 0;
            for (VertexId u : preds_[v]) from_preds |= reach[u];
            reach[v] = from_preds & alive[v];
        }
        const std::uint64_t active = bt.active_mask(b);
        active_[b] = active;
        for (std::size_t v = 1; v < n_; ++v) {
            received_[v] +=
                static_cast<std::uint64_t>(std::popcount(alive[v] & active));
            verified_[v] +=
                static_cast<std::uint64_t>(std::popcount(reach[v] & active));
        }
    }
}

void IncrementalChannelEvaluator::add_edge(VertexId u, VertexId v) {
    MCAUTH_EXPECTS(u < v && v < n_);
    MCAUTH_EXPECTS(std::find(preds_[v].begin(), preds_[v].end(), u) ==
                   preds_[v].end());
    preds_[v].push_back(u);
    succs_[u].push_back(v);
    resweep_cone(v);
}

void IncrementalChannelEvaluator::remove_edge(VertexId u, VertexId v) {
    MCAUTH_EXPECTS(u < v && v < n_);
    auto pit = std::find(preds_[v].begin(), preds_[v].end(), u);
    MCAUTH_EXPECTS(pit != preds_[v].end());
    preds_[v].erase(pit);
    succs_[u].erase(std::find(succs_[u].begin(), succs_[u].end(), v));
    resweep_cone(v);
}

void IncrementalChannelEvaluator::resweep_cone(VertexId w) {
    // Per batch: re-derive reach only where it can have moved. A vertex is
    // dirty when an incoming edge changed (w itself) or a predecessor's
    // reach word changed; the forward scan in id order visits dirty
    // vertices after all their predecessors are final, so one pass settles
    // the cone. Unchanged words cut propagation immediately, which is what
    // keeps the typical cone a small fraction of the graph.
    for (std::size_t b = 0; b < batch_count_; ++b) {
        const std::uint64_t* alive = alive_.data() + b * n_;
        std::uint64_t* reach = reach_.data() + b * n_;
        const std::uint64_t active = active_[b];
        dirty_[w] = 1;
        for (std::size_t v = w; v < n_; ++v) {
            if (!dirty_[v]) continue;
            dirty_[v] = 0;
            ++swept_vertices_;
            std::uint64_t from_preds = 0;
            for (VertexId u : preds_[v]) from_preds |= reach[u];
            const std::uint64_t next = from_preds & alive[v];
            const std::uint64_t prev = reach[v];
            if (next == prev) continue;
            reach[v] = next;
            verified_[v] = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(verified_[v]) +
                (std::popcount(next & active) - std::popcount(prev & active)));
            for (VertexId s : succs_[v]) dirty_[s] = 1;
        }
    }
}

MonteCarloAuthProb IncrementalChannelEvaluator::auth_prob() const {
    // Mirrors the count -> estimate arithmetic at the end of
    // monte_carlo_auth_prob exactly: same divisions on the same integers,
    // NaN for never-received vertices, Wilson halfwidths, argmin that never
    // selects NaN.
    MonteCarloAuthProb result;
    result.trials = trials_;
    result.q.assign(n_, 1.0);
    result.halfwidth.assign(n_, 0.0);
    std::size_t argmin = 0;
    for (std::size_t v = 1; v < n_; ++v) {
        result.q[v] = received_[v] == 0
                          ? std::numeric_limits<double>::quiet_NaN()
                          : static_cast<double>(verified_[v]) /
                                static_cast<double>(received_[v]);
        result.halfwidth[v] = received_[v] == 0
                                  ? std::numeric_limits<double>::quiet_NaN()
                                  : wilson_halfwidth(result.q[v], received_[v]);
        if (result.q[v] < result.q[argmin]) argmin = v;
    }
    result.q_min = min_over_non_root(result.q);
    if (argmin != 0) result.q_min_halfwidth = result.halfwidth[argmin];
    return result;
}

DependenceGraph design_greedy_channel_incremental(const DesignGoal& goal,
                                                  const LossModel& loss,
                                                  std::uint64_t seed,
                                                  std::size_t trials,
                                                  const GreedyDesignOptions& options,
                                                  MonteCarloAuthProb* final_prob) {
    MCAUTH_EXPECTS(goal.n >= 2);
    MCAUTH_EXPECTS(goal.target_q_min > 0.0 && goal.target_q_min <= 1.0);
    MCAUTH_EXPECTS(trials > 0);

    // Identical setup to design_greedy_channel — including the scheme name,
    // which to_text() serializes, so byte-identity covers the full artifact.
    DependenceGraph dg = copy_with_name(make_offset_scheme(goal.n, {1}), "greedy-channel");
    const std::size_t edge_cap = options.max_edges == 0 ? 4 * goal.n : options.max_edges;
    const double p_eff = loss.stationary_loss_rate();
    const auto resolved = [](double q) { return std::isnan(q) ? 1.0 : q; };

    IncrementalChannelEvaluator eval(dg, loss, seed, trials);

    while (dg.graph().edge_count() < edge_cap) {
        const MonteCarloAuthProb prob = eval.auth_prob();
        if (prob.q_min >= goal.target_q_min) break;

        VertexId worst = 1;
        for (VertexId v = 1; v < goal.n; ++v)
            if (resolved(prob.q[v]) < resolved(prob.q[worst])) worst = v;
        const double q_worst = resolved(prob.q[worst]);

        VertexId best_donor = kNoVertex;
        double best_q = q_worst;
        for (std::size_t back = 2;; back *= 2) {
            const VertexId donor =
                back >= worst ? DependenceGraph::root() : static_cast<VertexId>(worst - back);
            if (!dg.graph().has_edge(donor, worst)) {
                const double r = donor == DependenceGraph::root() ? 1.0 : 1.0 - p_eff;
                const double candidate_q =
                    1.0 - (1.0 - q_worst) * (1.0 - r * resolved(prob.q[donor]));
                if (candidate_q > best_q + 1e-12) {
                    best_q = candidate_q;
                    best_donor = donor;
                }
            }
            if (donor == DependenceGraph::root()) break;
        }
        if (best_donor == kNoVertex) break;
        dg.add_dependence(best_donor, worst);
        eval.add_edge(best_donor, worst);
    }
    MCAUTH_OBS_COUNT_N("design.service.delta_swept_vertices", eval.swept_vertices());
    if (final_prob) *final_prob = eval.auth_prob();
    return dg;
}

}  // namespace mcauth::design

// Side-by-side evaluation of constructed vs. hand-designed schemes — the
// harness behind the abl_designers bench and the scheme_designer example.
#pragma once

#include <string>
#include <vector>

#include "core/dependence_graph.hpp"
#include "core/metrics.hpp"
#include "design/constructors.hpp"
#include "util/rng.hpp"

namespace mcauth {

struct DesignReport {
    std::string name;
    std::size_t edges = 0;
    double hashes_per_packet = 0.0;
    double q_min_recurrence = 0.0;  // the designer's own metric
    double q_min_monte_carlo = 0.0; // independent check
    double max_receiver_delay = 0.0;
    std::size_t message_buffer_span = 0;
    bool meets_target = false;
};

/// Evaluate one graph against a goal (recurrence + Monte-Carlo cross-check).
DesignReport evaluate_design(const DependenceGraph& dg, const DesignGoal& goal,
                             const SchemeParams& params, Rng& rng,
                             std::size_t mc_trials = 4000);

/// Run all three §5 constructors plus EMSS/AC references at the same goal.
std::vector<DesignReport> compare_designs(const DesignGoal& goal, const SchemeParams& params,
                                          Rng& rng, std::size_t mc_trials = 4000);

}  // namespace mcauth

// Design-as-a-service: the unified Designer API over the §5 constructors,
// plus the machinery that makes design cheap enough to run per group at
// fleet scale (DESIGN.md §15).
//
// Three layers, composable but independently testable:
//
//   * IncrementalChannelEvaluator — the greedy-channel designer's inner
//     loop re-scores the whole graph by Monte-Carlo after every edge it
//     adds. But an edge (u, w) can only change reachability in the
//     downstream cone of w, and the sampled loss patterns do not depend on
//     the edge set at all. The evaluator samples every trial's alive words
//     ONCE (exactly as core/authprob.cpp's bit-sliced shard does), keeps
//     the per-batch reach words, and on add_edge/remove_edge re-sweeps only
//     the dirty cone, maintaining the received/verified counts by popcount
//     delta. The resulting q vector is bit-identical to a full re-sim —
//     same integer counts, same divisions — which
//     design_greedy_channel_incremental exploits to reproduce the oracle's
//     greedy decisions (and therefore its output graph) byte for byte.
//
//   * Designer — one DesignRequest -> DesignResult entry point in front of
//     design_greedy / design_greedy_channel / design_offset_set /
//     design_random (mirroring the SchemeFactory pattern in auth/scheme.hpp).
//     Requests are quantized onto a conservative grid (loss rate, burst
//     length and target rounded UP, so a cached design never under-protects
//     the cell it serves) and the quantized key indexes an LRU design cache
//     with hit/miss/stale/eviction counters. The design seed is derived
//     from the quantized key — NOT from any per-controller state — so every
//     group whose channel lands in the same cell shares one byte-identical
//     design, which is what makes the cache a fleet-level amortizer rather
//     than a per-session memo.
//
//   * Pareto frontier — precompute_frontier() sweeps a grid of operating
//     points for one topology family ahead of time; steady-state serving is
//     then an O(1) hash lookup, and the frontier (overhead vs q_min vs
//     delay, with dominated points flagged) serializes into the run
//     manifest (obs/manifest.hpp) so a bench result records exactly which
//     precomputed designs it was served.
//
// Every serve emits a kDesignServed structured event (source + latency) and
// bumps design.cache.* counters; the adaptive-loop expectation suite's
// "design-served-after-redesign" bounded-lag rule rides on the event.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/authprob.hpp"
#include "design/constructors.hpp"
#include "net/loss.hpp"

namespace mcauth::design {

/// Which §5 constructor family a request targets. Doubles as the cache
/// key's "topology family" component and the frontier's family tag.
enum class DesignMethod : std::uint8_t {
    kGreedy = 0,         // recurrence-scored greedy augmentation (i.i.d.)
    kGreedyChannel = 1,  // Monte-Carlo-scored greedy under a fitted channel
    kOffsetSet = 2,      // exact search over periodic offset subsets
    kRandom = 3,         // probabilistic construction, binary-searched p_x
};

/// Stable wire name ("greedy", "greedy-channel", "offset-set", "random").
const char* design_method_name(DesignMethod method) noexcept;

/// Where a served design came from.
enum class DesignSource : std::uint8_t {
    kFresh = 0,     // built by the constructor on this call
    kCache = 1,     // LRU hit on the quantized key
    kFrontier = 2,  // precomputed Pareto-frontier entry
};

const char* design_source_name(DesignSource source) noexcept;

/// One design request. Everything that changes the produced graph is part
/// of the quantized cache key; `block` is event context only.
struct DesignRequest {
    DesignGoal goal;  // n, loss rate p, target q_min
    DesignMethod method = DesignMethod::kGreedy;
    /// Mean burst length of the fitted channel; <= 1.0 means i.i.d. loss.
    /// Only kGreedyChannel consumes it (as GilbertElliottLoss::
    /// from_rate_and_burst(p, mean_burst)).
    double mean_burst = 1.0;
    std::size_t mc_trials = 512;       // kGreedyChannel rescore budget
    GreedyDesignOptions greedy;        // max_edges (0 = 4n cap)
    std::vector<std::size_t> offset_menu;  // kOffsetSet ("" = default menu)
    double random_tolerance = 1e-3;    // kRandom binary-search tolerance
    /// Block id carried into the kDesignServed event (reaction-time
    /// bookkeeping); NOT part of the cache key.
    std::uint32_t block = 0;
    /// 0 = derive the design seed from the quantized key (the fleet-sharing
    /// default); nonzero pins an explicit seed (and joins the cache key, so
    /// pinned-seed requests never alias derived-seed ones).
    std::uint64_t seed = 0;
};

/// Quantized cache key. Loss rate, burst and target are conservative
/// ceilings (value <= quantum * step always holds), so every channel state
/// inside a cell is served a design built for the cell's WORST corner.
struct DesignKey {
    std::uint32_t n = 0;
    DesignMethod method = DesignMethod::kGreedy;
    std::uint32_t p_q = 0;       // ceil(p / p_step)
    std::uint32_t burst_q = 0;   // ceil(mean_burst / burst_step); 0 = i.i.d.
    std::uint32_t target_q = 0;  // ceil(target_q_min / target_step)
    std::uint32_t trials = 0;    // kGreedyChannel only; 0 otherwise
    std::uint32_t max_edges = 0; // resolved cap (4n when request said 0)
    std::uint64_t pinned_seed = 0;  // nonzero only for explicit-seed requests

    friend bool operator==(const DesignKey&, const DesignKey&) = default;

    std::uint64_t hash() const noexcept;
    /// The deterministic design seed for derived-seed requests: a pure
    /// function of the key, identical across processes and controllers.
    std::uint64_t derived_seed() const noexcept;
    std::string to_string() const;  // "greedy-channel/n=128/p_q=10/..."
};

struct DesignKeyHash {
    std::size_t operator()(const DesignKey& k) const noexcept {
        return static_cast<std::size_t>(k.hash());
    }
};

struct DesignResult {
    DependenceGraph graph{2, {0, 1}, "unset"};
    std::vector<std::size_t> offsets;  // kOffsetSet: the chosen offset set
    double edge_prob = 0.0;            // kRandom: the found edge probability
    bool feasible = true;              // kOffsetSet/kRandom may fail the target
    /// The designer's own metric at the materialized (quantized) operating
    /// point: recurrence q_min for the analytic families, the final
    /// Monte-Carlo q_min for kGreedyChannel.
    double q_min = 0.0;
    DesignSource source = DesignSource::kFresh;
    double latency_seconds = 0.0;  // wall time of this serve
};

/// Exact-key identity: two results are identical iff their graphs
/// serialize to the same bytes (core/serialize.hpp) and the auxiliary
/// outputs (offsets, edge probability, feasibility) match. Source/latency
/// are serve metadata and do not participate.
bool identical(const DesignResult& a, const DesignResult& b);

struct DesignerOptions {
    std::size_t cache_capacity = 256;  // LRU entries
    double p_step = 0.02;       // loss-rate quantization step
    double burst_step = 0.5;    // mean-burst quantization step
    double target_step = 0.01;  // target-q_min quantization step
    /// Cache entries older than this many serves are re-built on lookup
    /// (counted in design.cache.stale); 0 = entries never go stale.
    std::uint64_t stale_after_serves = 0;
    /// false routes kGreedyChannel through the full-re-sim oracle
    /// (design_greedy_channel) instead of the incremental evaluator — the
    /// identity-gate configuration perf_design_cache compares against.
    bool use_incremental = true;
};

/// Grid specification for precompute_frontier. Grid points are quantized
/// through the same key function requests use, so any request inside a
/// precomputed cell is served the frontier entry.
struct FrontierSpec {
    DesignMethod method = DesignMethod::kGreedy;
    std::size_t n = 128;
    std::vector<double> p_grid;            // loss rates
    std::vector<double> burst_grid{1.0};   // mean bursts (1.0 = i.i.d.)
    std::vector<double> target_grid{0.9};  // target q_min values
    std::size_t mc_trials = 512;
    std::size_t max_edges_per_packet = 4;
};

/// One precomputed operating point. `pareto` marks the points not
/// dominated in (hashes_per_packet minimized, q_min maximized,
/// max_receiver_delay minimized) within their family.
struct FrontierEntry {
    DesignKey key;
    double p = 0.0;
    double mean_burst = 1.0;
    double target = 0.0;
    std::shared_ptr<const DesignResult> result;
    double hashes_per_packet = 0.0;
    double max_receiver_delay = 0.0;
    double q_min = 0.0;
    bool pareto = false;
};

/// Thread-safe design service: quantize -> cache -> frontier -> fresh
/// build. One instance is meant to be SHARED (std::shared_ptr) across every
/// adaptive controller of a fleet; see adapt::AdaptiveOptions::designer.
class Designer {
public:
    explicit Designer(DesignerOptions options = {});

    /// Serve one design. Cached and fresh results for the same quantized
    /// key are byte-identical (see identical()).
    DesignResult design(const DesignRequest& request);

    /// The quantized cache key of a request (exposed so tests and the
    /// identity-gate bench can reproduce the exact oracle inputs).
    DesignKey quantize(const DesignRequest& request) const;

    /// The request the service actually designs for: goal/burst/target
    /// snapped to the key's conservative grid corner, seed resolved (derived
    /// from the key when the request left it 0), max_edges resolved.
    DesignRequest materialize(const DesignRequest& request) const;

    /// Precompute the full grid of `spec` into the frontier store and
    /// recompute Pareto flags for the family. Returns the number of grid
    /// points added (existing keys are overwritten, not duplicated).
    std::size_t precompute_frontier(const FrontierSpec& spec);
    std::size_t frontier_size() const;
    /// Single-line JSON rendering of the frontier store (schema
    /// "mcauth-design-frontier-v1"), for embedding into RunManifest; ""
    /// when no frontier was precomputed.
    std::string frontier_json() const;

    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::uint64_t stale = 0;
        std::uint64_t frontier_hits = 0;
    };
    Stats stats() const;
    std::size_t cache_size() const;
    void clear_cache();

    const DesignerOptions& options() const noexcept { return options_; }

private:
    struct CacheEntry {
        DesignKey key;
        std::shared_ptr<const DesignResult> result;
        std::uint64_t inserted_at_serve = 0;
    };

    DesignResult build_fresh(const DesignRequest& materialized) const;
    DesignResult serve(const std::shared_ptr<const DesignResult>& stored,
                       DesignSource source, std::uint32_t block,
                       double latency_seconds);

    mutable std::mutex mu_;
    DesignerOptions options_;
    std::list<CacheEntry> lru_;  // front = most recently used
    std::unordered_map<DesignKey, std::list<CacheEntry>::iterator, DesignKeyHash>
        cache_;
    std::unordered_map<DesignKey, FrontierEntry, DesignKeyHash> frontier_;
    std::uint64_t serves_ = 0;
    Stats stats_;
};

/// Incremental Monte-Carlo evaluator for greedy-channel design: samples the
/// trial loss patterns once at construction (bit-identical to the
/// core/authprob.cpp bit-sliced shard on the same (loss, seed, trials)),
/// then maintains per-batch reach words and per-vertex counts under
/// add_edge/remove_edge by re-sweeping only the affected downstream cone.
///
/// Requires every edge (u, v) to satisfy u < v — true of every designer-
/// built graph (offset spine plus donor-before-worst augmentation) — so
/// ascending vertex id is a valid topological sweep order and "the cone of
/// w" is a forward scan from w.
class IncrementalChannelEvaluator {
public:
    IncrementalChannelEvaluator(const DependenceGraph& dg, const LossModel& loss,
                                std::uint64_t seed, std::size_t trials);

    void add_edge(VertexId u, VertexId v);
    void remove_edge(VertexId u, VertexId v);

    /// The exact MonteCarloAuthProb monte_carlo_auth_prob(dg', loss, seed,
    /// trials) would return for the CURRENT edge set dg' — bit-identical
    /// q/q_min/halfwidths (same integer counts, same arithmetic).
    MonteCarloAuthProb auth_prob() const;

    std::size_t packet_count() const noexcept { return n_; }
    /// Vertices visited by delta sweeps since construction (telemetry: the
    /// full re-sim equivalent is n * batches per rescore).
    std::uint64_t swept_vertices() const noexcept { return swept_vertices_; }

private:
    void resweep_cone(VertexId w);

    std::size_t n_ = 0;
    std::size_t trials_ = 0;
    std::size_t batch_count_ = 0;
    std::vector<std::vector<VertexId>> preds_;
    std::vector<std::vector<VertexId>> succs_;
    std::vector<std::uint64_t> alive_;   // [b * n + v], fixed after sampling
    std::vector<std::uint64_t> reach_;   // [b * n + v], maintained
    std::vector<std::uint64_t> active_;  // per-batch ghost-lane mask
    std::vector<std::uint64_t> received_;  // per-vertex, fixed
    std::vector<std::uint64_t> verified_;  // per-vertex, maintained
    std::vector<std::uint8_t> dirty_;      // sweep scratch
    std::uint64_t swept_vertices_ = 0;
};

/// design_greedy_channel with the full per-iteration re-simulation replaced
/// by the incremental evaluator. Produces a graph byte-identical to
/// design_greedy_channel(goal, loss, seed, trials, options) — same greedy
/// decisions on the same bit-identical q vectors — at a fraction of the
/// cost. `final_prob`, when non-null, receives the Monte-Carlo evaluation
/// of the RETURNED graph (free here: the counts are already maintained).
DependenceGraph design_greedy_channel_incremental(
    const DesignGoal& goal, const LossModel& loss, std::uint64_t seed,
    std::size_t trials, const GreedyDesignOptions& options = {},
    MonteCarloAuthProb* final_prob = nullptr);

}  // namespace mcauth::design

// §5 "Design Considerations" made executable: constructors that build
// dependence-graphs with the minimum number of edges subject to
// q_min >= target at a given loss rate.
//
// The paper sketches three families; all three are implemented:
//
//   * greedy edge augmentation ("start with a tree and add edges until the
//     constraints are satisfied"): start from the spanning chain, and while
//     the recurrence-evaluated q_min misses the target, give the worst
//     vertex one more incoming edge, choosing the donor among the root and
//     exponentially-spaced upstream vertices by marginal gain;
//
//   * offset-set optimization (the paper's dynamic-programming angle —
//     periodic schemes are fully described by their offset set A of Eq. 9,
//     so optimizing over A is a policy search): exact search over subsets
//     of a candidate offset menu, returning the feasible set with the
//     fewest edges (then smallest buffer span as tie-break);
//
//   * probabilistic construction ("construct an edge to each earlier vertex
//     with probability p_x"): binary-search the edge probability to the
//     smallest value whose graph meets the target.
//
// All constructors evaluate candidates with the same recurrence engine the
// analyses use, so "meets the target" is by the paper's own metric; the
// abl_designers bench cross-checks the results with Monte-Carlo.
//
// DEPRECATED as application-facing API: new code should request designs
// through design::Designer (design/service.hpp), which unifies these entry
// points behind one DesignRequest -> DesignResult interface and adds the
// fleet-level design cache, the incremental evaluator and the Pareto
// frontier. The free functions remain as the reference engines the service
// dispatches to — design_greedy_channel in particular is the full-re-sim
// oracle the incremental path is bit-identity-gated against — and their
// signatures are frozen for that role (byte-identity tests in
// tests/test_design_service.cpp compare Designer output against them).
// No [[deprecated]] attribute: in-tree oracles and shim tests still call
// them, and -Werror builds must stay clean.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/dependence_graph.hpp"
#include "net/loss.hpp"
#include "util/rng.hpp"

namespace mcauth {

struct DesignGoal {
    std::size_t n = 128;       // block size
    double p = 0.2;            // design loss rate
    double target_q_min = 0.9;
};

struct GreedyDesignOptions {
    std::size_t max_edges = 0;  // 0 = 4n safety cap
};

/// Greedy edge augmentation. Always returns a valid graph; if the target is
/// unreachable within the edge cap, the best-effort graph is returned
/// (check with recurrence_auth_prob).
DependenceGraph design_greedy(const DesignGoal& goal, const GreedyDesignOptions& options = {});

/// Greedy edge augmentation scored under an ARBITRARY loss model (the
/// recurrence engine assumes i.i.d. Bernoulli loss, which understates burst
/// damage under Gilbert-Elliott channels). Candidates are evaluated with
/// the seeded Monte-Carlo engine, so the result is deterministic for a
/// given (goal, loss, seed, trials). `goal.p` is ignored except as the
/// marginal-gain heuristic's correlation discount; the channel's own
/// stationary_loss_rate() drives donor scoring. Used by the adaptive
/// controller (adapt/controller.hpp) when feedback reports bursty loss.
DependenceGraph design_greedy_channel(const DesignGoal& goal, const LossModel& loss,
                                      std::uint64_t seed, std::size_t trials = 512,
                                      const GreedyDesignOptions& options = {});

struct OffsetDesignResult {
    std::vector<std::size_t> offsets;  // empty if no feasible subset
    double q_min = 0.0;
    bool feasible = false;
};

/// Exact search over subsets of `menu` (default: 1,2,3,4,6,8,12,16,24,32).
/// Cost is O(2^|menu| * n * |menu|); menus beyond 16 entries are rejected.
OffsetDesignResult design_offset_set(const DesignGoal& goal,
                                     std::vector<std::size_t> menu = {});

struct RandomDesignResult {
    double edge_prob = 0.0;
    bool feasible = false;
};

/// Smallest edge probability (within `tolerance`) whose random graph meets
/// the target; the returned probability re-seeds deterministically via
/// make_random_scheme(n, edge_prob, rng).
RandomDesignResult design_random(const DesignGoal& goal, Rng& rng,
                                 double tolerance = 1e-3);

}  // namespace mcauth

#include "design/constructors.hpp"

#include <algorithm>
#include <cmath>

#include "core/authprob.hpp"
#include "core/metrics.hpp"
#include "core/topologies.hpp"
#include "util/check.hpp"

namespace mcauth {

namespace {

DependenceGraph copy_with_name(const DependenceGraph& source, std::string name) {
    std::vector<std::uint32_t> pos(source.packet_count());
    for (VertexId v = 0; v < source.packet_count(); ++v) pos[v] = source.send_pos(v);
    DependenceGraph out(source.packet_count(), std::move(pos), std::move(name));
    for (const Edge& e : source.graph().edges()) out.add_dependence(e.from, e.to);
    return out;
}

}  // namespace

DependenceGraph design_greedy(const DesignGoal& goal, const GreedyDesignOptions& options) {
    MCAUTH_EXPECTS(goal.n >= 2);
    MCAUTH_EXPECTS(goal.p >= 0.0 && goal.p < 1.0);
    MCAUTH_EXPECTS(goal.target_q_min > 0.0 && goal.target_q_min <= 1.0);

    // Spanning chain = the minimal Definition-1-valid graph.
    DependenceGraph dg = copy_with_name(make_offset_scheme(goal.n, {1}), "greedy-design");
    const std::size_t edge_cap = options.max_edges == 0 ? 4 * goal.n : options.max_edges;

    while (dg.graph().edge_count() < edge_cap) {
        const AuthProb prob = recurrence_auth_prob(dg, goal.p);
        if (prob.q_min >= goal.target_q_min) break;

        // Worst vertex gets one more incoming edge.
        VertexId worst = 1;
        for (VertexId v = 1; v < goal.n; ++v)
            if (prob.q[v] < prob.q[worst]) worst = v;

        // Donor candidates: the root and exponentially-spaced ancestors —
        // a donor near the root gives a short new path, a near donor gives
        // a cheap redundant one; evaluate the marginal gain of each.
        VertexId best_donor = kNoVertex;
        double best_q = prob.q[worst];
        for (std::size_t back = 2;; back *= 2) {
            const VertexId donor =
                back >= worst ? DependenceGraph::root() : static_cast<VertexId>(worst - back);
            if (!dg.graph().has_edge(donor, worst)) {
                // Marginal q_worst if this edge were added (one-step update;
                // the full recurrence refresh happens next iteration).
                const double r = donor == DependenceGraph::root() ? 1.0 : 1.0 - goal.p;
                const double candidate_q =
                    1.0 - (1.0 - prob.q[worst]) * (1.0 - r * prob.q[donor]);
                if (candidate_q > best_q + 1e-12) {
                    best_q = candidate_q;
                    best_donor = donor;
                }
            }
            if (donor == DependenceGraph::root()) break;
        }
        if (best_donor == kNoVertex) break;  // saturated: every donor present
        dg.add_dependence(best_donor, worst);
    }
    return dg;
}

DependenceGraph design_greedy_channel(const DesignGoal& goal, const LossModel& loss,
                                      std::uint64_t seed, std::size_t trials,
                                      const GreedyDesignOptions& options) {
    MCAUTH_EXPECTS(goal.n >= 2);
    MCAUTH_EXPECTS(goal.target_q_min > 0.0 && goal.target_q_min <= 1.0);
    MCAUTH_EXPECTS(trials > 0);

    DependenceGraph dg = copy_with_name(make_offset_scheme(goal.n, {1}), "greedy-channel");
    const std::size_t edge_cap = options.max_edges == 0 ? 4 * goal.n : options.max_edges;
    const double p_eff = loss.stationary_loss_rate();

    // A never-received vertex has an undefined conditional q (NaN); for
    // design purposes it cannot be improved by edges, so score it as fine.
    const auto resolved = [](double q) { return std::isnan(q) ? 1.0 : q; };

    while (dg.graph().edge_count() < edge_cap) {
        const MonteCarloAuthProb prob = monte_carlo_auth_prob(dg, loss, seed, trials);
        if (prob.q_min >= goal.target_q_min) break;

        VertexId worst = 1;
        for (VertexId v = 1; v < goal.n; ++v)
            if (resolved(prob.q[v]) < resolved(prob.q[worst])) worst = v;
        const double q_worst = resolved(prob.q[worst]);

        // Same donor menu as design_greedy; the marginal-gain estimate uses
        // the channel's stationary rate as the independence-approximation
        // discount (bursts correlate adjacent losses, so this is a heuristic
        // pre-filter — the Monte-Carlo rescore next iteration is what counts).
        VertexId best_donor = kNoVertex;
        double best_q = q_worst;
        for (std::size_t back = 2;; back *= 2) {
            const VertexId donor =
                back >= worst ? DependenceGraph::root() : static_cast<VertexId>(worst - back);
            if (!dg.graph().has_edge(donor, worst)) {
                const double r = donor == DependenceGraph::root() ? 1.0 : 1.0 - p_eff;
                const double candidate_q =
                    1.0 - (1.0 - q_worst) * (1.0 - r * resolved(prob.q[donor]));
                if (candidate_q > best_q + 1e-12) {
                    best_q = candidate_q;
                    best_donor = donor;
                }
            }
            if (donor == DependenceGraph::root()) break;
        }
        if (best_donor == kNoVertex) break;
        dg.add_dependence(best_donor, worst);
    }
    return dg;
}

OffsetDesignResult design_offset_set(const DesignGoal& goal, std::vector<std::size_t> menu) {
    MCAUTH_EXPECTS(goal.n >= 2);
    if (menu.empty()) menu = {1, 2, 3, 4, 6, 8, 12, 16, 24, 32};
    MCAUTH_EXPECTS(menu.size() <= 16);
    std::sort(menu.begin(), menu.end());
    menu.erase(std::unique(menu.begin(), menu.end()), menu.end());

    OffsetDesignResult best;
    std::size_t best_edges = static_cast<std::size_t>(-1);
    std::size_t best_span = static_cast<std::size_t>(-1);

    const std::size_t subsets = 1ULL << menu.size();
    for (std::size_t mask = 1; mask < subsets; ++mask) {
        std::vector<std::size_t> offsets;
        for (std::size_t k = 0; k < menu.size(); ++k)
            if (mask & (1ULL << k)) offsets.push_back(menu[k]);
        // Every valid scheme needs offset 1 or it strands vertex paths into
        // long stretches reachable only via the root clamp; still, evaluate
        // all subsets - the recurrence scores them correctly either way.
        const DependenceGraph dg = make_offset_scheme(goal.n, offsets);
        if (!dg.is_valid()) continue;
        const AuthProb prob = recurrence_auth_prob(dg, goal.p);
        if (prob.q_min < goal.target_q_min) continue;
        const std::size_t edges = dg.graph().edge_count();
        const std::size_t span = offsets.back();
        const bool better = edges < best_edges || (edges == best_edges && span < best_span);
        if (better) {
            best.offsets = offsets;
            best.q_min = prob.q_min;
            best.feasible = true;
            best_edges = edges;
            best_span = span;
        }
    }
    return best;
}

RandomDesignResult design_random(const DesignGoal& goal, Rng& rng, double tolerance) {
    MCAUTH_EXPECTS(tolerance > 0.0);
    RandomDesignResult result;

    auto q_min_at = [&](double edge_prob) {
        // Average over a few seeds: a single random draw is noisy.
        double acc = 0.0;
        constexpr int kDraws = 3;
        for (int s = 0; s < kDraws; ++s) {
            Rng draw_rng(rng.next_u64());
            const DependenceGraph dg = make_random_scheme(goal.n, edge_prob, draw_rng);
            acc += recurrence_auth_prob(dg, goal.p).q_min;
        }
        return acc / kDraws;
    };

    double lo = 0.0;
    double hi = 1.0;
    if (q_min_at(hi) < goal.target_q_min) return result;  // infeasible even saturated
    while (hi - lo > tolerance) {
        const double mid = 0.5 * (lo + hi);
        if (q_min_at(mid) >= goal.target_q_min)
            hi = mid;
        else
            lo = mid;
    }
    result.edge_prob = hi;
    result.feasible = true;
    return result;
}

}  // namespace mcauth

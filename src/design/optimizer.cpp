#include "design/optimizer.hpp"

#include "core/authprob.hpp"
#include "core/topologies.hpp"
#include "net/loss.hpp"

namespace mcauth {

DesignReport evaluate_design(const DependenceGraph& dg, const DesignGoal& goal,
                             const SchemeParams& params, Rng& rng, std::size_t mc_trials) {
    DesignReport report;
    report.name = dg.scheme_name();
    report.edges = dg.graph().edge_count();

    const GraphMetrics metrics = compute_metrics(dg, params);
    report.hashes_per_packet = metrics.hashes_per_packet;
    report.max_receiver_delay = metrics.max_receiver_delay;
    report.message_buffer_span = metrics.message_buffer_span;

    report.q_min_recurrence = recurrence_auth_prob(dg, goal.p).q_min;
    BernoulliLoss loss(goal.p);
    report.q_min_monte_carlo = monte_carlo_auth_prob(dg, loss, rng.next_u64(), mc_trials).q_min;
    report.meets_target = report.q_min_recurrence >= goal.target_q_min;
    return report;
}

std::vector<DesignReport> compare_designs(const DesignGoal& goal, const SchemeParams& params,
                                          Rng& rng, std::size_t mc_trials) {
    std::vector<DesignReport> reports;

    reports.push_back(
        evaluate_design(design_greedy(goal), goal, params, rng, mc_trials));

    if (const auto offsets = design_offset_set(goal); offsets.feasible) {
        const DependenceGraph dg =
            make_offset_scheme(goal.n, offsets.offsets, "offset-design");
        reports.push_back(evaluate_design(dg, goal, params, rng, mc_trials));
    }

    if (const auto random = design_random(goal, rng); random.feasible) {
        Rng draw_rng(rng.next_u64());
        const DependenceGraph dg = make_random_scheme(goal.n, random.edge_prob, draw_rng);
        reports.push_back(evaluate_design(dg, goal, params, rng, mc_trials));
    }

    // Hand-designed references at the same block size.
    reports.push_back(evaluate_design(make_emss(goal.n, 2, 1), goal, params, rng, mc_trials));
    if (goal.n >= 8)
        reports.push_back(
            evaluate_design(make_augmented_chain(goal.n, 3, 3), goal, params, rng, mc_trials));
    return reports;
}

}  // namespace mcauth

#include "design/optimizer.hpp"

#include "core/authprob.hpp"
#include "core/topologies.hpp"
#include "design/service.hpp"
#include "net/loss.hpp"

namespace mcauth {

DesignReport evaluate_design(const DependenceGraph& dg, const DesignGoal& goal,
                             const SchemeParams& params, Rng& rng, std::size_t mc_trials) {
    DesignReport report;
    report.name = dg.scheme_name();
    report.edges = dg.graph().edge_count();

    const GraphMetrics metrics = compute_metrics(dg, params);
    report.hashes_per_packet = metrics.hashes_per_packet;
    report.max_receiver_delay = metrics.max_receiver_delay;
    report.message_buffer_span = metrics.message_buffer_span;

    report.q_min_recurrence = recurrence_auth_prob(dg, goal.p).q_min;
    BernoulliLoss loss(goal.p);
    report.q_min_monte_carlo = monte_carlo_auth_prob(dg, loss, rng.next_u64(), mc_trials).q_min;
    report.meets_target = report.q_min_recurrence >= goal.target_q_min;
    return report;
}

std::vector<DesignReport> compare_designs(const DesignGoal& goal, const SchemeParams& params,
                                          Rng& rng, std::size_t mc_trials) {
    std::vector<DesignReport> reports;

    // All three §5 constructors go through the unified design service
    // (design/service.hpp). Requests are served at the exact goal handed
    // in: the service designs for its quantized cell corner, which for the
    // comparison harness is the conservative reading of the same goal.
    design::Designer designer;

    design::DesignRequest greedy;
    greedy.goal = goal;
    greedy.method = design::DesignMethod::kGreedy;
    reports.push_back(evaluate_design(designer.design(greedy).graph, goal, params,
                                      rng, mc_trials));

    design::DesignRequest offsets = greedy;
    offsets.method = design::DesignMethod::kOffsetSet;
    if (const design::DesignResult r = designer.design(offsets); r.feasible)
        reports.push_back(evaluate_design(r.graph, goal, params, rng, mc_trials));

    design::DesignRequest random = greedy;
    random.method = design::DesignMethod::kRandom;
    random.seed = rng.next_u64();  // the probabilistic family keeps the
                                   // caller's entropy, as design_random did
    if (const design::DesignResult r = designer.design(random); r.feasible)
        reports.push_back(evaluate_design(r.graph, goal, params, rng, mc_trials));

    // Hand-designed references at the same block size.
    reports.push_back(evaluate_design(make_emss(goal.n, 2, 1), goal, params, rng, mc_trials));
    if (goal.n >= 8)
        reports.push_back(
            evaluate_design(make_augmented_chain(goal.n, 3, 3), goal, params, rng, mc_trials));
    return reports;
}

}  // namespace mcauth

// Arbitrary-precision unsigned integers, built for the RSA substrate.
//
// Representation: little-endian vector of 32-bit limbs (64-bit intermediates
// keep multiplication and Knuth-D division portable and overflow-free).
// The value zero is the empty limb vector; all arithmetic keeps limbs
// normalized (no high zero limbs).
//
// Scope: exactly what RSA key generation, signing and verification need —
// ring arithmetic, modular exponentiation, inverses, Miller–Rabin. This is
// deliberately not a general math library; timing side channels are out of
// scope for the simulation-driven use here (keys sign simulated packets).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace mcauth {

class Bignum;

/// Quotient/remainder pair returned by Bignum::divmod.
struct BignumDivMod;

class Bignum {
public:
    Bignum() = default;
    explicit Bignum(std::uint64_t value);

    /// Big-endian byte import/export (the RSA wire order).
    static Bignum from_bytes(std::span<const std::uint8_t> big_endian);
    static Bignum from_hex(std::string_view hex);

    /// Fixed-width big-endian export; throws if the value does not fit.
    std::vector<std::uint8_t> to_bytes(std::size_t width) const;
    std::string to_hex() const;

    bool is_zero() const noexcept { return limbs_.empty(); }
    bool is_odd() const noexcept { return !limbs_.empty() && (limbs_[0] & 1u); }
    std::size_t bit_length() const noexcept;
    bool bit(std::size_t i) const noexcept;

    /// Value as uint64; requires bit_length() <= 64.
    std::uint64_t to_u64() const;

    int compare(const Bignum& other) const noexcept;
    bool operator==(const Bignum& other) const noexcept { return compare(other) == 0; }
    bool operator!=(const Bignum& other) const noexcept { return compare(other) != 0; }
    bool operator<(const Bignum& other) const noexcept { return compare(other) < 0; }
    bool operator<=(const Bignum& other) const noexcept { return compare(other) <= 0; }
    bool operator>(const Bignum& other) const noexcept { return compare(other) > 0; }
    bool operator>=(const Bignum& other) const noexcept { return compare(other) >= 0; }

    Bignum add(const Bignum& other) const;
    /// Requires *this >= other.
    Bignum sub(const Bignum& other) const;
    Bignum mul(const Bignum& other) const;
    Bignum shifted_left(std::size_t bits) const;
    Bignum shifted_right(std::size_t bits) const;

    /// Knuth Algorithm D; divisor must be non-zero.
    BignumDivMod divmod(const Bignum& divisor) const;
    Bignum mod(const Bignum& modulus) const;

    /// (a * b) mod m and a^e mod m (square-and-multiply).
    static Bignum mod_mul(const Bignum& a, const Bignum& b, const Bignum& m);
    static Bignum mod_pow(const Bignum& base, const Bignum& exponent, const Bignum& m);

    static Bignum gcd(Bignum a, Bignum b);
    /// Modular inverse of a mod m; throws std::domain_error if gcd(a,m) != 1.
    static Bignum mod_inverse(const Bignum& a, const Bignum& m);

    /// Uniform random integer in [0, bound) — rejection from random bits.
    static Bignum random_below(Rng& rng, const Bignum& bound);
    /// Random integer with exactly `bits` bits (top bit set).
    static Bignum random_bits(Rng& rng, std::size_t bits);

    /// Miller–Rabin with `rounds` random bases (error < 4^-rounds).
    static bool is_probable_prime(const Bignum& n, Rng& rng, int rounds = 32);
    /// Next probable prime with exactly `bits` bits (random start, odd walk).
    static Bignum generate_prime(Rng& rng, std::size_t bits, int rounds = 32);

private:
    void trim() noexcept;

    std::vector<std::uint32_t> limbs_;  // little-endian
};

struct BignumDivMod {
    Bignum quotient;
    Bignum remainder;
};

inline Bignum Bignum::mod(const Bignum& modulus) const {
    return divmod(modulus).remainder;
}

}  // namespace mcauth

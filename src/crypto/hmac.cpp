#include "crypto/hmac.hpp"

#include <cstring>

#include "obs/obs.hpp"

namespace mcauth {

namespace {

// Normalize a key to one hash block: hash if longer, zero-pad if shorter.
std::array<std::uint8_t, 64> block_key_sha256(std::span<const std::uint8_t> key) noexcept {
    std::array<std::uint8_t, 64> block{};
    if (key.size() > block.size()) {
        const Digest256 digest = Sha256::hash(key);
        std::memcpy(block.data(), digest.data(), digest.size());
    } else {
        std::memcpy(block.data(), key.data(), key.size());
    }
    return block;
}

std::array<std::uint8_t, 64> block_key_sha1(std::span<const std::uint8_t> key) noexcept {
    std::array<std::uint8_t, 64> block{};
    if (key.size() > block.size()) {
        const Digest160 digest = Sha1::hash(key);
        std::memcpy(block.data(), digest.data(), digest.size());
    } else {
        std::memcpy(block.data(), key.data(), key.size());
    }
    return block;
}

}  // namespace

HmacSha256::HmacSha256(std::span<const std::uint8_t> key) noexcept {
    const auto block = block_key_sha256(key);
    std::array<std::uint8_t, 64> ipad_key{};
    for (std::size_t i = 0; i < 64; ++i) {
        ipad_key[i] = static_cast<std::uint8_t>(block[i] ^ 0x36);
        opad_key_[i] = static_cast<std::uint8_t>(block[i] ^ 0x5c);
    }
    inner_.update(ipad_key);
}

Digest256 HmacSha256::finish() noexcept {
    MCAUTH_OBS_COUNT("crypto.hmac_sha256.ops");
    const Digest256 inner_digest = inner_.finish();
    Sha256 outer;
    outer.update(opad_key_);
    outer.update(inner_digest);
    return outer.finish();
}

HmacSha256Key::HmacSha256Key(std::span<const std::uint8_t> key) noexcept {
    const auto block = block_key_sha256(key);
    for (std::size_t i = 0; i < 64; ++i) {
        ipad_[i] = static_cast<std::uint8_t>(block[i] ^ 0x36);
        opad_[i] = static_cast<std::uint8_t>(block[i] ^ 0x5c);
    }
}

void hmac_sha256_many(const HmacSha256Key& key, const HashInput* messages, std::size_t count,
                      Digest256* out) noexcept {
    MCAUTH_OBS_COUNT_N("crypto.hmac_sha256.ops", count);
    // Two batched passes per lane group: inner = H(ipad || msg), then
    // outer = H(opad || inner). The inner digests live in a stack chunk, so
    // the outer HashInputs can borrow them safely.
    std::size_t i = 0;
    while (i < count) {
        const std::size_t group = std::min(Sha256x8::kLanes, count - i);
        std::array<HashInput, Sha256x8::kLanes> batch;
        std::array<Digest256, Sha256x8::kLanes> inner;
        for (std::size_t l = 0; l < group; ++l) {
            const HashInput& msg = messages[i + l];
            HashInput& in = batch[l];
            in = HashInput(key.ipad_block());
            for (std::size_t p = 0; p < msg.part_count; ++p) in.add(msg.parts[p]);
        }
        Sha256x8::hash_many(batch.data(), group, inner.data());
        for (std::size_t l = 0; l < group; ++l) {
            batch[l] = HashInput(key.opad_block());
            batch[l].add(inner[l]);
        }
        Sha256x8::hash_many(batch.data(), group, out + i);
        i += group;
    }
}

Digest256 hmac_sha256(std::span<const std::uint8_t> key,
                      std::span<const std::uint8_t> message) noexcept {
    HmacSha256 mac(key);
    mac.update(message);
    return mac.finish();
}

Digest160 hmac_sha1(std::span<const std::uint8_t> key,
                    std::span<const std::uint8_t> message) noexcept {
    MCAUTH_OBS_COUNT("crypto.hmac_sha1.ops");
    const auto block = block_key_sha1(key);
    std::array<std::uint8_t, 64> ipad_key{};
    std::array<std::uint8_t, 64> opad_key{};
    for (std::size_t i = 0; i < 64; ++i) {
        ipad_key[i] = static_cast<std::uint8_t>(block[i] ^ 0x36);
        opad_key[i] = static_cast<std::uint8_t>(block[i] ^ 0x5c);
    }
    Sha1 inner;
    inner.update(ipad_key);
    inner.update(message);
    const Digest160 inner_digest = inner.finish();
    Sha1 outer;
    outer.update(opad_key);
    outer.update(inner_digest);
    return outer.finish();
}

}  // namespace mcauth

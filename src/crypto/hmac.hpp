// HMAC (RFC 2104) over SHA-256 and SHA-1.
//
// HMAC-SHA256 is the MAC used by our TESLA implementation, and doubles as
// the pseudo-random function for key-chain derivation (crypto/keychain.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"

namespace mcauth {

Digest256 hmac_sha256(std::span<const std::uint8_t> key,
                      std::span<const std::uint8_t> message) noexcept;

Digest160 hmac_sha1(std::span<const std::uint8_t> key,
                    std::span<const std::uint8_t> message) noexcept;

/// Streaming HMAC-SHA256 for multi-part messages (header || payload).
class HmacSha256 {
public:
    explicit HmacSha256(std::span<const std::uint8_t> key) noexcept;

    void update(std::span<const std::uint8_t> data) noexcept { inner_.update(data); }
    Digest256 finish() noexcept;

private:
    Sha256 inner_;
    std::array<std::uint8_t, 64> opad_key_{};
};

}  // namespace mcauth

// HMAC (RFC 2104) over SHA-256 and SHA-1.
//
// HMAC-SHA256 is the MAC used by our TESLA implementation, and doubles as
// the pseudo-random function for key-chain derivation (crypto/keychain.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha256_batch.hpp"

namespace mcauth {

Digest256 hmac_sha256(std::span<const std::uint8_t> key,
                      std::span<const std::uint8_t> message) noexcept;

Digest160 hmac_sha1(std::span<const std::uint8_t> key,
                    std::span<const std::uint8_t> message) noexcept;

/// Streaming HMAC-SHA256 for multi-part messages (header || payload).
class HmacSha256 {
public:
    explicit HmacSha256(std::span<const std::uint8_t> key) noexcept;

    void update(std::span<const std::uint8_t> data) noexcept { inner_.update(data); }
    Digest256 finish() noexcept;

private:
    Sha256 inner_;
    std::array<std::uint8_t, 64> opad_key_{};
};

/// A key prepared for batch HMAC-SHA256: normalization and the ipad/opad
/// XORs are done once, then shared across every message MAC'd under the key
/// (TESLA MACs a whole interval's packets under one chain key).
class HmacSha256Key {
public:
    explicit HmacSha256Key(std::span<const std::uint8_t> key) noexcept;

    std::span<const std::uint8_t> ipad_block() const noexcept { return ipad_; }
    std::span<const std::uint8_t> opad_block() const noexcept { return opad_; }

private:
    std::array<std::uint8_t, 64> ipad_{};
    std::array<std::uint8_t, 64> opad_{};
};

/// Batch HMAC-SHA256 over the multi-buffer hasher: `out[i]` receives the MAC
/// of `messages[i]` under `key`, byte-identical to `hmac_sha256`. Each
/// message may use at most `HashInput::kMaxParts - 1` parts (one slot is
/// consumed by the ipad block).
void hmac_sha256_many(const HmacSha256Key& key, const HashInput* messages, std::size_t count,
                      Digest256* out) noexcept;

}  // namespace mcauth

// Winternitz one-time signatures (WOTS) over SHA-256.
//
// Signing a 256-bit digest with Winternitz parameter w (bits per chunk):
// the digest is cut into L1 = ceil(256/w) chunks; a checksum over
// (2^w - 1 - chunk) values is appended as L2 more chunks so that increasing
// any message chunk forces some checksum chunk to *decrease*, which a forger
// cannot do without inverting the hash chain. Each of the L = L1 + L2 chains
// starts at a secret derived from a seed via HMAC and is iterated
// 2^w - 1 times to the public chain end.
//
// Together with a Merkle tree over many one-time public keys this gives the
// fast many-time signer the stream simulator uses (RSA remains available for
// period-accurate byte counts; WOTS keeps billion-packet simulations cheap).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/sha256.hpp"

namespace mcauth {

struct WotsParams {
    unsigned w = 4;  // bits per chunk; 4 is a good speed/size tradeoff

    unsigned chunk_values() const noexcept { return 1u << w; }
    std::size_t message_chunks() const noexcept { return (256 + w - 1) / w; }
    std::size_t checksum_chunks() const noexcept;
    std::size_t total_chunks() const noexcept {
        return message_chunks() + checksum_chunks();
    }
    std::size_t signature_bytes() const noexcept {
        return total_chunks() * sizeof(Digest256);
    }
};

struct WotsSignature {
    std::vector<Digest256> chain_values;  // one partially-iterated chain per chunk
};

class WotsKey {
public:
    /// Derive the one-time key deterministically from (seed, index); the
    /// Merkle signer uses the index to carve independent keys from one seed.
    WotsKey(std::span<const std::uint8_t> seed, std::uint64_t index, WotsParams params = {});

    const WotsParams& params() const noexcept { return params_; }

    /// Compressed public key: hash of all chain ends.
    const Digest256& public_key() const noexcept { return public_key_; }

    WotsSignature sign(const Digest256& message_digest) const;

    /// Recompute the public key a signature implies; comparing against an
    /// authentic public key (e.g. a Merkle leaf) completes verification.
    static Digest256 recover_public_key(const WotsSignature& sig,
                                        const Digest256& message_digest,
                                        WotsParams params = {});

    static bool verify(const WotsSignature& sig, const Digest256& message_digest,
                       const Digest256& expected_public_key, WotsParams params = {});

private:
    WotsParams params_;
    std::vector<Digest256> secrets_;  // chain starts
    Digest256 public_key_{};
};

/// Split digest into w-bit chunks and append the Winternitz checksum chunks.
std::vector<std::uint32_t> wots_chunks(const Digest256& digest, WotsParams params);

}  // namespace mcauth

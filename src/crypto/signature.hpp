// Signature abstraction used by every signature-amortization scheme.
//
// All hash-chained schemes (Rohatgi, EMSS, AC, the Wong–Lam tree) and TESLA's
// bootstrap packet sign exactly one message per block. The schemes code
// against this interface so the signer is swappable:
//
//   * RsaSigner        - RSASSA-PKCS1-v1_5 over our bignum RSA. The
//                        period-accurate choice (the paper's l_sign is an
//                        RSA-1024 signature).
//   * MerkleWotsSigner - Winternitz one-time signatures under a Merkle root;
//                        hash-only, so large stream simulations stay cheap
//                        while still exercising a real sign/verify path.
//   * HmacSigner       - shared-key MAC masquerading as a signature.
//                        SIMULATION ONLY: it provides no source
//                        authentication against colluding receivers (this is
//                        precisely the multicast MAC problem from §1 of the
//                        paper); it exists for loss/delay experiments where
//                        cryptographic asymmetry is irrelevant.
//
// A signer hands out a Verifier that holds only public material, mirroring
// the sender/receiver split of a real deployment.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "crypto/merkle.hpp"
#include "crypto/rsa.hpp"
#include "crypto/wots.hpp"

namespace mcauth {

class SignatureVerifier {
public:
    virtual ~SignatureVerifier() = default;
    virtual bool verify(std::span<const std::uint8_t> message,
                        std::span<const std::uint8_t> signature) const = 0;

    /// Verify a block's worth of (message, signature) pairs at once.
    /// `out[i]` equals what verify(messages[i], signatures[i]) returns; the
    /// default is that loop, while backends with a cheaper amortized path
    /// (RSA screening, batched MACs) override it.
    virtual std::vector<bool> verify_batch(
        std::span<const std::span<const std::uint8_t>> messages,
        std::span<const std::span<const std::uint8_t>> signatures) const;
};

class Signer {
public:
    virtual ~Signer() = default;

    virtual std::vector<std::uint8_t> sign(std::span<const std::uint8_t> message) = 0;

    /// Nominal signature size in bytes (the paper's l_sign).
    virtual std::size_t signature_bytes() const = 0;

    virtual std::string name() const = 0;

    /// Verifier holding only public material.
    virtual std::unique_ptr<SignatureVerifier> make_verifier() const = 0;
};

/// RSA-backed signer. `bits` is the modulus size.
class RsaSigner final : public Signer {
public:
    RsaSigner(Rng& rng, std::size_t bits);

    std::vector<std::uint8_t> sign(std::span<const std::uint8_t> message) override;
    std::size_t signature_bytes() const override { return key_.pub.modulus_bytes(); }
    std::string name() const override;
    std::unique_ptr<SignatureVerifier> make_verifier() const override;

    const RsaPublicKey& public_key() const noexcept { return key_.pub; }

private:
    RsaKeyPair key_;
};

/// Merkle many-time signer over WOTS one-time keys. Capacity is fixed at
/// construction; sign() consumes keys sequentially and throws once exhausted.
class MerkleWotsSigner final : public Signer {
public:
    MerkleWotsSigner(Rng& rng, std::size_t capacity, WotsParams params = {});

    std::vector<std::uint8_t> sign(std::span<const std::uint8_t> message) override;
    std::size_t signature_bytes() const override;
    std::string name() const override { return "merkle-wots"; }
    std::unique_ptr<SignatureVerifier> make_verifier() const override;

    const Digest256& root() const noexcept { return tree_->root(); }
    std::size_t remaining() const noexcept { return keys_.size() - next_; }

private:
    WotsParams params_;
    std::vector<std::uint8_t> seed_;
    std::vector<WotsKey> keys_;
    std::unique_ptr<MerkleTree> tree_;
    std::size_t next_ = 0;
};

/// Shared-key MAC pretending to be a signature — simulation only (see above).
/// `pretend_bytes` lets overhead experiments model any nominal l_sign.
class HmacSigner final : public Signer {
public:
    HmacSigner(Rng& rng, std::size_t pretend_bytes = 128);

    std::vector<std::uint8_t> sign(std::span<const std::uint8_t> message) override;
    std::size_t signature_bytes() const override { return pretend_bytes_; }
    std::string name() const override { return "hmac-simulated"; }
    std::unique_ptr<SignatureVerifier> make_verifier() const override;

private:
    std::vector<std::uint8_t> key_;
    std::size_t pretend_bytes_;
};

}  // namespace mcauth

// RSA signatures over the bignum substrate: key generation (Miller–Rabin),
// RSASSA-PKCS1-v1_5 signing/verification with SHA-256.
//
// The paper's schemes amortize exactly one signature per block; in 2003 that
// signature was RSA-1024. We reproduce the same code path. Key sizes are a
// parameter: tests use 512-bit keys (fast, deterministic), benches can use
// 1024/2048 for period-accurate signature lengths.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/bignum.hpp"
#include "util/rng.hpp"

namespace mcauth {

struct RsaPublicKey {
    Bignum n;
    Bignum e;

    /// Modulus length in bytes == signature length.
    std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }
};

struct RsaKeyPair {
    RsaPublicKey pub;
    Bignum d;  // private exponent

    // CRT components (PKCS#1 private-key form): signing via two half-size
    // exponentiations mod p and q plus Garner recombination is ~3-4x
    // faster than one exponentiation mod n. Populated by generate().
    Bignum p;
    Bignum q;
    Bignum d_p;    // d mod (p-1)
    Bignum d_q;    // d mod (q-1)
    Bignum q_inv;  // q^-1 mod p

    bool has_crt() const noexcept { return !p.is_zero(); }

    /// Generate a key pair with a modulus of `bits` bits and e = 65537.
    static RsaKeyPair generate(Rng& rng, std::size_t bits);
};

/// Sign SHA-256(message) with RSASSA-PKCS1-v1_5. Returns modulus_bytes() bytes.
std::vector<std::uint8_t> rsa_sign(const RsaKeyPair& key,
                                   std::span<const std::uint8_t> message);

/// Verify an RSASSA-PKCS1-v1_5 signature over SHA-256(message).
bool rsa_verify(const RsaPublicKey& key, std::span<const std::uint8_t> message,
                std::span<const std::uint8_t> signature);

/// Batch verification of a block's signatures under one key (MABS-style):
/// message hashing goes through the multi-buffer SHA-256 and the public-key
/// work is one screening exponentiation — (Π s_i)^e ≡ Π EM_i (mod n), the
/// Bellare–Garay–Rabin test — instead of one per packet. If the screen
/// fails, every screened item is re-verified individually, so the result
/// vector always equals per-item `rsa_verify` on honest and on tampered
/// input alike. Malformed signatures (wrong length, s >= n) are rejected
/// up front without spoiling the batch.
///
/// Caveat (inherent to screening): a batch that passes proves the
/// *products* match; an adversary who can inject multiplicatively related
/// forgeries into one block could cancel terms. That is the standard batch
/// trade MABS accepts for per-block amortization; callers that need
/// per-item soundness against in-block adversaries should verify items
/// individually.
std::vector<bool> rsa_verify_batch(const RsaPublicKey& key,
                                   std::span<const std::span<const std::uint8_t>> messages,
                                   std::span<const std::span<const std::uint8_t>> signatures);

}  // namespace mcauth

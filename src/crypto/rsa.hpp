// RSA signatures over the bignum substrate: key generation (Miller–Rabin),
// RSASSA-PKCS1-v1_5 signing/verification with SHA-256.
//
// The paper's schemes amortize exactly one signature per block; in 2003 that
// signature was RSA-1024. We reproduce the same code path. Key sizes are a
// parameter: tests use 512-bit keys (fast, deterministic), benches can use
// 1024/2048 for period-accurate signature lengths.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/bignum.hpp"
#include "util/rng.hpp"

namespace mcauth {

struct RsaPublicKey {
    Bignum n;
    Bignum e;

    /// Modulus length in bytes == signature length.
    std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }
};

struct RsaKeyPair {
    RsaPublicKey pub;
    Bignum d;  // private exponent

    // CRT components (PKCS#1 private-key form): signing via two half-size
    // exponentiations mod p and q plus Garner recombination is ~3-4x
    // faster than one exponentiation mod n. Populated by generate().
    Bignum p;
    Bignum q;
    Bignum d_p;    // d mod (p-1)
    Bignum d_q;    // d mod (q-1)
    Bignum q_inv;  // q^-1 mod p

    bool has_crt() const noexcept { return !p.is_zero(); }

    /// Generate a key pair with a modulus of `bits` bits and e = 65537.
    static RsaKeyPair generate(Rng& rng, std::size_t bits);
};

/// Sign SHA-256(message) with RSASSA-PKCS1-v1_5. Returns modulus_bytes() bytes.
std::vector<std::uint8_t> rsa_sign(const RsaKeyPair& key,
                                   std::span<const std::uint8_t> message);

/// Verify an RSASSA-PKCS1-v1_5 signature over SHA-256(message).
bool rsa_verify(const RsaPublicKey& key, std::span<const std::uint8_t> message,
                std::span<const std::uint8_t> signature);

}  // namespace mcauth

#include "crypto/sha256_batch.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "obs/obs.hpp"

#if defined(__GNUC__) && defined(__x86_64__)
#define MCAUTH_SHA_HAVE_AVX2_KERNEL 1
#include <immintrin.h>
#else
#define MCAUTH_SHA_HAVE_AVX2_KERNEL 0
#endif

namespace mcauth {

namespace {

// Same constants as sha256.cpp; duplicated here because they are part of the
// FIPS 180-4 specification, not shared mutable state.
constexpr std::uint32_t kInit[8] = {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
                                    0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};

constexpr std::uint32_t kRound[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu, 0x59f111f1u,
    0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u, 0x243185beu, 0x550c7dc3u,
    0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u, 0xc19bf174u, 0xe49b69c1u, 0xefbe4786u,
    0x0fc19dc6u, 0x240ca1ccu, 0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau,
    0x983e5152u, 0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu, 0x53380d13u,
    0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u, 0xa2bfe8a1u, 0xa81a664bu,
    0xc24b8b70u, 0xc76c51a3u, 0xd192e819u, 0xd6990624u, 0xf40e3585u, 0x106aa070u,
    0x19a4c116u, 0x1e376c08u, 0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au,
    0x5b9cca4fu, 0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u};

alignas(32) constexpr std::uint8_t kZeroBlock[64] = {};

std::atomic<bool> g_forced_scalar{false};

/// Streams the padded message of one lane as a sequence of 64-byte blocks.
/// Blocks that lie entirely inside one input span are returned by pointer
/// (zero copy); blocks that straddle part boundaries or contain padding are
/// assembled into a per-lane staging buffer.
struct LaneFeed {
    const HashInput* in = nullptr;
    std::size_t part = 0;
    std::size_t offset = 0;        // into parts[part]
    std::size_t msg_remaining = 0;
    std::uint64_t total_bytes = 0;
    std::size_t blocks_total = 0;
    std::size_t blocks_emitted = 0;
    bool pad_80_done = false;
    alignas(32) std::uint8_t staging[64];

    void init(const HashInput& input) noexcept {
        in = &input;
        part = 0;
        offset = 0;
        total_bytes = input.total_bytes();
        msg_remaining = static_cast<std::size_t>(total_bytes);
        // Padded length = message + 0x80 + zeros + 8-byte bit count, rounded
        // up to a whole number of 64-byte blocks.
        blocks_total = static_cast<std::size_t>((total_bytes + 9 + 63) / 64);
        blocks_emitted = 0;
        pad_80_done = false;
    }

    void skip_exhausted_parts() noexcept {
        while (part < in->part_count && offset == in->parts[part].size()) {
            ++part;
            offset = 0;
        }
    }

    const std::uint8_t* next_block() noexcept {
        const bool last = (++blocks_emitted == blocks_total);
        skip_exhausted_parts();
        // Fast path: a full block of contiguous message bytes. The final
        // block always carries padding (<= 55 message bytes), so `last`
        // never takes this path.
        if (msg_remaining >= 64 && part < in->part_count &&
            in->parts[part].size() - offset >= 64) {
            const std::uint8_t* p = in->parts[part].data() + offset;
            offset += 64;
            msg_remaining -= 64;
            return p;
        }
        std::size_t filled = 0;
        while (filled < 64 && msg_remaining > 0) {
            skip_exhausted_parts();
            const auto& span = in->parts[part];
            const std::size_t take = std::min(span.size() - offset, 64 - filled);
            std::memcpy(staging + filled, span.data() + offset, take);
            filled += take;
            offset += take;
            msg_remaining -= take;
        }
        if (filled < 64) {
            if (!pad_80_done) {
                staging[filled++] = 0x80;
                pad_80_done = true;
            }
            std::memset(staging + filled, 0, 64 - filled);
        }
        if (last) {
            const std::uint64_t bits = total_bytes * 8;
            for (int i = 0; i < 8; ++i)
                staging[56 + i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
        }
        return staging;
    }
};

Digest256 hash_one_scalar(const HashInput& in) noexcept {
    Sha256 h;
    for (std::size_t i = 0; i < in.part_count; ++i) h.update(in.parts[i]);
    return h.finish();
}

#if MCAUTH_SHA_HAVE_AVX2_KERNEL

__attribute__((target("avx2"))) inline __m256i rotr32(__m256i x, int n) noexcept {
    return _mm256_or_si256(_mm256_srli_epi32(x, n), _mm256_slli_epi32(x, 32 - n));
}

/// One SHA-256 compression over eight independent blocks. `state[w]` holds
/// state word `w` of all eight lanes (lane l in 32-bit element l); lanes
/// whose 32-bit element of `active` is zero keep their previous state, which
/// is how ragged-length batches retire short lanes while long ones continue.
__attribute__((target("avx2"))) void compress8_avx2(__m256i state[8],
                                                    const std::uint8_t* const block[8],
                                                    __m256i active) noexcept {
    // Byte shuffle that big-endian-swaps each 32-bit element.
    const __m256i bswap = _mm256_setr_epi8(3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12,
                                           3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);

    // Load + transpose: two 8x8 tiles of 32-bit words turn "one row per
    // block" into "one register per message-schedule word".
    __m256i w[16];
    for (int tile = 0; tile < 2; ++tile) {
        __m256i r[8];
        for (int l = 0; l < 8; ++l) {
            r[l] = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(block[l] + 32 * tile));
        }
        const __m256i t0 = _mm256_unpacklo_epi32(r[0], r[1]);
        const __m256i t1 = _mm256_unpackhi_epi32(r[0], r[1]);
        const __m256i t2 = _mm256_unpacklo_epi32(r[2], r[3]);
        const __m256i t3 = _mm256_unpackhi_epi32(r[2], r[3]);
        const __m256i t4 = _mm256_unpacklo_epi32(r[4], r[5]);
        const __m256i t5 = _mm256_unpackhi_epi32(r[4], r[5]);
        const __m256i t6 = _mm256_unpacklo_epi32(r[6], r[7]);
        const __m256i t7 = _mm256_unpackhi_epi32(r[6], r[7]);
        const __m256i u0 = _mm256_unpacklo_epi64(t0, t2);
        const __m256i u1 = _mm256_unpackhi_epi64(t0, t2);
        const __m256i u2 = _mm256_unpacklo_epi64(t1, t3);
        const __m256i u3 = _mm256_unpackhi_epi64(t1, t3);
        const __m256i u4 = _mm256_unpacklo_epi64(t4, t6);
        const __m256i u5 = _mm256_unpackhi_epi64(t4, t6);
        const __m256i u6 = _mm256_unpacklo_epi64(t5, t7);
        const __m256i u7 = _mm256_unpackhi_epi64(t5, t7);
        __m256i* dst = w + 8 * tile;
        dst[0] = _mm256_permute2x128_si256(u0, u4, 0x20);
        dst[1] = _mm256_permute2x128_si256(u1, u5, 0x20);
        dst[2] = _mm256_permute2x128_si256(u2, u6, 0x20);
        dst[3] = _mm256_permute2x128_si256(u3, u7, 0x20);
        dst[4] = _mm256_permute2x128_si256(u0, u4, 0x31);
        dst[5] = _mm256_permute2x128_si256(u1, u5, 0x31);
        dst[6] = _mm256_permute2x128_si256(u2, u6, 0x31);
        dst[7] = _mm256_permute2x128_si256(u3, u7, 0x31);
    }
    for (int t = 0; t < 16; ++t) w[t] = _mm256_shuffle_epi8(w[t], bswap);

    __m256i a = state[0], b = state[1], c = state[2], d = state[3];
    __m256i e = state[4], f = state[5], g = state[6], h = state[7];

    for (int t = 0; t < 64; ++t) {
        if (t >= 16) {
            const __m256i w15 = w[(t - 15) & 15];
            const __m256i w2 = w[(t - 2) & 15];
            const __m256i s0 = _mm256_xor_si256(_mm256_xor_si256(rotr32(w15, 7), rotr32(w15, 18)),
                                                _mm256_srli_epi32(w15, 3));
            const __m256i s1 = _mm256_xor_si256(_mm256_xor_si256(rotr32(w2, 17), rotr32(w2, 19)),
                                                _mm256_srli_epi32(w2, 10));
            w[t & 15] = _mm256_add_epi32(
                _mm256_add_epi32(w[t & 15], s0),
                _mm256_add_epi32(w[(t - 7) & 15], s1));
        }
        const __m256i big_s1 =
            _mm256_xor_si256(_mm256_xor_si256(rotr32(e, 6), rotr32(e, 11)), rotr32(e, 25));
        const __m256i ch = _mm256_xor_si256(_mm256_and_si256(e, f),
                                            _mm256_andnot_si256(e, g));
        const __m256i temp1 = _mm256_add_epi32(
            _mm256_add_epi32(_mm256_add_epi32(h, big_s1), _mm256_add_epi32(ch, w[t & 15])),
            _mm256_set1_epi32(static_cast<int>(kRound[t])));
        const __m256i big_s0 =
            _mm256_xor_si256(_mm256_xor_si256(rotr32(a, 2), rotr32(a, 13)), rotr32(a, 22));
        const __m256i maj = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
            _mm256_and_si256(b, c));
        const __m256i temp2 = _mm256_add_epi32(big_s0, maj);
        h = g;
        g = f;
        f = e;
        e = _mm256_add_epi32(d, temp1);
        d = c;
        c = b;
        b = a;
        a = _mm256_add_epi32(temp1, temp2);
    }

    const __m256i vars[8] = {a, b, c, d, e, f, g, h};
    for (int i = 0; i < 8; ++i) {
        const __m256i next = _mm256_add_epi32(state[i], vars[i]);
        state[i] = _mm256_blendv_epi8(state[i], next, active);
    }
}

/// Hash up to eight messages through the transposed-state kernel. Lanes
/// beyond `count` (and lanes whose message is shorter than the batch
/// maximum) feed the zero block with their state update masked off.
__attribute__((target("avx2"))) void hash_group_avx2(const HashInput* inputs, std::size_t count,
                                                     Digest256* out) noexcept {
    LaneFeed feeds[Sha256x8::kLanes];
    std::size_t blocks[Sha256x8::kLanes] = {};
    std::size_t max_blocks = 0;
    for (std::size_t l = 0; l < count; ++l) {
        feeds[l].init(inputs[l]);
        blocks[l] = feeds[l].blocks_total;
        max_blocks = std::max(max_blocks, blocks[l]);
    }

    __m256i state[8];
    for (int i = 0; i < 8; ++i) state[i] = _mm256_set1_epi32(static_cast<int>(kInit[i]));

    for (std::size_t b = 0; b < max_blocks; ++b) {
        const std::uint8_t* ptr[Sha256x8::kLanes];
        alignas(32) std::int32_t lane_mask[Sha256x8::kLanes];
        for (std::size_t l = 0; l < Sha256x8::kLanes; ++l) {
            const bool on = b < blocks[l];
            ptr[l] = on ? feeds[l].next_block() : kZeroBlock;
            lane_mask[l] = on ? -1 : 0;
        }
        const __m256i active =
            _mm256_load_si256(reinterpret_cast<const __m256i*>(lane_mask));
        compress8_avx2(state, ptr, active);
    }

    alignas(32) std::uint32_t cols[8][8];
    for (int i = 0; i < 8; ++i)
        _mm256_store_si256(reinterpret_cast<__m256i*>(cols[i]), state[i]);
    for (std::size_t l = 0; l < count; ++l) {
        for (int i = 0; i < 8; ++i) {
            const std::uint32_t word = cols[i][l];
            out[l][4 * i] = static_cast<std::uint8_t>(word >> 24);
            out[l][4 * i + 1] = static_cast<std::uint8_t>(word >> 16);
            out[l][4 * i + 2] = static_cast<std::uint8_t>(word >> 8);
            out[l][4 * i + 3] = static_cast<std::uint8_t>(word);
        }
    }
}

bool cpu_has_avx2() noexcept { return __builtin_cpu_supports("avx2"); }

#endif  // MCAUTH_SHA_HAVE_AVX2_KERNEL

}  // namespace

bool Sha256x8::uses_avx2() noexcept {
#if MCAUTH_SHA_HAVE_AVX2_KERNEL
    static const bool have_avx2 = cpu_has_avx2();
    return have_avx2;
#else
    return false;
#endif
}

bool Sha256x8::set_forced_scalar(bool forced) noexcept {
    return g_forced_scalar.exchange(forced, std::memory_order_relaxed);
}

bool Sha256x8::forced_scalar() noexcept {
    return g_forced_scalar.load(std::memory_order_relaxed);
}

void Sha256x8::hash_many(const HashInput* inputs, std::size_t count, Digest256* out) noexcept {
    const bool simd = uses_avx2() && !forced_scalar();
    std::size_t i = 0;
    while (i < count) {
        const std::size_t group = std::min(kLanes, count - i);
        // A single message gains nothing from the wide kernel; everything
        // else is cheaper per lane even when some lanes idle.
#if MCAUTH_SHA_HAVE_AVX2_KERNEL
        if (simd && group >= 2) {
            MCAUTH_OBS_COUNT("crypto.batch.calls");
            MCAUTH_OBS_COUNT_N("crypto.batch.lanes_filled", group);
            // Mirror the scalar accounting in Sha256::finish() so
            // crypto.sha256.* stays comparable across engines.
            MCAUTH_OBS_COUNT_N("crypto.sha256.ops", group);
            std::size_t bytes = 0;
            for (std::size_t l = 0; l < group; ++l) bytes += inputs[i + l].total_bytes();
            MCAUTH_OBS_COUNT_N("crypto.sha256.bytes", bytes);
            hash_group_avx2(inputs + i, group, out + i);
            i += group;
            continue;
        }
#else
        (void)simd;
#endif
        MCAUTH_OBS_COUNT_N("crypto.batch.scalar_lanes", group);
        for (std::size_t l = 0; l < group; ++l) out[i + l] = hash_one_scalar(inputs[i + l]);
        i += group;
    }
}

void Sha256x8::hash_many(std::span<const std::span<const std::uint8_t>> messages,
                         Digest256* out) noexcept {
    std::array<HashInput, kLanes> chunk;
    std::size_t i = 0;
    while (i < messages.size()) {
        const std::size_t group = std::min(kLanes, messages.size() - i);
        for (std::size_t l = 0; l < group; ++l) chunk[l] = HashInput(messages[i + l]);
        hash_many(chunk.data(), group, out + i);
        i += group;
    }
}

}  // namespace mcauth

// SHA-1 (FIPS 180-4). Included because the 2003-era schemes the paper
// analyzes were specified over SHA-1/MD5-size digests; the wire-format
// layer can select it to reproduce period-accurate overhead numbers.
// (Do not use SHA-1 for new designs; it is here for fidelity, not security.)
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace mcauth {

using Digest160 = std::array<std::uint8_t, 20>;

class Sha1 {
public:
    Sha1() noexcept { reset(); }

    void reset() noexcept;
    void update(std::span<const std::uint8_t> data) noexcept;
    void update(std::string_view text) noexcept;
    Digest160 finish() noexcept;

    static Digest160 hash(std::span<const std::uint8_t> data) noexcept;
    static Digest160 hash(std::string_view text) noexcept;

private:
    void process_block(const std::uint8_t* block) noexcept;

    std::array<std::uint32_t, 5> state_{};
    std::array<std::uint8_t, 64> buffer_{};
    std::size_t buffered_ = 0;
    std::uint64_t total_bytes_ = 0;
};

}  // namespace mcauth

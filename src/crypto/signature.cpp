#include "crypto/signature.hpp"

#include <cstring>
#include <stdexcept>

#include "crypto/hmac.hpp"
#include "util/check.hpp"

namespace mcauth {

std::vector<bool> SignatureVerifier::verify_batch(
    std::span<const std::span<const std::uint8_t>> messages,
    std::span<const std::span<const std::uint8_t>> signatures) const {
    MCAUTH_EXPECTS(messages.size() == signatures.size());
    std::vector<bool> ok(messages.size());
    for (std::size_t i = 0; i < messages.size(); ++i)
        ok[i] = verify(messages[i], signatures[i]);
    return ok;
}

// ---------------------------------------------------------------- RsaSigner

namespace {

class RsaVerifier final : public SignatureVerifier {
public:
    explicit RsaVerifier(RsaPublicKey key) : key_(std::move(key)) {}

    bool verify(std::span<const std::uint8_t> message,
                std::span<const std::uint8_t> signature) const override {
        return rsa_verify(key_, message, signature);
    }

    std::vector<bool> verify_batch(
        std::span<const std::span<const std::uint8_t>> messages,
        std::span<const std::span<const std::uint8_t>> signatures) const override {
        return rsa_verify_batch(key_, messages, signatures);
    }

private:
    RsaPublicKey key_;
};

}  // namespace

RsaSigner::RsaSigner(Rng& rng, std::size_t bits) : key_(RsaKeyPair::generate(rng, bits)) {}

std::vector<std::uint8_t> RsaSigner::sign(std::span<const std::uint8_t> message) {
    return rsa_sign(key_, message);
}

std::string RsaSigner::name() const {
    return "rsa-" + std::to_string(key_.pub.n.bit_length());
}

std::unique_ptr<SignatureVerifier> RsaSigner::make_verifier() const {
    return std::make_unique<RsaVerifier>(key_.pub);
}

// --------------------------------------------------------- MerkleWotsSigner
//
// Wire format of a signature:
//   u32 leaf_index
//   u16 chain_count      (L)
//   L x 32-byte chain values
//   u16 proof_steps      (h)
//   h x (32-byte sibling + 1 side byte)

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int b = 0; b < 4; ++b) out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

class WotsSigReader {
public:
    explicit WotsSigReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

    bool u32(std::uint32_t& v) noexcept {
        if (pos_ + 4 > data_.size()) return false;
        v = 0;
        for (int b = 0; b < 4; ++b) v |= std::uint32_t(data_[pos_ + b]) << (8 * b);
        pos_ += 4;
        return true;
    }

    bool u16(std::uint16_t& v) noexcept {
        if (pos_ + 2 > data_.size()) return false;
        v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
        pos_ += 2;
        return true;
    }

    bool digest(Digest256& d) noexcept {
        if (pos_ + d.size() > data_.size()) return false;
        std::memcpy(d.data(), data_.data() + pos_, d.size());
        pos_ += d.size();
        return true;
    }

    bool byte(std::uint8_t& b) noexcept {
        if (pos_ >= data_.size()) return false;
        b = data_[pos_++];
        return true;
    }

    bool exhausted() const noexcept { return pos_ == data_.size(); }

private:
    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
};

class MerkleWotsVerifier final : public SignatureVerifier {
public:
    MerkleWotsVerifier(Digest256 root, WotsParams params) : root_(root), params_(params) {}

    bool verify(std::span<const std::uint8_t> message,
                std::span<const std::uint8_t> signature) const override {
        WotsSigReader reader(signature);
        std::uint32_t leaf_index = 0;
        std::uint16_t chain_count = 0;
        if (!reader.u32(leaf_index) || !reader.u16(chain_count)) return false;
        if (chain_count != params_.total_chunks()) return false;

        WotsSignature wots_sig;
        wots_sig.chain_values.resize(chain_count);
        for (auto& v : wots_sig.chain_values)
            if (!reader.digest(v)) return false;

        std::uint16_t proof_steps = 0;
        if (!reader.u16(proof_steps)) return false;
        MerkleProof proof;
        proof.leaf_index = leaf_index;
        proof.steps.resize(proof_steps);
        for (auto& step : proof.steps) {
            std::uint8_t side = 0;
            if (!reader.digest(step.sibling) || !reader.byte(side)) return false;
            step.sibling_is_left = side != 0;
        }
        if (!reader.exhausted()) return false;

        const Digest256 message_digest = Sha256::hash(message);
        const Digest256 wots_pk =
            WotsKey::recover_public_key(wots_sig, message_digest, params_);
        const Digest256 leaf = MerkleTree::hash_leaf(wots_pk);
        return MerkleTree::verify(leaf, proof, root_);
    }

private:
    Digest256 root_;
    WotsParams params_;
};

}  // namespace

MerkleWotsSigner::MerkleWotsSigner(Rng& rng, std::size_t capacity, WotsParams params)
    : params_(params), seed_(rng.bytes(32)) {
    MCAUTH_EXPECTS(capacity >= 1);
    keys_.reserve(capacity);
    std::vector<Digest256> leaves;
    leaves.reserve(capacity);
    for (std::size_t i = 0; i < capacity; ++i) {
        keys_.emplace_back(seed_, i, params_);
        leaves.push_back(MerkleTree::hash_leaf(keys_.back().public_key()));
    }
    tree_ = std::make_unique<MerkleTree>(std::move(leaves));
}

std::vector<std::uint8_t> MerkleWotsSigner::sign(std::span<const std::uint8_t> message) {
    if (next_ >= keys_.size())
        throw std::runtime_error("MerkleWotsSigner: one-time key capacity exhausted");
    const std::size_t index = next_++;
    const Digest256 message_digest = Sha256::hash(message);
    const WotsSignature wots_sig = keys_[index].sign(message_digest);
    const MerkleProof proof = tree_->prove(index);

    std::vector<std::uint8_t> out;
    out.reserve(signature_bytes());
    put_u32(out, static_cast<std::uint32_t>(index));
    put_u16(out, static_cast<std::uint16_t>(wots_sig.chain_values.size()));
    for (const auto& v : wots_sig.chain_values) out.insert(out.end(), v.begin(), v.end());
    put_u16(out, static_cast<std::uint16_t>(proof.steps.size()));
    for (const auto& step : proof.steps) {
        out.insert(out.end(), step.sibling.begin(), step.sibling.end());
        out.push_back(step.sibling_is_left ? 1 : 0);
    }
    return out;
}

std::size_t MerkleWotsSigner::signature_bytes() const {
    return 4 + 2 + params_.signature_bytes() + 2 +
           tree_->height() * (sizeof(Digest256) + 1);
}

std::unique_ptr<SignatureVerifier> MerkleWotsSigner::make_verifier() const {
    return std::make_unique<MerkleWotsVerifier>(tree_->root(), params_);
}

// --------------------------------------------------------------- HmacSigner

namespace {

class HmacVerifier final : public SignatureVerifier {
public:
    HmacVerifier(std::vector<std::uint8_t> key, std::size_t pretend_bytes)
        : key_(std::move(key)), pretend_bytes_(pretend_bytes) {}

    bool verify(std::span<const std::uint8_t> message,
                std::span<const std::uint8_t> signature) const override {
        if (signature.size() != pretend_bytes_) return false;
        const Digest256 mac = hmac_sha256(key_, message);
        const std::size_t check = std::min(signature.size(), mac.size());
        return ct_equal(signature.first(check),
                        std::span<const std::uint8_t>(mac.data(), check));
    }

    std::vector<bool> verify_batch(
        std::span<const std::span<const std::uint8_t>> messages,
        std::span<const std::span<const std::uint8_t>> signatures) const override {
        MCAUTH_EXPECTS(messages.size() == signatures.size());
        // Recompute every MAC through the multi-buffer hasher, then compare.
        const HmacSha256Key prepared(key_);
        std::vector<Digest256> macs(messages.size());
        std::size_t i = 0;
        std::array<HashInput, Sha256x8::kLanes> chunk;
        while (i < messages.size()) {
            const std::size_t group = std::min(Sha256x8::kLanes, messages.size() - i);
            for (std::size_t l = 0; l < group; ++l) chunk[l] = HashInput(messages[i + l]);
            hmac_sha256_many(prepared, chunk.data(), group, macs.data() + i);
            i += group;
        }
        std::vector<bool> ok(messages.size());
        for (std::size_t j = 0; j < messages.size(); ++j) {
            const auto& sig = signatures[j];
            const std::size_t check = std::min(sig.size(), macs[j].size());
            ok[j] = sig.size() == pretend_bytes_ &&
                    ct_equal(sig.first(check),
                             std::span<const std::uint8_t>(macs[j].data(), check));
        }
        return ok;
    }

private:
    std::vector<std::uint8_t> key_;
    std::size_t pretend_bytes_;
};

}  // namespace

HmacSigner::HmacSigner(Rng& rng, std::size_t pretend_bytes)
    : key_(rng.bytes(32)), pretend_bytes_(pretend_bytes) {
    MCAUTH_EXPECTS(pretend_bytes >= 1);
}

std::vector<std::uint8_t> HmacSigner::sign(std::span<const std::uint8_t> message) {
    const Digest256 mac = hmac_sha256(key_, message);
    std::vector<std::uint8_t> out(pretend_bytes_, 0);
    std::memcpy(out.data(), mac.data(), std::min(out.size(), mac.size()));
    return out;
}

std::unique_ptr<SignatureVerifier> HmacSigner::make_verifier() const {
    return std::make_unique<HmacVerifier>(key_, pretend_bytes_);
}

}  // namespace mcauth

// Multi-buffer SHA-256: hash up to eight independent messages per call.
//
// The data-plane hot loops (Merkle levels, per-block HMAC batches, leaf
// commitments) hash many short, independent messages. A transposed-state
// AVX2 kernel keeps one 32-bit state word of eight messages per 256-bit
// register and runs the FIPS 180-4 compression once for all lanes;
// dispatch follows the xoshiro kernel in util/rng.cpp
// (`__builtin_cpu_supports("avx2")` checked once at startup). Without
// AVX2 — or when forced — every batch routes through the scalar `Sha256`
// class, so results are byte-identical on any CPU by construction.
//
// Messages are described as `HashInput`: up to four non-owning spans that
// are hashed as if concatenated. Four parts cover every caller in the
// tree (domain prefix + node pair, ipad/opad + message, header + payload)
// without materializing concatenations.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "crypto/sha256.hpp"

namespace mcauth {

/// A message to hash, given as the concatenation of up to four byte spans.
/// The spans are borrowed: they must stay alive until the hash call returns.
struct HashInput {
    static constexpr std::size_t kMaxParts = 4;

    std::array<std::span<const std::uint8_t>, kMaxParts> parts{};
    std::size_t part_count = 0;

    constexpr HashInput() noexcept = default;
    explicit HashInput(std::span<const std::uint8_t> message) noexcept { add(message); }

    void add(std::span<const std::uint8_t> part) noexcept {
        parts[part_count++] = part;  // part_count must stay < kMaxParts
    }

    std::size_t total_bytes() const noexcept {
        std::size_t n = 0;
        for (std::size_t i = 0; i < part_count; ++i) n += parts[i].size();
        return n;
    }
};

/// Eight-wide batch hasher. Stateless; all entry points are static and
/// thread-safe (the forced-scalar switch is a test/bench hook, not meant
/// to be toggled concurrently with hashing).
class Sha256x8 {
public:
    static constexpr std::size_t kLanes = 8;

    /// Hash `count` independent messages; `out[i]` receives the digest of
    /// `inputs[i]`. Batches of any size are accepted — full 8-lane groups
    /// go through the SIMD kernel (when available), the ragged tail and
    /// single-message calls fall back to the scalar `Sha256`.
    static void hash_many(const HashInput* inputs, std::size_t count, Digest256* out) noexcept;

    /// Convenience overload for single-span messages.
    static void hash_many(std::span<const std::span<const std::uint8_t>> messages,
                          Digest256* out) noexcept;

    /// True when the AVX2 kernel is compiled in and the CPU supports it.
    static bool uses_avx2() noexcept;

    /// Force the scalar fallback regardless of CPU support (identity tests,
    /// scalar-vs-batch bench arms). Returns the previous setting.
    static bool set_forced_scalar(bool forced) noexcept;
    static bool forced_scalar() noexcept;
};

}  // namespace mcauth

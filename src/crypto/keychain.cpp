#include "crypto/keychain.hpp"

#include "crypto/hmac.hpp"
#include "util/check.hpp"

namespace mcauth {

namespace {

// Domain-separation tags keep the chain PRF and MAC-key PRF independent.
constexpr std::uint8_t kChainTag[] = {'t', 'e', 's', 'l', 'a', '-', 'c', 'h', 'n'};
constexpr std::uint8_t kMacTag[] = {'t', 'e', 's', 'l', 'a', '-', 'm', 'a', 'c'};
constexpr std::uint8_t kSeedTag[] = {'t', 'e', 's', 'l', 'a', '-', 's', 'e', 'd'};

}  // namespace

TeslaKey tesla_chain_step(const TeslaKey& key) noexcept {
    return hmac_sha256(key, std::span<const std::uint8_t>(kChainTag, sizeof kChainTag));
}

TeslaKey tesla_mac_key(const TeslaKey& key) noexcept {
    return hmac_sha256(key, std::span<const std::uint8_t>(kMacTag, sizeof kMacTag));
}

TeslaKeyChain::TeslaKeyChain(std::span<const std::uint8_t> seed, std::size_t length) {
    MCAUTH_EXPECTS(length >= 1);
    keys_.resize(length + 1);
    keys_[length] = hmac_sha256(seed, std::span<const std::uint8_t>(kSeedTag, sizeof kSeedTag));
    for (std::size_t i = length; i > 0; --i) keys_[i - 1] = tesla_chain_step(keys_[i]);
}

const TeslaKey& TeslaKeyChain::key(std::size_t i) const {
    MCAUTH_EXPECTS(i < keys_.size());
    return keys_[i];
}

TeslaKey TeslaKeyChain::mac_key(std::size_t i) const {
    MCAUTH_EXPECTS(i >= 1 && i < keys_.size());
    return tesla_mac_key(keys_[i]);
}

TeslaKeyVerifier::TeslaKeyVerifier(const TeslaKey& commitment) noexcept
    : last_key_(commitment) {}

bool TeslaKeyVerifier::accept(std::size_t index, const TeslaKey& key, std::size_t max_walk) {
    if (index <= last_index_) return false;  // stale or replayed disclosure
    const std::size_t distance = index - last_index_;
    if (distance > max_walk) return false;
    TeslaKey walked = key;
    for (std::size_t i = 0; i < distance; ++i) walked = tesla_chain_step(walked);
    if (!ct_equal(walked, last_key_)) return false;
    last_index_ = index;
    last_key_ = key;
    return true;
}

std::optional<TeslaKey> TeslaKeyVerifier::key_for(std::size_t index) const {
    if (index > last_index_) return std::nullopt;
    TeslaKey walked = last_key_;
    for (std::size_t i = last_index_; i > index; --i) walked = tesla_chain_step(walked);
    return walked;
}

}  // namespace mcauth

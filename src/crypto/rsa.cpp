#include "crypto/rsa.hpp"

#include "crypto/sha256.hpp"
#include "crypto/sha256_batch.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace mcauth {

namespace {

// DER prefix of DigestInfo for SHA-256 (RFC 8017 §9.2 note 1).
constexpr std::uint8_t kSha256DigestInfo[] = {0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60,
                                              0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02,
                                              0x01, 0x05, 0x00, 0x04, 0x20};

// EMSA-PKCS1-v1_5 encoding: 00 01 FF..FF 00 || DigestInfo || H(m).
std::vector<std::uint8_t> emsa_encode_digest(const Digest256& digest, std::size_t em_len) {
    const std::size_t t_len = sizeof kSha256DigestInfo + digest.size();
    MCAUTH_EXPECTS(em_len >= t_len + 11);
    std::vector<std::uint8_t> em(em_len, 0xff);
    em[0] = 0x00;
    em[1] = 0x01;
    em[em_len - t_len - 1] = 0x00;
    std::copy(std::begin(kSha256DigestInfo), std::end(kSha256DigestInfo),
              em.end() - static_cast<std::ptrdiff_t>(t_len));
    std::copy(digest.begin(), digest.end(),
              em.end() - static_cast<std::ptrdiff_t>(digest.size()));
    return em;
}

std::vector<std::uint8_t> emsa_encode(std::span<const std::uint8_t> message,
                                      std::size_t em_len) {
    return emsa_encode_digest(Sha256::hash(message), em_len);
}

}  // namespace

RsaKeyPair RsaKeyPair::generate(Rng& rng, std::size_t bits) {
    MCAUTH_EXPECTS(bits >= 256 && bits % 2 == 0);
    const Bignum e(65537);
    for (;;) {
        const Bignum p = Bignum::generate_prime(rng, bits / 2);
        const Bignum q = Bignum::generate_prime(rng, bits / 2);
        if (p == q) continue;
        const Bignum n = p.mul(q);
        if (n.bit_length() != bits) continue;
        const Bignum p_1 = p.sub(Bignum(1));
        const Bignum q_1 = q.sub(Bignum(1));
        const Bignum phi = p_1.mul(q_1);
        if (Bignum::gcd(e, phi) != Bignum(1)) continue;
        const Bignum d = Bignum::mod_inverse(e, phi);
        RsaKeyPair key{RsaPublicKey{n, e}, d, p, q, d.mod(p_1), d.mod(q_1),
                       Bignum::mod_inverse(q, p)};
        return key;
    }
}

namespace {

// RSA private-key operation: CRT with Garner recombination when the prime
// factors are available, plain exponentiation otherwise.
Bignum rsa_private_op(const RsaKeyPair& key, const Bignum& m) {
    if (!key.has_crt()) return Bignum::mod_pow(m, key.d, key.pub.n);
    const Bignum m1 = Bignum::mod_pow(m.mod(key.p), key.d_p, key.p);
    const Bignum m2 = Bignum::mod_pow(m.mod(key.q), key.d_q, key.q);
    // h = q_inv * (m1 - m2) mod p, working in non-negative residues.
    Bignum diff = m1;
    if (diff < m2.mod(key.p)) diff = diff.add(key.p);
    diff = diff.sub(m2.mod(key.p));
    const Bignum h = Bignum::mod_mul(key.q_inv, diff, key.p);
    return m2.add(h.mul(key.q));
}

}  // namespace

std::vector<std::uint8_t> rsa_sign(const RsaKeyPair& key,
                                   std::span<const std::uint8_t> message) {
    MCAUTH_OBS_COUNT("crypto.rsa.sign.ops");
    MCAUTH_OBS_SPAN("crypto.rsa.sign");
    const std::size_t k = key.pub.modulus_bytes();
    const auto em = emsa_encode(message, k);
    const Bignum m = Bignum::from_bytes(em);
    MCAUTH_ENSURES(m < key.pub.n);
    const Bignum s = rsa_private_op(key, m);
    return s.to_bytes(k);
}

bool rsa_verify(const RsaPublicKey& key, std::span<const std::uint8_t> message,
                std::span<const std::uint8_t> signature) {
    MCAUTH_OBS_COUNT("crypto.rsa.verify.ops");
    MCAUTH_OBS_SPAN("crypto.rsa.verify");
    const std::size_t k = key.modulus_bytes();
    if (signature.size() != k) return false;
    const Bignum s = Bignum::from_bytes(signature);
    if (s >= key.n) return false;
    const Bignum m = Bignum::mod_pow(s, key.e, key.n);
    const auto em = m.to_bytes(k);
    const auto expected = emsa_encode(message, k);
    return ct_equal(em, expected);
}

std::vector<bool> rsa_verify_batch(const RsaPublicKey& key,
                                   std::span<const std::span<const std::uint8_t>> messages,
                                   std::span<const std::span<const std::uint8_t>> signatures) {
    MCAUTH_EXPECTS(messages.size() == signatures.size());
    const std::size_t n_items = messages.size();
    std::vector<bool> ok(n_items, false);
    if (n_items == 0) return ok;
    MCAUTH_OBS_COUNT("crypto.rsa.batch.calls");
    MCAUTH_OBS_COUNT_N("crypto.rsa.batch.items", n_items);
    MCAUTH_OBS_SPAN("crypto.rsa.verify_batch");
    const std::size_t k = key.modulus_bytes();

    // One multi-buffer pass hashes every message for the EMSA encodings.
    std::vector<Digest256> digests(n_items);
    Sha256x8::hash_many(messages, digests.data());

    // Screening pass (Bellare–Garay–Rabin small-exponent test, as MABS
    // applies it per block): accumulate Π s_i and Π EM_i mod n, then test
    // (Π s_i)^e == Π EM_i with a single public-key exponentiation.
    // Malformed items (wrong length, s >= n) are excluded up front so one
    // garbage packet cannot poison the whole block.
    Bignum sig_prod(1);
    Bignum em_prod(1);
    std::vector<std::size_t> screened;
    screened.reserve(n_items);
    for (std::size_t i = 0; i < n_items; ++i) {
        if (signatures[i].size() != k) continue;
        const Bignum s = Bignum::from_bytes(signatures[i]);
        if (s >= key.n) continue;
        const Bignum m = Bignum::from_bytes(emsa_encode_digest(digests[i], k));
        sig_prod = Bignum::mod_mul(sig_prod, s, key.n);
        em_prod = Bignum::mod_mul(em_prod, m, key.n);
        screened.push_back(i);
    }
    if (screened.empty()) return ok;

    if (Bignum::mod_pow(sig_prod, key.e, key.n) == em_prod) {
        for (std::size_t i : screened) ok[i] = true;
        return ok;
    }
    // At least one signature is bad: fall back to per-item verification so
    // the good packets in the block still authenticate.
    MCAUTH_OBS_COUNT("crypto.rsa.batch.fallbacks");
    for (std::size_t i : screened) ok[i] = rsa_verify(key, messages[i], signatures[i]);
    return ok;
}

}  // namespace mcauth

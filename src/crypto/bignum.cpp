#include "crypto/bignum.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"
#include "util/hex.hpp"

namespace mcauth {

namespace {

constexpr std::uint64_t kLimbBase = 1ULL << 32;

}  // namespace

Bignum::Bignum(std::uint64_t value) {
    if (value != 0) limbs_.push_back(static_cast<std::uint32_t>(value));
    if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
}

void Bignum::trim() noexcept {
    while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

Bignum Bignum::from_bytes(std::span<const std::uint8_t> big_endian) {
    Bignum out;
    out.limbs_.assign((big_endian.size() + 3) / 4, 0);
    for (std::size_t i = 0; i < big_endian.size(); ++i) {
        // byte i from the end goes into limb i/4, lane i%4
        const std::size_t from_end = big_endian.size() - 1 - i;
        out.limbs_[i / 4] |= std::uint32_t(big_endian[from_end]) << (8 * (i % 4));
    }
    out.trim();
    return out;
}

Bignum Bignum::from_hex(std::string_view hex) {
    std::string padded(hex);
    if (padded.size() % 2 != 0) padded.insert(padded.begin(), '0');
    const auto bytes = mcauth::from_hex(padded);
    return from_bytes(bytes);
}

std::vector<std::uint8_t> Bignum::to_bytes(std::size_t width) const {
    MCAUTH_EXPECTS(bit_length() <= width * 8);
    std::vector<std::uint8_t> out(width, 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        for (std::size_t lane = 0; lane < 4; ++lane) {
            const std::size_t byte_index = i * 4 + lane;  // from the little end
            if (byte_index >= width) break;
            out[width - 1 - byte_index] =
                static_cast<std::uint8_t>(limbs_[i] >> (8 * lane));
        }
    }
    return out;
}

std::string Bignum::to_hex() const {
    if (is_zero()) return "0";
    const std::size_t width = (bit_length() + 7) / 8;
    const auto bytes = to_bytes(width);
    std::string hex = mcauth::to_hex(bytes);
    // Strip at most one leading zero nibble for canonical output.
    if (hex.size() > 1 && hex.front() == '0') hex.erase(hex.begin());
    return hex;
}

std::size_t Bignum::bit_length() const noexcept {
    if (limbs_.empty()) return 0;
    const std::uint32_t top = limbs_.back();
    const int top_bits = 32 - __builtin_clz(top);
    return (limbs_.size() - 1) * 32 + static_cast<std::size_t>(top_bits);
}

bool Bignum::bit(std::size_t i) const noexcept {
    const std::size_t limb = i / 32;
    if (limb >= limbs_.size()) return false;
    return (limbs_[limb] >> (i % 32)) & 1u;
}

std::uint64_t Bignum::to_u64() const {
    MCAUTH_EXPECTS(bit_length() <= 64);
    std::uint64_t v = 0;
    if (!limbs_.empty()) v = limbs_[0];
    if (limbs_.size() > 1) v |= std::uint64_t(limbs_[1]) << 32;
    return v;
}

int Bignum::compare(const Bignum& other) const noexcept {
    if (limbs_.size() != other.limbs_.size())
        return limbs_.size() < other.limbs_.size() ? -1 : 1;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
    return 0;
}

Bignum Bignum::add(const Bignum& other) const {
    Bignum out;
    const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
    out.limbs_.resize(n + 1, 0);
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sum = carry;
        if (i < limbs_.size()) sum += limbs_[i];
        if (i < other.limbs_.size()) sum += other.limbs_[i];
        out.limbs_[i] = static_cast<std::uint32_t>(sum);
        carry = sum >> 32;
    }
    out.limbs_[n] = static_cast<std::uint32_t>(carry);
    out.trim();
    return out;
}

Bignum Bignum::sub(const Bignum& other) const {
    MCAUTH_EXPECTS(*this >= other);
    Bignum out;
    out.limbs_.resize(limbs_.size(), 0);
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        std::int64_t diff = std::int64_t(limbs_[i]) - borrow;
        if (i < other.limbs_.size()) diff -= other.limbs_[i];
        if (diff < 0) {
            diff += static_cast<std::int64_t>(kLimbBase);
            borrow = 1;
        } else {
            borrow = 0;
        }
        out.limbs_[i] = static_cast<std::uint32_t>(diff);
    }
    MCAUTH_ENSURES(borrow == 0);
    out.trim();
    return out;
}

Bignum Bignum::mul(const Bignum& other) const {
    if (is_zero() || other.is_zero()) return {};
    Bignum out;
    out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        std::uint64_t carry = 0;
        const std::uint64_t a = limbs_[i];
        for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
            const std::uint64_t cur =
                std::uint64_t(out.limbs_[i + j]) + a * other.limbs_[j] + carry;
            out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
            carry = cur >> 32;
        }
        std::size_t k = i + other.limbs_.size();
        while (carry != 0) {
            const std::uint64_t cur = std::uint64_t(out.limbs_[k]) + carry;
            out.limbs_[k] = static_cast<std::uint32_t>(cur);
            carry = cur >> 32;
            ++k;
        }
    }
    out.trim();
    return out;
}

Bignum Bignum::shifted_left(std::size_t bits) const {
    if (is_zero() || bits == 0) return *this;
    const std::size_t limb_shift = bits / 32;
    const std::size_t bit_shift = bits % 32;
    Bignum out;
    out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
        if (bit_shift != 0)
            out.limbs_[i + limb_shift + 1] |=
                static_cast<std::uint32_t>(std::uint64_t(limbs_[i]) >> (32 - bit_shift));
    }
    out.trim();
    return out;
}

Bignum Bignum::shifted_right(std::size_t bits) const {
    if (is_zero()) return {};
    const std::size_t limb_shift = bits / 32;
    if (limb_shift >= limbs_.size()) return {};
    const std::size_t bit_shift = bits % 32;
    Bignum out;
    out.limbs_.assign(limbs_.size() - limb_shift, 0);
    for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
        out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
        if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size())
            out.limbs_[i] |= limbs_[i + limb_shift + 1] << (32 - bit_shift);
    }
    out.trim();
    return out;
}

BignumDivMod Bignum::divmod(const Bignum& divisor) const {
    MCAUTH_EXPECTS(!divisor.is_zero());
    if (*this < divisor) return {Bignum(), *this};

    // Single-limb fast path.
    if (divisor.limbs_.size() == 1) {
        const std::uint64_t d = divisor.limbs_[0];
        Bignum quotient;
        quotient.limbs_.assign(limbs_.size(), 0);
        std::uint64_t rem = 0;
        for (std::size_t i = limbs_.size(); i-- > 0;) {
            const std::uint64_t cur = (rem << 32) | limbs_[i];
            quotient.limbs_[i] = static_cast<std::uint32_t>(cur / d);
            rem = cur % d;
        }
        quotient.trim();
        return {std::move(quotient), Bignum(rem)};
    }

    // Knuth TAOCP vol. 2, Algorithm D. Normalize so the divisor's top limb
    // has its high bit set, which makes the 2-limb quotient estimate off by
    // at most 2 and corrected by the add-back step.
    const std::size_t n = divisor.limbs_.size();
    const std::size_t m = limbs_.size() - n;
    const int shift = __builtin_clz(divisor.limbs_.back());
    const Bignum u_norm = shifted_left(static_cast<std::size_t>(shift));
    const Bignum v_norm = divisor.shifted_left(static_cast<std::size_t>(shift));

    std::vector<std::uint32_t> u = u_norm.limbs_;
    u.resize(limbs_.size() + 1, 0);  // extra top limb for the algorithm
    const std::vector<std::uint32_t>& v = v_norm.limbs_;
    MCAUTH_ENSURES(v.size() == n);

    Bignum quotient;
    quotient.limbs_.assign(m + 1, 0);

    const std::uint64_t v_top = v[n - 1];
    const std::uint64_t v_second = v[n - 2];

    for (std::size_t j = m + 1; j-- > 0;) {
        // Estimate q_hat from the top two limbs of the current remainder.
        const std::uint64_t numerator = (std::uint64_t(u[j + n]) << 32) | u[j + n - 1];
        std::uint64_t q_hat = numerator / v_top;
        std::uint64_t r_hat = numerator % v_top;
        while (q_hat >= kLimbBase ||
               q_hat * v_second > ((r_hat << 32) | u[j + n - 2])) {
            --q_hat;
            r_hat += v_top;
            if (r_hat >= kLimbBase) break;
        }

        // Multiply-subtract u[j..j+n] -= q_hat * v.
        std::int64_t borrow = 0;
        std::uint64_t carry = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t product = q_hat * v[i] + carry;
            carry = product >> 32;
            std::int64_t diff =
                std::int64_t(u[j + i]) - std::int64_t(product & 0xffffffffULL) - borrow;
            if (diff < 0) {
                diff += static_cast<std::int64_t>(kLimbBase);
                borrow = 1;
            } else {
                borrow = 0;
            }
            u[j + i] = static_cast<std::uint32_t>(diff);
        }
        std::int64_t top_diff = std::int64_t(u[j + n]) - std::int64_t(carry) - borrow;
        if (top_diff < 0) {
            // q_hat was one too large: add back one copy of v.
            top_diff += static_cast<std::int64_t>(kLimbBase);
            --q_hat;
            std::uint64_t add_carry = 0;
            for (std::size_t i = 0; i < n; ++i) {
                const std::uint64_t sum = std::uint64_t(u[j + i]) + v[i] + add_carry;
                u[j + i] = static_cast<std::uint32_t>(sum);
                add_carry = sum >> 32;
            }
            top_diff += static_cast<std::int64_t>(add_carry);
            top_diff &= 0xffffffffLL;  // discard the wrap into the borrow we repaid
        }
        u[j + n] = static_cast<std::uint32_t>(top_diff);
        quotient.limbs_[j] = static_cast<std::uint32_t>(q_hat);
    }

    quotient.trim();
    Bignum remainder;
    remainder.limbs_.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
    remainder.trim();
    remainder = remainder.shifted_right(static_cast<std::size_t>(shift));
    return {std::move(quotient), std::move(remainder)};
}

Bignum Bignum::mod_mul(const Bignum& a, const Bignum& b, const Bignum& m) {
    return a.mul(b).mod(m);
}

Bignum Bignum::mod_pow(const Bignum& base, const Bignum& exponent, const Bignum& m) {
    MCAUTH_EXPECTS(!m.is_zero());
    if (m == Bignum(1)) return {};
    Bignum result(1);
    Bignum acc = base.mod(m);
    const std::size_t bits = exponent.bit_length();
    for (std::size_t i = 0; i < bits; ++i) {
        if (exponent.bit(i)) result = mod_mul(result, acc, m);
        if (i + 1 < bits) acc = mod_mul(acc, acc, m);
    }
    return result;
}

Bignum Bignum::gcd(Bignum a, Bignum b) {
    while (!b.is_zero()) {
        Bignum r = a.mod(b);
        a = std::move(b);
        b = std::move(r);
    }
    return a;
}

Bignum Bignum::mod_inverse(const Bignum& a, const Bignum& m) {
    // Extended Euclid on non-negative values, tracking coefficients of `a`
    // as (sign, magnitude) pairs to stay within unsigned arithmetic.
    Bignum r0 = m;
    Bignum r1 = a.mod(m);
    Bignum t0;        // coefficient for r0
    Bignum t1(1);     // coefficient for r1
    bool t0_neg = false;
    bool t1_neg = false;

    while (!r1.is_zero()) {
        const auto qr = r0.divmod(r1);
        // t2 = t0 - q * t1 with sign handling.
        const Bignum q_t1 = qr.quotient.mul(t1);
        Bignum t2;
        bool t2_neg = false;
        if (t0_neg == t1_neg) {
            // same sign: t0 - q*t1 flips when |q*t1| > |t0|
            if (t0 >= q_t1) {
                t2 = t0.sub(q_t1);
                t2_neg = t0_neg;
            } else {
                t2 = q_t1.sub(t0);
                t2_neg = !t0_neg;
            }
        } else {
            t2 = t0.add(q_t1);
            t2_neg = t0_neg;
        }
        t0 = std::move(t1);
        t0_neg = t1_neg;
        t1 = std::move(t2);
        t1_neg = t2_neg;
        r0 = std::move(r1);
        r1 = qr.remainder;
    }
    if (r0 != Bignum(1)) throw std::domain_error("mod_inverse: arguments are not coprime");
    if (t0_neg) return m.sub(t0.mod(m));
    return t0.mod(m);
}

Bignum Bignum::random_below(Rng& rng, const Bignum& bound) {
    MCAUTH_EXPECTS(!bound.is_zero());
    const std::size_t bits = bound.bit_length();
    const std::size_t bytes = (bits + 7) / 8;
    for (;;) {
        auto raw = rng.bytes(bytes);
        // Mask the top byte down to the bound's bit length to make rejection
        // terminate quickly.
        const std::size_t excess = bytes * 8 - bits;
        raw[0] = static_cast<std::uint8_t>(raw[0] & (0xffu >> excess));
        Bignum candidate = from_bytes(raw);
        if (candidate < bound) return candidate;
    }
}

Bignum Bignum::random_bits(Rng& rng, std::size_t bits) {
    MCAUTH_EXPECTS(bits >= 2);
    const std::size_t bytes = (bits + 7) / 8;
    auto raw = rng.bytes(bytes);
    const std::size_t excess = bytes * 8 - bits;
    raw[0] = static_cast<std::uint8_t>(raw[0] & (0xffu >> excess));
    raw[0] = static_cast<std::uint8_t>(raw[0] | (0x80u >> excess));  // force top bit
    return from_bytes(raw);
}

bool Bignum::is_probable_prime(const Bignum& n, Rng& rng, int rounds) {
    if (n < Bignum(2)) return false;
    // Small-prime sieve removes the bulk of composites cheaply.
    static constexpr std::uint64_t kSmallPrimes[] = {2,  3,  5,  7,  11, 13, 17, 19, 23,
                                                     29, 31, 37, 41, 43, 47, 53, 59, 61};
    for (std::uint64_t p : kSmallPrimes) {
        const Bignum bp(p);
        if (n == bp) return true;
        if (n.mod(bp).is_zero()) return false;
    }

    // Write n - 1 = d * 2^s with d odd.
    const Bignum n_minus_1 = n.sub(Bignum(1));
    Bignum d = n_minus_1;
    std::size_t s = 0;
    while (!d.is_odd()) {
        d = d.shifted_right(1);
        ++s;
    }

    const Bignum two(2);
    const Bignum n_minus_3 = n.sub(Bignum(3));
    for (int round = 0; round < rounds; ++round) {
        const Bignum a = random_below(rng, n_minus_3).add(two);  // a in [2, n-2]
        Bignum x = mod_pow(a, d, n);
        if (x == Bignum(1) || x == n_minus_1) continue;
        bool witness = true;
        for (std::size_t r = 1; r < s; ++r) {
            x = mod_mul(x, x, n);
            if (x == n_minus_1) {
                witness = false;
                break;
            }
        }
        if (witness) return false;
    }
    return true;
}

Bignum Bignum::generate_prime(Rng& rng, std::size_t bits, int rounds) {
    MCAUTH_EXPECTS(bits >= 8);
    for (;;) {
        Bignum candidate = random_bits(rng, bits);
        if (!candidate.is_odd()) candidate = candidate.add(Bignum(1));
        // Walk odd numbers from the random start; re-randomize if we drift
        // beyond the requested width.
        for (int step = 0; step < 4096; ++step) {
            if (candidate.bit_length() != bits) break;
            if (is_probable_prime(candidate, rng, rounds)) return candidate;
            candidate = candidate.add(Bignum(2));
        }
    }
}

}  // namespace mcauth

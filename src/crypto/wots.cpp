#include "crypto/wots.hpp"

#include "crypto/hmac.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace mcauth {

namespace {

// One chain step: domain-separated hash so chains cannot be cross-linked.
Digest256 chain_step(const Digest256& value, std::uint32_t chain_index,
                     std::uint32_t position) noexcept {
    Sha256 h;
    const std::uint8_t tag[] = {
        'w', 'o', 't', 's',
        static_cast<std::uint8_t>(chain_index >> 8), static_cast<std::uint8_t>(chain_index),
        static_cast<std::uint8_t>(position >> 8),    static_cast<std::uint8_t>(position)};
    h.update(std::span<const std::uint8_t>(tag, sizeof tag));
    h.update(value);
    return h.finish();
}

Digest256 iterate_chain(Digest256 value, std::uint32_t chain_index, std::uint32_t from,
                        std::uint32_t steps) noexcept {
    for (std::uint32_t s = 0; s < steps; ++s) value = chain_step(value, chain_index, from + s);
    return value;
}

}  // namespace

std::size_t WotsParams::checksum_chunks() const noexcept {
    // Max checksum = message_chunks * (2^w - 1); count w-bit digits of it.
    std::uint64_t max_checksum =
        static_cast<std::uint64_t>(message_chunks()) * (chunk_values() - 1);
    std::size_t digits = 0;
    while (max_checksum != 0) {
        max_checksum >>= w;
        ++digits;
    }
    return digits == 0 ? 1 : digits;
}

std::vector<std::uint32_t> wots_chunks(const Digest256& digest, WotsParams params) {
    MCAUTH_EXPECTS(params.w >= 1 && params.w <= 8);
    std::vector<std::uint32_t> chunks;
    chunks.reserve(params.total_chunks());

    // Message chunks: w-bit big-endian slices of the digest.
    const unsigned mask = params.chunk_values() - 1;
    unsigned bit_buffer = 0;
    unsigned bits_held = 0;
    for (std::uint8_t byte : digest) {
        bit_buffer = (bit_buffer << 8) | byte;
        bits_held += 8;
        while (bits_held >= params.w) {
            bits_held -= params.w;
            chunks.push_back((bit_buffer >> bits_held) & mask);
        }
    }
    if (bits_held != 0 && chunks.size() < params.message_chunks())
        chunks.push_back((bit_buffer << (params.w - bits_held)) & mask);
    MCAUTH_ENSURES(chunks.size() == params.message_chunks());

    // Checksum chunks (little-endian digit order).
    std::uint64_t checksum = 0;
    for (std::uint32_t c : chunks) checksum += mask - c;
    for (std::size_t i = 0; i < params.checksum_chunks(); ++i) {
        chunks.push_back(static_cast<std::uint32_t>(checksum & mask));
        checksum >>= params.w;
    }
    return chunks;
}

WotsKey::WotsKey(std::span<const std::uint8_t> seed, std::uint64_t index, WotsParams params)
    : params_(params) {
    MCAUTH_EXPECTS(params_.w >= 1 && params_.w <= 8);
    const std::size_t total = params_.total_chunks();
    secrets_.reserve(total);

    // secrets_[i] = HMAC(seed, "wots-key" || index || i)
    for (std::size_t i = 0; i < total; ++i) {
        std::uint8_t info[8 + 8 + 4];
        const char label[] = "wots-key";
        std::copy(label, label + 8, info);
        for (int b = 0; b < 8; ++b) info[8 + b] = static_cast<std::uint8_t>(index >> (8 * b));
        for (int b = 0; b < 4; ++b)
            info[16 + b] = static_cast<std::uint8_t>(static_cast<std::uint32_t>(i) >> (8 * b));
        secrets_.push_back(hmac_sha256(seed, std::span<const std::uint8_t>(info, sizeof info)));
    }

    // Public key = H(chain-end_0 || ... || chain-end_{L-1}).
    const std::uint32_t last = params_.chunk_values() - 1;
    Sha256 h;
    for (std::size_t i = 0; i < total; ++i) {
        const Digest256 end =
            iterate_chain(secrets_[i], static_cast<std::uint32_t>(i), 0, last);
        h.update(end);
    }
    public_key_ = h.finish();
}

WotsSignature WotsKey::sign(const Digest256& message_digest) const {
    MCAUTH_OBS_COUNT("crypto.wots.sign.ops");
    const auto chunks = wots_chunks(message_digest, params_);
    WotsSignature sig;
    sig.chain_values.reserve(chunks.size());
    for (std::size_t i = 0; i < chunks.size(); ++i)
        sig.chain_values.push_back(
            iterate_chain(secrets_[i], static_cast<std::uint32_t>(i), 0, chunks[i]));
    return sig;
}

Digest256 WotsKey::recover_public_key(const WotsSignature& sig,
                                      const Digest256& message_digest, WotsParams params) {
    MCAUTH_OBS_COUNT("crypto.wots.verify.ops");
    const auto chunks = wots_chunks(message_digest, params);
    MCAUTH_REQUIRE(sig.chain_values.size() == chunks.size());
    const std::uint32_t last = params.chunk_values() - 1;
    Sha256 h;
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        const Digest256 end = iterate_chain(sig.chain_values[i], static_cast<std::uint32_t>(i),
                                            chunks[i], last - chunks[i]);
        h.update(end);
    }
    return h.finish();
}

bool WotsKey::verify(const WotsSignature& sig, const Digest256& message_digest,
                     const Digest256& expected_public_key, WotsParams params) {
    if (sig.chain_values.size() != params.total_chunks()) return false;
    const Digest256 recovered = recover_public_key(sig, message_digest, params);
    return ct_equal(recovered, expected_public_key);
}

}  // namespace mcauth

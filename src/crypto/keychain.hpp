// TESLA one-way key chains (Perrig et al., analyzed in §3.2 of the paper).
//
// The sender draws a random terminal key K_N and derives the chain
//     K_{i-1} = F(K_i),   i = N..1
// where F is a pseudo-random function (here HMAC-SHA256 under a domain-
// separation tag). K_0 is the *commitment*, distributed in the signed
// bootstrap packet. The MAC key actually used in interval i is
//     K'_i = F'(K_i)
// with an independently-tagged PRF, so disclosing K_i never reveals a key
// that was still MAC-ing traffic.
//
// Robustness to loss — the property the paper's dependence-graph for TESLA
// encodes — comes from the receiver side: a later key K_j authenticates any
// earlier undisclosed key by iterating F (j - i) times, so one received
// disclosure repairs every missed one.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/sha256.hpp"

namespace mcauth {

using TeslaKey = Digest256;

/// Chain PRF: K_{i-1} = F(K_i). Exposed for tests and the receiver.
TeslaKey tesla_chain_step(const TeslaKey& key) noexcept;

/// MAC-key derivation: K'_i = F'(K_i).
TeslaKey tesla_mac_key(const TeslaKey& key) noexcept;

/// Sender-side chain: materializes K_0..K_N once (N+1 keys).
class TeslaKeyChain {
public:
    /// Build a chain with keys for intervals 1..length; index 0 is the
    /// commitment. `seed` is hashed into the terminal key.
    TeslaKeyChain(std::span<const std::uint8_t> seed, std::size_t length);

    std::size_t length() const noexcept { return keys_.size() - 1; }
    const TeslaKey& commitment() const noexcept { return keys_.front(); }

    /// Chain key K_i for interval i in [0, length].
    const TeslaKey& key(std::size_t i) const;

    /// MAC key K'_i for interval i in [1, length].
    TeslaKey mac_key(std::size_t i) const;

private:
    std::vector<TeslaKey> keys_;  // keys_[i] = K_i
};

/// Receiver-side verifier: holds the last authenticated (index, key) pair
/// and authenticates any later disclosed key by walking the chain back.
class TeslaKeyVerifier {
public:
    explicit TeslaKeyVerifier(const TeslaKey& commitment) noexcept;

    /// Verify a disclosed chain key claiming interval `index`. On success
    /// the verifier advances and the key becomes the new trust anchor.
    /// Returns false (without advancing) for stale indices, wrong keys, or
    /// indices absurdly far ahead (cap guards CPU exhaustion).
    bool accept(std::size_t index, const TeslaKey& key,
                std::size_t max_walk = 1u << 20);

    std::size_t last_index() const noexcept { return last_index_; }
    const TeslaKey& last_key() const noexcept { return last_key_; }

    /// Chain key K_i for an interval already at or behind the trust anchor,
    /// recomputed by walking back from the anchor. Returns nullopt if i is
    /// ahead of the anchor (not yet disclosed/verified).
    std::optional<TeslaKey> key_for(std::size_t index) const;

private:
    std::size_t last_index_ = 0;
    TeslaKey last_key_{};
};

}  // namespace mcauth

// SHA-256 (FIPS 180-4), implemented from the specification.
//
// This is the hash used for packet linking in every hash-chained scheme and
// as the compression primitive for HMAC, the TESLA key chain, WOTS and the
// Merkle trees. A streaming interface is provided so packet headers and
// payloads can be absorbed without concatenation copies.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace mcauth {

using Digest256 = std::array<std::uint8_t, 32>;

class Sha256 {
public:
    Sha256() noexcept { reset(); }

    void reset() noexcept;
    void update(std::span<const std::uint8_t> data) noexcept;
    void update(std::string_view text) noexcept;

    /// Finalize and return the digest. The object must be reset() before reuse.
    Digest256 finish() noexcept;

    /// One-shot convenience.
    static Digest256 hash(std::span<const std::uint8_t> data) noexcept;
    static Digest256 hash(std::string_view text) noexcept;

    /// Hash the concatenation of two byte spans (common in chaining/trees)
    /// without materializing the concatenation.
    static Digest256 hash2(std::span<const std::uint8_t> a,
                           std::span<const std::uint8_t> b) noexcept;

private:
    void process_block(const std::uint8_t* block) noexcept;

    std::array<std::uint32_t, 8> state_{};
    std::array<std::uint8_t, 64> buffer_{};
    std::size_t buffered_ = 0;
    std::uint64_t total_bytes_ = 0;
};

/// Truncate a digest to `len` bytes (packet overhead control: the paper-era
/// schemes embed 8-16 byte hashes; truncation is the standard construction).
std::vector<std::uint8_t> truncate_digest(const Digest256& digest, std::size_t len);

/// Constant-time comparison of equal-length byte strings. Returns false on
/// length mismatch. Verification paths must not leak match prefixes.
bool ct_equal(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) noexcept;

}  // namespace mcauth

#include "crypto/sha1.hpp"

#include <cstring>

#include "obs/obs.hpp"

namespace mcauth {

namespace {

constexpr std::uint32_t rotl(std::uint32_t x, int n) noexcept {
    return (x << n) | (x >> (32 - n));
}

}  // namespace

void Sha1::reset() noexcept {
    state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u, 0xc3d2e1f0u};
    buffered_ = 0;
    total_bytes_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) noexcept {
    std::uint32_t w[80];
    for (int t = 0; t < 16; ++t) {
        w[t] = (std::uint32_t(block[4 * t]) << 24) | (std::uint32_t(block[4 * t + 1]) << 16) |
               (std::uint32_t(block[4 * t + 2]) << 8) | std::uint32_t(block[4 * t + 3]);
    }
    for (int t = 16; t < 80; ++t)
        w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);

    std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3], e = state_[4];

    for (int t = 0; t < 80; ++t) {
        std::uint32_t f = 0;
        std::uint32_t k = 0;
        if (t < 20) {
            f = (b & c) | (~b & d);
            k = 0x5a827999u;
        } else if (t < 40) {
            f = b ^ c ^ d;
            k = 0x6ed9eba1u;
        } else if (t < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8f1bbcdcu;
        } else {
            f = b ^ c ^ d;
            k = 0xca62c1d6u;
        }
        const std::uint32_t temp = rotl(a, 5) + f + e + k + w[t];
        e = d;
        d = c;
        c = rotl(b, 30);
        b = a;
        a = temp;
    }

    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
    state_[4] += e;
}

void Sha1::update(std::span<const std::uint8_t> data) noexcept {
    total_bytes_ += data.size();
    std::size_t offset = 0;
    if (buffered_ != 0) {
        const std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
        std::memcpy(buffer_.data() + buffered_, data.data(), take);
        buffered_ += take;
        offset += take;
        if (buffered_ == buffer_.size()) {
            process_block(buffer_.data());
            buffered_ = 0;
        }
    }
    while (offset + 64 <= data.size()) {
        process_block(data.data() + offset);
        offset += 64;
    }
    if (offset < data.size()) {
        std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
        buffered_ = data.size() - offset;
    }
}

void Sha1::update(std::string_view text) noexcept {
    update(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(text.data()),
                                         text.size()));
}

Digest160 Sha1::finish() noexcept {
    MCAUTH_OBS_COUNT("crypto.sha1.ops");
    MCAUTH_OBS_COUNT_N("crypto.sha1.bytes", total_bytes_);
    const std::uint64_t bit_length = total_bytes_ * 8;
    static constexpr std::uint8_t kPad = 0x80;
    update(std::span<const std::uint8_t>(&kPad, 1));
    static constexpr std::uint8_t kZero = 0x00;
    while (buffered_ != 56) update(std::span<const std::uint8_t>(&kZero, 1));
    std::uint8_t len_bytes[8];
    for (int i = 0; i < 8; ++i)
        len_bytes[i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
    update(std::span<const std::uint8_t>(len_bytes, 8));

    Digest160 digest;
    for (int i = 0; i < 5; ++i) {
        digest[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
        digest[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
        digest[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
        digest[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
    }
    return digest;
}

Digest160 Sha1::hash(std::span<const std::uint8_t> data) noexcept {
    Sha1 h;
    h.update(data);
    return h.finish();
}

Digest160 Sha1::hash(std::string_view text) noexcept {
    Sha1 h;
    h.update(text);
    return h.finish();
}

}  // namespace mcauth

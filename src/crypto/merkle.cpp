#include "crypto/merkle.hpp"

#include <algorithm>
#include <array>

#include "crypto/sha256_batch.hpp"
#include "util/check.hpp"

namespace mcauth {

namespace {

constexpr std::uint8_t kLeafPrefix = 0x00;
constexpr std::uint8_t kNodePrefix = 0x01;

/// Hash all sibling pairs of one level through the multi-buffer hasher.
/// A pair's two digests are adjacent elements of `below`, so each lane's
/// input is just the domain prefix plus one contiguous 64-byte span —
/// byte-identical to hash_node(below[2i], below[2i+1]).
void hash_pairs_batched(const std::vector<Digest256>& below,
                        std::vector<Digest256>& out_pairs) {
    const std::size_t pairs = below.size() / 2;
    out_pairs.resize(pairs);
    const std::span<const std::uint8_t> prefix(&kNodePrefix, 1);
    std::array<HashInput, Sha256x8::kLanes> chunk;
    std::size_t i = 0;
    while (i < pairs) {
        const std::size_t group = std::min(Sha256x8::kLanes, pairs - i);
        for (std::size_t l = 0; l < group; ++l) {
            chunk[l] = HashInput(prefix);
            chunk[l].add(std::span<const std::uint8_t>(below[2 * (i + l)].data(), 64));
        }
        Sha256x8::hash_many(chunk.data(), group, out_pairs.data() + i);
        i += group;
    }
}

}  // namespace

Digest256 MerkleTree::hash_leaf(std::span<const std::uint8_t> data) noexcept {
    Sha256 h;
    h.update(std::span<const std::uint8_t>(&kLeafPrefix, 1));
    h.update(data);
    return h.finish();
}

Digest256 MerkleTree::hash_node(const Digest256& left, const Digest256& right) noexcept {
    Sha256 h;
    h.update(std::span<const std::uint8_t>(&kNodePrefix, 1));
    h.update(left);
    h.update(right);
    return h.finish();
}

MerkleTree::MerkleTree(std::vector<Digest256> leaves) {
    MCAUTH_EXPECTS(!leaves.empty());
    levels_.push_back(std::move(leaves));
    while (levels_.back().size() > 1) {
        const auto& below = levels_.back();
        std::vector<Digest256> level;
        hash_pairs_batched(below, level);
        if (below.size() % 2 != 0) level.push_back(below.back());  // promote odd tail
        levels_.push_back(std::move(level));
    }
}

void MerkleTree::hash_leaves(const HashInput* data, std::size_t count, Digest256* out) noexcept {
    const std::span<const std::uint8_t> prefix(&kLeafPrefix, 1);
    std::array<HashInput, Sha256x8::kLanes> chunk;
    std::size_t i = 0;
    while (i < count) {
        const std::size_t group = std::min(Sha256x8::kLanes, count - i);
        for (std::size_t l = 0; l < group; ++l) {
            const HashInput& d = data[i + l];
            chunk[l] = HashInput(prefix);
            for (std::size_t p = 0; p < d.part_count; ++p) chunk[l].add(d.parts[p]);
        }
        Sha256x8::hash_many(chunk.data(), group, out + i);
        i += group;
    }
}

MerkleProof MerkleTree::prove(std::size_t leaf_index) const {
    MCAUTH_EXPECTS(leaf_index < leaf_count());
    MerkleProof proof;
    proof.leaf_index = leaf_index;
    std::size_t index = leaf_index;
    for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
        const auto& nodes = levels_[level];
        const std::size_t sibling = index ^ 1u;
        if (sibling < nodes.size()) {
            proof.steps.push_back({nodes[sibling], /*sibling_is_left=*/index % 2 == 1});
            index /= 2;
        } else {
            // Promoted trailing node: no hashing at this level. Its position
            // above is after all the pairs, i.e. floor(nodes.size() / 2).
            index = nodes.size() / 2;
        }
    }
    return proof;
}

Digest256 MerkleTree::root_from_proof(const Digest256& leaf, const MerkleProof& proof) {
    Digest256 node = leaf;
    for (const MerkleProofStep& step : proof.steps)
        node = step.sibling_is_left ? hash_node(step.sibling, node)
                                    : hash_node(node, step.sibling);
    return node;
}

bool MerkleTree::verify(const Digest256& leaf, const MerkleProof& proof,
                        const Digest256& expected_root) {
    const Digest256 actual = root_from_proof(leaf, proof);
    return ct_equal(actual, expected_root);
}

// ------------------------------------------------------------ k-ary trees

Digest256 KaryMerkleTree::hash_group(std::span<const Digest256> children) noexcept {
    Sha256 h;
    const std::uint8_t header[2] = {0x02,  // k-ary node domain
                                    static_cast<std::uint8_t>(children.size())};
    h.update(std::span<const std::uint8_t>(header, sizeof header));
    for (const Digest256& child : children) h.update(child);
    return h.finish();
}

KaryMerkleTree::KaryMerkleTree(std::vector<Digest256> leaves, std::size_t arity)
    : arity_(arity) {
    MCAUTH_EXPECTS(!leaves.empty());
    MCAUTH_EXPECTS(arity >= 2 && arity <= 255);
    levels_.push_back(std::move(leaves));
    while (levels_.back().size() > 1) {
        const auto& below = levels_.back();
        std::vector<Digest256> level;
        level.resize((below.size() + arity_ - 1) / arity_);
        // One level per batched pass: a group's children are contiguous in
        // `below`, so each lane hashes its 2-byte domain header plus one
        // count*32-byte span — byte-identical to hash_group().
        // A lone (promoted) tail node can only be the level's last group.
        const bool promoted_tail = (below.size() % arity_ == 1);
        const std::size_t hashed = level.size() - (promoted_tail ? 1 : 0);
        std::array<HashInput, Sha256x8::kLanes> chunk;
        std::array<std::array<std::uint8_t, 2>, Sha256x8::kLanes> headers;
        std::size_t node = 0;
        while (node < hashed) {
            const std::size_t lanes = std::min(Sha256x8::kLanes, hashed - node);
            for (std::size_t l = 0; l < lanes; ++l) {
                const std::size_t start = (node + l) * arity_;
                const std::size_t count = std::min(arity_, below.size() - start);
                headers[l] = {std::uint8_t{0x02}, static_cast<std::uint8_t>(count)};
                chunk[l] = HashInput(headers[l]);
                chunk[l].add(std::span<const std::uint8_t>(below[start].data(), count * 32));
            }
            Sha256x8::hash_many(chunk.data(), lanes, level.data() + node);
            node += lanes;
        }
        if (promoted_tail) level.back() = below.back();
        levels_.push_back(std::move(level));
    }
}

KaryMerkleProof KaryMerkleTree::prove(std::size_t leaf_index) const {
    MCAUTH_EXPECTS(leaf_index < leaf_count());
    KaryMerkleProof proof;
    proof.leaf_index = leaf_index;
    std::size_t index = leaf_index;
    for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
        const auto& nodes = levels_[level];
        const std::size_t start = (index / arity_) * arity_;
        const std::size_t count = std::min(arity_, nodes.size() - start);
        if (count == 1) {
            index /= arity_;  // promoted: no hashing at this level
            continue;
        }
        KaryProofStep step;
        step.position = static_cast<std::uint32_t>(index - start);
        for (std::size_t i = 0; i < count; ++i)
            if (start + i != index) step.siblings.push_back(nodes[start + i]);
        proof.steps.push_back(std::move(step));
        index /= arity_;
    }
    return proof;
}

Digest256 KaryMerkleTree::root_from_proof(const Digest256& leaf,
                                          const KaryMerkleProof& proof) {
    Digest256 node = leaf;
    for (const KaryProofStep& step : proof.steps) {
        if (step.position > step.siblings.size()) return Digest256{};  // malformed
        std::vector<Digest256> group;
        group.reserve(step.siblings.size() + 1);
        // Reassemble the ordered group with our node at its position.
        for (std::size_t i = 0, s = 0; i < step.siblings.size() + 1; ++i) {
            if (i == step.position)
                group.push_back(node);
            else
                group.push_back(step.siblings[s++]);
        }
        node = hash_group(group);
    }
    return node;
}

bool KaryMerkleTree::verify(const Digest256& leaf, const KaryMerkleProof& proof,
                            const Digest256& expected_root) {
    // Reject absurd positions up front (root_from_proof degrades safely,
    // but a position beyond its group is always malformed).
    for (const KaryProofStep& step : proof.steps)
        if (step.position > step.siblings.size()) return false;
    return ct_equal(root_from_proof(leaf, proof), expected_root);
}

}  // namespace mcauth

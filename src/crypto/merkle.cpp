#include "crypto/merkle.hpp"

#include "util/check.hpp"

namespace mcauth {

namespace {

constexpr std::uint8_t kLeafPrefix = 0x00;
constexpr std::uint8_t kNodePrefix = 0x01;

}  // namespace

Digest256 MerkleTree::hash_leaf(std::span<const std::uint8_t> data) noexcept {
    Sha256 h;
    h.update(std::span<const std::uint8_t>(&kLeafPrefix, 1));
    h.update(data);
    return h.finish();
}

Digest256 MerkleTree::hash_node(const Digest256& left, const Digest256& right) noexcept {
    Sha256 h;
    h.update(std::span<const std::uint8_t>(&kNodePrefix, 1));
    h.update(left);
    h.update(right);
    return h.finish();
}

MerkleTree::MerkleTree(std::vector<Digest256> leaves) {
    MCAUTH_EXPECTS(!leaves.empty());
    levels_.push_back(std::move(leaves));
    while (levels_.back().size() > 1) {
        const auto& below = levels_.back();
        std::vector<Digest256> level;
        level.reserve((below.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < below.size(); i += 2)
            level.push_back(hash_node(below[i], below[i + 1]));
        if (below.size() % 2 != 0) level.push_back(below.back());  // promote odd tail
        levels_.push_back(std::move(level));
    }
}

MerkleProof MerkleTree::prove(std::size_t leaf_index) const {
    MCAUTH_EXPECTS(leaf_index < leaf_count());
    MerkleProof proof;
    proof.leaf_index = leaf_index;
    std::size_t index = leaf_index;
    for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
        const auto& nodes = levels_[level];
        const std::size_t sibling = index ^ 1u;
        if (sibling < nodes.size()) {
            proof.steps.push_back({nodes[sibling], /*sibling_is_left=*/index % 2 == 1});
            index /= 2;
        } else {
            // Promoted trailing node: no hashing at this level. Its position
            // above is after all the pairs, i.e. floor(nodes.size() / 2).
            index = nodes.size() / 2;
        }
    }
    return proof;
}

Digest256 MerkleTree::root_from_proof(const Digest256& leaf, const MerkleProof& proof) {
    Digest256 node = leaf;
    for (const MerkleProofStep& step : proof.steps)
        node = step.sibling_is_left ? hash_node(step.sibling, node)
                                    : hash_node(node, step.sibling);
    return node;
}

bool MerkleTree::verify(const Digest256& leaf, const MerkleProof& proof,
                        const Digest256& expected_root) {
    const Digest256 actual = root_from_proof(leaf, proof);
    return ct_equal(actual, expected_root);
}

// ------------------------------------------------------------ k-ary trees

Digest256 KaryMerkleTree::hash_group(std::span<const Digest256> children) noexcept {
    Sha256 h;
    const std::uint8_t header[2] = {0x02,  // k-ary node domain
                                    static_cast<std::uint8_t>(children.size())};
    h.update(std::span<const std::uint8_t>(header, sizeof header));
    for (const Digest256& child : children) h.update(child);
    return h.finish();
}

KaryMerkleTree::KaryMerkleTree(std::vector<Digest256> leaves, std::size_t arity)
    : arity_(arity) {
    MCAUTH_EXPECTS(!leaves.empty());
    MCAUTH_EXPECTS(arity >= 2 && arity <= 255);
    levels_.push_back(std::move(leaves));
    while (levels_.back().size() > 1) {
        const auto& below = levels_.back();
        std::vector<Digest256> level;
        level.reserve((below.size() + arity_ - 1) / arity_);
        for (std::size_t start = 0; start < below.size(); start += arity_) {
            const std::size_t count = std::min(arity_, below.size() - start);
            if (count == 1) {
                level.push_back(below[start]);  // promote the lone tail node
            } else {
                level.push_back(hash_group(
                    std::span<const Digest256>(below.data() + start, count)));
            }
        }
        levels_.push_back(std::move(level));
    }
}

KaryMerkleProof KaryMerkleTree::prove(std::size_t leaf_index) const {
    MCAUTH_EXPECTS(leaf_index < leaf_count());
    KaryMerkleProof proof;
    proof.leaf_index = leaf_index;
    std::size_t index = leaf_index;
    for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
        const auto& nodes = levels_[level];
        const std::size_t start = (index / arity_) * arity_;
        const std::size_t count = std::min(arity_, nodes.size() - start);
        if (count == 1) {
            index /= arity_;  // promoted: no hashing at this level
            continue;
        }
        KaryProofStep step;
        step.position = static_cast<std::uint32_t>(index - start);
        for (std::size_t i = 0; i < count; ++i)
            if (start + i != index) step.siblings.push_back(nodes[start + i]);
        proof.steps.push_back(std::move(step));
        index /= arity_;
    }
    return proof;
}

Digest256 KaryMerkleTree::root_from_proof(const Digest256& leaf,
                                          const KaryMerkleProof& proof) {
    Digest256 node = leaf;
    for (const KaryProofStep& step : proof.steps) {
        if (step.position > step.siblings.size()) return Digest256{};  // malformed
        std::vector<Digest256> group;
        group.reserve(step.siblings.size() + 1);
        // Reassemble the ordered group with our node at its position.
        for (std::size_t i = 0, s = 0; i < step.siblings.size() + 1; ++i) {
            if (i == step.position)
                group.push_back(node);
            else
                group.push_back(step.siblings[s++]);
        }
        node = hash_group(group);
    }
    return node;
}

bool KaryMerkleTree::verify(const Digest256& leaf, const KaryMerkleProof& proof,
                            const Digest256& expected_root) {
    // Reject absurd positions up front (root_from_proof degrades safely,
    // but a position beyond its group is always malformed).
    for (const KaryProofStep& step : proof.steps)
        if (step.position > step.siblings.size()) return false;
    return ct_equal(root_from_proof(leaf, proof), expected_root);
}

}  // namespace mcauth

// Binary Merkle hash trees.
//
// Used twice in this repository:
//   * the Wong–Lam authentication-tree scheme (every packet ships a leaf
//     authentication path to a signed root), and
//   * the Merkle many-time signature that turns Winternitz one-time keys
//     into a stream signer (crypto/signature.hpp).
//
// Interior nodes use domain-separated hashing (leaf vs node prefixes) so a
// leaf value cannot be confused with an interior node (second-preimage
// hardening, as in RFC 6962). Trees of any leaf count are supported; odd
// levels promote the trailing node, so proofs carry explicit sibling-side
// bits rather than deriving sides from the leaf index.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/sha256.hpp"
#include "crypto/sha256_batch.hpp"

namespace mcauth {

struct MerkleProofStep {
    Digest256 sibling{};
    bool sibling_is_left = false;  // true: sibling is the left input at this level
};

struct MerkleProof {
    std::size_t leaf_index = 0;
    std::vector<MerkleProofStep> steps;  // bottom-up; promoted levels are skipped

    /// Serialized size in bytes (index word + one digest + side byte per step);
    /// this is the per-packet overhead of the Wong–Lam scheme.
    std::size_t wire_size() const noexcept {
        return sizeof(std::uint32_t) + steps.size() * (sizeof(Digest256) + 1);
    }
};

class MerkleTree {
public:
    /// Build over already-hashed leaf material; `leaves` may be any size >= 1.
    explicit MerkleTree(std::vector<Digest256> leaves);

    const Digest256& root() const noexcept { return levels_.back().front(); }
    std::size_t leaf_count() const noexcept { return levels_.front().size(); }
    std::size_t height() const noexcept { return levels_.size() - 1; }

    MerkleProof prove(std::size_t leaf_index) const;

    /// Recompute the root implied by (leaf, proof).
    static Digest256 root_from_proof(const Digest256& leaf, const MerkleProof& proof);

    /// Convenience check.
    static bool verify(const Digest256& leaf, const MerkleProof& proof,
                       const Digest256& expected_root);

    /// Domain-separated hashes.
    static Digest256 hash_leaf(std::span<const std::uint8_t> data) noexcept;
    static Digest256 hash_node(const Digest256& left, const Digest256& right) noexcept;

    /// Batch leaf hashing through the multi-buffer hasher: `out[i]` receives
    /// hash_leaf of `data[i]`'s concatenated parts. Each input may use at
    /// most `HashInput::kMaxParts - 1` parts (one slot holds the prefix).
    static void hash_leaves(const HashInput* data, std::size_t count, Digest256* out) noexcept;

private:
    std::vector<std::vector<Digest256>> levels_;  // levels_[0] = leaves
};

/// Proof step in a k-ary tree: the node's position within its sibling
/// group and the other group members in order.
struct KaryProofStep {
    std::uint32_t position = 0;        // index of our node within the group
    std::vector<Digest256> siblings;   // the group minus our node, in order
};

struct KaryMerkleProof {
    std::size_t leaf_index = 0;
    std::vector<KaryProofStep> steps;  // bottom-up
};

/// k-ary Merkle tree — the Wong–Lam authentication-tree degree knob.
/// Higher arity shortens proofs in LEVELS (ceil(log_k n)) but each level
/// carries up to k-1 sibling digests, so per-packet proof bytes are
/// (k-1) * ceil(log_k n) * 32: arity trades verification latency (hash
/// count) against packet overhead. k = 2 minimizes bytes; larger k
/// minimizes hashes per verification.
class KaryMerkleTree {
public:
    KaryMerkleTree(std::vector<Digest256> leaves, std::size_t arity);

    const Digest256& root() const noexcept { return levels_.back().front(); }
    std::size_t leaf_count() const noexcept { return levels_.front().size(); }
    std::size_t arity() const noexcept { return arity_; }
    std::size_t height() const noexcept { return levels_.size() - 1; }

    KaryMerkleProof prove(std::size_t leaf_index) const;

    static Digest256 root_from_proof(const Digest256& leaf, const KaryMerkleProof& proof);
    static bool verify(const Digest256& leaf, const KaryMerkleProof& proof,
                       const Digest256& expected_root);

    /// Interior node: domain-separated hash over an ordered child group
    /// (the group size is part of the hash input, so truncated groups
    /// cannot be confused with full ones).
    static Digest256 hash_group(std::span<const Digest256> children) noexcept;

private:
    std::size_t arity_;
    std::vector<std::vector<Digest256>> levels_;
};

}  // namespace mcauth

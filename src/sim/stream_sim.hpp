// End-to-end stream simulation: real codec + simulated channel.
//
// This closes the loop on the paper's analysis: the dependence-graph
// engines *predict* q_min, receiver delay and buffer needs; these pipelines
// *measure* them by pushing actual signed/hashed/MAC'd bytes through a
// lossy, delaying, reordering channel and letting the receiving codec
// authenticate what it can. abl_e2e_validation asserts predicted ==
// measured (within Monte-Carlo error).
//
// Timing model: packets are paced t_transmit apart; arrival order (not send
// order) drives the receiver; an authenticated packet's receiver delay is
// the arrival time of the packet that *triggered* its verdict minus its own
// arrival time (the random+deterministic delay of Eq. 4 combined).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "auth/hash_chain_scheme.hpp"
#include "auth/scheme.hpp"
#include "auth/sign_each_scheme.hpp"
#include "auth/tesla_scheme.hpp"
#include "auth/tree_scheme.hpp"
#include "net/channel.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace mcauth {

struct SimConfig {
    std::size_t blocks = 8;          // blocks (or, for TESLA, bursts) to stream
    std::size_t payload_bytes = 256;
    double t_transmit = 0.01;        // pacing, seconds/packet
    std::size_t sign_copies = 3;     // replicas of P_sign (the paper's 1/p_s)
    std::uint64_t seed = 1;
};

struct SimStats {
    std::size_t packets_sent = 0;
    std::size_t packets_received = 0;
    std::size_t authenticated = 0;
    std::size_t rejected = 0;
    std::size_t unverifiable = 0;

    /// Aggregate empirical Pr{authenticated | received} over data packets.
    /// NaN when nothing was resolved (e.g. every packet lost): a sim with no
    /// evidence must not report a perfect score. Callers asserting on sim
    /// health should require std::isfinite(auth_fraction()).
    double auth_fraction() const {
        const std::size_t resolved = authenticated + rejected + unverifiable;
        return resolved == 0 ? std::numeric_limits<double>::quiet_NaN()
                             : static_cast<double>(authenticated) /
                                   static_cast<double>(resolved);
    }

    /// Per-transmission-index empirical q (verified/received), min over
    /// indices with at least one reception — the measured q_min.
    std::vector<double> q_by_index;
    double empirical_q_min = 1.0;

    RunningStats receiver_delay;          // seconds, authenticated packets only
    std::size_t max_buffered_packets = 0; // receiver high-water mark
    double overhead_bytes_per_packet = 0.0;  // wire - payload, averaged
};

/// The generic driver behind every entry point below: streams `sim.blocks`
/// blocks of `block_size` payload packets from `sender` through `channel`
/// into `receiver`, following the sender's SchemeTraits for pacing,
/// signature replication, delivery order and tallying. Any SchemeSender /
/// SchemeReceiver pair (factory-built, adaptive, out-of-tree) drives the
/// same measurement loop — and produces SimStats bit-identical to the
/// historical per-scheme loops for the four built-in codecs.
SimStats run_scheme_sim(SchemeSender& sender, SchemeReceiver& receiver, Channel& channel,
                        std::size_t block_size, const SimConfig& sim, Rng& rng);

/// Any dependence-graph scheme (Rohatgi / EMSS / AC / custom topologies).
/// Thin adapter over run_scheme_sim (as are the three below).
SimStats run_hash_chain_sim(const HashChainConfig& scheme, Signer& signer, Channel& channel,
                            const SimConfig& sim);

/// TESLA. `max_clock_skew` is the receiver's synchronization bound; the
/// bootstrap is delivered reliably (the paper's P_sign assumption).
SimStats run_tesla_sim(const TeslaConfig& scheme, Signer& signer, Channel& channel,
                       const SimConfig& sim, double max_clock_skew);

/// Wong–Lam authentication tree.
SimStats run_tree_sim(const TreeSchemeConfig& scheme, Signer& signer, Channel& channel,
                      const SimConfig& sim);

/// Sign-each baseline. `block_size` only groups packets for accounting.
SimStats run_sign_each_sim(std::size_t block_size, Signer& signer, Channel& channel,
                           const SimConfig& sim);

/// Multicast fan-out: ONE sender's blocks delivered to `receivers`
/// independent receivers, each behind its own clone of `channel_prototype`
/// (fresh loss state, same statistics). This is the paper's actual setting —
/// §1's single source, many recipients — and exposes group-level effects
/// the single-receiver view hides: a packet the sender amortized once must
/// survive *every* receiver's loss pattern independently.
struct MulticastStats {
    std::size_t receivers = 0;
    std::vector<SimStats> per_receiver;

    /// Aggregate over receivers of the per-receiver verified fraction.
    RunningStats verified_fraction;
    /// All receivers' authenticated-packet delays merged into one
    /// accumulator (RunningStats::merge — Welford partials combine without
    /// precision loss, the same mechanism per-thread obs stats would use).
    RunningStats receiver_delay_all;
    /// Fraction of data packets verified by EVERY receiver (group delivery)
    /// and by AT LEAST one receiver.
    double all_receivers_fraction = 0.0;
    double any_receiver_fraction = 0.0;
};

MulticastStats run_multicast_hash_chain_sim(const HashChainConfig& scheme, Signer& signer,
                                            const Channel& channel_prototype,
                                            std::size_t receivers, const SimConfig& sim);

}  // namespace mcauth

#include "sim/stream_sim.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace mcauth {

namespace {

/// Per-index (received, authenticated) tallies across blocks.
class IndexTally {
public:
    explicit IndexTally(std::size_t indices) : received_(indices, 0), verified_(indices, 0) {}

    void on_received(std::size_t index) { ++received_[index]; }
    void on_authenticated(std::size_t index) { ++verified_[index]; }

    void finalize(SimStats& stats) const {
        stats.q_by_index.assign(received_.size(), 1.0);
        stats.empirical_q_min = 1.0;
        for (std::size_t i = 0; i < received_.size(); ++i) {
            if (received_[i] == 0) continue;
            stats.q_by_index[i] = static_cast<double>(verified_[i]) /
                                  static_cast<double>(received_[i]);
            stats.empirical_q_min = std::min(stats.empirical_q_min, stats.q_by_index[i]);
        }
    }

private:
    std::vector<std::size_t> received_;
    std::vector<std::size_t> verified_;
};

std::vector<std::vector<std::uint8_t>> random_payloads(Rng& rng, std::size_t count,
                                                       std::size_t bytes) {
    std::vector<std::vector<std::uint8_t>> payloads;
    payloads.reserve(count);
    for (std::size_t i = 0; i < count; ++i) payloads.push_back(rng.bytes(bytes));
    return payloads;
}

struct Arrival {
    double time = 0.0;
    std::size_t packet = 0;  // index into the sent-packet array
};

/// Transmit packets (with P_sign replicas) and return arrivals sorted by time.
std::vector<Arrival> transmit_block(const std::vector<AuthPacket>& packets,
                                    std::size_t sign_index, std::size_t sign_copies,
                                    Channel& channel, Rng& rng, double start_time,
                                    double t_transmit, std::size_t& sent_counter) {
    std::vector<Arrival> arrivals;
    double clock = start_time;
    {
        MCAUTH_OBS_SPAN("sim.channel");
        for (std::size_t i = 0; i < packets.size(); ++i) {
            // Replicas of P_sign ride immediately after the original.
            const std::size_t copies = (i == sign_index) ? sign_copies : 1;
            for (std::size_t c = 0; c < copies; ++c) {
                ++sent_counter;
                MCAUTH_OBS_EVENT(kPacketEmitted, packets[i].block_id,
                                 packets[i].index, 0,
                                 i == sign_index ? 1.0 : 0.0);
                if (const auto at = channel.transmit(clock, rng))
                    arrivals.push_back({*at, i});
                clock += t_transmit;
            }
        }
    }
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const Arrival& a, const Arrival& b) { return a.time < b.time; });
    return arrivals;
}

double mean_overhead(const std::vector<AuthPacket>& packets) {
    double total = 0.0;
    for (const AuthPacket& p : packets)
        total += static_cast<double>(p.wire_size() - p.payload.size());
    return packets.empty() ? 0.0 : total / static_cast<double>(packets.size());
}

/// Flush one run's tallies into the metrics registry, globally and per
/// scheme. Scheme names are dynamic, so this bypasses the static-caching
/// macros; it runs once per sim, not per packet.
void record_scheme_stats(const std::string& scheme, const SimStats& s) {
#if MCAUTH_OBS_ENABLED
    if (!obs::enabled()) return;
    auto& reg = obs::registry();
    const std::string prefix = "sim." + scheme + ".";
    reg.counter(prefix + "sent").add(s.packets_sent);
    reg.counter(prefix + "received").add(s.packets_received);
    reg.counter(prefix + "authenticated").add(s.authenticated);
    reg.counter(prefix + "rejected").add(s.rejected);
    reg.counter(prefix + "unverifiable").add(s.unverifiable);
    reg.counter("sim.packets_sent").add(s.packets_sent);
    reg.counter("sim.packets_received").add(s.packets_received);
    reg.counter("sim.authenticated").add(s.authenticated);
    reg.counter("sim.rejected").add(s.rejected);
    reg.counter("sim.unverifiable").add(s.unverifiable);
#else
    (void)scheme;
    (void)s;
#endif
}

}  // namespace

SimStats run_scheme_sim(SchemeSender& sender, SchemeReceiver& receiver, Channel& channel,
                        std::size_t block_size, const SimConfig& sim, Rng& rng) {
    MCAUTH_EXPECTS(sim.blocks >= 1);
    MCAUTH_EXPECTS(block_size >= 1);
    const SchemeTraits& traits = sender.traits();
    if (traits.replicate_signature) MCAUTH_EXPECTS(sim.sign_copies >= 1);
    using Delivery = SchemeTraits::Delivery;
    using Pacing = SchemeTraits::Pacing;

    // Preamble packets are delivered reliably — the paper's "P_sign always
    // received" assumption, realized in practice by unicast retransmission
    // at join (TESLA's signed bootstrap).
    for (const AuthPacket& pkt : sender.preamble())
        MCAUTH_REQUIRE(receiver.on_preamble(pkt));

    const std::size_t n = block_size;
    SimStats stats;
    IndexTally tally(traits.stream_tally ? sim.blocks * n : n);
    // First arrival time per packet index — per block for block-scoped
    // schemes (indices repeat across blocks), stream-wide otherwise.
    std::map<std::uint32_t, double> first_arrival;
    double overhead_sum = 0.0;  // per-packet accounting (!payloads_upfront)

    // Pacing state; see SchemeTraits::Pacing for the exact arithmetic each
    // mode pins (kept expression-for-expression identical to the historical
    // per-scheme loops so SimStats stay bit-identical).
    double clock = traits.clock_start_slots * sim.t_transmit;
    double block_start = 0.0;

    // Actor 1 is the single receiver of this sim (0 is the sender).
    const auto deliver = [&](const AuthPacket& pkt, double at) {
        if (first_arrival.emplace(pkt.index, at).second) {
            ++stats.packets_received;
            tally.on_received(pkt.index);
            MCAUTH_OBS_EVENT(kPacketReceived, pkt.block_id, pkt.index, 1,
                             pkt.kind == PacketKind::kSignature ? 1.0 : 0.0);
        }
        std::vector<VerifyEvent> events;
        {
            MCAUTH_OBS_SPAN("sim.verify");
            events = receiver.on_packet(pkt, at);
        }
        for (const VerifyEvent& ev : events) {
            switch (ev.status) {
                case VerifyStatus::kAuthenticated: {
                    ++stats.authenticated;
                    tally.on_authenticated(ev.index);
                    MCAUTH_OBS_EVENT(kPacketVerified, ev.block_id, ev.index, 1, 0.0);
                    const auto it = first_arrival.find(ev.index);
                    MCAUTH_ENSURES(it != first_arrival.end());
                    stats.receiver_delay.add(at - it->second);
                    break;
                }
                case VerifyStatus::kRejected:
                    ++stats.rejected;
                    MCAUTH_OBS_EVENT(kPacketRejected, ev.block_id, ev.index, 1, 0.0);
                    break;
                case VerifyStatus::kUnverifiable:
                    ++stats.unverifiable;
                    MCAUTH_OBS_EVENT(kPacketUnverifiable, ev.block_id, ev.index, 1, 0.0);
                    break;
            }
        }
        stats.max_buffered_packets =
            std::max(stats.max_buffered_packets, receiver.buffered_packets());
        MCAUTH_OBS_GAUGE_SET("sim.buffered_packets", receiver.buffered_packets());
    };

    // Stream-delivery schemes accumulate every survivor and deliver once,
    // sorted, after the last block (key disclosure crosses block bounds).
    std::vector<AuthPacket> stream_packets;
    std::vector<Arrival> stream_arrivals;

    for (std::size_t b = 0; b < sim.blocks; ++b) {
        if (traits.pacing == Pacing::kBlockIncremental) clock = block_start;
        std::size_t transmissions = 0;
        std::vector<Arrival> arrivals;  // this block's survivors

        if (traits.payloads_upfront) {
            const auto payloads = random_payloads(rng, n, sim.payload_bytes);
            std::vector<AuthPacket> packets;
            {
                MCAUTH_OBS_SPAN("sim.sign");
                packets = sender.make_block(static_cast<std::uint32_t>(b), payloads);
            }
            stats.overhead_bytes_per_packet += mean_overhead(packets);
            {
                MCAUTH_OBS_SPAN("sim.emit");
                for (std::size_t i = 0; i < packets.size(); ++i) {
                    const AuthPacket& pkt = packets[i];
                    // Replicas of P_sign ride immediately after the original.
                    const std::size_t copies =
                        (traits.replicate_signature && pkt.kind == PacketKind::kSignature)
                            ? sim.sign_copies
                            : 1;
                    for (std::size_t c = 0; c < copies; ++c) {
                        ++stats.packets_sent;
                        ++transmissions;
                        MCAUTH_OBS_EVENT(kPacketEmitted, pkt.block_id, pkt.index, 0,
                                         pkt.kind == PacketKind::kSignature ? 1.0
                                                                            : 0.0);
                        const double send_time =
                            traits.pacing == Pacing::kBlockMultiplicative
                                ? block_start + static_cast<double>(i) * sim.t_transmit
                                : clock;
                        const auto at = channel.transmit(send_time, rng);
                        if (traits.pacing != Pacing::kBlockMultiplicative)
                            clock += sim.t_transmit;
                        if (!at) continue;
                        if (traits.delivery == Delivery::kSendOrder)
                            deliver(pkt, *at);
                        else
                            arrivals.push_back({*at, i});
                    }
                }
            }
            if (traits.delivery == Delivery::kBlockArrivalOrder) {
                std::stable_sort(arrivals.begin(), arrivals.end(),
                                 [](const Arrival& a, const Arrival& b2) {
                                     return a.time < b2.time;
                                 });
                MCAUTH_OBS_SPAN("sim.receive");
                for (const Arrival& a : arrivals) deliver(packets[a.packet], a.time);
            } else {
                MCAUTH_ENSURES(arrivals.empty());
            }
#if MCAUTH_OBS_ENABLED
            // Signature-loss marker for block-scoped schemes: the block's
            // P_sign (incl. every replica) never arrived. Emitted after the
            // block's deliveries, so a later PacketVerified in the same
            // (actor, block) scope is a checker-visible contradiction.
            if (obs::enabled() && obs::trace_enabled() &&
                traits.delivery != Delivery::kStreamArrivalOrder) {
                for (const AuthPacket& pkt : packets) {
                    if (pkt.kind != PacketKind::kSignature) continue;
                    if (first_arrival.find(pkt.index) == first_arrival.end())
                        obs::emit_event(obs::EventId::kSignatureLost,
                                        pkt.block_id, 0, 1, 0.0);
                    break;
                }
            }
#endif
        } else {
            // Stream codecs: payload drawn, packet built and transmitted one
            // at a time (the codec may be stateful in send time).
            for (std::size_t i = 0; i < n; ++i) {
                AuthPacket pkt;
                {
                    MCAUTH_OBS_SPAN("sim.sign");
                    pkt = sender.make_packet(static_cast<std::uint32_t>(b),
                                             static_cast<std::uint32_t>(i),
                                             rng.bytes(sim.payload_bytes), clock);
                }
                overhead_sum +=
                    static_cast<double>(pkt.wire_size() - sim.payload_bytes);
                ++stats.packets_sent;
                ++transmissions;
                MCAUTH_OBS_EVENT(kPacketEmitted, pkt.block_id, pkt.index, 0,
                                 pkt.kind == PacketKind::kSignature ? 1.0 : 0.0);
                std::optional<double> at;
                {
                    MCAUTH_OBS_SPAN("sim.emit");
                    at = channel.transmit(clock, rng);
                }
                if (at) {
                    if (traits.delivery == Delivery::kSendOrder) {
                        deliver(pkt, *at);
                    } else {
                        stream_packets.push_back(std::move(pkt));
                        stream_arrivals.push_back({*at, stream_packets.size() - 1});
                    }
                }
                clock += sim.t_transmit;
            }
        }

        if (traits.per_block_finish) {
            for (const VerifyEvent& ev :
                 receiver.finish_block(static_cast<std::uint32_t>(b))) {
                if (ev.status == VerifyStatus::kUnverifiable) {
                    ++stats.unverifiable;
                    MCAUTH_OBS_EVENT(kPacketUnverifiable, ev.block_id, ev.index, 1,
                                     0.0);
                }
            }
        }
        if (traits.pacing == Pacing::kBlockIncremental)
            block_start += static_cast<double>(transmissions) * sim.t_transmit;
        else if (traits.pacing == Pacing::kBlockMultiplicative)
            block_start += static_cast<double>(n) * sim.t_transmit;
        if (traits.delivery != Delivery::kStreamArrivalOrder) first_arrival.clear();
    }

    if (traits.delivery == Delivery::kStreamArrivalOrder) {
        std::stable_sort(stream_arrivals.begin(), stream_arrivals.end(),
                         [](const Arrival& a, const Arrival& b) { return a.time < b.time; });
        MCAUTH_OBS_SPAN("sim.receive");
        for (const Arrival& a : stream_arrivals)
            deliver(stream_packets[a.packet], a.time);
    }
    for (const VerifyEvent& ev : receiver.finish_all())
        if (ev.status == VerifyStatus::kUnverifiable) {
            ++stats.unverifiable;
            MCAUTH_OBS_EVENT(kPacketUnverifiable, ev.block_id, ev.index, 1, 0.0);
        }

    if (traits.payloads_upfront)
        stats.overhead_bytes_per_packet /= static_cast<double>(sim.blocks);
    else
        stats.overhead_bytes_per_packet =
            overhead_sum / static_cast<double>(sim.blocks * n);
    tally.finalize(stats);
    record_scheme_stats(sender.name(), stats);
    return stats;
}

SimStats run_hash_chain_sim(const HashChainConfig& scheme, Signer& signer, Channel& channel,
                            const SimConfig& sim) {
    Rng rng(sim.seed);
    HashChainSchemeSender sender(scheme, signer);
    HashChainSchemeReceiver receiver(scheme, signer.make_verifier());
    return run_scheme_sim(sender, receiver, channel, scheme.block_size, sim, rng);
}

SimStats run_tesla_sim(const TeslaConfig& scheme, Signer& signer, Channel& channel,
                       const SimConfig& sim, double max_clock_skew) {
    Rng rng(sim.seed);
    // Sender construction consumes rng (key chain) before any payload draw —
    // part of the historical RNG consumption order this adapter preserves.
    // "blocks" only sizes the run: 64-packet slices of one stream.
    TeslaSchemeSender sender(scheme, signer, rng, /*start_time=*/0.0);
    TeslaSchemeReceiver receiver(scheme, signer.make_verifier(), max_clock_skew);
    return run_scheme_sim(sender, receiver, channel, /*block_size=*/64, sim, rng);
}

SimStats run_tree_sim(const TreeSchemeConfig& scheme, Signer& signer, Channel& channel,
                      const SimConfig& sim) {
    Rng rng(sim.seed);
    TreeSchemeSender sender(scheme, signer);
    TreeSchemeReceiver receiver(scheme, signer.make_verifier());
    return run_scheme_sim(sender, receiver, channel, scheme.block_size, sim, rng);
}

SimStats run_sign_each_sim(std::size_t block_size, Signer& signer, Channel& channel,
                           const SimConfig& sim) {
    Rng rng(sim.seed);
    SignEachSchemeSender sender(signer);
    SignEachSchemeReceiver receiver(signer.make_verifier());
    return run_scheme_sim(sender, receiver, channel, block_size, sim, rng);
}

MulticastStats run_multicast_hash_chain_sim(const HashChainConfig& scheme, Signer& signer,
                                            const Channel& channel_prototype,
                                            std::size_t receivers, const SimConfig& sim) {
    MCAUTH_EXPECTS(receivers >= 1);
    MCAUTH_EXPECTS(sim.blocks >= 1);
    Rng rng(sim.seed);
    HashChainSender sender(scheme, signer);
    const std::size_t n = scheme.block_size;
    const std::size_t sign_index = sender.topology().send_pos(DependenceGraph::root());

    // The sender authenticates each block ONCE; all receivers share the
    // exact same packets (that is the economics of multicast).
    std::vector<std::vector<AuthPacket>> blocks;
    blocks.reserve(sim.blocks);
    {
        MCAUTH_OBS_SPAN("sim.sign");
        for (std::size_t b = 0; b < sim.blocks; ++b)
            blocks.push_back(sender.make_block(static_cast<std::uint32_t>(b),
                                               random_payloads(rng, n, sim.payload_bytes)));
    }

    MulticastStats stats;
    stats.receivers = receivers;
    stats.per_receiver.reserve(receivers);

    // verified_by[b][i] counts receivers that authenticated packet (b, i).
    std::vector<std::vector<std::size_t>> verified_by(sim.blocks,
                                                      std::vector<std::size_t>(n, 0));

    for (std::size_t r = 0; r < receivers; ++r) {
        Channel channel = channel_prototype.clone();
        Rng recv_rng = rng.fork();
        HashChainReceiver receiver(scheme, signer.make_verifier());
        SimStats one;
        IndexTally tally(n);
        double block_start = 0.0;
        for (std::size_t b = 0; b < sim.blocks; ++b) {
            const auto arrivals =
                transmit_block(blocks[b], sign_index, sim.sign_copies, channel, recv_rng,
                               block_start, sim.t_transmit, one.packets_sent);
            const std::uint32_t actor = static_cast<std::uint32_t>(r) + 1;
            std::map<std::uint32_t, double> arrival_time;
            for (const Arrival& a : arrivals) {
                const AuthPacket& pkt = blocks[b][a.packet];
                if (arrival_time.emplace(pkt.index, a.time).second) {
                    ++one.packets_received;
                    tally.on_received(pkt.index);
                    MCAUTH_OBS_EVENT(kPacketReceived, pkt.block_id, pkt.index,
                                     actor,
                                     pkt.kind == PacketKind::kSignature ? 1.0
                                                                        : 0.0);
                }
                for (const VerifyEvent& ev : receiver.on_packet(pkt)) {
                    switch (ev.status) {
                        case VerifyStatus::kAuthenticated:
                            ++one.authenticated;
                            tally.on_authenticated(ev.index);
                            ++verified_by[b][ev.index];
                            one.receiver_delay.add(a.time - arrival_time.at(ev.index));
                            MCAUTH_OBS_EVENT(kPacketVerified, ev.block_id,
                                             ev.index, actor, 0.0);
                            break;
                        case VerifyStatus::kRejected:
                            ++one.rejected;
                            MCAUTH_OBS_EVENT(kPacketRejected, ev.block_id,
                                             ev.index, actor, 0.0);
                            break;
                        case VerifyStatus::kUnverifiable:
                            ++one.unverifiable;
                            MCAUTH_OBS_EVENT(kPacketUnverifiable, ev.block_id,
                                             ev.index, actor, 0.0);
                            break;
                    }
                }
                one.max_buffered_packets =
                    std::max(one.max_buffered_packets, receiver.buffered_packets());
            }
#if MCAUTH_OBS_ENABLED
            if (obs::enabled() && obs::trace_enabled()) {
                const AuthPacket& sig = blocks[b][sign_index];
                if (arrival_time.find(sig.index) == arrival_time.end())
                    obs::emit_event(obs::EventId::kSignatureLost, sig.block_id, 0,
                                    actor, 0.0);
            }
#endif
            for (const VerifyEvent& ev :
                 receiver.finish_block(static_cast<std::uint32_t>(b))) {
                if (ev.status == VerifyStatus::kUnverifiable) {
                    ++one.unverifiable;
                    MCAUTH_OBS_EVENT(kPacketUnverifiable, ev.block_id, ev.index,
                                     actor, 0.0);
                }
            }
            block_start += static_cast<double>(n + sim.sign_copies - 1) * sim.t_transmit;
        }
        tally.finalize(one);
        record_scheme_stats(scheme.name, one);
        const std::size_t data_packets = sim.blocks * n;
        stats.verified_fraction.add(static_cast<double>(one.authenticated) /
                                    static_cast<double>(data_packets));
        stats.receiver_delay_all.merge(one.receiver_delay);
        stats.per_receiver.push_back(std::move(one));
    }

    std::size_t all_count = 0;
    std::size_t any_count = 0;
    for (const auto& block : verified_by) {
        for (std::size_t count : block) {
            if (count == receivers) ++all_count;
            if (count > 0) ++any_count;
        }
    }
    const auto total = static_cast<double>(sim.blocks * n);
    stats.all_receivers_fraction = static_cast<double>(all_count) / total;
    stats.any_receiver_fraction = static_cast<double>(any_count) / total;
    return stats;
}

}  // namespace mcauth

#include "sim/stream_sim.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <string>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace mcauth {

namespace {

/// Per-index (received, authenticated) tallies across blocks.
class IndexTally {
public:
    explicit IndexTally(std::size_t indices) : received_(indices, 0), verified_(indices, 0) {}

    void on_received(std::size_t index) { ++received_[index]; }
    void on_authenticated(std::size_t index) { ++verified_[index]; }

    void finalize(SimStats& stats) const {
        stats.q_by_index.assign(received_.size(), 1.0);
        stats.empirical_q_min = 1.0;
        for (std::size_t i = 0; i < received_.size(); ++i) {
            if (received_[i] == 0) continue;
            stats.q_by_index[i] = static_cast<double>(verified_[i]) /
                                  static_cast<double>(received_[i]);
            stats.empirical_q_min = std::min(stats.empirical_q_min, stats.q_by_index[i]);
        }
    }

private:
    std::vector<std::size_t> received_;
    std::vector<std::size_t> verified_;
};

std::vector<std::vector<std::uint8_t>> random_payloads(Rng& rng, std::size_t count,
                                                       std::size_t bytes) {
    std::vector<std::vector<std::uint8_t>> payloads;
    payloads.reserve(count);
    for (std::size_t i = 0; i < count; ++i) payloads.push_back(rng.bytes(bytes));
    return payloads;
}

struct Arrival {
    double time = 0.0;
    std::size_t packet = 0;  // index into the sent-packet array
};

/// Transmit packets (with P_sign replicas) and return arrivals sorted by time.
std::vector<Arrival> transmit_block(const std::vector<AuthPacket>& packets,
                                    std::size_t sign_index, std::size_t sign_copies,
                                    Channel& channel, Rng& rng, double start_time,
                                    double t_transmit, std::size_t& sent_counter) {
    std::vector<Arrival> arrivals;
    double clock = start_time;
    {
        MCAUTH_OBS_SPAN("sim.channel");
        for (std::size_t i = 0; i < packets.size(); ++i) {
            // Replicas of P_sign ride immediately after the original.
            const std::size_t copies = (i == sign_index) ? sign_copies : 1;
            for (std::size_t c = 0; c < copies; ++c) {
                ++sent_counter;
                if (const auto at = channel.transmit(clock, rng))
                    arrivals.push_back({*at, i});
                clock += t_transmit;
            }
        }
    }
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const Arrival& a, const Arrival& b) { return a.time < b.time; });
    return arrivals;
}

double mean_overhead(const std::vector<AuthPacket>& packets) {
    double total = 0.0;
    for (const AuthPacket& p : packets)
        total += static_cast<double>(p.wire_size() - p.payload.size());
    return packets.empty() ? 0.0 : total / static_cast<double>(packets.size());
}

/// Flush one run's tallies into the metrics registry, globally and per
/// scheme. Scheme names are dynamic, so this bypasses the static-caching
/// macros; it runs once per sim, not per packet.
void record_scheme_stats(const std::string& scheme, const SimStats& s) {
#if MCAUTH_OBS_ENABLED
    if (!obs::enabled()) return;
    auto& reg = obs::registry();
    const std::string prefix = "sim." + scheme + ".";
    reg.counter(prefix + "sent").add(s.packets_sent);
    reg.counter(prefix + "received").add(s.packets_received);
    reg.counter(prefix + "authenticated").add(s.authenticated);
    reg.counter(prefix + "rejected").add(s.rejected);
    reg.counter(prefix + "unverifiable").add(s.unverifiable);
    reg.counter("sim.packets_sent").add(s.packets_sent);
    reg.counter("sim.packets_received").add(s.packets_received);
    reg.counter("sim.authenticated").add(s.authenticated);
    reg.counter("sim.rejected").add(s.rejected);
    reg.counter("sim.unverifiable").add(s.unverifiable);
#else
    (void)scheme;
    (void)s;
#endif
}

}  // namespace

SimStats run_hash_chain_sim(const HashChainConfig& scheme, Signer& signer, Channel& channel,
                            const SimConfig& sim) {
    MCAUTH_EXPECTS(sim.blocks >= 1);
    MCAUTH_EXPECTS(sim.sign_copies >= 1);
    Rng rng(sim.seed);
    HashChainSender sender(scheme, signer);
    HashChainReceiver receiver(scheme, signer.make_verifier());
    const std::size_t n = scheme.block_size;
    const std::size_t sign_index = sender.topology().send_pos(DependenceGraph::root());

    SimStats stats;
    IndexTally tally(n);
    double block_start = 0.0;

    for (std::size_t b = 0; b < sim.blocks; ++b) {
        const auto payloads = random_payloads(rng, n, sim.payload_bytes);
        std::vector<AuthPacket> packets;
        {
            MCAUTH_OBS_SPAN("sim.sign");
            packets = sender.make_block(static_cast<std::uint32_t>(b), payloads);
        }
        stats.overhead_bytes_per_packet += mean_overhead(packets);

        std::vector<Arrival> arrivals;
        {
            MCAUTH_OBS_SPAN("sim.emit");
            arrivals = transmit_block(packets, sign_index, sim.sign_copies, channel,
                                      rng, block_start, sim.t_transmit,
                                      stats.packets_sent);
        }
        {
            MCAUTH_OBS_SPAN("sim.receive");
            std::map<std::uint32_t, double> arrival_time;  // first arrival per index
            for (const Arrival& a : arrivals) {
                const AuthPacket& pkt = packets[a.packet];
                if (arrival_time.emplace(pkt.index, a.time).second) {
                    ++stats.packets_received;
                    tally.on_received(pkt.index);
                }
                std::vector<VerifyEvent> events;
                {
                    MCAUTH_OBS_SPAN("sim.verify");
                    events = receiver.on_packet(pkt);
                }
                for (const VerifyEvent& ev : events) {
                    switch (ev.status) {
                        case VerifyStatus::kAuthenticated: {
                            ++stats.authenticated;
                            tally.on_authenticated(ev.index);
                            const auto it = arrival_time.find(ev.index);
                            MCAUTH_ENSURES(it != arrival_time.end());
                            stats.receiver_delay.add(a.time - it->second);
                            break;
                        }
                        case VerifyStatus::kRejected:
                            ++stats.rejected;
                            break;
                        case VerifyStatus::kUnverifiable:
                            ++stats.unverifiable;
                            break;
                    }
                }
                stats.max_buffered_packets =
                    std::max(stats.max_buffered_packets, receiver.buffered_packets());
                MCAUTH_OBS_GAUGE_SET("sim.buffered_packets", receiver.buffered_packets());
            }
        }
        for (const VerifyEvent& ev :
             receiver.finish_block(static_cast<std::uint32_t>(b))) {
            if (ev.status == VerifyStatus::kUnverifiable) ++stats.unverifiable;
        }
        block_start += static_cast<double>(n + sim.sign_copies - 1) * sim.t_transmit;
    }
    stats.overhead_bytes_per_packet /= static_cast<double>(sim.blocks);
    tally.finalize(stats);
    record_scheme_stats(scheme.name, stats);
    return stats;
}

SimStats run_tesla_sim(const TeslaConfig& scheme, Signer& signer, Channel& channel,
                       const SimConfig& sim, double max_clock_skew) {
    MCAUTH_EXPECTS(sim.blocks >= 1);
    Rng rng(sim.seed);
    TeslaSender sender(scheme, signer, rng, /*start_time=*/0.0);
    TeslaReceiver receiver(scheme, signer.make_verifier(), max_clock_skew);

    // Bootstrap is delivered reliably — the paper's "P_sign always received"
    // assumption, realized in practice by unicast retransmission at join.
    MCAUTH_REQUIRE(receiver.on_bootstrap(sender.bootstrap()));

    // Stream sim.blocks * 64 packets; "blocks" only sizes the run here.
    const std::size_t total_packets = sim.blocks * 64;
    std::vector<AuthPacket> packets;
    packets.reserve(total_packets);
    std::vector<Arrival> arrivals;
    double clock = sim.t_transmit;  // interval 1 starts at sender time 0
    SimStats stats;
    double overhead_sum = 0.0;

    for (std::size_t i = 0; i < total_packets; ++i) {
        {
            MCAUTH_OBS_SPAN("sim.sign");
            packets.push_back(sender.make_packet(rng.bytes(sim.payload_bytes), clock));
        }
        overhead_sum +=
            static_cast<double>(packets.back().wire_size() - sim.payload_bytes);
        ++stats.packets_sent;
        {
            MCAUTH_OBS_SPAN("sim.emit");
            if (const auto at = channel.transmit(clock, rng))
                arrivals.push_back({*at, packets.size() - 1});
        }
        clock += sim.t_transmit;
    }
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const Arrival& a, const Arrival& b) { return a.time < b.time; });

    IndexTally tally(total_packets);
    std::vector<double> arrival_of(total_packets, 0.0);
    for (const Arrival& a : arrivals) {
        const AuthPacket& pkt = packets[a.packet];
        ++stats.packets_received;
        tally.on_received(pkt.index);
        arrival_of[pkt.index] = a.time;
        std::vector<VerifyEvent> events;
        {
            MCAUTH_OBS_SPAN("sim.verify");
            events = receiver.on_packet(pkt, a.time);
        }
        for (const VerifyEvent& ev : events) {
            switch (ev.status) {
                case VerifyStatus::kAuthenticated:
                    ++stats.authenticated;
                    tally.on_authenticated(ev.index);
                    stats.receiver_delay.add(a.time - arrival_of[ev.index]);
                    break;
                case VerifyStatus::kRejected:
                    ++stats.rejected;
                    break;
                case VerifyStatus::kUnverifiable:
                    ++stats.unverifiable;
                    break;
            }
        }
        stats.max_buffered_packets =
            std::max(stats.max_buffered_packets, receiver.buffered_packets());
    }
    for (const VerifyEvent& ev : receiver.finish())
        if (ev.status == VerifyStatus::kUnverifiable) ++stats.unverifiable;

    stats.overhead_bytes_per_packet =
        total_packets == 0 ? 0.0 : overhead_sum / static_cast<double>(total_packets);
    tally.finalize(stats);
    record_scheme_stats("tesla", stats);
    return stats;
}

SimStats run_tree_sim(const TreeSchemeConfig& scheme, Signer& signer, Channel& channel,
                      const SimConfig& sim) {
    MCAUTH_EXPECTS(sim.blocks >= 1);
    Rng rng(sim.seed);
    TreeSender sender(scheme, signer);
    TreeReceiver receiver(scheme, signer.make_verifier());
    const std::size_t n = scheme.block_size;

    SimStats stats;
    IndexTally tally(n);
    double block_start = 0.0;
    for (std::size_t b = 0; b < sim.blocks; ++b) {
        const auto payloads = random_payloads(rng, n, sim.payload_bytes);
        std::vector<AuthPacket> packets;
        {
            MCAUTH_OBS_SPAN("sim.sign");
            packets = sender.make_block(static_cast<std::uint32_t>(b), payloads);
        }
        stats.overhead_bytes_per_packet += mean_overhead(packets);
        for (std::size_t i = 0; i < n; ++i) {
            ++stats.packets_sent;
            const double send_time = block_start + static_cast<double>(i) * sim.t_transmit;
            if (!channel.transmit(send_time, rng)) continue;
            ++stats.packets_received;
            tally.on_received(i);
            VerifyEvent ev;
            {
                MCAUTH_OBS_SPAN("sim.verify");
                ev = receiver.on_packet(packets[i]);
            }
            if (ev.status == VerifyStatus::kAuthenticated) {
                ++stats.authenticated;
                tally.on_authenticated(i);
                stats.receiver_delay.add(0.0);  // individually verifiable
            } else {
                ++stats.rejected;
            }
        }
        block_start += static_cast<double>(n) * sim.t_transmit;
    }
    stats.overhead_bytes_per_packet /= static_cast<double>(sim.blocks);
    tally.finalize(stats);
    record_scheme_stats("tree", stats);
    return stats;
}

MulticastStats run_multicast_hash_chain_sim(const HashChainConfig& scheme, Signer& signer,
                                            const Channel& channel_prototype,
                                            std::size_t receivers, const SimConfig& sim) {
    MCAUTH_EXPECTS(receivers >= 1);
    MCAUTH_EXPECTS(sim.blocks >= 1);
    Rng rng(sim.seed);
    HashChainSender sender(scheme, signer);
    const std::size_t n = scheme.block_size;
    const std::size_t sign_index = sender.topology().send_pos(DependenceGraph::root());

    // The sender authenticates each block ONCE; all receivers share the
    // exact same packets (that is the economics of multicast).
    std::vector<std::vector<AuthPacket>> blocks;
    blocks.reserve(sim.blocks);
    {
        MCAUTH_OBS_SPAN("sim.sign");
        for (std::size_t b = 0; b < sim.blocks; ++b)
            blocks.push_back(sender.make_block(static_cast<std::uint32_t>(b),
                                               random_payloads(rng, n, sim.payload_bytes)));
    }

    MulticastStats stats;
    stats.receivers = receivers;
    stats.per_receiver.reserve(receivers);

    // verified_by[b][i] counts receivers that authenticated packet (b, i).
    std::vector<std::vector<std::size_t>> verified_by(sim.blocks,
                                                      std::vector<std::size_t>(n, 0));

    for (std::size_t r = 0; r < receivers; ++r) {
        Channel channel = channel_prototype.clone();
        Rng recv_rng = rng.fork();
        HashChainReceiver receiver(scheme, signer.make_verifier());
        SimStats one;
        IndexTally tally(n);
        double block_start = 0.0;
        for (std::size_t b = 0; b < sim.blocks; ++b) {
            const auto arrivals =
                transmit_block(blocks[b], sign_index, sim.sign_copies, channel, recv_rng,
                               block_start, sim.t_transmit, one.packets_sent);
            std::map<std::uint32_t, double> arrival_time;
            for (const Arrival& a : arrivals) {
                const AuthPacket& pkt = blocks[b][a.packet];
                if (arrival_time.emplace(pkt.index, a.time).second) {
                    ++one.packets_received;
                    tally.on_received(pkt.index);
                }
                for (const VerifyEvent& ev : receiver.on_packet(pkt)) {
                    switch (ev.status) {
                        case VerifyStatus::kAuthenticated:
                            ++one.authenticated;
                            tally.on_authenticated(ev.index);
                            ++verified_by[b][ev.index];
                            one.receiver_delay.add(a.time - arrival_time.at(ev.index));
                            break;
                        case VerifyStatus::kRejected:
                            ++one.rejected;
                            break;
                        case VerifyStatus::kUnverifiable:
                            ++one.unverifiable;
                            break;
                    }
                }
                one.max_buffered_packets =
                    std::max(one.max_buffered_packets, receiver.buffered_packets());
            }
            for (const VerifyEvent& ev :
                 receiver.finish_block(static_cast<std::uint32_t>(b))) {
                if (ev.status == VerifyStatus::kUnverifiable) ++one.unverifiable;
            }
            block_start += static_cast<double>(n + sim.sign_copies - 1) * sim.t_transmit;
        }
        tally.finalize(one);
        record_scheme_stats(scheme.name, one);
        const std::size_t data_packets = sim.blocks * n;
        stats.verified_fraction.add(static_cast<double>(one.authenticated) /
                                    static_cast<double>(data_packets));
        stats.receiver_delay_all.merge(one.receiver_delay);
        stats.per_receiver.push_back(std::move(one));
    }

    std::size_t all_count = 0;
    std::size_t any_count = 0;
    for (const auto& block : verified_by) {
        for (std::size_t count : block) {
            if (count == receivers) ++all_count;
            if (count > 0) ++any_count;
        }
    }
    const auto total = static_cast<double>(sim.blocks * n);
    stats.all_receivers_fraction = static_cast<double>(all_count) / total;
    stats.any_receiver_fraction = static_cast<double>(any_count) / total;
    return stats;
}

SimStats run_sign_each_sim(std::size_t block_size, Signer& signer, Channel& channel,
                           const SimConfig& sim) {
    MCAUTH_EXPECTS(sim.blocks >= 1);
    MCAUTH_EXPECTS(block_size >= 1);
    Rng rng(sim.seed);
    SignEachSender sender(signer);
    SignEachReceiver receiver(signer.make_verifier());

    SimStats stats;
    IndexTally tally(block_size);
    double clock = 0.0;
    double overhead_sum = 0.0;
    for (std::size_t b = 0; b < sim.blocks; ++b) {
        for (std::size_t i = 0; i < block_size; ++i) {
            std::optional<AuthPacket> made;
            {
                MCAUTH_OBS_SPAN("sim.sign");
                made = sender.make_packet(static_cast<std::uint32_t>(b),
                                          static_cast<std::uint32_t>(i),
                                          rng.bytes(sim.payload_bytes));
            }
            const AuthPacket& pkt = *made;
            overhead_sum += static_cast<double>(pkt.wire_size() - sim.payload_bytes);
            ++stats.packets_sent;
            if (channel.transmit(clock, rng)) {
                ++stats.packets_received;
                tally.on_received(i);
                VerifyEvent ev;
                {
                    MCAUTH_OBS_SPAN("sim.verify");
                    ev = receiver.on_packet(pkt);
                }
                if (ev.status == VerifyStatus::kAuthenticated) {
                    ++stats.authenticated;
                    tally.on_authenticated(i);
                    stats.receiver_delay.add(0.0);
                } else {
                    ++stats.rejected;
                }
            }
            clock += sim.t_transmit;
        }
    }
    stats.overhead_bytes_per_packet =
        overhead_sum / static_cast<double>(sim.blocks * block_size);
    tally.finalize(stats);
    record_scheme_stats("sign-each", stats);
    return stats;
}

}  // namespace mcauth

#include "pop/sketch.hpp"

#include "util/check.hpp"

namespace mcauth::pop {

QuantileSketch::QuantileSketch(std::size_t bins, double lo, double hi)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
    MCAUTH_EXPECTS(bins >= 2);
    MCAUTH_EXPECTS(hi > lo);
    step_ = (hi_ - lo_) / static_cast<double>(bins - 1);
}

void QuantileSketch::insert(double v) noexcept {
    if (!(v >= lo_)) v = lo_;  // NaN and below-range both clamp low
    if (v > hi_) v = hi_;
    // Nearest grid point. All operands are finite and t is in
    // [0, bins-1 + 0.5), so the truncation is well defined; IEEE arithmetic
    // makes the bin choice a pure function of the double, identical across
    // insertion orders and machines.
    const double t = (v - lo_) / step_ + 0.5;
    std::size_t idx = static_cast<std::size_t>(t);
    if (idx >= counts_.size()) idx = counts_.size() - 1;
    ++counts_[idx];
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
    }
    ++count_;
}

void QuantileSketch::merge(const QuantileSketch& other) {
    MCAUTH_EXPECTS(counts_.size() == other.counts_.size());
    MCAUTH_EXPECTS(lo_ == other.lo_ && hi_ == other.hi_);
    if (other.count_ == 0) return;
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        if (other.min_ < min_) min_ = other.min_;
        if (other.max_ > max_) max_ = other.max_;
    }
    count_ += other.count_;
}

double QuantileSketch::quantile(double q) const noexcept {
    if (count_ == 0) return lo_;
    if (!(q > 0.0)) q = 0.0;
    if (q > 1.0) q = 1.0;
    // rank = ceil(q * count), clamped to [1, count].
    std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(count_));
    if (static_cast<double>(rank) < q * static_cast<double>(count_)) ++rank;
    if (rank < 1) rank = 1;
    if (rank > count_) rank = count_;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        cumulative += counts_[i];
        if (cumulative >= rank) return bin_value(i);
    }
    return hi_;  // unreachable: cumulative ends at count_ >= rank
}

bool QuantileSketch::identical(const QuantileSketch& other) const noexcept {
    if (counts_.size() != other.counts_.size() || lo_ != other.lo_ ||
        hi_ != other.hi_ || count_ != other.count_)
        return false;
    if (count_ != 0 && (min_ != other.min_ || max_ != other.max_)) return false;
    for (std::size_t i = 0; i < counts_.size(); ++i)
        if (counts_[i] != other.counts_[i]) return false;
    return true;
}

}  // namespace mcauth::pop

#include "pop/population.hpp"

#include <algorithm>
#include <bit>
#include <memory>
#include <optional>

#include "exec/sharded.hpp"
#include "exec/thread_pool.hpp"
#include "graph/csr.hpp"
#include "obs/events.hpp"
#include "obs/obs.hpp"
#include "util/bitmat.hpp"
#include "util/check.hpp"

namespace mcauth::pop {

void PopulationAggregate::merge(const PopulationAggregate& other) {
    qhat.merge(other.qhat);
    qtrial.merge(other.qtrial);
    qauth.merge(other.qauth);
    leaf_loss.merge(other.leaf_loss);
    leaves += other.leaves;
    unresolved_leaves += other.unresolved_leaves;
    instances += other.instances;
    unresolved_instances += other.unresolved_instances;
    transmissions += other.transmissions;
    lost += other.lost;
    loss_runs += other.loss_runs;
    received += other.received;
    verified += other.verified;
    blame.merge(other.blame);
    for (const auto& [link, count] : other.link_blame) link_blame[link] += count;
}

bool PopulationAggregate::identical(const PopulationAggregate& other) const {
    return qhat.identical(other.qhat) && qtrial.identical(other.qtrial) &&
           qauth.identical(other.qauth) &&
           leaf_loss.identical(other.leaf_loss) && leaves == other.leaves &&
           unresolved_leaves == other.unresolved_leaves &&
           instances == other.instances &&
           unresolved_instances == other.unresolved_instances &&
           transmissions == other.transmissions && lost == other.lost &&
           loss_runs == other.loss_runs && received == other.received &&
           verified == other.verified && blame.identical(other.blame) &&
           link_blame == other.link_blame;
}

namespace {

constexpr std::size_t kLanes = BatchedLossModel::kLanes;

/// The exact integers engine and oracle must agree on for one leaf before
/// anything is folded into the sketches.
struct LeafCounts {
    std::uint64_t received = 0;
    std::uint64_t verified = 0;
    std::uint64_t lost = 0;
    std::uint64_t runs = 0;
    std::uint32_t rec_lane[kLanes] = {};
    std::uint32_t ver_lane[kLanes] = {};
};

/// Fold one leaf into the aggregate. The only floating-point values ever
/// inserted are ratios of the integers above — exact in doubles (both
/// operands < 2^53), so engine and oracle insert bit-identical samples.
void fold_leaf(PopulationAggregate& agg, const LeafCounts& c,
               std::size_t packets) {
    agg.leaves += 1;
    agg.instances += kLanes;
    agg.transmissions += static_cast<std::uint64_t>(packets) * kLanes;
    agg.lost += c.lost;
    agg.loss_runs += c.runs;
    agg.received += c.received;
    agg.verified += c.verified;
    agg.leaf_loss.insert(static_cast<double>(c.lost) /
                         static_cast<double>(packets * kLanes));
    if (c.received == 0)
        agg.unresolved_leaves += 1;
    else
        agg.qhat.insert(static_cast<double>(c.verified) /
                        static_cast<double>(c.received));
    for (std::size_t l = 0; l < kLanes; ++l) {
        if (c.rec_lane[l] == 0)
            agg.unresolved_instances += 1;
        else
            agg.qtrial.insert(static_cast<double>(c.ver_lane[l]) /
                              static_cast<double>(c.rec_lane[l]));
        // Unconditional authenticated throughput: verified over the packets
        // SENT to this instance (data packets only; the root is position 0
        // of every block). Defined even when nothing arrived.
        agg.qauth.insert(static_cast<double>(c.ver_lane[l]) /
                         static_cast<double>(packets - 1));
    }
}

/// Seed the 64 lane generators for one (link, block): lane l draws from
/// the stream derive_stream_seed(seed, {node, block, l}). A pure function
/// of the tuple — any shard that needs this link reproduces it exactly.
void seed_lanes(std::vector<Rng>& lanes, std::uint64_t seed,
                std::uint32_t node, std::uint32_t block) {
    lanes.clear();
    const std::uint64_t link_block = exec::derive_stream_seed(
        exec::derive_stream_seed(seed, node), block);
    for (std::uint64_t l = 0; l < kLanes; ++l)
        lanes.emplace_back(exec::derive_stream_seed(link_block, l));
}

/// Per-shard workspace; one per reduce chunk keeps the sweep allocation-free
/// across the shards that chunk owns.
struct ShardScratch {
    explicit ShardScratch(std::size_t packets)
        : packets(packets), lost(packets), alive(packets), reach(packets) {
        lanes.reserve(kLanes);
    }

    std::size_t packets;
    std::vector<Rng> lanes;
    std::vector<std::uint64_t> lost;   // sample_block output, send order
    std::vector<std::uint64_t> alive;  // vertex-indexed survival
    std::vector<std::uint64_t> reach;  // vertex-indexed verifiability
    /// Survival words by depth relative to the shard root. Preorder
    /// guarantees that when node v at relative depth r is visited, surv[r-1]
    /// still holds parent(v)'s words: everything visited since parent(v)
    /// lies inside its subtree, at relative depth >= r.
    std::vector<std::vector<std::uint64_t>> surv;
    /// Batched loss models by link-spec index, built on first use.
    std::vector<std::unique_ptr<BatchedLossModel>> models;
    /// Attribution scratch: the per-pattern loss frontier and the lossy
    /// ancestor chain (top-down) of the current shard.
    std::vector<std::uint64_t> frontier;
    std::vector<std::uint32_t> chain;
    std::uint64_t t_alive[kLanes];
    std::uint64_t t_reach[kLanes];
};

/// Sample link (parent(node) -> node) for this block into s.lost: bit l of
/// s.lost[k] is 1 iff lane l dropped the packet at send position k. The
/// model starts from reset — link state is block-scoped.
void sample_link(ShardScratch& s, const DistributionTree& tree,
                 std::uint32_t node, std::uint64_t seed, std::uint32_t block) {
    const std::size_t idx = tree.link_index(node);
    if (s.models.size() <= idx) s.models.resize(idx + 1);
    if (!s.models[idx]) s.models[idx] = tree.link(node).make_model()->make_batched();
    s.models[idx]->reset();
    seed_lanes(s.lanes, seed, node, block);
    s.models[idx]->sample_block(s.lanes.data(), s.lost.data(), s.packets);
}

/// Fold one leaf whose survival words (send order) are `sv`. When `attrib`
/// is set, every `sample_every`-th leaf (by node id) additionally walks
/// the 64 realized loss patterns for per-edge blame.
void accumulate_leaf(ShardScratch& s, const DependenceGraph& dg,
                     const CsrView& csr, const std::vector<std::uint64_t>& sv,
                     std::uint32_t leaf, const obs::BlameAttributor* attrib,
                     std::uint32_t sample_every, PopulationAggregate& agg) {
    const std::size_t n = s.packets;
    for (std::uint32_t k = 0; k < n; ++k)
        s.alive[dg.vertex_at_send_pos(k)] = sv[k];
    reachable_within_bitsliced(csr, DependenceGraph::root(), s.alive.data(),
                               s.reach.data());

    if (attrib != nullptr) {
        if (sample_every != 0 && leaf % sample_every == 0)
            attrib->attribute_lanes(s.alive.data(), s.reach.data(), s.frontier,
                                    agg.blame);
        else
            agg.blame.sampled_out += 1;
    }

    LeafCounts c;
    std::uint64_t prev_lost = 0;
    for (std::size_t k = 0; k < n; ++k) {
        const std::uint64_t lost = ~sv[k];
        c.lost += static_cast<std::uint64_t>(std::popcount(lost));
        c.runs += static_cast<std::uint64_t>(std::popcount(lost & ~prev_lost));
        prev_lost = lost;
    }
    for (std::size_t v = 1; v < n; ++v) {
        c.received += static_cast<std::uint64_t>(std::popcount(s.alive[v]));
        c.verified += static_cast<std::uint64_t>(std::popcount(s.reach[v]));
    }

    // Per-lane counts: transpose 64-vertex chunks of the vertex-indexed
    // words so each row collects ONE lane across the chunk's vertices, then
    // popcount rows. transpose64_antidiag sends row r bit l to row 63-l bit
    // 63-r, so transposed row R is lane 63-R. The root vertex (always in
    // the first chunk, reach forced to ~0) is zeroed out first — counts
    // cover v >= 1 only, matching the totals above.
    for (std::size_t base = 0; base < n; base += kLanes) {
        const std::size_t m = n - base < kLanes ? n - base : kLanes;
        for (std::size_t r = 0; r < m; ++r) {
            s.t_alive[r] = s.alive[base + r];
            s.t_reach[r] = s.reach[base + r];
        }
        for (std::size_t r = m; r < kLanes; ++r) s.t_alive[r] = s.t_reach[r] = 0;
        if (base == 0) s.t_alive[0] = s.t_reach[0] = 0;
        transpose64_antidiag(s.t_alive);
        transpose64_antidiag(s.t_reach);
        for (std::size_t r = 0; r < kLanes; ++r) {
            c.rec_lane[kLanes - 1 - r] +=
                static_cast<std::uint32_t>(std::popcount(s.t_alive[r]));
            c.ver_lane[kLanes - 1 - r] +=
                static_cast<std::uint32_t>(std::popcount(s.t_reach[r]));
        }
    }
    fold_leaf(agg, c, n);
}

/// `prev_root` is the preceding shard's root in preorder (0 for the first
/// shard): this shard owns — and is the only shard to blame — exactly the
/// ancestor links a with a > prev_root, i.e. those whose subtree it is the
/// first shard of. Descendant links are never shared, so always owned.
void simulate_shard(ShardScratch& s, const DistributionTree& tree,
                    std::uint32_t shard_root, const DependenceGraph& dg,
                    const CsrView& csr, std::uint64_t seed, std::uint32_t block,
                    const obs::BlameAttributor* attrib,
                    std::uint32_t attrib_sample_every, std::uint32_t prev_root,
                    PopulationAggregate& agg) {
    const std::size_t n = s.packets;
    const std::size_t d0 = tree.depth(shard_root);
    const std::size_t max_rel = tree.spec().depth() - d0;
    while (s.surv.size() <= max_rel)
        s.surv.emplace_back(std::vector<std::uint64_t>(n));
    const bool attribution = attrib != nullptr;

    // Root-path survival down to and including shard_root's own link.
    // Ancestor links are shared with sibling shards; each recomputes them
    // from the same (node, block, lane) streams, so the words agree. The
    // walk is TOP-DOWN (safe: every link's stream is a pure function of
    // (node, block, lane), and AND commutes) so that `anc` holds the
    // strictly-above survival when link a is folded in — exactly the
    // "no link above dropped it first" mask first-drop blame needs.
    std::vector<std::uint64_t>& anc = s.surv[0];
    std::fill(anc.begin(), anc.end(), ~0ULL);
    s.chain.clear();
    for (std::uint32_t a = shard_root; a != 0; a = tree.parent(a))
        if (!tree.link(a).lossless()) s.chain.push_back(a);
    for (std::size_t i = s.chain.size(); i-- > 0;) {
        const std::uint32_t a = s.chain[i];
        sample_link(s, tree, a, seed, block);
        if (attribution && a > prev_root) {
            std::uint64_t first_drops = 0;
            for (std::size_t k = 0; k < n; ++k)
                first_drops +=
                    static_cast<std::uint64_t>(std::popcount(anc[k] & s.lost[k]));
            if (first_drops)
                agg.link_blame[a] +=
                    first_drops * static_cast<std::uint64_t>(tree.subtree_leaves(a));
        }
        for (std::size_t k = 0; k < n; ++k) anc[k] &= ~s.lost[k];
    }
    if (tree.is_leaf(shard_root)) {
        accumulate_leaf(s, dg, csr, anc, shard_root, attrib, attrib_sample_every,
                        agg);
        return;
    }

    const std::uint32_t end = shard_root + tree.subtree_size(shard_root);
    for (std::uint32_t v = shard_root + 1; v < end; ++v) {
        const std::size_t rel = tree.depth(v) - d0;
        const std::vector<std::uint64_t>& up = s.surv[rel - 1];
        std::vector<std::uint64_t>& mine = s.surv[rel];
        if (tree.link(v).lossless()) {
            std::copy(up.begin(), up.end(), mine.begin());
        } else {
            sample_link(s, tree, v, seed, block);
            if (attribution) {
                std::uint64_t first_drops = 0;
                for (std::size_t k = 0; k < n; ++k)
                    first_drops +=
                        static_cast<std::uint64_t>(std::popcount(up[k] & s.lost[k]));
                if (first_drops)
                    agg.link_blame[v] += first_drops * static_cast<std::uint64_t>(
                                                           tree.subtree_leaves(v));
            }
            for (std::size_t k = 0; k < n; ++k) mine[k] = up[k] & ~s.lost[k];
        }
        if (tree.is_leaf(v))
            accumulate_leaf(s, dg, csr, mine, v, attrib, attrib_sample_every, agg);
    }
}

}  // namespace

PopulationEngine::PopulationEngine(const DistributionTree& tree,
                                   PopulationOptions options)
    : tree_(tree), options_(options) {
    MCAUTH_EXPECTS(options_.max_shard_leaves >= 1);
    MCAUTH_EXPECTS(tree_.leaf_count() >= 1);
    // Highest nodes whose subtree fits the shard budget, in preorder;
    // skipping a claimed subtree keeps shards disjoint and exhaustive.
    const std::uint32_t nodes = static_cast<std::uint32_t>(tree_.node_count());
    std::uint32_t v = 0;
    while (v < nodes) {
        if (tree_.subtree_leaves(v) <= options_.max_shard_leaves) {
            shard_roots_.push_back(v);
            v += tree_.subtree_size(v);
        } else {
            ++v;
        }
    }
}

PopulationAggregate PopulationEngine::simulate_block(const DependenceGraph& dg,
                                                     std::uint64_t seed,
                                                     std::uint32_t block) const {
    const std::size_t n = dg.packet_count();
    MCAUTH_EXPECTS(n >= 1);
    const CsrView csr(dg.graph());
    std::optional<obs::BlameAttributor> attrib;
    if (options_.attribution) attrib.emplace(dg.graph(), DependenceGraph::root());
    const obs::BlameAttributor* attrib_ptr = attrib ? &*attrib : nullptr;
    auto& pool = exec::ThreadPool::global();
    PopulationAggregate agg = pool.parallel_reduce<PopulationAggregate>(
        shard_roots_.size(), 1, PopulationAggregate(options_.sketch_bins),
        [&](std::size_t begin, std::size_t end) {
            PopulationAggregate partial(options_.sketch_bins);
            ShardScratch scratch(n);
            for (std::size_t i = begin; i < end; ++i)
                simulate_shard(scratch, tree_, shard_roots_[i], dg, csr, seed,
                               block, attrib_ptr, options_.attrib_sample_every,
                               i == 0 ? 0 : shard_roots_[i - 1], partial);
            return partial;
        },
        [](PopulationAggregate acc, PopulationAggregate part) {
            acc.merge(part);
            return acc;
        });
    MCAUTH_OBS_COUNT("pop.blocks");
    MCAUTH_OBS_COUNT_N("pop.leaves.simulated", agg.leaves);
    MCAUTH_OBS_COUNT_N("pop.transmissions.lost", agg.lost);
    MCAUTH_OBS_EVENT(kPopulationBlock, block, agg.leaves, 0,
                     agg.qtrial.quantile(0.01));
    return agg;
}

PopulationAggregate population_oracle(const DistributionTree& tree,
                                      const DependenceGraph& dg,
                                      std::uint64_t seed, std::uint32_t block,
                                      std::size_t sketch_bins, bool attribution,
                                      std::uint32_t attrib_sample_every) {
    const std::size_t n = dg.packet_count();
    MCAUTH_EXPECTS(n >= 1);
    std::vector<std::uint32_t> leaf_ids;
    leaf_ids.reserve(tree.leaf_count());
    for (std::uint32_t v = 0; v < tree.node_count(); ++v)
        if (tree.is_leaf(v)) leaf_ids.push_back(v);
    std::optional<obs::BlameAttributor> attrib;
    if (attribution) attrib.emplace(dg.graph(), DependenceGraph::root());

    auto& pool = exec::ThreadPool::global();
    return pool.parallel_reduce<PopulationAggregate>(
        leaf_ids.size(), 256, PopulationAggregate(sketch_bins),
        [&](std::size_t begin, std::size_t end) {
            PopulationAggregate partial(sketch_bins);
            VerifyScratch ws(n);
            std::vector<std::uint8_t> lost(n);
            std::vector<std::uint32_t> path;
            std::vector<std::unique_ptr<LossModel>> models;
            obs::BlameAttributor::Scratch as;
            if (attrib) as = attrib->make_scratch();
            for (std::size_t i = begin; i < end; ++i) {
                const std::uint32_t leaf = leaf_ids[i];
                const bool attrib_leaf =
                    attrib && attrib_sample_every != 0 &&
                    leaf % attrib_sample_every == 0;
                if (attrib && !attrib_leaf) partial.blame.sampled_out += 1;
                path.clear();
                models.clear();
                for (std::uint32_t a = leaf; a != 0; a = tree.parent(a)) {
                    if (tree.link(a).lossless()) continue;
                    path.push_back(a);
                    models.push_back(tree.link(a).make_model());
                }
                LeafCounts c;
                for (std::uint32_t l = 0; l < kLanes; ++l) {
                    std::fill(lost.begin(), lost.end(), 0);
                    // Top-down over the root path (path[] is collected leaf
                    // -> root) so "first link to drop packet k" is the link
                    // seen dropping k while k is still marked delivered.
                    for (std::size_t j = path.size(); j-- > 0;) {
                        models[j]->reset();
                        Rng rng(exec::derive_stream_seed(seed,
                                                         {path[j], block, l}));
                        for (std::size_t k = 0; k < n; ++k)
                            if (models[j]->lose_next(rng)) {
                                if (attribution && !lost[k])
                                    ++partial.link_blame[path[j]];
                                lost[k] = 1;
                            }
                    }
                    std::uint8_t prev = 0;
                    for (std::size_t k = 0; k < n; ++k) {
                        if (lost[k]) {
                            ++c.lost;
                            if (!prev) ++c.runs;
                        }
                        prev = lost[k];
                    }
                    for (std::uint32_t k = 0; k < n; ++k)
                        ws.received[dg.vertex_at_send_pos(k)] = !lost[k];
                    if (attrib_leaf) {
                        for (std::size_t v = 0; v < n; ++v)
                            as.received[v] = ws.received[v];
                        attrib->begin_pattern(as);
                        for (VertexId v = 1; v < static_cast<VertexId>(n); ++v)
                            attrib->attribute(v, /*signature_received=*/true, as,
                                              partial.blame);
                    }
                    dg.verifiable_into(ws);
                    std::uint32_t rec = 0;
                    std::uint32_t ver = 0;
                    for (std::size_t v = 1; v < n; ++v) {
                        rec += ws.received[v] ? 1 : 0;
                        ver += ws.verifiable[v] ? 1 : 0;
                    }
                    c.rec_lane[l] = rec;
                    c.ver_lane[l] = ver;
                    c.received += rec;
                    c.verified += ver;
                }
                fold_leaf(partial, c, n);
            }
            return partial;
        },
        [](PopulationAggregate acc, PopulationAggregate part) {
            acc.merge(part);
            return acc;
        });
}

adapt::FeedbackReport synthesize_feedback(const PopulationAggregate& agg,
                                          std::uint32_t block,
                                          std::uint32_t seq,
                                          std::uint32_t receiver_id) {
    adapt::FeedbackReport r;
    r.receiver_id = receiver_id;
    r.seq = seq;
    r.last_block = block;
    // Design for the unlucky tail, not the mean: the aggregator's fusion is
    // worst-case over receivers, and the 99th-percentile per-leaf loss is
    // the sketch's stand-in for "the lossiest fresh receiver".
    r.est_loss_rate = agg.leaf_loss.quantile(0.99);
    r.est_mean_burst = agg.mean_burst_length();
    r.set_window(agg.transmissions, agg.lost);
    return r;
}

}  // namespace mcauth::pop

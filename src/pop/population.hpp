// Sharded receiver-population engine: millions of receivers per block.
//
// The Monte-Carlo engines in core/ simulate ONE receiver at a time; a
// multicast group question ("what does the 1st-percentile receiver see?")
// needs the whole population. Simulating a million independent channels
// per-receiver is O(receivers x packets) — this engine gets the same
// answer in O(links x packets / 64) by exploiting the distribution tree
// (pop/tree.hpp):
//
//   * every tree link is sampled ONCE per block, bit-sliced — 64 trial
//     lanes per word via the batched loss models (net/loss.hpp);
//   * per-receiver loss is the AND of link survivals down the root path,
//     so one preorder sweep over the tree ANDs each link's word into its
//     parent's accumulated word — cost O(links), not O(receivers x depth);
//   * per-receiver state is replaced by mergeable aggregates: counting
//     quantile sketches (pop/sketch.hpp) of per-leaf q_hat, per-(leaf,
//     trial) instantaneous q, and per-leaf loss rate, plus integer totals.
//
// Determinism (DESIGN.md §7/§13): the variate stream of link v for block b
// lane l is seeded with exec::derive_stream_seed(seed, {v, b, l}) — a pure
// function of the addressing tuple. Shards therefore recompute their
// ancestor-path words independently and IDENTICALLY (no cross-shard
// communication), sketch merges are integer adds folded in shard order by
// parallel_reduce, and the result is bit-identical at every --threads.
// The naive per-receiver oracle below consumes the exact same streams, so
// engine and oracle aggregates satisfy PopulationAggregate::identical() —
// the acceptance gate in bench/perf_population.cpp.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "adapt/feedback.hpp"
#include "core/dependence_graph.hpp"
#include "obs/attrib.hpp"
#include "pop/sketch.hpp"
#include "pop/tree.hpp"

namespace mcauth::pop {

struct PopulationOptions {
    /// Largest subtree (in leaves) a single shard owns; shard roots are the
    /// highest nodes whose subtree fits. Smaller shards -> more parallelism
    /// and more redundant ancestor recomputation (depth words per shard).
    std::size_t max_shard_leaves = 4096;
    /// Grid resolution of the aggregate sketches.
    std::size_t sketch_bins = QuantileSketch::kDefaultBins;
    /// Causal attribution (obs/attrib.hpp): per-link first-drop blame over
    /// the whole population plus per-edge blame for every sampled leaf.
    /// Consumes no randomness — every q/loss statistic is identical with
    /// it on or off.
    bool attribution = false;
    /// 1-in-N leaf sampling for the per-edge attribution walk (the
    /// per-link blame is exact — it rides the existing link sweep).
    std::uint32_t attrib_sample_every = 64;
};

/// Everything the sender learns about the population in one block. Merge is
/// exactly associative and commutative (integer adds all the way down), so
/// shard grouping never changes a bit.
struct PopulationAggregate {
    explicit PopulationAggregate(std::size_t bins = QuantileSketch::kDefaultBins)
        : qhat(bins), qtrial(bins), qauth(bins), leaf_loss(bins) {}

    /// Per-leaf verified fraction, averaged over the 64 trial lanes.
    /// Concentrates by CLT — use qtrial for tail questions.
    QuantileSketch qhat;
    /// Per-(leaf, lane) instantaneous verified fraction OF RECEIVED packets
    /// — one sample per receiver per trial, the §3 conditional q realized.
    QuantileSketch qtrial;
    /// Per-(leaf, lane) verified fraction of all SENT data packets — the
    /// unconditional authenticated throughput. Conditioning on reception
    /// (qtrial) hides a shared burst once the design verifies every
    /// surviving packet; this is the distribution whose low quantiles
    /// separate correlated from i.i.d. loss at equal average rate.
    QuantileSketch qauth;
    /// Per-leaf observed loss rate over all packets and lanes.
    QuantileSketch leaf_loss;

    std::uint64_t leaves = 0;
    std::uint64_t unresolved_leaves = 0;  // leaves that received no packet
    std::uint64_t instances = 0;          // leaves x lanes
    std::uint64_t unresolved_instances = 0;
    std::uint64_t transmissions = 0;  // leaves x packets x lanes
    std::uint64_t lost = 0;           // dropped transmissions
    std::uint64_t loss_runs = 0;      // maximal runs of consecutive losses
    std::uint64_t received = 0;       // non-root receptions
    std::uint64_t verified = 0;       // non-root verifications

    /// Per-edge/per-vertex blame from the sampled leaves (empty unless
    /// PopulationOptions::attribution); edge indices follow the
    /// BlameAttributor built over dg.graph().
    obs::BlameCounts blame;
    /// Tree-link first-drop blame: link_blame[v] counts (leaf, packet,
    /// lane) losses whose FIRST dropping link on the root path was the
    /// link above node v. Exact (not sampled); keyed sparsely because a
    /// million-node tree would not fit dense per-shard partials.
    std::map<std::uint32_t, std::uint64_t> link_blame;

    void merge(const PopulationAggregate& other);
    /// Bit-exact equality — the engine-vs-oracle gate.
    bool identical(const PopulationAggregate& other) const;

    double mean_loss_rate() const noexcept {
        return transmissions ? static_cast<double>(lost) /
                                   static_cast<double>(transmissions)
                             : 0.0;
    }
    /// Mean length of a loss run (the GE burst estimate), >= 1.
    double mean_burst_length() const noexcept {
        if (loss_runs == 0) return 1.0;
        const double b =
            static_cast<double>(lost) / static_cast<double>(loss_runs);
        return b < 1.0 ? 1.0 : b;
    }
};

class PopulationEngine {
public:
    explicit PopulationEngine(const DistributionTree& tree,
                              PopulationOptions options = {});

    /// Simulate one block (64 trial lanes) of `dg` over the whole tree.
    /// Pure function of (tree, dg, seed, block) — identical at any thread
    /// count. Emits one kPopulationBlock event per call.
    PopulationAggregate simulate_block(const DependenceGraph& dg,
                                       std::uint64_t seed,
                                       std::uint32_t block) const;

    /// Subtree roots owning the shards, in preorder (= merge order).
    const std::vector<std::uint32_t>& shard_roots() const noexcept {
        return shard_roots_;
    }
    const DistributionTree& tree() const noexcept { return tree_; }
    const PopulationOptions& options() const noexcept { return options_; }

private:
    const DistributionTree& tree_;
    PopulationOptions options_;
    std::vector<std::uint32_t> shard_roots_;
};

/// Naive per-receiver reference: walks every leaf's root path with SCALAR
/// loss models and the scalar verifiability kernel, consuming the same
/// per-(link, block, lane) streams as the engine. O(receivers x depth x
/// packets) — the baseline the tentpole speedup is measured against, and
/// the oracle the engine must match bit-for-bit.
PopulationAggregate population_oracle(
    const DistributionTree& tree, const DependenceGraph& dg, std::uint64_t seed,
    std::uint32_t block, std::size_t sketch_bins = QuantileSketch::kDefaultBins,
    bool attribution = false, std::uint32_t attrib_sample_every = 64);

/// Fold a block aggregate into one synthetic FeedbackReport for the
/// adaptive controller (adapt/controller.hpp): est_loss_rate is the
/// 99th-percentile per-leaf loss (the controller designs for the unlucky
/// tail, matching FeedbackAggregator's worst-case fusion), est_mean_burst
/// the population burst estimate, and the loss window is the exact
/// transmission/loss totals rescaled to fit the u32 wire fields.
adapt::FeedbackReport synthesize_feedback(const PopulationAggregate& agg,
                                          std::uint32_t block,
                                          std::uint32_t seq,
                                          std::uint32_t receiver_id = 1);

}  // namespace mcauth::pop

#include "pop/tree.hpp"

#include <limits>

#include "util/check.hpp"

namespace mcauth::pop {

std::unique_ptr<LossModel> LinkSpec::make_model() const {
    if (kind == Kind::kBernoulli) return std::make_unique<BernoulliLoss>(rate);
    return std::make_unique<GilbertElliottLoss>(
        GilbertElliottLoss::from_rate_and_burst(rate, burst));
}

std::size_t TreeSpec::leaf_count() const noexcept {
    if (fanouts.empty()) return backbone_depth > 0 ? 1 : 0;
    std::size_t leaves = 1;
    for (std::size_t f : fanouts) leaves *= f;
    return leaves;
}

std::size_t TreeSpec::node_count() const noexcept {
    std::size_t nodes = 1 + backbone_depth;
    std::size_t width = 1;
    for (std::size_t f : fanouts) {
        width *= f;
        nodes += width;
    }
    return nodes;
}

namespace {

void validate_spec(const TreeSpec& spec) {
    MCAUTH_EXPECTS(spec.fanout_links.size() == spec.fanouts.size());
    for (std::size_t f : spec.fanouts) MCAUTH_EXPECTS(f >= 1);
    MCAUTH_EXPECTS(spec.depth() >= 1);    // at least one link => one receiver
    MCAUTH_EXPECTS(spec.depth() <= 200);  // per-node depth is a uint8_t
    MCAUTH_EXPECTS(spec.node_count() <=
                   std::numeric_limits<std::uint32_t>::max());
    const auto check_link = [](const LinkSpec& link) {
        MCAUTH_EXPECTS(link.rate >= 0.0 && link.rate < 1.0);
        if (link.kind == LinkSpec::Kind::kGilbertElliott) {
            MCAUTH_EXPECTS(link.rate > 0.0);  // from_rate_and_burst domain
            MCAUTH_EXPECTS(link.burst >= 1.0);
        }
    };
    if (spec.backbone_depth > 0) check_link(spec.backbone_link);
    for (const LinkSpec& link : spec.fanout_links) check_link(link);
}

}  // namespace

DistributionTree::DistributionTree(TreeSpec spec) : spec_(std::move(spec)) {
    validate_spec(spec_);
    const std::size_t nodes = spec_.node_count();
    parent_.reserve(nodes);
    depth_.reserve(nodes);

    // DFS preorder generation: children of a node at depth d are one
    // backbone child (d < backbone_depth) or fanouts[d - backbone_depth]
    // fan-out children. An explicit stack of (parent, depth) pending-child
    // records keeps the walk allocation-light; children are expanded
    // immediately after their parent, which is what yields preorder.
    struct Pending {
        std::uint32_t parent;
        std::uint8_t child_depth;
        std::uint32_t remaining;  // children of `parent` still to emit
    };
    std::vector<Pending> stack;
    const auto children_of_depth = [&](std::size_t d) -> std::uint32_t {
        if (d < spec_.backbone_depth) return 1;
        const std::size_t j = d - spec_.backbone_depth;
        return j < spec_.fanouts.size() ? static_cast<std::uint32_t>(spec_.fanouts[j])
                                        : 0;
    };

    parent_.push_back(0);  // root is its own parent
    depth_.push_back(0);
    if (children_of_depth(0) > 0) stack.push_back({0, 1, children_of_depth(0)});
    while (!stack.empty()) {
        Pending& top = stack.back();
        const std::uint32_t v = static_cast<std::uint32_t>(parent_.size());
        parent_.push_back(top.parent);
        depth_.push_back(top.child_depth);
        const std::uint8_t child_depth = top.child_depth;
        if (--top.remaining == 0) stack.pop_back();
        const std::uint32_t kids = children_of_depth(child_depth);
        if (kids > 0)
            stack.push_back({v, static_cast<std::uint8_t>(child_depth + 1), kids});
    }
    MCAUTH_ENSURES(parent_.size() == nodes);

    // Reverse pass: preorder guarantees parent(v) < v, so accumulating from
    // the back finalizes every subtree before its parent reads it.
    subtree_size_.assign(nodes, 1);
    subtree_leaves_.assign(nodes, 0);
    for (std::size_t v = nodes; v-- > 1;) {
        if (subtree_leaves_[v] == 0) subtree_leaves_[v] = 1;  // leaf
        subtree_size_[parent_[v]] += subtree_size_[v];
        subtree_leaves_[parent_[v]] += subtree_leaves_[v];
    }
    if (nodes == 1) subtree_leaves_[0] = 0;  // a bare root has no receivers
    leaf_count_ = subtree_leaves_[0];
    MCAUTH_ENSURES(leaf_count_ == spec_.leaf_count());

    specs_.push_back(spec_.backbone_link);
    for (const LinkSpec& link : spec_.fanout_links) specs_.push_back(link);
}

double DistributionTree::leaf_loss_rate() const noexcept {
    double survive = 1.0;
    for (std::size_t d = 0; d < spec_.backbone_depth; ++d)
        survive *= 1.0 - spec_.backbone_link.rate;
    for (const LinkSpec& link : spec_.fanout_links) survive *= 1.0 - link.rate;
    return 1.0 - survive;
}

}  // namespace mcauth::pop

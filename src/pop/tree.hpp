// Explicit multicast distribution tree: the topology-correlated channel.
//
// The paper's channel is per-receiver i.i.d.; a real multicast group hangs
// millions of receivers off a shared distribution tree, where one lossy
// backbone link drops the SAME packets for its entire subtree. This header
// models that tree explicitly: interior nodes are routers, leaves are
// receivers, and every edge (parent -> child) carries its own loss process
// (Bernoulli or Gilbert-Elliott). A packet reaches a leaf iff it survives
// EVERY link on the root path — per-receiver loss is the AND of link
// survivals, which is what lets one link sample serve a whole subtree
// (pop/population.hpp).
//
// Layout: nodes are stored in DFS preorder (node 0 = root/sender), so
//   * parent(v) < v for every non-root v, and
//   * the subtree of v is the contiguous index range
//     [v, v + subtree_size(v)) — a shard is a range scan, and one pass in
//     index order visits every parent before its children (the AND-down-
//     the-tree sweep needs exactly that).
//
// Trees are specified level-structured (TreeSpec): a backbone chain of
// `backbone_depth` links under the root, then fan-out levels with one
// branching factor and one LinkSpec per level. All leaves sit at the same
// depth with the same link-spec path, so the stationary end-to-end loss
// rate is a single scalar (leaf_loss_rate) — the quantity the
// "equal average loss" ablation arms are matched on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/loss.hpp"

namespace mcauth::pop {

/// Loss process of one tree edge.
struct LinkSpec {
    enum class Kind : std::uint8_t { kBernoulli, kGilbertElliott };

    Kind kind = Kind::kBernoulli;
    double rate = 0.0;   // stationary loss rate
    double burst = 1.0;  // GE mean burst length (ignored for Bernoulli)

    static LinkSpec bernoulli(double rate) {
        return LinkSpec{Kind::kBernoulli, rate, 1.0};
    }
    static LinkSpec gilbert_elliott(double rate, double burst) {
        return LinkSpec{Kind::kGilbertElliott, rate, burst};
    }

    /// A link that can never drop a packet; its sampler consumes no
    /// variates (Rng::bernoulli's p <= 0 short-circuit), so the engine may
    /// skip it entirely without perturbing any stream.
    bool lossless() const noexcept {
        return kind == Kind::kBernoulli && rate <= 0.0;
    }

    /// Fresh loss model in its reset state.
    std::unique_ptr<LossModel> make_model() const;
};

/// Level-structured tree description: root -> backbone chain -> fan-out
/// levels. fanout_links must parallel fanouts (one spec per level).
struct TreeSpec {
    std::size_t backbone_depth = 0;
    LinkSpec backbone_link;
    std::vector<std::size_t> fanouts;
    std::vector<LinkSpec> fanout_links;

    std::size_t depth() const noexcept { return backbone_depth + fanouts.size(); }
    std::size_t leaf_count() const noexcept;
    std::size_t node_count() const noexcept;
};

/// Immutable DFS-preorder tree built from a TreeSpec.
class DistributionTree {
public:
    explicit DistributionTree(TreeSpec spec);

    const TreeSpec& spec() const noexcept { return spec_; }
    std::size_t node_count() const noexcept { return parent_.size(); }
    std::size_t leaf_count() const noexcept { return leaf_count_; }

    std::uint32_t parent(std::uint32_t v) const noexcept { return parent_[v]; }
    /// Distance from the root (root = 0); also selects the link spec.
    std::uint8_t depth(std::uint32_t v) const noexcept { return depth_[v]; }
    /// Nodes in v's subtree including v; the subtree is [v, v + size).
    std::uint32_t subtree_size(std::uint32_t v) const noexcept {
        return subtree_size_[v];
    }
    std::uint32_t subtree_leaves(std::uint32_t v) const noexcept {
        return subtree_leaves_[v];
    }
    bool is_leaf(std::uint32_t v) const noexcept { return subtree_size_[v] == 1; }

    /// Index into specs() of the link (parent(v) -> v); v must not be root.
    std::uint8_t link_index(std::uint32_t v) const noexcept {
        const std::uint8_t d = depth_[v];
        return d <= spec_.backbone_depth
                   ? 0
                   : static_cast<std::uint8_t>(d - spec_.backbone_depth);
    }
    const LinkSpec& link(std::uint32_t v) const noexcept {
        return specs_[link_index(v)];
    }
    /// Distinct link specs by depth class: [0] = backbone, [1..] = fan-out
    /// levels. specs()[0] is present (unused) even when backbone_depth == 0.
    const std::vector<LinkSpec>& specs() const noexcept { return specs_; }

    /// Stationary end-to-end loss rate of any leaf's root path:
    /// 1 - prod(1 - rate_link). All leaves are exchangeable by construction.
    double leaf_loss_rate() const noexcept;

private:
    TreeSpec spec_;
    std::vector<LinkSpec> specs_;
    std::vector<std::uint32_t> parent_;
    std::vector<std::uint8_t> depth_;
    std::vector<std::uint32_t> subtree_size_;
    std::vector<std::uint32_t> subtree_leaves_;
    std::size_t leaf_count_ = 0;
};

}  // namespace mcauth::pop

// Fixed-size mergeable quantile sketch for population aggregates.
//
// The population engine (pop/population.hpp) replaces per-receiver state
// with aggregates that must merge across shards in ANY grouping without
// changing a single bit — the determinism contract (DESIGN.md §7/§13) says
// results are identical at every --threads, and the engine-vs-oracle gate
// in perf_population compares aggregates for exact equality.
//
// A counting histogram over a uniform grid gives exactly that: insert
// rounds the value to the nearest of `bins` grid points spanning [lo, hi]
// and bumps an integer counter, so
//
//   * merge is element-wise counter addition — exactly associative AND
//     commutative (integer adds), so shard order and grouping are free;
//   * a quantile query returns the grid value at rank ceil(q * count) —
//     a pure function of the counters;
//   * the value error of any quantile is at most half the grid step
//     (rounding to nearest is monotone, so rank order is preserved up to
//     ties — the returned grid point is the rounded image of a value whose
//     rank brackets the requested one). With the default 8193 bins over
//     [0,1] that is ~6.1e-5 — far below Monte-Carlo noise at 64 trials.
//
// min/max are tracked exactly (order-insensitive), and everything is plain
// integer/IEEE arithmetic, so two sketches built from the same multiset of
// doubles are bit-identical regardless of insertion or merge order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mcauth::pop {

class QuantileSketch {
public:
    /// 2^13 + 1 grid points over [0,1]: step ~1.22e-4, value error
    /// <= 6.1e-5, 64 KiB of counters.
    static constexpr std::size_t kDefaultBins = 8193;

    explicit QuantileSketch(std::size_t bins = kDefaultBins, double lo = 0.0,
                            double hi = 1.0);

    /// Round `v` (clamped to [lo, hi]) to the nearest grid point and count it.
    void insert(double v) noexcept;

    /// Element-wise counter addition. Geometry (bins, lo, hi) must match.
    void merge(const QuantileSketch& other);

    /// The grid value at rank ceil(q * count) (q clamped to [0,1]; rank
    /// clamped to [1, count]). Returns lo() when the sketch is empty.
    double quantile(double q) const noexcept;

    std::uint64_t count() const noexcept { return count_; }
    bool empty() const noexcept { return count_ == 0; }

    /// Exact extremes of the inserted values (not grid-rounded); lo()/hi()
    /// when empty.
    double min() const noexcept { return count_ ? min_ : lo_; }
    double max() const noexcept { return count_ ? max_ : hi_; }

    std::size_t bins() const noexcept { return counts_.size(); }
    double lo() const noexcept { return lo_; }
    double hi() const noexcept { return hi_; }
    /// Grid step between adjacent bins; the quantile value error bound is
    /// step()/2.
    double step() const noexcept { return step_; }
    double bin_value(std::size_t i) const noexcept {
        return lo_ + static_cast<double>(i) * step_;
    }
    std::uint64_t bin_count(std::size_t i) const noexcept { return counts_[i]; }

    /// Bit-exact equality: same geometry, same counters, same extremes.
    /// The engine-vs-oracle acceptance gate.
    bool identical(const QuantileSketch& other) const noexcept;

private:
    double lo_;
    double hi_;
    double step_;
    std::uint64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::vector<std::uint64_t> counts_;
};

}  // namespace mcauth::pop

#include "auth/stream_auth.hpp"

#include "util/check.hpp"

namespace mcauth {

// ------------------------------------------------- StreamingAuthenticator

StreamingAuthenticator::StreamingAuthenticator(HashChainConfig config, Signer& signer,
                                               StreamingOptions options)
    : config_(std::move(config)), signer_(signer), options_(options) {
    MCAUTH_EXPECTS(config_.topology != nullptr);
    MCAUTH_EXPECTS(options_.min_block >= 2);
    MCAUTH_EXPECTS(options_.max_block >= options_.min_block);
    MCAUTH_EXPECTS(options_.max_latency > 0.0);
}

std::vector<AuthPacket> StreamingAuthenticator::cut_block() {
    HashChainConfig block_config = config_;
    block_config.block_size = pending_.size();
    HashChainSender sender(block_config, signer_);
    auto packets = sender.make_block(next_block_++, pending_);
    pending_.clear();
    return packets;
}

std::vector<AuthPacket> StreamingAuthenticator::push(std::vector<std::uint8_t> payload,
                                                     double now) {
    if (pending_.empty()) oldest_pending_time_ = now;
    pending_.push_back(std::move(payload));
    const bool size_cut = pending_.size() >= options_.max_block;
    const bool deadline_cut = pending_.size() >= options_.min_block &&
                              now - oldest_pending_time_ >= options_.max_latency;
    if (size_cut || deadline_cut) return cut_block();
    return {};
}

void StreamingAuthenticator::set_topology(std::function<DependenceGraph(std::size_t)> topology) {
    MCAUTH_EXPECTS(topology != nullptr);
    config_.topology = std::move(topology);
}

std::vector<AuthPacket> StreamingAuthenticator::flush(double now, bool force) {
    (void)now;
    if (pending_.empty()) return {};
    if (pending_.size() < options_.min_block) {
        if (!force) return {};
        // Too small to chain: pad by duplicating the final payload into a
        // minimal 2-packet block (the duplicate is detectable by the app
        // layer via equal payloads; the alternative - an unsigned tail -
        // is worse).
        while (pending_.size() < options_.min_block) pending_.push_back(pending_.back());
    }
    return cut_block();
}

// ------------------------------------------------------ StreamingVerifier

namespace {

/// unique_ptr-owning adapter over a shared verifier, so one public key can
/// back many per-geometry receivers.
class SharedVerifier final : public SignatureVerifier {
public:
    explicit SharedVerifier(std::shared_ptr<SignatureVerifier> inner)
        : inner_(std::move(inner)) {}

    bool verify(std::span<const std::uint8_t> message,
                std::span<const std::uint8_t> signature) const override {
        return inner_->verify(message, signature);
    }

private:
    std::shared_ptr<SignatureVerifier> inner_;
};

}  // namespace

StreamingVerifier::StreamingVerifier(HashChainConfig config,
                                     std::unique_ptr<SignatureVerifier> verifier)
    : config_(std::move(config)), verifier_(std::move(verifier)) {
    MCAUTH_EXPECTS(config_.topology != nullptr);
    MCAUTH_EXPECTS(verifier_ != nullptr);
}

HashChainReceiver& StreamingVerifier::receiver_for(std::size_t block_size) {
    auto it = by_size_.find(block_size);
    if (it == by_size_.end()) {
        HashChainConfig sized = config_;
        sized.block_size = block_size;
        it = by_size_
                 .emplace(block_size,
                          std::make_unique<HashChainReceiver>(
                              sized, std::make_unique<SharedVerifier>(verifier_)))
                 .first;
    }
    return *it->second;
}

std::vector<VerifyEvent> StreamingVerifier::on_packet(const AuthPacket& packet) {
    // Sanity-bound the declared geometry before building a graph for it: an
    // attacker-declared block_size of 2^32 must not allocate gigabytes. The
    // cap is generous; honest senders cut far smaller blocks.
    constexpr std::size_t kMaxGeometry = 1 << 16;
    if (packet.block_size < 2 || packet.block_size > kMaxGeometry) return {};
    if (packet.index >= packet.block_size) return {};
    return receiver_for(packet.block_size).on_packet(packet);
}

std::vector<VerifyEvent> StreamingVerifier::finish_block(std::uint32_t block_id) {
    std::vector<VerifyEvent> events;
    for (auto& [size, receiver] : by_size_) {
        auto partial = receiver->finish_block(block_id);
        events.insert(events.end(), partial.begin(), partial.end());
    }
    return events;
}

std::vector<VerifyEvent> StreamingVerifier::finish_all() {
    std::vector<VerifyEvent> events;
    for (auto& [size, receiver] : by_size_) {
        auto partial = receiver->finish_all();
        events.insert(events.end(), partial.begin(), partial.end());
    }
    return events;
}

std::size_t StreamingVerifier::buffered_packets() const {
    std::size_t total = 0;
    for (const auto& [size, receiver] : by_size_) total += receiver->buffered_packets();
    return total;
}

}  // namespace mcauth

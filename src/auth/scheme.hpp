// The unified scheme surface: every multicast-authentication codec in the
// repo — hash-chained signature amortization (Rohatgi / EMSS / AC / §5
// designs), the Wong–Lam authentication tree, the sign-each baseline and
// TESLA — behind one polymorphic SchemeSender / SchemeReceiver pair, plus a
// name-keyed SchemeFactory registry.
//
// The interface deliberately exposes *driving traits* alongside the codec
// calls: the schemes differ not only in how packets are built and verified
// but in how a stream of them must be driven (does the signature packet get
// replicated? are verdicts immediate or do they cascade out of arrival
// order? is the q-tally per block index or per stream index?). sim's
// run_scheme_sim consumes the traits so ONE driver replaces the four
// parallel per-scheme loops it grew historically — and the adaptive loop
// (adapt/) gets every scheme for free.
//
// The concrete codec classes (HashChainSender, TreeSender, TeslaSender,
// SignEachSender and their receivers) stay public: the interface wraps,
// it does not replace. The legacy run_*_sim entry points remain as thin
// adapters over the generic driver for one release.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "auth/hash_chain_scheme.hpp"
#include "auth/sign_each_scheme.hpp"
#include "auth/tesla_scheme.hpp"
#include "auth/tree_scheme.hpp"
#include "crypto/signature.hpp"
#include "util/rng.hpp"

namespace mcauth {

/// How a stream driver must pace, replicate and deliver a scheme's packets.
/// These are *reproducibility contracts*, not tuning knobs: the pacing enum
/// in particular pins the exact floating-point arithmetic of send-time
/// generation so the unified driver is bit-identical to the historical
/// per-scheme loops.
struct SchemeTraits {
    enum class Delivery : std::uint8_t {
        /// Collect one block's survivors, sort by arrival time, then feed
        /// the receiver (verification cascades out of send order).
        kBlockArrivalOrder,
        /// Sort survivors of the WHOLE stream once at the end (TESLA: key
        /// disclosure crosses block boundaries, so must delivery).
        kStreamArrivalOrder,
        /// Feed survivors immediately in send order (per-packet-verifiable
        /// schemes: arrival order cannot matter).
        kSendOrder,
    };
    enum class Pacing : std::uint8_t {
        /// clock += t per transmission, continuing across blocks; block
        /// boundaries jump by one multiply (the hash-chain sim's layout).
        kBlockIncremental,
        /// One clock, += t per transmission, never reset (TESLA/sign-each).
        kContinuousIncremental,
        /// send = block_start + i * t; block_start += n * t (tree sim).
        kBlockMultiplicative,
    };

    Delivery delivery = Delivery::kBlockArrivalOrder;
    Pacing pacing = Pacing::kBlockIncremental;
    /// Draw the whole block's payloads before encoding (block codecs), vs
    /// drawing payload and transmitting packet-by-packet (stream codecs).
    /// Also selects the overhead accounting: per-block mean-of-means vs
    /// per-packet running sum.
    bool payloads_upfront = true;
    /// Close each block at the receiver after its transmission window.
    bool per_block_finish = true;
    /// q tally indexed over the whole stream (TESLA's global packet index)
    /// instead of the within-block transmission index.
    bool stream_tally = false;
    /// Initial send clock, in units of t_transmit (TESLA starts at 1).
    double clock_start_slots = 0.0;
    /// Replicate the kSignature packet sim.sign_copies times (the paper's
    /// P_sign delivery assumption). Off for schemes where every packet
    /// carries a signature (sign-each) or none does (TESLA data packets).
    bool replicate_signature = false;
};

class SchemeSender {
public:
    virtual ~SchemeSender() = default;

    virtual const SchemeTraits& traits() const noexcept = 0;
    /// Stable display/metrics name ("emss(m=2,d=1)", "tesla", ...).
    virtual std::string name() const = 0;

    /// Packets that must reach every receiver reliably before the stream
    /// (TESLA's signed bootstrap). Empty for most schemes.
    virtual std::vector<AuthPacket> preamble() { return {}; }

    /// Block-at-once encoding; required when traits().payloads_upfront.
    virtual std::vector<AuthPacket> make_block(
        std::uint32_t block_id, const std::vector<std::vector<std::uint8_t>>& payloads);

    /// Per-packet encoding at a known send time; required when
    /// !traits().payloads_upfront.
    virtual AuthPacket make_packet(std::uint32_t block_id, std::uint32_t index,
                                   std::vector<std::uint8_t> payload, double send_time);
};

class SchemeReceiver {
public:
    virtual ~SchemeReceiver() = default;

    /// Deliver a preamble packet; false = invalid (driver aborts the run).
    virtual bool on_preamble(const AuthPacket& packet) {
        (void)packet;
        return true;
    }

    /// Deliver one surviving packet at its arrival time. Returns every
    /// verdict newly resolved by this arrival.
    virtual std::vector<VerifyEvent> on_packet(const AuthPacket& packet,
                                               double arrival_time) = 0;

    /// Close one block (traits().per_block_finish schemes).
    virtual std::vector<VerifyEvent> finish_block(std::uint32_t block_id) {
        (void)block_id;
        return {};
    }

    /// End of stream: flush everything still pending.
    virtual std::vector<VerifyEvent> finish_all() { return {}; }

    /// Receiver buffer gauge (0 for stateless schemes).
    virtual std::size_t buffered_packets() const { return 0; }
};

// ---------------------------------------------------------------- adapters

/// Any dependence-graph scheme: wraps HashChainSender/HashChainReceiver.
class HashChainSchemeSender final : public SchemeSender {
public:
    HashChainSchemeSender(HashChainConfig config, Signer& signer);

    const SchemeTraits& traits() const noexcept override { return traits_; }
    std::string name() const override { return sender_.config().name; }
    std::vector<AuthPacket> make_block(
        std::uint32_t block_id,
        const std::vector<std::vector<std::uint8_t>>& payloads) override;

    const HashChainSender& inner() const noexcept { return sender_; }

private:
    HashChainSender sender_;
    SchemeTraits traits_;
};

class HashChainSchemeReceiver final : public SchemeReceiver {
public:
    HashChainSchemeReceiver(HashChainConfig config,
                            std::unique_ptr<SignatureVerifier> verifier);

    std::vector<VerifyEvent> on_packet(const AuthPacket& packet,
                                       double arrival_time) override;
    std::vector<VerifyEvent> finish_block(std::uint32_t block_id) override;
    std::vector<VerifyEvent> finish_all() override;
    std::size_t buffered_packets() const override;

private:
    HashChainReceiver receiver_;
};

/// Wong–Lam authentication tree.
class TreeSchemeSender final : public SchemeSender {
public:
    TreeSchemeSender(TreeSchemeConfig config, Signer& signer);

    const SchemeTraits& traits() const noexcept override { return traits_; }
    std::string name() const override { return "tree"; }
    std::vector<AuthPacket> make_block(
        std::uint32_t block_id,
        const std::vector<std::vector<std::uint8_t>>& payloads) override;

private:
    TreeSender sender_;
    SchemeTraits traits_;
};

class TreeSchemeReceiver final : public SchemeReceiver {
public:
    TreeSchemeReceiver(TreeSchemeConfig config,
                       std::unique_ptr<SignatureVerifier> verifier);

    std::vector<VerifyEvent> on_packet(const AuthPacket& packet,
                                       double arrival_time) override;

private:
    TreeReceiver receiver_;
};

/// Sign-each baseline.
class SignEachSchemeSender final : public SchemeSender {
public:
    explicit SignEachSchemeSender(Signer& signer);

    const SchemeTraits& traits() const noexcept override { return traits_; }
    std::string name() const override { return "sign-each"; }
    AuthPacket make_packet(std::uint32_t block_id, std::uint32_t index,
                           std::vector<std::uint8_t> payload, double send_time) override;

private:
    SignEachSender sender_;
    SchemeTraits traits_;
};

class SignEachSchemeReceiver final : public SchemeReceiver {
public:
    explicit SignEachSchemeReceiver(std::unique_ptr<SignatureVerifier> verifier);

    std::vector<VerifyEvent> on_packet(const AuthPacket& packet,
                                       double arrival_time) override;

private:
    SignEachReceiver receiver_;
};

/// TESLA. Construction consumes variates from `rng` (key-chain seed), so
/// callers that need reproducibility construct the sender before drawing
/// payloads from the same generator — exactly what run_tesla_sim did.
class TeslaSchemeSender final : public SchemeSender {
public:
    TeslaSchemeSender(TeslaConfig config, Signer& signer, Rng& rng, double start_time);

    const SchemeTraits& traits() const noexcept override { return traits_; }
    std::string name() const override { return "tesla"; }
    std::vector<AuthPacket> preamble() override { return {sender_.bootstrap()}; }
    AuthPacket make_packet(std::uint32_t block_id, std::uint32_t index,
                           std::vector<std::uint8_t> payload, double send_time) override;

private:
    TeslaSender sender_;
    SchemeTraits traits_;
};

class TeslaSchemeReceiver final : public SchemeReceiver {
public:
    TeslaSchemeReceiver(TeslaConfig config, std::unique_ptr<SignatureVerifier> verifier,
                        double max_clock_skew);

    bool on_preamble(const AuthPacket& packet) override;
    std::vector<VerifyEvent> on_packet(const AuthPacket& packet,
                                       double arrival_time) override;
    std::vector<VerifyEvent> finish_all() override;
    std::size_t buffered_packets() const override;

private:
    TeslaReceiver receiver_;
};

// ----------------------------------------------------------------- factory

/// A scheme instantiation request: registry key + the parameters the
/// builder understands (numeric, by name — "m", "d", "a", "b", "arity",
/// "interval", "lag", "chain", "skew"...). Unknown params are ignored by
/// builders; missing ones take the registered defaults.
struct SchemeSpec {
    std::string kind;
    std::size_t block_size = 64;
    std::size_t hash_bytes = 16;
    std::map<std::string, double> params;

    double param(const std::string& key, double fallback) const {
        const auto it = params.find(key);
        return it == params.end() ? fallback : it->second;
    }
};

struct SchemePair {
    std::unique_ptr<SchemeSender> sender;
    std::unique_ptr<SchemeReceiver> receiver;
};

/// Name-keyed scheme registry. Built-in kinds: "rohatgi", "emss", "ac",
/// "offsets" is intentionally absent (offset sets are not nameable by two
/// doubles), "tree", "sign-each", "tesla". register_scheme() lets
/// out-of-tree schemes join every factory-driven harness (sim, benches,
/// conformance tests) without touching them.
class SchemeFactory {
public:
    /// Builds a ready-to-stream sender/receiver pair. `rng` is for schemes
    /// whose construction draws randomness (TESLA's key chain).
    using Builder = std::function<SchemePair(const SchemeSpec&, Signer&, Rng&)>;
    /// Analytic q_min predictor at block size n, i.i.d. loss rate p — the
    /// recurrence/closed-form column of the paper's figures (fig08 iterates
    /// the registry instead of switching over an enum).
    using Predictor = std::function<double(const SchemeSpec&, std::size_t, double)>;

    /// The process-wide registry, with built-ins registered on first use.
    static SchemeFactory& instance();

    void register_scheme(std::string kind, Builder builder, Predictor predictor = {});
    bool has(const std::string& kind) const;
    /// Registered kinds in registration order (built-ins first).
    std::vector<std::string> kinds() const;

    /// Throws std::invalid_argument for unknown kinds.
    SchemePair create(const SchemeSpec& spec, Signer& signer, Rng& rng) const;
    /// NaN when the kind has no registered predictor.
    double predicted_q_min(const SchemeSpec& spec, std::size_t n, double p) const;

private:
    struct Entry {
        std::string kind;
        Builder builder;
        Predictor predictor;
    };
    const Entry& entry(const std::string& kind) const;

    std::vector<Entry> entries_;
};

}  // namespace mcauth

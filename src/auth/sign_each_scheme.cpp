#include "auth/sign_each_scheme.hpp"

#include "util/check.hpp"

namespace mcauth {

AuthPacket SignEachSender::make_packet(std::uint32_t block_id, std::uint32_t index,
                                       std::vector<std::uint8_t> payload) {
    AuthPacket pkt;
    pkt.block_id = block_id;
    pkt.index = index;
    pkt.kind = PacketKind::kSignature;
    pkt.payload = std::move(payload);
    pkt.signature = signer_.sign(pkt.authenticated_bytes());
    return pkt;
}

SignEachReceiver::SignEachReceiver(std::unique_ptr<SignatureVerifier> verifier)
    : verifier_(std::move(verifier)) {
    MCAUTH_EXPECTS(verifier_ != nullptr);
}

VerifyEvent SignEachReceiver::on_packet(const AuthPacket& packet) const {
    const bool ok = verifier_->verify(packet.authenticated_bytes(), packet.signature);
    return {packet.block_id, packet.index,
            ok ? VerifyStatus::kAuthenticated : VerifyStatus::kRejected};
}

}  // namespace mcauth

#include "auth/sign_each_scheme.hpp"

#include "util/check.hpp"

namespace mcauth {

AuthPacket SignEachSender::make_packet(std::uint32_t block_id, std::uint32_t index,
                                       std::vector<std::uint8_t> payload) {
    AuthPacket pkt;
    pkt.block_id = block_id;
    pkt.index = index;
    pkt.kind = PacketKind::kSignature;
    pkt.payload = std::move(payload);
    pkt.signature = signer_.sign(pkt.authenticated_bytes());
    return pkt;
}

SignEachReceiver::SignEachReceiver(std::unique_ptr<SignatureVerifier> verifier)
    : verifier_(std::move(verifier)) {
    MCAUTH_EXPECTS(verifier_ != nullptr);
}

VerifyEvent SignEachReceiver::on_packet(const AuthPacket& packet) const {
    const bool ok = verifier_->verify(packet.authenticated_bytes(), packet.signature);
    return {packet.block_id, packet.index,
            ok ? VerifyStatus::kAuthenticated : VerifyStatus::kRejected};
}

std::vector<VerifyEvent> SignEachReceiver::on_block(
    std::span<const AuthPacket> packets) const {
    arena_.reset();
    std::vector<std::span<const std::uint8_t>> msgs;
    std::vector<std::span<const std::uint8_t>> sigs;
    msgs.reserve(packets.size());
    sigs.reserve(packets.size());
    for (const AuthPacket& pkt : packets) {
        msgs.push_back(pkt.authenticated_bytes_into(arena_));
        sigs.emplace_back(pkt.signature.data(), pkt.signature.size());
    }
    const std::vector<bool> ok = verifier_->verify_batch(msgs, sigs);

    std::vector<VerifyEvent> events;
    events.reserve(packets.size());
    for (std::size_t i = 0; i < packets.size(); ++i)
        events.push_back({packets[i].block_id, packets[i].index,
                          ok[i] ? VerifyStatus::kAuthenticated : VerifyStatus::kRejected});
    return events;
}

}  // namespace mcauth

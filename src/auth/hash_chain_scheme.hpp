// The generic hash-chained signature codec.
//
// Every signature-amortization scheme the paper analyzes — Rohatgi's chain,
// EMSS, the augmented chain, plus the §5 constructions — differs ONLY in its
// dependence-graph topology. This codec is therefore parameterized by a
// topology factory and implements the rest once:
//
//   sender:   walk the dependence-graph in reverse topological order,
//             embedding each packet's (truncated) digest into its carrier
//             packets, then sign the root packet;
//   receiver: event-driven authentication propagation — a packet is
//             authenticated the moment a trusted digest for it is known and
//             matches, and every digest it carries then becomes trusted,
//             cascading down the graph. Works under loss, reordering and
//             duplication, and detects tampering (digest/signature
//             mismatch).
//
// This is the executable counterpart of Definition 1: the set of packets a
// receiver authenticates for a given loss pattern equals
// DependenceGraph::verifiable_given(pattern) — a property the integration
// tests assert and the end-to-end benches exploit.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "auth/packet.hpp"
#include "core/dependence_graph.hpp"
#include "crypto/signature.hpp"

namespace mcauth {

enum class VerifyStatus : std::uint8_t {
    kAuthenticated,  // matched a trusted digest (or a valid signature)
    kRejected,       // digest or signature mismatch: tampered or forged
    kUnverifiable,   // block closed with no surviving verification path
};

struct VerifyEvent {
    std::uint32_t block_id = 0;
    std::uint32_t index = 0;  // transmission index within the block
    VerifyStatus status = VerifyStatus::kUnverifiable;
};

struct HashChainConfig {
    /// Topology factory: block size -> dependence graph. Both sides must
    /// agree on it (it is scheme identity, like a ciphersuite).
    std::function<DependenceGraph(std::size_t)> topology;
    std::size_t block_size = 64;
    std::size_t hash_bytes = 16;  // l_hash on the wire (truncated SHA-256)
    /// Receiver-side cap on simultaneously open blocks — the paper notes
    /// that receiver buffering "is subject to Denial of Service attacks";
    /// when a packet would open a block beyond this cap, the oldest open
    /// block is force-finished (its pending packets become kUnverifiable).
    std::size_t max_open_blocks = 64;
    std::string name = "hash-chain";
};

class HashChainSender {
public:
    /// The signer is borrowed and must outlive the sender.
    HashChainSender(HashChainConfig config, Signer& signer);

    /// Authenticate one block. `payloads` are in transmission order and
    /// there must be exactly block_size of them. Returns the packets in
    /// transmission order, root signed.
    std::vector<AuthPacket> make_block(std::uint32_t block_id,
                                       const std::vector<std::vector<std::uint8_t>>& payloads);

    const HashChainConfig& config() const noexcept { return config_; }
    const DependenceGraph& topology() const noexcept { return graph_; }

private:
    HashChainConfig config_;
    Signer& signer_;
    DependenceGraph graph_;
    std::vector<VertexId> reverse_topo_;
    /// Antichain layers of the dependence graph, shallowest (no successors)
    /// first, each in reverse_topo_ order. All digests inside one layer are
    /// independent, so a whole layer feeds the multi-buffer hasher at once.
    std::vector<std::vector<VertexId>> digest_layers_;
    PacketArena arena_;  // recycled per block for authenticated-bytes staging
};

class HashChainReceiver {
public:
    HashChainReceiver(HashChainConfig config, std::unique_ptr<SignatureVerifier> verifier);

    /// Process one arriving packet (any order, duplicates tolerated).
    /// Returns all verdicts newly resolved by this arrival — possibly many,
    /// when a late signature packet unlocks a cascade. A packet failing its
    /// digest/signature check yields a kRejected event but does NOT poison
    /// the slot: a later genuine copy of the same index can still
    /// authenticate (otherwise one spoofed datagram per index would be a
    /// trivial denial of service).
    std::vector<VerifyEvent> on_packet(const AuthPacket& packet);

    /// Close a block: every received-but-still-pending packet is reported
    /// kUnverifiable and the block's state is released.
    std::vector<VerifyEvent> finish_block(std::uint32_t block_id);

    /// Close every open block.
    std::vector<VerifyEvent> finish_all();

    /// Gauges for buffer-size experiments (Eq. 5's empirical counterpart).
    std::size_t buffered_packets() const noexcept { return buffered_packets_; }
    std::size_t buffered_digests() const noexcept { return buffered_digests_; }

    const HashChainConfig& config() const noexcept { return config_; }

private:
    struct BlockState {
        std::vector<std::optional<AuthPacket>> packet_by_vertex;
        std::vector<std::optional<std::vector<std::uint8_t>>> trusted_digest;
        std::vector<std::uint8_t> resolved;  // 0 pending, else VerifyStatus+1
    };

    BlockState& block(std::uint32_t block_id);

    /// Mark v authenticated and cascade through carried digests.
    void authenticate(std::uint32_t block_id, BlockState& state, VertexId v,
                      std::vector<VerifyEvent>& events);

    void resolve(std::uint32_t block_id, BlockState& state, VertexId v, VerifyStatus status,
                 std::vector<VerifyEvent>& events);

    /// Digest/signature mismatch: report and evict, but keep the slot open.
    void reject_packet(std::uint32_t block_id, BlockState& state, VertexId v,
                       std::vector<VerifyEvent>& events);

    HashChainConfig config_;
    std::unique_ptr<SignatureVerifier> verifier_;
    DependenceGraph graph_;
    std::map<std::uint32_t, BlockState> blocks_;
    std::size_t buffered_packets_ = 0;
    std::size_t buffered_digests_ = 0;
};

/// Ready-made configs for the paper's schemes.
HashChainConfig rohatgi_config(std::size_t block_size, std::size_t hash_bytes = 16);
HashChainConfig emss_config(std::size_t block_size, std::size_t m, std::size_t d,
                            std::size_t hash_bytes = 16);
HashChainConfig augmented_chain_config(std::size_t block_size, std::size_t a, std::size_t b,
                                       std::size_t hash_bytes = 16);

}  // namespace mcauth

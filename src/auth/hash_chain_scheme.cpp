#include "auth/hash_chain_scheme.hpp"

#include <algorithm>

#include "core/topologies.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha256_batch.hpp"
#include "util/check.hpp"

namespace mcauth {

// ------------------------------------------------------------------ sender

HashChainSender::HashChainSender(HashChainConfig config, Signer& signer)
    : config_(std::move(config)),
      signer_(signer),
      graph_(config_.topology
                 ? config_.topology(config_.block_size)
                 : make_emss(config_.block_size, 2, 1)) {
    MCAUTH_EXPECTS(config_.block_size >= 2);
    MCAUTH_EXPECTS(config_.hash_bytes >= 4 && config_.hash_bytes <= 32);
    MCAUTH_EXPECTS(graph_.packet_count() == config_.block_size);
    MCAUTH_REQUIRE(graph_.is_valid());
    const auto topo = topological_order(graph_.graph());
    MCAUTH_ENSURES(topo.has_value());
    reverse_topo_.assign(topo->rbegin(), topo->rend());

    // Slice the graph into antichain layers by digest depth: depth(v) = 0
    // when v carries no digests, else 1 + max depth over its successors.
    // Every digest in layer d depends only on layers < d, so each layer is
    // one independent batch for the multi-buffer hasher.
    std::vector<std::size_t> depth(config_.block_size, 0);
    for (VertexId v : reverse_topo_) {
        std::size_t d = 0;
        for (VertexId t : graph_.graph().successors(v)) d = std::max(d, depth[t] + 1);
        depth[v] = d;
        if (d >= digest_layers_.size()) digest_layers_.resize(d + 1);
        digest_layers_[d].push_back(v);
    }
}

std::vector<AuthPacket> HashChainSender::make_block(
    std::uint32_t block_id, const std::vector<std::vector<std::uint8_t>>& payloads) {
    MCAUTH_EXPECTS(payloads.size() == config_.block_size);
    const std::size_t n = config_.block_size;

    std::vector<AuthPacket> by_vertex(n);
    std::vector<std::vector<std::uint8_t>> digest_by_vertex(n);
    arena_.reset();

    // Layer-by-layer, shallowest first: every successor (a packet whose
    // digest we must embed) lives in a strictly shallower layer, so it is
    // digested before its carriers — the same invariant the old per-vertex
    // reverse-topological walk maintained, but with all digests of a layer
    // going through the multi-buffer hasher in one batch. The layering is
    // direction-agnostic, which is what lets the same code drive Rohatgi
    // (carriers sent before targets) and EMSS/AC (after).
    std::vector<HashInput> inputs;
    std::vector<Digest256> full(n);
    for (const std::vector<VertexId>& layer : digest_layers_) {
        inputs.clear();
        for (VertexId v : layer) {
            AuthPacket& pkt = by_vertex[v];
            pkt.block_id = block_id;
            pkt.index = graph_.send_pos(v);
            pkt.block_size = static_cast<std::uint32_t>(n);
            pkt.kind =
                v == DependenceGraph::root() ? PacketKind::kSignature : PacketKind::kData;
            pkt.payload = payloads[pkt.index];

            // Deterministic carrier order (by target transmission index)
            // keeps the wire image reproducible across runs.
            std::vector<VertexId> targets(graph_.graph().successors(v).begin(),
                                          graph_.graph().successors(v).end());
            std::sort(targets.begin(), targets.end(), [&](VertexId a, VertexId b) {
                return graph_.send_pos(a) < graph_.send_pos(b);
            });
            for (VertexId t : targets)
                pkt.hashes.push_back({graph_.send_pos(t), digest_by_vertex[t]});

            const auto staged = pkt.authenticated_bytes_into(arena_);
            if (v == DependenceGraph::root()) {
                // The signature covers the authenticated bytes but is not
                // itself part of them, so signing here leaves the staged
                // image (and the digest below) untouched.
                pkt.signature = signer_.sign(staged);
            }
            inputs.emplace_back(staged);
        }
        Sha256x8::hash_many(inputs.data(), inputs.size(), full.data());
        for (std::size_t i = 0; i < layer.size(); ++i)
            digest_by_vertex[layer[i]] = truncate_digest(full[i], config_.hash_bytes);
    }

    std::vector<AuthPacket> in_send_order(n);
    for (VertexId v = 0; v < n; ++v)
        in_send_order[graph_.send_pos(v)] = std::move(by_vertex[v]);
    return in_send_order;
}

// ---------------------------------------------------------------- receiver

HashChainReceiver::HashChainReceiver(HashChainConfig config,
                                     std::unique_ptr<SignatureVerifier> verifier)
    : config_(std::move(config)),
      verifier_(std::move(verifier)),
      graph_(config_.topology
                 ? config_.topology(config_.block_size)
                 : make_emss(config_.block_size, 2, 1)) {
    MCAUTH_EXPECTS(verifier_ != nullptr);
    MCAUTH_EXPECTS(graph_.packet_count() == config_.block_size);
    MCAUTH_REQUIRE(graph_.is_valid());
}

HashChainReceiver::BlockState& HashChainReceiver::block(std::uint32_t block_id) {
    auto [it, inserted] = blocks_.try_emplace(block_id);
    if (inserted) {
        it->second.packet_by_vertex.resize(config_.block_size);
        it->second.trusted_digest.resize(config_.block_size);
        it->second.resolved.assign(config_.block_size, 0);
    }
    return it->second;
}

void HashChainReceiver::resolve(std::uint32_t block_id, BlockState& state, VertexId v,
                                VerifyStatus status, std::vector<VerifyEvent>& events) {
    MCAUTH_ENSURES(state.resolved[v] == 0);
    state.resolved[v] = static_cast<std::uint8_t>(status) + 1;
    if (state.packet_by_vertex[v].has_value()) {
        MCAUTH_ENSURES(buffered_packets_ > 0);
        --buffered_packets_;  // verdict delivered; packet no longer pending
    }
    events.push_back({block_id, graph_.send_pos(v), status});
}

void HashChainReceiver::reject_packet(std::uint32_t block_id, BlockState& state, VertexId v,
                                      std::vector<VerifyEvent>& events) {
    events.push_back({block_id, graph_.send_pos(v), VerifyStatus::kRejected});
    state.packet_by_vertex[v].reset();
    MCAUTH_ENSURES(buffered_packets_ > 0);
    --buffered_packets_;
}

void HashChainReceiver::authenticate(std::uint32_t block_id, BlockState& state, VertexId v,
                                     std::vector<VerifyEvent>& events) {
    std::vector<VertexId> queue{v};
    while (!queue.empty()) {
        const VertexId u = queue.back();
        queue.pop_back();
        if (state.resolved[u] != 0) continue;
        resolve(block_id, state, u, VerifyStatus::kAuthenticated, events);

        const AuthPacket& pkt = *state.packet_by_vertex[u];
        for (const HashRef& href : pkt.hashes) {
            if (href.target >= config_.block_size) continue;  // malformed ref
            const VertexId t = graph_.vertex_at_send_pos(href.target);
            if (!state.trusted_digest[t].has_value()) {
                state.trusted_digest[t] = href.digest;
                ++buffered_digests_;
            }
            if (state.resolved[t] != 0 || !state.packet_by_vertex[t].has_value()) continue;
            const auto actual = state.packet_by_vertex[t]->digest(config_.hash_bytes);
            if (ct_equal(actual, *state.trusted_digest[t])) {
                queue.push_back(t);
            } else {
                reject_packet(block_id, state, t, events);
            }
        }
    }
}

std::vector<VerifyEvent> HashChainReceiver::on_packet(const AuthPacket& packet) {
    std::vector<VerifyEvent> events;
    if (packet.index >= config_.block_size) return events;  // malformed
    // DoS guard: opening one more block beyond the cap evicts the oldest.
    if (blocks_.find(packet.block_id) == blocks_.end() &&
        blocks_.size() >= config_.max_open_blocks && !blocks_.empty()) {
        events = finish_block(blocks_.begin()->first);
    }
    BlockState& state = block(packet.block_id);
    const VertexId v = graph_.vertex_at_send_pos(packet.index);
    if (state.packet_by_vertex[v].has_value()) return events;  // duplicate
    state.packet_by_vertex[v] = packet;
    if (state.resolved[v] == 0) ++buffered_packets_;

    if (v == DependenceGraph::root()) {
        if (state.resolved[v] != 0) return events;
        if (verifier_->verify(packet.authenticated_bytes(), packet.signature)) {
            authenticate(packet.block_id, state, v, events);
        } else {
            reject_packet(packet.block_id, state, v, events);
        }
        return events;
    }

    if (state.resolved[v] == 0 && state.trusted_digest[v].has_value()) {
        const auto actual = packet.digest(config_.hash_bytes);
        if (ct_equal(actual, *state.trusted_digest[v])) {
            authenticate(packet.block_id, state, v, events);
        } else {
            reject_packet(packet.block_id, state, v, events);
        }
    }
    return events;
}

std::vector<VerifyEvent> HashChainReceiver::finish_block(std::uint32_t block_id) {
    std::vector<VerifyEvent> events;
    const auto it = blocks_.find(block_id);
    if (it == blocks_.end()) return events;
    BlockState& state = it->second;
    for (VertexId v = 0; v < config_.block_size; ++v) {
        if (state.resolved[v] == 0 && state.packet_by_vertex[v].has_value())
            resolve(block_id, state, v, VerifyStatus::kUnverifiable, events);
        if (state.trusted_digest[v].has_value()) {
            MCAUTH_ENSURES(buffered_digests_ > 0);
            --buffered_digests_;
        }
    }
    blocks_.erase(it);
    return events;
}

std::vector<VerifyEvent> HashChainReceiver::finish_all() {
    std::vector<VerifyEvent> events;
    while (!blocks_.empty()) {
        auto partial = finish_block(blocks_.begin()->first);
        events.insert(events.end(), partial.begin(), partial.end());
    }
    return events;
}

// ----------------------------------------------------------------- configs

HashChainConfig rohatgi_config(std::size_t block_size, std::size_t hash_bytes) {
    HashChainConfig cfg;
    cfg.topology = [](std::size_t n) { return make_rohatgi(n); };
    cfg.block_size = block_size;
    cfg.hash_bytes = hash_bytes;
    cfg.name = "rohatgi";
    return cfg;
}

HashChainConfig emss_config(std::size_t block_size, std::size_t m, std::size_t d,
                            std::size_t hash_bytes) {
    HashChainConfig cfg;
    cfg.topology = [m, d](std::size_t n) { return make_emss(n, m, d); };
    cfg.block_size = block_size;
    cfg.hash_bytes = hash_bytes;
    cfg.name = "emss(m=" + std::to_string(m) + ",d=" + std::to_string(d) + ")";
    return cfg;
}

HashChainConfig augmented_chain_config(std::size_t block_size, std::size_t a, std::size_t b,
                                       std::size_t hash_bytes) {
    HashChainConfig cfg;
    cfg.topology = [a, b](std::size_t n) { return make_augmented_chain(n, a, b); };
    cfg.block_size = block_size;
    cfg.hash_bytes = hash_bytes;
    cfg.name = "ac(a=" + std::to_string(a) + ",b=" + std::to_string(b) + ")";
    return cfg;
}

}  // namespace mcauth

#include "auth/packet.hpp"

#include <cstring>

#include "util/check.hpp"

namespace mcauth {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int b = 0; b < 4; ++b) out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_bytes(std::vector<std::uint8_t>& out, std::span<const std::uint8_t> data) {
    MCAUTH_EXPECTS(data.size() <= 0xffff);
    put_u16(out, static_cast<std::uint16_t>(data.size()));
    out.insert(out.end(), data.begin(), data.end());
}

class Reader {
public:
    explicit Reader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

    bool u32(std::uint32_t& v) noexcept {
        if (pos_ + 4 > data_.size()) return false;
        v = 0;
        for (int b = 0; b < 4; ++b) v |= std::uint32_t(data_[pos_ + b]) << (8 * b);
        pos_ += 4;
        return true;
    }

    bool u16(std::uint16_t& v) noexcept {
        if (pos_ + 2 > data_.size()) return false;
        v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
        pos_ += 2;
        return true;
    }

    bool byte(std::uint8_t& v) noexcept {
        if (pos_ >= data_.size()) return false;
        v = data_[pos_++];
        return true;
    }

    bool bytes(std::vector<std::uint8_t>& out) noexcept {
        std::uint16_t len = 0;
        if (!u16(len)) return false;
        if (pos_ + len > data_.size()) return false;
        out.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                   data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
        pos_ += len;
        return true;
    }

    bool exhausted() const noexcept { return pos_ == data_.size(); }

private:
    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
};

constexpr std::uint8_t kWireVersion = 1;

}  // namespace

std::vector<std::uint8_t> AuthPacket::authenticated_bytes() const {
    std::vector<std::uint8_t> out;
    out.reserve(32 + payload.size() + hashes.size() * 20);
    out.push_back(kWireVersion);
    out.push_back(static_cast<std::uint8_t>(kind));
    put_u32(out, block_id);
    put_u32(out, index);
    put_u32(out, block_size);
    put_u32(out, mac_interval);
    put_bytes(out, payload);
    put_u16(out, static_cast<std::uint16_t>(hashes.size()));
    for (const HashRef& h : hashes) {
        put_u32(out, h.target);
        put_bytes(out, h.digest);
    }
    return out;
}

std::vector<std::uint8_t> AuthPacket::encode() const {
    std::vector<std::uint8_t> out = authenticated_bytes();
    put_bytes(out, signature);
    put_bytes(out, mac);
    put_u32(out, disclosed_interval);
    put_bytes(out, disclosed_key);
    return out;
}

std::vector<std::uint8_t> AuthPacket::digest(std::size_t hash_bytes) const {
    const Digest256 full = Sha256::hash(authenticated_bytes());
    return truncate_digest(full, hash_bytes);
}

std::optional<AuthPacket> AuthPacket::decode(std::span<const std::uint8_t> wire) {
    Reader reader(wire);
    AuthPacket pkt;
    std::uint8_t version = 0;
    std::uint8_t kind_byte = 0;
    if (!reader.byte(version) || version != kWireVersion) return std::nullopt;
    if (!reader.byte(kind_byte) || kind_byte > 2) return std::nullopt;
    pkt.kind = static_cast<PacketKind>(kind_byte);
    if (!reader.u32(pkt.block_id) || !reader.u32(pkt.index) ||
        !reader.u32(pkt.block_size) || !reader.u32(pkt.mac_interval))
        return std::nullopt;
    if (!reader.bytes(pkt.payload)) return std::nullopt;
    std::uint16_t hash_count = 0;
    if (!reader.u16(hash_count)) return std::nullopt;
    pkt.hashes.resize(hash_count);
    for (HashRef& h : pkt.hashes)
        if (!reader.u32(h.target) || !reader.bytes(h.digest)) return std::nullopt;
    if (!reader.bytes(pkt.signature)) return std::nullopt;
    if (!reader.bytes(pkt.mac)) return std::nullopt;
    if (!reader.u32(pkt.disclosed_interval)) return std::nullopt;
    if (!reader.bytes(pkt.disclosed_key)) return std::nullopt;
    if (!reader.exhausted()) return std::nullopt;
    return pkt;
}

}  // namespace mcauth

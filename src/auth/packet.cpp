#include "auth/packet.hpp"

#include <cstring>

#include "util/check.hpp"

namespace mcauth {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int b = 0; b < 4; ++b) out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_bytes(std::vector<std::uint8_t>& out, std::span<const std::uint8_t> data) {
    MCAUTH_EXPECTS(data.size() <= 0xffff);
    put_u16(out, static_cast<std::uint16_t>(data.size()));
    out.insert(out.end(), data.begin(), data.end());
}

class Reader {
public:
    explicit Reader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

    bool u32(std::uint32_t& v) noexcept {
        if (pos_ + 4 > data_.size()) return false;
        v = 0;
        for (int b = 0; b < 4; ++b) v |= std::uint32_t(data_[pos_ + b]) << (8 * b);
        pos_ += 4;
        return true;
    }

    bool u16(std::uint16_t& v) noexcept {
        if (pos_ + 2 > data_.size()) return false;
        v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
        pos_ += 2;
        return true;
    }

    bool byte(std::uint8_t& v) noexcept {
        if (pos_ >= data_.size()) return false;
        v = data_[pos_++];
        return true;
    }

    bool bytes(std::vector<std::uint8_t>& out) noexcept {
        std::uint16_t len = 0;
        if (!u16(len)) return false;
        if (pos_ + len > data_.size()) return false;
        out.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                   data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
        pos_ += len;
        return true;
    }

    /// Zero-copy variant: the span aliases the wire buffer.
    bool bytes_view(std::span<const std::uint8_t>& out) noexcept {
        std::uint16_t len = 0;
        if (!u16(len)) return false;
        if (pos_ + len > data_.size()) return false;
        out = data_.subspan(pos_, len);
        pos_ += len;
        return true;
    }

    std::size_t position() const noexcept { return pos_; }

    bool exhausted() const noexcept { return pos_ == data_.size(); }

private:
    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
};

constexpr std::uint8_t kWireVersion = 1;

/// Cursor writer for arena-backed encoding; the caller sizes the buffer
/// exactly, so writes never bounds-check.
struct ByteWriter {
    std::uint8_t* p;

    void u8(std::uint8_t v) noexcept { *p++ = v; }

    void u32(std::uint32_t v) noexcept {
        for (int b = 0; b < 4; ++b) *p++ = static_cast<std::uint8_t>(v >> (8 * b));
    }

    void u16(std::uint16_t v) noexcept {
        *p++ = static_cast<std::uint8_t>(v);
        *p++ = static_cast<std::uint8_t>(v >> 8);
    }

    void bytes(std::span<const std::uint8_t> data) noexcept {
        u16(static_cast<std::uint16_t>(data.size()));
        if (!data.empty()) std::memcpy(p, data.data(), data.size());
        p += data.size();
    }
};

std::size_t authenticated_size(const AuthPacket& pkt) {
    std::size_t n = 1 + 1 + 4 * 4 + 2 + pkt.payload.size() + 2;
    for (const HashRef& h : pkt.hashes) n += 4 + 2 + h.digest.size();
    return n;
}

void write_authenticated(ByteWriter& w, const AuthPacket& pkt) {
    MCAUTH_EXPECTS(pkt.payload.size() <= 0xffff);
    w.u8(kWireVersion);
    w.u8(static_cast<std::uint8_t>(pkt.kind));
    w.u32(pkt.block_id);
    w.u32(pkt.index);
    w.u32(pkt.block_size);
    w.u32(pkt.mac_interval);
    w.bytes(pkt.payload);
    w.u16(static_cast<std::uint16_t>(pkt.hashes.size()));
    for (const HashRef& h : pkt.hashes) {
        MCAUTH_EXPECTS(h.digest.size() <= 0xffff);
        w.u32(h.target);
        w.bytes(h.digest);
    }
}

}  // namespace

// ------------------------------------------------------------- PacketArena

PacketArena::PacketArena(std::size_t chunk_bytes) : chunk_bytes_(chunk_bytes) {
    MCAUTH_EXPECTS(chunk_bytes > 0);
}

std::span<std::uint8_t> PacketArena::alloc(std::size_t n) { return alloc_aligned(n, 1); }

std::span<std::uint8_t> PacketArena::alloc_aligned(std::size_t n, std::size_t align) {
    auto aligned_used = [&](std::size_t used) { return (used + align - 1) & ~(align - 1); };
    while (active_ < chunks_.size() &&
           aligned_used(used_) + n > chunks_[active_].capacity) {
        ++active_;
        used_ = 0;
    }
    if (active_ == chunks_.size()) {
        // Recycled chunks exhausted: grow. Oversized requests get a
        // dedicated chunk so the common chunk size stays cache-friendly.
        const std::size_t cap = std::max(chunk_bytes_, n + align);
        chunks_.push_back({std::make_unique<std::uint8_t[]>(cap), cap});
        used_ = 0;
    }
    used_ = aligned_used(used_);
    std::uint8_t* base = chunks_[active_].data.get() + used_;
    used_ += n;
    total_used_ += n;
    return {base, n};
}

void PacketArena::reset() noexcept {
    active_ = 0;
    used_ = 0;
    total_used_ = 0;
}

std::vector<std::uint8_t> AuthPacket::authenticated_bytes() const {
    std::vector<std::uint8_t> out;
    out.reserve(32 + payload.size() + hashes.size() * 20);
    out.push_back(kWireVersion);
    out.push_back(static_cast<std::uint8_t>(kind));
    put_u32(out, block_id);
    put_u32(out, index);
    put_u32(out, block_size);
    put_u32(out, mac_interval);
    put_bytes(out, payload);
    put_u16(out, static_cast<std::uint16_t>(hashes.size()));
    for (const HashRef& h : hashes) {
        put_u32(out, h.target);
        put_bytes(out, h.digest);
    }
    return out;
}

std::vector<std::uint8_t> AuthPacket::encode() const {
    std::vector<std::uint8_t> out = authenticated_bytes();
    put_bytes(out, signature);
    put_bytes(out, mac);
    put_u32(out, disclosed_interval);
    put_bytes(out, disclosed_key);
    return out;
}

std::vector<std::uint8_t> AuthPacket::digest(std::size_t hash_bytes) const {
    const Digest256 full = Sha256::hash(authenticated_bytes());
    return truncate_digest(full, hash_bytes);
}

std::span<const std::uint8_t> AuthPacket::authenticated_bytes_into(PacketArena& arena) const {
    auto out = arena.alloc(authenticated_size(*this));
    ByteWriter w{out.data()};
    write_authenticated(w, *this);
    return out;
}

std::span<const std::uint8_t> AuthPacket::encode_into(PacketArena& arena) const {
    MCAUTH_EXPECTS(signature.size() <= 0xffff && mac.size() <= 0xffff &&
                   disclosed_key.size() <= 0xffff);
    const std::size_t total = authenticated_size(*this) + 2 + signature.size() + 2 +
                              mac.size() + 4 + 2 + disclosed_key.size();
    auto out = arena.alloc(total);
    ByteWriter w{out.data()};
    write_authenticated(w, *this);
    w.bytes(signature);
    w.bytes(mac);
    w.u32(disclosed_interval);
    w.bytes(disclosed_key);
    return out;
}

std::span<const std::uint8_t> encode_data_identity(PacketArena& arena, std::uint32_t block_id,
                                                   std::uint32_t index,
                                                   std::span<const std::uint8_t> payload) {
    MCAUTH_EXPECTS(payload.size() <= 0xffff);
    auto out = arena.alloc(1 + 1 + 4 * 4 + 2 + payload.size() + 2);
    ByteWriter w{out.data()};
    w.u8(kWireVersion);
    w.u8(static_cast<std::uint8_t>(PacketKind::kData));
    w.u32(block_id);
    w.u32(index);
    w.u32(0);  // block_size
    w.u32(0);  // mac_interval
    w.bytes(payload);
    w.u16(0);  // hash count
    return out;
}

std::optional<AuthPacket> AuthPacket::decode(std::span<const std::uint8_t> wire) {
    Reader reader(wire);
    AuthPacket pkt;
    std::uint8_t version = 0;
    std::uint8_t kind_byte = 0;
    if (!reader.byte(version) || version != kWireVersion) return std::nullopt;
    if (!reader.byte(kind_byte) || kind_byte > 2) return std::nullopt;
    pkt.kind = static_cast<PacketKind>(kind_byte);
    if (!reader.u32(pkt.block_id) || !reader.u32(pkt.index) ||
        !reader.u32(pkt.block_size) || !reader.u32(pkt.mac_interval))
        return std::nullopt;
    if (!reader.bytes(pkt.payload)) return std::nullopt;
    std::uint16_t hash_count = 0;
    if (!reader.u16(hash_count)) return std::nullopt;
    pkt.hashes.resize(hash_count);
    for (HashRef& h : pkt.hashes)
        if (!reader.u32(h.target) || !reader.bytes(h.digest)) return std::nullopt;
    if (!reader.bytes(pkt.signature)) return std::nullopt;
    if (!reader.bytes(pkt.mac)) return std::nullopt;
    if (!reader.u32(pkt.disclosed_interval)) return std::nullopt;
    if (!reader.bytes(pkt.disclosed_key)) return std::nullopt;
    if (!reader.exhausted()) return std::nullopt;
    return pkt;
}

std::optional<PacketView> PacketView::decode(std::span<const std::uint8_t> wire,
                                             PacketArena& arena) {
    Reader reader(wire);
    PacketView view;
    view.wire = wire;
    std::uint8_t version = 0;
    std::uint8_t kind_byte = 0;
    if (!reader.byte(version) || version != kWireVersion) return std::nullopt;
    if (!reader.byte(kind_byte) || kind_byte > 2) return std::nullopt;
    view.kind = static_cast<PacketKind>(kind_byte);
    if (!reader.u32(view.block_id) || !reader.u32(view.index) ||
        !reader.u32(view.block_size) || !reader.u32(view.mac_interval))
        return std::nullopt;
    if (!reader.bytes_view(view.payload)) return std::nullopt;
    std::uint16_t hash_count = 0;
    if (!reader.u16(hash_count)) return std::nullopt;
    auto hashes = arena.alloc_array<HashRefView>(hash_count);
    for (HashRefView& h : hashes)
        if (!reader.u32(h.target) || !reader.bytes_view(h.digest)) return std::nullopt;
    view.hashes = hashes;
    // Everything up to here is what hashes/MACs/signatures cover.
    view.authenticated = wire.first(reader.position());
    if (!reader.bytes_view(view.signature)) return std::nullopt;
    if (!reader.bytes_view(view.mac)) return std::nullopt;
    if (!reader.u32(view.disclosed_interval)) return std::nullopt;
    if (!reader.bytes_view(view.disclosed_key)) return std::nullopt;
    if (!reader.exhausted()) return std::nullopt;
    return view;
}

AuthPacket PacketView::to_packet() const {
    AuthPacket pkt;
    pkt.block_id = block_id;
    pkt.index = index;
    pkt.block_size = block_size;
    pkt.kind = kind;
    pkt.mac_interval = mac_interval;
    pkt.disclosed_interval = disclosed_interval;
    pkt.payload.assign(payload.begin(), payload.end());
    pkt.hashes.reserve(hashes.size());
    for (const HashRefView& h : hashes)
        pkt.hashes.push_back({h.target, {h.digest.begin(), h.digest.end()}});
    pkt.signature.assign(signature.begin(), signature.end());
    pkt.mac.assign(mac.begin(), mac.end());
    pkt.disclosed_key.assign(disclosed_key.begin(), disclosed_key.end());
    return pkt;
}

}  // namespace mcauth
